(* Identifier-lookup statistics: the instrumentation behind the paper's
   Table 2.

   Every symbol-table lookup is classified by
   - kind: simple identifier vs qualified identifier,
   - "Found when": first try / outward search / after a DKY blockage,
   - the scope the identifier was found in: self / other (an explicitly
     designated initial scope, e.g. a FROM-imported name) / outer /
     WITH / builtin,
   - the completeness of that scope at the start of the search,
   plus a "never found" count.  Counters are aggregated per compilation
   and mergeable across a whole test-suite run. *)

type kind = Simple | Qualified
type found_when = FirstTry | Search | AfterDKY
type scope_class = CSelf | COther | COuter | CWith | CBuiltin
type completeness = Complete | Incomplete

type t = {
  mutable mu : Mutex.t option;
      (* [None] only on a marshal-safe view ([unsynced]) or a value just
         unmarshaled from a cache; [resync] re-arms it *)
  counts : (kind * found_when * scope_class * completeness, int) Hashtbl.t;
  mutable never_simple : int;
  mutable never_qualified : int;
  mutable dky_blocks : int; (* lookups that incurred a DKY wait *)
  mutable duplicate_searches : int; (* skeptical re-searches after a wait *)
  mutable total_probes : int; (* scope tables probed *)
  uses : (string, (string, unit) Hashtbl.t) Hashtbl.t;
      (* imported module -> exported names actually looked up there: the
         used-slice set fine-grained invalidation keys on *)
}

let create () =
  {
    mu = Some (Mutex.create ());
    counts = Hashtbl.create 64;
    never_simple = 0;
    never_qualified = 0;
    dky_blocks = 0;
    duplicate_searches = 0;
    total_probes = 0;
    uses = Hashtbl.create 16;
  }

let lock t = match t.mu with Some m -> Mutex.lock m | None -> ()
let unlock t = match t.mu with Some m -> Mutex.unlock m | None -> ()

(* A marshal-safe view for cache persistence: [Mutex.t] is a custom
   block [Marshal] rejects.  [unsynced] shares the tables — marshal the
   copy right away, before any concurrent recording can race the
   serializer.  [resync] re-arms a just-unmarshaled value. *)
let unsynced t = { t with mu = None }

let resync t =
  (match t.mu with None -> t.mu <- Some (Mutex.create ()) | Some _ -> ());
  t

let record t ~kind ~found ~scope ~compl =
  lock t;
  let key = (kind, found, scope, compl) in
  Hashtbl.replace t.counts key (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts key));
  unlock t

let record_never t ~kind =
  lock t;
  (match kind with
  | Simple -> t.never_simple <- t.never_simple + 1
  | Qualified -> t.never_qualified <- t.never_qualified + 1);
  unlock t

let record_dky t =
  lock t;
  t.dky_blocks <- t.dky_blocks + 1;
  unlock t

let record_duplicate t =
  lock t;
  t.duplicate_searches <- t.duplicate_searches + 1;
  unlock t

let record_probe t =
  lock t;
  t.total_probes <- t.total_probes + 1;
  unlock t

let record_use t ~import ~name =
  lock t;
  (match Hashtbl.find_opt t.uses import with
  | Some set -> Hashtbl.replace set name ()
  | None ->
      let set = Hashtbl.create 8 in
      Hashtbl.replace set name ();
      Hashtbl.replace t.uses import set);
  unlock t

let used_slices t =
  lock t;
  let r =
    Hashtbl.fold
      (fun m set acc ->
        let names = Hashtbl.fold (fun n () ns -> n :: ns) set [] in
        (m, List.sort compare names) :: acc)
      t.uses []
  in
  unlock t;
  List.sort compare r

let used_in t ~import =
  lock t;
  let r =
    match Hashtbl.find_opt t.uses import with
    | None -> []
    | Some set -> List.sort compare (Hashtbl.fold (fun n () ns -> n :: ns) set [])
  in
  unlock t;
  r

let merge ~into src =
  lock src;
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) src.counts [] in
  let never_s = src.never_simple and never_q = src.never_qualified and dky = src.dky_blocks in
  let dup = src.duplicate_searches and probes = src.total_probes in
  let uses =
    Hashtbl.fold
      (fun m set acc -> (m, Hashtbl.fold (fun n () ns -> n :: ns) set []) :: acc)
      src.uses []
  in
  unlock src;
  lock into;
  List.iter
    (fun (m, names) ->
      let set =
        match Hashtbl.find_opt into.uses m with
        | Some s -> s
        | None ->
            let s = Hashtbl.create 8 in
            Hashtbl.replace into.uses m s;
            s
      in
      List.iter (fun n -> Hashtbl.replace set n ()) names)
    uses;
  List.iter
    (fun (k, v) ->
      Hashtbl.replace into.counts k (v + Option.value ~default:0 (Hashtbl.find_opt into.counts k)))
    entries;
  into.never_simple <- into.never_simple + never_s;
  into.never_qualified <- into.never_qualified + never_q;
  into.dky_blocks <- into.dky_blocks + dky;
  into.duplicate_searches <- into.duplicate_searches + dup;
  into.total_probes <- into.total_probes + probes;
  unlock into

let get t ~kind ~found ~scope ~compl =
  Option.value ~default:0 (Hashtbl.find_opt t.counts (kind, found, scope, compl))

let never t ~kind = match kind with Simple -> t.never_simple | Qualified -> t.never_qualified
let dky_blocks t = t.dky_blocks
let duplicate_searches t = t.duplicate_searches
let total_probes t = t.total_probes

let total t ~kind =
  Hashtbl.fold (fun (k, _, _, _) v acc -> if k = kind then acc + v else acc) t.counts 0
  + never t ~kind

let found_name = function FirstTry -> "First try" | Search -> "Search" | AfterDKY -> "After DKY"

let scope_name = function
  | CSelf -> "self"
  | COther -> "other"
  | COuter -> "outer"
  | CWith -> "WITH"
  | CBuiltin -> "Builtin"

let compl_name = function Complete -> "complete" | Incomplete -> "incomplete"

(* All populated rows for one identifier kind, in the paper's row order. *)
let rows t ~kind =
  let order =
    [
      (FirstTry, CSelf); (FirstTry, COther); (Search, COuter); (AfterDKY, COuter);
      (AfterDKY, COther); (AfterDKY, CSelf); (FirstTry, CWith); (FirstTry, CBuiltin);
      (Search, CSelf); (Search, COther); (Search, CWith); (Search, CBuiltin);
      (FirstTry, COuter);
    ]
  in
  List.concat_map
    (fun (found, scope) ->
      List.filter_map
        (fun compl ->
          let n = get t ~kind ~found ~scope ~compl in
          if n > 0 then Some (found, scope, compl, n) else None)
        [ Incomplete; Complete ])
    order
