(** Identifier-lookup statistics: the instrumentation behind the paper's
    Table 2.  Every lookup is classified by identifier kind, how it was
    found, the scope class it was found in, and the completeness of that
    scope at the successful probe; plus never-found, DKY-blockage and
    duplicate-search counters.  Mutex-protected and mergeable across a
    whole suite run. *)

type kind = Simple | Qualified
type found_when = FirstTry | Search | AfterDKY

type scope_class =
  | CSelf  (** the searching stream's own scope *)
  | COther  (** an explicitly designated scope: qualified names, FROM-imported aliases *)
  | COuter  (** found chaining outward through the scope parentage *)
  | CWith  (** a WITH-statement record scope *)
  | CBuiltin

type completeness = Complete | Incomplete

type t

val create : unit -> t
val record : t -> kind:kind -> found:found_when -> scope:scope_class -> compl:completeness -> unit
val record_never : t -> kind:kind -> unit

(** A lookup incurred a DKY wait. *)
val record_dky : t -> unit

(** A skeptical/optimistic re-search after a DKY wait (the duplicate
    search Figure 6 pays for). *)
val record_duplicate : t -> unit

val record_probe : t -> unit

(** A successful lookup hit an exported declaration of imported
    definition module [import]: accumulate [(import, name)] into the
    compilation's used-slice set — the fine-grained dependency record
    slice-level invalidation keys on. *)
val record_use : t -> import:string -> name:string -> unit

(** The used-slice set: [(imported module, sorted names looked up
    there)], sorted by module name.  Deterministic. *)
val used_slices : t -> (string * string list) list

(** Names looked up in one imported module, sorted. *)
val used_in : t -> import:string -> string list

(** Accumulate [src] into [into]. *)
val merge : into:t -> t -> unit

(** A marshal-safe view sharing [t]'s tables ([Mutex.t] is a custom
    block [Marshal] rejects); serialize it immediately, before further
    recording can race the serializer. *)
val unsynced : t -> t

(** Re-arm the lock of a value unmarshaled from a cache (in place;
    returns its argument).  A no-op on live values. *)
val resync : t -> t

val get : t -> kind:kind -> found:found_when -> scope:scope_class -> compl:completeness -> int
val never : t -> kind:kind -> int
val dky_blocks : t -> int
val duplicate_searches : t -> int
val total_probes : t -> int

(** All lookups of a kind, including never-found. *)
val total : t -> kind:kind -> int

val found_name : found_when -> string
val scope_name : scope_class -> string
val compl_name : completeness -> string

(** Populated rows in the paper's row order:
    [(found, scope, completeness, count)]. *)
val rows : t -> kind:kind -> (found_when * scope_class * completeness * int) list
