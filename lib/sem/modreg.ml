(* The module registry: module name -> definition-module scope.

   The Importer creates a definition module's scope (and registers it)
   *before* spawning the stream that populates it — the "once-only table"
   of paper §3 — so any task can immediately obtain the scope object for
   qualified lookups and let the DKY machinery handle its incompleteness.
   Registration is idempotent per compilation: each interface is
   processed exactly once no matter how many modules import it. *)

type t = { mu : Mutex.t; tbl : (string, Symtab.t) Hashtbl.t }

let create () = { mu = Mutex.create (); tbl = Hashtbl.create 16 }

(* Returns the scope and whether this call created it (creator must spawn
   the processing stream). *)
let intern t name =
  Mutex.lock t.mu;
  let r =
    match Hashtbl.find_opt t.tbl name with
    | Some scope -> (scope, false)
    | None ->
        let scope = Symtab.create (Symtab.KDef name) in
        Hashtbl.replace t.tbl name scope;
        (scope, true)
  in
  Mutex.unlock t.mu;
  (match r with
  | scope, true ->
      if Mcc_sched.Evlog.enabled () then
        Mcc_sched.Evlog.emit
          (Mcc_sched.Evlog.Scope_intern { scope = scope.Symtab.sid; name = scope.Symtab.sname })
  | _ -> ());
  r

let find t name =
  Mutex.lock t.mu;
  let r = Hashtbl.find_opt t.tbl name in
  Mutex.unlock t.mu;
  r

let count t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.mu;
  n

let names t =
  Mutex.lock t.mu;
  let r = Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] in
  Mutex.unlock t.mu;
  List.sort compare r

let to_list t =
  Mutex.lock t.mu;
  let r = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl [] in
  Mutex.unlock t.mu;
  List.sort (fun (a, _) (b, _) -> compare a b) r
