(** Per-scope symbol tables and the Doesn't-Know-Yet strategies
    (paper §2.2, the heart of the system).

    One table per scope of declaration (definition module, main module,
    procedure), linked by [parent] into the scope ancestry path.  A
    table is {e incomplete} while its stream's parser is still entering
    symbols; searches from other streams that miss in an incomplete
    table face the DKY problem, resolved per the configured strategy.

    Visibility: declaration-time references (finite [use_off]) see only
    symbols declared at smaller textual offsets (declare-before-use);
    statement analysis passes [use_off = max_int].  Definition modules
    and builtins are fully visible.  Builtins are consulted right after
    the starting scope, never via the chain (§2.2's builtin treatment).

    All operations are mutex-protected for the domain engine, and no
    lock is ever held across an engine operation. *)

(** The strategies of §2.2 (plus the sequential baseline's rule):
    - [Sequential]: never wait, a miss is a miss;
    - [Avoidance]: never wait — the {e driver} gates dependent tasks so
      non-self tables are complete before they are searched;
    - [Pessimistic]: wait for completion before searching any incomplete
      non-self table;
    - [Skeptical]: Figure 6 — search first, wait only on a miss in an
      initially incomplete table, then search again (the recommended
      compromise, and the default);
    - [Optimistic]: per-symbol events — a miss installs a placeholder
      whose event is signaled when the real symbol arrives, or swept
      when the table completes. *)
type dky = Sequential | Avoidance | Pessimistic | Skeptical | Optimistic

val dky_name : dky -> string

(** The four concurrent strategies (everything but [Sequential]). *)
val all_concurrent : dky list

type kind = KBuiltin | KDef of string | KMain of string | KProc of string

type t = {
  sid : int;
  kind : kind;
  sname : string;  (** [scope_name kind], cached *)
  parent : t option;
  tbl : (string, Symbol.t) Hashtbl.t;
  completion : Mcc_sched.Event.t;
  mutable complete : bool;
  mutable had_placeholders : bool;
  mu : Mutex.t;
}

val scope_name : kind -> string
val create : ?parent:t -> kind -> t
val is_complete : t -> bool

(** The handled event signaled by {!mark_complete}. *)
val completion_event : t -> Mcc_sched.Event.t

(** Record the task that will complete this scope, for Supervisor
    preference on DKY blocks. *)
val set_producer : t -> int -> unit

(** Raw find: no statistics, full visibility, placeholders hidden. *)
val find_opt : t -> string -> Symbol.t option

(** All real entries, sorted by (offset, name) — deterministic. *)
val entries : t -> Symbol.t list

(** Enter a symbol.  Atomic with respect to search; replaces (and
    signals) an optimistic placeholder of the same name.

    Fault injection: when an armed [Mcc_sched.Fault] plan fires an
    [early-complete] fault on this scope while it is incomplete but
    already holds a symbol, the scope completes prematurely, so later
    entries publish {e after} completion — the early-publish bug
    [Mcc_analysis.Hb] must detect.  DES-only. *)
val enter : t -> Symbol.t -> [ `Ok | `Dup of Symbol.t ]

(** Export a completed scope's symbols for an interface artifact —
    {!entries} plus a completeness check.
    @raise Invalid_argument if the scope is incomplete. *)
val export : t -> Symbol.t list

(** Bulk-enter previously exported symbols into a freshly interned
    scope (an artifact cache hit).  Goes through {!enter}, so optimistic
    placeholders installed in the meantime are replaced and signaled;
    the caller then calls {!mark_complete}. *)
val import_export : t -> Symbol.t list -> unit

(** Flip [complete], sweep optimistic placeholders ("all unsignaled
    events are signaled", §2.3.3) and signal the completion event. *)
val mark_complete : t -> unit

(** Simple-identifier lookup starting in [scope] (the searching stream's
    own scope — probed without waiting, since only its own task searches
    it while incomplete), then builtins, then the ancestry chain under
    the strategy's DKY protocol.  Records Table 2 statistics. *)
val lookup :
  strategy:dky -> stats:Lookup_stats.t -> use_off:int -> scope:t -> string -> Symbol.t option

(** Qualified-identifier lookup: [scope] is the designated module scope,
    no outward chaining; full visibility. *)
val lookup_qualified : strategy:dky -> stats:Lookup_stats.t -> scope:t -> string -> Symbol.t option
