(* Per-scope symbol tables and the Doesn't-Know-Yet strategies.

   "We use a separate symbol table for each scope of declaration
   (definition module, main module, procedure).  These symbol tables are
   linked together to provide the correct scope ancestry path for
   resolving names." (paper §2.2)

   A table is *incomplete* while the parser/declaration-analyzer task of
   its stream is still entering symbols; [mark_complete] flips it and
   signals the scope's completion event (a handled event whose producer
   is that task).  A search from another stream that misses in an
   incomplete table faces the DKY problem; the four strategies of §2.2
   are all implemented here:

   - [Avoidance] never waits: the driver gates dependent tasks so that
     non-self tables are complete before they are searched.
   - [Pessimistic] waits for completion before searching any incomplete
     non-self table.
   - [Skeptical] (Figure 6, the paper's recommendation) searches the
     incomplete table first and waits only on a miss, paying a duplicate
     search when the wait ends.
   - [Optimistic] waits on a per-symbol event: a miss in an incomplete
     table installs a placeholder entry carrying an event; the entry is
     signaled when the real symbol arrives or swept when the table
     completes.
   - [Sequential] is the baseline compiler's rule: no waiting, a miss is
     a miss (the sequential processing order makes that sound).

   Visibility: declaration-time references (finite [use_off]) only see
   symbols declared at smaller textual offsets — Modula-2's
   declare-before-use — while statement analysis passes
   [use_off = max_int] and sees whole completed scopes.  Definition
   modules and builtins are fully visible at any offset.  A same-named
   symbol that exists but is not yet visible can never become visible
   later (offsets are fixed at declaration), so the search continues
   outward without waiting.

   Searching never holds the scope mutex across an engine operation:
   waits and signals happen strictly outside the critical sections. *)

open Mcc_sched
module Ls = Lookup_stats
module Metrics = Mcc_obs.Metrics

type dky = Sequential | Avoidance | Pessimistic | Skeptical | Optimistic

let dky_name = function
  | Sequential -> "sequential"
  | Avoidance -> "avoidance"
  | Pessimistic -> "pessimistic"
  | Skeptical -> "skeptical"
  | Optimistic -> "optimistic"

let all_concurrent = [ Avoidance; Pessimistic; Skeptical; Optimistic ]

type kind = KBuiltin | KDef of string | KMain of string | KProc of string

type t = {
  sid : int;
  kind : kind;
  sname : string; (* [scope_name kind], cached so logging never allocates it *)
  parent : t option;
  tbl : (string, Symbol.t) Hashtbl.t;
  completion : Event.t;
  mutable complete : bool;
  mutable had_placeholders : bool; (* optimistic handling was used here *)
  mu : Mutex.t;
}

let next_sid = Atomic.make 0

let scope_name = function KBuiltin -> "<builtin>" | KDef m -> m ^ ".def" | KMain m -> m | KProc p -> p

let create ?parent kind =
  let sname = scope_name kind in
  {
    sid = Atomic.fetch_and_add next_sid 1;
    kind;
    sname;
    parent;
    tbl = Hashtbl.create 32;
    completion = Event.create ~kind:Event.Handled (sname ^ ".complete");
    complete = false;
    had_placeholders = false;
    mu = Mutex.create ();
  }

let is_complete t = t.complete
let completion_event t = t.completion
let set_producer t task_id = Event.set_producer t.completion task_id

(* Raw find, no stats, full visibility — for tests, tools and fixups. *)
let find_opt t name =
  Mutex.lock t.mu;
  let r =
    match Hashtbl.find_opt t.tbl name with
    | Some s when not (Symbol.is_placeholder s) -> Some s
    | _ -> None
  in
  Mutex.unlock t.mu;
  r

let entries t =
  Mutex.lock t.mu;
  let r = Hashtbl.fold (fun _ s acc -> if Symbol.is_placeholder s then acc else s :: acc) t.tbl [] in
  Mutex.unlock t.mu;
  List.sort (fun (a : Symbol.t) b -> compare (a.def_off, a.sname) (b.def_off, b.sname)) r

(* Completing a table: flip the flag, signal the completion event, and
   sweep optimistic placeholders — "when the table is completed, it is
   traversed and all unsignaled events ... are signaled, allowing blocked
   tasks to continue searching" (§2.3.3).  (Defined before [enter] so the
   fault-injection hook there can reach it.) *)
let mark_complete t =
  Mutex.lock t.mu;
  let already = t.complete in
  t.complete <- true;
  let pending =
    Hashtbl.fold
      (fun _ s acc -> match s.Symbol.skind with Symbol.SPlaceholder ev -> ev :: acc | _ -> acc)
      t.tbl []
  in
  let entries_to_sweep = if t.had_placeholders then Hashtbl.length t.tbl else 0 in
  Mutex.unlock t.mu;
  if not already then begin
    if Evlog.enabled () then Evlog.emit (Evlog.Complete { scope = t.sid; scope_name = t.sname });
    if Metrics.enabled () then Metrics.incr "mcc_scope_complete_total";
    (* optimistic handling sweeps the whole table for unsignaled
       per-symbol events — the bookkeeping the paper found to outweigh
       the technique's advantages *)
    if entries_to_sweep > 0 then Eff.work (entries_to_sweep * Costs.sweep_entry);
    List.iter Eff.signal pending;
    Eff.signal t.completion
  end

(* Enter a new symbol.  Returns the placeholder's event to signal (the
   caller signals it outside the lock) when an optimistic placeholder is
   being replaced by the real declaration.

   The [Fault.early_complete] consultation is the deliberate
   early-publish bug for the happens-before analyzer: when an armed
   plan fires on this scope while it is incomplete but already holds a
   symbol, the scope completes prematurely, so this (and every later)
   entry publishes *after* completion — the violation [Hb] must catch.
   DES-only, like the log. *)
let enter t (sym : Symbol.t) =
  if
    Fault.armed ()
    && (not t.complete)
    && Hashtbl.length t.tbl > 0
    && Fault.early_complete ~scope:t.sname
  then mark_complete t;
  Mutex.lock t.mu;
  let r =
    match Hashtbl.find_opt t.tbl sym.sname with
    | Some existing when Symbol.is_placeholder existing -> (
        match existing.skind with
        | Symbol.SPlaceholder ev ->
            Hashtbl.replace t.tbl sym.sname sym;
            `Replaced_placeholder ev
        | _ -> assert false)
    | Some existing -> `Dup existing
    | None ->
        Hashtbl.replace t.tbl sym.sname sym;
        `Ok
  in
  Mutex.unlock t.mu;
  (match r with
  | `Dup _ -> ()
  | _ ->
      if Evlog.enabled () then
        Evlog.emit (Evlog.Publish { scope = t.sid; scope_name = t.sname; sym = sym.Symbol.sname }));
  (match r with `Replaced_placeholder ev -> Eff.signal ev | _ -> ());
  match r with `Dup e -> `Dup e | _ -> `Ok

(* Export / re-import of completed scopes (interface artifacts).

   [export] is just the deterministic entry list of a completed table;
   [import_export] bulk-enters previously exported symbols into a
   freshly interned scope.  Re-entry goes through [enter] so that any
   optimistic placeholder installed between interning and installation
   is replaced and signaled exactly as a real declaration would. *)
let export t =
  if not t.complete then invalid_arg ("Symtab.export: incomplete scope " ^ scope_name t.kind);
  entries t

let import_export t syms =
  List.iter (fun (s : Symbol.t) -> match enter t s with `Ok | `Dup _ -> ()) syms

(* ------------------------------------------------------------------ *)
(* Probing *)

type probe_result =
  | Found of Symbol.t
  | Found_placeholder of Event.t
  | Invisible (* the name exists here but is declared at a later offset *)
  | Absent

let visible t (sym : Symbol.t) ~use_off =
  match t.kind with
  | KBuiltin | KDef _ -> true
  | KMain _ | KProc _ -> sym.def_off < use_off

(* One probe of one scope.  Returns the result and the completeness
   observed at probe time (what Table 2's completeness column reports). *)
let probe stats t name ~use_off =
  Eff.work Costs.lookup_probe;
  Ls.record_probe stats;
  if Metrics.enabled () then Metrics.incr "mcc_symtab_probe_total";
  Mutex.lock t.mu;
  let compl = if t.complete then Ls.Complete else Ls.Incomplete in
  let r =
    match Hashtbl.find_opt t.tbl name with
    | None -> Absent
    | Some s -> (
        match s.Symbol.skind with
        | Symbol.SPlaceholder ev -> Found_placeholder ev
        | _ -> if visible t s ~use_off then Found s else Invisible)
  in
  Mutex.unlock t.mu;
  if Evlog.enabled () then (
    match r with
    | Found _ ->
        Evlog.emit
          (Evlog.Observe
             { scope = t.sid; scope_name = t.sname; sym = name; complete = compl = Ls.Complete })
    | Absent when compl = Ls.Complete ->
        Evlog.emit (Evlog.Auth_miss { scope = t.sid; scope_name = t.sname; sym = name })
    | _ -> ());
  (r, compl)

(* Install (or join) an optimistic placeholder for [name]; no-op if the
   table completed or the real symbol arrived in the meantime. *)
let placeholder_event t name =
  Mutex.lock t.mu;
  let r =
    if t.complete then None
    else
      match Hashtbl.find_opt t.tbl name with
      | Some s -> (
          match s.Symbol.skind with
          | Symbol.SPlaceholder ev -> Some ev
          | _ -> None (* real symbol arrived: re-probe *))
      | None ->
          let ev = Event.create ~kind:Event.Handled ("sym:" ^ name) in
          let ph = Symbol.make ~name ~def_off:(-1) (Symbol.SPlaceholder ev) in
          Hashtbl.replace t.tbl name ph;
          t.had_placeholders <- true;
          Some ev
  in
  Mutex.unlock t.mu;
  r

(* ------------------------------------------------------------------ *)
(* Lookup *)

(* The scope-class a successful hit is reported under: FROM-imported
   aliases count as "other" — the identifier really lives in an
   explicitly designated initial search scope (the exporting module). *)
let classify_hit ~cls (sym : Symbol.t) =
  match sym.alias_of with Some _ -> Ls.COther | None -> cls

(* Used-slice tracking for fine-grained invalidation: every name this
   compilation resolves against an imported interface is a dependency on
   that one exported declaration (a "slice"), and every name it fails to
   resolve there is a negative dependency (adding the declaration later
   must invalidate).  Both are recorded as (module, name) pairs; the
   build layer resolves them against artifact slice digests. *)
let record_slice_probe stats sc name =
  match sc.kind with KDef m -> Ls.record_use stats ~import:m ~name | _ -> ()

(* A hit on a FROM-imported alias resolved in the importer's own scope
   is equally a dependency on the exporting module's declaration. *)
let record_alias_use stats (sym : Symbol.t) =
  match sym.alias_of with
  | Some m -> Ls.record_use stats ~import:m ~name:sym.sname
  | None -> ()

(* A DKY wait, bracketed in the event log: the block record is written
   before the engine wait and the unblock right after, even when the
   event has already occurred — the pairing invariant the happens-before
   checker verifies. *)
let dky_wait sc name (ev : Event.t) =
  if Evlog.enabled () then
    Evlog.emit
      (Evlog.Dky_block { scope = sc.sid; scope_name = sc.sname; sym = name; ev = ev.Event.id });
  if Metrics.enabled () then
    Metrics.incr
      ~labels:
        [
          ( "scope_kind",
            match sc.kind with
            | KBuiltin -> "builtin"
            | KDef _ -> "def"
            | KMain _ -> "main"
            | KProc _ -> "proc" );
        ]
      "mcc_dky_block_total";
  Eff.wait ev;
  if Evlog.enabled () then
    Evlog.emit
      (Evlog.Dky_unblock { scope = sc.sid; scope_name = sc.sname; sym = name; ev = ev.Event.id })

(* Search one non-self scope under the given strategy.  [kind] tags the
   statistics rows; [first] marks whether a hit counts as "First try"
   (the initial scope of a qualified lookup) or "Search" (outward
   chaining).  Returns [Some sym] on a hit, [None] to continue outward. *)
let rec search_scope ~strategy ~stats ~kind ~use_off ~first sc name =
  record_slice_probe stats sc name;
  let record_hit ~found ~compl sym =
    Ls.record stats ~kind ~found ~scope:(classify_hit ~cls:(if first then Ls.COther else Ls.COuter) sym)
      ~compl;
    record_alias_use stats sym;
    Some sym
  in
  let first_found = if first then Ls.FirstTry else Ls.Search in
  match strategy with
  | Sequential | Avoidance -> (
      match probe stats sc name ~use_off with
      | Found sym, compl -> record_hit ~found:first_found ~compl sym
      | _ -> None)
  | Pessimistic -> (
      (* block and wait for table completion on *encountering* an
         incomplete table, before searching it *)
      if not (is_complete sc) then begin
        Ls.record_dky stats;
        dky_wait sc name sc.completion
      end;
      match probe stats sc name ~use_off with
      | Found sym, compl -> record_hit ~found:first_found ~compl sym
      | _ -> None)
  | Skeptical -> (
      (* Figure 6: record the completion state; search; on a miss in an
         initially incomplete table, wait and search again *)
      match probe stats sc name ~use_off with
      | Found sym, compl -> record_hit ~found:first_found ~compl sym
      | (Invisible | Found_placeholder _), _ -> None
      | Absent, Ls.Complete -> None
      | Absent, Ls.Incomplete -> (
          Ls.record_dky stats;
          dky_wait sc name sc.completion;
          Ls.record_duplicate stats;
          match probe stats sc name ~use_off with
          | Found sym, compl -> record_hit ~found:Ls.AfterDKY ~compl sym
          | _ -> None))
  | Optimistic -> (
      match probe stats sc name ~use_off with
      | Found sym, compl -> record_hit ~found:first_found ~compl sym
      | Invisible, _ -> None
      | Found_placeholder ev, compl ->
          if compl = Ls.Complete then None
          else begin
            Ls.record_dky stats;
            dky_wait sc name ev;
            retry_optimistic ~strategy ~stats ~kind ~use_off sc name
          end
      | Absent, Ls.Complete -> None
      | Absent, Ls.Incomplete -> (
          (* one DKY event per *symbol*: install a placeholder and wait
             on its event *)
          match placeholder_event sc name with
          | None -> search_scope ~strategy ~stats ~kind ~use_off ~first sc name
          | Some ev ->
              Eff.work Costs.placeholder_create;
              Ls.record_dky stats;
              dky_wait sc name ev;
              retry_optimistic ~strategy ~stats ~kind ~use_off sc name))

and retry_optimistic ~strategy ~stats ~kind ~use_off sc name =
  ignore strategy;
  Ls.record_duplicate stats;
  match probe stats sc name ~use_off with
  | Found sym, compl ->
      Ls.record stats ~kind ~found:Ls.AfterDKY ~scope:(classify_hit ~cls:Ls.COuter sym) ~compl;
      record_alias_use stats sym;
      Some sym
  | _ -> None (* placeholder swept: the symbol is not in this scope *)

(* Simple-identifier lookup, starting in [scope] (the searching stream's
   own scope).  The starting scope is probed without any DKY wait: the
   only task that searches a scope while that scope is incomplete is the
   scope's own parser/declaration analyzer, whose view is exactly the
   sequential compiler's.  Builtins are consulted immediately after the
   starting scope (§2.2), then the search chains outward. *)
let lookup ~strategy ~stats ~use_off ~scope name =
  record_slice_probe stats scope name;
  let self_hit =
    match probe stats scope name ~use_off with
    | Found sym, compl ->
        Ls.record stats ~kind:Ls.Simple ~found:Ls.FirstTry ~scope:(classify_hit ~cls:Ls.CSelf sym)
          ~compl;
        record_alias_use stats sym;
        Some sym
    | _ -> None
  in
  match self_hit with
  | Some _ -> self_hit
  | None -> (
      match Builtins.find name with
      | Some b ->
          Ls.record stats ~kind:Ls.Simple ~found:Ls.FirstTry ~scope:Ls.CBuiltin ~compl:Ls.Complete;
          Some b
      | None ->
          let rec up sc =
            match sc.parent with
            | None ->
                Ls.record_never stats ~kind:Ls.Simple;
                None
            | Some p -> (
                match search_scope ~strategy ~stats ~kind:Ls.Simple ~use_off ~first:false p name with
                | Some sym -> Some sym
                | None -> up p)
          in
          up scope)

(* Qualified-identifier lookup: [scope] is the explicitly designated
   module scope (M in M.x); there is no outward chaining.  Definition
   modules are fully visible, so [use_off] is immaterial. *)
let lookup_qualified ~strategy ~stats ~scope name =
  match search_scope ~strategy ~stats ~kind:Ls.Qualified ~use_off:max_int ~first:true scope name with
  | Some sym -> Some sym
  | None ->
      Ls.record_never stats ~kind:Ls.Qualified;
      None
