(** The module registry — the paper's "once-only table" (§3): module
    name to definition-module scope, guaranteeing each interface is
    processed exactly once no matter how many modules import it. *)

type t

val create : unit -> t

(** [intern t name] returns the interface's scope and whether this call
    created it; the creator is responsible for spawning (or, in the
    sequential compiler, immediately running) its processing. *)
val intern : t -> string -> Symtab.t * bool

val find : t -> string -> Symtab.t option
val count : t -> int

(** Registered names, sorted. *)
val names : t -> string list

(** All (name, scope) pairs, sorted by name — for harvesting completed
    interfaces into the build cache after a compilation. *)
val to_list : t -> (string * Symtab.t) list
