(* The compiler's type representations and compatibility rules.

   Structured types (enumerations, arrays, records, pointers, sets)
   carry unique ids and obey name equivalence, as in Modula-2; basic
   types and subranges are compared structurally.  Unique ids are only
   used for equality tests inside one compilation — nothing derived from
   them reaches the generated code, so concurrent allocation order does
   not perturb compiler output. *)

type ty =
  | TInt
  | TCard
  | TBool
  | TChar
  | TReal
  | TBitset
  | TEnum of enum_info
  | TSub of ty * int * int (* base, lo, hi *)
  | TArr of arr_info
  | TOpenArr of ty (* open-array formal: ARRAY OF elem *)
  | TRec of rec_info
  | TPtr of ptr_info
  | TSet of set_info
  | TProc of signature
  | TStrLit of int (* string literal of length n *)
  | TNil
  | TExc (* Modula-2+ EXCEPTION *)
  | TMutex (* Modula-2+ MUTEX (LOCK target) *)
  | TErr (* error type: compatible with everything, silences cascades *)

and enum_info = { euid : int; ename : string; elems : string array }
and arr_info = { auid : int; index : ty; lo : int; hi : int; elem : ty }
and field = { fty : ty; fslot : int }
and rec_info = { ruid : int; rname : string; fields : (string * field) list }
and ptr_info = { puid : int; pname : string; mutable target : ty }
and set_info = { suid : int; sbase : ty; slo : int; shi : int }
and param = { mode_var : bool; pty : ty }
and signature = { params : param list; result : ty option }

let next_uid = Atomic.make 1
let fresh_uid () = Atomic.fetch_and_add next_uid 1

(* Unmarshalled artifacts carry uids allocated by a previous process;
   raise the counter past them so fresh allocations cannot collide. *)
let rec bump_uid_floor floor =
  let cur = Atomic.get next_uid in
  if cur <= floor && not (Atomic.compare_and_set next_uid cur (floor + 1))
  then bump_uid_floor floor

(* Maximum set element range: sets are compiled to a 62-bit mask. *)
let max_set_bits = 62

let rec name = function
  | TInt -> "INTEGER"
  | TCard -> "CARDINAL"
  | TBool -> "BOOLEAN"
  | TChar -> "CHAR"
  | TReal -> "REAL"
  | TBitset -> "BITSET"
  | TEnum e -> e.ename
  | TSub (b, lo, hi) -> Printf.sprintf "[%d..%d] OF %s" lo hi (name b)
  | TArr a -> Printf.sprintf "ARRAY [%d..%d] OF %s" a.lo a.hi (name a.elem)
  | TOpenArr e -> Printf.sprintf "ARRAY OF %s" (name e)
  | TRec r -> if r.rname = "" then "RECORD" else r.rname
  | TPtr p -> if p.pname = "" then "POINTER" else p.pname
  | TSet s -> Printf.sprintf "SET OF %s" (name s.sbase)
  | TProc _ -> "PROCEDURE"
  | TStrLit n -> Printf.sprintf "STRING[%d]" n
  | TNil -> "NIL"
  | TExc -> "EXCEPTION"
  | TMutex -> "MUTEX"
  | TErr -> "<error>"

(* Strip subranges down to the base type. *)
let rec base = function TSub (b, _, _) -> base b | t -> t

let is_error t = base t = TErr

(* Ordinal types: usable as array indexes, case selectors, FOR control
   variables and set bases. *)
let is_ordinal t =
  match base t with
  | TInt | TCard | TBool | TChar | TEnum _ -> true
  | TStrLit 1 -> true (* a character literal like 'A' *)
  | TErr -> true
  | _ -> false

let is_numeric t = match base t with TInt | TCard | TErr -> true | _ -> false

(* Inclusive value bounds of an ordinal type, used for subrange and FOR
   checks and for set-element ranges. *)
let bounds = function
  | TInt -> (min_int / 2, max_int / 2)
  | TCard -> (0, max_int / 2)
  | TBool -> (0, 1)
  | TChar -> (0, 255)
  | TEnum e -> (0, Array.length e.elems - 1)
  | TSub (_, lo, hi) -> (lo, hi)
  | TErr -> (0, 0)
  | t -> invalid_arg ("Types.bounds: not ordinal: " ^ name t)

(* Same type, by Modula-2 name equivalence. *)
let rec equal a b =
  match (base a, base b) with
  | TErr, _ | _, TErr -> true
  | TInt, TInt | TCard, TCard | TBool, TBool | TChar, TChar | TReal, TReal -> true
  | TBitset, TBitset -> true
  | TNil, TNil | TExc, TExc | TMutex, TMutex -> true
  | TEnum x, TEnum y -> x.euid = y.euid
  | TArr x, TArr y -> x.auid = y.auid
  | TRec x, TRec y -> x.ruid = y.ruid
  | TPtr x, TPtr y -> x.puid = y.puid
  | TSet x, TSet y -> x.suid = y.suid || (equal x.sbase y.sbase && x.slo = y.slo && x.shi = y.shi)
  | TStrLit m, TStrLit n -> m = n
  | TOpenArr x, TOpenArr y -> equal x y
  | TProc sa, TProc sb -> signature_equal sa sb
  | _ -> false

and signature_equal sa sb =
  List.length sa.params = List.length sb.params
  && List.for_all2 (fun p q -> p.mode_var = q.mode_var && equal p.pty q.pty) sa.params sb.params
  &&
  match (sa.result, sb.result) with
  | None, None -> true
  | Some a, Some b -> equal a b
  | _ -> false

(* Assignment compatibility: v := e legal when the types are equal, one
   is a subrange of the other's base, INTEGER/CARDINAL mix, a character
   string of length 1 is a CHAR, a string fits a character array, or NIL
   meets a pointer. *)
let assignable ~dst ~src =
  if is_error dst || is_error src then true
  else
    equal dst src
    || (is_numeric dst && is_numeric src)
    || (base dst = TChar && match src with TStrLit 1 -> true | _ -> base src = TChar)
    || (match (base dst, base src) with
       | TArr a, TStrLit n -> equal a.elem TChar && n <= a.hi - a.lo + 1
       | TPtr _, TNil -> true
       | TProc _, TNil -> true
       | TBitset, TSet s -> s.slo >= 0 && s.shi < max_set_bits
       | TSet s, TBitset -> s.slo >= 0 && s.shi < max_set_bits
       | _ -> false)

(* Expression compatibility for binary operators and CASE labels. *)
let compatible a b =
  if is_error a || is_error b then true
  else
    equal a b
    || (is_numeric a && is_numeric b)
    || (base a = TChar && b = TStrLit 1)
    || (base b = TChar && a = TStrLit 1)
    || (match (base a, base b) with
       | TPtr _, TNil | TNil, TPtr _ -> true
       | TProc _, TNil | TNil, TProc _ -> true
       | TBitset, TSet _ | TSet _, TBitset -> true
       | _ -> false)

(* Actual-to-formal compatibility.  VAR parameters require type identity
   (the callee aliases the variable); value parameters follow assignment
   compatibility; an open-array formal accepts any array (or string, for
   ARRAY OF CHAR) with a compatible element type. *)
let param_compat ~(formal : param) ~actual =
  if is_error actual then true
  else
    match formal.pty with
    | TOpenArr elem -> (
        match base actual with
        | TArr a -> equal a.elem elem
        | TStrLit _ -> equal elem TChar
        | TOpenArr e -> equal e elem
        | _ -> false)
    | fty -> if formal.mode_var then equal fty actual else assignable ~dst:fty ~src:actual

(* Number of value slots a record field or variable of this type occupies
   in the VM: always 1 (values are boxed). *)
let size_slots (_ : ty) = 1
