(** The compiler's type representations and compatibility rules.

    Structured types (enumerations, arrays, records, pointers, sets)
    carry unique ids and obey Modula-2 name equivalence; basic types and
    subranges compare structurally.  Ids never reach generated code, so
    concurrent allocation order cannot perturb compiler output. *)

type ty =
  | TInt
  | TCard
  | TBool
  | TChar
  | TReal
  | TBitset
  | TEnum of enum_info
  | TSub of ty * int * int  (** base, lo, hi *)
  | TArr of arr_info
  | TOpenArr of ty  (** open-array formal: ARRAY OF elem *)
  | TRec of rec_info
  | TPtr of ptr_info
  | TSet of set_info
  | TProc of signature
  | TStrLit of int  (** string literal of length n *)
  | TNil
  | TExc  (** Modula-2+ EXCEPTION *)
  | TMutex  (** Modula-2+ MUTEX (LOCK target) *)
  | TErr  (** error type: compatible with everything, silences cascades *)

and enum_info = { euid : int; ename : string; elems : string array }
and arr_info = { auid : int; index : ty; lo : int; hi : int; elem : ty }
and field = { fty : ty; fslot : int }
and rec_info = { ruid : int; rname : string; fields : (string * field) list }
and ptr_info = { puid : int; pname : string; mutable target : ty }
and set_info = { suid : int; sbase : ty; slo : int; shi : int }
and param = { mode_var : bool; pty : ty }
and signature = { params : param list; result : ty option }

val fresh_uid : unit -> int

(** Ensure future {!fresh_uid} results exceed [floor].  Called when
    loading interface artifacts whose uids were allocated by a previous
    process, so fresh types cannot collide with unmarshalled ones. *)
val bump_uid_floor : int -> unit

(** Sets compile to a 62-bit mask: the maximum element range. *)
val max_set_bits : int

(** A printable name, for diagnostics. *)
val name : ty -> string

(** Strip subranges down to the base type. *)
val base : ty -> ty

val is_error : ty -> bool

(** Usable as array index, case selector, FOR control and set base:
    includes CHAR-literal strings of length 1. *)
val is_ordinal : ty -> bool

val is_numeric : ty -> bool

(** Inclusive value bounds of an ordinal type.
    @raise Invalid_argument on non-ordinal types. *)
val bounds : ty -> int * int

(** Same type, by name equivalence. *)
val equal : ty -> ty -> bool

val signature_equal : signature -> signature -> bool

(** Assignment compatibility (v := e): type equality, subrange/base,
    INTEGER/CARDINAL mixing, CHAR vs length-1 string, string into
    fitting CHAR array, NIL into pointers and procedure types,
    BITSET vs SET OF small range. *)
val assignable : dst:ty -> src:ty -> bool

(** Operand compatibility for binary operators and CASE labels. *)
val compatible : ty -> ty -> bool

(** Actual-to-formal compatibility: VAR requires identity, value follows
    assignability, open arrays accept any array (or string, for CHAR)
    with a compatible element type. *)
val param_compat : formal:param -> actual:ty -> bool

(** VM slots occupied by a value of this type (always 1: values are
    boxed). *)
val size_slots : ty -> int
