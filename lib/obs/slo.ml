(* The SLO flight recorder: always-on, bounded, virtual-time.

   A service that sheds, batches and retries needs an answer to "what
   happened to request X?" *after* the fact, without having paid for
   full tracing on every request.  This recorder is the cheap always-on
   half of that story: a bounded ring of per-job outcomes plus
   per-class latency objectives with burn-rate accounting, and a trip
   list — one entry per job that missed its latency objective, was
   shed (admission or deadline), hit a fault, or tripped a
   happens-before invariant.  Each trip carries the job's trace id, so
   when tracing *is* on, the caller resolves trips into post-mortem
   span bundles ([Dtrace.bundle]) — the flight-recorder dump.

   Burn rate is the classic SLO currency: with an objective of
   "latency <= target for at least (1 - budget) of jobs", the burn
   rate over the ring window is (observed miss fraction) / budget —
   1.0 means the error budget is being consumed exactly as provisioned,
   above 1.0 the class is on fire.  Everything is virtual-time and
   allocation-bounded: [observe] is O(1), no wall clock anywhere. *)

type objective = {
  o_class : string; (* job class, e.g. "p0" (priority 0) *)
  o_target : float; (* sojourn objective, virtual seconds *)
  o_budget : float; (* allowed miss fraction, e.g. 0.1 *)
}

(* Priority classes p0 (batch) .. p2 (interactive): tighter targets for
   higher priorities, one-in-ten error budget each. *)
let default_objectives =
  [
    { o_class = "p0"; o_target = 240.0; o_budget = 0.1 };
    { o_class = "p1"; o_target = 120.0; o_budget = 0.1 };
    { o_class = "p2"; o_target = 60.0; o_budget = 0.1 };
  ]

type reason = Latency_miss | Shed | Deadline_shed | Fault | Hb_trip

let reason_name = function
  | Latency_miss -> "latency-miss"
  | Shed -> "shed"
  | Deadline_shed -> "deadline-shed"
  | Fault -> "fault"
  | Hb_trip -> "hb-trip"

type entry = {
  e_job : int;
  e_class : string;
  e_trace : string;
  e_sojourn : float; (* virtual seconds; negative for jobs never served *)
  e_at : float; (* completion/shed time, virtual seconds *)
  e_miss : bool; (* sojourn exceeded the class objective *)
}

type trip = {
  t_job : int;
  t_class : string;
  t_trace : string;
  t_reason : reason;
  t_at : float; (* virtual seconds *)
  t_detail : string;
}

type class_counters = { mutable c_seen : int; mutable c_missed : int }

type t = {
  cap : int;
  objectives : objective list;
  ring : entry option array; (* bounded flight-recorder window *)
  mutable next : int; (* ring write cursor *)
  mutable total : int; (* entries ever observed *)
  counters : (string, class_counters) Hashtbl.t;
  mutable trips : trip list; (* newest first, bounded by [cap] *)
  mutable trip_count : int; (* trips ever recorded *)
}

let create ?(cap = 512) ?(objectives = default_objectives) () =
  if cap < 1 then invalid_arg "Slo.create: cap must be positive";
  {
    cap;
    objectives;
    ring = Array.make cap None;
    next = 0;
    total = 0;
    counters = Hashtbl.create 8;
    trips = [];
    trip_count = 0;
  }

let objective_for t cls = List.find_opt (fun o -> o.o_class = cls) t.objectives

let counters_for t cls =
  match Hashtbl.find_opt t.counters cls with
  | Some c -> c
  | None ->
      let c = { c_seen = 0; c_missed = 0 } in
      Hashtbl.replace t.counters cls c;
      c

let trip t ~job ~cls ~trace ~reason ~at ~detail =
  t.trip_count <- t.trip_count + 1;
  let tr = { t_job = job; t_class = cls; t_trace = trace; t_reason = reason; t_at = at; t_detail = detail } in
  t.trips <- tr :: (if List.length t.trips >= t.cap then List.filteri (fun i _ -> i < t.cap - 1) t.trips else t.trips)

(* Record one served job; auto-trips [Latency_miss] when the sojourn
   exceeds the class objective. *)
let observe t ~job ~cls ~trace ~sojourn ~at =
  let miss = match objective_for t cls with Some o -> sojourn > o.o_target | None -> false in
  let c = counters_for t cls in
  c.c_seen <- c.c_seen + 1;
  if miss then begin
    c.c_missed <- c.c_missed + 1;
    trip t ~job ~cls ~trace ~reason:Latency_miss ~at
      ~detail:
        (Printf.sprintf "sojourn %.2fs > objective %.2fs" sojourn
           (match objective_for t cls with Some o -> o.o_target | None -> 0.0))
  end;
  t.ring.(t.next) <- Some { e_job = job; e_class = cls; e_trace = trace; e_sojourn = sojourn; e_at = at; e_miss = miss };
  t.next <- (t.next + 1) mod t.cap;
  t.total <- t.total + 1

(* Ring contents, oldest first. *)
let entries t =
  let n = min t.total t.cap in
  List.init n (fun i -> t.ring.((t.next - n + i + t.cap * 2) mod t.cap)) |> List.filter_map Fun.id

let trips t = List.rev t.trips
let trip_count t = t.trip_count

(* Miss fraction over the whole run for [cls]; 0 when unseen. *)
let miss_fraction t cls =
  match Hashtbl.find_opt t.counters cls with
  | Some c when c.c_seen > 0 -> float_of_int c.c_missed /. float_of_int c.c_seen
  | _ -> 0.0

(* Burn rate for [cls]: miss fraction / error budget.  1.0 = consuming
   the budget exactly as provisioned; > 1.0 = out of budget. *)
let burn_rate t cls =
  match objective_for t cls with
  | Some o when o.o_budget > 0.0 -> miss_fraction t cls /. o.o_budget
  | _ -> 0.0

(* Classes seen or configured, sorted. *)
let classes t =
  let seen = Hashtbl.fold (fun k _ acc -> k :: acc) t.counters [] in
  List.sort_uniq compare (seen @ List.map (fun o -> o.o_class) t.objectives)

let summary t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "slo: %d observed (window %d), %d trip%s\n" t.total (min t.total t.cap)
       t.trip_count
       (if t.trip_count = 1 then "" else "s"));
  List.iter
    (fun cls ->
      let c = Option.value ~default:{ c_seen = 0; c_missed = 0 } (Hashtbl.find_opt t.counters cls) in
      let target = match objective_for t cls with Some o -> o.o_target | None -> 0.0 in
      Buffer.add_string buf
        (Printf.sprintf "  %-4s target %7.1fs  served %4d  missed %3d  burn %5.2fx\n" cls target
           c.c_seen c.c_missed (burn_rate t cls)))
    (classes t);
  Buffer.contents buf

let to_json t =
  let module J = Json in
  J.Obj
    [
      ("observed", J.Int t.total);
      ("window", J.Int (min t.total t.cap));
      ("trips", J.Int t.trip_count);
      ( "classes",
        J.Arr
          (List.map
             (fun cls ->
               let c = Option.value ~default:{ c_seen = 0; c_missed = 0 } (Hashtbl.find_opt t.counters cls) in
               J.Obj
                 [
                   ("class", J.Str cls);
                   ("target_seconds", J.Float (match objective_for t cls with Some o -> o.o_target | None -> 0.0));
                   ("served", J.Int c.c_seen);
                   ("missed", J.Int c.c_missed);
                   ("burn_rate", J.Float (burn_rate t cls));
                 ])
             (classes t)) );
      ( "trip_log",
        J.Arr
          (List.map
             (fun tr ->
               J.Obj
                 [
                   ("job", J.Int tr.t_job);
                   ("class", J.Str tr.t_class);
                   ("trace", J.Str tr.t_trace);
                   ("reason", J.Str (reason_name tr.t_reason));
                   ("at_seconds", J.Float tr.t_at);
                   ("detail", J.Str tr.t_detail);
                 ])
             (trips t)) );
    ]
