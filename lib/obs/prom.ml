(* Prometheus text exposition format.

   Renders a [Metrics] snapshot (plus any synthetic samples a report
   adds) as the Prometheus text format, one # TYPE header per metric
   name and histograms expanded into cumulative _bucket/_sum/_count
   series.  The snapshot is already sorted by (name, labels), so the
   output is byte-deterministic.

   [validate] is a line-level checker for the same grammar — enough for
   the CLI and CI to assert that an export would be accepted by a
   Prometheus scraper, without a client library dependency. *)

let escape_label v =
  let buf = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6f" v

let labels_str = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) labels)
      ^ "}"

let render (snap : Metrics.snapshot) : string =
  let buf = Buffer.create 2048 in
  let last_type = ref "" in
  let type_line name kind =
    if !last_type <> name then begin
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind);
      last_type := name
    end
  in
  List.iter
    (fun (s : Metrics.sample) ->
      let name = s.Metrics.s_name and labels = s.Metrics.s_labels in
      match s.Metrics.s_value with
      | Metrics.VCounter v ->
          type_line name "counter";
          Buffer.add_string buf (Printf.sprintf "%s%s %s\n" name (labels_str labels) (num v))
      | Metrics.VGauge v ->
          type_line name "gauge";
          Buffer.add_string buf (Printf.sprintf "%s%s %s\n" name (labels_str labels) (num v))
      | Metrics.VHistogram { h_bounds; h_counts; h_sum; h_count } ->
          type_line name "histogram";
          let cum = ref 0 in
          Array.iteri
            (fun i b ->
              cum := !cum + h_counts.(i);
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" name
                   (labels_str (labels @ [ ("le", num b) ]))
                   !cum))
            h_bounds;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" name (labels_str (labels @ [ ("le", "+Inf") ])) h_count);
          Buffer.add_string buf (Printf.sprintf "%s_sum%s %s\n" name (labels_str labels) (num h_sum));
          Buffer.add_string buf (Printf.sprintf "%s_count%s %d\n" name (labels_str labels) h_count))
    snap;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Exposition-format line checker *)

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let check_line line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let name_ok () =
    match peek () with
    | Some c when is_name_start c ->
        while (match peek () with Some c when is_name_char c -> true | _ -> false) do
          pos := !pos + 1
        done;
        true
    | _ -> false
  in
  if not (name_ok ()) then Error "expected metric name"
  else begin
    (* optional label set *)
    let label_err = ref None in
    (if peek () = Some '{' then begin
       pos := !pos + 1;
       let fin = ref false in
       while not !fin && !label_err = None do
         if not (name_ok ()) then label_err := Some "expected label name"
         else if peek () <> Some '=' then label_err := Some "expected '='"
         else begin
           pos := !pos + 1;
           if peek () <> Some '"' then label_err := Some "expected '\"'"
           else begin
             pos := !pos + 1;
             let closed = ref false in
             while (not !closed) && !pos < n do
               (match line.[!pos] with
               | '\\' -> pos := !pos + 1 (* skip escaped char *)
               | '"' -> closed := true
               | _ -> ());
               pos := !pos + 1
             done;
             if not !closed then label_err := Some "unterminated label value"
             else
               match peek () with
               | Some ',' -> pos := !pos + 1
               | Some '}' ->
                   pos := !pos + 1;
                   fin := true
               | _ -> label_err := Some "expected ',' or '}'"
           end
         end
       done
     end);
    match !label_err with
    | Some e -> Error e
    | None ->
        if peek () <> Some ' ' then Error "expected space before value"
        else begin
          let v = String.sub line (!pos + 1) (n - !pos - 1) in
          match v with
          | "+Inf" | "-Inf" | "NaN" -> Ok ()
          | _ -> ( match float_of_string_opt v with Some _ -> Ok () | None -> Error "bad value")
        end
  end

let validate (text : string) : (unit, string) result =
  let lines = String.split_on_char '\n' text in
  let rec go i = function
    | [] -> Ok ()
    | "" :: rest -> go (i + 1) rest
    | line :: rest when String.length line > 0 && line.[0] = '#' -> go (i + 1) rest
    | line :: rest -> (
        match check_line line with
        | Ok () -> go (i + 1) rest
        | Error e -> Error (Printf.sprintf "line %d: %s (%S)" i e line))
  in
  go 1 lines
