(** Distributed-trace assembly: the span forest behind [m2c trace].

    Traced serve/farm runs bracket every unit of a request's life with
    [Evlog.Span_start]/[Span_end] pairs and capture each nested
    [Driver.compile] log as a {!sub}; {!assemble} folds both into one
    forest on a single virtual-time axis.  Tile-kind children (queue,
    service, probe, compile, retry, fetch, compute) must exactly
    partition their parent; annotation kinds (rpc legs, inner engine
    tasks) are containment-only.  All times are Evlog virtual units;
    renderers take [sec_per_unit]. *)

type span = {
  d_span : int;
  d_parent : int;  (** -1 = root *)
  d_trace : string;
  d_name : string;
  d_kind : string;
  d_node : int;  (** -1 = not node-bound *)
  d_t0 : float;  (** virtual units *)
  d_t1 : float;
  d_status : string;  (** ["ok"], ["hit"], ["shed"], ["deadline"], ["crashed"], ["lost"], ... *)
}

(** A nested engine capture owned by one span: [sub_t0] is the owner's
    absolute start (units), [sub_scale] stretches inner units to outer
    ones (gray-failed farm nodes run slowed down). *)
type sub = {
  sub_owner : int;
  sub_t0 : float;
  sub_scale : float;
  sub_log : Evlog.record array;
  sub_names : (int * string) list;
}

type t = {
  spans : span list;  (** ascending span id *)
  end_time : float;  (** last span end / last record, units *)
}

val duration : span -> float

(** The tiling relation: must children of [child_kind] partition a
    [parent_kind] span exactly? *)
val is_tile : parent_kind:string -> child_kind:string -> bool

val roots : t -> span list

(** Child lists per parent span id, sorted by (t0, id). *)
val children : t -> (int, span list) Hashtbl.t

(** Fold a captured outer log plus nested engine captures into a
    forest.  Spans left open (a crashed node's scheduled ends never
    fired) close at their parent's end with status ["lost"]; inner
    task spans are rebased at the owner's start, scaled by
    [sub_scale], clamped into the owner interval, kind
    ["inner-task"]. *)
val assemble : ?subs:sub list -> Evlog.record array -> t

(** Spans whose parent id names no span in the forest. *)
val orphans : t -> span list

(** (child, parent) pairs where the child interval leaks outside the
    parent's. *)
val containment_violations : t -> (span * span) list

(** Parents whose tile children do not exactly partition them (gap,
    overlap, or mismatched extent), with a description.  Crash-
    truncated parents are exempt. *)
val tiling_violations : t -> (span * string) list

(** Orphans, containment, tiling — first failure as [Error]. *)
val validate : t -> (unit, string) result

(** All spans of one trace, chronological — the post-mortem bundle the
    SLO flight recorder dumps for a tripped job. *)
val bundle : t -> trace:string -> span list

(** One attributed interval of the cross-node critical-path walk. *)
type cseg = { c_t0 : float; c_t1 : float; c_bucket : string; c_name : string; c_node : int }

type crit = {
  c_end : float;  (** end-to-end virtual units, tiled exactly by [c_segs] *)
  c_segs : cseg list;  (** chronological *)
  c_buckets : (string * float) list;  (** bucket -> units, largest first *)
  c_critical_node : int;  (** node carrying the most on-path compute; -1 none *)
  c_critical_rpc : string;  (** longest on-path network fetch; [""] none *)
}

(** Cross-node critical path: walk backwards from the last-finishing
    work span (job / task / assembly), recursing through tile children
    and jumping to the latest-finishing predecessor at each span start
    (gaps charged to ["sched-wait"], the head to ["arrival"]).  Buckets:
    ["queue-wait"], ["network"], ["remote-cache"], ["compute"],
    ["sched-wait"], ["arrival"].  The bucket totals sum to [c_end]
    exactly by construction. *)
val critpath : t -> crit

(** Sum of all attributed bucket units; equals [c_end] when complete. *)
val crit_total : crit -> float

(** Per-request waterfall: each root span's subtree, one row per span
    with interval, duration, and a bar scaled to the root window.
    [max_depth] 2 (default) shows the request anatomy, 3 the service
    segments (probe/compile or fetch/compute), 4 adds inner engine
    tasks. *)
val waterfall : ?width:int -> ?max_depth:int -> sec_per_unit:float -> t -> string

(** OTLP-flavoured JSON (resourceSpans / scopeSpans / spans, 32-hex
    trace ids, virtual-time UnixNanos).  Deterministic: same-seed runs
    export byte-identical documents. *)
val to_otlp : sec_per_unit:float -> t -> Json.t
