(* The virtual-time metrics registry.

   A process-global registry of counters, gauges and fixed-bucket
   histograms keyed by metric name + label set, accumulated while the
   compiler runs on the DES engine.  Values measure *virtual* quantities
   (work units, task counts, probe counts): the registry itself never
   charges [Eff.work] and allocates nothing while disabled, so a run
   with telemetry on has exactly the virtual timings of a run with it
   off — the same invariant [Evlog] maintains for the event log.

   Hot-path call sites are guarded by [enabled ()] before any label
   list is built, mirroring the [Evlog.enabled] discipline:

     if Metrics.enabled () then
       Metrics.count ~labels:[ ("cls", cls) ] "mcc_sched_dispatch_total" 1.0

   [with_registry f] runs [f] with a fresh enabled registry and returns
   its deterministic snapshot: samples sorted by (name, labels), so two
   identical runs export byte-identical text.  Like [Evlog.capture] it
   does not nest and restores the previous state on the way out. *)

type histo = {
  bounds : float array; (* ascending upper bounds; +inf bucket implicit *)
  counts : int array; (* length = Array.length bounds + 1 *)
  mutable sum : float;
  mutable count : int;
}

type cell = Counter of float ref | Gauge of float ref | Histogram of histo

type value =
  | VCounter of float
  | VGauge of float
  | VHistogram of { h_bounds : float array; h_counts : int array; h_sum : float; h_count : int }

type sample = { s_name : string; s_labels : (string * string) list; s_value : value }
type snapshot = sample list

let enabled_flag = ref false
let tbl : (string * (string * string) list, cell) Hashtbl.t = Hashtbl.create 64

let enabled () = !enabled_flag

(* Default histogram buckets for virtual-work-unit durations: spans the
   cost table from a single dispatch (~15 units) to a whole long
   procedure's code generation. *)
let duration_bounds = [| 100.0; 300.0; 1000.0; 3000.0; 10000.0; 30000.0; 100000.0; 300000.0 |]

let key name labels = (name, List.sort compare labels)

let cell name labels make =
  let k = key name labels in
  match Hashtbl.find_opt tbl k with
  | Some c -> c
  | None ->
      let c = make () in
      Hashtbl.add tbl k c;
      c

let count ?(labels = []) name v =
  if !enabled_flag then
    match cell name labels (fun () -> Counter (ref 0.0)) with
    | Counter r -> r := !r +. v
    | _ -> invalid_arg (Printf.sprintf "Metrics.count: %s is not a counter" name)

let incr ?labels name = count ?labels name 1.0

let gauge ?(labels = []) name v =
  if !enabled_flag then
    match cell name labels (fun () -> Gauge (ref v)) with
    | Gauge r -> r := v
    | _ -> invalid_arg (Printf.sprintf "Metrics.gauge: %s is not a gauge" name)

(* A high-watermark gauge: keeps the maximum of all reported values. *)
let gauge_max ?(labels = []) name v =
  if !enabled_flag then
    match cell name labels (fun () -> Gauge (ref v)) with
    | Gauge r -> if v > !r then r := v
    | _ -> invalid_arg (Printf.sprintf "Metrics.gauge_max: %s is not a gauge" name)

let observe ?(labels = []) ?(bounds = duration_bounds) name v =
  if !enabled_flag then
    match
      cell name labels (fun () ->
          Histogram { bounds; counts = Array.make (Array.length bounds + 1) 0; sum = 0.0; count = 0 })
    with
    | Histogram h ->
        let i = ref 0 in
        while !i < Array.length h.bounds && v > h.bounds.(!i) do
          i := !i + 1 (* Stdlib.incr is shadowed by the counter helper *)
        done;
        h.counts.(!i) <- h.counts.(!i) + 1;
        h.sum <- h.sum +. v;
        h.count <- h.count + 1
    | _ -> invalid_arg (Printf.sprintf "Metrics.observe: %s is not a histogram" name)

(* Deterministic export: samples sorted by (name, labels).  The cells
   are copied out, so a snapshot is immune to later mutation. *)
let snapshot () : snapshot =
  Hashtbl.fold
    (fun (name, labels) c acc ->
      let v =
        match c with
        | Counter r -> VCounter !r
        | Gauge r -> VGauge !r
        | Histogram h ->
            VHistogram
              {
                h_bounds = Array.copy h.bounds;
                h_counts = Array.copy h.counts;
                h_sum = h.sum;
                h_count = h.count;
              }
      in
      { s_name = name; s_labels = labels; s_value = v } :: acc)
    tbl []
  |> List.sort (fun a b -> compare (a.s_name, a.s_labels) (b.s_name, b.s_labels))

let reset () = Hashtbl.reset tbl

(* Run [f] with a fresh enabled registry; return its result and the
   final snapshot.  Does not nest; the previous registry state
   (normally "disabled, empty") is restored on exit, even on
   exceptions. *)
let with_registry f =
  let saved_enabled = !enabled_flag in
  let saved = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  enabled_flag := true;
  Hashtbl.reset tbl;
  let restore () =
    let snap = snapshot () in
    enabled_flag := saved_enabled;
    Hashtbl.reset tbl;
    List.iter (fun (k, v) -> Hashtbl.add tbl k v) saved;
    snap
  in
  match f () with
  | v -> (v, restore ())
  | exception e ->
      ignore (restore ());
      raise e

(* Snapshot accessors, for tests and reports. *)

let find (snap : snapshot) ?(labels = []) name =
  let labels = List.sort compare labels in
  List.find_opt (fun s -> s.s_name = name && s.s_labels = labels) snap

let counter_value (snap : snapshot) ?labels name =
  match find snap ?labels name with Some { s_value = VCounter v; _ } -> v | _ -> 0.0

(* Sum a counter across all label sets. *)
let counter_total (snap : snapshot) name =
  List.fold_left
    (fun acc s ->
      match s.s_value with VCounter v when s.s_name = name -> acc +. v | _ -> acc)
    0.0 snap
