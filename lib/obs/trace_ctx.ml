(* Deterministic trace-context allocation.

   Distributed-tracing identity with no wall clock and no global
   randomness: a trace id is a 64-bit FNV-1a hash of a (domain, seed,
   key) triple — the same serve/farm run with the same seed names its
   traces identically, byte for byte — and span ids come from a
   counter that every traced run resets at its entry point.  Because
   span allocation order is a pure function of the run's virtual
   schedule (itself seeded), same-seed runs allocate identical span id
   sequences, which is what makes the exported traces `cmp`-equal in
   CI.

   The record mirrors W3C trace-context / OTLP shape — trace id, span
   id, parent span id — but stays plain ints/strings so the bottom-of-
   stack [Mcc_obs] library needs no new dependencies. *)

type t = { trace : string; span : int; parent : int (* -1 = root *) }

let counter = ref 0
let reset () = counter := 0

let fresh () =
  incr counter;
  !counter

(* FNV-1a, 64-bit: tiny, stable, and good enough to keep distinct
   (domain, seed, key) triples from colliding in practice. *)
let fnv64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime) s;
  !h

let trace_id ~domain ~seed ~key =
  Printf.sprintf "%016Lx" (fnv64 (Printf.sprintf "%s#%d#%s" domain seed key))

let root ~trace = { trace; span = fresh (); parent = -1 }
let child t = { trace = t.trace; span = fresh (); parent = t.span }
