(** The virtual-time metrics registry.

    A process-global registry of counters, gauges and fixed-bucket
    histograms keyed by metric name + label set, accumulated while the
    compiler runs on the DES engine.  Values measure {e virtual}
    quantities (work units, task counts, probe counts): the registry
    never charges [Eff.work] and allocates nothing while disabled, so a
    run with telemetry on has exactly the virtual timings of a run with
    it off — the same invariant {!Evlog} maintains for the event log.

    Guard hot-path call sites with {!enabled} before building any label
    list:

    {[
      if Metrics.enabled () then
        Metrics.count ~labels:[ ("cls", cls) ] "mcc_sched_dispatch_total" 1.0
    ]} *)

(** {1 Snapshots} *)

type value =
  | VCounter of float
  | VGauge of float
  | VHistogram of { h_bounds : float array; h_counts : int array; h_sum : float; h_count : int }
      (** [h_counts] has one bucket per bound plus the implicit +inf
          bucket. *)

type sample = { s_name : string; s_labels : (string * string) list; s_value : value }

(** Samples sorted by (name, labels): two identical runs export
    byte-identical snapshots. *)
type snapshot = sample list

(** {1 Recording} *)

(** Whether a registry is live; false outside {!with_registry} unless a
    caller flips it via recording functions' guards. *)
val enabled : unit -> bool

(** Default histogram buckets for virtual-work-unit durations: spans the
    cost table from a single dispatch to a whole long procedure's code
    generation. *)
val duration_bounds : float array

(** Add [v] to a counter (created at 0 on first use).
    @raise Invalid_argument if the name is already a different kind. *)
val count : ?labels:(string * string) list -> string -> float -> unit

(** [count ~labels name 1.0]. *)
val incr : ?labels:(string * string) list -> string -> unit

(** Set a gauge. *)
val gauge : ?labels:(string * string) list -> string -> float -> unit

(** A high-watermark gauge: keeps the maximum of all reported values. *)
val gauge_max : ?labels:(string * string) list -> string -> float -> unit

(** Record one observation into a histogram; [bounds] (ascending upper
    bounds, default {!duration_bounds}) is fixed by the first call. *)
val observe : ?labels:(string * string) list -> ?bounds:float array -> string -> float -> unit

(** {1 Lifecycle} *)

(** Deterministic copy of the registry (immune to later mutation). *)
val snapshot : unit -> snapshot

(** Drop every cell. *)
val reset : unit -> unit

(** Run [f] under a fresh enabled registry and return its result paired
    with the final snapshot.  Does not nest; restores the previous
    registry state on the way out, exceptions included. *)
val with_registry : (unit -> 'a) -> 'a * snapshot

(** {1 Snapshot accessors (tests and reports)} *)

val find : snapshot -> ?labels:(string * string) list -> string -> sample option

(** The counter's value under exactly [labels], 0 when absent. *)
val counter_value : snapshot -> ?labels:(string * string) list -> string -> float

(** Sum of a counter across all label sets. *)
val counter_total : snapshot -> string -> float
