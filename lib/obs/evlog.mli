(** The structured concurrency event log.

    A globally ordered record stream of every synchronization-relevant
    action performed while compiling on the DES engine: symbol
    publishes, scope completions, DKY blocks/unblocks, event
    signal/block/wake, gated-task releases, task spawn/start/finish.
    The happens-before checker ([Mcc_analysis.Hb]) replays it to verify
    the DKY ordering invariants of paper §2.3.3 across perturbed
    schedules; {!Span} and {!Critpath} reconstruct per-task timelines
    and the end-to-end critical path from the same stream.

    Capture is off by default; emission sites guard on {!enabled}
    before allocating a record, and no record charges [Eff.work], so
    default compile timings are unaffected.  DES-only: the single-
    threaded engine appends records in true execution order (the domain
    engine never enables capture). *)

type kind =
  | Task_spawn of {
      task : int;
      name : string;
      cls : string;  (** [Task.cls_name] of the spawned task *)
      gate : int;  (** gate event id, -1 ungated *)
    }
  | Task_start of { task : int }
  | Task_finish of { task : int }
  | Ev_signal of { ev : int; name : string }
  | Ev_block of { ev : int; name : string; producer : int  (** expected signaler, -1 unknown *) }
  | Ev_wake of { ev : int; task : int  (** the woken task *) }
  | Gate_release of { ev : int; task : int  (** the released gated task *) }
  | Scope_intern of { scope : int; name : string }
  | Publish of { scope : int; scope_name : string; sym : string }
  | Complete of { scope : int; scope_name : string }
  | Observe of { scope : int; scope_name : string; sym : string; complete : bool }
  | Auth_miss of { scope : int; scope_name : string; sym : string }
      (** a miss in a {e complete} table — authoritative: the symbol
          must never be published to this scope afterwards *)
  | Dky_block of { scope : int; scope_name : string; sym : string; ev : int }
  | Dky_unblock of { scope : int; scope_name : string; sym : string; ev : int }
  | Fault_inject of { fault : string; victim : string }
      (** an armed fault plan fired at an injection site *)
  | Task_retry of { task : int; attempt : int }
      (** a crashed-at-start task redispatched after virtual-time backoff *)
  | Task_quarantine of { task : int; name : string }
      (** retries exhausted (or resume-crash): the task is permanently failed *)
  | Watchdog_fire of { ev : int; task : int }
      (** the stall watchdog re-delivered a lost wake for [task] *)
  | Job_enqueue of { job : int; session : string }
      (** a compile-server job arrived and was offered to admission *)
  | Job_admit of { job : int; session : string }
      (** admission accepted the job into the bounded queue *)
  | Job_shed of { job : int; session : string }
      (** admission rejected the job (queue full): it is never served *)
  | Job_batch of { job : int; leader : int; size : int }
      (** the job rides [leader]'s batch (shared interface closure) *)
  | Job_done of { job : int; warm : bool }
      (** served; [warm] = answered from the shared module memo *)
  | Node_start of { node : int; procs : int }
      (** a farm node came up ([Mcc_farm]; one stream per farm run) *)
  | Node_dead of { node : int }  (** a node-crash fault fired at a heartbeat *)
  | Node_detect of { node : int }
      (** the coordinator noticed the missed heartbeats and re-shards *)
  | Heartbeat of { node : int }
  | Rpc_fetch of { node : int; peer : int; iface : string; attempt : int }
      (** [node] asks [peer] for an interface artifact; attempt 1 = first try *)
  | Rpc_timeout of { node : int; peer : int; iface : string; attempt : int }
      (** the request (or its reply) was lost; the requester backs off *)
  | Rpc_hedge of { node : int; replica : int; iface : string }
      (** the primary is late: a hedged fetch goes to the replica *)
  | Rpc_serve of { node : int; peer : int; iface : string }
      (** [node] delivered the artifact to [peer] (digest-verified) *)
  | Farm_assign of { node : int; iface : string }  (** sharding placed the closure *)
  | Farm_steal of { node : int; victim : int; iface : string }
      (** an idle node stole a runnable closure from [victim]'s queue *)
  | Farm_reshard of { node : int; iface : string }
      (** a dead node's unfinished closure, reassigned to [node] *)
  | Farm_task_done of { node : int; iface : string }
  | Farm_replicate of { node : int; replica : int; iface : string }
      (** the freshly built artifact was pushed to its replica *)
  | Net_partition of { spec : string }  (** the network split ("even|odd") *)
  | Net_heal
  | Span_start of {
      span : int;  (** [Trace_ctx.fresh] id, unique within the capture *)
      parent : int;  (** owning span id; -1 = a trace root *)
      trace : string;  (** deterministic trace id ({!Trace_ctx.trace_id}) *)
      name : string;  (** display name, e.g. ["job#3"] or ["fetch:M04"] *)
      kind : string;  (** tiling/annotation class: ["job"], ["queue"], ... *)
      node : int;  (** acting farm node; -1 = not node-bound *)
    }
      (** a distributed-tracing span opened: serve/farm runs bracket
          every unit of a request's life with start/end pairs that
          [Dtrace] assembles into the per-request span forest *)
  | Span_end of { span : int; status : string  (** ["ok"], ["shed"], ["deadline"], ... *) }

type record = {
  seq : int;
  time : float;  (** virtual work units at append (see {!set_time}) *)
  task : int;  (** emitting task; -1 = scheduler *)
  kind : kind;
}

val enabled : unit -> bool

(** Record which task's code is currently executing (set by the DES
    engine at every dispatch). *)
val set_task : int -> unit

(** Stamp the virtual clock (set by the DES engine at every agenda
    dispatch); subsequent records carry this time. *)
val set_time : float -> unit

(** Append a record (no-op unless capture is on).  Call sites must
    guard with {!enabled} so the record is not even allocated on the
    default path.  Raises [Invalid_argument] if the stamped virtual
    time is older than the last appended record's: the agenda delivers
    work in nondecreasing time order, so a regression is an engine
    bug. *)
val emit : kind -> unit

(** Number of records appended so far in the live capture. *)
val length : unit -> int

(** Iterate the live capture's records in append order. *)
val iter : (record -> unit) -> unit

(** [capture f] runs [f] with logging on and returns [(f (), log)].
    The previous logging state is saved in full and restored on exit
    (exceptions included), so captures nest: a traced serve/farm run
    captures its job-lifecycle log while each inner
    [Driver.compile ~capture:true] takes its own nested capture whose
    log becomes a [Dtrace] sub-trace of the owning span.  The virtual
    clock restarts at 0: one capture wraps one engine run.  (Untraced
    serve/farm runs wrap inner engines in {!suspend} instead.) *)
val capture : (unit -> 'a) -> 'a * record array

(** [suspend f] runs [f] with emission off, restoring the previous
    state on exit (exceptions included).  Used by the compile server
    around inner [Driver.compile] calls: the inner engine restarts its
    clock at 0, which would trip the capture's monotonic-time assert,
    and the server's log records job lifecycle, not intra-compile
    scheduling. *)
val suspend : (unit -> 'a) -> 'a

val kind_to_string : kind -> string
val record_to_string : record -> string
