(* A minimal deterministic JSON builder and syntax checker.

   The telemetry exporters need (a) byte-stable output — two runs with
   the same seed/config must serialize identically, so field order is
   the construction order and float formatting is fixed — and (b) a way
   for the CLI / bench / CI to assert that what they wrote is
   well-formed without adding a dependency the container doesn't have.
   This is a complete JSON *syntax* validator, not a schema language;
   schema-level checks (required fields, sum invariants) live with the
   producers. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Fixed-format floats: integral values print without a fraction, the
   rest with six decimals.  Total and deterministic (no %g rounding
   surprises across values of different magnitude). *)
let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6f" v

let to_string (v : t) : string =
  let buf = Buffer.create 1024 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_str f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | Arr xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            go x)
          xs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            go x)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Syntax validation (recursive descent over the string) *)

exception Bad of int * string

let validate (s : string) : (unit, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = pos := !pos + 1 in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then pos := !pos + l
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_lit () =
    expect '"';
    let fin = ref false in
    while not !fin do
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
          advance ();
          fin := true
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some c when (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
                  ->
                    advance ()
                | _ -> fail "bad \\u escape"
              done
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some _ -> advance ()
    done
  in
  let digits () =
    let got = ref false in
    while (match peek () with Some c when c >= '0' && c <= '9' -> true | _ -> false) do
      advance ();
      got := true
    done;
    if not !got then fail "expected digit"
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    digits ();
    (match peek () with
    | Some '.' ->
        advance ();
        digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> string_lit ()
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let fin = ref false in
          while not !fin do
            skip_ws ();
            string_lit ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some '}' ->
                advance ();
                fin := true
            | _ -> fail "expected ',' or '}'"
          done
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let fin = ref false in
          while not !fin do
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some ']' ->
                advance ();
                fin := true
            | _ -> fail "expected ',' or ']'"
          done
        end
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    value ();
    skip_ws ();
    if !pos <> n then fail "trailing garbage"
  with
  | () -> Ok ()
  | exception Bad (p, msg) -> Error (Printf.sprintf "invalid JSON at byte %d: %s" p msg)
