(* The per-compilation telemetry report.

   Combines the three telemetry views of one captured run — the span
   decomposition, the critical-path attribution and the metrics
   snapshot — into the renderable/exportable profile behind
   [m2c profile]: a per-phase virtual-time table whose rows tile the
   end-to-end time (so every percentage is a true bound on what fixing
   that bottleneck could save, the paper's §4 methodology), the top-k
   bottleneck chain, and Prometheus/JSON exports.

   This module knows nothing about the scheduler's cost model; callers
   pass [seconds_per_unit] (normally [Mcc_sched.Costs.seconds_per_unit])
   for the human-readable seconds column. *)

type t = {
  p_module : string;
  p_procs : int;
  p_strategy : string;
  p_seconds_per_unit : float;
  p_end : float; (* end-to-end virtual work units *)
  p_tasks : int; (* tasks observed in the log *)
  p_crit : Critpath.t;
  p_phase_busy : (string * float) list; (* aggregate run units by class, all processors *)
  p_metrics : Metrics.snapshot;
}

let schema = "mcc-profile-v1"

let make ~module_name ~procs ~strategy ~end_time ~seconds_per_unit ~metrics
    (log : Evlog.record array) : t =
  let spans = Span.of_log log in
  let crit = Critpath.compute ~end_time log in
  {
    p_module = module_name;
    p_procs = procs;
    p_strategy = strategy;
    p_seconds_per_unit = seconds_per_unit;
    p_end = end_time;
    p_tasks = List.length spans;
    p_crit = crit;
    p_phase_busy =
      List.map (fun (cls, units) -> (Critpath.phase_of_cls cls, cls, units)) (Span.busy_by_class spans)
      |> List.sort compare
      |> List.map (fun (_, cls, units) -> (cls, units));
    p_metrics = metrics;
  }

(* The attribution table tiles [0, end]; assert the invariant within a
   rounding tolerance before trusting the shares. *)
let tiles_end t =
  Float.abs (Critpath.attributed_total t.p_crit -. t.p_end) <= 1e-3 *. Float.max 1.0 t.p_end

let render ?(top = 5) t : string =
  let buf = Buffer.create 2048 in
  let say fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  say "profile: %s — %d processors, %s strategy" t.p_module t.p_procs t.p_strategy;
  say "end-to-end: %.0f virtual units (%.3f virtual s), %d tasks" t.p_end
    (t.p_end *. t.p_seconds_per_unit)
    t.p_tasks;
  say "";
  say "critical-path attribution (tiles the end-to-end virtual time):";
  say "  %-20s %14s %8s" "bucket" "units" "share";
  List.iter
    (fun (bucket, units) ->
      say "  %-20s %14.0f %7.1f%%" bucket units (100.0 *. units /. Float.max 1e-9 t.p_end))
    t.p_crit.Critpath.cp_buckets;
  let total = Critpath.attributed_total t.p_crit in
  say "  %-20s %14.0f %7.1f%%   %s" "total" total
    (100.0 *. total /. Float.max 1e-9 t.p_end)
    (if tiles_end t then "(= end-to-end)" else "(MISMATCH vs end-to-end)");
  say "";
  say "aggregate busy time by class (sum over all processors):";
  List.iter
    (fun (cls, units) -> say "  %-20s %14.0f" cls units)
    t.p_phase_busy;
  say "";
  let hops = Critpath.top t.p_crit top in
  say "critical path: %d longest of %d hops:" (List.length hops)
    (List.length t.p_crit.Critpath.cp_hops);
  List.iter
    (fun (h : Critpath.hop) ->
      say "  [%10.0f .. %10.0f]  %-18s %-28s %10.0f units" h.Critpath.h_t0 h.Critpath.h_t1
        h.Critpath.h_bucket h.Critpath.h_name
        (h.Critpath.h_t1 -. h.Critpath.h_t0))
    hops;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON export (schema "mcc-profile-v1")

   { "schema": "mcc-profile-v1",
     "module": str, "procs": int, "strategy": str,
     "end_units": num, "end_seconds": num, "tasks": int,
     "attribution": [ { "bucket": str, "units": num, "share": num } ],
     "critical_path": [ { "t0": num, "t1": num, "task": int,
                          "name": str, "bucket": str } ],
     "phase_busy": [ { "class": str, "units": num } ],
     "metrics": [ { "name": str, "labels": obj, "type": str, ... } ] } *)

let labels_obj labels = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let metric_json (s : Metrics.sample) =
  let base = [ ("name", Json.Str s.Metrics.s_name); ("labels", labels_obj s.Metrics.s_labels) ] in
  match s.Metrics.s_value with
  | Metrics.VCounter v -> Json.Obj (base @ [ ("type", Json.Str "counter"); ("value", Json.Float v) ])
  | Metrics.VGauge v -> Json.Obj (base @ [ ("type", Json.Str "gauge"); ("value", Json.Float v) ])
  | Metrics.VHistogram { h_bounds; h_counts; h_sum; h_count } ->
      Json.Obj
        (base
        @ [
            ("type", Json.Str "histogram");
            ("bounds", Json.Arr (Array.to_list (Array.map (fun b -> Json.Float b) h_bounds)));
            ("counts", Json.Arr (Array.to_list (Array.map (fun c -> Json.Int c) h_counts)));
            ("sum", Json.Float h_sum);
            ("count", Json.Int h_count);
          ])

let to_json_value t : Json.t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("module", Json.Str t.p_module);
      ("procs", Json.Int t.p_procs);
      ("strategy", Json.Str t.p_strategy);
      ("end_units", Json.Float t.p_end);
      ("end_seconds", Json.Float (t.p_end *. t.p_seconds_per_unit));
      ("tasks", Json.Int t.p_tasks);
      ( "attribution",
        Json.Arr
          (List.map
             (fun (bucket, units) ->
               Json.Obj
                 [
                   ("bucket", Json.Str bucket);
                   ("units", Json.Float units);
                   ("share", Json.Float (units /. Float.max 1e-9 t.p_end));
                 ])
             t.p_crit.Critpath.cp_buckets) );
      ( "critical_path",
        Json.Arr
          (List.map
             (fun (h : Critpath.hop) ->
               Json.Obj
                 [
                   ("t0", Json.Float h.Critpath.h_t0);
                   ("t1", Json.Float h.Critpath.h_t1);
                   ("task", Json.Int h.Critpath.h_task);
                   ("name", Json.Str h.Critpath.h_name);
                   ("bucket", Json.Str h.Critpath.h_bucket);
                 ])
             t.p_crit.Critpath.cp_hops) );
      ( "phase_busy",
        Json.Arr
          (List.map
             (fun (cls, units) ->
               Json.Obj [ ("class", Json.Str cls); ("units", Json.Float units) ])
             t.p_phase_busy) );
      ("metrics", Json.Arr (List.map metric_json t.p_metrics));
    ]

let to_json t = Json.to_string (to_json_value t) ^ "\n"

(* Prometheus export: the metrics snapshot plus synthetic series for
   the attribution table and the end-to-end time, so a scrape carries
   the whole profile. *)
let to_prometheus t : string =
  let synthetic =
    {
      Metrics.s_name = "mcc_profile_end_units";
      s_labels = [ ("module", t.p_module); ("strategy", t.p_strategy) ];
      s_value = Metrics.VGauge t.p_end;
    }
    :: List.map
         (fun (bucket, units) ->
           {
             Metrics.s_name = "mcc_critpath_units";
             s_labels = [ ("bucket", bucket); ("module", t.p_module) ];
             s_value = Metrics.VGauge units;
           })
         t.p_crit.Critpath.cp_buckets
    @ List.map
        (fun (cls, units) ->
          {
            Metrics.s_name = "mcc_phase_busy_units";
            s_labels = [ ("class", cls); ("module", t.p_module) ];
            s_value = Metrics.VGauge units;
          })
        t.p_phase_busy
  in
  let all =
    List.sort
      (fun (a : Metrics.sample) b -> compare (a.Metrics.s_name, a.s_labels) (b.Metrics.s_name, b.s_labels))
      (synthetic @ t.p_metrics)
  in
  Prom.render all
