(* The structured concurrency event log.

   A single, globally ordered record stream of every synchronization-
   relevant action the compiler performs while running on the DES engine:
   symbol publishes, scope completions, DKY blocks/unblocks, event
   signal/block/wake, gated-task releases, task spawn/start/finish.  The
   happens-before checker ([Mcc_analysis.Hb]) replays this log to verify
   the DKY ordering invariants the paper's correctness argument (§2.3.3)
   rests on, across many perturbed schedules; the telemetry layer
   ([Span], [Critpath]) reconstructs per-task timelines from the same
   stream.

   The log lives here, at the bottom of the dependency stack, so that
   the scheduler ([Mcc_sched.Des_engine], [Mcc_sched.Supervisor]), the
   symbol tables ([Mcc_sem.Symtab], [Mcc_sem.Modreg]) and the telemetry
   consumers in this library can all reach it without a dependency
   cycle.  [Mcc_sched.Evlog] re-exports this module unchanged, so
   existing emitters and analyzers are untouched.

   Every record carries the virtual time at which it was appended: the
   engine stamps the clock with [set_time] at each agenda dispatch, and
   [emit] asserts that stamps never regress — the agenda pops in
   nondecreasing time order, so a regression is an engine bug, not a
   legal schedule.

   Capture is off by default and every emission site is guarded by
   [enabled ()] *before* the record is allocated, so the default compile
   path performs no logging work at all — and no record ever charges
   [Eff.work], so even a captured run's virtual timings are identical to
   an uncaptured one.  The log is only meaningful under the single-
   threaded DES engine (the domain engine never enables it): records are
   appended in true execution order, which is exactly the total order
   the checker needs. *)

type kind =
  | Task_spawn of {
      task : int;
      name : string;
      cls : string; (* Task.cls_name of the spawned task *)
      gate : int (* event id; -1 ungated *);
    }
  | Task_start of { task : int }
  | Task_finish of { task : int }
  | Ev_signal of { ev : int; name : string }
  | Ev_block of { ev : int; name : string; producer : int (* task id; -1 unknown *) }
  | Ev_wake of { ev : int; task : int (* the woken task *) }
  | Gate_release of { ev : int; task : int (* the released gated task *) }
  | Scope_intern of { scope : int; name : string }
  | Publish of { scope : int; scope_name : string; sym : string }
  | Complete of { scope : int; scope_name : string }
  | Observe of { scope : int; scope_name : string; sym : string; complete : bool }
  | Auth_miss of { scope : int; scope_name : string; sym : string }
      (* a miss in a *complete* table: authoritative — the symbol must
         never be published to this scope afterwards *)
  | Dky_block of { scope : int; scope_name : string; sym : string; ev : int }
  | Dky_unblock of { scope : int; scope_name : string; sym : string; ev : int }
  | Fault_inject of { fault : string; victim : string }
      (* an armed fault plan fired at an injection site *)
  | Task_retry of { task : int; attempt : int }
      (* a crashed-at-start task redispatched after virtual-time backoff *)
  | Task_quarantine of { task : int; name : string }
      (* retries exhausted (or unsafe): the task is permanently failed *)
  | Watchdog_fire of { ev : int; task : int }
      (* the stall watchdog re-delivered a lost wake for [task] *)
  (* Compile-server lifecycle ([Mcc_serve]): [job] is the server-wide
     job id, [session] the submitting client.  Server captures stamp
     the clock with the server's virtual arrival/completion times. *)
  | Job_enqueue of { job : int; session : string }
  | Job_admit of { job : int; session : string }
  | Job_shed of { job : int; session : string }
      (* admission rejected the job (queue full): it is never served *)
  | Job_batch of { job : int; leader : int; size : int }
      (* the job rides leader's batch (shared interface closure) *)
  | Job_done of { job : int; warm : bool }
      (* served; [warm] = answered from the shared module memo *)
  (* Build-farm lifecycle ([Mcc_farm]): one record stream for the whole
     multi-node run, stamped with the farm's virtual clock.  [node] is
     the acting node; RPC records carry both ends of the link. *)
  | Node_start of { node : int; procs : int }
  | Node_dead of { node : int } (* a node-crash fault fired at a heartbeat *)
  | Node_detect of { node : int }
      (* the coordinator noticed the missed heartbeats and re-shards *)
  | Heartbeat of { node : int }
  | Rpc_fetch of { node : int; peer : int; iface : string; attempt : int }
      (* [node] asks [peer] for an interface artifact; attempt 1 = first try *)
  | Rpc_timeout of { node : int; peer : int; iface : string; attempt : int }
      (* the request (or its reply) was lost; the requester backs off *)
  | Rpc_hedge of { node : int; replica : int; iface : string }
      (* the primary is late: a hedged fetch goes to the replica *)
  | Rpc_serve of { node : int; peer : int; iface : string }
      (* [node] delivered the artifact to [peer] (digest-verified) *)
  | Farm_assign of { node : int; iface : string } (* sharding placed the closure *)
  | Farm_steal of { node : int; victim : int; iface : string }
      (* an idle node stole a runnable closure from [victim]'s queue *)
  | Farm_reshard of { node : int; iface : string }
      (* a dead node's unfinished closure, reassigned to [node] *)
  | Farm_task_done of { node : int; iface : string }
  | Farm_replicate of { node : int; replica : int; iface : string }
      (* the freshly built artifact was pushed to its replica *)
  | Net_partition of { spec : string } (* the network split ("even|odd") *)
  | Net_heal
  (* Distributed-tracing spans ([Trace_ctx] ids): serve and farm runs
     bracket every unit of a request's life — queue, service, probe,
     compile, fetch, compute — with a Span_start/Span_end pair.
     [Dtrace] assembles the pairs (plus captured inner-engine logs)
     into the per-request span forest. *)
  | Span_start of {
      span : int; (* [Trace_ctx.fresh] id, unique within the capture *)
      parent : int; (* owning span id; -1 = a trace root *)
      trace : string; (* deterministic trace id ([Trace_ctx.trace_id]) *)
      name : string; (* display name, e.g. "job#3" or "fetch:M04" *)
      kind : string; (* tiling/annotation class: "job", "queue", ... *)
      node : int; (* acting farm node; -1 = not node-bound *)
    }
  | Span_end of { span : int; status : string (* "ok", "shed", "deadline", ... *) }

type record = {
  seq : int;
  time : float; (* virtual work units at append *)
  task : int (* emitting task; -1 scheduler *);
  kind : kind;
}

let enabled_flag = ref false
let buf : record list ref = ref [] (* reversed *)
let count = ref 0
let current = ref (-1)
let now = ref 0.0
let floor_time = ref 0.0 (* time of the last appended record *)

let enabled () = !enabled_flag
let set_task id = current := id
let set_time t = now := t

let emit kind =
  if !enabled_flag then begin
    if !now < !floor_time then
      invalid_arg
        (Printf.sprintf "Evlog.emit: virtual time went backwards (%.3f after %.3f)" !now
           !floor_time);
    floor_time := !now;
    buf := { seq = !count; time = !now; task = !current; kind } :: !buf;
    incr count
  end

let length () = !count
let iter f = List.iter f (List.rev !buf)

(* Run [f] with capture on and return its captured log.  The previous
   logging state is saved in full and restored on the way out, even on
   exceptions — so captures nest: a traced serve/farm run captures its
   job-lifecycle log while each inner [Driver.compile ~capture:true]
   takes its own nested capture (fresh clock, fresh buffer) whose log
   becomes a [Dtrace] sub-trace of the owning span.  The virtual clock
   restarts at 0: each capture wraps exactly one engine run. *)
let capture f =
  let saved_enabled = !enabled_flag and saved_buf = !buf in
  let saved_count = !count and saved_current = !current in
  let saved_now = !now and saved_floor = !floor_time in
  enabled_flag := true;
  buf := [];
  count := 0;
  current := -1;
  now := 0.0;
  floor_time := 0.0;
  let restore () =
    let log = Array.of_list (List.rev !buf) in
    enabled_flag := saved_enabled;
    buf := saved_buf;
    count := saved_count;
    current := saved_current;
    now := saved_now;
    floor_time := saved_floor;
    log
  in
  match f () with
  | v -> (v, restore ())
  | exception e ->
      ignore (restore ());
      raise e

(* Run [f] with emission off, restoring the flag afterwards.  The
   compile server wraps each inner [Driver.compile] in this: the inner
   engine restarts its own clock at 0, which would trip the outer
   capture's monotonic-time assert, and the server's log records job
   lifecycle, not intra-compile scheduling. *)
let suspend f =
  let saved = !enabled_flag in
  enabled_flag := false;
  Fun.protect ~finally:(fun () -> enabled_flag := saved) f

let kind_to_string = function
  | Task_spawn { task; name; cls; gate } ->
      Printf.sprintf "spawn task#%d %s [%s]%s" task name cls
        (if gate >= 0 then Printf.sprintf " gated-on event#%d" gate else "")
  | Task_start { task } -> Printf.sprintf "start task#%d" task
  | Task_finish { task } -> Printf.sprintf "finish task#%d" task
  | Ev_signal { ev; name } -> Printf.sprintf "signal event#%d %s" ev name
  | Ev_block { ev; name; producer } ->
      Printf.sprintf "block-on event#%d %s (producer task#%d)" ev name producer
  | Ev_wake { ev; task } -> Printf.sprintf "wake task#%d from event#%d" task ev
  | Gate_release { ev; task } -> Printf.sprintf "gate-release task#%d (event#%d)" task ev
  | Scope_intern { scope; name } -> Printf.sprintf "intern scope#%d %s" scope name
  | Publish { scope_name; sym; _ } -> Printf.sprintf "publish %s in %s" sym scope_name
  | Complete { scope_name; _ } -> Printf.sprintf "complete %s" scope_name
  | Observe { scope_name; sym; complete; _ } ->
      Printf.sprintf "observe %s in %s (%s)" sym scope_name
        (if complete then "complete" else "incomplete")
  | Auth_miss { scope_name; sym; _ } ->
      Printf.sprintf "authoritative miss of %s in %s" sym scope_name
  | Dky_block { scope_name; sym; ev; _ } ->
      Printf.sprintf "DKY-block on %s in %s (event#%d)" sym scope_name ev
  | Dky_unblock { scope_name; sym; ev; _ } ->
      Printf.sprintf "DKY-unblock on %s in %s (event#%d)" sym scope_name ev
  | Fault_inject { fault; victim } -> Printf.sprintf "inject %s on %s" fault victim
  | Task_retry { task; attempt } -> Printf.sprintf "retry task#%d (attempt %d)" task attempt
  | Task_quarantine { task; name } -> Printf.sprintf "quarantine task#%d %s" task name
  | Watchdog_fire { ev; task } ->
      Printf.sprintf "watchdog re-delivers event#%d to task#%d" ev task
  | Job_enqueue { job; session } -> Printf.sprintf "enqueue job#%d from %s" job session
  | Job_admit { job; session } -> Printf.sprintf "admit job#%d from %s" job session
  | Job_shed { job; session } -> Printf.sprintf "shed job#%d from %s" job session
  | Job_batch { job; leader; size } ->
      Printf.sprintf "batch job#%d with leader job#%d (batch of %d)" job leader size
  | Job_done { job; warm } ->
      Printf.sprintf "done job#%d (%s)" job (if warm then "warm" else "cold")
  | Node_start { node; procs } -> Printf.sprintf "node#%d up (%d procs)" node procs
  | Node_dead { node } -> Printf.sprintf "node#%d dead" node
  | Node_detect { node } -> Printf.sprintf "node#%d detected dead (missed heartbeats)" node
  | Heartbeat { node } -> Printf.sprintf "heartbeat node#%d" node
  | Rpc_fetch { node; peer; iface; attempt } ->
      Printf.sprintf "fetch %s: node#%d -> node#%d (attempt %d)" iface node peer attempt
  | Rpc_timeout { node; peer; iface; attempt } ->
      Printf.sprintf "timeout %s: node#%d -> node#%d (attempt %d)" iface node peer attempt
  | Rpc_hedge { node; replica; iface } ->
      Printf.sprintf "hedge %s: node#%d -> replica node#%d" iface node replica
  | Rpc_serve { node; peer; iface } ->
      Printf.sprintf "serve %s: node#%d -> node#%d" iface node peer
  | Farm_assign { node; iface } -> Printf.sprintf "assign %s to node#%d" iface node
  | Farm_steal { node; victim; iface } ->
      Printf.sprintf "steal %s: node#%d from node#%d" iface node victim
  | Farm_reshard { node; iface } -> Printf.sprintf "reshard %s to node#%d" iface node
  | Farm_task_done { node; iface } -> Printf.sprintf "done %s on node#%d" iface node
  | Farm_replicate { node; replica; iface } ->
      Printf.sprintf "replicate %s: node#%d -> node#%d" iface node replica
  | Net_partition { spec } -> Printf.sprintf "partition (%s)" spec
  | Net_heal -> "heal"
  | Span_start { span; parent; trace; name; kind; node } ->
      Printf.sprintf "span-start #%d %s [%s] parent #%d trace %s%s" span name kind parent trace
        (if node >= 0 then Printf.sprintf " node#%d" node else "")
  | Span_end { span; status } -> Printf.sprintf "span-end #%d (%s)" span status

let record_to_string r =
  Printf.sprintf "#%-6d t=%-10.1f task#%-4d %s" r.seq r.time r.task (kind_to_string r.kind)
