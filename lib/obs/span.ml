(* Per-task span reconstruction.

   Replays a captured [Evlog] stream into one span per task, each a
   chronological sequence of segments:

     Queue       ready (spawned, or gate released) but not yet started
     Run         executing on a processor (includes the dispatch latency
                 between a wake and the actual resume — the engine logs
                 wakes, not resumes, and the gap is a dispatch cost)
     Dky_wait    blocked by a DKY condition (symbol-table wait)
     Event_wait  blocked on any other handled/barrier event (token
                 queues, completion waits, the merge gate)
     Backoff     crashed at start, sitting out the retry backoff

   This is the per-task decomposition behind the paper's §4 discussion:
   how much of a stream's lifetime went to waiting on queues versus DKY
   blockage versus real compilation.  [Critpath] walks these spans
   backwards to attribute the end-to-end time. *)

type seg_kind = Queue | Run | Dky_wait | Event_wait | Backoff

type seg = { g_t0 : float; g_t1 : float; g_kind : seg_kind; g_ev : int (* -1 if none *) }

type t = {
  sp_task : int;
  sp_name : string;
  sp_cls : string;
  sp_spawned : float;
  sp_started : float; (* -1.0 if the task never started *)
  sp_finished : float; (* -1.0 if the task never finished *)
  sp_segs : seg array; (* chronological *)
}

let kind_name = function
  | Queue -> "queue"
  | Run -> "run"
  | Dky_wait -> "dky-wait"
  | Event_wait -> "event-wait"
  | Backoff -> "backoff"

type builder = {
  b_task : int;
  mutable b_name : string;
  mutable b_cls : string;
  mutable b_spawned : float;
  mutable b_ready : float; (* spawn, or gate-release for gated tasks *)
  mutable b_started : float;
  mutable b_finished : float;
  mutable b_resumed : float; (* start of the current run stretch *)
  mutable b_segs : seg list; (* reversed *)
  mutable b_wait : (int * float * seg_kind) option; (* open (ev, t0, kind) *)
  mutable b_dky_ev : int; (* pending DKY event id; -1 none *)
  mutable b_retry : float; (* time of the last retry record; -1 none *)
}

let of_log (log : Evlog.record array) : t list =
  let tasks : (int, builder) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] (* task ids in first-appearance order, reversed *) in
  let get id =
    match Hashtbl.find_opt tasks id with
    | Some b -> b
    | None ->
        let b =
          {
            b_task = id;
            b_name = Printf.sprintf "task#%d" id;
            b_cls = "aux";
            b_spawned = 0.0;
            b_ready = 0.0;
            b_started = -1.0;
            b_finished = -1.0;
            b_resumed = -1.0;
            b_segs = [];
            b_wait = None;
            b_dky_ev = -1;
            b_retry = -1.0;
          }
        in
        Hashtbl.add tasks id b;
        order := id :: !order;
        b
  in
  let push b t0 t1 kind ev = if t1 -. t0 > 0.0 then b.b_segs <- { g_t0 = t0; g_t1 = t1; g_kind = kind; g_ev = ev } :: b.b_segs in
  Array.iter
    (fun (r : Evlog.record) ->
      match r.Evlog.kind with
      | Evlog.Task_spawn { task; name; cls; gate = _ } ->
          let b = get task in
          b.b_name <- name;
          b.b_cls <- cls;
          b.b_spawned <- r.Evlog.time;
          b.b_ready <- r.Evlog.time
      | Evlog.Gate_release { task; ev = _ } -> (get task).b_ready <- r.Evlog.time
      | Evlog.Task_retry { task; attempt = _ } ->
          let b = get task in
          (* queue (or previous backoff) ends here; the backoff window
             opens and closes at the redispatched start *)
          let t0 = if b.b_retry >= 0.0 then b.b_retry else b.b_ready in
          let kind = if b.b_retry >= 0.0 then Backoff else Queue in
          push b t0 r.Evlog.time kind (-1);
          b.b_retry <- r.Evlog.time
      | Evlog.Task_start { task } ->
          let b = get task in
          b.b_started <- r.Evlog.time;
          (if b.b_retry >= 0.0 then push b b.b_retry r.Evlog.time Backoff (-1)
           else push b b.b_ready r.Evlog.time Queue (-1));
          b.b_resumed <- r.Evlog.time
      | Evlog.Dky_block { ev; _ } -> (get r.Evlog.task).b_dky_ev <- ev
      | Evlog.Dky_unblock _ -> (get r.Evlog.task).b_dky_ev <- -1
      | Evlog.Ev_block { ev; _ } ->
          let b = get r.Evlog.task in
          if b.b_resumed >= 0.0 then push b b.b_resumed r.Evlog.time Run (-1);
          let kind = if b.b_dky_ev = ev then Dky_wait else Event_wait in
          b.b_wait <- Some (ev, r.Evlog.time, kind)
      | Evlog.Ev_wake { ev; task } -> (
          let b = get task in
          match b.b_wait with
          | Some (ev', t0, kind) when ev' = ev ->
              push b t0 r.Evlog.time kind ev;
              b.b_wait <- None;
              b.b_resumed <- r.Evlog.time
          | _ -> ())
      | Evlog.Task_finish { task } | Evlog.Task_quarantine { task; _ } ->
          let b = get task in
          b.b_finished <- r.Evlog.time;
          if b.b_resumed >= 0.0 then push b b.b_resumed r.Evlog.time Run (-1);
          b.b_resumed <- -1.0
      | _ -> ())
    log;
  List.rev_map
    (fun id ->
      let b = Hashtbl.find tasks id in
      {
        sp_task = b.b_task;
        sp_name = b.b_name;
        sp_cls = b.b_cls;
        sp_spawned = b.b_spawned;
        sp_started = b.b_started;
        sp_finished = b.b_finished;
        sp_segs = Array.of_list (List.rev b.b_segs);
      })
    !order
  |> List.sort (fun a b -> compare a.sp_task b.sp_task)

(* Total time a span spent in segments of [kind]. *)
let total sp kind =
  Array.fold_left
    (fun acc s -> if s.g_kind = kind then acc +. (s.g_t1 -. s.g_t0) else acc)
    0.0 sp.sp_segs

(* Aggregate run time by task class across spans, sorted by class. *)
let busy_by_class spans =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun sp ->
      let v = Option.value ~default:0.0 (Hashtbl.find_opt tbl sp.sp_cls) in
      Hashtbl.replace tbl sp.sp_cls (v +. total sp Run))
    spans;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
