(** The per-compilation telemetry report.

    Combines the three telemetry views of one captured run — the span
    decomposition, the critical-path attribution and the metrics
    snapshot — into the renderable/exportable profile behind
    [m2c profile]: a per-phase virtual-time table whose rows tile the
    end-to-end time (so every percentage is a true bound on what fixing
    that bottleneck could save, the paper's §4 methodology), the top-k
    bottleneck chain, and Prometheus/JSON exports.

    This module knows nothing about the scheduler's cost model; callers
    pass [seconds_per_unit] (normally [Mcc_sched.Costs.seconds_per_unit])
    for the human-readable seconds column. *)

type t = {
  p_module : string;
  p_procs : int;
  p_strategy : string;
  p_seconds_per_unit : float;
  p_end : float;  (** end-to-end virtual work units *)
  p_tasks : int;  (** tasks observed in the log *)
  p_crit : Critpath.t;
  p_phase_busy : (string * float) list;
      (** aggregate run units by class, all processors *)
  p_metrics : Metrics.snapshot;
}

(** The JSON export's schema tag, ["mcc-profile-v1"]. *)
val schema : string

val make :
  module_name:string ->
  procs:int ->
  strategy:string ->
  end_time:float ->
  seconds_per_unit:float ->
  metrics:Metrics.snapshot ->
  Evlog.record array ->
  t

(** Whether the attribution table tiles [0, end] within a rounding
    tolerance — assert this before trusting the shares. *)
val tiles_end : t -> bool

(** The human-readable table: attribution, per-class busy time, and the
    [top] (default 5) longest critical-path hops. *)
val render : ?top:int -> t -> string

val to_json_value : t -> Json.t

(** [to_string (to_json_value t)] with a trailing newline. *)
val to_json : t -> string

(** The metrics snapshot plus synthetic series for the attribution
    table and the end-to-end time, so a scrape carries the whole
    profile. *)
val to_prometheus : t -> string
