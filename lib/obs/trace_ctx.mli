(** Deterministic trace-context allocation (no wall clock).

    A trace id is a 64-bit FNV-1a hash of (domain, seed, key) rendered
    as 16 hex digits; span ids come from a counter reset at the entry
    point of every traced run.  Allocation order is a pure function of
    the seeded virtual schedule, so same-seed runs produce identical id
    sequences — the property behind CI's byte-identical export check. *)

type t = { trace : string; span : int; parent : int  (** -1 = root *) }

(** Restart span-id allocation at 1.  Call once at the start of each
    traced serve/farm run, before the first {!fresh}. *)
val reset : unit -> unit

(** Allocate the next span id (1, 2, 3, ... since the last {!reset}). *)
val fresh : unit -> int

(** [trace_id ~domain ~seed ~key] — deterministic 16-hex-digit trace
    id, e.g. [trace_id ~domain:"serve" ~seed ~key:"client-2/job17"]. *)
val trace_id : domain:string -> seed:int -> key:string -> string

(** A root context ([parent = -1]) with a fresh span id. *)
val root : trace:string -> t

(** A child context: same trace, fresh span id, parent = [t.span]. *)
val child : t -> t
