(** Prometheus text exposition format.

    Renders a {!Metrics} snapshot (plus any synthetic samples a report
    adds) as the Prometheus text format: one [# TYPE] header per metric
    name, histograms expanded into cumulative [_bucket]/[_sum]/[_count]
    series.  The snapshot is already sorted by (name, labels), so the
    output is byte-deterministic.

    {!validate} is a line-level checker for the same grammar — enough
    for the CLI and CI to assert that an export would be accepted by a
    Prometheus scraper, without a client library dependency. *)

val render : Metrics.snapshot -> string

(** Check [text] against the exposition-format grammar line by line
    (comments and blank lines skipped).  Returns the first offending
    line's number and reason on failure. *)
val validate : string -> (unit, string) result
