(** The SLO flight recorder: always-on, bounded, virtual-time.

    A bounded ring of per-job outcomes, per-class latency objectives
    with burn-rate accounting, and a trip list — one entry per job
    that missed its latency objective, was shed, hit a fault, or
    tripped a happens-before invariant.  Trips carry the job's trace
    id so callers can resolve them into post-mortem span bundles
    ([Dtrace.bundle]) when tracing is on.  No wall clock; [observe] is
    O(1); memory is bounded by [cap]. *)

type objective = {
  o_class : string;  (** job class, e.g. ["p0"] *)
  o_target : float;  (** sojourn objective, virtual seconds *)
  o_budget : float;  (** allowed miss fraction, e.g. [0.1] *)
}

(** p0/p1/p2 priority classes: 240/120/60 virtual-second targets, 10%
    error budget each. *)
val default_objectives : objective list

type reason = Latency_miss | Shed | Deadline_shed | Fault | Hb_trip

val reason_name : reason -> string

type entry = {
  e_job : int;
  e_class : string;
  e_trace : string;
  e_sojourn : float;  (** virtual seconds; negative for jobs never served *)
  e_at : float;  (** completion/shed time, virtual seconds *)
  e_miss : bool;  (** sojourn exceeded the class objective *)
}

type trip = {
  t_job : int;
  t_class : string;
  t_trace : string;
  t_reason : reason;
  t_at : float;  (** virtual seconds *)
  t_detail : string;
}

type t

(** [create ?cap ?objectives ()] — ring and trip log bounded by [cap]
    (default 512).
    @raise Invalid_argument when [cap < 1]. *)
val create : ?cap:int -> ?objectives:objective list -> unit -> t

val objective_for : t -> string -> objective option

(** Record one served job; auto-trips [Latency_miss] when the sojourn
    exceeds the class objective. *)
val observe : t -> job:int -> cls:string -> trace:string -> sojourn:float -> at:float -> unit

(** Record a trip from an external source (shed, fault, Hb check). *)
val trip :
  t -> job:int -> cls:string -> trace:string -> reason:reason -> at:float -> detail:string -> unit

(** Ring contents, oldest first (at most [cap]). *)
val entries : t -> entry list

(** Trips, oldest first (at most [cap] retained). *)
val trips : t -> trip list

(** Trips ever recorded (not capped). *)
val trip_count : t -> int

(** Miss fraction over the whole run for a class; 0 when unseen. *)
val miss_fraction : t -> string -> float

(** Miss fraction / error budget: 1.0 = consuming the budget exactly
    as provisioned, above 1.0 the class is out of budget. *)
val burn_rate : t -> string -> float

(** Classes seen or configured, sorted. *)
val classes : t -> string list

(** Human-readable per-class table. *)
val summary : t -> string

(** Deterministic JSON (classes, burn rates, trip log). *)
val to_json : t -> Json.t
