(** A minimal deterministic JSON builder and syntax checker.

    The telemetry exporters need (a) byte-stable output — two runs with
    the same seed/config must serialize identically, so field order is
    the construction order and float formatting is fixed — and (b) a
    way for the CLI / bench / CI to assert that what they wrote is
    well-formed without adding a dependency the container doesn't have.
    {!validate} is a complete JSON {e syntax} validator, not a schema
    language; schema-level checks (required fields, sum invariants)
    live with the producers. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Serialize compactly (no whitespace).  Object fields print in
    construction order; integral floats print without a fraction, the
    rest with six decimals — total and deterministic. *)
val to_string : t -> string

(** Check that [s] is one well-formed JSON value with nothing trailing.
    On failure, reports the byte offset and what was expected. *)
val validate : string -> (unit, string) result
