(** Critical-path extraction and virtual-time attribution.

    Answers the question the paper's §4 evaluation turns on: {e what
    bounds the speedup of this compilation?}  Starting from the
    last-finishing task, the walk moves backwards through the
    task/event dependency graph recorded in the {!Evlog} stream,
    attributing every instant of [0, end] to a bucket: a compilation
    phase for Run segments, a wait bucket (dky-block, token-wait,
    completion-wait, event-wait), a per-class queue bucket, recovery
    for backoffs and watchdog rescues, or startup.  Each step tiles the
    interval between the new cursor and the old one, so the bucket
    totals sum to the end-to-end virtual time and each bucket's share
    is a true "this is what you would save" bound, not a sampled
    approximation. *)

(** One attributed interval of the critical path. *)
type hop = {
  h_t0 : float;
  h_t1 : float;
  h_task : int;
  h_name : string;
  h_bucket : string;
}

type t = {
  cp_end : float;  (** end-to-end virtual time tiled by the hops *)
  cp_buckets : (string * float) list;  (** bucket -> units, largest first *)
  cp_hops : hop list;  (** chronological *)
  cp_unattributed : float;
      (** residue if the walk had to bail out; 0.0 normally *)
}

(** Phase attribution of a task class (paper Fig. 5 / §2.3.4 classes):
    lex, split, import, parse/sem, codegen, merge; anything else maps
    to startup. *)
val phase_of_cls : string -> string

(** Walk the captured log backwards from the last-finishing task.
    [end_time], when given, extends the tiled interval past the last
    finish (e.g. to the engine's reported end time). *)
val compute : ?end_time:float -> Evlog.record array -> t

(** The [k] longest hops, longest first (stable on ties by start
    time). *)
val top : t -> int -> hop list

(** Sum of all attributed intervals; equals [cp_end] when the tiling is
    complete (the invariant the tests assert). *)
val attributed_total : t -> float
