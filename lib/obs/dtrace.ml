(* Distributed-trace assembly: the span forest behind `m2c trace`.

   A traced serve or farm run brackets every unit of a request's life
   with [Evlog.Span_start]/[Span_end] pairs ([Trace_ctx] ids), and runs
   each nested [Driver.compile] under its own nested [Evlog.capture]
   instead of [Evlog.suspend]; the inner log rides along as a [sub]
   keyed by the owning span.  [assemble] folds the outer log plus the
   sub-logs into one forest of spans on a single virtual-time axis —
   inner task spans are rebased at the owning span's start (and
   stretched by the gray-failure slowdown where the farm applied one),
   so a compile's intra-engine schedule nests exactly inside the
   service span that paid for it.

   Span kinds split in two:

   - *tile kinds* must exactly partition their parent: a job is tiled
     by queue + service; a service by probe / compile / retry; a farm
     task (and the final assembly) by fetch + compute.  Zero gap, zero
     overlap — [tiling_violations] enforces it, and the BENCH_trace
     gate rides on it: every virtual second of a job's sojourn is
     attributed, or the bench fails.
   - *annotation kinds* (rpc attempt/hedge legs, inner engine tasks)
     are containment-only: a hedged fetch deliberately overlaps the
     primary's retry timeline, and inner tasks run concurrently.

   Everything here is in Evlog virtual-time units; renderers take
   [sec_per_unit] to print seconds.  All output is deterministic:
   span ids are allocation-ordered, children sort by (t0, id), floats
   format through [Json]. *)

type span = {
  d_span : int;
  d_parent : int; (* -1 = root *)
  d_trace : string;
  d_name : string;
  d_kind : string;
  d_node : int; (* -1 = not node-bound *)
  d_t0 : float; (* virtual units *)
  d_t1 : float;
  d_status : string; (* "ok", "hit", "shed", "deadline", "crashed", "lost", ... *)
}

(* A nested engine capture owned by one span: [sub_t0] is the owner's
   absolute start (units); [sub_scale] stretches inner units to outer
   ones (a gray-failed farm node compiles [Costs.node_slow_factor]x
   slower than its inner simulation). *)
type sub = {
  sub_owner : int;
  sub_t0 : float;
  sub_scale : float;
  sub_log : Evlog.record array;
  sub_names : (int * string) list;
}

type t = {
  spans : span list; (* ascending span id *)
  end_time : float; (* last span end / last record, units *)
}

let duration s = s.d_t1 -. s.d_t0

let eps t = 1e-9 *. Float.max 1.0 t.end_time

(* Tiling relation: which child kinds must partition which parents. *)
let is_tile ~parent_kind ~child_kind =
  match (parent_kind, child_kind) with
  | "job", ("queue" | "service") -> true
  | "service", ("probe" | "compile" | "retry") -> true
  | ("task" | "assembly"), ("fetch" | "compute") -> true
  | _ -> false

let by_id t = List.fold_left (fun tbl s -> Hashtbl.replace tbl s.d_span s; tbl) (Hashtbl.create 64) t.spans

let children t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun s ->
      if s.d_parent >= 0 then
        Hashtbl.replace tbl s.d_parent (s :: Option.value ~default:[] (Hashtbl.find_opt tbl s.d_parent)))
    t.spans;
  Hashtbl.iter
    (fun k v -> Hashtbl.replace tbl k (List.sort (fun a b -> compare (a.d_t0, a.d_span) (b.d_t0, b.d_span)) v))
    (Hashtbl.copy tbl);
  tbl

let roots t = List.filter (fun s -> s.d_parent < 0) t.spans

(* ------------------------------------------------------------------ *)
(* Assembly *)

type open_span = {
  o_parent : int;
  o_trace : string;
  o_name : string;
  o_kind : string;
  o_node : int;
  o_t0 : float;
}

let assemble ?(subs = []) (log : Evlog.record array) : t =
  let opened : (int, open_span) Hashtbl.t = Hashtbl.create 64 in
  let closed : (int, span) Hashtbl.t = Hashtbl.create 64 in
  let ids = ref [] (* span ids in open order, reversed *) in
  let last_time = ref 0.0 in
  Array.iter
    (fun (r : Evlog.record) ->
      if r.Evlog.time > !last_time then last_time := r.Evlog.time;
      match r.Evlog.kind with
      | Evlog.Span_start { span; parent; trace; name; kind; node } ->
          ids := span :: !ids;
          Hashtbl.replace opened span
            { o_parent = parent; o_trace = trace; o_name = name; o_kind = kind; o_node = node; o_t0 = r.Evlog.time }
      | Evlog.Span_end { span; status } -> (
          match Hashtbl.find_opt opened span with
          | None -> () (* end without start: dropped (should not happen) *)
          | Some o ->
              Hashtbl.remove opened span;
              Hashtbl.replace closed span
                {
                  d_span = span;
                  d_parent = o.o_parent;
                  d_trace = o.o_trace;
                  d_name = o.o_name;
                  d_kind = o.o_kind;
                  d_node = o.o_node;
                  d_t0 = o.o_t0;
                  d_t1 = r.Evlog.time;
                  d_status = status;
                })
      | _ -> ())
    log;
  (* Close anything left open — a crashed node's scheduled fetch/compute
     ends never fired — at its parent's end (parents are allocated
     before children, so ascending id order closes parents first). *)
  let ordered = List.rev !ids in
  List.iter
    (fun id ->
      match Hashtbl.find_opt opened id with
      | None -> ()
      | Some o ->
          let t1 =
            match Hashtbl.find_opt closed o.o_parent with
            | Some p -> Float.max o.o_t0 p.d_t1
            | None -> Float.max o.o_t0 !last_time
          in
          Hashtbl.replace closed id
            {
              d_span = id;
              d_parent = o.o_parent;
              d_trace = o.o_trace;
              d_name = o.o_name;
              d_kind = o.o_kind;
              d_node = o.o_node;
              d_t0 = o.o_t0;
              d_t1 = t1;
              d_status = "lost";
            })
    ordered;
  let outer = List.filter_map (Hashtbl.find_opt closed) ordered in
  (* Inner engine logs: one "inner-task" span per task of each sub,
     rebased at the owner's start, clamped into the owner interval. *)
  let next = ref (List.fold_left (fun acc s -> max acc s.d_span) 0 outer) in
  let inner =
    List.concat_map
      (fun sub ->
        match Hashtbl.find_opt closed sub.sub_owner with
        | None -> []
        | Some owner ->
            let names = Hashtbl.create 32 in
            List.iter (fun (id, n) -> Hashtbl.replace names id n) sub.sub_names;
            List.map
              (fun (sp : Span.t) ->
                incr next;
                let clamp v = Float.min owner.d_t1 (Float.max owner.d_t0 v) in
                let t0 = clamp (sub.sub_t0 +. (sub.sub_scale *. sp.Span.sp_spawned)) in
                let t1, status =
                  if sp.Span.sp_finished >= 0.0 then
                    (clamp (sub.sub_t0 +. (sub.sub_scale *. sp.Span.sp_finished)), "ok")
                  else (owner.d_t1, "unfinished")
                in
                {
                  d_span = !next;
                  d_parent = owner.d_span;
                  d_trace = owner.d_trace;
                  d_name =
                    (match Hashtbl.find_opt names sp.Span.sp_task with
                    | Some n -> n
                    | None -> sp.Span.sp_name);
                  d_kind = "inner-task";
                  d_node = owner.d_node;
                  d_t0 = t0;
                  d_t1 = Float.max t0 t1;
                  d_status = status;
                })
              (Span.of_log sub.sub_log))
      subs
  in
  let spans = outer @ inner in
  let end_time = List.fold_left (fun acc s -> Float.max acc s.d_t1) !last_time spans in
  { spans; end_time }

(* ------------------------------------------------------------------ *)
(* Validation *)

(* Spans whose parent id names no span in the forest. *)
let orphans t =
  let tbl = by_id t in
  List.filter (fun s -> s.d_parent >= 0 && not (Hashtbl.mem tbl s.d_parent)) t.spans

(* (child, parent) pairs where the child interval leaks outside the
   parent's. *)
let containment_violations t =
  let tbl = by_id t in
  let e = eps t in
  List.filter_map
    (fun s ->
      match if s.d_parent >= 0 then Hashtbl.find_opt tbl s.d_parent else None with
      | Some p when s.d_t0 < p.d_t0 -. e || s.d_t1 > p.d_t1 +. e -> Some (s, p)
      | _ -> None)
    t.spans

(* Parents whose tile children do not exactly partition them: any gap,
   overlap, or mismatched extent is a violation.  Parents interrupted
   by a crash ("crashed"/"lost", or holding a "lost" child) are
   exempt — their timeline was genuinely truncated. *)
let tiling_violations t =
  let kids = children t in
  let e = eps t in
  List.filter_map
    (fun p ->
      if p.d_status = "crashed" || p.d_status = "lost" then None
      else
        let tiles =
          List.filter
            (fun c -> is_tile ~parent_kind:p.d_kind ~child_kind:c.d_kind)
            (Option.value ~default:[] (Hashtbl.find_opt kids p.d_span))
        in
        if tiles = [] then None
        else if List.exists (fun c -> c.d_status = "lost") tiles then None
        else
          let problem = ref None in
          let flag fmt = Printf.ksprintf (fun m -> if !problem = None then problem := Some m) fmt in
          let cursor = ref p.d_t0 in
          List.iter
            (fun c ->
              if c.d_t0 > !cursor +. e then flag "gap %.3f..%.3f before %s" !cursor c.d_t0 c.d_name
              else if c.d_t0 < !cursor -. e then flag "overlap at %.3f on %s" c.d_t0 c.d_name;
              cursor := c.d_t1)
            tiles;
          if Float.abs (!cursor -. p.d_t1) > e then
            flag "tiles end at %.3f, span at %.3f" !cursor p.d_t1;
          Option.map (fun m -> (p, m)) !problem)
    t.spans

(* The one-call gate: orphans, containment, tiling. *)
let validate t =
  match orphans t with
  | o :: _ -> Error (Printf.sprintf "orphan span #%d %s: parent #%d missing" o.d_span o.d_name o.d_parent)
  | [] -> (
      match containment_violations t with
      | (c, p) :: _ ->
          Error
            (Printf.sprintf "span #%d %s [%.3f, %.3f] leaks outside parent #%d %s [%.3f, %.3f]"
               c.d_span c.d_name c.d_t0 c.d_t1 p.d_span p.d_name p.d_t0 p.d_t1)
      | [] -> (
          match tiling_violations t with
          | (p, m) :: _ -> Error (Printf.sprintf "span #%d %s not exactly tiled: %s" p.d_span p.d_name m)
          | [] -> Ok ()))

(* All spans of one trace, chronological — the post-mortem bundle the
   SLO flight recorder dumps for a tripped job. *)
let bundle t ~trace =
  List.filter (fun s -> s.d_trace = trace) t.spans
  |> List.sort (fun a b -> compare (a.d_t0, a.d_span) (b.d_t0, b.d_span))

(* ------------------------------------------------------------------ *)
(* Cross-node critical path *)

(* One attributed interval of the end-to-end walk. *)
type cseg = { c_t0 : float; c_t1 : float; c_bucket : string; c_name : string; c_node : int }

type crit = {
  c_end : float; (* end-to-end virtual units, tiled exactly by c_segs *)
  c_segs : cseg list; (* chronological *)
  c_buckets : (string * float) list; (* bucket -> units, largest first *)
  c_critical_node : int; (* node carrying the most on-path compute; -1 none *)
  c_critical_rpc : string; (* longest on-path network fetch; "" none *)
}

let bucket_of (s : span) =
  match s.d_kind with
  | "queue" -> "queue-wait"
  | "probe" -> "remote-cache"
  (* "hit" = found locally, "miss" = no remote copy existed (compiled
     cold in the compute phase): both are cache-probe time, not wire
     time *)
  | "fetch" -> ( match s.d_status with "hit" | "miss" -> "remote-cache" | _ -> "network")
  | _ -> "compute"

(* Walk backwards from the last-finishing work span.  Inside a span,
   recurse through its tile children (so a service splits into probe +
   compile); at a span's start, jump to the latest-finishing work span
   that ended by then — the run that was actually binding — charging
   any gap to "sched-wait"; with no predecessor, the head [0, t0] is
   "arrival".  Every interval between 0 and the anchor's end is
   attributed exactly once, so the bucket totals sum to the end-to-end
   time by construction. *)
let critpath t =
  let kids = children t in
  let e = eps t in
  let work s = match s.d_kind with "job" | "task" | "assembly" -> true | _ -> false in
  let works = List.filter work t.spans in
  let anchor =
    List.fold_left
      (fun acc s ->
        match acc with
        | Some (b : span) when (b.d_t1, b.d_span) >= (s.d_t1, s.d_span) -> acc
        | _ -> Some s)
      None works
  in
  match anchor with
  | None -> { c_end = 0.0; c_segs = []; c_buckets = []; c_critical_node = -1; c_critical_rpc = "" }
  | Some anchor ->
      let segs = ref [] (* built backwards: prepending keeps chronology *) in
      let add t0 t1 bucket name node =
        if t1 -. t0 > e then segs := { c_t0 = t0; c_t1 = t1; c_bucket = bucket; c_name = name; c_node = node } :: !segs
      in
      (* attribute [s.d_t0, cursor] through s's tile children, recursively *)
      let rec attribute s cursor =
        let tiles =
          List.filter
            (fun c -> is_tile ~parent_kind:s.d_kind ~child_kind:c.d_kind)
            (Option.value ~default:[] (Hashtbl.find_opt kids s.d_span))
        in
        if tiles = [] then add s.d_t0 cursor (bucket_of s) s.d_name s.d_node
        else begin
          let cur = ref cursor in
          List.iter
            (fun c ->
              if c.d_t0 < !cur then begin
                attribute c (Float.min c.d_t1 !cur);
                (* defensive: a gap between tiles is charged to the parent *)
                if c.d_t1 < !cur -. e then add c.d_t1 !cur (bucket_of s) s.d_name s.d_node;
                cur := c.d_t0
              end)
            (List.rev tiles);
          if s.d_t0 < !cur -. e then add s.d_t0 !cur (bucket_of s) s.d_name s.d_node
        end
      in
      (* dependency names of s, from its fetch children: "fetch:M04" -> "M04" *)
      let deps_of s =
        List.filter_map
          (fun c ->
            if c.d_kind = "fetch" then
              match String.index_opt c.d_name ':' with
              | Some i -> Some (String.sub c.d_name (i + 1) (String.length c.d_name - i - 1))
              | None -> None
            else None)
          (Option.value ~default:[] (Hashtbl.find_opt kids s.d_span))
      in
      let max_steps = List.length works + 8 in
      let rec walk steps s =
        attribute s s.d_t1;
        if s.d_t0 > e then
          if steps >= max_steps then add 0.0 s.d_t0 "arrival" s.d_name (-1)
          else begin
            let deps = deps_of s in
            let is_dep c = List.exists (fun d -> c.d_name = "task:" ^ d) deps in
            let pred =
              List.fold_left
                (fun acc c ->
                  if c.d_span = s.d_span || c.d_t1 > s.d_t0 +. e || duration c <= e then acc
                  else
                    let score c = (c.d_t1, (if is_dep c then 2 else if c.d_node = s.d_node then 1 else 0), c.d_span) in
                    match acc with
                    | Some b when score b >= score c -> acc
                    | _ -> Some c)
                None works
            in
            match pred with
            | Some p ->
                if s.d_t0 -. p.d_t1 > e then add p.d_t1 s.d_t0 "sched-wait" s.d_name s.d_node;
                walk (steps + 1) p
            | None -> add 0.0 s.d_t0 "arrival" s.d_name (-1)
          end
      in
      walk 0 anchor;
      let segs = List.sort (fun a b -> compare (a.c_t0, a.c_t1) (b.c_t0, b.c_t1)) !segs in
      let buckets = Hashtbl.create 8 in
      List.iter
        (fun c ->
          let v = Option.value ~default:0.0 (Hashtbl.find_opt buckets c.c_bucket) in
          Hashtbl.replace buckets c.c_bucket (v +. (c.c_t1 -. c.c_t0)))
        segs;
      let c_buckets =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) buckets []
        |> List.sort (fun (ka, va) (kb, vb) -> compare (-.va, ka) (-.vb, kb))
      in
      let node_compute = Hashtbl.create 8 in
      List.iter
        (fun c ->
          if c.c_bucket = "compute" && c.c_node >= 0 then
            let v = Option.value ~default:0.0 (Hashtbl.find_opt node_compute c.c_node) in
            Hashtbl.replace node_compute c.c_node (v +. (c.c_t1 -. c.c_t0)))
        segs;
      let c_critical_node =
        Hashtbl.fold
          (fun n v acc -> match acc with Some (_, bv) when (bv, -n) >= (v, -n) -> acc | _ -> Some (n, v))
          node_compute None
        |> Option.map fst |> Option.value ~default:(-1)
      in
      let c_critical_rpc =
        List.fold_left
          (fun acc c ->
            if c.c_bucket <> "network" then acc
            else
              match acc with
              | Some (b : cseg) when b.c_t1 -. b.c_t0 >= c.c_t1 -. c.c_t0 -> acc
              | _ -> Some c)
          None segs
        |> Option.map (fun c -> if c.c_node >= 0 then Printf.sprintf "%s@node%d" c.c_name c.c_node else c.c_name)
        |> Option.value ~default:""
      in
      { c_end = anchor.d_t1; c_segs = segs; c_buckets; c_critical_node; c_critical_rpc }

let crit_total crit = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 crit.c_buckets

(* ------------------------------------------------------------------ *)
(* Rendering and export *)

(* Per-request waterfall: each root span and its subtree, one row per
   span with interval, duration and a bar scaled to the root window.
   [max_depth] 2 shows the request anatomy; 3+ adds inner engine
   tasks. *)
let waterfall ?(width = 32) ?(max_depth = 2) ~sec_per_unit t =
  let kids = children t in
  let buf = Buffer.create 4096 in
  let sec u = u *. sec_per_unit in
  let bar lo hi t0 t1 =
    if hi -. lo <= 0.0 then String.make width '.'
    else
      let pos v = int_of_float (float_of_int width *. (v -. lo) /. (hi -. lo)) in
      let a = max 0 (min (width - 1) (pos t0)) in
      let b = max a (min (width - 1) (pos t1 - 1)) in
      String.init width (fun i -> if i >= a && i <= b then '#' else '.')
  in
  let rec row depth lo hi s =
    if depth <= max_depth then begin
      Buffer.add_string buf
        (Printf.sprintf "%s%-*s %9.3fs - %9.3fs %9.3fs  |%s|%s\n" (String.make (2 * depth) ' ')
           (max 1 (24 - (2 * depth)))
           s.d_name (sec s.d_t0) (sec s.d_t1)
           (sec (duration s))
           (bar lo hi s.d_t0 s.d_t1)
           (if s.d_status = "ok" then "" else "  " ^ s.d_status));
      List.iter (row (depth + 1) lo hi) (Option.value ~default:[] (Hashtbl.find_opt kids s.d_span))
    end
  in
  List.iter
    (fun r ->
      Buffer.add_string buf (Printf.sprintf "trace %s  %s%s\n" r.d_trace r.d_name
        (match r.d_node with -1 -> "" | n -> Printf.sprintf "  (node%d)" n));
      row 1 r.d_t0 r.d_t1 r)
    (List.sort (fun a b -> compare (a.d_t0, a.d_span) (b.d_t0, b.d_span)) (roots t));
  Buffer.contents buf

(* OTLP-flavoured JSON: resourceSpans / scopeSpans / spans with the
   standard field names (traceId 32 hex, spanId/parentSpanId 16 hex,
   start/endTimeUnixNano).  "UnixNano" here is *virtual* nanoseconds —
   the simulation has no wall clock, which is also what makes the
   export byte-identical across same-seed runs. *)
let to_otlp ~sec_per_unit t =
  let module J = Json in
  let nanos u = J.Int (int_of_float ((u *. sec_per_unit *. 1e9) +. 0.5)) in
  let attr k v = J.Obj [ ("key", J.Str k); ("value", J.Obj [ v ]) ] in
  let span_json s =
    J.Obj
      [
        ("traceId", J.Str (s.d_trace ^ s.d_trace));
        ("spanId", J.Str (Printf.sprintf "%016x" s.d_span));
        ("parentSpanId", J.Str (if s.d_parent < 0 then "" else Printf.sprintf "%016x" s.d_parent));
        ("name", J.Str s.d_name);
        ("kind", J.Int 1);
        ("startTimeUnixNano", nanos s.d_t0);
        ("endTimeUnixNano", nanos s.d_t1);
        ( "attributes",
          J.Arr
            [
              attr "mcc.kind" ("stringValue", J.Str s.d_kind);
              attr "mcc.node" ("intValue", J.Int s.d_node);
              attr "mcc.status" ("stringValue", J.Str s.d_status);
            ] );
        ("status", J.Obj [ ("code", J.Int (match s.d_status with "ok" | "hit" | "served" -> 1 | _ -> 2)) ]);
      ]
  in
  J.Obj
    [
      ( "resourceSpans",
        J.Arr
          [
            J.Obj
              [
                ( "resource",
                  J.Obj [ ("attributes", J.Arr [ attr "service.name" ("stringValue", J.Str "mcc") ]) ] );
                ( "scopeSpans",
                  J.Arr
                    [
                      J.Obj
                        [
                          ("scope", J.Obj [ ("name", J.Str "mcc.dtrace"); ("version", J.Str "1") ]);
                          ("spans", J.Arr (List.map span_json t.spans));
                        ];
                    ] );
              ];
          ] );
    ]
