(** Per-task span reconstruction.

    Replays a captured {!Evlog} stream into one span per task: a
    chronological sequence of segments classifying every instant of the
    task's lifetime.  This is the per-task decomposition behind the
    paper's §4 discussion — how much of a stream's lifetime went to
    waiting on queues versus DKY blockage versus real compilation.
    {!Critpath} walks these spans backwards to attribute the end-to-end
    time. *)

type seg_kind =
  | Queue  (** ready (spawned, or gate released) but not yet started *)
  | Run
      (** executing on a processor, including the dispatch latency
          between a wake and the actual resume *)
  | Dky_wait  (** blocked by a DKY condition (symbol-table wait) *)
  | Event_wait
      (** blocked on any other handled/barrier event (token queues,
          completion waits, the merge gate) *)
  | Backoff  (** crashed at start, sitting out the retry backoff *)

type seg = {
  g_t0 : float;
  g_t1 : float;
  g_kind : seg_kind;
  g_ev : int;  (** the event waited on; -1 if none *)
}

type t = {
  sp_task : int;
  sp_name : string;
  sp_cls : string;
  sp_spawned : float;
  sp_started : float;  (** -1.0 if the task never started *)
  sp_finished : float;  (** -1.0 if the task never finished *)
  sp_segs : seg array;  (** chronological *)
}

val kind_name : seg_kind -> string

(** One span per task appearing in the log, sorted by task id.
    Segments of zero width are dropped. *)
val of_log : Evlog.record array -> t list

(** Total time a span spent in segments of [kind]. *)
val total : t -> seg_kind -> float

(** Aggregate run time by task class across spans, sorted by class. *)
val busy_by_class : t list -> (string * float) list
