(* Critical-path extraction and virtual-time attribution.

   Answers the question the paper's whole §4 evaluation turns on: *what
   bounds the speedup of this compilation?*  Starting from the
   last-finishing task at the end of the run, walk backwards through
   the task/event dependency graph recorded in the [Evlog] stream:

   - through a Run segment: that time was real compilation — attribute
     it to the segment's phase (lex / split / import / parse/sem /
     codegen / merge);
   - through a wait segment whose event was signalled mid-wait: the
     tail of the wait (signal -> wake) is wake/dispatch latency charged
     to the wait's bucket, and the walk *jumps to the signaller* at the
     signal time — the dependency that was actually on the path;
   - through a wait segment still unsignalled at the cursor: the whole
     stretch is charged to the wait's bucket (DKY blockage, token-queue
     starvation, completion waits) and the walk continues in the same
     task;
   - through a Queue segment: charged to the task's priority class
     ("queue:procparse", ...), then the walk jumps to whoever made the
     task ready — the gate's signaller, or the spawning task;
   - through a Backoff segment, or a wait rescued by the stall
     watchdog: charged to fault recovery.

   Each step attributes the interval between the new cursor and the old
   one, so the hops tile [0, end] exactly: the bucket totals sum to the
   end-to-end virtual time (the acceptance invariant the profile table
   checks), and each bucket's share is a true "this is what you would
   save" number, not a sampled approximation. *)

type hop = {
  h_t0 : float;
  h_t1 : float;
  h_task : int;
  h_name : string;
  h_bucket : string;
}

type t = {
  cp_end : float; (* end-to-end virtual time tiled by the hops *)
  cp_buckets : (string * float) list; (* bucket -> units, largest first *)
  cp_hops : hop list; (* chronological *)
  cp_unattributed : float; (* residue if the walk had to bail out; 0.0 normally *)
}

(* Phase attribution of a task class (paper Fig. 5 / §2.3.4 classes). *)
let phase_of_cls = function
  | "lexor" -> "lex"
  | "splitter" -> "split"
  | "importer" -> "import"
  | "defparse" | "modparse" | "procparse" -> "parse/sem"
  | "longgen" | "shortgen" -> "codegen"
  | "merge" -> "merge"
  | _ -> "startup" (* aux: the bootstrap task that wires the graph *)

let eps = 1e-9

let compute ?end_time (log : Evlog.record array) : t =
  let spans = Span.of_log log in
  let span_tbl = Hashtbl.create 64 in
  List.iter (fun (sp : Span.t) -> Hashtbl.replace span_tbl sp.Span.sp_task sp) spans;
  (* first signal per event: (signalling task, time); gate jumps and
     wait jumps both land on the signaller's running segment *)
  let first_signal = Hashtbl.create 64 in
  (* ev id -> name, for wait-bucket classification *)
  let ev_name = Hashtbl.create 64 in
  (* task id -> (spawner, spawn time); gate event per task *)
  let spawner = Hashtbl.create 64 in
  let gate_of = Hashtbl.create 64 in
  (* (ev, task) pairs whose wake came from the stall watchdog *)
  let watchdogged = Hashtbl.create 8 in
  Array.iter
    (fun (r : Evlog.record) ->
      match r.Evlog.kind with
      | Evlog.Ev_signal { ev; name } ->
          if not (Hashtbl.mem first_signal ev) then
            Hashtbl.add first_signal ev (r.Evlog.task, r.Evlog.time);
          if name <> "" then Hashtbl.replace ev_name ev name
      | Evlog.Ev_block { ev; name; _ } -> if name <> "" then Hashtbl.replace ev_name ev name
      | Evlog.Task_spawn { task; gate; _ } ->
          Hashtbl.replace spawner task (r.Evlog.task, r.Evlog.time);
          if gate >= 0 then Hashtbl.replace gate_of task gate
      | Evlog.Watchdog_fire { ev; task } -> Hashtbl.replace watchdogged (ev, task) ()
      | _ -> ())
    log;
  let wait_bucket (s : Span.seg) task =
    if Hashtbl.mem watchdogged (s.Span.g_ev, task) then "recovery"
    else if s.Span.g_kind = Span.Dky_wait then "dky-block"
    else
      match Hashtbl.find_opt ev_name s.Span.g_ev with
      | Some n when Filename.check_suffix n ".avail" -> "token-wait"
      | Some n when Filename.check_suffix n ".complete" -> "completion-wait"
      | _ -> "event-wait"
  in
  (* last finisher: the task whose completion defines the end of the run *)
  let last =
    List.fold_left
      (fun acc (sp : Span.t) ->
        if sp.Span.sp_finished < 0.0 then acc
        else
          match acc with
          | Some (b : Span.t) when (b.Span.sp_finished, b.Span.sp_task) >= (sp.Span.sp_finished, sp.Span.sp_task) -> acc
          | _ -> Some sp)
      None spans
  in
  match last with
  | None -> { cp_end = 0.0; cp_buckets = []; cp_hops = []; cp_unattributed = 0.0 }
  | Some last ->
      let cp_end = match end_time with Some e -> max e last.Span.sp_finished | None -> last.Span.sp_finished in
      let hops = ref [] (* built walking backwards, so prepending keeps it chronological *) in
      let unattributed = ref 0.0 in
      let name_of task =
        match Hashtbl.find_opt span_tbl task with
        | Some (sp : Span.t) -> sp.Span.sp_name
        | None -> if task < 0 then "scheduler" else Printf.sprintf "task#%d" task
      in
      let add bucket task t0 t1 =
        if t1 -. t0 > eps then
          hops := { h_t0 = t0; h_t1 = t1; h_task = task; h_name = name_of task; h_bucket = bucket } :: !hops
      in
      (* latest segment beginning strictly before the cursor *)
      let seg_before (sp : Span.t) cursor =
        let best = ref None in
        Array.iter
          (fun (s : Span.seg) -> if s.Span.g_t0 < cursor -. eps then best := Some s)
          sp.Span.sp_segs;
        !best
      in
      let max_steps = 4 * Array.length log + 64 in
      let rec walk steps task cursor =
        if cursor <= eps then ()
        else if steps > max_steps then begin
          (* defensive: never loop; surface the residue honestly *)
          unattributed := !unattributed +. cursor;
          add "unattributed" task 0.0 cursor
        end
        else
          let jump_to_maker bucket from_t =
            (* whoever made this task ready: the gate's signaller if
               gated, else the spawner.  Any interval between the
               maker's action and [from_t] stays in [bucket] so the
               tiling never leaks. *)
            let parent =
              match Hashtbl.find_opt gate_of task with
              | Some g -> (
                  match Hashtbl.find_opt first_signal g with
                  | Some (sigtask, sigt) when sigtask >= 0 && sigtask <> task -> Some (sigtask, sigt)
                  | _ -> Hashtbl.find_opt spawner task)
              | None -> Hashtbl.find_opt spawner task
            in
            match parent with
            | Some (par, pt) when par >= 0 && par <> task ->
                if pt < from_t -. eps then add bucket task pt from_t;
                walk (steps + 1) par (min from_t pt)
            | _ -> add "startup" task 0.0 from_t
          in
          match Hashtbl.find_opt span_tbl task with
          | None -> add "startup" task 0.0 cursor
          | Some sp -> (
              match seg_before sp cursor with
              | None ->
                  (* before the task's first segment: cross to whoever
                     created it (attributing any sliver on the way) *)
                  jump_to_maker "startup" cursor
              | Some s -> (
                  match s.Span.g_kind with
                  | Span.Run ->
                      add (phase_of_cls sp.Span.sp_cls) task s.Span.g_t0 cursor;
                      walk (steps + 1) task s.Span.g_t0
                  | Span.Backoff ->
                      add "recovery" task s.Span.g_t0 cursor;
                      walk (steps + 1) task s.Span.g_t0
                  | Span.Queue ->
                      let bucket = "queue:" ^ sp.Span.sp_cls in
                      add bucket task s.Span.g_t0 cursor;
                      jump_to_maker bucket s.Span.g_t0
                  | Span.Dky_wait | Span.Event_wait -> (
                      let bucket = wait_bucket s task in
                      match Hashtbl.find_opt first_signal s.Span.g_ev with
                      | Some (sigtask, sigt)
                        when sigt > s.Span.g_t0 +. eps
                             && sigt < cursor -. eps
                             && sigtask >= 0
                             && sigtask <> task ->
                          (* the signal arrived mid-wait: the remainder is
                             wake latency; the path continues in the
                             signalling task *)
                          add bucket task sigt cursor;
                          walk (steps + 1) sigtask sigt
                      | _ ->
                          add bucket task s.Span.g_t0 cursor;
                          walk (steps + 1) task s.Span.g_t0)))
      in
      walk 0 last.Span.sp_task cp_end;
      let hops = !hops in
      let buckets = Hashtbl.create 16 in
      List.iter
        (fun h ->
          let v = Option.value ~default:0.0 (Hashtbl.find_opt buckets h.h_bucket) in
          Hashtbl.replace buckets h.h_bucket (v +. (h.h_t1 -. h.h_t0)))
        hops;
      let cp_buckets =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) buckets []
        |> List.sort (fun (ka, va) (kb, vb) -> compare (-.va, ka) (-.vb, kb))
      in
      { cp_end; cp_buckets; cp_hops = hops; cp_unattributed = !unattributed }

(* The [k] longest hops, longest first (stable on ties by start time). *)
let top t k =
  List.stable_sort
    (fun a b -> compare (b.h_t1 -. b.h_t0, a.h_t0) (a.h_t1 -. a.h_t0, b.h_t0))
    t.cp_hops
  |> List.filteri (fun i _ -> i < k)

(* Sum of all attributed intervals; equals [cp_end] when the tiling is
   complete (the invariant the tests assert). *)
let attributed_total t =
  List.fold_left (fun acc (_, v) -> acc +. v) 0.0 t.cp_buckets
