(* Nearest-rank percentiles over small samples.

   The compile server, the farm benchmarks and the SLO reports all
   summarize latency lists the same way; this is the one shared
   implementation.  Nearest-rank (no interpolation): percentile p of n
   sorted samples is the element at rank ceil(p/100 * n), so p100 is
   the maximum, p50 of a single element is that element, and every
   reported value is one that actually occurred — the right choice for
   tail latencies, where interpolated values name sojourns no job ever
   had. *)

(* Nearest-rank percentile of an ascending-sorted array; 0 on empty
   input. *)
let percentile p sorted =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

(* Ascending sorted array of a sample list. *)
let sorted_of_list xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a

(* (mean, p50, p95, p99, max) of a sample list; all 0 on empty. *)
let summarize xs =
  let sorted = sorted_of_list xs in
  let n = Array.length sorted in
  let mean = if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 sorted /. float_of_int n in
  let maxv = if n = 0 then 0.0 else sorted.(n - 1) in
  (mean, percentile 50.0 sorted, percentile 95.0 sorted, percentile 99.0 sorted, maxv)
