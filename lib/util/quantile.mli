(** Nearest-rank percentiles over small samples — the shared latency
    summarizer for the compile server, the farm benchmarks and the SLO
    reports.  Nearest-rank: every reported value is a sample that
    actually occurred (no interpolation). *)

(** Nearest-rank percentile of an ascending-sorted array; 0 on empty
    input.  [percentile 100.0] is the maximum; on a single element,
    every percentile is that element. *)
val percentile : float -> float array -> float

(** Ascending sorted array of a sample list. *)
val sorted_of_list : float list -> float array

(** [(mean, p50, p95, p99, max)] of a sample list; all 0 on empty. *)
val summarize : float list -> float * float * float * float * float
