(* The synthetic evaluation suite.

   Stands in for the 37 DEC SRC Modula-2+ modules of the paper's Table 1.
   The entries ramp from very small to very large with characteristics
   correlated the way real software is: bigger modules have more
   procedures, more imported interfaces and deeper import nesting.  The
   quartile split of §4.2 (10/8/10/9 programs with 1-processor compile
   times in 0..5 / 5..10 / 10..30 / 30..109 s bands) is reproduced by
   choosing per-entry work budgets on a geometric ramp across those
   bands.

   [comment_pad] adds block comments to procedure bodies: large real
   modules carry proportionally more comment text, which is why the
   paper's compile times grow sublinearly in module bytes — the padding
   reproduces that relation (comments cost lexing only).

   [synth_best ()] generates Synth.mod, the best-case module of §4.2:
   many same-sized procedures whose bodies reference only their own
   locals and builtins, so compilation "generates ample parallel work for
   the compiler and never incurs a DKY blockage". *)

open Mcc_core

let n_programs = 37

(* Target 1-processor compile times (paper-style seconds), ramped within
   the four quartile bands. *)
let targets =
  let band lo hi n = List.init n (fun i -> lo +. ((hi -. lo) *. float_of_int i /. float_of_int n)) in
  band 1.35 2.8 9 @ band 2.9 5.2 9 @ band 6.2 15.0 10 @ band 17.0 58.0 9

let clamp lo hi v = max lo (min hi v)

(* Empirical work model (calibrated against the generator): one
   procedure with the default statement budget costs ~11k units; one
   definition module ~4.5k units. *)
let shape_of_target ~rank ~seconds : Gen.shape =
  let units = seconds /. Mcc_sched.Costs.seconds_per_unit in
  let n_procs = clamp 2 221 (int_of_float (units *. 0.85 /. 11_000.0) + (max 0 (rank - 28) * 5)) in
  let n_defs = clamp 4 133 (int_of_float (units *. 0.50 /. 4_500.0)) in
  let depth = clamp 1 12 (n_defs / 3) in
  {
    Gen.seed = 7_000 + (rank * 131);
    name = Printf.sprintf "M%02d" rank;
    n_defs;
    depth;
    n_procs;
    nested_per_proc = (if rank mod 3 = 0 then 1 else 0);
    stmts_lo = 5 + (rank mod 4);
    stmts_hi = 14 + (2 * (rank mod 5));
    module_vars = 4 + (2 * n_procs / 3);
    def_size = 1 + (rank / 12);
    pad = (if rank >= 30 then (rank - 29) * 60 else 0);
    runnable = false;
  }

let shapes : Gen.shape list =
  List.mapi (fun rank seconds -> shape_of_target ~rank ~seconds) targets

(* Generation is deterministic but not free; memoize the stores.  The
   suite-wide [seed] perturbs every shape's generator seed; [seed = 0]
   reproduces the canonical suite exactly. *)
let cache : (int * int, Source_store.t) Hashtbl.t = Hashtbl.create 64

let program ?(seed = 0) rank =
  match Hashtbl.find_opt cache (seed, rank) with
  | Some s -> s
  | None ->
      let shape = List.nth shapes rank in
      let gen_seed = if seed = 0 then shape.Gen.seed else shape.Gen.seed + (seed * 1_000_003) in
      let s = Gen.generate ~seed:gen_seed shape in
      Hashtbl.replace cache (seed, rank) s;
      s

let all ?(seed = 0) () = List.init n_programs (fun rank -> program ~seed rank)

let target_seconds rank = List.nth targets rank

(* The compile-server traffic generator's default program pool: ranks
   whose 1-processor target compile time fits the budget.  Decided from
   the shape targets alone — no program is generated. *)
let ranks_under seconds =
  List.concat (List.mapi (fun rank t -> if t <= seconds then [ rank ] else []) targets)

(* ------------------------------------------------------------------ *)
(* Synth.mod: the mechanically generated best-possible module (§4.2). *)

let synth_best ?(n_procs = 96) ?(stmts = 24) () : Source_store.t =
  let buf = Buffer.create (n_procs * 900) in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  p "IMPLEMENTATION MODULE Synth;\n\n";
  for i = 0 to n_procs - 1 do
    p "PROCEDURE W%d(seed: INTEGER): INTEGER;\n" i;
    p "VAR a, b, c, k: INTEGER; flag: BOOLEAN;\n";
    p "BEGIN\n";
    p "  a := seed; b := seed * 3; c := 1; flag := FALSE;\n";
    for s = 0 to stmts - 1 do
      match s mod 6 with
      | 0 ->
          p "  FOR k := 0 TO %d DO c := c + ((a MOD 7) * (k + 1)) - ((b DIV 5) + ABS(c - k)) END;\n"
            (5 + (s mod 9))
      | 1 -> p "  IF (a > b) OR flag THEN a := a - %d ELSE b := b - %d END;\n" (s + 1) (s + 2)
      | 2 -> p "  flag := ODD(a + b + c);\n"
      | 3 -> p "  c := ABS((a - b) * (c + %d)) + ((c MOD %d) * ORD(ODD(a)));\n" (s + 1) (3 + (s mod 5))
      | 4 -> p "  k := %d;\n  WHILE k > 0 DO a := a + 1; k := k - 1 END;\n" (4 + (s mod 6))
      | _ -> p "  b := (b * 2) MOD 1000 + ORD(flag);\n"
    done;
    p "  RETURN a + b + c\nEND W%d;\n\n" i
  done;
  p "BEGIN\n";
  p "END Synth.\n";
  Source_store.make ~main_name:"Synth" ~main_src:(Buffer.contents buf) ~defs:[] ()
