(** The synthetic evaluation suite: 37 programs tuned to the paper's
    Table 1 (sizes, sequential compile times, interface counts and
    nesting depths, procedure and stream counts, and the §4.2 quartile
    populations), plus the mechanically generated best-case module. *)

open Mcc_core

val n_programs : int

(** The shape of each suite entry, in rank order. *)
val shapes : Gen.shape list

(** Generate (and memoize) suite program [rank], 0-based.  [?seed]
    perturbs every shape's generator seed to produce a fresh but equally
    shaped suite; [seed = 0] (the default) is the canonical suite. *)
val program : ?seed:int -> int -> Source_store.t

(** All 37 programs. *)
val all : ?seed:int -> unit -> Source_store.t list

(** Suite entry [rank]'s target 1-processor compile time, in paper-style
    seconds (the Table 1 ramp the shapes are tuned to). *)
val target_seconds : int -> float

(** Ranks whose target 1-processor compile time is at most [seconds] —
    the compile-server traffic generator's default program pool.
    Decided from the shape targets alone; no program is generated. *)
val ranks_under : float -> int list

(** Synth.mod (paper §4.2): many same-sized procedures whose bodies
    reference only their own locals and builtins, so compilation
    "generates ample parallel work for the compiler and never incurs a
    DKY blockage". *)
val synth_best : ?n_procs:int -> ?stmts:int -> unit -> Source_store.t
