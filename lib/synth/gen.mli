(** The synthetic Modula-2+ program generator: the substitute for the
    proprietary DEC SRC library behind the paper's test suite.

    Deterministic from a seed; type-correct by construction (the suite
    must compile cleanly under every driver and strategy); exercises the
    whole language subset — import DAGs with controlled depth and
    fan-out, FROM-imports and qualified names, the full type and
    statement language, nested procedures with uplevel references, and
    the Modula-2+ TRY/RAISE/LOCK extensions.  Procedure sizes are
    heavily skewed, producing the long code-generation tails the paper's
    long-before-short scheduling fights. *)

open Mcc_core

type shape = {
  seed : int;
  name : string;  (** module name; also prefixes interface names *)
  n_defs : int;  (** definition modules generated (all reachable) *)
  depth : int;  (** import-nesting depth *)
  n_procs : int;  (** top-level procedures in the main module *)
  nested_per_proc : int;  (** max nested procedures per top-level one *)
  stmts_lo : int;
  stmts_hi : int;  (** statement budget per procedure body *)
  module_vars : int;  (** scales the module-level declaration section *)
  def_size : int;  (** scales the declaration count of interfaces *)
  pad : int;
      (** bytes of comment text per procedure: big modules carry
          proportionally more comments, making compile time sublinear in
          module size as in Table 1 *)
  runnable : bool;
      (** when set: calls go only to already-emitted procedures, all
          loops are bounded, and no uninitialized storage is read — the
          compiled program terminates in the VM *)
}

(** Generate the module and all its interfaces.  [?seed] overrides
    [shape.seed] (the suite threads one user-visible seed through every
    shape this way). *)
val generate : ?seed:int -> shape -> Source_store.t

(** {1 Shape mutations}

    The reduction moves the conformance shrinker applies before falling
    back to source-level delta debugging: each strictly reduces some
    size field while keeping the shape generatable, and returns the
    shape {e unchanged} when it cannot reduce further (the caller's
    fixpoint signal). *)

type mutation =
  | Drop_defs
  | Halve_defs
  | Shallow_imports
  | Halve_procs
  | Drop_nested
  | Halve_stmts
  | Halve_module_vars
  | Shrink_def_size
  | Drop_pad

(** Every mutation, in the order the shrinker tries them. *)
val mutations : mutation list

val mutation_name : mutation -> string
val mutate : shape -> mutation -> shape

(** {1 Implementation synthesis and the edit stream}

    Fuel for the fine-grained incremental build layer: {!with_impls}
    turns a generated single-implementation program into a multi-module
    project, and {!edit_stream} derives a seeded sequence of
    single-declaration edits over it. *)

(** Give every definition module that lacks one a synthetic
    implementation (each declared procedure gets a deterministic body),
    so the whole project — not just the main module — is compiled and
    cached.  Existing implementations are kept. *)
val with_impls : Source_store.t -> Source_store.t

(** The three edit classes, by what they may invalidate:
    [Body_only] touches one implementation body (exactly that module
    should rebuild); [Sig_preserving] touches interface text without
    changing any declaration (the fingerprint moves, the shape digest
    does not — early cutoff should rebuild nothing); [Sig_changing]
    changes one exported constant's value (one slice digest moves —
    only modules that used that slice should rebuild). *)
type edit_class = Body_only | Sig_preserving | Sig_changing

val class_name : edit_class -> string

type edit = {
  e_class : edit_class;
  e_target : string;  (** the module whose source the edit touched *)
  e_slice : string option;  (** the declaration a [Sig_changing] edit moved *)
  e_store : Source_store.t;  (** the project after the edit *)
}

(** [edit_stream ?seed ~n store] — [n] edits, cumulative (each applies
    to the previous edit's store), deterministic in [seed].  The store
    is passed through {!with_impls} first; edits degenerate gracefully
    (a class with no viable target falls back to [Body_only]) so any
    generated program yields a full-length stream. *)
val edit_stream : ?seed:int -> n:int -> Source_store.t -> edit list
