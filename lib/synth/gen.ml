(* The synthetic Modula-2+ program generator.

   Substitutes for the DEC SRC library the paper's 37-program test suite
   was drawn from (Table 1).  Every program is generated deterministically
   from a seed and a shape, is type-correct (the suite must compile
   without errors under every driver and strategy), and exercises the
   whole language subset: import DAGs with controlled depth and fan-out,
   FROM-imports and qualified names, enumerations, subranges, arrays,
   records, sets, pointers, procedure types, nested procedures, WITH,
   CASE, loops, and the Modula-2+ TRY/RAISE/LOCK extensions.

   Two generation modes:
   - compile-only (the benchmark suite): procedures may call forward and
     imported procedures, loops may be unbounded — the code is compiled,
     never executed;
   - [runnable]: calls go only to already-emitted procedures and all
     loops are bounded, so the compiled program terminates in the VM
     (used by examples and differential execution tests).

   Uplevel references from nested procedures to enclosing procedure
   locals are never generated (the target machine has no static links;
   the compiler rejects them). *)

open Mcc_util
open Mcc_core

type shape = {
  seed : int;
  name : string;
  n_defs : int; (* definition modules (total, all reachable) *)
  depth : int; (* import-nesting depth *)
  n_procs : int; (* top-level procedures in the main module *)
  nested_per_proc : int; (* max nested procedures per top-level one *)
  stmts_lo : int;
  stmts_hi : int; (* statements per procedure body *)
  module_vars : int;
  def_size : int; (* scales the declaration count of definition modules *)
  pad : int; (* bytes of comment text added per procedure: big modules
                carry proportionally more comments, making compile time
                sublinear in module size as in the paper's Table 1 *)
  runnable : bool;
}

(* ------------------------------------------------------------------ *)
(* Shape mutations: the reduction moves the conformance shrinker
   (Mcc_check.Shrink) applies before falling back to source-level delta
   debugging.  Every mutation strictly reduces some size field while
   keeping the shape generatable (invariants: n_procs >= 1,
   stmts_lo <= stmts_hi, depth >= 1, ...); a mutation that cannot
   reduce further returns the shape unchanged, which callers use as the
   fixpoint signal. *)

type mutation =
  | Drop_defs  (** remove every definition module *)
  | Halve_defs
  | Shallow_imports  (** import nesting depth -> 1 *)
  | Halve_procs
  | Drop_nested  (** no nested procedures *)
  | Halve_stmts  (** halve the per-procedure statement budget *)
  | Halve_module_vars
  | Shrink_def_size
  | Drop_pad  (** no comment padding *)

let mutations =
  [
    Drop_defs; Halve_defs; Shallow_imports; Halve_procs; Drop_nested; Halve_stmts;
    Halve_module_vars; Shrink_def_size; Drop_pad;
  ]

let mutation_name = function
  | Drop_defs -> "drop-defs"
  | Halve_defs -> "halve-defs"
  | Shallow_imports -> "shallow-imports"
  | Halve_procs -> "halve-procs"
  | Drop_nested -> "drop-nested"
  | Halve_stmts -> "halve-stmts"
  | Halve_module_vars -> "halve-module-vars"
  | Shrink_def_size -> "shrink-def-size"
  | Drop_pad -> "drop-pad"

let mutate (s : shape) = function
  | Drop_defs -> if s.n_defs = 0 then s else { s with n_defs = 0; depth = 1 }
  | Halve_defs -> if s.n_defs <= 1 then s else { s with n_defs = s.n_defs / 2 }
  | Shallow_imports -> if s.depth <= 1 then s else { s with depth = 1 }
  | Halve_procs -> if s.n_procs <= 1 then s else { s with n_procs = max 1 (s.n_procs / 2) }
  | Drop_nested -> if s.nested_per_proc = 0 then s else { s with nested_per_proc = 0 }
  | Halve_stmts ->
      if s.stmts_hi <= 1 then s
      else
        let hi = max 1 (s.stmts_hi / 2) in
        { s with stmts_hi = hi; stmts_lo = min s.stmts_lo hi }
  | Halve_module_vars ->
      if s.module_vars <= 1 then s else { s with module_vars = max 1 (s.module_vars / 2) }
  | Shrink_def_size -> if s.def_size <= 1 then s else { s with def_size = 1 }
  | Drop_pad -> if s.pad = 0 then s else { s with pad = 0 }

(* ------------------------------------------------------------------ *)
(* What a definition module exports (tracked so the main module can
   reference imported names type-correctly). *)

type def_info = {
  d_name : string;
  d_consts : string list; (* INTEGER constants *)
  d_int_vars : string list;
  d_funcs : string list; (* PROCEDURE (INTEGER): INTEGER *)
  d_procs : string list; (* PROCEDURE (VAR INTEGER) *)
}

type st = {
  rng : Prng.t;
  shape : shape;
  buf : Buffer.t;
  mutable indent : int;
  imported_by_someone : (string, unit) Hashtbl.t;
      (* interfaces imported by another interface; the main module
         imports the rest so every interface is reachable *)
}

let line st fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string st.buf (String.make (2 * st.indent) ' ');
      Buffer.add_string st.buf s;
      Buffer.add_char st.buf '\n')
    fmt

let nest st f =
  st.indent <- st.indent + 1;
  f ();
  st.indent <- st.indent - 1

(* ------------------------------------------------------------------ *)
(* Definition modules *)

(* Distribute [n] definition modules over [depth] levels; level 0 is the
   deepest (imports nothing).  Every module at level l>0 imports at least
   one module at level l-1, and the main module imports every module at
   the top level, so all are reachable. *)
let plan_levels rng ~n ~depth =
  if n <= 0 then [||]
  else
  let depth = max 1 (min depth n) in
  let counts = Array.make depth 1 in
  for _ = 1 to n - depth do
    let l = Prng.int rng depth in
    counts.(l) <- counts.(l) + 1
  done;
  counts

let gen_def st rng ~prog ~index ~level ~below : string * def_info =
  let name = Printf.sprintf "%sL%d" prog index in
  let buf = Buffer.create 512 in
  let s = { st with buf; indent = 0 } in
  line s "DEFINITION MODULE %s;" name;
  (* imports from the level below: a chain link plus extra fan-out *)
  let imported =
    if below = [] then []
    else begin
      let first = Prng.choose rng below in
      let extra =
        List.filter (fun d -> d.d_name <> first.d_name && Prng.chance rng 0.3) below
      in
      first :: extra
    end
  in
  List.iter
    (fun d ->
      Hashtbl.replace st.imported_by_someone d.d_name ();
      line s "IMPORT %s;" d.d_name)
    imported;
  (* a FROM import when possible, to exercise "other"-scope lookups *)
  (match imported with
  | d :: _ when d.d_consts <> [] ->
      line s "FROM %s IMPORT %s;" d.d_name (List.hd d.d_consts)
  | _ -> ());
  let n_consts = Prng.range rng 2 5 * max 1 st.shape.def_size in
  let consts = List.init n_consts (fun k -> Printf.sprintf "c%d_%d" index k) in
  line s "CONST";
  nest s (fun () ->
      List.iteri
        (fun k c ->
          match imported with
          | d :: _ when d.d_consts <> [] && k = 0 ->
              (* reference an imported constant in a constant expression *)
              line s "%s = %s.%s + %d;" c d.d_name (List.hd d.d_consts) (Prng.range rng 1 9)
          | _ -> line s "%s = %d;" c (Prng.range rng 1 100))
        consts);
  line s "TYPE";
  nest s (fun () ->
      line s "tEnum%d = (red%d, green%d, blue%d);" index index index index;
      line s "tArr%d = ARRAY [0..%d] OF INTEGER;" index (Prng.range rng 7 15);
      line s "tRec%d = RECORD a, b: INTEGER; ok: BOOLEAN END;" index;
      line s "tSet%d = SET OF [0..15];" index;
      line s "tPtr%d = POINTER TO tRec%d;" index index);
  let n_vars = Prng.range rng 2 4 * max 1 st.shape.def_size in
  let int_vars = List.init n_vars (fun k -> Printf.sprintf "v%d_%d" index k) in
  line s "VAR";
  nest s (fun () ->
      List.iter (fun v -> line s "%s: INTEGER;" v) int_vars;
      line s "flag%d: BOOLEAN;" index;
      line s "rec%d: tRec%d;" index index);
  let n_funcs = Prng.range rng 1 3 * max 1 st.shape.def_size in
  let funcs = List.init n_funcs (fun k -> Printf.sprintf "f%d_%d" index k) in
  List.iter (fun f -> line s "PROCEDURE %s(x: INTEGER): INTEGER;" f) funcs;
  let n_procs = Prng.range rng 1 2 in
  let procs = List.init n_procs (fun k -> Printf.sprintf "p%d_%d" index k) in
  List.iter (fun p -> line s "PROCEDURE %s(VAR x: INTEGER);" p) procs;
  line s "END %s." name;
  ignore level;
  ( Buffer.contents s.buf,
    { d_name = name; d_consts = consts; d_int_vars = int_vars; d_funcs = funcs; d_procs = procs } )

(* ------------------------------------------------------------------ *)
(* Expressions and statements for the main module *)

(* The generation environment inside one procedure body. *)
type penv = {
  int_lvalues : string list; (* assignable INTEGER designators *)
  int_rvalues : string list; (* INTEGER expressions: vars, consts, params *)
  bool_lvalues : string list;
  set_lvalues : string list; (* designators of type BITSET-ish SET OF [0..15] *)
  rec_lvalues : string list; (* tRec-style records with fields a, b: INTEGER; ok: BOOLEAN *)
  callable_funcs : string list; (* f(INTEGER): INTEGER by name *)
  callable_procs : string list; (* p(VAR INTEGER) by name *)
  exception_name : string option;
  loop_vars : string list;
      (* dedicated locals for FOR loops, one per nesting level: nested
         FORs must not share a control variable or the outer loop can be
         reset forever *)
  for_depth : int ref;
  loop_var : string; (* the outermost FOR variable (also used in array indexes) *)
  scratch : string; (* a dedicated local for bounded WHILE loops *)
}

let rec int_expr st rng env depth =
  if depth <= 0 then
    match Prng.int rng 3 with
    | 0 -> string_of_int (Prng.range rng 0 99)
    | 1 when env.int_rvalues <> [] -> Prng.choose rng env.int_rvalues
    | _ -> if env.int_rvalues <> [] then Prng.choose rng env.int_rvalues else "7"
  else
    match Prng.int rng 8 with
    | 0 | 1 ->
        Printf.sprintf "(%s %s %s)" (int_expr st rng env (depth - 1))
          (Prng.choose rng [ "+"; "-"; "*" ])
          (int_expr st rng env (depth - 1))
    | 2 ->
        Printf.sprintf "(%s DIV %d)" (int_expr st rng env (depth - 1)) (Prng.range rng 1 9)
    | 3 ->
        Printf.sprintf "(%s MOD %d)" (int_expr st rng env (depth - 1)) (Prng.range rng 2 9)
    | 4 when env.callable_funcs <> [] ->
        Printf.sprintf "%s(%s)" (Prng.choose rng env.callable_funcs) (int_expr st rng env (depth - 1))
    | 5 -> Printf.sprintf "ABS(%s)" (int_expr st rng env (depth - 1))
    | 6 -> Printf.sprintf "ORD(ODD(%s))" (int_expr st rng env (depth - 1))
    | _ -> int_expr st rng env 0

let bool_expr st rng env depth =
  match Prng.int rng 4 with
  | 0 ->
      Printf.sprintf "(%s %s %s)" (int_expr st rng env depth)
        (Prng.choose rng [ "<"; "<="; ">"; ">="; "="; "#" ])
        (int_expr st rng env depth)
  | 1 when env.bool_lvalues <> [] -> Prng.choose rng env.bool_lvalues
  | 2 -> Printf.sprintf "ODD(%s)" (int_expr st rng env depth)
  | _ when env.set_lvalues <> [] ->
      Printf.sprintf "((%s MOD 16) IN %s)" (int_expr st rng env (depth - 1))
        (Prng.choose rng env.set_lvalues)
  | _ -> Printf.sprintf "(%s > 0)" (int_expr st rng env depth)

let rec stmt st rng env ~budget =
  if !budget <= 0 then ()
  else begin
    decr budget;
    match Prng.int rng 20 with
    | 0 | 1 | 2 | 3 | 4 when env.int_lvalues <> [] ->
        line st "%s := %s;" (Prng.choose rng env.int_lvalues) (int_expr st rng env 2)
    | 5 when env.bool_lvalues <> [] ->
        line st "%s := %s;" (Prng.choose rng env.bool_lvalues) (bool_expr st rng env 1)
    | 6 ->
        line st "IF %s THEN" (bool_expr st rng env 1);
        nest st (fun () -> stmt_seq st rng env ~budget ~n:(Prng.range rng 1 3));
        if Prng.bool rng then begin
          line st "ELSE";
          nest st (fun () -> stmt_seq st rng env ~budget ~n:(Prng.range rng 1 2))
        end;
        line st "END;"
    | 7 when !(env.for_depth) < List.length env.loop_vars ->
        let v = List.nth env.loop_vars !(env.for_depth) in
        line st "FOR %s := 0 TO %d DO" v (Prng.range rng 3 12);
        incr env.for_depth;
        nest st (fun () -> stmt_seq st rng env ~budget ~n:(Prng.range rng 1 3));
        decr env.for_depth;
        line st "END;"
    | 8 ->
        (* a bounded WHILE: terminates in both modes *)
        line st "%s := %d;" env.scratch (Prng.range rng 2 9);
        line st "WHILE %s > 0 DO" env.scratch;
        nest st (fun () ->
            stmt_seq st rng env ~budget ~n:(Prng.range rng 1 2);
            line st "%s := %s - 1;" env.scratch env.scratch);
        line st "END;"
    | 9 ->
        line st "CASE (%s) MOD 4 OF" (int_expr st rng env 1);
        nest st (fun () ->
            line st "0: %s;"
              (if env.int_lvalues <> [] then
                 Printf.sprintf "%s := %s" (Prng.choose rng env.int_lvalues) (int_expr st rng env 1)
               else "");
            line st "| 1, 2:";
            nest st (fun () -> stmt_seq st rng env ~budget ~n:1);
            line st "ELSE";
            nest st (fun () -> stmt_seq st rng env ~budget ~n:1));
        line st "END;"
    | 10 when env.rec_lvalues <> [] ->
        let r = Prng.choose rng env.rec_lvalues in
        line st "WITH %s DO" r;
        nest st (fun () ->
            line st "a := %s;" (int_expr st rng env 1);
            line st "b := a + %d;" (Prng.range rng 1 9);
            line st "ok := %s;" (bool_expr st rng env 0));
        line st "END;"
    | 11 when env.set_lvalues <> [] ->
        let s = Prng.choose rng env.set_lvalues in
        (match Prng.int rng 3 with
        | 0 -> line st "INCL(%s, (%s) MOD 16);" s (int_expr st rng env 1)
        | 1 -> line st "EXCL(%s, %d);" s (Prng.range rng 0 15)
        | _ -> line st "%s := %s + {%d, %d..%d};" s s (Prng.range rng 0 3) (Prng.range rng 4 8) (Prng.range rng 9 15))
    | 12 when env.int_lvalues <> [] ->
        line st "INC(%s%s);" (Prng.choose rng env.int_lvalues)
          (if Prng.bool rng then "" else Printf.sprintf ", %d" (Prng.range rng 1 5))
    | 13 when env.callable_procs <> [] && env.int_lvalues <> [] ->
        line st "%s(%s);" (Prng.choose rng env.callable_procs) (Prng.choose rng env.int_lvalues)
    | 14 when env.exception_name <> None && env.int_lvalues <> [] ->
        let exc = Option.get env.exception_name in
        line st "TRY";
        nest st (fun () ->
            line st "IF %s THEN RAISE %s END;" (bool_expr st rng env 0) exc;
            stmt_seq st rng env ~budget ~n:1);
        line st "EXCEPT %s:" exc;
        nest st (fun () -> stmt_seq st rng env ~budget ~n:1);
        line st "END;"
    | 15 when env.int_lvalues <> [] ->
        (* a REPEAT that runs exactly once: the condition compares a
           value with itself, and the body never touches loop counters *)
        let v = Prng.choose rng env.int_lvalues in
        line st "REPEAT";
        line st "  %s := %s;" v (int_expr st rng env 1);
        line st "UNTIL %s = %s;" v v
    | _ when env.int_lvalues <> [] ->
        line st "%s := %s;" (Prng.choose rng env.int_lvalues) (int_expr st rng env 2)
    | _ -> line st "%s := %s;" env.loop_var (int_expr st rng env 1)
  end

and stmt_seq st rng env ~budget ~n =
  for _ = 1 to n do
    stmt st rng env ~budget
  done

(* ------------------------------------------------------------------ *)
(* The main module *)

let gen_proc st rng ~(defs : def_info list) ~from_imports ~globals ~index ~nested_budget
    ~emitted ~shape =
  let fname = Printf.sprintf "P%d" index in
  let is_func = Prng.bool rng in
  let n_params = if is_func && Prng.chance rng 0.7 then 1 else Prng.range rng 0 3 in
  let params = List.init n_params (fun k -> Printf.sprintf "a%d" k) in
  let heading =
    Printf.sprintf "PROCEDURE %s%s%s;" fname
      (if params = [] then ""
       else "(" ^ String.concat "; " (List.map (fun p -> p ^ ": INTEGER") params) ^ ")")
      (if is_func then ": INTEGER" else "")
  in
  line st "%s" heading;
  if shape.pad > 0 then begin
    let words = max 1 (shape.pad / 60) in
    for w = 1 to words do
      line st "(* %s %d: this block documents invariants of %s in prose form padding *)"
        fname w fname
    done
  end;
  let n_locals = Prng.range rng 2 5 in
  let locals = List.init n_locals (fun k -> Printf.sprintf "x%d" k) in
  nest st (fun () ->
      (* a local constant referencing an imported interface: qualified
         names are common in declarations (paper §4.3), and these
         references race the interface's declaration analysis early in
         the compilation — the main source of DKY blockages *)
      (match defs with
      | d :: _ when d.d_consts <> [] && Prng.chance rng 0.6 ->
          line st "CONST lq = %s.%s + %d;" d.d_name
            (Prng.choose rng d.d_consts) (Prng.range rng 1 9)
      | _ -> ());
      line st "VAR %s, i, i2, i3, lc, tmp: INTEGER; done: BOOLEAN;" (String.concat ", " locals);
      line st "VAR rr: gRec; ss: gSet; aa: gArr;");
  (* nested procedures: own locals only (no uplevel addressing) *)
  let nested =
    List.init
      (if nested_budget > 0 then Prng.int rng (nested_budget + 1) else 0)
      (fun k -> Printf.sprintf "N%d_%d" index k)
  in
  nest st (fun () ->
      List.iter
        (fun nname ->
          line st "PROCEDURE %s(y: INTEGER): INTEGER;" nname;
          line st "VAR t, u: INTEGER;";
          line st "BEGIN";
          nest st (fun () ->
              let env =
                {
                  (* nested procedures reach enclosing locals through the
                     static chain (uplevel addressing) *)
                  int_lvalues = [ "t"; List.hd locals ];
                  int_rvalues = [ "y"; "t"; List.hd globals; List.hd locals ] @ params @ from_imports;
                  bool_lvalues = [];
                  set_lvalues = [];
                  rec_lvalues = [];
                  callable_funcs = (if shape.runnable then [] else List.map (fun d -> d.d_name ^ "." ^ List.hd d.d_funcs) (if defs = [] then [] else [ List.hd defs ]));
                  callable_procs = [];
                  exception_name = None;
                  loop_vars = [ "u" ];
                  for_depth = ref 0;
                  loop_var = "u";
                  scratch = "u";
                }
              in
              line st "t := y; u := 0;";
              let budget = ref (Prng.range rng 2 5) in
              stmt_seq st rng env ~budget ~n:3;
              line st "RETURN t + y");
          line st "END %s;" nname)
        nested);
  line st "BEGIN";
  let qualified_ints =
    (* interface variables are storage in the exporting module's frame;
       runnable programs never touch them (their initialization would be
       that module's body, which is not compiled here) *)
    if shape.runnable then []
    else
      List.concat_map
        (fun d ->
          List.map (fun v -> d.d_name ^ "." ^ v) (if Prng.chance rng 0.4 then d.d_int_vars else []))
        defs
  in
  let imported_funcs =
    if shape.runnable then []
    else List.concat_map (fun d -> List.map (fun f -> d.d_name ^ "." ^ f) d.d_funcs) defs
  in
  let imported_procs =
    if shape.runnable then []
    else List.concat_map (fun d -> List.map (fun p -> d.d_name ^ "." ^ p) d.d_procs) defs
  in
  let callable_funcs =
    List.filter_map
      (fun (f, has_result, arity) -> if has_result && arity = 1 then Some f else None)
      emitted
    @ nested @ imported_funcs
  and callable_procs = imported_procs in
  let qualified_consts = List.concat_map (fun d -> List.map (fun c -> d.d_name ^ "." ^ c) d.d_consts) defs in
  nest st (fun () ->
      let env =
        {
          int_lvalues =
            locals @ params @ [ "tmp" ] @ globals @ [ "rr.a"; "rr.b"; "aa[i MOD 8]" ]
            @ qualified_ints;
          int_rvalues =
            locals @ params @ globals
            @ (if qualified_consts = [] then [] else [ Prng.choose rng qualified_consts ])
            @ from_imports;
          bool_lvalues = [ "done"; "rr.ok" ];
          set_lvalues = [ "ss" ];
          rec_lvalues = [ "rr" ];
          callable_funcs;
          callable_procs;
          exception_name = Some "gExc";
          loop_vars = [ "i"; "i2"; "i3" ];
          for_depth = ref 0;
          loop_var = "i";
          scratch = "lc";
        }
      in
      List.iteri (fun k x -> line st "%s := %d;" x (k + 1)) locals;
      List.iter (fun p -> line st "tmp := %s;" p) [];
      line st "tmp := 0; i := 0; i2 := 0; i3 := 0; lc := 0; done := FALSE;";
      line st "rr.a := 1; rr.b := 2; rr.ok := TRUE; ss := {};";
      line st "FOR i := 0 TO 7 DO aa[i] := i END;";
      let base_budget = Prng.range rng shape.stmts_lo shape.stmts_hi in
      let budget =
        (* procedure sizes in real software are heavily skewed: a few
           procedures are several times larger than the rest, producing
           the long sequential tail the paper's long-before-short
           scheduling fights (§2.3.4) *)
        ref (if Prng.chance rng 0.08 then base_budget * Prng.range rng 4 8 else base_budget)
      in
      while !budget > 0 do
        stmt st rng env ~budget
      done;
      if is_func then line st "RETURN tmp");
  line st "END %s;" fname;
  line st "";
  (fname, is_func, n_params)

let generate ?seed (shape : shape) : Source_store.t =
  let rng = Prng.create (Option.value ~default:shape.seed seed) in
  let prog = shape.name in
  let st =
    { rng; shape; buf = Buffer.create 4096; indent = 0; imported_by_someone = Hashtbl.create 32 }
  in
  (* --- definition modules, level by level --- *)
  let levels = plan_levels rng ~n:shape.n_defs ~depth:shape.depth in
  let all_defs = ref [] in
  let def_sources = ref [] in
  let idx = ref 0 in
  let below = ref [] in
  Array.iteri
    (fun level count ->
      let this_level = ref [] in
      for _ = 1 to count do
        let src, info = gen_def st rng ~prog ~index:!idx ~level ~below:!below in
        incr idx;
        def_sources := (info.d_name, src) :: !def_sources;
        this_level := info :: !this_level;
        all_defs := info :: !all_defs
      done;
      below := !this_level)
    levels;
  let top_level = !below in
  let all_defs = List.rev !all_defs in
  (* --- the main module --- *)
  line st "IMPLEMENTATION MODULE %s;" prog;
  (* direct imports: every top-level interface, every interface no other
     interface imports (so all are reachable), plus a sample of others *)
  let direct =
    top_level
    @ List.filter
        (fun d ->
          (not (List.memq d top_level))
          && ((not (Hashtbl.mem st.imported_by_someone d.d_name)) || Prng.chance rng 0.15))
        all_defs
  in
  List.iter (fun d -> line st "IMPORT %s;" d.d_name) direct;
  let from_imports =
    List.filter_map
      (fun (d : def_info) ->
        if Prng.chance rng 0.5 && d.d_consts <> [] then begin
          let c = List.hd d.d_consts in
          line st "FROM %s IMPORT %s;" d.d_name c;
          Some c
        end
        else None)
      direct
  in
  line st "";
  line st "TYPE gRec = RECORD a, b: INTEGER; ok: BOOLEAN END;";
  line st "TYPE gSet = SET OF [0..15];";
  line st "TYPE gArr = ARRAY [0..7] OF INTEGER;";
  line st "TYPE gPtr = POINTER TO gRec;";
  let globals = List.init (max 1 shape.module_vars) (fun k -> Printf.sprintf "g%d" k) in
  (* the module-level declaration section: large in real modules, and
     processed serially by the module parser before later procedure
     headings are reached — the source of the mid-compilation lull the
     paper's Figure 7 shows *)
  let qualified_consts_all =
    List.concat_map (fun d -> List.map (fun c -> d.d_name ^ "." ^ c) d.d_consts) direct
  in
  for k = 0 to (3 * shape.module_vars) - 1 do
    if qualified_consts_all <> [] && Prng.chance rng 0.3 then
      line st "CONST mc%d = %s + %d;" k (Prng.choose rng qualified_consts_all) (Prng.range rng 1 50)
    else line st "CONST mc%d = %d;" k (Prng.range rng 1 500)
  done;
  for k = 0 to shape.module_vars - 1 do
    line st "TYPE mt%d = ARRAY [0..%d] OF INTEGER;" k (Prng.range rng 3 31)
  done;
  for k = 0 to shape.module_vars - 1 do
    line st "TYPE mr%d = RECORD x, y: INTEGER; tag: BOOLEAN END;" k
  done;
  line st "VAR %s: INTEGER;" (String.concat ", " globals);
  for k = 0 to shape.module_vars - 1 do
    line st "VAR mv%d: mt%d; mw%d: mr%d;" k k k k
  done;
  line st "VAR gExc: EXCEPTION;";
  line st "VAR gMu: MUTEX;";
  line st "VAR gp: gPtr;";
  line st "";
  (* --- procedures --- *)
  let emitted = ref [] in
  for i = 0 to shape.n_procs - 1 do
    let fname, is_func, n_params =
      gen_proc st rng ~defs:direct ~from_imports ~globals ~index:i
        ~nested_budget:shape.nested_per_proc ~emitted:!emitted ~shape
    in
    emitted := (fname, is_func, n_params) :: !emitted
  done;
  (* --- module body --- *)
  line st "BEGIN";
  nest st (fun () ->
      List.iteri (fun k g -> line st "%s := %d;" g (k + 1)) globals;
      line st "NEW(gp); gp^.a := 10; gp^.b := gp^.a * 2; gp^.ok := TRUE;";
      line st "LOCK gMu DO %s := %s + gp^.b END;" (List.hd globals) (List.hd globals);
      List.iteri
        (fun k (f, has_result, arity) ->
          if has_result && arity = 1 then
            line st "%s := %s + %s(%d);" (List.hd globals) (List.hd globals) f k)
        !emitted;
      if shape.runnable then begin
        line st "WriteString(\"%s=\"); WriteInt(%s); WriteLn;" prog (List.hd globals)
      end);
  line st "END %s." prog;
  Source_store.make ~main_name:prog ~main_src:(Buffer.contents st.buf)
    ~defs:(List.rev !def_sources) ()

(* ------------------------------------------------------------------ *)
(* Implementation synthesis: turning the suite's single-implementation
   programs into multi-module projects, so the incremental build layer
   has more than one module to (not) rebuild. *)

(* The PROCEDURE headings a generated definition module declares.  They
   are emitted at column 0 in the fixed formats of [gen_def]:
   "PROCEDURE f(x: INTEGER): INTEGER;" and "PROCEDURE p(VAR x: INTEGER);". *)
let def_procs_of_src src =
  String.split_on_char '\n' src
  |> List.filter_map (fun l ->
         if String.starts_with ~prefix:"PROCEDURE " l then
           let rest = String.sub l 10 (String.length l - 10) in
           let stop =
             match (String.index_opt rest '(', String.index_opt rest ';') with
             | Some i, _ -> i
             | None, Some i -> i
             | None, None -> String.length rest
           in
           Some (String.trim (String.sub rest 0 stop), String.ends_with ~suffix:": INTEGER;" l)
         else None)

(* A synthetic implementation of a definition module: every declared
   procedure gets a body whose behavior depends only on its arguments
   and [rev] — bumping [rev] is a pure body edit (the interface text is
   untouched), the edit stream's Body_only move. *)
let impl_of_def ?(rev = 0) ~name src =
  let b = Buffer.create 256 in
  Printf.bprintf b "IMPLEMENTATION MODULE %s;\n" name;
  Printf.bprintf b "(* synthetic implementation, revision %d *)\n" rev;
  List.iter
    (fun (p, is_func) ->
      if is_func then
        Printf.bprintf b
          "PROCEDURE %s(x: INTEGER): INTEGER;\nBEGIN\n  RETURN x + %d\nEND %s;\n" p
          (rev + 1) p
      else
        Printf.bprintf b "PROCEDURE %s(VAR x: INTEGER);\nBEGIN\n  x := x + %d\nEND %s;\n" p
          (rev + 1) p)
    (def_procs_of_src src);
  Printf.bprintf b "BEGIN\nEND %s.\n" name;
  Buffer.contents b

let with_impls (store : Source_store.t) : Source_store.t =
  let main = Source_store.main_name store in
  let existing =
    List.filter_map
      (fun m ->
        if m = main then None
        else Option.map (fun s -> (m, s)) (Source_store.impl_src store m))
      (Source_store.impl_names store)
  in
  let synthesized =
    List.filter_map
      (fun n ->
        if List.mem_assoc n existing then None
        else Option.map (fun s -> (n, impl_of_def ~name:n s)) (Source_store.def_src store n))
      (Source_store.def_names store)
  in
  let defs =
    List.filter_map
      (fun n -> Option.map (fun s -> (n, s)) (Source_store.def_src store n))
      (Source_store.def_names store)
  in
  Source_store.make
    ~impls:(existing @ synthesized)
    ~main_name:main ~main_src:(Source_store.main_src store) ~defs ()

(* ------------------------------------------------------------------ *)
(* The edit stream: a seeded sequence of single-declaration edits over a
   project, cumulative (each edit applies to the store the previous one
   produced).  The three classes exercise the three behaviors of the
   fine-grained incremental layer:

   - [Body_only]: an implementation body changes; no interface text is
     touched.  Exactly the edited module should rebuild.
   - [Sig_preserving]: interface text changes (a comment) but no
     declaration does; the interface fingerprint moves while its shape
     digest does not.  Early cutoff should rebuild nothing.
   - [Sig_changing]: one exported constant's value changes — one slice
     digest moves.  Only modules that actually used that slice should
     rebuild. *)

type edit_class = Body_only | Sig_preserving | Sig_changing

let class_name = function
  | Body_only -> "body-only"
  | Sig_preserving -> "sig-preserving"
  | Sig_changing -> "sig-changing"

type edit = {
  e_class : edit_class;
  e_target : string; (* the module whose source the edit touched *)
  e_slice : string option; (* the declaration a Sig_changing edit moved *)
  e_store : Source_store.t; (* the project after the edit *)
}

(* "  cI_K = N;" with a literal right-hand side (the generator's plain
   constants; imported-reference constants are left alone). *)
let const_line_target line =
  let line' = String.trim line in
  if String.length line' > 0 && line'.[0] = 'c' && String.ends_with ~suffix:";" line' then
    match String.index_opt line' '=' with
    | None -> None
    | Some eq ->
        let name = String.trim (String.sub line' 0 eq) in
        let rhs = String.trim (String.sub line' (eq + 1) (String.length line' - eq - 2)) in
        if name <> "" && rhs <> "" && String.for_all (fun c -> c >= '0' && c <= '9') rhs
        then Some (name, int_of_string rhs)
        else None
  else None

let edit_stream ?(seed = 0) ~n (store : Source_store.t) : edit list =
  let store = with_impls store in
  let rng = Prng.create seed in
  let main = Source_store.main_name store in
  let defs =
    ref
      (List.filter_map
         (fun d -> Option.map (fun s -> (d, s)) (Source_store.def_src store d))
         (Source_store.def_names store))
  in
  let impls =
    ref
      (List.filter_map
         (fun m ->
           if m = main then None
           else Option.map (fun s -> (m, s)) (Source_store.impl_src store m))
         (Source_store.impl_names store))
  in
  let main_src = ref (Source_store.main_src store) in
  let revs = Hashtbl.create 8 in
  let comment_revs = Hashtbl.create 8 in
  let main_rev = ref 0 in
  let rebuild () =
    Source_store.make ~impls:!impls ~main_name:main ~main_src:!main_src ~defs:!defs ()
  in
  let set assoc k v = assoc := (k, v) :: List.remove_assoc k !assoc in
  let body_only () =
    (* regenerate one interface's synthetic implementation at the next
       revision; without interfaces, touch a comment in the main body *)
    match !defs with
    | [] ->
        incr main_rev;
        main_src := Printf.sprintf "(* body revision %d *)\n%s" !main_rev !main_src;
        { e_class = Body_only; e_target = main; e_slice = None; e_store = rebuild () }
    | l ->
        let name, dsrc = List.nth l (Prng.int rng (List.length l)) in
        let rev = 1 + Option.value ~default:0 (Hashtbl.find_opt revs name) in
        Hashtbl.replace revs name rev;
        set impls name (impl_of_def ~rev ~name dsrc);
        { e_class = Body_only; e_target = name; e_slice = None; e_store = rebuild () }
  in
  let sig_preserving () =
    match !defs with
    | [] -> body_only () (* degenerate project: no interface to touch *)
    | l ->
        let name, dsrc = List.nth l (Prng.int rng (List.length l)) in
        let crev = 1 + Option.value ~default:0 (Hashtbl.find_opt comment_revs name) in
        Hashtbl.replace comment_revs name crev;
        let guard = Printf.sprintf "END %s." name in
        let lines = String.split_on_char '\n' dsrc in
        let out =
          List.concat_map
            (fun ln ->
              if String.trim ln = guard then
                [ Printf.sprintf "(* interface comment revision %d *)" crev; ln ]
              else [ ln ])
            lines
        in
        set defs name (String.concat "\n" out);
        { e_class = Sig_preserving; e_target = name; e_slice = None; e_store = rebuild () }
  in
  let sig_changing () =
    (* bump the literal of one plain exported constant *)
    let candidates =
      List.concat_map
        (fun (name, dsrc) ->
          List.filter_map
            (fun ln -> Option.map (fun c -> (name, dsrc, ln, c)) (const_line_target ln))
            (String.split_on_char '\n' dsrc))
        !defs
    in
    match candidates with
    | [] -> body_only ()
    | l ->
        let name, dsrc, ln, (cname, v) = List.nth l (Prng.int rng (List.length l)) in
        let replaced = ref false in
        let out =
          List.map
            (fun l' ->
              if (not !replaced) && l' = ln then begin
                replaced := true;
                Printf.sprintf "  %s = %d;" cname (v + 1)
              end
              else l')
            (String.split_on_char '\n' dsrc)
        in
        set defs name (String.concat "\n" out);
        { e_class = Sig_changing; e_target = name; e_slice = Some cname;
          e_store = rebuild () }
  in
  List.init n (fun _ ->
      match Prng.int rng 3 with
      | 0 -> body_only ()
      | 1 -> sig_preserving ()
      | _ -> sig_changing ())
