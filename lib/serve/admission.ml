(* Admission control: a bounded queue with newest-lowest-priority-first
   load shedding.

   The server's queue never grows past [cap].  When a job arrives at a
   full queue, the shed victim is chosen among the queued jobs *and*
   the arrival itself: lowest priority class first, newest arrival
   (largest [j_id]) among equals — so under overload the server keeps
   the oldest, most important work, and a newly arrived low-priority
   job bounces without disturbing the queue.  A shed job is rejected
   for good: open-loop clients do not resubmit. *)

type t = {
  cap : int;
  queue : Queue.t;
  mutable shed : int;
}

type verdict = Admitted | Shed of Request.job

let create ~cap queue =
  if cap <= 0 then invalid_arg "Admission.create: cap must be positive";
  { cap; queue; shed = 0 }

let shed_count t = t.shed

(* Shedding order: lower priority first, then newer (larger id). *)
let more_sheddable (a : Request.job) (b : Request.job) =
  a.Request.j_priority < b.Request.j_priority
  || (a.Request.j_priority = b.Request.j_priority && a.Request.j_id > b.Request.j_id)

let offer t (j : Request.job) =
  if Queue.length t.queue < t.cap then begin
    Queue.push t.queue j;
    Admitted
  end
  else begin
    let victim =
      List.fold_left
        (fun acc q -> if more_sheddable q acc then q else acc)
        j (Queue.jobs t.queue)
    in
    t.shed <- t.shed + 1;
    if victim.Request.j_id = j.Request.j_id then Shed j
    else begin
      ignore (Queue.remove t.queue victim);
      Queue.push t.queue j;
      Shed victim
    end
  end
