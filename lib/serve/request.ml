(* The compile-server job model.

   A job is one client's request to compile one program (a main module
   plus its interface sources).  Jobs carry everything the scheduler
   needs without looking inside the program: the submitting session, a
   priority class (the load shedder's ordering), the virtual arrival
   time, the source size (the fair scheduler's charge unit) and the
   interface-closure digest (the batcher's coalescing key).

   Times are virtual seconds on the server's clock — the same currency
   as [Des_engine.result.end_seconds], so service times compose with
   arrival processes directly. *)

open Mcc_core

type job = {
  j_id : int; (* server-wide, assigned in arrival order *)
  j_session : string; (* submitting client session *)
  j_priority : int; (* higher = more important; shedding picks lowest first *)
  j_arrival : float; (* virtual seconds *)
  j_rank : int; (* suite rank of the requested program *)
  j_store : Source_store.t;
  j_bytes : int; (* total source bytes: the fair scheduler's charge *)
  j_closure : string; (* interface-closure digest: the batching key *)
}

(* Two jobs share an interface closure iff their stores carry the same
   interface sources — then one interface analysis (one warm cache)
   serves both.  The digest covers the sorted interface names and their
   source digests; the main implementation is deliberately excluded. *)
let closure_digest store =
  let parts =
    List.map
      (fun name ->
        let src = Option.value ~default:"" (Source_store.def_src store name) in
        name ^ ":" ^ Digest.to_hex (Digest.string src))
      (Source_store.def_names store)
  in
  Digest.to_hex (Digest.string (String.concat "|" parts))

type served = {
  s_job : job;
  s_start : float; (* service start, virtual seconds *)
  s_finish : float; (* service completion, virtual seconds *)
  s_warm : bool; (* answered from the shared module memo *)
  s_batched : bool; (* rode another job's batch *)
  s_retried : bool; (* failed under injected faults, re-served clean *)
  s_result : Driver.result;
}

let sojourn s = s.s_finish -. s.s_job.j_arrival
