(** The server's ready queue: FIFO, or deficit round-robin (DRR) across
    client sessions.

    Under [Fair], sessions with queued jobs rotate in a ring, each
    carrying a byte deficit: at the ring head a session dispatches its
    oldest job if the deficit covers the job's source bytes (spending
    it), else it is granted one quantum and rotated away.  A drained
    session forfeits its deficit.  Invariant (pinned by qcheck): every
    deficit stays within [0, quantum + max job bytes) — no session
    hoards credit, so a chatty client cannot starve the others.

    Fully deterministic: all orders derive from [j_id] and ring
    rotation, never from hash-table iteration. *)

type policy = Fifo | Fair

val policy_to_string : policy -> string
val policy_of_string : string -> policy option

type t

(** [create ?quantum policy] — [quantum] (default 8192) is the DRR
    grant in source bytes per ring visit; ignored under [Fifo]. *)
val create : ?quantum:int -> policy -> t

val length : t -> int
val quantum : t -> int
val policy : t -> policy

(** Enqueue behind the job's session (behind everything, under FIFO). *)
val push : t -> Request.job -> unit

(** Dispatch the next job per policy, or [None] when empty. *)
val pop : t -> Request.job option

(** Queued jobs in arrival order (snapshot; does not dequeue). *)
val jobs : t -> Request.job list

(** Remove a specific queued job (admission's victim ejection, the
    batcher's coalescing).  [true] iff it was queued. *)
val remove : t -> Request.job -> bool

(** Per-session (name, deficit), name-sorted; empty under FIFO. *)
val deficits : t -> (string * int) list
