(** The compile-server job model: one client request to compile one
    program, carrying what the scheduler needs without looking inside
    it.  Times are virtual seconds on the server's clock — the same
    currency as [Des_engine.result.end_seconds]. *)

open Mcc_core

type job = {
  j_id : int;  (** server-wide id, assigned in arrival order *)
  j_session : string;  (** submitting client session *)
  j_priority : int;  (** higher = more important; shedding picks lowest first *)
  j_arrival : float;  (** virtual seconds *)
  j_rank : int;  (** suite rank of the requested program *)
  j_store : Source_store.t;
  j_bytes : int;  (** total source bytes: the fair scheduler's charge *)
  j_closure : string;  (** interface-closure digest: the batching key *)
}

(** Two jobs share an interface closure iff their stores carry the same
    interface sources (same names, same text) — then one interface
    analysis serves both.  The main implementation is excluded. *)
val closure_digest : Source_store.t -> string

(** One completed service. *)
type served = {
  s_job : job;
  s_start : float;  (** service start, virtual seconds *)
  s_finish : float;  (** service completion, virtual seconds *)
  s_warm : bool;  (** answered from the shared module memo *)
  s_batched : bool;  (** rode another job's batch *)
  s_retried : bool;  (** failed under injected faults, re-served clean *)
  s_result : Driver.result;
}

(** Arrival-to-completion time, virtual seconds. *)
val sojourn : served -> float
