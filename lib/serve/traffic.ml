(* The open-loop traffic generator.

   Each client session is an independent Poisson-ish arrival process:
   exponential interarrival times around a per-client mean, programs
   drawn from a pool of suite ranks with a skew toward small programs
   (real build traffic is mostly small edits).  Open-loop means clients
   do not wait for completions before submitting — exactly the regime
   where admission control and fair scheduling earn their keep.

   Everything derives from one integer seed through split PRNG streams
   (one per client), so a trace replays byte-identically; clients'
   draws never perturb each other's.

   [skew] makes client 0 "chatty": an offered rate [heavy_factor]×
   everyone else's, at the lowest priority.  This is the starvation
   test's workload — under FIFO the chatty client's queue share crowds
   out the others' latency; under DRR it cannot. *)

open Mcc_synth

type config = {
  clients : int;
  jobs : int; (* total, across clients *)
  seed : int;
  ranks : int list; (* program pool (suite ranks) *)
  mean_interarrival : float; (* per-client mean, virtual seconds *)
  skew : bool; (* client 0 chatty at lowest priority *)
  suite_seed : int; (* perturbs the generated programs themselves *)
}

let heavy_factor = 8.0

let default =
  {
    clients = 4;
    jobs = 40;
    seed = 1;
    ranks = Suite.ranks_under 3.0;
    mean_interarrival = 40.0;
    skew = false;
    suite_seed = 0;
  }

let session_name c = Printf.sprintf "client-%d" c

(* Inverse-CDF exponential draw; [Prng.float] is in [0,1) so the log
   argument stays positive. *)
let exponential rng mean = -.mean *. log (1.0 -. Mcc_util.Prng.float rng 1.0)

let generate cfg =
  if cfg.clients <= 0 then invalid_arg "Traffic.generate: clients must be positive";
  if cfg.ranks = [] then invalid_arg "Traffic.generate: empty rank pool";
  let master = Mcc_util.Prng.create (0x5eede + cfg.seed) in
  let pool = Array.of_list cfg.ranks in
  let proto = ref [] in
  for c = 0 to cfg.clients - 1 do
    let rng = Mcc_util.Prng.split master in
    let chatty = cfg.skew && c = 0 in
    let mean =
      if chatty then cfg.mean_interarrival /. heavy_factor else cfg.mean_interarrival
    in
    (* priority classes cycle so shedding has real choices to make; the
       chatty client is pinned lowest *)
    let priority = if chatty then 0 else c mod 3 in
    let n =
      (cfg.jobs / cfg.clients) + if c < cfg.jobs mod cfg.clients then 1 else 0
    in
    let clock = ref 0.0 in
    for _ = 1 to n do
      clock := !clock +. exponential rng mean;
      (* ordinary clients skew toward the small end of the pool; the
         chatty client hammers the large end — high rate x heavy builds
         is the traffic that starves others under FIFO *)
      let draw = Mcc_util.Prng.skewed rng ~cap:(Array.length pool - 1) ~p:0.45 in
      let idx = if chatty then Array.length pool - 1 - draw else draw in
      proto := (!clock, c, priority, pool.(idx)) :: !proto
    done
  done;
  let proto =
    List.sort
      (fun (t1, c1, _, _) (t2, c2, _, _) -> compare (t1, c1) (t2, c2))
      !proto
  in
  List.mapi
    (fun i (arrival, c, priority, rank) ->
      let store = Suite.program ~seed:cfg.suite_seed rank in
      {
        Request.j_id = i;
        j_session = session_name c;
        j_priority = priority;
        j_arrival = arrival;
        j_rank = rank;
        j_store = store;
        j_bytes = Mcc_core.Source_store.total_bytes store;
        j_closure = Request.closure_digest store;
      })
    proto
