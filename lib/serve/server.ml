(* The compile server: a long-lived build service over the DES
   substrate.

   One virtual-time event loop plays both roles of an M/G/1-style
   queueing station: arrivals (from [Traffic]) pass admission control
   into the policy queue; whenever the station is idle and the queue is
   non-empty, the dispatcher pops a leader per policy, pulls every
   queued job sharing its interface closure into a batch, and serves
   the batch members back to back.  Service times are the simulated
   compile times of the inner [Driver.compile] runs — the same virtual
   currency as the arrival process — so sojourn times, throughput and
   queue dynamics compose honestly.

   The shared state across jobs is exactly the warm cache: one
   [Build_cache.t] of interface artifacts plus one module memo of
   whole-program [Driver.result]s (keyed like [Project]'s incremental
   layer, including the configuration tag).  A memo hit serves a job
   for just its key-hashing and probe cost; that is the entire
   cold/warm gap the benchmark measures.

   Fault isolation: with a fault plan configured, every job is compiled
   under its own plan (seeded [fault_seed + j_id]), so injections are
   per-job.  The driver's recovery layer absorbs most injections inside
   the run; if a run still fails while faults were armed, the server
   re-serves the job once with faults disarmed — paying both runs'
   virtual time — and only fault-free results are ever memoized, so a
   crashing job cannot poison the shared cache (interface artifacts are
   digest-verified on every probe besides). *)

open Mcc_core
module Evlog = Mcc_obs.Evlog
module Metrics = Mcc_obs.Metrics
module Trace_ctx = Mcc_obs.Trace_ctx
module Dtrace = Mcc_obs.Dtrace
module Slo = Mcc_obs.Slo
module Costs = Mcc_sched.Costs
module Des_engine = Mcc_sched.Des_engine

type cache = { bc : Build_cache.t; memo : Driver.result Build_cache.memo }

let cache ?cache_mb ?memo_cap () =
  {
    bc = Build_cache.create ?cap_bytes:(Option.map (fun mb -> mb * 1024 * 1024) cache_mb) ();
    memo = Build_cache.memo ?cap:memo_cap ();
  }

type config = {
  compile : Driver.config; (* base per-job compile config; faults must be [] *)
  policy : Queue.policy;
  cap : int; (* admission bound on the queue *)
  quantum : int; (* DRR grant, source bytes *)
  batch_max : int; (* max jobs per batch; 1 disables batching *)
  deadline : float option; (* shed a job still queued this long after arrival *)
  faults : Mcc_sched.Fault.spec list; (* per-job fault plan; [] = none *)
  fault_seed : int;
}

let default_config =
  {
    compile = Driver.default_config;
    policy = Queue.Fair;
    cap = 64;
    quantum = 8192;
    batch_max = 8;
    deadline = None;
    faults = [];
    fault_seed = 0;
  }

type session_stats = {
  ss_session : string;
  ss_submitted : int;
  ss_served : int;
  ss_shed : int;
  ss_mean : float;
  ss_p50 : float;
  ss_p99 : float;
  ss_max : float; (* sojourn seconds *)
}

type report = {
  r_policy : string;
  r_procs : int;
  r_submitted : int;
  r_served : int;
  r_warm : int; (* jobs answered from the module memo *)
  r_shed : int;
  r_deadline_shed : int; (* jobs shed overdue at dispatch, distinct from admission sheds *)
  r_failed : int; (* served but [ok = false] (genuine compile errors) *)
  r_retried : int; (* failed under faults, re-served clean *)
  r_batches : int; (* dispatches that coalesced more than one job *)
  r_batched_jobs : int; (* jobs that rode another leader's batch *)
  r_max_batch : int;
  r_end_seconds : float; (* completion time of the last job *)
  r_throughput : float; (* served jobs per virtual second *)
  r_mean : float;
  r_p50 : float;
  r_p95 : float;
  r_p99 : float;
  r_max : float; (* sojourn seconds across served jobs *)
  r_max_depth : int; (* peak queue depth *)
  r_iface_hits : int;
  r_iface_misses : int;
  r_iface_invalidations : int;
  r_iface_evictions : int;
  r_memo_hits : int;
  r_memo_misses : int;
  r_memo_evictions : int;
  r_sessions : session_stats list; (* name-sorted *)
  r_served_jobs : Request.served list; (* in completion order *)
  r_shed_jobs : Request.job list; (* in shed order *)
  r_events : Evlog.record array; (* empty unless [capture] *)
  r_subs : Dtrace.sub list; (* nested compile captures; empty unless [trace] *)
  r_slo : Slo.t; (* the always-on flight recorder *)
}

let summarize = Mcc_util.Quantile.summarize

(* The SLO class of a job: its priority band. *)
let slo_class (j : Request.job) = Printf.sprintf "p%d" j.Request.j_priority

(* One job's service: probe the shared module memo; on a miss run the
   full concurrent compiler against the shared interface store.
   Returns (result, service segments, warm, retried) where each
   segment is (span kind, duration seconds, nested capture option) —
   the service span's exact tiling. *)
let compile_job ~trace cfg cache (j : Request.job) =
  let base = cfg.compile in
  let tag = Project.config_tag base in
  let fpmemo = Hashtbl.create 16 in
  let key, key_units = Build_cache.module_key cache.bc ~memo:fpmemo ~config_tag:tag j.Request.j_store in
  let overhead = Costs.to_seconds (float_of_int (key_units + Costs.cache_probe)) in
  match Build_cache.find_module cache.memo key with
  | Some r -> (r, [ ("probe", overhead, None) ], true, false)
  | None ->
      let name = Source_store.main_name j.Request.j_store in
      let run config =
        (* the inner engine restarts its clock; when tracing, capture it
           as a nested sub-log ([Evlog.capture] nests safely), otherwise
           keep it out of the server's job-lifecycle capture *)
        if trace then Driver.compile ~config ~capture:true ~cache:cache.bc j.Request.j_store
        else Evlog.suspend (fun () -> Driver.compile ~config ~cache:cache.bc j.Request.j_store)
      in
      let memoize (r : Driver.result) =
        (* only fault-free results enter the shared memo: a result
           produced under injections embeds recovery timings (and, for
           permanent faults, losses) that must not leak into other
           clients' warm answers *)
        if r.Driver.robustness.Driver.r_injected = 0 then
          Build_cache.store_module ~cost:r.Driver.sim.Des_engine.end_seconds cache.memo ~name
            ~key r
      in
      let faulted = cfg.faults <> [] in
      let config1 =
        if faulted then
          { base with Driver.faults = cfg.faults; fault_seed = cfg.fault_seed + j.Request.j_id }
        else base
      in
      let r1 = run config1 in
      let probe = ("probe", overhead, None) in
      if r1.Driver.ok || not faulted then begin
        memoize r1;
        (r1, [ probe; ("compile", r1.Driver.sim.Des_engine.end_seconds, Some r1) ], false, false)
      end
      else begin
        (* the armed plan defeated the run's own recovery (quarantine,
           poisoned import...): re-serve once, clean *)
        let r2 = run base in
        memoize r2;
        ( r2,
          [
            probe;
            ("compile", r1.Driver.sim.Des_engine.end_seconds, Some r1);
            ("retry", r2.Driver.sim.Des_engine.end_seconds, Some r2);
          ],
          false,
          true )
      end

let serve ?(capture = false) ?(trace = false) ~cache cfg (jobs : Request.job list) =
  let capture = capture || trace in
  if cfg.compile.Driver.faults <> [] then
    invalid_arg "Server.serve: put the fault plan in the server config, not the compile config";
  let jobs =
    List.sort
      (fun (a : Request.job) b ->
        compare (a.Request.j_arrival, a.Request.j_id) (b.Request.j_arrival, b.Request.j_id))
      jobs
  in
  let iface0 = Build_cache.counters cache.bc in
  let ievict0 = Build_cache.eviction_count cache.bc in
  let memo0 = Build_cache.memo_counters cache.memo in
  let mevict0 = Build_cache.memo_eviction_count cache.memo in
  let q = Queue.create ~quantum:cfg.quantum cfg.policy in
  let adm = Admission.create ~cap:cfg.cap q in
  let arrivals = ref jobs in
  let now = ref 0.0 in
  let served = ref [] (* reversed *) in
  let shed = ref [] (* reversed *) in
  let deadline_shed = ref 0 in
  let max_depth = ref 0 in
  let batches = ref 0 in
  let batched_jobs = ref 0 in
  let max_batch = ref 0 in
  let slo = Slo.create () in
  let subs = ref [] (* reversed Dtrace.sub list *) in
  if trace then Trace_ctx.reset ();
  let tid_of (j : Request.job) =
    Trace_ctx.trace_id ~domain:"serve" ~seed:cfg.fault_seed
      ~key:
        (Printf.sprintf "%s/%d/M%02d" j.Request.j_session j.Request.j_id j.Request.j_rank)
  in
  (* open (job span, queue span, trace id) per in-flight job id *)
  let spans : (int, Trace_ctx.t * Trace_ctx.t * string) Hashtbl.t = Hashtbl.create 64 in
  let emit_at seconds kind =
    if Evlog.enabled () then begin
      Evlog.set_task (-1);
      Evlog.set_time (seconds /. Costs.seconds_per_unit);
      Evlog.emit kind
    end
  in
  let emit_span seconds kind = if trace then emit_at seconds kind in
  (* close an in-flight job's queue + job spans, e.g. on a shed *)
  let close_spans ~at ~status (j : Request.job) =
    match Hashtbl.find_opt spans j.Request.j_id with
    | Some (jsp, qsp, _) ->
        emit_span at (Evlog.Span_end { span = qsp.Trace_ctx.span; status });
        emit_span at (Evlog.Span_end { span = jsp.Trace_ctx.span; status });
        Hashtbl.remove spans j.Request.j_id
    | None -> ()
  in
  (* move every arrival with time <= limit through admission *)
  let admit_until limit =
    let continue_ = ref true in
    while !continue_ do
      match !arrivals with
      | j :: rest when j.Request.j_arrival <= limit ->
          arrivals := rest;
          emit_at j.Request.j_arrival
            (Evlog.Job_enqueue { job = j.Request.j_id; session = j.Request.j_session });
          if trace then begin
            let tid = tid_of j in
            let jsp = Trace_ctx.root ~trace:tid in
            let qsp = Trace_ctx.child jsp in
            Hashtbl.replace spans j.Request.j_id (jsp, qsp, tid);
            emit_span j.Request.j_arrival
              (Evlog.Span_start
                 {
                   span = jsp.Trace_ctx.span;
                   parent = -1;
                   trace = tid;
                   name = Printf.sprintf "job#%d" j.Request.j_id;
                   kind = "job";
                   node = -1;
                 });
            emit_span j.Request.j_arrival
              (Evlog.Span_start
                 {
                   span = qsp.Trace_ctx.span;
                   parent = jsp.Trace_ctx.span;
                   trace = tid;
                   name = "queue";
                   kind = "queue";
                   node = -1;
                 })
          end;
          (match Admission.offer adm j with
          | Admission.Admitted ->
              emit_at j.Request.j_arrival
                (Evlog.Job_admit { job = j.Request.j_id; session = j.Request.j_session })
          | Admission.Shed victim ->
              shed := victim :: !shed;
              if Metrics.enabled () then Metrics.incr "mcc_serve_shed_total";
              emit_at j.Request.j_arrival
                (Evlog.Job_shed
                   { job = victim.Request.j_id; session = victim.Request.j_session });
              close_spans ~at:j.Request.j_arrival ~status:"shed" victim;
              Slo.trip slo ~job:victim.Request.j_id ~cls:(slo_class victim)
                ~trace:(tid_of victim) ~reason:Slo.Shed ~at:j.Request.j_arrival
                ~detail:
                  (Printf.sprintf "admission cap %d: shed by job #%d" cfg.cap j.Request.j_id));
          let depth = Queue.length q in
          if depth > !max_depth then max_depth := depth;
          if Metrics.enabled () then
            Metrics.gauge_max "mcc_serve_queue_depth_max" (float_of_int depth)
      | _ -> continue_ := false
    done
  in
  let serve_one ~batched (j : Request.job) =
    let start = !now in
    let result, segs, warm, retried = compile_job ~trace cfg cache j in
    let dur = List.fold_left (fun acc (_, d, _) -> acc +. d) 0.0 segs in
    let finish = start +. dur in
    (* arrivals during this service are admitted (at their own times)
       before the completion event, keeping the log time-monotone; when
       tracing, the admissions interleave with the segment boundaries *)
    if trace then begin
      match Hashtbl.find_opt spans j.Request.j_id with
      | Some (jsp, qsp, tid) ->
          emit_span start (Evlog.Span_end { span = qsp.Trace_ctx.span; status = "ok" });
          let ssp = Trace_ctx.child jsp in
          emit_span start
            (Evlog.Span_start
               {
                 span = ssp.Trace_ctx.span;
                 parent = jsp.Trace_ctx.span;
                 trace = tid;
                 name = "service";
                 kind = "service";
                 node = -1;
               });
          let t = ref start in
          let last = List.length segs - 1 in
          List.iteri
            (fun i (kind, d, sub) ->
              let seg = Trace_ctx.child ssp in
              emit_span !t
                (Evlog.Span_start
                   {
                     span = seg.Trace_ctx.span;
                     parent = ssp.Trace_ctx.span;
                     trace = tid;
                     name = kind;
                     kind;
                     node = -1;
                   });
              (match sub with
              | Some (r : Driver.result) when Array.length r.Driver.log > 0 ->
                  subs :=
                    {
                      Dtrace.sub_owner = seg.Trace_ctx.span;
                      sub_t0 = !t /. Costs.seconds_per_unit;
                      sub_scale = 1.0;
                      sub_log = r.Driver.log;
                      sub_names = r.Driver.task_index;
                    }
                    :: !subs
              | _ -> ());
              (* the last segment closes exactly at [finish] so the
                 service span is tiled to the last ulp *)
              let fin = if i = last then finish else !t +. d in
              admit_until fin;
              emit_span fin (Evlog.Span_end { span = seg.Trace_ctx.span; status = "ok" });
              t := fin)
            segs;
          emit_span finish (Evlog.Span_end { span = ssp.Trace_ctx.span; status = "ok" });
          emit_span finish
            (Evlog.Span_end
               { span = jsp.Trace_ctx.span; status = (if warm then "hit" else "ok") });
          Hashtbl.remove spans j.Request.j_id
      | None -> admit_until finish
    end
    else admit_until finish;
    now := finish;
    emit_at finish (Evlog.Job_done { job = j.Request.j_id; warm });
    Slo.observe slo ~job:j.Request.j_id ~cls:(slo_class j) ~trace:(tid_of j)
      ~sojourn:(finish -. j.Request.j_arrival) ~at:finish;
    if retried then
      Slo.trip slo ~job:j.Request.j_id ~cls:(slo_class j) ~trace:(tid_of j) ~reason:Slo.Fault
        ~at:finish ~detail:"fault plan defeated recovery; re-served clean";
    if Metrics.enabled () then begin
      Metrics.incr "mcc_serve_jobs_total";
      Metrics.observe "mcc_serve_sojourn_seconds" (finish -. j.Request.j_arrival)
    end;
    served :=
      {
        Request.s_job = j;
        s_start = start;
        s_finish = finish;
        s_warm = warm;
        s_batched = batched;
        s_retried = retried;
        s_result = result;
      }
      :: !served
  in
  (* a job still queued past its deadline is shed at dispatch, never
     served: the client has long stopped waiting for the answer *)
  let overdue (j : Request.job) =
    match cfg.deadline with Some d -> !now -. j.Request.j_arrival > d | None -> false
  in
  let shed_overdue (j : Request.job) =
    incr deadline_shed;
    if Metrics.enabled () then Metrics.incr "mcc_serve_deadline_shed_total";
    emit_at !now (Evlog.Job_shed { job = j.Request.j_id; session = j.Request.j_session });
    close_spans ~at:!now ~status:"deadline" j;
    Slo.trip slo ~job:j.Request.j_id ~cls:(slo_class j) ~trace:(tid_of j)
      ~reason:Slo.Deadline_shed ~at:!now
      ~detail:
        (Printf.sprintf "queued %.2fs > deadline %.2fs" (!now -. j.Request.j_arrival)
           (Option.value ~default:0.0 cfg.deadline))
  in
  let rec loop () =
    match Queue.pop q with
    | Some leader when overdue leader ->
        shed_overdue leader;
        loop ()
    | Some leader ->
        let mates =
          if cfg.batch_max > 1 then
            Batch.pull q ~closure:leader.Request.j_closure ~limit:(cfg.batch_max - 1)
          else []
        in
        let mates, late = List.partition (fun m -> not (overdue m)) mates in
        List.iter shed_overdue late;
        if mates <> [] then begin
          incr batches;
          batched_jobs := !batched_jobs + List.length mates;
          max_batch := max !max_batch (1 + List.length mates);
          if Metrics.enabled () then
            Metrics.observe "mcc_serve_batch_size" (float_of_int (1 + List.length mates));
          List.iter
            (fun (m : Request.job) ->
              emit_at !now
                (Evlog.Job_batch
                   {
                     job = m.Request.j_id;
                     leader = leader.Request.j_id;
                     size = 1 + List.length mates;
                   }))
            mates
        end;
        serve_one ~batched:false leader;
        List.iter (serve_one ~batched:true) mates;
        loop ()
    | None -> (
        match !arrivals with
        | [] -> ()
        | j :: _ ->
            (* idle: jump to the next arrival *)
            now := max !now j.Request.j_arrival;
            admit_until !now;
            loop ())
  in
  let events = ref [||] in
  let run () =
    admit_until 0.0;
    loop ()
  in
  if capture then begin
    let (), log = Evlog.capture run in
    events := log
  end
  else run ();
  let served = List.rev !served in
  let shed = List.rev !shed in
  let sojourns = List.map Request.sojourn served in
  let mean, p50, p95, p99 , maxv = summarize sojourns in
  let end_seconds = List.fold_left (fun acc s -> Float.max acc s.Request.s_finish) 0.0 served in
  let session_names =
    List.sort_uniq compare (List.map (fun (j : Request.job) -> j.Request.j_session) jobs)
  in
  let sessions =
    List.map
      (fun name ->
        let subs =
          List.length
            (List.filter (fun (j : Request.job) -> j.Request.j_session = name) jobs)
        in
        let mine =
          List.filter (fun s -> s.Request.s_job.Request.j_session = name) served
        in
        let shed_n =
          List.length
            (List.filter (fun (j : Request.job) -> j.Request.j_session = name) shed)
        in
        let mean, p50, _, p99, maxv = summarize (List.map Request.sojourn mine) in
        {
          ss_session = name;
          ss_submitted = subs;
          ss_served = List.length mine;
          ss_shed = shed_n;
          ss_mean = mean;
          ss_p50 = p50;
          ss_p99 = p99;
          ss_max = maxv;
        })
      session_names
  in
  let h1, m1, i1 = Build_cache.counters cache.bc in
  let h0, m0, i0 = iface0 in
  let mh1, mm1, _ = Build_cache.memo_counters cache.memo in
  let mh0, mm0, _ = memo0 in
  {
    r_policy = Queue.policy_to_string cfg.policy;
    r_procs = cfg.compile.Driver.procs;
    r_submitted = List.length jobs;
    r_served = List.length served;
    r_warm = List.length (List.filter (fun s -> s.Request.s_warm) served);
    r_shed = List.length shed;
    r_deadline_shed = !deadline_shed;
    r_failed = List.length (List.filter (fun s -> not s.Request.s_result.Driver.ok) served);
    r_retried = List.length (List.filter (fun s -> s.Request.s_retried) served);
    r_batches = !batches;
    r_batched_jobs = !batched_jobs;
    r_max_batch = !max_batch;
    r_end_seconds = end_seconds;
    r_throughput =
      (if end_seconds > 0.0 then float_of_int (List.length served) /. end_seconds else 0.0);
    r_mean = mean;
    r_p50 = p50;
    r_p95 = p95;
    r_p99 = p99;
    r_max = maxv;
    r_max_depth = !max_depth;
    r_iface_hits = h1 - h0;
    r_iface_misses = m1 - m0;
    r_iface_invalidations = i1 - i0;
    r_iface_evictions = Build_cache.eviction_count cache.bc - ievict0;
    r_memo_hits = mh1 - mh0;
    r_memo_misses = mm1 - mm0;
    r_memo_evictions = Build_cache.memo_eviction_count cache.memo - mevict0;
    r_sessions = sessions;
    r_served_jobs = served;
    r_shed_jobs = shed;
    r_events = !events;
    r_subs = List.rev !subs;
    r_slo = slo;
  }

(* ------------------------------------------------------------------ *)
(* The seq-vs-server conformance oracle *)

(* Every served job's output must be observationally identical to a
   one-shot cacheless compile of the same program — diagnostics, object
   code, the lot.  One oracle compile per distinct program (rank), then
   every served result of that rank is compared against it; this covers
   warm answers, batch members and fault-retried jobs alike, so it is
   also the proof that a crashing job did not corrupt the shared
   cache. *)
let verify cfg report =
  let module Observation = Mcc_check.Observation in
  let oracles = Hashtbl.create 8 in
  let oracle (j : Request.job) =
    match Hashtbl.find_opt oracles j.Request.j_rank with
    | Some o -> o
    | None ->
        let r =
          Evlog.suspend (fun () -> Driver.compile ~config:cfg.compile j.Request.j_store)
        in
        let o = Observation.of_driver ~run:false r in
        Hashtbl.replace oracles j.Request.j_rank o;
        o
  in
  let rec check n = function
    | [] -> Ok n
    | s :: rest -> (
        let reference = oracle s.Request.s_job in
        let obs = Observation.of_driver ~run:false s.Request.s_result in
        match Observation.first_diff ~reference obs with
        | None -> check (n + 1) rest
        | Some (field, expected, actual) ->
            Error
              (Printf.sprintf "job #%d (%s, M%02d): %s: oracle %s, served %s"
                 s.Request.s_job.Request.j_id s.Request.s_job.Request.j_session
                 s.Request.s_job.Request.j_rank field expected actual))
  in
  check 0 report.r_served_jobs
