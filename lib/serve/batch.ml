(* Request coalescing: when the dispatcher pulls a job, every queued
   job sharing its interface-closure digest can ride the same batch —
   the leader's compile warms the shared cache with exactly the
   interfaces the others need, so batch members reduce to module-memo
   or interface-store hits.

   Batch members are pulled across sessions in arrival order and bypass
   the fair scheduler's deficit accounting deliberately: their marginal
   cost is near zero (that is the point of batching), so charging their
   full byte size to their sessions would punish exactly the clients
   the cache is helping. *)

let pull queue ~closure ~limit =
  if limit <= 0 then []
  else begin
    let matching =
      List.filter
        (fun (j : Request.job) -> j.Request.j_closure = closure)
        (Queue.jobs queue)
    in
    let rec take n = function
      | [] -> []
      | j :: rest -> if n = 0 then [] else j :: take (n - 1) rest
    in
    let picked = take limit matching in
    List.iter (fun j -> ignore (Queue.remove queue j)) picked;
    picked
  end
