(* The server's ready queue: FIFO, or deficit round-robin across client
   sessions.

   DRR (Shreedhar & Varghese): sessions with queued jobs sit in a
   rotation ring; each session carries a byte deficit.  When a session
   reaches the ring head, it may dispatch its oldest job if its deficit
   covers the job's source bytes (the deficit is then spent); otherwise
   it is granted one quantum and rotated to the back.  A session whose
   queue drains leaves the ring and forfeits its deficit, so credit
   cannot be hoarded across idle periods.  The invariant the qcheck
   property pins down: a session's deficit always stays within
   [0, quantum + max job bytes) — each grant lands on a deficit smaller
   than some job's size, so no session accumulates unbounded credit,
   which is exactly why one chatty client cannot starve the others.

   All queue orders are by [j_id] (arrival order), so the whole
   structure is deterministic: no hash-table iteration order leaks into
   scheduling decisions. *)

type policy = Fifo | Fair

let policy_to_string = function Fifo -> "fifo" | Fair -> "fair"

let policy_of_string = function
  | "fifo" -> Some Fifo
  | "fair" -> Some Fair
  | _ -> None

type session = {
  name : string;
  mutable front : Request.job list; (* oldest first *)
  mutable back : Request.job list; (* newest first *)
  mutable deficit : int; (* bytes of credit (Fair only) *)
  mutable in_ring : bool;
}

type t = {
  policy : policy;
  quantum : int;
  sessions : (string, session) Hashtbl.t;
  mutable ring : string list; (* rotation order, head = next to visit *)
  mutable size : int;
}

let create ?(quantum = 8192) policy =
  { policy; quantum; sessions = Hashtbl.create 8; ring = []; size = 0 }

let length t = t.size
let quantum t = t.quantum
let policy t = t.policy

let session t name =
  match Hashtbl.find_opt t.sessions name with
  | Some s -> s
  | None ->
      let s = { name; front = []; back = []; deficit = 0; in_ring = false } in
      Hashtbl.replace t.sessions name s;
      s

let session_length s = List.length s.front + List.length s.back

let session_head s =
  match s.front with
  | j :: _ -> Some j
  | [] -> ( match List.rev s.back with [] -> None | j :: rest ->
      s.front <- j :: rest;
      s.back <- [];
      Some j)

let session_pop s =
  match session_head s with
  | None -> None
  | Some j ->
      s.front <- List.tl s.front;
      Some j

(* FIFO runs through the same per-session structure under a single
   synthetic session, so push/pop/remove share one implementation. *)
let fifo_session = "\000fifo"

let push t (j : Request.job) =
  let key = match t.policy with Fifo -> fifo_session | Fair -> j.Request.j_session in
  let s = session t key in
  s.back <- j :: s.back;
  t.size <- t.size + 1;
  if not s.in_ring then begin
    s.in_ring <- true;
    t.ring <- t.ring @ [ key ]
  end

let rec pop t =
  match t.ring with
  | [] -> None
  | key :: rest -> (
      let s = session t key in
      match session_head s with
      | None ->
          (* drained: leave the ring, forfeit the deficit *)
          s.in_ring <- false;
          s.deficit <- 0;
          t.ring <- rest;
          pop t
      | Some j ->
          let cost = match t.policy with Fifo -> 0 | Fair -> j.Request.j_bytes in
          if s.deficit >= cost then begin
            ignore (session_pop s);
            t.size <- t.size - 1;
            s.deficit <- s.deficit - cost;
            if session_length s = 0 then begin
              s.in_ring <- false;
              s.deficit <- 0;
              t.ring <- rest
            end;
            Some j
          end
          else begin
            (* grant one quantum and rotate to the back of the ring *)
            s.deficit <- s.deficit + t.quantum;
            t.ring <- rest @ [ key ];
            pop t
          end)

(* Queued jobs in arrival order (a snapshot; does not dequeue). *)
let jobs t =
  Hashtbl.fold (fun _ s acc -> s.front @ List.rev s.back @ acc) t.sessions []
  |> List.sort (fun (a : Request.job) b -> compare a.Request.j_id b.Request.j_id)

(* Remove a specific queued job (admission's victim ejection, the
   batcher's coalescing).  Returns [true] if it was queued. *)
let remove t (j : Request.job) =
  let key = match t.policy with Fifo -> fifo_session | Fair -> j.Request.j_session in
  match Hashtbl.find_opt t.sessions key with
  | None -> false
  | Some s ->
      let pred (q : Request.job) = q.Request.j_id = j.Request.j_id in
      if List.exists pred s.front || List.exists pred s.back then begin
        s.front <- List.filter (fun q -> not (pred q)) s.front;
        s.back <- List.filter (fun q -> not (pred q)) s.back;
        t.size <- t.size - 1;
        (if session_length s = 0 && s.in_ring then begin
           s.in_ring <- false;
           s.deficit <- 0;
           t.ring <- List.filter (fun k -> k <> key) t.ring
         end);
        true
      end
      else false

(* Per-session deficits, name-sorted — the fairness property's probe.
   Empty under FIFO. *)
let deficits t =
  match t.policy with
  | Fifo -> []
  | Fair ->
      Hashtbl.fold (fun name s acc -> (name, s.deficit) :: acc) t.sessions []
      |> List.sort compare
