(** The open-loop traffic generator: independent per-client arrival
    processes (exponential interarrivals, programs drawn from a pool of
    suite ranks skewed toward small ones), fully determined by one
    integer seed through split PRNG streams.  Open-loop: clients never
    wait for completions — the regime where admission control and fair
    scheduling earn their keep. *)

type config = {
  clients : int;
  jobs : int;  (** total, across clients *)
  seed : int;
  ranks : int list;  (** program pool (suite ranks) *)
  mean_interarrival : float;  (** per-client mean, virtual seconds *)
  skew : bool;  (** client 0 chatty ({!heavy_factor}× rate, lowest priority) *)
  suite_seed : int;  (** perturbs the generated programs themselves *)
}

(** The chatty client's rate multiplier under [skew]. *)
val heavy_factor : float

(** 4 clients, 40 jobs, the small-rank pool, mean 40 s, no skew. *)
val default : config

val session_name : int -> string

(** Jobs sorted by arrival time, ids assigned in arrival order.
    @raise Invalid_argument on a non-positive client count or an empty
    rank pool. *)
val generate : config -> Request.job list
