(** Request coalescing by interface closure.

    [pull queue ~closure ~limit] dequeues up to [limit] queued jobs
    whose interface-closure digest equals [closure], across sessions in
    arrival order.  Members bypass deficit accounting: their marginal
    cost after the batch leader's compile is near zero, so charging
    their sessions would punish the clients the cache is helping. *)

val pull : Queue.t -> closure:string -> limit:int -> Request.job list
