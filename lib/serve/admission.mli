(** Admission control: a bounded queue with newest-lowest-priority-first
    load shedding.

    The queue never grows past [cap].  At a full queue the shed victim
    is picked among the queued jobs {e and} the arrival itself — lowest
    priority class first, newest ([j_id]-largest) among equals — so
    overload keeps the oldest, most important work.  Shed jobs are
    rejected for good. *)

type t

type verdict =
  | Admitted
  | Shed of Request.job
      (** the victim — the arrival itself, or a queued job it displaced *)

(** @raise Invalid_argument when [cap <= 0]. *)
val create : cap:int -> Queue.t -> t

(** Offer an arrival; pushes into the queue unless it (or a worse
    victim) is shed.  Every call returning [Shed] counts once. *)
val offer : t -> Request.job -> verdict

val shed_count : t -> int
