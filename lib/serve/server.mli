(** The compile server: a long-lived build service over the DES
    substrate.

    One virtual-time event loop: arrivals pass {!Admission} into the
    policy {!Queue}; when idle, the dispatcher pops a leader, pulls
    every queued job sharing its interface closure into a batch
    ({!Batch}), and serves them back to back.  Service times are the
    inner [Driver.compile] simulated times — the same virtual currency
    as the arrival process — so sojourns, throughput and queue dynamics
    compose honestly.  The shared warm state is one interface store
    plus one memo of whole-program results (keyed like [Project]'s
    incremental layer); a memo hit costs only key hashing and a probe.

    Fault isolation: each job compiles under its own plan (seeded
    [fault_seed + j_id]); a run that still fails with faults armed is
    re-served once clean, and only fault-free results are memoized, so
    a crashing job cannot poison the shared cache. *)

open Mcc_core

(** The shared warm state: interface store + whole-program result memo. *)
type cache = { bc : Build_cache.t; memo : Driver.result Build_cache.memo }

(** [cache ?cache_mb ?memo_cap ()] — [cache_mb] bounds the interface
    store (LRU eviction); [memo_cap] bounds the memo entry count
    (cost-aware GreedyDual eviction).  Both default to unbounded. *)
val cache : ?cache_mb:int -> ?memo_cap:int -> unit -> cache

type config = {
  compile : Driver.config;  (** base per-job compile config; faults must be [] *)
  policy : Queue.policy;
  cap : int;  (** admission bound on the queue *)
  quantum : int;  (** DRR grant, source bytes *)
  batch_max : int;  (** max jobs per batch; 1 disables batching *)
  deadline : float option;
      (** per-job deadline, virtual seconds: a job still queued longer
          than this after arrival is shed at dispatch (counted in
          [r_deadline_shed]), never served — the client has stopped
          waiting.  [None] = serve everything admitted. *)
  faults : Mcc_sched.Fault.spec list;  (** per-job fault plan; [[]] = none *)
  fault_seed : int;
}

(** Fair policy, cap 64, quantum 8192, batches of 8, no deadline, no
    faults, over [Driver.default_config]. *)
val default_config : config

type session_stats = {
  ss_session : string;
  ss_submitted : int;
  ss_served : int;
  ss_shed : int;
  ss_mean : float;
  ss_p50 : float;
  ss_p99 : float;
  ss_max : float;  (** sojourn seconds *)
}

type report = {
  r_policy : string;
  r_procs : int;
  r_submitted : int;
  r_served : int;
  r_warm : int;  (** jobs answered from the module memo *)
  r_shed : int;  (** admission-control sheds *)
  r_deadline_shed : int;
      (** overdue jobs shed at dispatch; always
          [r_served + r_shed + r_deadline_shed = r_submitted] *)
  r_failed : int;  (** served but [ok = false] (genuine compile errors) *)
  r_retried : int;  (** failed under faults, re-served clean *)
  r_batches : int;  (** dispatches that coalesced more than one job *)
  r_batched_jobs : int;  (** jobs that rode another leader's batch *)
  r_max_batch : int;
  r_end_seconds : float;  (** completion time of the last job *)
  r_throughput : float;  (** served jobs per virtual second *)
  r_mean : float;
  r_p50 : float;
  r_p95 : float;
  r_p99 : float;
  r_max : float;  (** sojourn seconds across served jobs *)
  r_max_depth : int;  (** peak queue depth *)
  r_iface_hits : int;
  r_iface_misses : int;
  r_iface_invalidations : int;
  r_iface_evictions : int;
  r_memo_hits : int;
  r_memo_misses : int;
  r_memo_evictions : int;
  r_sessions : session_stats list;  (** name-sorted *)
  r_served_jobs : Request.served list;  (** in completion order *)
  r_shed_jobs : Request.job list;  (** in shed order *)
  r_events : Mcc_obs.Evlog.record array;  (** empty unless [capture] *)
  r_subs : Mcc_obs.Dtrace.sub list;
      (** nested compile captures, one per cold/retry segment span;
          empty unless [trace] *)
  r_slo : Mcc_obs.Slo.t;
      (** the always-on flight recorder: per-class burn rates plus one
          trip per latency miss / shed / deadline shed / fault retry *)
}

(** Run the server over a job trace (sorted internally by arrival).
    Pass the same [cache] again to serve warm.  [capture] records the
    job-lifecycle event log ([Job_enqueue]/[Job_admit]/[Job_shed]/
    [Job_batch]/[Job_done]) into [r_events].  [trace] (implies
    [capture]) additionally brackets every job with distributed-trace
    spans — job / queue / service / probe / compile / retry — captures
    each inner engine run into [r_subs], and stamps trips with trace
    ids; feed [r_events] and [r_subs] to [Mcc_obs.Dtrace.assemble].
    Virtual times and results are identical with tracing on or off.
    @raise Invalid_argument when the base compile config carries a
    fault plan (put it in the server config). *)
val serve :
  ?capture:bool -> ?trace:bool -> cache:cache -> config -> Request.job list -> report

(** The seq-vs-server conformance oracle: every served job's output
    must be observationally identical to a one-shot cacheless compile
    of the same program — covering warm answers, batch members and
    fault-retried jobs, hence also proving a crashing job did not
    corrupt the shared cache.  [Ok n] = all [n] served jobs conform;
    [Error msg] names the first divergence. *)
val verify : config -> report -> (int, string) result
