(* The content-addressed build cache.

   Two stores, shared across compilations:

   - the *interface* store maps content fingerprints to interface
     artifacts (Artifact.t).  A fingerprint is a digest of the artifact
     format version, the definition module's source text, and the
     fingerprints of its direct imports — hence transitively of every
     interface it depends on.  Driver.config is deliberately excluded:
     compiler output is strategy/schedule/processor-independent (a
     property the test suite checks), so one artifact serves every
     configuration.
   - the *module memo* maps whole-module keys to per-module compilation
     results (Project's incremental layer).  A module key additionally
     digests the implementation source and a configuration tag, because
     a cached Driver.result embeds simulated timings that do depend on
     the configuration.

   Fingerprinting must run inside engine tasks without yielding (the
   caller holds a memo lock, and a cooperative-engine yield under a lock
   would block every other task on it), so this module never calls
   Eff.work: the hashing work is returned as units for the caller to
   charge explicitly.  For the same reason the import scan used here is
   a charge-free re-implementation of Stream.run_importer's FSM on a
   zero-cost word scanner, memoized by source digest.

   Persistence: the interface store (only) can be saved under a cache
   directory as a single Marshal blob — one blob preserves value
   sharing between artifacts, and the loader bumps the type-uid counter
   past every unmarshalled uid so fresh types cannot collide. *)

open Mcc_m2
open Mcc_sched
module Metrics = Mcc_obs.Metrics

(* v3: Driver.result (persisted inside module-memo entries) grew the
   cache-eviction counter.  v2 added per-declaration slice digests and
   the stable install/shape digests fine-grained invalidation compares. *)
let version = "mcc-artifact-v3"

(* ------------------------------------------------------------------ *)
(* Charge-free import scan *)

type tok = Word of string | Sym of char | Teof

let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_digit c = c >= '0' && c <= '9'

let scan_imports src =
  let n = String.length src in
  let pos = ref 0 in
  let peek k = if !pos + k < n then src.[!pos + k] else '\000' in
  (* mirrors Lexer.skip_comment: only the opening delimiter nests *)
  let skip_comment op cl =
    let depth = ref 0 in
    let fin = ref false in
    while not !fin do
      if !pos >= n then fin := true
      else if src.[!pos] = op && peek 1 = '*' then begin
        incr depth;
        pos := !pos + 2
      end
      else if src.[!pos] = '*' && peek 1 = cl then begin
        decr depth;
        pos := !pos + 2;
        if !depth = 0 then fin := true
      end
      else incr pos
    done
  in
  let rec skip_blank () =
    if !pos < n then
      match src.[!pos] with
      | ' ' | '\t' | '\r' | '\n' ->
          incr pos;
          skip_blank ()
      | '(' when peek 1 = '*' ->
          skip_comment '(' ')';
          skip_blank ()
      | '<' when peek 1 = '*' ->
          skip_comment '<' '>';
          skip_blank ()
      | _ -> ()
  in
  let next () =
    skip_blank ();
    if !pos >= n then Teof
    else
      let c = src.[!pos] in
      if is_alpha c then begin
        let s = !pos in
        while !pos < n && (is_alpha src.[!pos] || is_digit src.[!pos] || src.[!pos] = '_') do
          incr pos
        done;
        Word (String.sub src s (!pos - s))
      end
      else if c = '"' || c = '\'' then begin
        (* strings have no escapes and must not span lines (Lexer) *)
        incr pos;
        while !pos < n && src.[!pos] <> c && src.[!pos] <> '\n' do
          incr pos
        done;
        if !pos < n then incr pos;
        Sym c
      end
      else begin
        incr pos;
        Sym c
      end
  in
  let is_ident s = Token.lookup_keyword s = None in
  let acc = ref [] in
  let add m = if not (List.mem m !acc) then acc := m :: !acc in
  let fin = ref false in
  while not !fin do
    match next () with
    | Teof -> fin := true
    | Word ("CONST" | "TYPE" | "VAR" | "PROCEDURE" | "BEGIN") ->
        (* imports precede all declarations: done *)
        fin := true
    | Word "FROM" -> (
        match next () with
        | Word m when is_ident m ->
            add m;
            (* skip the imported identifier list *)
            let stop = ref false in
            while not !stop do
              match next () with Sym ';' | Teof -> stop := true | _ -> ()
            done
        | _ -> ())
    | Word "IMPORT" ->
        (* IMPORT A, B, C ';' *)
        let stop = ref false in
        while not !stop do
          match next () with
          | Word m when is_ident m -> add m
          | Sym ',' -> ()
          | _ -> stop := true
        done
    | _ -> ()
  done;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* The interface store *)

type t = {
  mu : Mutex.t;
  dir : string option;
  cap_bytes : int option; (* store size bound; None = unbounded *)
  defs : (string, Artifact.t) Hashtbl.t; (* fingerprint -> artifact *)
  latest : (string, string) Hashtbl.t; (* name -> last stored fingerprint *)
  sizes : (string, int) Hashtbl.t; (* fingerprint -> marshaled bytes *)
  lru : (string, int) Hashtbl.t; (* fingerprint -> last-use tick *)
  imports_memo : (string, string list) Hashtbl.t; (* source digest -> imports *)
  mutable tick : int;
  mutable bytes : int; (* sum of [sizes] *)
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable evictions : int; (* entries dropped by the size bound *)
  mutable corrupt : int; (* artifacts dropped by digest verification *)
}

(* An artifact's charge against the size bound is its marshaled size —
   the same bytes [save] would write for it, so the bound models a
   persistent store of that many bytes. *)
let artifact_size (a : Artifact.t) = String.length (Marshal.to_string a [])

(* All four must run under [t.mu]. *)

let touch t fp =
  t.tick <- t.tick + 1;
  Hashtbl.replace t.lru fp t.tick

let forget_sizes t fp =
  (match Hashtbl.find_opt t.sizes fp with
  | Some sz -> t.bytes <- t.bytes - sz
  | None -> ());
  Hashtbl.remove t.sizes fp;
  Hashtbl.remove t.lru fp

let record_size t fp a =
  forget_sizes t fp;
  let sz = artifact_size a in
  Hashtbl.replace t.sizes fp sz;
  t.bytes <- t.bytes + sz;
  touch t fp

(* Evict least-recently-used artifacts until the store fits the bound
   again, never evicting [keep] (the entry just stored): the bound is a
   budget, not an invariant an oversized single artifact could violate
   fatally.  Eviction is pure capacity management — the artifact is
   still valid, so it does not count as an invalidation. *)
let enforce_cap t ~keep =
  match t.cap_bytes with
  | None -> ()
  | Some cap ->
      let continue_ = ref (t.bytes > cap) in
      while !continue_ do
        let victim =
          Hashtbl.fold
            (fun fp tick acc ->
              if Some fp = keep then acc
              else
                match acc with
                | Some (_, best) when best <= tick -> acc
                | _ -> Some (fp, tick))
            t.lru None
        in
        match victim with
        | None -> continue_ := false
        | Some (fp, _) ->
            (match Hashtbl.find_opt t.defs fp with
            | Some a -> (
                match Hashtbl.find_opt t.latest a.Artifact.a_name with
                | Some latest_fp when latest_fp = fp -> Hashtbl.remove t.latest a.Artifact.a_name
                | _ -> ())
            | None -> ());
            Hashtbl.remove t.defs fp;
            forget_sizes t fp;
            t.evictions <- t.evictions + 1;
            if Metrics.enabled () then Metrics.incr "mcc_cache_evict_total";
            continue_ := t.bytes > cap
      done

let cache_file dir = Filename.concat dir "interfaces.bin"

(* The hashing work for [len] source bytes, in virtual units. *)
let hash_units len =
  Costs.hash_block * ((len + Costs.hash_block_bytes - 1) / Costs.hash_block_bytes)

let load t dir =
  match open_in_bin (cache_file dir) with
  | exception Sys_error _ -> ()
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match (Marshal.from_channel ic : string * (string * Artifact.t) list) with
          | exception _ -> () (* unreadable or truncated: start empty *)
          | v, defs when v = version ->
              let floor = ref 0 in
              List.iter
                (fun (fp, a) ->
                  (* drop artifacts whose stored digest no longer matches
                     their payload (on-disk bit-rot / tampering) *)
                  if not (Artifact.verify a) then t.corrupt <- t.corrupt + 1
                  else begin
                    Hashtbl.replace t.defs fp a;
                    Hashtbl.replace t.latest a.Artifact.a_name fp;
                    record_size t fp a;
                    floor := max !floor (Artifact.max_uid a)
                  end)
                defs;
              Mcc_sem.Types.bump_uid_floor !floor
          | _ -> () (* format version changed: start empty *))

let create ?dir ?cap_bytes () =
  let t =
    {
      mu = Mutex.create ();
      dir;
      cap_bytes;
      defs = Hashtbl.create 64;
      latest = Hashtbl.create 64;
      sizes = Hashtbl.create 64;
      lru = Hashtbl.create 64;
      imports_memo = Hashtbl.create 64;
      tick = 0;
      bytes = 0;
      hits = 0;
      misses = 0;
      invalidations = 0;
      evictions = 0;
      corrupt = 0;
    }
  in
  Option.iter (load t) dir;
  (* a loaded store can exceed a (new or tightened) bound *)
  Mutex.lock t.mu;
  enforce_cap t ~keep:None;
  Mutex.unlock t.mu;
  t

let save t =
  match t.dir with
  | None -> ()
  | Some dir ->
      (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
      Mutex.lock t.mu;
      let defs = Hashtbl.fold (fun fp a acc -> (fp, a) :: acc) t.defs [] in
      Mutex.unlock t.mu;
      let defs = List.sort (fun (a, _) (b, _) -> compare a b) defs in
      let oc = open_out_bin (cache_file dir) in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> Marshal.to_channel oc (version, defs) [])

let imports_of t src =
  let key = Digest.to_hex (Digest.string src) in
  Mutex.lock t.mu;
  let memo = Hashtbl.find_opt t.imports_memo key in
  Mutex.unlock t.mu;
  match memo with
  | Some imports -> imports
  | None ->
      let imports = scan_imports src in
      Mutex.lock t.mu;
      Hashtbl.replace t.imports_memo key imports;
      Mutex.unlock t.mu;
      imports

(* ------------------------------------------------------------------ *)
(* Fingerprints *)

(* [memo] is owned by one compilation (or one Project.compile call) and
   guarded by its owner; sources cannot change under it.  A module being
   fingerprinted holds a provisional cycle marker so circular imports
   terminate (such programs deadlock compilation and never produce
   artifacts anyway).  Returns the fingerprint and the uncharged hashing
   units this call performed. *)
let interface_fp t ~memo ~store name =
  let units = ref 0 in
  let rec go name =
    match Hashtbl.find_opt memo name with
    | Some fp -> fp
    | None ->
        Hashtbl.replace memo name ("cycle:" ^ name);
        let fp =
          match Source_store.def_src store name with
          | None -> Digest.to_hex (Digest.string (version ^ "|missing|" ^ name))
          | Some src ->
              units := !units + hash_units (String.length src);
              let subs = List.map go (imports_of t src) in
              Digest.to_hex
                (Digest.string
                   (String.concat "|"
                      (version :: name :: Digest.to_hex (Digest.string src) :: subs)))
        in
        Hashtbl.replace memo name fp;
        fp
  in
  let fp = go name in
  (fp, !units)

(* Probe-time digest verification can be disabled — only by the
   conformance harness, which plants a tampered artifact and proves the
   differential oracle catches what verification would have
   (test_check.ml's canary).  Production paths never touch this. *)
let verification = ref true
let set_verification on = verification := on

(* Corrupt the stored artifact for [name] in place: prepend a bogus
   replayed diagnostic without recomputing the payload digest.  With
   verification on the next probe evicts and rebuilds (self-healing);
   with it off the corruption installs and the compile's output
   diverges from the sequential reference. *)
let tamper t ~name =
  Mutex.lock t.mu;
  (match Hashtbl.find_opt t.latest name with
  | None -> ()
  | Some fp -> (
      match Hashtbl.find_opt t.defs fp with
      | None -> ()
      | Some a ->
          let bogus =
            {
              Diag.file = name ^ ".def";
              loc = Loc.none;
              msg = "tampered artifact (planted by the conformance canary)";
              sev = Diag.Warning;
            }
          in
          Hashtbl.replace t.defs fp { a with Artifact.a_diags = bogus :: a.Artifact.a_diags }));
  Mutex.unlock t.mu

(* Probe, verifying before handing the artifact to the install path: the
   store key must match the artifact's recorded fingerprint, and the
   stored digest must match a payload recomputation (an armed Fault plan
   can also declare the artifact corrupt).  A verification failure is
   counted as corruption *and* an invalidation, the entry is evicted,
   and the probe reports a miss — the caller rebuilds the interface from
   source and re-stores it, healing the cache. *)
let find_interface t ~fp =
  if Metrics.enabled () then Metrics.incr "mcc_cache_probe_total";
  Mutex.lock t.mu;
  let r =
    match Hashtbl.find_opt t.defs fp with
    | None -> None
    | Some a ->
        let injected = Fault.armed () && Fault.corrupt_artifact ~name:a.Artifact.a_name in
        if
          !verification
          && (injected || fp <> a.Artifact.a_fingerprint || not (Artifact.verify a))
        then begin
          if injected && Evlog.enabled () then
            Evlog.emit
              (Evlog.Fault_inject { fault = "corrupt-artifact"; victim = a.Artifact.a_name });
          t.corrupt <- t.corrupt + 1;
          if Metrics.enabled () then Metrics.incr "mcc_cache_corrupt_total";
          t.invalidations <- t.invalidations + 1;
          Hashtbl.remove t.defs fp;
          forget_sizes t fp;
          (match Hashtbl.find_opt t.latest a.Artifact.a_name with
          | Some latest_fp when latest_fp = fp -> Hashtbl.remove t.latest a.Artifact.a_name
          | _ -> ());
          None
        end
        else begin
          touch t fp;
          Some a
        end
  in
  (match r with None -> t.misses <- t.misses + 1 | Some _ -> t.hits <- t.hits + 1);
  Mutex.unlock t.mu;
  if Metrics.enabled () then
    Metrics.incr (match r with None -> "mcc_cache_miss_total" | Some _ -> "mcc_cache_hit_total");
  r

let store_interface t (a : Artifact.t) =
  if Metrics.enabled () then Metrics.incr "mcc_cache_store_total";
  Mutex.lock t.mu;
  (match Hashtbl.find_opt t.latest a.Artifact.a_name with
  | Some old_fp when old_fp <> a.Artifact.a_fingerprint ->
      (* the interface changed: the old artifact can never be hit again *)
      t.invalidations <- t.invalidations + 1;
      Hashtbl.remove t.defs old_fp;
      forget_sizes t old_fp
  | _ -> ());
  Hashtbl.replace t.defs a.Artifact.a_fingerprint a;
  Hashtbl.replace t.latest a.Artifact.a_name a.Artifact.a_fingerprint;
  record_size t a.Artifact.a_fingerprint a;
  enforce_cap t ~keep:(Some a.Artifact.a_fingerprint);
  Mutex.unlock t.mu

let interfaces t =
  Mutex.lock t.mu;
  let r = Hashtbl.fold (fun _ a acc -> a :: acc) t.defs [] in
  Mutex.unlock t.mu;
  List.sort (fun (a : Artifact.t) b -> compare a.Artifact.a_name b.Artifact.a_name) r

(* Peek at the most recently stored artifact for an interface name —
   the fine-grained reuse check's view of "the interface as it is now".
   No counter traffic: this is bookkeeping, not a cache probe. *)
let latest_artifact t name =
  Mutex.lock t.mu;
  let r =
    match Hashtbl.find_opt t.latest name with
    | None -> None
    | Some fp -> Hashtbl.find_opt t.defs fp
  in
  Mutex.unlock t.mu;
  r

let counters t =
  Mutex.lock t.mu;
  let r = (t.hits, t.misses, t.invalidations) in
  Mutex.unlock t.mu;
  r

let eviction_count t =
  Mutex.lock t.mu;
  let r = t.evictions in
  Mutex.unlock t.mu;
  r

let total_bytes t =
  Mutex.lock t.mu;
  let r = t.bytes in
  Mutex.unlock t.mu;
  r

let corrupt_count t =
  Mutex.lock t.mu;
  let r = t.corrupt in
  Mutex.unlock t.mu;
  r

(* ------------------------------------------------------------------ *)
(* The module-result memo *)

type 'r memo = {
  mmu : Mutex.t;
  mcap : int option; (* entry-count bound; None = unbounded *)
  modules : (string, 'r) Hashtbl.t; (* module key -> result *)
  latest_key : (string, string) Hashtbl.t; (* name -> last stored key *)
  mcosts : (string, float) Hashtbl.t; (* key -> recompute cost *)
  mpri : (string, float) Hashtbl.t; (* key -> GreedyDual priority *)
  mutable ml : float; (* GreedyDual inflation level L *)
  mutable mhits : int;
  mutable mmisses : int;
  mutable minvalidations : int;
  mutable mevictions : int;
}

let memo ?cap () =
  {
    mmu = Mutex.create ();
    mcap = cap;
    modules = Hashtbl.create 16;
    latest_key = Hashtbl.create 16;
    mcosts = Hashtbl.create 16;
    mpri = Hashtbl.create 16;
    ml = 0.0;
    mhits = 0;
    mmisses = 0;
    minvalidations = 0;
    mevictions = 0;
  }

(* Both must run under [m.mmu]. *)

let memo_drop m key =
  Hashtbl.remove m.modules key;
  Hashtbl.remove m.mcosts key;
  Hashtbl.remove m.mpri key

(* GreedyDual eviction: every entry carries priority L + cost (cost =
   the simulated seconds a recompute would take, defaulting to 1.0), a
   hit refreshes the entry back to the current L + cost, and evicting
   raises L to the victim's priority — so cheap, long-idle entries go
   first and an expensive entry survives proportionally longer.  With
   uniform costs this degenerates to LRU.  Capacity management, not
   invalidation.  Ties break on the lexicographically smallest key so
   eviction order never depends on hash-table iteration order. *)
let memo_enforce_cap m ~keep =
  match m.mcap with
  | None -> ()
  | Some cap ->
      let continue_ = ref (Hashtbl.length m.modules > cap) in
      while !continue_ do
        let victim =
          Hashtbl.fold
            (fun key pri acc ->
              if Some key = keep then acc
              else
                match acc with
                | Some (bk, bp) when bp < pri || (bp = pri && bk < key) -> acc
                | _ -> Some (key, pri))
            m.mpri None
        in
        match victim with
        | None -> continue_ := false
        | Some (key, pri) ->
            m.ml <- Float.max m.ml pri;
            memo_drop m key;
            Hashtbl.iter
              (fun n k -> if k = key then Hashtbl.remove m.latest_key n)
              (Hashtbl.copy m.latest_key);
            m.mevictions <- m.mevictions + 1;
            if Metrics.enabled () then Metrics.incr "mcc_memo_evict_total";
            continue_ := Hashtbl.length m.modules > cap
      done

(* A whole-module key: configuration tag (cached results embed simulated
   timings), module name, implementation source digest, and the
   interface fingerprints of the module's own definition and direct
   imports — which cover every transitive interface.  [store] is the
   module-focused store (its main source is the implementation). *)
let module_key t ~memo ~config_tag store =
  let name = Source_store.main_name store in
  let src = Source_store.main_src store in
  let units = ref (hash_units (String.length src)) in
  let fp m =
    let fp, u = interface_fp t ~memo ~store m in
    units := !units + u;
    fp
  in
  let own = fp name in
  let subs = List.map fp (imports_of t src) in
  let key =
    Digest.to_hex
      (Digest.string
         (String.concat "|"
            (version :: config_tag :: name
            :: Digest.to_hex (Digest.string src)
            :: own :: subs)))
  in
  (key, !units)

let find_module m key =
  Mutex.lock m.mmu;
  let r = Hashtbl.find_opt m.modules key in
  (match r with
  | None -> m.mmisses <- m.mmisses + 1
  | Some _ ->
      m.mhits <- m.mhits + 1;
      (* GreedyDual hit: refresh the entry to the current level *)
      let cost = Option.value ~default:1.0 (Hashtbl.find_opt m.mcosts key) in
      Hashtbl.replace m.mpri key (m.ml +. cost));
  Mutex.unlock m.mmu;
  r

(* The module's most recently stored result regardless of key — the
   fine-grained check's previous-build baseline.  Counter-free. *)
let find_latest_module m ~name =
  Mutex.lock m.mmu;
  let r =
    match Hashtbl.find_opt m.latest_key name with
    | None -> None
    | Some key -> Option.map (fun v -> (key, v)) (Hashtbl.find_opt m.modules key)
  in
  Mutex.unlock m.mmu;
  r

let store_module ?(cost = 1.0) m ~name ~key result =
  Mutex.lock m.mmu;
  (match Hashtbl.find_opt m.latest_key name with
  | Some old_key when old_key <> key ->
      m.minvalidations <- m.minvalidations + 1;
      memo_drop m old_key
  | _ -> ());
  Hashtbl.replace m.modules key result;
  Hashtbl.replace m.latest_key name key;
  Hashtbl.replace m.mcosts key cost;
  Hashtbl.replace m.mpri key (m.ml +. cost);
  memo_enforce_cap m ~keep:(Some key);
  Mutex.unlock m.mmu

let memo_counters m =
  Mutex.lock m.mmu;
  let r = (m.mhits, m.mmisses, m.minvalidations) in
  Mutex.unlock m.mmu;
  r

let memo_eviction_count m =
  Mutex.lock m.mmu;
  let r = m.mevictions in
  Mutex.unlock m.mmu;
  r

(* Memo persistence piggybacks on the cache's directory, so a CLI
   `m2c build` reuses whole-module results across process invocations
   the same way it reuses interface artifacts.  The ['r] payload is
   marshaled untyped; the [version] tag is the only format guard, so any
   change to the persisted result type must bump [version] (which also
   invalidates persisted artifacts — they evolve together). *)

let memo_file dir = Filename.concat dir "modules.bin"

let load_memo ?(decode = fun r -> r) t (m : 'r memo) =
  match t.dir with
  | None -> ()
  | Some dir -> (
      match open_in_bin (memo_file dir) with
      | exception Sys_error _ -> ()
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              match
                (Marshal.from_channel ic
                  : string * (string * string) list * (string * string) list)
              with
              | exception _ -> () (* unreadable or truncated: start empty *)
              | v, modules, latest when v = version ->
                  Mutex.lock m.mmu;
                  List.iter
                    (fun (k, payload) ->
                      (* a payload that no longer unmarshals is dropped,
                         not fatal: the module just rebuilds cold *)
                      match (Marshal.from_string payload 0 : 'r) with
                      | exception _ -> ()
                      | r ->
                          Hashtbl.replace m.modules k (decode r);
                          (* costs are not persisted: loaded entries
                             restart at the uniform (LRU-like) cost *)
                          Hashtbl.replace m.mcosts k 1.0;
                          Hashtbl.replace m.mpri k (m.ml +. 1.0))
                    modules;
                  List.iter
                    (fun (n, k) ->
                      if Hashtbl.mem m.modules k then Hashtbl.replace m.latest_key n k)
                    latest;
                  memo_enforce_cap m ~keep:None;
                  Mutex.unlock m.mmu
              | _ -> () (* format version changed: start empty *)))

let save_memo ?(encode = fun r -> r) t (m : 'r memo) =
  match t.dir with
  | None -> ()
  | Some dir ->
      (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
      Mutex.lock m.mmu;
      let modules = Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.modules [] in
      let latest = Hashtbl.fold (fun n k acc -> (n, k) :: acc) m.latest_key [] in
      Mutex.unlock m.mmu;
      let modules =
        (* entries are marshaled one by one so a result that contains an
           unmarshalable value (a custom block the encoder missed, an
           exception payload) costs only its own entry *)
        List.filter_map
          (fun (k, r) ->
            match Marshal.to_string (encode r) [] with
            | exception Invalid_argument _ -> None
            | payload -> Some (k, payload))
          modules
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let latest = List.sort compare latest in
      let oc = open_out_bin (memo_file dir) in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> Marshal.to_channel oc (version, modules, latest) [])
