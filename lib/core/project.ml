(* Whole-program compilation: the "parallel make" layer above the
   concurrent compiler.

   The paper's unit of compilation is a single module (its interfaces
   are analyzed, but imported implementations are not compiled).  This
   layer compiles every module of a program — the main module plus each
   imported module whose implementation is in the store — each with the
   full concurrent compiler, and links all the code units into one
   executable program with Modula-2 initialization order: an imported
   module's body runs before its importer's, the main module's last.

   Unit keys are scope paths and interface frames have identical layouts
   no matter which compilation produced them, so cross-module linking is
   deduplication plus concatenation — the same schedule-independence
   argument as the single-module merge (paper §2.1).

   With a cache the layer is *incremental*: a module whose own source,
   configuration and transitive interface fingerprints are unchanged is
   restored from its cached per-module result (paying only the hash +
   probe work, accounted in [reuse_units]); everything else recompiles
   — through the same cache, so even a recompiled module installs
   unchanged interfaces from artifacts instead of re-analyzing them.
   Because one artifact serves every configuration but a cached
   Driver.result embeds simulated timings, the module key includes a
   configuration tag while interface fingerprints do not. *)

open Mcc_m2
open Mcc_sched
open Mcc_codegen

type cache = { bc : Build_cache.t; memo : Driver.result Build_cache.memo }

let cache ?dir () = { bc = Build_cache.create ?dir (); memo = Build_cache.memo () }

type result = {
  program : Cunit.program;
  diags : Diag.d list;
  ok : bool;
  modules : (string * Driver.result) list; (* in initialization order *)
  total_units : float; (* summed virtual compile time across modules *)
  reused : string list; (* modules restored from the cache, in init order *)
  recompiled : string list; (* modules compiled this call, in init order *)
  reuse_units : float; (* hash + probe work charged for reuse checks *)
}

let direct_imports ~file src =
  let acc = ref [] in
  Stream.run_importer
    ~rd:(Reader.of_lexer (Lexer.create ~file src))
    ~on_import:(fun m -> if not (List.mem m !acc) then acc := m :: !acc);
  List.rev !acc

(* Initialization order: depth-first over imports restricted to modules
   with implementations, imports sorted for determinism, main last. *)
let init_order (store : Source_store.t) =
  let visited = Hashtbl.create 8 in
  let order = ref [] in
  let rec visit name =
    if not (Hashtbl.mem visited name) then begin
      Hashtbl.replace visited name ();
      match Source_store.impl_src store name with
      | None -> ()
      | Some src ->
          List.iter visit (List.sort compare (direct_imports ~file:(name ^ ".mod") src));
          order := name :: !order
    end
  in
  visit (Source_store.main_name store);
  List.rev !order

let config_tag (c : Driver.config) =
  (* fault specs are part of the tag: a cached result embeds robustness
     counters and simulated timings, both of which injection changes *)
  Printf.sprintf "%s|%s|%d|%g|%b|%s|%d"
    (Mcc_sem.Symtab.dky_name c.Driver.strategy)
    (match c.Driver.heading with Driver.Alt1 -> "alt1" | Driver.Alt3 -> "alt3")
    c.Driver.procs c.Driver.beta c.Driver.fifo_sched
    (String.concat "," (List.map Mcc_sched.Fault.spec_to_string c.Driver.faults))
    c.Driver.fault_seed

let compile ?(config = Driver.default_config) ?cache (store : Source_store.t) : result =
  let names = init_order store in
  let reuse_units = ref 0 in
  (* one fingerprint memo for the whole call: sources are fixed *)
  let fp_memo = Hashtbl.create 16 in
  let tag = config_tag config in
  let compile_one name =
    let focused = Source_store.focus store name in
    match cache with
    | None -> (name, Driver.compile ~config focused, false)
    | Some { bc; memo } -> (
        let key, units = Build_cache.module_key bc ~memo:fp_memo ~config_tag:tag focused in
        reuse_units := !reuse_units + units + Costs.cache_probe;
        match Build_cache.find_module memo key with
        | Some r -> (name, r, true)
        | None ->
            let r = Driver.compile ~config ~cache:bc focused in
            (* prune per (configuration, module): an edit invalidates a
               module's stale result without evicting the same module's
               still-valid results under other configurations *)
            Build_cache.store_module memo ~name:(tag ^ "|" ^ name) ~key r;
            (name, r, false))
  in
  let compiled = List.map compile_one names in
  let modules = List.map (fun (name, r, _) -> (name, r)) compiled in
  (* merge: units are unique by construction (each implementation is
     compiled exactly once); interface frames repeat across compilations
     with identical layouts and are deduplicated by key *)
  let units = ref [] and frames = Hashtbl.create 16 and diags = ref [] in
  List.iter
    (fun (_, (r : Driver.result)) ->
      diags := r.Driver.diags :: !diags;
      Hashtbl.iter (fun _ u -> units := u :: !units) r.Driver.program.Cunit.p_units;
      List.iter
        (fun ((key, _, _) as frame) ->
          if not (Hashtbl.mem frames key) then Hashtbl.replace frames key frame)
        r.Driver.program.Cunit.p_frames)
    modules;
  let frames = Hashtbl.fold (fun _ f acc -> f :: acc) frames [] in
  let program =
    Cunit.link ~init:names ~entry:(Source_store.main_name store) ~frames !units
  in
  let diags = List.sort Diag.compare_d (List.concat !diags) in
  let reuse_units = float_of_int !reuse_units in
  {
    program;
    diags;
    ok = List.for_all (fun (_, (r : Driver.result)) -> r.Driver.ok) modules;
    modules;
    total_units =
      (* reused modules are not re-simulated: they contribute only the
         reuse check's work, not their cached end-to-end compile time *)
      List.fold_left
        (fun acc (_, (r : Driver.result), reused) ->
          if reused then acc else acc +. r.Driver.sim.Mcc_sched.Des_engine.end_time)
        reuse_units compiled;
    reused = List.filter_map (fun (n, _, reused) -> if reused then Some n else None) compiled;
    recompiled =
      List.filter_map (fun (n, _, reused) -> if reused then None else Some n) compiled;
    reuse_units;
  }
