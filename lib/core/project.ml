(* Whole-program compilation: the "parallel make" layer above the
   concurrent compiler.

   The paper's unit of compilation is a single module (its interfaces
   are analyzed, but imported implementations are not compiled).  This
   layer compiles every module of a program — the main module plus each
   imported module whose implementation is in the store — each with the
   full concurrent compiler, and links all the code units into one
   executable program with Modula-2 initialization order: an imported
   module's body runs before its importer's, the main module's last.

   Unit keys are scope paths and interface frames have identical layouts
   no matter which compilation produced them, so cross-module linking is
   deduplication plus concatenation — the same schedule-independence
   argument as the single-module merge (paper §2.1).

   With a cache the layer is *incremental*, at two granularities:

   - Whole-module: a module whose own source, configuration and
     transitive interface fingerprints are unchanged is restored from
     its cached per-module result (paying only the hash + probe work,
     accounted in [reuse_units]).
   - Slice-level (the fine-grained refinement, after Smits, Konat &
     Visser's hybrid incremental compilers): when the whole-module key
     misses because an interface changed, the module is dirty only if a
     declaration it actually *used* changed.  Each cached result carries
     its dependency record — per reached interface, the install digest
     (imports + frame + diagnostics) plus the slice digests of every
     exported name the compilation resolved (or failed to resolve)
     there.  An *interface refresh* prepass re-analyzes edited
     interfaces up front and compares regenerated shapes against the
     cached ones: an identical shape is an {e early cutoff} —
     invalidation stops there and downstream modules reuse.

   Because one artifact serves every configuration but a cached
   Driver.result embeds simulated timings, the module key includes a
   configuration tag while interface fingerprints do not. *)

open Mcc_m2
open Mcc_sched
open Mcc_codegen

(* One dependency of a cached module result on an interface it reached:
   [dep_install = None] records that the interface was missing.  Slice
   digests use reserved markers for negative dependencies — a name the
   compilation probed but did not find must *stay* absent. *)
type dep = {
  dep_name : string;
  dep_install : string option;
  dep_slices : (string * string) list; (* probed exported name -> digest or marker *)
}

type entry = {
  e_result : Driver.result;
  e_src_digest : string; (* the implementation source this result was built from *)
  e_deps : dep list;
}

type cache = { bc : Build_cache.t; memo : entry Build_cache.memo }

(* [Driver.result] embeds one custom block Marshal rejects — the
   lookup-stats lock — so persisted entries strip it on the way out and
   re-arm it on the way in. *)
let entry_encode e =
  { e with e_result = { e.e_result with Driver.stats = Mcc_sem.Lookup_stats.unsynced e.e_result.Driver.stats } }

let entry_decode e =
  ignore (Mcc_sem.Lookup_stats.resync e.e_result.Driver.stats);
  e

let cache ?dir () =
  let bc = Build_cache.create ?dir () in
  let memo = Build_cache.memo () in
  Build_cache.load_memo ~decode:entry_decode bc memo;
  { bc; memo }

let save { bc; memo } =
  Build_cache.save bc;
  Build_cache.save_memo ~encode:entry_encode bc memo

type result = {
  program : Cunit.program;
  diags : Diag.d list;
  ok : bool;
  modules : (string * Driver.result) list; (* in initialization order *)
  total_units : float; (* summed virtual compile time across modules *)
  reused : string list; (* modules restored from the cache, in init order *)
  recompiled : string list; (* modules compiled this call, in init order *)
  reuse_units : float; (* hash + probe work charged for reuse checks *)
  refresh_units : float; (* virtual time of the interface refresh prepass *)
  cutoffs : string list; (* interfaces where invalidation stopped early, sorted *)
  iface_changes : (string * string list) list; (* edited interface -> changed slices *)
  explain : (string * string) list; (* module -> reuse/rebuild reason, init order *)
}

let direct_imports ~file src =
  let acc = ref [] in
  Stream.run_importer
    ~rd:(Reader.of_lexer (Lexer.create ~file src))
    ~on_import:(fun m -> if not (List.mem m !acc) then acc := m :: !acc);
  List.rev !acc

(* Initialization order: depth-first over imports restricted to modules
   with implementations, imports sorted for determinism, main last. *)
let init_order (store : Source_store.t) =
  let visited = Hashtbl.create 8 in
  let order = ref [] in
  let rec visit name =
    if not (Hashtbl.mem visited name) then begin
      Hashtbl.replace visited name ();
      match Source_store.impl_src store name with
      | None -> ()
      | Some src ->
          List.iter visit (List.sort compare (direct_imports ~file:(name ^ ".mod") src));
          order := name :: !order
    end
  in
  visit (Source_store.main_name store);
  List.rev !order

let config_tag (c : Driver.config) =
  (* fault specs are part of the tag: a cached result embeds robustness
     counters and simulated timings, both of which injection changes *)
  Printf.sprintf "%s|%s|%d|%g|%b|%s|%d"
    (Mcc_sem.Symtab.dky_name c.Driver.strategy)
    (match c.Driver.heading with Driver.Alt1 -> "alt1" | Driver.Alt3 -> "alt3")
    c.Driver.procs c.Driver.beta c.Driver.fifo_sched
    (String.concat "," (List.map Mcc_sched.Fault.spec_to_string c.Driver.faults))
    c.Driver.fault_seed

(* ------------------------------------------------------------------ *)
(* The fine-grained dependency record *)

(* Markers for states a slice dependency can be in besides "present with
   this digest".  They can never collide with a real digest (hex). *)
let marker_missing = "!missing" (* the whole interface had no source *)
let marker_absent = "!absent" (* the name was probed but not exported *)

let resolve_dep bc store m names =
  match Source_store.def_src store m with
  | None ->
      { dep_name = m; dep_install = None;
        dep_slices = List.map (fun n -> (n, marker_missing)) names }
  | Some _ -> (
      match Build_cache.latest_artifact bc m with
      | None ->
          (* reached interfaces always leave an artifact behind; an
             evicted one fails the equality check and forces a rebuild *)
          { dep_name = m; dep_install = Some marker_absent;
            dep_slices = List.map (fun n -> (n, marker_absent)) names }
      | Some a ->
          { dep_name = m; dep_install = Some a.Artifact.a_install;
            dep_slices =
              List.map
                (fun n ->
                  (n, Option.value ~default:marker_absent (Artifact.slice a n)))
                names })

(* The dependency record of a just-compiled module: every interface the
   compilation reached (installed or compiled — their frames and
   replayed diagnostics are embedded in the result), each with the slice
   digests of the names the compilation probed there. *)
let deps_of bc store (r : Driver.result) =
  let used = r.Driver.used_slices in
  let reached = r.Driver.cache_hits @ r.Driver.cache_misses @ List.map fst used in
  List.map
    (fun m ->
      resolve_dep bc store m (Option.value ~default:[] (List.assoc_opt m used)))
    (List.sort_uniq compare reached)

(* Re-check a stored dependency record against the interfaces as they
   are now.  [Ok n] (n slices compared) means every reached interface
   installs identically and every probed name resolves to the same
   declaration (or is still absent/missing): the cached result is valid
   even though fingerprints changed. *)
let check_deps bc store deps =
  let n = ref 0 in
  let rec go = function
    | [] -> Ok !n
    | d :: rest ->
        let now = resolve_dep bc store d.dep_name (List.map fst d.dep_slices) in
        if now.dep_install <> d.dep_install then
          Error
            (Printf.sprintf "interface %s changed shape (imports, frame or diagnostics)"
               d.dep_name)
        else (
          let bad =
            List.find_opt
              (fun (name, old) ->
                incr n;
                List.assoc_opt name now.dep_slices <> Some old)
              d.dep_slices
          in
          match bad with
          | Some (name, old) ->
              let verb =
                if String.equal old marker_absent then "appeared"
                else if List.assoc_opt name now.dep_slices = Some marker_absent then
                  "was removed"
                else "changed"
              in
              Error (Printf.sprintf "used slice %s.%s %s" d.dep_name name verb)
          | None -> go rest)
  in
  go deps

(* Which exported names of an edited interface actually changed — the
   explain output's slice-level diff of old vs regenerated artifact. *)
let slice_delta (old : Artifact.t) (now : Artifact.t) =
  let changed =
    List.filter_map
      (fun (n, d) -> if Artifact.slice now n = Some d then None else Some n)
      old.Artifact.a_slices
  in
  let added =
    List.filter_map
      (fun (n, _) -> if Artifact.slice old n = None then Some n else None)
      now.Artifact.a_slices
  in
  match List.sort_uniq compare (changed @ added) with
  | [] -> [ "(frame layout or diagnostics)" ]
  | names -> names

(* ------------------------------------------------------------------ *)

let compile ?(config = Driver.default_config) ?(fine = true) ?cache
    (store : Source_store.t) : result =
  let names = init_order store in
  let reuse_units = ref 0 in
  (* one fingerprint memo for the whole call: sources are fixed *)
  let fp_memo = Hashtbl.create 16 in
  let tag = config_tag config in
  let cutoffs = ref [] in
  let iface_changes = ref [] in
  let refresh_units = ref 0.0 in
  (* Interface refresh prepass (fine-grained mode only): re-analyze
     every interface whose fingerprint moved away from its cached
     artifact, so the per-module dependency checks below compare against
     artifacts that reflect the sources as they are *now*.  One probe
     compilation importing all edited interfaces refreshes them (its
     unedited transitive imports install from the cache); each refreshed
     shape equal to the cached one is an early cutoff. *)
  (match cache with
  | Some { bc; _ } when fine ->
      let stale =
        List.filter_map
          (fun n ->
            match Build_cache.latest_artifact bc n with
            | None -> None (* nothing cached: no propagation to cut off *)
            | Some old ->
                let fp, units = Build_cache.interface_fp bc ~memo:fp_memo ~store n in
                reuse_units := !reuse_units + units;
                if String.equal fp old.Artifact.a_fingerprint then None else Some (n, old))
          (Source_store.def_names store)
      in
      if stale <> [] then begin
        let defs =
          List.filter_map
            (fun n -> Option.map (fun s -> (n, s)) (Source_store.def_src store n))
            (Source_store.def_names store)
        in
        let buf = Buffer.create 256 in
        Buffer.add_string buf "IMPLEMENTATION MODULE MccRefresh;\n";
        List.iter
          (fun (n, _) -> Buffer.add_string buf (Printf.sprintf "IMPORT %s;\n" n))
          stale;
        Buffer.add_string buf "BEGIN\nEND MccRefresh.\n";
        let probe =
          Source_store.make ~main_name:"MccRefresh" ~main_src:(Buffer.contents buf)
            ~defs ()
        in
        let pr = Driver.compile ~config ~cache:bc probe in
        refresh_units := pr.Driver.sim.Mcc_sched.Des_engine.end_time;
        List.iter
          (fun (n, (old : Artifact.t)) ->
            match Build_cache.latest_artifact bc n with
            | Some now when String.equal now.Artifact.a_shape old.Artifact.a_shape ->
                cutoffs := n :: !cutoffs
            | Some now -> iface_changes := (n, slice_delta old now) :: !iface_changes
            | None -> iface_changes := (n, [ "(interface vanished)" ]) :: !iface_changes)
          stale
      end
  | _ -> ());
  let compile_one name =
    let focused = Source_store.focus store name in
    match cache with
    | None -> (name, Driver.compile ~config focused, None)
    | Some { bc; memo } -> (
        let mname = tag ^ "|" ^ name in
        let key, units = Build_cache.module_key bc ~memo:fp_memo ~config_tag:tag focused in
        reuse_units := !reuse_units + units + Costs.cache_probe;
        let src_digest = Digest.to_hex (Digest.string (Source_store.main_src focused)) in
        let verdict =
          match Build_cache.find_module memo key with
          | Some e -> `Reuse (e, "unchanged inputs (whole-module key hit)")
          | None -> (
              match Build_cache.find_latest_module memo ~name:mname with
              | None -> `Rebuild "no previous build"
              | Some (_, prev) ->
                  if not (String.equal prev.e_src_digest src_digest) then
                    `Rebuild "implementation changed"
                  else if not fine then
                    `Rebuild "an imported interface changed (whole-module invalidation)"
                  else (
                    match check_deps bc store prev.e_deps with
                    | Ok nslices -> `Cutoff (prev, nslices)
                    | Error why -> `Rebuild why))
        in
        match verdict with
        | `Reuse (e, why) -> (name, e.e_result, Some (true, why))
        | `Cutoff (prev, nslices) ->
            (* re-key the entry under the new whole-module key so the
               next unchanged build coarse-hits without re-checking *)
            Build_cache.store_module memo ~name:mname ~key prev;
            ( name,
              prev.e_result,
              Some (true, Printf.sprintf "early cutoff: all %d used slices unchanged" nslices)
            )
        | `Rebuild why ->
            let shape_before =
              Option.map (fun a -> a.Artifact.a_shape) (Build_cache.latest_artifact bc name)
            in
            let r = Driver.compile ~config ~cache:bc focused in
            (* prune per (configuration, module): an edit invalidates a
               module's stale result without evicting the same module's
               still-valid results under other configurations *)
            Build_cache.store_module memo ~name:mname ~key
              { e_result = r; e_src_digest = src_digest; e_deps = deps_of bc store r };
            (match (shape_before, Build_cache.latest_artifact bc name) with
            | Some s0, Some a when fine && String.equal a.Artifact.a_shape s0 ->
                (* the rebuilt module's own regenerated interface came
                   out byte-identical: importers need not rebuild *)
                if not (List.mem name !cutoffs) then cutoffs := name :: !cutoffs
            | _ -> ());
            (name, r, Some (false, why)))
  in
  let compiled = List.map compile_one names in
  let modules = List.map (fun (name, r, _) -> (name, r)) compiled in
  (* merge: units are unique by construction (each implementation is
     compiled exactly once); interface frames repeat across compilations
     with identical layouts and are deduplicated by key *)
  let units = ref [] and frames = Hashtbl.create 16 and diags = ref [] in
  List.iter
    (fun (_, (r : Driver.result)) ->
      diags := r.Driver.diags :: !diags;
      Hashtbl.iter (fun _ u -> units := u :: !units) r.Driver.program.Cunit.p_units;
      List.iter
        (fun ((key, _, _) as frame) ->
          if not (Hashtbl.mem frames key) then Hashtbl.replace frames key frame)
        r.Driver.program.Cunit.p_frames)
    modules;
  let frames = Hashtbl.fold (fun _ f acc -> f :: acc) frames [] in
  let program =
    Cunit.link ~init:names ~entry:(Source_store.main_name store) ~frames !units
  in
  let diags = List.sort Diag.compare_d (List.concat !diags) in
  let reuse_units = float_of_int !reuse_units in
  let is_reused = function Some (true, _) -> true | _ -> false in
  {
    program;
    diags;
    ok = List.for_all (fun (_, (r : Driver.result)) -> r.Driver.ok) modules;
    modules;
    total_units =
      (* reused modules are not re-simulated: they contribute only the
         reuse check's work, not their cached end-to-end compile time *)
      List.fold_left
        (fun acc (_, (r : Driver.result), st) ->
          if is_reused st then acc else acc +. r.Driver.sim.Mcc_sched.Des_engine.end_time)
        (reuse_units +. !refresh_units) compiled;
    reused = List.filter_map (fun (n, _, st) -> if is_reused st then Some n else None) compiled;
    recompiled =
      List.filter_map (fun (n, _, st) -> if is_reused st then None else Some n) compiled;
    reuse_units;
    refresh_units = !refresh_units;
    cutoffs = List.sort_uniq compare !cutoffs;
    iface_changes = List.sort (fun (a, _) (b, _) -> compare a b) !iface_changes;
    explain =
      List.map
        (fun (n, _, st) ->
          match st with
          | None -> (n, "compiled (no cache)")
          | Some (true, why) -> (n, "reused: " ^ why)
          | Some (false, why) -> (n, "recompiled: " ^ why))
        compiled;
  }
