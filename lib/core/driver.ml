(* The concurrent compilation driver.

   Assembles the whole system of the paper's Figure 5 for one compilation
   unit and runs it on an execution engine:

   - main module stream: Lexor -> (Splitter, Importer) -> Module
     Parser/Declarations Analyzer -> Statement Analyzer/Code Generator;
   - one stream per procedure, created by the Splitter: (gated)
     Parser/Declarations Analyzer -> Statement Analyzer/Code Generator;
   - one stream per directly or indirectly imported definition module,
     created through the once-only table: Lexor -> Importer ->
     Parser/Declarations Analyzer;
   - a Merge task that concatenates the per-procedure code units once the
     last code generator (and interface analysis, whose global frames the
     program needs) finishes.

   The DKY strategy, the procedure-heading information-flow alternative
   (paper §2.4) and the simulated processor count are configuration. *)

open Mcc_m2
open Mcc_sched
open Mcc_sem
open Mcc_codegen
module P = Mcc_parse.Parser
module A = Mcc_ast.Ast
module Metrics = Mcc_obs.Metrics

type heading_mode = Alt1 | Alt3

type config = {
  strategy : Symtab.dky;
  heading : heading_mode;
  procs : int;
  beta : float; (* memory-bus contention coefficient *)
  fifo_sched : bool; (* ablation: disable the Supervisor's priorities *)
  perturb : int option;
      (* schedule-exploration seed: randomize ready-queue tie-breaking
         (see Supervisor.create); None = the canonical schedule *)
  faults : Fault.spec list;
      (* fault plan armed around the engine run; [] = no injection (an
         externally armed plan, e.g. the explorer's, is left in place) *)
  fault_seed : int; (* seed deriving the plan's firing decisions *)
}

let default_config =
  {
    strategy = Symtab.Skeptical;
    heading = Alt1;
    procs = 8;
    beta = Costs.bus_beta;
    fifo_sched = false;
    perturb = None;
    faults = [];
    fault_seed = 0;
  }

(* Robustness counters: what the recovery layer did about injected (or
   real) faults during this compilation. *)
type robustness = {
  r_injected : int; (* faults fired by the armed plan during the run *)
  r_retries : int; (* crashed-at-start tasks redispatched after backoff *)
  r_quarantined : string list; (* tasks permanently failed *)
  r_stalls : int; (* injected stalled-worker delays *)
  r_watchdog_fires : int; (* occurred events whose lost wakes were re-delivered *)
  r_recovered_wakes : int; (* parked tasks the watchdog woke *)
  r_corrupt_rebuilds : int; (* cache artifacts dropped by verification, rebuilt *)
  r_source_retries : int; (* source-store read errors retried *)
  r_contained : int; (* injected task failures absorbed without losing the run *)
  r_seq_fallbacks : int; (* whole-program sequential recompiles (0 or 1) *)
}

let no_robustness =
  {
    r_injected = 0;
    r_retries = 0;
    r_quarantined = [];
    r_stalls = 0;
    r_watchdog_fires = 0;
    r_recovered_wakes = 0;
    r_corrupt_rebuilds = 0;
    r_source_retries = 0;
    r_contained = 0;
    r_seq_fallbacks = 0;
  }

type result = {
  program : Cunit.program;
  diags : Diag.d list;
  ok : bool; (* no errors *)
  sim : Des_engine.result;
  stats : Lookup_stats.t;
  n_proc_streams : int;
  n_def_streams : int;
  n_streams : int; (* main + procedures + interfaces *)
  n_tasks : int;
  tokens : int; (* tokens lexed across all files *)
  task_list : (string * string) list; (* (class, name) per instantiated task, Fig. 5 *)
  task_index : (int * string) list; (* task id -> name, for trace/log rendering *)
  cache_hits : string list; (* interfaces installed from the build cache, sorted *)
  cache_misses : string list; (* interfaces fingerprinted but compiled cold, sorted *)
  cache_evictions : int; (* size-bound evictions in the shared cache during this run *)
  used_slices : (string * string list) list;
      (* per imported interface, the exported names this compilation
         actually resolved (or failed to resolve) there — the
         fine-grained dependency record Project's slice-level
         invalidation keys on; sorted, deterministic *)
  log : Evlog.record array; (* captured event log ([||] unless ~capture:true) *)
  events_logged : int;
  telemetry : Metrics.snapshot option; (* metrics registry dump (None unless ~telemetry:true) *)
  perturb_seed : int option; (* the config's exploration seed, echoed back *)
  robustness : robustness;
  deadlock : string list;
      (* the engine's deadlock report (blocked-task wait graph) when the
         run quiesced with tasks parked; [] on a clean run *)
}

(* Procedure bodies at least this big go to the long-procedure
   code-generation class (paper §2.3.4). *)
let long_threshold = 64

(* ------------------------------------------------------------------ *)
(* Shared per-compilation state *)

type comp = {
  cfg : config;
  store : Source_store.t;
  diags : Diag.t;
  stats : Lookup_stats.t;
  registry : Modreg.t;
  merger : Cunit.merger;
  cache : Build_cache.t option;
  (* per-compilation fingerprint memo; [fp_mu] guards the whole recursive
     computation (which never yields), so concurrent importers agree *)
  fp_memo : (string, string) Hashtbl.t;
  fp_mu : Mutex.t;
  mutable cache_hits : string list; (* interfaces installed from the cache *)
  mutable cache_misses : string list; (* interfaces fingerprinted but compiled *)
  missing : (string, unit) Hashtbl.t; (* interfaces with no source *)
  missing_mu : Mutex.t;
  streams : (int, Stream.proc_stream) Hashtbl.t;
  streams_mu : Mutex.t;
  mutable next_stream : int;
  mutable n_defs : int;
  mutable n_tasks : int;
  mutable task_names : (int * string * string) list; (* reversed (id, class, name) *)
  tasks_mu : Mutex.t;
  (* completion accounting: splitter hold + module body + per procedure
     stream + per definition-module stream; 0 => signal all_done *)
  mutable pending : int;
  pending_mu : Mutex.t;
  all_done : Event.t;
  mutable program : Cunit.program option;
  mutable total_tokens : int;
  mutable source_retries : int; (* injected source-read errors retried *)
}

let hold comp =
  Mutex.lock comp.pending_mu;
  comp.pending <- comp.pending + 1;
  Mutex.unlock comp.pending_mu

let release comp =
  Mutex.lock comp.pending_mu;
  comp.pending <- comp.pending - 1;
  let zero = comp.pending = 0 in
  Mutex.unlock comp.pending_mu;
  if zero then Eff.signal comp.all_done

let record_task comp (task : Task.t) =
  Mutex.lock comp.tasks_mu;
  comp.n_tasks <- comp.n_tasks + 1;
  comp.task_names <- (task.Task.id, Task.cls_name task.Task.cls, task.Task.name) :: comp.task_names;
  Mutex.unlock comp.tasks_mu;
  if Metrics.enabled () then
    Metrics.incr ~labels:[ ("cls", Task.cls_name task.Task.cls) ] "mcc_tasks_total"

let spawn comp task =
  record_task comp task;
  Eff.spawn task

let fresh_stream_id comp =
  Mutex.lock comp.streams_mu;
  let id = comp.next_stream in
  comp.next_stream <- id + 1;
  Mutex.unlock comp.streams_mu;
  id

let register_stream comp (ps : Stream.proc_stream) =
  Mutex.lock comp.streams_mu;
  Hashtbl.replace comp.streams ps.Stream.ps_id ps;
  Mutex.unlock comp.streams_mu

let find_stream comp id =
  Mutex.lock comp.streams_mu;
  let r = Hashtbl.find_opt comp.streams id in
  Mutex.unlock comp.streams_mu;
  r

let mark_missing comp name =
  Mutex.lock comp.missing_mu;
  Hashtbl.replace comp.missing name ();
  Mutex.unlock comp.missing_mu

let is_missing comp name =
  Mutex.lock comp.missing_mu;
  let r = Hashtbl.mem comp.missing name in
  Mutex.unlock comp.missing_mu;
  r

let count_tokens comp q =
  Mutex.lock comp.tasks_mu;
  comp.total_tokens <- comp.total_tokens + Tokq.total_tokens q;
  Mutex.unlock comp.tasks_mu;
  if Metrics.enabled () then
    Metrics.count "mcc_tokens_total" (float_of_int (Tokq.total_tokens q))

(* ------------------------------------------------------------------ *)
(* Definition-module streams *)

(* The once-only table (paper §3): "A 'once-only' table is used to
   guarantee that each definition module referenced in a compilation is
   processed exactly once."  [Modreg.intern] is that table; the creator
   spawns the stream — or, on a build-cache hit, installs the interface
   artifact right here, paying only the hash + probe + install charges,
   and signals the interface's avoided event instead of spawning its
   Lexor/Importer/DefParse tasks. *)
(* A poisoned import stream: the importer dies before its scan.  Safe to
   contain as a plain task failure — importers are pure prefetchers (the
   parser's own import callback re-derives every import), so the program
   is unaffected; the failure is recorded and counted as contained. *)
let poison_check name =
  if Fault.armed () && Fault.poison_import ~name then begin
    if Evlog.enabled () then
      Evlog.emit (Evlog.Fault_inject { fault = "poison-import"; victim = name });
    raise (Fault.Injected name)
  end

(* Read an interface's source, surviving injected source-store read
   errors: a transient error is retried after a virtual-time backoff
   (charged through Costs — recovery is not free), up to
   [Costs.retry_limit] attempts; a permanent one degrades to a precise
   diagnostic and the missing-interface path, never a hang. *)
let read_def comp name =
  let rec go attempt =
    if Fault.armed () && Fault.source_error ~name then begin
      if Evlog.enabled () then
        Evlog.emit (Evlog.Fault_inject { fault = "source-error"; victim = name });
      if attempt < Costs.retry_limit then begin
        Mutex.lock comp.tasks_mu;
        comp.source_retries <- comp.source_retries + 1;
        Mutex.unlock comp.tasks_mu;
        Eff.work Costs.retry_backoff;
        go (attempt + 1)
      end
      else begin
        Diag.error comp.diags ~file:(Source_store.def_file name) ~loc:Loc.none
          (Printf.sprintf "cannot read interface %s: injected I/O error (gave up after %d attempts)"
             name Costs.retry_limit);
        None
      end
    end
    else Source_store.def_src comp.store name
  in
  go 0

let rec ensure_def comp name : Symtab.t option =
  let scope, created = Modreg.intern comp.registry name in
  if created then begin
    match read_def comp name with
    | None ->
        mark_missing comp name;
        (* complete the empty scope so no searcher waits forever *)
        Symtab.mark_complete scope;
        None
    | Some src ->
        hold comp (* released when the interface's analysis finishes *);
        (match comp.cache with
        | None -> spawn_def_stream comp name scope src ~fp:None
        | Some cache -> (
            (* the fingerprint computation never yields, so holding the
               memo lock across it cannot block the cooperative engine *)
            Mutex.lock comp.fp_mu;
            let fp, units =
              Build_cache.interface_fp cache ~memo:comp.fp_memo ~store:comp.store name
            in
            Mutex.unlock comp.fp_mu;
            Eff.work (units + Costs.cache_probe);
            match Build_cache.find_interface cache ~fp with
            | Some art ->
                Mutex.lock comp.tasks_mu;
                comp.cache_hits <- name :: comp.cache_hits;
                Mutex.unlock comp.tasks_mu;
                (* first ensure what the skipped importer would have:
                   transitively reached interfaces must register and
                   contribute their frames exactly as they would cold *)
                List.iter (fun m -> ignore (ensure_def comp m)) art.Artifact.a_imports;
                Artifact.install art ~scope ~merger:comp.merger ~diags:comp.diags;
                release comp
            | None ->
                Mutex.lock comp.tasks_mu;
                comp.cache_misses <- name :: comp.cache_misses;
                Mutex.unlock comp.tasks_mu;
                spawn_def_stream comp name scope src ~fp:(Some fp)));
        Some scope
  end
  else if is_missing comp name then None
  else Some scope

and spawn_def_stream comp name scope src ~fp =
  Mutex.lock comp.tasks_mu;
  comp.n_defs <- comp.n_defs + 1;
  Mutex.unlock comp.tasks_mu;
  let file = Source_store.def_file name in
  let frame_key = name ^ "!def" in
  let q = Tokq.create ~name:("def:" ^ name) () in
  let lexor =
    Task.create ~cls:Task.Lexor ~name:("lexor:" ^ file) (fun () ->
        let lx = Lexer.create ~file src in
        let rec go () =
          let tok = Lexer.next lx in
          Tokq.put q tok;
          if not (Token.is_eof tok) then go ()
        in
        go ();
        Tokq.close q;
        count_tokens comp q)
  in
  let importer =
    Task.create ~cls:Task.Importer ~name:("importer:" ^ file) (fun () ->
        poison_check ("importer:" ^ file);
        Stream.run_importer ~rd:(Tokq.reader q) ~on_import:(fun m -> ignore (ensure_def comp m)))
  in
  let parse =
    Task.create ~cls:Task.DefParse ~name:("defparse:" ^ file) (fun () ->
        (* the interface's diagnostics are collected locally so that a
           capture can replay them on later cache hits; they merge into
           the compilation's collector either way (the final report is
           sorted, so collection order is immaterial) *)
        let local = Diag.create () in
        let imports = ref [] in
        let ctx =
          Ctx.make ~scope ~file ~diags:local ~strategy:comp.cfg.strategy ~stats:comp.stats
            ~registry:comp.registry ~frame_key ~path:name ~is_module_level:true ~is_def:true
        in
        let cb = callbacks comp in
        let cb =
          {
            cb with
            P.cb_import =
              (fun ctx mid ->
                let m = mid.A.name in
                if not (List.mem m !imports) then imports := m :: !imports;
                cb.P.cb_import ctx mid);
          }
        in
        let p = P.create ~cb (Tokq.reader q) in
        P.parse_def_module ctx p ~expected_name:name;
        let _, slots, size = Emit.frame_layout scope ~frame_key ~size:ctx.Ctx.next_slot in
        Cunit.add_frame comp.merger frame_key slots size;
        let diags = Diag.sorted local in
        List.iter (Diag.add_d comp.diags) diags;
        (match (comp.cache, fp) with
        | Some cache, Some fp ->
            Build_cache.store_interface cache
              (Artifact.capture ~name ~fingerprint:fp ~imports:(List.rev !imports) ~scope
                 ~frame:{ Artifact.f_key = frame_key; f_slots = slots; f_size = size }
                 ~diags)
        | _ -> ());
        release comp)
  in
  Symtab.set_producer scope parse.Task.id;
  spawn comp lexor;
  spawn comp importer;
  spawn comp parse

(* ------------------------------------------------------------------ *)
(* Parser callbacks for all concurrent streams *)

and callbacks comp : P.callbacks =
  {
    P.cb_import =
      (fun _ctx (mid : A.ident) ->
        match ensure_def comp mid.A.name with
        | None -> None
        | Some scope ->
            (* Avoidance strategy: never let a search reach an incomplete
               table — wait for the interface here, before any reference
               can be made (paper §2.2). *)
            if comp.cfg.strategy = Symtab.Avoidance then
              Eff.wait (Symtab.completion_event scope);
            Some scope);
    P.cb_heading =
      (fun _ctx info ~stream ->
        match find_stream comp stream with
        | None -> () (* unreachable: streams register before their mark *)
        | Some ps ->
            ps.Stream.ps_heading <- Some info;
            Eff.signal ps.Stream.ps_gate);
    P.cb_body =
      (fun gj ->
        (* the module body's frame must be merged before its unit can
           release the completion count *)
        (if gj.P.gj_sig = None then
           let ctx = gj.P.gj_ctx in
           let fk = ctx.Ctx.frame_key in
           let _, slots, size = Emit.frame_layout ctx.Ctx.scope ~frame_key:fk ~size:ctx.Ctx.next_slot in
           Cunit.add_frame comp.merger fk slots size);
        let cls = if gj.P.gj_size >= long_threshold then Task.LongGen else Task.ShortGen in
        spawn comp
          (Task.create ~cls ~size_hint:gj.P.gj_size ~name:("gen:" ^ gj.P.gj_key) (fun () ->
               let u = Emit.emit_job gj in
               Cunit.add_unit comp.merger u;
               release comp)));
  }

(* ------------------------------------------------------------------ *)
(* Procedure streams *)

let spawn_proc_parse comp (ps : Stream.proc_stream) =
  let gate =
    match (comp.cfg.strategy, comp.cfg.heading) with
    | Symtab.Avoidance, _ ->
        (* semantic analysis of a scope starts only after its parent
           scope's declaration analysis completes *)
        Option.map Symtab.completion_event ps.Stream.ps_scope.Symtab.parent
    | _, Alt1 -> Some ps.Stream.ps_gate
    | _, Alt3 -> None
  in
  let task =
    Task.create ~cls:Task.ProcParse ?gate ~name:("procparse:" ^ ps.Stream.ps_path) (fun () ->
        let ctx =
          Ctx.make ~scope:ps.Stream.ps_scope ~file:(Source_store.main_file comp.store)
            ~diags:comp.diags ~strategy:comp.cfg.strategy ~stats:comp.stats
            ~registry:comp.registry ~frame_key:"" ~path:ps.Stream.ps_path ~is_module_level:false
            ~is_def:false
        in
        let p = P.create ~cb:(callbacks comp) (Tokq.reader ps.Stream.ps_q) in
        let heading =
          match comp.cfg.heading with
          | Alt1 -> ps.Stream.ps_heading (* gate guarantees presence *)
          | Alt3 -> None
        in
        (* under Avoidance + Alt3 the heading may be available anyway;
           Alt3 semantics is to re-derive it regardless *)
        P.parse_proc_stream ctx p ~heading ~key:ps.Stream.ps_path)
  in
  Symtab.set_producer ps.Stream.ps_scope task.Task.id;
  spawn comp task

(* ------------------------------------------------------------------ *)
(* Compilation *)

(* Build the per-compilation state and the bootstrap task that wires the
   whole task graph of Fig. 5; shared by both execution engines. *)
let prepare config cache (store : Source_store.t) =
  let m = Source_store.main_name store in
  let comp =
    {
      cfg = config;
      store;
      diags = Diag.create ();
      stats = Lookup_stats.create ();
      registry = Modreg.create ();
      merger = Cunit.merger ();
      cache;
      fp_memo = Hashtbl.create 16;
      fp_mu = Mutex.create ();
      cache_hits = [];
      cache_misses = [];
      missing = Hashtbl.create 8;
      missing_mu = Mutex.create ();
      streams = Hashtbl.create 32;
      streams_mu = Mutex.create ();
      next_stream = 1;
      n_defs = 0;
      n_tasks = 0;
      task_names = [];
      tasks_mu = Mutex.create ();
      pending = 2 (* splitter hold + module body *);
      pending_mu = Mutex.create ();
      all_done = Event.create ~kind:Event.Handled "all-units-done";
      program = None;
      total_tokens = 0;
      source_retries = 0;
    }
  in
  (* The compiler optimistically anticipates the existence of M.def
     (paper §3): its scope, when present, is the parent of the main
     module's scope. *)
  let init_tasks = ref [] in
  let initial task = init_tasks := task :: !init_tasks in

  (* this runs as the first task so every spawn happens inside the engine *)
  let bootstrap () =
    let own_def =
      if Source_store.has_def store m then ensure_def comp m else None
    in
    let main_scope = Symtab.create ?parent:own_def (Symtab.KMain m) in
    let mod_ctx =
      Ctx.make ~scope:main_scope ~file:(Source_store.main_file store) ~diags:comp.diags
        ~strategy:config.strategy ~stats:comp.stats ~registry:comp.registry ~frame_key:m ~path:m
        ~is_module_level:true ~is_def:false
    in
    let raw_q = Tokq.create ~name:("mod:" ^ m) () in
    let stripped_q = Tokq.create ~name:("mod-stripped:" ^ m) () in
    let lexor =
      Task.create ~cls:Task.Lexor ~name:("lexor:" ^ Source_store.main_file store) (fun () ->
          let lx = Lexer.create ~file:(Source_store.main_file store) (Source_store.main_src store) in
          let rec go () =
            let tok = Lexer.next lx in
            Tokq.put raw_q tok;
            if not (Token.is_eof tok) then go ()
          in
          go ();
          Tokq.close raw_q;
          count_tokens comp raw_q)
    in
    let splitter =
      Task.create ~cls:Task.Splitter ~name:("splitter:" ^ m) (fun () ->
          Stream.run_splitter ~rd:(Tokq.reader raw_q) ~out:stripped_q ~root_scope:main_scope
            ~root_path:m
            ~next_id:(fun () -> fresh_stream_id comp)
            ~on_stream:(fun ps ->
              register_stream comp ps;
              hold comp (* released by the stream's code generator *);
              spawn_proc_parse comp ps);
          release comp (* the splitter hold *))
    in
    let importer =
      Task.create ~cls:Task.Importer ~name:("importer:" ^ m) (fun () ->
          poison_check ("importer:" ^ m);
          Stream.run_importer ~rd:(Tokq.reader raw_q) ~on_import:(fun name ->
              ignore (ensure_def comp name)))
    in
    let modparse =
      Task.create ~cls:Task.ModParse ~name:("modparse:" ^ m) (fun () ->
          (* under Avoidance, the module's own interface is this scope's
             parent and must be complete before analysis starts *)
          (match (config.strategy, own_def) with
          | Symtab.Avoidance, Some d -> Eff.wait (Symtab.completion_event d)
          | _ -> ());
          let p = P.create ~cb:(callbacks comp) (Tokq.reader stripped_q) in
          P.parse_impl_module mod_ctx p ~expected_name:m)
    in
    Symtab.set_producer main_scope modparse.Task.id;
    let merge =
      Task.create ~cls:Task.Merge ~gate:comp.all_done ~name:("merge:" ^ m) (fun () ->
          comp.program <- Some (Cunit.finish comp.merger ~entry:m))
    in
    List.iter (spawn comp) [ lexor; splitter; importer; modparse; merge ]
  in
  initial (Task.create ~cls:Task.Aux ~name:"bootstrap" bootstrap);
  (comp, List.rev !init_tasks)

let finish_program comp ~entry =
  match comp.program with
  | Some p -> p
  | None -> Cunit.link ~entry ~frames:[] [] (* deadlock: empty program *)

(* Compile on the deterministic simulated multiprocessor.  [~capture]
   records the structured concurrency event log (see Mcc_sched.Evlog) for
   the happens-before analyzer; [~telemetry] accumulates the
   virtual-time metrics registry over the run.  The default path does no
   logging or metrics work, and neither option perturbs virtual time. *)
let compile ?(config = default_config) ?(capture = false) ?(telemetry = false) ?cache
    (store : Source_store.t) : result =
  let m = Source_store.main_name store in
  let comp, init_tasks = prepare config cache store in
  let corrupt0 = match cache with Some c -> Build_cache.corrupt_count c | None -> 0 in
  let evict0 = match cache with Some c -> Build_cache.eviction_count c | None -> 0 in
  let run () =
    Des_engine.run ~beta:config.beta ~fifo:config.fifo_sched ?perturb:config.perturb
      ~procs:config.procs init_tasks
  in
  let run () =
    (* arm the configured fault plan around the engine run only; an
       externally armed plan (the explorer's) stays in force otherwise *)
    if config.faults = [] then run ()
    else Fault.with_plan (Fault.plan ~seed:config.fault_seed config.faults) run
  in
  let run_logged () = if capture then Evlog.capture run else (run (), [||]) in
  let (sim, log), telem =
    if telemetry then
      let sim_log, snap = Metrics.with_registry run_logged in
      (sim_log, Some snap)
    else (run_logged (), None)
  in
  (* Partition task failures: injected ones are the fault plan's doing
     and are recovered from (contained, or repaired below); real
     exceptions keep their compiler-bug diagnostics. *)
  let injected_failures, real_failures =
    List.partition
      (fun (_, e) -> match e with Fault.Injected _ -> true | _ -> false)
      sim.Des_engine.failures
  in
  List.iter
    (fun (name, e) ->
      Diag.error comp.diags ~file:name ~loc:Loc.none
        (Printf.sprintf "compiler task failed: %s" (Printexc.to_string e)))
    real_failures;
  (* Self-healing: when injected faults cost us the merged program (a
     quarantined stream never released the completion count, or the
     merge task itself was lost), degrade gracefully — recompile the
     whole program on the sequential path, which by construction
     produces byte-identical object code and diagnostics to a
     fault-free concurrent run.  A deadlock with no faults in play
     keeps its genuine diagnostic. *)
  let fallback = comp.program = None && sim.Des_engine.injected > 0 in
  let seq_result = if fallback then Some (Seq_driver.compile store) else None in
  (match sim.Des_engine.outcome with
  | Des_engine.Completed -> ()
  | Des_engine.Deadlocked _ when fallback || sim.Des_engine.injected > 0 ->
      (* fault debris, not a circular-import bug: the report is still
         surfaced through [result.deadlock] *)
      ()
  | Des_engine.Deadlocked stuck ->
      Diag.error comp.diags ~file:(Source_store.main_file store) ~loc:Loc.none
        (Printf.sprintf "compilation deadlocked (circular imports?): %s"
           (String.concat "; " stuck)));
  let program, diags, ok =
    match seq_result with
    | Some (seq : Seq_driver.result) -> (seq.Seq_driver.program, seq.Seq_driver.diags, seq.Seq_driver.ok)
    | None ->
        let program = finish_program comp ~entry:m in
        (program, Diag.sorted comp.diags, not (Diag.has_errors comp.diags))
  in
  let robustness =
    {
      r_injected = sim.Des_engine.injected;
      r_retries = sim.Des_engine.retries;
      r_quarantined = sim.Des_engine.quarantined;
      r_stalls = sim.Des_engine.stalls;
      r_watchdog_fires = sim.Des_engine.watchdog_fires;
      r_recovered_wakes = sim.Des_engine.recovered_wakes;
      r_corrupt_rebuilds =
        (match cache with Some c -> Build_cache.corrupt_count c - corrupt0 | None -> 0);
      r_source_retries = comp.source_retries;
      r_contained = List.length injected_failures;
      r_seq_fallbacks = (if fallback then 1 else 0);
    }
  in
  let n_procs = Hashtbl.length comp.streams in
  {
    program;
    diags;
    ok;
    sim;
    stats = comp.stats;
    n_proc_streams = n_procs;
    n_def_streams = comp.n_defs;
    n_streams = 1 + n_procs + comp.n_defs;
    n_tasks = comp.n_tasks;
    tokens = comp.total_tokens;
    task_list = List.rev_map (fun (_, cls, name) -> (cls, name)) comp.task_names;
    task_index = List.rev_map (fun (id, _, name) -> (id, name)) comp.task_names;
    cache_hits = List.sort compare comp.cache_hits;
    cache_misses = List.sort compare comp.cache_misses;
    cache_evictions =
      (match cache with Some c -> Build_cache.eviction_count c - evict0 | None -> 0);
    used_slices = Lookup_stats.used_slices comp.stats;
    log;
    events_logged = Array.length log;
    telemetry = telem;
    perturb_seed = config.perturb;
    robustness;
    deadlock =
      (match sim.Des_engine.outcome with
      | Des_engine.Deadlocked stuck -> stuck
      | Des_engine.Completed -> []);
  }

(* Render the instantiated task structure (the realization of the
   paper's Figure 5 for this compilation), grouped by task class in
   Supervisor priority order. *)
let dump_tasks (r : result) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun cls ->
      let name = Task.cls_name cls in
      let members = List.filter (fun (c, _) -> c = name) r.task_list in
      if members <> [] then begin
        Buffer.add_string buf (Printf.sprintf "%-10s (%d)\n" name (List.length members));
        List.iter (fun (_, n) -> Buffer.add_string buf (Printf.sprintf "    %s\n" n))
          (List.sort compare members)
      end)
    [ Task.Lexor; Task.Splitter; Task.Importer; Task.DefParse; Task.ModParse; Task.ProcParse;
      Task.LongGen; Task.ShortGen; Task.Merge; Task.Aux ];
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Real shared-memory execution: the same task graph on OCaml domains. *)

type domain_result = {
  d_program : Cunit.program;
  d_diags : Diag.d list;
  d_ok : bool;
  d_wall_seconds : float;
  d_tasks_run : int;
  d_deadlocked : bool;
  d_stats : Lookup_stats.t;
}

let compile_domains ?(config = default_config) ?cache ~domains (store : Source_store.t) :
    domain_result =
  let m = Source_store.main_name store in
  let comp, init_tasks = prepare config cache store in
  let r = Domain_engine.run ~domains init_tasks in
  let deadlocked = match r.Domain_engine.outcome with Domain_engine.Deadlocked _ -> true | _ -> false in
  if deadlocked then
    Diag.error comp.diags ~file:(Source_store.main_file store) ~loc:Loc.none
      "compilation deadlocked (circular imports?)";
  List.iter
    (fun (name, e) ->
      Diag.error comp.diags ~file:name ~loc:Loc.none
        (Printf.sprintf "compiler task failed: %s" (Printexc.to_string e)))
    r.Domain_engine.failures;
  {
    d_program = finish_program comp ~entry:m;
    d_diags = Diag.sorted comp.diags;
    d_ok = not (Diag.has_errors comp.diags);
    d_wall_seconds = r.Domain_engine.wall_seconds;
    d_tasks_run = r.Domain_engine.tasks_run;
    d_deadlocked = deadlocked;
    d_stats = comp.stats;
  }
