module Symtab = Mcc_sem.Symtab

let procs_min = 1
let procs_max = 64

let parse_procs n =
  if n >= procs_min && n <= procs_max then Ok n
  else Error (Printf.sprintf "invalid processor count %d: must be in %d..%d" n procs_min procs_max)

let parse_procs_list = function
  | [] -> Error "empty processor list"
  | ps -> (
      match List.find_opt (fun p -> Result.is_error (parse_procs p)) ps with
      | Some bad -> (
          match parse_procs bad with Error e -> Error e | Ok _ -> assert false)
      | None -> Ok ps)

let parse_positive ~what n =
  if n > 0 then Ok n else Error (Printf.sprintf "invalid %s %d: must be positive" what n)

let parse_heading = function
  | 1 -> Ok Driver.Alt1
  | 3 -> Ok Driver.Alt3
  | n -> Error (Printf.sprintf "invalid heading alternative %d: must be 1 or 3" n)

let parse_strategy s =
  match List.find_opt (fun d -> Symtab.dky_name d = s) Symtab.all_concurrent with
  | Some d -> Ok d
  | None ->
      Error
        (Printf.sprintf "unknown strategy %S: must be %s" s
           (String.concat ", " (List.map Symtab.dky_name Symtab.all_concurrent)))

let parse_matrix spec =
  match String.split_on_char ':' spec with
  | [ strats; procs ] -> (
      let strategies =
        if strats = "all" then Ok Symtab.all_concurrent
        else
          List.fold_right
            (fun name acc ->
              match (parse_strategy name, acc) with
              | Ok d, Ok ds -> Ok (d :: ds)
              | (Error _ as e), _ -> e
              | _, (Error _ as e) -> e)
            (List.filter (fun s -> s <> "") (String.split_on_char ',' strats))
            (Ok [])
      in
      let procs_list =
        List.fold_right
          (fun tok acc ->
            match (int_of_string_opt tok, acc) with
            | Some p, Ok ps -> ( match parse_procs p with Ok p -> Ok (p :: ps) | Error e -> Error e)
            | None, Ok _ -> Error (Printf.sprintf "invalid processor count %S in matrix" tok)
            | _, (Error _ as e) -> e)
          (List.filter (fun s -> s <> "") (String.split_on_char ',' procs))
          (Ok [])
      in
      match (strategies, procs_list) with
      | Ok [], _ -> Error (Printf.sprintf "matrix %S lists no strategies" spec)
      | _, Ok [] -> Error (Printf.sprintf "matrix %S lists no processor counts" spec)
      | Ok ss, Ok ps -> Ok (ss, ps)
      | Error e, _ | _, Error e -> Error (Printf.sprintf "invalid matrix %S: %s" spec e))
  | _ -> Error (Printf.sprintf "invalid matrix %S: expected STRATEGIES:PROCS, e.g. all:1,2,8" spec)

let parse_counts spec =
  let toks = List.filter (fun s -> s <> "") (String.split_on_char ',' spec) in
  if toks = [] then
    Error
      (Printf.sprintf "invalid counts %S: expected a comma-separated list, e.g. 100,1000,10000"
         spec)
  else
    List.fold_right
      (fun tok acc ->
        match (int_of_string_opt tok, acc) with
        | Some n, Ok ns when n > 0 -> Ok (n :: ns)
        | Some n, Ok _ -> Error (Printf.sprintf "invalid count %d in %S: must be positive" n spec)
        | None, Ok _ -> Error (Printf.sprintf "invalid count %S in counts %S" tok spec)
        | _, (Error _ as e) -> e)
      toks (Ok [])

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let load_module path =
  let base = Filename.basename path in
  if not (Filename.check_suffix base ".mod") then
    Error (Printf.sprintf "%s: expected a .mod file" path)
  else if not (Sys.file_exists path) then Error (Printf.sprintf "%s: no such file" path)
  else
    let dir = Filename.dirname path in
    let main_name = Filename.chop_suffix base ".mod" in
    match M2lib.augment (Source_store.of_directory ~dir ~main_name) with
    | store -> Ok store
    | exception Sys_error e ->
        Error (if contains ~sub:path e then e else path ^ ": " ^ e)
