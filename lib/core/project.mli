(** Whole-program compilation: the "parallel make" layer above the
    concurrent compiler.

    Compiles the main module plus every imported module whose
    implementation is in the store — each with the full concurrent
    compiler — and links all code units into one executable program with
    Modula-2 initialization order (an imported module's body runs before
    its importer's; the main module's last).  Interface frames are
    deduplicated by key; the result is schedule-independent like the
    single-module merge (paper §2.1).

    With a {!cache} the layer is incremental at two granularities.
    Whole-module: a module whose own source, configuration and
    transitive interface fingerprints are unchanged is restored from its
    cached per-module result.  Slice-level (the default, after Smits,
    Konat & Visser's hybrid incremental compilers): when the
    whole-module key misses because an interface changed, the module is
    dirty only if a declaration it actually {e used} changed — an
    interface refresh prepass re-analyzes edited interfaces and
    propagation stops with an {e early cutoff} wherever the regenerated
    interface shape is byte-identical to the cached one. *)

open Mcc_m2
open Mcc_codegen

(** One dependency of a cached module result on an interface it reached:
    the interface's install digest ([None] if the interface was missing)
    plus a digest per exported name the compilation probed there.
    Probes that missed are negative dependencies, recorded with a
    reserved absent marker. *)
type dep = {
  dep_name : string;
  dep_install : string option;
  dep_slices : (string * string) list;
}

(** A memoized per-module compilation: the result, the digest of the
    implementation source it was built from, and its fine-grained
    dependency record. *)
type entry = {
  e_result : Driver.result;
  e_src_digest : string;
  e_deps : dep list;
}

(** A project-level cache: the shared interface store plus the
    per-module result memo. *)
type cache = { bc : Build_cache.t; memo : entry Build_cache.memo }

(** [cache ?dir ()] — with [dir], persisted interface artifacts and
    whole-module results are loaded now and {!save} writes them back, so
    successive [m2c build] processes reuse each other's work. *)
val cache : ?dir:string -> unit -> cache

(** Persist the interface store and the module memo to the cache's
    directory (a no-op for an in-memory cache). *)
val save : cache -> unit

type result = {
  program : Cunit.program;
  diags : Diag.d list;
  ok : bool;
  modules : (string * Driver.result) list;  (** per-module results, in init order *)
  total_units : float;
      (** summed virtual compile time across recompiled modules plus
          [reuse_units] and [refresh_units] — equals the cacheless total
          when nothing is reused *)
  reused : string list;  (** modules restored from the cache, in init order *)
  recompiled : string list;  (** modules compiled this call, in init order *)
  reuse_units : float;  (** hash + probe work charged for reuse checks *)
  refresh_units : float;
      (** virtual time of the interface refresh prepass (0 when no
          interface edits were detected, or in whole-module mode) *)
  cutoffs : string list;
      (** interfaces where invalidation stopped early — edited or
          recompiled, but with a regenerated shape byte-identical to the
          cached artifact's; sorted *)
  iface_changes : (string * string list) list;
      (** per edited interface whose shape really changed, the exported
          names whose slice digests moved; sorted by interface *)
  explain : (string * string) list;
      (** per module in init order, a one-line reuse/rebuild reason *)
}

(** Module initialization order for the store (imports before importers,
    main last), restricted to modules with implementations. *)
val init_order : Source_store.t -> string list

(** The configuration component of a module cache key (interface
    artifacts are configuration-independent; cached module results,
    which embed simulated timings, are not). *)
val config_tag : Driver.config -> string

(** Compile the whole store.  [fine] (default [true]) enables
    slice-level invalidation and early cutoff; [~fine:false] restricts
    the cache to whole-module key matching — the baseline the
    fine-grained benchmark compares against. *)
val compile : ?config:Driver.config -> ?fine:bool -> ?cache:cache -> Source_store.t -> result
