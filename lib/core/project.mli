(** Whole-program compilation: the "parallel make" layer above the
    concurrent compiler.

    Compiles the main module plus every imported module whose
    implementation is in the store — each with the full concurrent
    compiler — and links all code units into one executable program with
    Modula-2 initialization order (an imported module's body runs before
    its importer's; the main module's last).  Interface frames are
    deduplicated by key; the result is schedule-independent like the
    single-module merge (paper §2.1).

    With a {!cache} the layer is incremental: modules whose own source,
    configuration and transitive interface fingerprints are unchanged
    are restored from cached per-module results, and recompiled modules
    install unchanged interfaces from artifacts. *)

open Mcc_m2
open Mcc_codegen

(** A project-level cache: the shared interface store plus the
    per-module result memo. *)
type cache = { bc : Build_cache.t; memo : Driver.result Build_cache.memo }

(** [cache ?dir ()] — with [dir], persisted interface artifacts are
    loaded now and [Build_cache.save cache.bc] writes them back.
    Module results are in-memory only (they embed engine state). *)
val cache : ?dir:string -> unit -> cache

type result = {
  program : Cunit.program;
  diags : Diag.d list;
  ok : bool;
  modules : (string * Driver.result) list;  (** per-module results, in init order *)
  total_units : float;
      (** summed virtual compile time across recompiled modules plus
          [reuse_units] — equals the cacheless total when nothing is
          reused *)
  reused : string list;  (** modules restored from the cache, in init order *)
  recompiled : string list;  (** modules compiled this call, in init order *)
  reuse_units : float;  (** hash + probe work charged for reuse checks *)
}

(** Module initialization order for the store (imports before importers,
    main last), restricted to modules with implementations. *)
val init_order : Source_store.t -> string list

(** The configuration component of a module cache key (interface
    artifacts are configuration-independent; cached module results,
    which embed simulated timings, are not). *)
val config_tag : Driver.config -> string

val compile : ?config:Driver.config -> ?cache:cache -> Source_store.t -> result
