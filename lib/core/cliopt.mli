(** Strict CLI argument validation, shared by [m2c] and the test suite.

    Every function returns [Error msg] with a message that names the
    offending value (and, for {!load_module}, the file), so the CLI
    exits non-zero with a precise complaint instead of silently
    clamping or defaulting — a malformed [--procs 0] used to compile
    on 1 processor, and [--heading 7] used to mean alternative 1. *)

val procs_min : int
val procs_max : int

(** Simulated processor count, [1..64]. *)
val parse_procs : int -> (int, string) result

(** A non-empty processor-count list, each in [1..64]. *)
val parse_procs_list : int list -> (int list, string) result

(** A strictly positive count; [what] names the option in the error
    (e.g. ["--clients"]). *)
val parse_positive : what:string -> int -> (int, string) result

(** Procedure-heading alternative: [1] or [3] only (paper §2.4 defines
    no alternative 2 worth running). *)
val parse_heading : int -> (Driver.heading_mode, string) result

(** A DKY strategy name ([avoidance], [pessimistic], [skeptical],
    [optimistic]). *)
val parse_strategy : string -> (Mcc_sem.Symtab.dky, string) result

(** A conformance matrix spec ["STRATS:PROCS"], e.g.
    ["skeptical,optimistic:1,2,8"] or ["all:1,2,4,8"]; [STRATS] is
    [all] or a comma-separated strategy list, [PROCS] a comma-separated
    processor list. *)
val parse_matrix : string -> (Mcc_sem.Symtab.dky list * int list, string) result

(** A non-empty comma-separated list of strictly positive module
    counts, e.g. ["100,1000,10000"] (the [m2c zoo --counts] sweep). *)
val parse_counts : string -> (int list, string) result

(** Load [FILE.mod] plus its sibling interfaces, with the bundled
    library modules available ({!M2lib.augment}).  Errors (wrong
    extension, missing or unreadable file) always name the path. *)
val load_module : string -> (Source_store.t, string) result
