(** The content-addressed build cache.

    The {e interface store} maps content fingerprints to interface
    artifacts; a fingerprint digests the artifact format version, the
    definition module's source and the fingerprints of its direct
    imports — transitively covering every interface it depends on.
    [Driver.config] is excluded: compiler output is strategy-,
    schedule- and processor-independent, so one artifact serves every
    configuration.  The {e module memo} maps whole-module keys (which
    {e do} include a configuration tag, because cached results embed
    simulated timings) to per-module compilation results, for
    [Project]'s incremental layer.

    No function here calls [Eff.work]: fingerprinting runs inside
    engine tasks under the caller's memo lock, where a yield would
    block the cooperative engine.  The hashing work is returned as
    units for the caller to charge. *)

(** {1 The interface store} *)

type t

(** [create ?dir ?cap_bytes ()] makes an empty cache; with [dir],
    previously {!save}d interface artifacts are loaded from it (missing,
    stale or unreadable files are ignored) and the type-uid counter is
    bumped past every unmarshalled uid.  With [cap_bytes], the store is
    size-bounded: whenever the marshaled sizes of the stored artifacts
    exceed the bound, least-recently-used entries are evicted (counted
    by {!eviction_count}, never counted as invalidations) — except the
    entry just stored, so one oversized artifact still caches. *)
val create : ?dir:string -> ?cap_bytes:int -> unit -> t

(** Persist the interface store under the creation [dir] as a single
    Marshal blob (preserving value sharing between artifacts).  No-op
    without a [dir]. *)
val save : t -> unit

(** Direct imports of a source text, by a charge-free re-implementation
    of the importer's scan, memoized by source digest. *)
val imports_of : t -> string -> string list

(** The hashing work for [len] source bytes, in virtual units. *)
val hash_units : int -> int

(** [interface_fp t ~memo ~store name] returns the interface's content
    fingerprint and the uncharged hashing units this call performed.
    [memo] (module name to fingerprint) is owned by one compilation and
    guarded by its owner; a missing interface fingerprints as a
    distinct "missing" marker, and circular imports terminate via a
    provisional cycle marker. *)
val interface_fp :
  t -> memo:(string, string) Hashtbl.t -> store:Source_store.t -> string -> string * int

(** Look up an artifact by fingerprint; counts a hit or miss.  The
    probe verifies before handing anything to the install path: the key
    must equal the artifact's recorded fingerprint and the stored digest
    must match a payload recomputation (an armed [Fault] plan can also
    declare the artifact corrupt).  A failure evicts the entry, counts
    corruption + an invalidation, and reports a miss, so the caller
    rebuilds from source and heals the cache. *)
val find_interface : t -> fp:string -> Artifact.t option

(** Store an artifact; if the interface's previous fingerprint differs,
    counts an invalidation and drops the stale artifact. *)
val store_interface : t -> Artifact.t -> unit

(** All stored artifacts, sorted by module name. *)
val interfaces : t -> Artifact.t list

(** The most recently stored artifact for an interface name — the
    fine-grained reuse check's view of the interface as it is now.
    Counter-free. *)
val latest_artifact : t -> string -> Artifact.t option

(** (hits, misses, invalidations) of the interface store. *)
val counters : t -> int * int * int

(** Entries evicted by the [cap_bytes] size bound (capacity management:
    not invalidations, not corruption). *)
val eviction_count : t -> int

(** Current marshaled size of the interface store, in bytes. *)
val total_bytes : t -> int

(** Artifacts dropped by digest verification (on {!find_interface}
    probes and at load time); each probe-time drop is also counted in
    the invalidations of {!counters}. *)
val corrupt_count : t -> int

(** {1 Conformance-canary hooks}

    Used only by the differential conformance harness ({!Mcc_check}) to
    prove its oracle catches real corruption: {!tamper} plants a bogus
    replayed diagnostic in the stored artifact for [name] without
    updating the payload digest, and {!set_verification} [false]
    disables probe-time digest verification so the tampering installs
    instead of healing.  Always restore verification afterwards. *)

val set_verification : bool -> unit
val tamper : t -> name:string -> unit

(** {1 The module-result memo} *)

type 'r memo

(** [memo ?cap ()] makes an empty module memo.  With [cap], the memo is
    bounded to that many entries, evicted cost-aware (GreedyDual): each
    entry's priority is [L + cost] where [cost] is the recompute cost
    passed to {!store_module} and [L] a monotone inflation level raised
    to each victim's priority; hits refresh an entry's priority.  Cheap,
    long-idle results go first; with uniform costs this is LRU. *)
val memo : ?cap:int -> unit -> 'r memo

(** [module_key t ~memo ~config_tag store] is the whole-module cache key
    of [store]'s main module (the module-focused view: its main source
    is the implementation), plus uncharged hashing units.  Digests the
    configuration tag, the implementation source, and the interface
    fingerprints of the module's own definition and direct imports. *)
val module_key :
  t -> memo:(string, string) Hashtbl.t -> config_tag:string -> Source_store.t -> string * int

(** Look up a module result by key; counts a hit or miss. *)
val find_module : 'r memo -> string -> 'r option

(** The module's most recently stored (key, result) regardless of key —
    the fine-grained check's previous-build baseline.  Counter-free. *)
val find_latest_module : 'r memo -> name:string -> (string * 'r) option

(** Store a module result; if the module's previous key differs, counts
    an invalidation and drops the stale result.  [cost] (default 1.0) is
    the entry's recompute cost for cost-aware eviction — callers pass
    the simulated seconds the compile took. *)
val store_module : ?cost:float -> 'r memo -> name:string -> key:string -> 'r -> unit

(** (hits, misses, invalidations) of the module memo. *)
val memo_counters : 'r memo -> int * int * int

(** Entries evicted by the memo's [cap] bound. *)
val memo_eviction_count : 'r memo -> int

(** Fill [memo] from the cache's directory (written by {!save_memo}); a
    no-op without a directory, on a missing/unreadable file, or on a
    format-version mismatch, and entries that fail to unmarshal are
    dropped individually.  [decode] post-processes each loaded entry
    (e.g. re-arming locks stripped for serialization).  The payload is
    marshaled untyped — the version tag is the only format guard, so the
    persisted result type must only change together with a version
    bump. *)
val load_memo : ?decode:('r -> 'r) -> t -> 'r memo -> unit

(** Persist [memo] next to the interface artifacts; a no-op without a
    directory.  [encode] pre-processes each entry into a marshal-safe
    form; an entry that still fails to marshal is skipped, not fatal. *)
val save_memo : ?encode:('r -> 'r) -> t -> 'r memo -> unit
