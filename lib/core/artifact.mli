(** Self-contained interface artifacts.

    Everything a definition-module stream produces — exported symbols,
    the interface's global frame layout, its diagnostics and its direct
    imports — packaged under a content fingerprint so a later
    compilation can install the interface instead of re-running its
    Lexor/Importer/DefParse stream (the cross-compilation extension of
    the paper's once-only table, §2.1).

    Artifacts are deeply immutable after capture and contain no events,
    mutexes or closures: they are safe to share across compilations
    in-memory and to Marshal for on-disk persistence. *)

open Mcc_m2
open Mcc_sem
open Mcc_codegen

(** A module-level global frame: key, slot descriptors, size. *)
type frame = { f_key : string; f_slots : (int * Tydesc.t) list; f_size : int }

type t = {
  a_name : string;
  a_fingerprint : string;  (** content fingerprint, hex ({!Build_cache}) *)
  a_imports : string list;  (** direct imports, in source order *)
  a_symbols : Symbol.t list;  (** exported entries, (offset, name)-sorted *)
  a_slices : (string * string) list;
      (** per-declaration slice digests, name-sorted: equal across
          compilations exactly when the declaration's interface is
          unchanged (structural rendering, never type uids) *)
  a_install : string;
      (** stable digest over imports + frame + diagnostics: what
          installing the artifact does to a compilation regardless of
          which names are looked up *)
  a_shape : string;
      (** stable whole-interface digest (install + slices): the early
          cutoff comparison — identical shape means downstream
          invalidation stops here *)
  a_frame : frame;
  a_diags : Diag.d list;  (** diagnostics of the interface's analysis, sorted *)
  a_digest : string;  (** MD5 over the payload fields above, set at capture *)
}

(** The stable digest of one exported declaration's interface. *)
val slice_digest : Symbol.t -> string

(** The slice digest recorded for an exported name, if any. *)
val slice : t -> string -> string option

(** Recompute the payload digest of [t] (everything but [a_digest]). *)
val digest : t -> string

(** [verify t] is true when [t]'s stored digest matches a recomputation
    — false after bit-rot, truncation or tampering. *)
val verify : t -> bool

(** Capture a just-completed definition-module scope.
    @raise Invalid_argument if the scope is incomplete. *)
val capture :
  name:string ->
  fingerprint:string ->
  imports:string list ->
  scope:Symtab.t ->
  frame:frame ->
  diags:Diag.d list ->
  t

(** Replay the interface into a freshly interned scope: charge the
    install work, re-enter the symbols, merge the frame, replay the
    diagnostics and complete the scope (signaling its avoided event).
    The caller must ensure [a_imports] first, so transitively reached
    interfaces contribute their frames as they would cold. *)
val install : t -> scope:Symtab.t -> merger:Cunit.merger -> diags:Diag.t -> unit

(** The largest type uid reachable from the artifact's symbols — the
    loader's input to {!Types.bump_uid_floor}. *)
val max_uid : t -> int
