(** The concurrent compilation driver: the paper's system assembled.

    Wires the task graph of Fig. 5 for one compilation unit — the main
    module stream (Lexor, Splitter, Importer, Module Parser/Declarations
    Analyzer, Statement Analyzer/Code Generator), one gated stream per
    procedure, one stream per directly or indirectly imported interface
    via the once-only table, and a Merge task — then runs it on an
    execution engine: {!compile} on the deterministic simulated
    multiprocessor, {!compile_domains} on real OCaml domains. *)

open Mcc_m2
open Mcc_sem
open Mcc_codegen

(** Procedure-heading information flow (paper §2.4): [Alt1] processes
    the heading in the parent scope and copies the entries to the gated
    child; [Alt3] lets the ungated child re-derive identical entries. *)
type heading_mode = Alt1 | Alt3

type config = {
  strategy : Symtab.dky;
  heading : heading_mode;
  procs : int;  (** simulated processors *)
  beta : float;  (** memory-bus contention coefficient *)
  fifo_sched : bool;  (** ablation: disable the Supervisor's priorities (paper §2.3.4) *)
  perturb : int option;
      (** schedule-exploration seed: randomize ready-queue tie-breaking
          (see {!Mcc_sched.Supervisor.create}); [None] = canonical *)
  faults : Mcc_sched.Fault.spec list;
      (** fault plan armed around the engine run; [[]] = no injection
          (an externally armed plan, e.g. the explorer's, stays armed) *)
  fault_seed : int;  (** seed deriving the plan's firing decisions *)
}

(** 8 processors, skeptical handling, alternative 1, calibrated beta,
    no faults. *)
val default_config : config

(** Robustness counters: what the recovery layer did about injected (or
    real) faults during one compilation. *)
type robustness = {
  r_injected : int;  (** faults fired by the armed plan during the run *)
  r_retries : int;  (** crashed-at-start tasks redispatched after backoff *)
  r_quarantined : string list;  (** tasks permanently failed *)
  r_stalls : int;  (** injected stalled-worker delays *)
  r_watchdog_fires : int;  (** occurred events whose lost wakes were re-delivered *)
  r_recovered_wakes : int;  (** parked tasks the watchdog woke *)
  r_corrupt_rebuilds : int;  (** cache artifacts dropped by verification, rebuilt *)
  r_source_retries : int;  (** source-store read errors retried *)
  r_contained : int;  (** injected task failures absorbed without losing the run *)
  r_seq_fallbacks : int;  (** whole-program sequential recompiles (0 or 1) *)
}

(** All-zero counters (what a fault-free run reports). *)
val no_robustness : robustness

type result = {
  program : Cunit.program;
  diags : Diag.d list;
  ok : bool;  (** no errors *)
  sim : Mcc_sched.Des_engine.result;
  stats : Lookup_stats.t;
  n_proc_streams : int;
  n_def_streams : int;
  n_streams : int;  (** main + procedures + interfaces *)
  n_tasks : int;
  tokens : int;  (** tokens lexed across all files *)
  task_list : (string * string) list;  (** (class, name) per instantiated task *)
  task_index : (int * string) list;
      (** task id -> name for every spawned task, for trace/log rendering *)
  cache_hits : string list;
      (** interfaces installed from the build cache instead of spawning
          their streams, sorted (empty without a cache) *)
  cache_misses : string list;
      (** interfaces fingerprinted but compiled cold (and then stored),
          sorted (empty without a cache) *)
  cache_evictions : int;
      (** entries the cache's size bound evicted during this run (0
          without a cache or without a bound) *)
  used_slices : (string * string list) list;
      (** per imported interface, the exported names this compilation
          resolved (or failed to resolve) there — the fine-grained
          dependency record slice-level invalidation keys on; sorted *)
  log : Mcc_sched.Evlog.record array;
      (** the structured concurrency event log ([[||]] unless compiled
          with [~capture:true]) *)
  events_logged : int;  (** [Array.length log] *)
  telemetry : Mcc_obs.Metrics.snapshot option;
      (** the virtual-time metrics registry dump ([None] unless compiled
          with [~telemetry:true]) *)
  perturb_seed : int option;  (** the config's exploration seed, echoed back *)
  robustness : robustness;
  deadlock : string list;
      (** the engine's deadlock report (blocked-task wait graph) when
          the run quiesced with tasks parked; [[]] on a clean run *)
}

(** Statement parts at least this many nodes go to the long-procedure
    code-generation class (paper §2.3.4). *)
val long_threshold : int

(** Compile on the simulated multiprocessor — deterministic; all
    benchmark figures come from this path.  With [cache], interfaces
    whose content fingerprint is already stored are installed from
    their artifacts (paying explicit hash + probe + install charges)
    instead of spawning Lexor/Importer/DefParse streams; interfaces
    compiled cold are captured into the cache.  [~capture:true] records
    the structured concurrency event log into [result.log] for the
    happens-before analyzer ({!Mcc_analysis.Hb}); capture never charges
    work, so virtual timings are unchanged.

    Fault injection and self-healing: with [config.faults] non-empty, a
    deterministic {!Mcc_sched.Fault} plan (seeded by [config.fault_seed])
    is armed around the engine run.  Transient faults recover inside the
    pipeline (retry/backoff, watchdog wake re-delivery, corrupt-artifact
    rebuild) and yield byte-identical output to a fault-free run;
    permanent faults degrade gracefully — a lost stream triggers a
    whole-program sequential recompile, an unreadable source a precise
    diagnostic — and are never a hang or an uncaught exception.  What
    happened is reported in [result.robustness] and [result.deadlock].

    [~telemetry:true] additionally runs the compilation under a fresh
    {!Mcc_obs.Metrics} registry and returns its deterministic snapshot
    in [result.telemetry]; like capture, metrics never charge work. *)
val compile :
  ?config:config ->
  ?capture:bool ->
  ?telemetry:bool ->
  ?cache:Build_cache.t ->
  Source_store.t ->
  result

(** Render the instantiated task structure (the realization of Fig. 5
    for this compilation), grouped by class in priority order. *)
val dump_tasks : result -> string

(** {1 Real shared-memory execution} *)

type domain_result = {
  d_program : Cunit.program;
  d_diags : Diag.d list;
  d_ok : bool;
  d_wall_seconds : float;
  d_tasks_run : int;
  d_deadlocked : bool;
  d_stats : Lookup_stats.t;
}

(** The same task graph on [domains] OCaml domains.  Produces a program
    byte-identical to {!compile}'s and {!Seq_driver.compile}'s. *)
val compile_domains :
  ?config:config -> ?cache:Build_cache.t -> domains:int -> Source_store.t -> domain_result
