(* Self-contained interface artifacts.

   The paper's once-only table (§2.1) guarantees each definition module
   is processed once *per compilation*; an artifact extends that economy
   *across* compilations.  It packages everything a def-module stream
   produces — the completed scope's exported symbols (types embedded
   structurally), the interface's global frame layout, the diagnostics
   its analysis emitted, and the direct imports its importer would have
   discovered — keyed by a content fingerprint (Build_cache).

   Installation replays exactly the externally visible effects of the
   skipped Lexor/Importer/DefParse stream: the imports are ensured (so
   transitively reached interfaces register and contribute their frames,
   as they would cold), the symbols are re-entered, the frame is merged,
   the diagnostics are replayed, and the scope's completion event — the
   interface's avoided event — is signaled.  Explicit Costs charges keep
   warm DES timings honest.

   Artifacts are deeply immutable after capture: def-module scopes are
   never patched once complete (opaque-pointer fixups resolve before
   [Symtab.mark_complete]; procedure entries in interfaces carry no
   stream), and [Symtab.entries] filters placeholders, so an artifact
   contains no events, mutexes or closures and is Marshal-safe. *)

open Mcc_m2
open Mcc_sched
open Mcc_sem
open Mcc_codegen

type frame = {
  f_key : string;
  f_slots : (int * Tydesc.t) list;
  f_size : int;
}

type t = {
  a_name : string;
  a_fingerprint : string; (* content fingerprint, hex (Build_cache) *)
  a_imports : string list; (* direct imports, in source order *)
  a_symbols : Symbol.t list; (* exported entries, (offset, name)-sorted *)
  a_slices : (string * string) list; (* exported name -> slice digest, name-sorted *)
  a_install : string; (* stable digest over imports + frame + diags *)
  a_shape : string; (* stable whole-interface digest: install + slices *)
  a_frame : frame;
  a_diags : Diag.d list; (* diagnostics of the interface's analysis, sorted *)
  a_digest : string; (* MD5 over the payload fields above, set at capture *)
}

(* ------------------------------------------------------------------ *)
(* Slice digests.

   One *slice* is one exported declaration; its digest must be equal
   across compilations exactly when the declaration's interface is
   unchanged.  Type uids are process-local (recompiling the same source
   allocates fresh ones), so the rendering is purely structural — names,
   shapes, bounds, field slots — never uids.  Named-pointer recursion is
   broken by name, which is sound under Modula-2 name equivalence: two
   interface types with the same name in the same module are the same
   declaration. *)

let rec render_ty seen buf (ty : Types.ty) =
  let p s = Buffer.add_string buf s in
  match ty with
  | Types.TInt -> p "INTEGER"
  | Types.TCard -> p "CARDINAL"
  | Types.TBool -> p "BOOLEAN"
  | Types.TChar -> p "CHAR"
  | Types.TReal -> p "REAL"
  | Types.TBitset -> p "BITSET"
  | Types.TStrLit n -> p (Printf.sprintf "STR%d" n)
  | Types.TNil -> p "NIL"
  | Types.TExc -> p "EXCEPTION"
  | Types.TMutex -> p "MUTEX"
  | Types.TErr -> p "<err>"
  | Types.TEnum e ->
      p (Printf.sprintf "enum:%s(%s)" e.Types.ename
           (String.concat "," (Array.to_list e.Types.elems)))
  | Types.TSub (b, lo, hi) ->
      p (Printf.sprintf "sub[%d..%d]:" lo hi);
      render_ty seen buf b
  | Types.TArr a ->
      p (Printf.sprintf "arr[%d..%d," a.Types.lo a.Types.hi);
      render_ty seen buf a.Types.index;
      p "]:";
      render_ty seen buf a.Types.elem
  | Types.TOpenArr e ->
      p "openarr:";
      render_ty seen buf e
  | Types.TRec r ->
      p (Printf.sprintf "rec:%s{" r.Types.rname);
      List.iter
        (fun (fname, (f : Types.field)) ->
          p (Printf.sprintf "%s@%d:" fname f.Types.fslot);
          render_ty seen buf f.Types.fty;
          p ";")
        r.Types.fields;
      p "}"
  | Types.TPtr pt ->
      if List.mem pt.Types.pname !seen then p (Printf.sprintf "^%s" pt.Types.pname)
      else begin
        seen := pt.Types.pname :: !seen;
        p (Printf.sprintf "ptr:%s->" pt.Types.pname);
        render_ty seen buf pt.Types.target
      end
  | Types.TSet s ->
      p (Printf.sprintf "set[%d..%d]:" s.Types.slo s.Types.shi);
      render_ty seen buf s.Types.sbase
  | Types.TProc sg -> render_signature seen buf sg

and render_signature seen buf (sg : Types.signature) =
  Buffer.add_string buf "proc(";
  List.iter
    (fun (prm : Types.param) ->
      if prm.Types.mode_var then Buffer.add_string buf "VAR ";
      render_ty seen buf prm.Types.pty;
      Buffer.add_char buf ';')
    sg.Types.params;
  Buffer.add_char buf ')';
  match sg.Types.result with
  | None -> ()
  | Some r ->
      Buffer.add_char buf ':';
      render_ty seen buf r

let render_home buf = function
  | Symbol.HGlobal (key, slot) -> Buffer.add_string buf (Printf.sprintf "global(%s,%d)" key slot)
  | Symbol.HLocal slot -> Buffer.add_string buf (Printf.sprintf "local(%d)" slot)
  | Symbol.HParam (slot, by_ref) -> Buffer.add_string buf (Printf.sprintf "param(%d,%b)" slot by_ref)

let slice_digest (s : Symbol.t) : string =
  let buf = Buffer.create 128 in
  let seen = ref [] in
  Buffer.add_string buf s.Symbol.sname;
  Buffer.add_char buf '|';
  (match s.Symbol.alias_of with
  | Some m -> Buffer.add_string buf ("alias:" ^ m ^ "|")
  | None -> ());
  (match s.Symbol.skind with
  | Symbol.SConst (v, ty) ->
      Buffer.add_string buf ("const|" ^ Value.to_string v ^ "|");
      render_ty seen buf ty
  | Symbol.SType ty ->
      Buffer.add_string buf "type|";
      render_ty seen buf ty
  | Symbol.SVar (home, ty) ->
      Buffer.add_string buf "var|";
      render_home buf home;
      Buffer.add_char buf '|';
      render_ty seen buf ty
  | Symbol.SProc pi ->
      Buffer.add_string buf
        (Printf.sprintf "proc|%s|%b|" pi.Symbol.key pi.Symbol.external_);
      render_signature seen buf pi.Symbol.sig_
  | Symbol.SEnumLit (ty, ord) ->
      Buffer.add_string buf (Printf.sprintf "enumlit|%d|" ord);
      render_ty seen buf ty
  | Symbol.SModule m -> Buffer.add_string buf ("module|" ^ m)
  | Symbol.SBuiltin _ -> Buffer.add_string buf "builtin"
  | Symbol.SPlaceholder _ -> Buffer.add_string buf "placeholder");
  Digest.to_hex (Digest.string (Buffer.contents buf))

let slices_of symbols =
  List.sort compare (List.map (fun s -> (s.Symbol.sname, slice_digest s)) symbols)

(* [a_install]: what installing the artifact does to a compilation
   regardless of which names are looked up — the imports it ensures, the
   global frame it merges, the diagnostics it replays.  Tydesc values and
   diagnostics contain no uids, so Marshal over them is stable. *)
let install_digest ~imports ~frame ~diags =
  Digest.to_hex (Digest.string (Marshal.to_string (imports, frame, diags) []))

(* [a_shape]: the early-cutoff comparison — a regenerated interface with
   an identical shape is byte-identical for every downstream purpose, so
   invalidation propagation stops at it. *)
let shape_digest ~install ~slices =
  Digest.to_hex
    (Digest.string
       (String.concat ";" (install :: List.map (fun (n, d) -> n ^ "=" ^ d) slices)))

let slice t name = List.assoc_opt name t.a_slices

(* Digest of everything but [a_digest] itself.  Artifacts are
   Marshal-safe and deeply immutable, so the serialized payload is a
   stable byte string: recomputing after an on-disk round trip (or after
   bit-rot / truncation) either reproduces the captured digest or proves
   corruption. *)
let payload_digest ~name ~fingerprint ~imports ~symbols ~slices ~install ~shape ~frame ~diags =
  Digest.string
    (Marshal.to_string (name, fingerprint, imports, symbols, slices, install, shape, frame, diags) [])

let digest t =
  payload_digest ~name:t.a_name ~fingerprint:t.a_fingerprint ~imports:t.a_imports
    ~symbols:t.a_symbols ~slices:t.a_slices ~install:t.a_install ~shape:t.a_shape
    ~frame:t.a_frame ~diags:t.a_diags

let verify t = String.equal t.a_digest (digest t)

let capture ~name ~fingerprint ~imports ~scope ~frame ~diags =
  let symbols = Symtab.export scope in
  let slices = slices_of symbols in
  let install = install_digest ~imports ~frame ~diags in
  let shape = shape_digest ~install ~slices in
  {
    a_name = name;
    a_fingerprint = fingerprint;
    a_imports = imports;
    a_symbols = symbols;
    a_slices = slices;
    a_install = install;
    a_shape = shape;
    a_frame = frame;
    a_diags = diags;
    a_digest =
      payload_digest ~name ~fingerprint ~imports ~symbols ~slices ~install ~shape ~frame ~diags;
  }

(* Re-install into a freshly interned scope.  The caller has already
   ensured [a_imports]; this charges the install work, re-enters the
   symbols, merges the frame, replays the diagnostics and completes the
   scope (signaling the avoided event). *)
let install t ~scope ~merger ~diags =
  Eff.work
    ((List.length t.a_symbols * Costs.cache_install_entry) + Costs.cache_install_frame);
  Symtab.import_export scope t.a_symbols;
  Cunit.add_frame merger t.a_frame.f_key t.a_frame.f_slots t.a_frame.f_size;
  List.iter (Diag.add_d diags) t.a_diags;
  Symtab.mark_complete scope

(* ------------------------------------------------------------------ *)
(* Uid census, for on-disk persistence.

   Unmarshalled types carry uids allocated by the process that wrote
   them; the loader bumps this process's counter past the maximum so
   fresh types can never collide (uid equality is name equivalence).
   Pointer targets can form cycles, so visited uid-nodes are tracked. *)

let rec ty_uids seen acc (ty : Types.ty) =
  let node uid children =
    if Hashtbl.mem seen uid then acc
    else begin
      Hashtbl.replace seen uid ();
      List.fold_left (ty_uids seen) (max acc uid) children
    end
  in
  match ty with
  | Types.TEnum e -> node e.Types.euid []
  | Types.TSub (b, _, _) -> ty_uids seen acc b
  | Types.TArr a -> node a.Types.auid [ a.Types.index; a.Types.elem ]
  | Types.TOpenArr e -> ty_uids seen acc e
  | Types.TRec r -> node r.Types.ruid (List.map (fun (_, f) -> f.Types.fty) r.Types.fields)
  | Types.TPtr p -> node p.Types.puid [ p.Types.target ]
  | Types.TSet s -> node s.Types.suid [ s.Types.sbase ]
  | Types.TProc sg -> signature_uids seen acc sg
  | _ -> acc

and signature_uids seen acc (sg : Types.signature) =
  let acc = List.fold_left (fun acc p -> ty_uids seen acc p.Types.pty) acc sg.Types.params in
  match sg.Types.result with Some r -> ty_uids seen acc r | None -> acc

let max_uid t =
  let seen = Hashtbl.create 64 in
  List.fold_left
    (fun acc (s : Symbol.t) ->
      match s.Symbol.skind with
      | Symbol.SConst (_, ty)
      | Symbol.SType ty
      | Symbol.SVar (_, ty)
      | Symbol.SEnumLit (ty, _) ->
          ty_uids seen acc ty
      | Symbol.SProc pi -> signature_uids seen acc pi.Symbol.sig_
      | Symbol.SModule _ | Symbol.SBuiltin _ | Symbol.SPlaceholder _ -> acc)
    0 t.a_symbols
