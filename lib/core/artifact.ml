(* Self-contained interface artifacts.

   The paper's once-only table (§2.1) guarantees each definition module
   is processed once *per compilation*; an artifact extends that economy
   *across* compilations.  It packages everything a def-module stream
   produces — the completed scope's exported symbols (types embedded
   structurally), the interface's global frame layout, the diagnostics
   its analysis emitted, and the direct imports its importer would have
   discovered — keyed by a content fingerprint (Build_cache).

   Installation replays exactly the externally visible effects of the
   skipped Lexor/Importer/DefParse stream: the imports are ensured (so
   transitively reached interfaces register and contribute their frames,
   as they would cold), the symbols are re-entered, the frame is merged,
   the diagnostics are replayed, and the scope's completion event — the
   interface's avoided event — is signaled.  Explicit Costs charges keep
   warm DES timings honest.

   Artifacts are deeply immutable after capture: def-module scopes are
   never patched once complete (opaque-pointer fixups resolve before
   [Symtab.mark_complete]; procedure entries in interfaces carry no
   stream), and [Symtab.entries] filters placeholders, so an artifact
   contains no events, mutexes or closures and is Marshal-safe. *)

open Mcc_m2
open Mcc_sched
open Mcc_sem
open Mcc_codegen

type frame = {
  f_key : string;
  f_slots : (int * Tydesc.t) list;
  f_size : int;
}

type t = {
  a_name : string;
  a_fingerprint : string; (* content fingerprint, hex (Build_cache) *)
  a_imports : string list; (* direct imports, in source order *)
  a_symbols : Symbol.t list; (* exported entries, (offset, name)-sorted *)
  a_frame : frame;
  a_diags : Diag.d list; (* diagnostics of the interface's analysis, sorted *)
  a_digest : string; (* MD5 over the payload fields above, set at capture *)
}

(* Digest of everything but [a_digest] itself.  Artifacts are
   Marshal-safe and deeply immutable, so the serialized payload is a
   stable byte string: recomputing after an on-disk round trip (or after
   bit-rot / truncation) either reproduces the captured digest or proves
   corruption. *)
let payload_digest ~name ~fingerprint ~imports ~symbols ~frame ~diags =
  Digest.string (Marshal.to_string (name, fingerprint, imports, symbols, frame, diags) [])

let digest t =
  payload_digest ~name:t.a_name ~fingerprint:t.a_fingerprint ~imports:t.a_imports
    ~symbols:t.a_symbols ~frame:t.a_frame ~diags:t.a_diags

let verify t = String.equal t.a_digest (digest t)

let capture ~name ~fingerprint ~imports ~scope ~frame ~diags =
  let symbols = Symtab.export scope in
  {
    a_name = name;
    a_fingerprint = fingerprint;
    a_imports = imports;
    a_symbols = symbols;
    a_frame = frame;
    a_diags = diags;
    a_digest = payload_digest ~name ~fingerprint ~imports ~symbols ~frame ~diags;
  }

(* Re-install into a freshly interned scope.  The caller has already
   ensured [a_imports]; this charges the install work, re-enters the
   symbols, merges the frame, replays the diagnostics and completes the
   scope (signaling the avoided event). *)
let install t ~scope ~merger ~diags =
  Eff.work
    ((List.length t.a_symbols * Costs.cache_install_entry) + Costs.cache_install_frame);
  Symtab.import_export scope t.a_symbols;
  Cunit.add_frame merger t.a_frame.f_key t.a_frame.f_slots t.a_frame.f_size;
  List.iter (Diag.add_d diags) t.a_diags;
  Symtab.mark_complete scope

(* ------------------------------------------------------------------ *)
(* Uid census, for on-disk persistence.

   Unmarshalled types carry uids allocated by the process that wrote
   them; the loader bumps this process's counter past the maximum so
   fresh types can never collide (uid equality is name equivalence).
   Pointer targets can form cycles, so visited uid-nodes are tracked. *)

let rec ty_uids seen acc (ty : Types.ty) =
  let node uid children =
    if Hashtbl.mem seen uid then acc
    else begin
      Hashtbl.replace seen uid ();
      List.fold_left (ty_uids seen) (max acc uid) children
    end
  in
  match ty with
  | Types.TEnum e -> node e.Types.euid []
  | Types.TSub (b, _, _) -> ty_uids seen acc b
  | Types.TArr a -> node a.Types.auid [ a.Types.index; a.Types.elem ]
  | Types.TOpenArr e -> ty_uids seen acc e
  | Types.TRec r -> node r.Types.ruid (List.map (fun (_, f) -> f.Types.fty) r.Types.fields)
  | Types.TPtr p -> node p.Types.puid [ p.Types.target ]
  | Types.TSet s -> node s.Types.suid [ s.Types.sbase ]
  | Types.TProc sg -> signature_uids seen acc sg
  | _ -> acc

and signature_uids seen acc (sg : Types.signature) =
  let acc = List.fold_left (fun acc p -> ty_uids seen acc p.Types.pty) acc sg.Types.params in
  match sg.Types.result with Some r -> ty_uids seen acc r | None -> acc

let max_uid t =
  let seen = Hashtbl.create 64 in
  List.fold_left
    (fun acc (s : Symbol.t) ->
      match s.Symbol.skind with
      | Symbol.SConst (_, ty)
      | Symbol.SType ty
      | Symbol.SVar (_, ty)
      | Symbol.SEnumLit (ty, _) ->
          ty_uids seen acc ty
      | Symbol.SProc pi -> signature_uids seen acc pi.Symbol.sig_
      | Symbol.SModule _ | Symbol.SBuiltin _ | Symbol.SPlaceholder _ -> acc)
    0 t.a_symbols
