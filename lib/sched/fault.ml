(* Deterministic, seeded fault injection (the robustness layer's input).

   A fault *plan* is a pure function of (seed, spec list): every decision
   to fire is derived from a splitmix64 hash of the seed, the spec index
   and a per-spec occurrence counter, so the same plan replayed against
   the same deterministic schedule injects the same faults at the same
   points — which is what lets the recovery tests demand byte-identical
   output and identical robustness counters across repeated runs.

   Injection sites pull, the plan never pushes: the DES engine, the
   driver, the build cache and the symbol tables each ask "does a fault
   fire here?" at their own site, passing the local identity (task name
   and class, event name, module name, scope name).  A site consults the
   plan only when one is armed, so the fault-free path costs one ref
   read (the [Evlog.enabled] idiom).  Firing never charges [Eff.work]:
   faults are free to inject, only *recovery* costs virtual time.

   Spec grammar (comma-separated on the CLI):

     kind[:target][@k][%pct][!]

   - [kind] one of task-crash, dropped-wake, stall, corrupt-artifact,
     source-error, poison-import, early-complete;
   - [:target] restricts matching to identities containing the string
     (or, for task faults, whose class name equals it);
   - [@k] fires at the k-th matching occurrence exactly (default: a
     seed-derived k in 1..8, so different seeds hit different points);
   - [%pct] fires each matching occurrence with the given percent
     chance, hashed from the seed (mutually exclusive with [@k]);
   - [!] permanent: the first victim is pinned by name and every later
     occurrence of that same victim fires too — retries keep failing,
     which is how quarantine paths are exercised. *)

type kind =
  | Task_crash
  | Dropped_wake
  | Stall
  | Corrupt_artifact
  | Source_error
  | Poison_import
  | Early_complete
  | Node_crash
  | Node_slow
  | Msg_drop
  | Partition

exception Injected of string

type spec = {
  kind : kind;
  target : string option;
  at : int option; (* fire at exactly the k-th matching occurrence *)
  rate : int option; (* percent chance per matching occurrence *)
  permanent : bool;
}

let kind_name = function
  | Task_crash -> "task-crash"
  | Dropped_wake -> "dropped-wake"
  | Stall -> "stall"
  | Corrupt_artifact -> "corrupt-artifact"
  | Source_error -> "source-error"
  | Poison_import -> "poison-import"
  | Early_complete -> "early-complete"
  | Node_crash -> "node-crash"
  | Node_slow -> "node-slow"
  | Msg_drop -> "msg-drop"
  | Partition -> "partition"

let kind_of_name = function
  | "task-crash" -> Some Task_crash
  | "dropped-wake" -> Some Dropped_wake
  | "stall" -> Some Stall
  | "corrupt-artifact" -> Some Corrupt_artifact
  | "source-error" -> Some Source_error
  | "poison-import" -> Some Poison_import
  | "early-complete" -> Some Early_complete
  | "node-crash" -> Some Node_crash
  | "node-slow" -> Some Node_slow
  | "msg-drop" | "message-drop" -> Some Msg_drop
  | "partition" -> Some Partition
  | _ -> None

let all_kinds =
  [
    Task_crash; Dropped_wake; Stall; Corrupt_artifact; Source_error; Poison_import; Early_complete;
    Node_crash; Node_slow; Msg_drop; Partition;
  ]

let spec_to_string s =
  Printf.sprintf "%s%s%s%s%s" (kind_name s.kind)
    (match s.target with Some t -> ":" ^ t | None -> "")
    (match s.at with Some k -> Printf.sprintf "@%d" k | None -> "")
    (match s.rate with Some p -> Printf.sprintf "%%%d" p | None -> "")
    (if s.permanent then "!" else "")

let parse str =
  let s = String.trim str in
  let bad fmt = Printf.ksprintf (fun m -> invalid_arg ("Fault.parse: " ^ m ^ " in " ^ str)) fmt in
  let permanent, s =
    let n = String.length s in
    if n > 0 && s.[n - 1] = '!' then (true, String.sub s 0 (n - 1)) else (false, s)
  in
  let cut c str =
    match String.index_opt str c with
    | None -> (str, None)
    | Some i -> (String.sub str 0 i, Some (String.sub str (i + 1) (String.length str - i - 1)))
  in
  let before_pct, pct = cut '%' s in
  let before_at, at = cut '@' before_pct in
  let kind_str, target = cut ':' before_at in
  let kind =
    match kind_of_name kind_str with Some k -> k | None -> bad "unknown fault kind %S" kind_str
  in
  let posint what = function
    | None -> None
    | Some v -> (
        match int_of_string_opt v with
        | Some n when n > 0 -> Some n
        | _ -> bad "bad %s %S" what v)
  in
  let at = posint "occurrence" at in
  let rate = posint "rate" pct in
  (match rate with
  | Some p when p > 100 -> bad "rate %d%% out of range" p
  | _ -> ());
  if at <> None && rate <> None then bad "@k and %%pct are mutually exclusive";
  (match target with Some "" -> bad "empty target" | _ -> ());
  { kind; target; at; rate; permanent }

let parse_list str =
  String.split_on_char ',' str
  |> List.filter (fun s -> String.trim s <> "")
  |> List.map parse

(* ------------------------------------------------------------------ *)
(* Seed-derived decisions: splitmix64 finalizer over (seed, spec index,
   occurrence).  Pure — no global PRNG state to perturb or be perturbed
   by anything else. *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  logxor z (shift_right_logical z 33)

let hash3 seed idx n =
  let z =
    Int64.add
      (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
      (Int64.of_int ((idx * 0x85ebca6b) + n))
  in
  Int64.to_int (Int64.logand (mix64 z) 0x7fffffffL)

type plan = {
  seed : int;
  specs : spec array;
  occ : int array; (* matching occurrences seen, per spec *)
  victims : string option array; (* pinned victim of a permanent spec *)
  mutable n_fired : int;
}

let plan ?(seed = 0) specs =
  let specs = Array.of_list specs in
  {
    seed;
    specs;
    occ = Array.make (Array.length specs) 0;
    victims = Array.make (Array.length specs) None;
    n_fired = 0;
  }

let reset p =
  Array.fill p.occ 0 (Array.length p.occ) 0;
  Array.fill p.victims 0 (Array.length p.victims) None;
  p.n_fired <- 0

let specs p = Array.to_list p.specs
let plan_seed p = p.seed

(* ------------------------------------------------------------------ *)
(* Wire format, for shipping a plan to a farm node.

   A shipped plan is the *schedule* — (seed, specs) — never the sender's
   replay state: marshaling the whole record would leak the
   coordinator's occurrence counters and pinned victims into the copy,
   so a plan serialized mid-replay would fire at different points on the
   receiving node than a pristine replay of the same schedule (the
   nondeterminism the round-trip property in test_farm.ml pins down).
   [of_bytes] therefore always reconstructs a fresh plan. *)

let wire_version = "mcc-fault-plan-v1"

let to_bytes p = Marshal.to_string (wire_version, p.seed, p.specs) []

let of_bytes s =
  match (Marshal.from_string s 0 : string * int * spec array) with
  | v, _, _ when v <> wire_version ->
      invalid_arg (Printf.sprintf "Fault.of_bytes: wire version %S, expected %S" v wire_version)
  | _, seed, specs -> plan ~seed (Array.to_list specs)
  | exception _ -> invalid_arg "Fault.of_bytes: not a serialized fault plan"

(* The armed plan.  Single-threaded by construction: faults are a DES /
   sequential-path facility (like [Evlog]); the domain engine never arms
   one. *)
let current : plan option ref = ref None

let armed () = !current <> None
let install p = current := Some p
let clear () = current := None
let fired () = match !current with Some p -> p.n_fired | None -> 0

let with_plan p f =
  let saved = !current in
  current := Some p;
  Fun.protect ~finally:(fun () -> current := saved) f

(* ------------------------------------------------------------------ *)
(* Site consultation. *)

let contains ~sub s =
  let ls = String.length s and lb = String.length sub in
  lb = 0
  ||
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  go 0

let matches spec ~name ~aux =
  match spec.target with None -> true | Some t -> t = aux || contains ~sub:t name

(* Default firing point when neither [@k] nor [%pct] was given: a
   seed-derived occurrence in 1..8. *)
let default_k p i = 1 + (hash3 p.seed i 0 mod 8)

let consult p kind ~name ~aux =
  let hit = ref false in
  Array.iteri
    (fun i spec ->
      if spec.kind = kind && not !hit then
        match p.victims.(i) with
        | Some v ->
            (* permanent and pinned: the victim keeps failing, nobody
               else is touched and occurrences stop counting *)
            if v = name then hit := true
        | None ->
            if matches spec ~name ~aux then begin
              p.occ.(i) <- p.occ.(i) + 1;
              let n = p.occ.(i) in
              let fire =
                match (spec.at, spec.rate) with
                | Some k, _ -> n = k
                | None, Some r -> hash3 p.seed i n mod 100 < r
                | None, None -> n = default_k p i
              in
              if fire then begin
                hit := true;
                if spec.permanent then p.victims.(i) <- Some name
              end
            end)
    p.specs;
  if !hit then p.n_fired <- p.n_fired + 1;
  !hit

let fire kind ~name ~aux = match !current with None -> false | Some p -> consult p kind ~name ~aux
let crash ~name ~cls = fire Task_crash ~name ~aux:cls
let stall ~name ~cls = fire Stall ~name ~aux:cls
let drop_wake ~ev = fire Dropped_wake ~name:ev ~aux:""
let corrupt_artifact ~name = fire Corrupt_artifact ~name ~aux:""
let source_error ~name = fire Source_error ~name ~aux:""
let poison_import ~name = fire Poison_import ~name ~aux:""
let early_complete ~scope = fire Early_complete ~name:scope ~aux:""

(* Farm sites (Mcc_farm): consulted by the multi-node coordinator.
   [node_crash]/[node_slow] pass the node identity ("node2");
   [msg_drop] the RPC link ("node1->node3:IfaceName"); [partition] a
   per-heartbeat network identity. *)
let node_crash ~name = fire Node_crash ~name ~aux:""
let node_slow ~name = fire Node_slow ~name ~aux:""
let msg_drop ~link = fire Msg_drop ~name:link ~aux:""
let partition ~name = fire Partition ~name ~aux:""
