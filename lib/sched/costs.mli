(** The virtual cost model for the simulated multiprocessor.

    Compiler code charges work units proportional to real work; the DES
    turns units into virtual time.  The constants below are the model's
    knobs, calibrated so that (a) the synthetic suite's sequential
    compile times span Table 1's 2.3..108 s range, (b) the 1-processor
    concurrency overhead lands near the paper's 4.3%, and (c) Synth.mod
    approaches the paper's 6.67 speedup at 8 processors.  The sensitivity
    experiment (`bench/main.exe sensitivity`) shows no conclusion depends
    delicately on them. *)

(** {1 Lexical analysis} *)

val lex_char : int
val lex_token : int

(** {1 Token queues (concurrent paths only; per block, not per token)} *)

val tokq_block_publish : int
val tokq_block_fetch : int

(** {1 Splitter / importer} *)

val split_token : int
val import_token : int

(** {1 Parsing and declaration analysis} *)

val parse_token : int
val decl_entry : int

(** Copying one entry parent → child (heading alternative 1). *)
val copy_entry : int

(** Optimistic handling's per-symbol event bookkeeping (paper §2.3.3:
    "the overhead of maintaining so many events outweighs the
    advantages"). *)
val placeholder_create : int

val symbol_event : int
val sweep_entry : int
val expr_node : int
val lookup_probe : int

(** {1 Statement analysis / code generation} *)

val stmt_node : int
val emit_instr : int

(** {1 Merge / link} *)

val merge_unit : int

(** {1 Interface artifact cache}

    Replacing a definition-module stream with hash + fetch + install is
    charged explicitly so warm-cache DES timings stay honest. *)

(** Fingerprint hashing granularity, in source bytes. *)
val hash_block_bytes : int

(** Per [hash_block_bytes] of source fingerprinted. *)
val hash_block : int

(** One content-addressed store lookup. *)
val cache_probe : int

(** Per symbol re-installed from a cached artifact. *)
val cache_install_entry : int

(** Per global frame restored from a cached artifact. *)
val cache_install_frame : int

(** {1 Concurrency overheads} *)

val spawn_cost : int
val signal_cost : int
val wait_check_cost : int

(** Supervisor dispatch latency, in time units. *)
val dispatch_cost : float

(** {1 Fault recovery} *)

(** Virtual-time backoff before redispatching a crashed-at-start task. *)
val retry_backoff : int

(** Crash retries (and injected stalls) per task before quarantine. *)
val retry_limit : int

(** Injected stalled-worker latency, in work units, per stall. *)
val stall_penalty : int

(** Virtual time between stall-watchdog sweeps at quiescence. *)
val watchdog_interval : float

(** {1 Build farm}

    The farm clock runs in virtual seconds (it composes inner engine
    runs' [end_seconds], like the compile server). *)

(** Node heartbeat period. *)
val farm_hb_seconds : float

(** Missed beats before the coordinator declares a node dead. *)
val farm_miss_beats : int

(** Remote-cache RPC attempts before giving up on a server. *)
val rpc_retry_limit : int

(** Base retry backoff; doubles per attempt. *)
val rpc_backoff_seconds : float

(** Backoff growth cap. *)
val rpc_backoff_cap_seconds : float

(** Gray failure: a slow node compiles and serves this many times
    slower. *)
val node_slow_factor : float

(** How long an injected partition lasts before healing. *)
val partition_seconds : float

(** {1 Engine parameters} *)

(** Work units accumulated before yielding to the engine. *)
val quantum : int

(** Memory-bus saturation: execution rate with [b] busy processors is
    [1/(1 + bus_beta*(b-1)^2)]. *)
val bus_beta : float

(** Virtual-unit to reported-seconds calibration. *)
val seconds_per_unit : float

val to_seconds : float -> float
