(** Deterministic, seeded fault injection.

    A fault {e plan} is a pure function of (seed, spec list): every
    decision to fire derives from a hash of the seed, the spec index and
    a per-spec occurrence counter, so replaying the same plan against
    the same deterministic schedule injects the same faults at the same
    points.  Injection sites {e pull}: the DES engine, driver, build
    cache and symbol tables each consult the armed plan with their local
    identity; the fault-free path costs one ref read ({!armed}, the
    [Evlog.enabled] idiom).  Firing never charges [Eff.work] — only
    recovery costs virtual time.

    Spec grammar: [kind[:target][@k][%pct][!]] — e.g. [task-crash@5],
    [task-crash:procparse!], [source-error:M01@1], [dropped-wake%25].
    [@k] fires at exactly the k-th matching occurrence (default: a
    seed-derived point in 1..8); [%pct] fires each occurrence with the
    given seed-hashed percent chance; [!] pins the first victim by name
    so retries keep failing (the quarantine path).  DES/sequential only:
    the domain engine never arms a plan. *)

type kind =
  | Task_crash  (** crash at a scheduling point (start: retryable; resume: quarantine) *)
  | Dropped_wake  (** an event signal whose handled wake-ups are lost *)
  | Stall  (** extra dispatch latency for a worker *)
  | Corrupt_artifact  (** a cached interface artifact fails digest verification *)
  | Source_error  (** a source-store read error in the driver *)
  | Poison_import  (** an importer prefetch stream dies mid-scan *)
  | Early_complete
      (** a scope completes while its parser is still publishing — the
          deliberate Hb-violation fault (subsumes the old
          [Symtab.inject_early_complete] shim) *)
  | Node_crash  (** a farm node dies at a heartbeat; its closures are re-sharded *)
  | Node_slow  (** gray failure: a farm node serves at a fraction of its rate *)
  | Msg_drop  (** a remote-cache RPC message is lost (times out and retries) *)
  | Partition  (** the farm network splits into two halves for a window, then heals *)

(** Raised by injected faults that surface as task exceptions. *)
exception Injected of string

type spec = {
  kind : kind;
  target : string option;
  at : int option;  (** fire at exactly the k-th matching occurrence *)
  rate : int option;  (** percent chance per matching occurrence *)
  permanent : bool;
}

val kind_name : kind -> string
val kind_of_name : string -> kind option
val all_kinds : kind list
val spec_to_string : spec -> string

(** Parse one spec. @raise Invalid_argument on a malformed spec. *)
val parse : string -> spec

(** Parse a comma-separated spec list (empty segments ignored). *)
val parse_list : string -> spec list

type plan

(** Fresh plan with zeroed occurrence counters.  [seed] defaults to 0. *)
val plan : ?seed:int -> spec list -> plan

(** Rewind a plan's counters and pinned victims for replay. *)
val reset : plan -> unit

val specs : plan -> spec list
val plan_seed : plan -> int

(** {1 Wire format}

    The farm coordinator ships fault plans to simulated nodes.  A
    shipped plan is the {e schedule} — (seed, specs) — never the
    sender's replay state: {!of_bytes} always reconstructs a fresh plan
    with zeroed occurrence counters, so the round trip replays the
    identical fault schedule regardless of how far the source plan had
    already been consulted. *)

val to_bytes : plan -> string

(** @raise Invalid_argument on a wire-version mismatch or garbage. *)
val of_bytes : string -> plan

(** {1 Arming} *)

val armed : unit -> bool
val install : plan -> unit
val clear : unit -> unit

(** Faults fired by the currently armed plan (0 when none armed). *)
val fired : unit -> int

(** Run [f] with [p] armed, restoring the previously armed plan (if
    any) on the way out. *)
val with_plan : plan -> (unit -> 'a) -> 'a

(** {1 Site consultation}

    Each returns [true] when a fault fires at this site under the armed
    plan; always [false] when no plan is armed.  [target] matching: the
    spec's target must be a substring of [name] or equal to the
    auxiliary identity (task class name, where applicable). *)

val crash : name:string -> cls:string -> bool
val stall : name:string -> cls:string -> bool
val drop_wake : ev:string -> bool
val corrupt_artifact : name:string -> bool
val source_error : name:string -> bool
val poison_import : name:string -> bool
val early_complete : scope:string -> bool

(** Farm sites ([Mcc_farm]): node identity ("node2") for crash/slow, the
    RPC link ("node1->node3:Iface") for drops, a per-heartbeat network
    identity for partitions. *)

val node_crash : name:string -> bool

val node_slow : name:string -> bool
val msg_drop : link:string -> bool
val partition : name:string -> bool
