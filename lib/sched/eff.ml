(* The effect interface between compiler tasks and execution engines.

   Compiler code (lexer, parser, analyzers, code generator) is written as
   ordinary direct-style OCaml that occasionally performs one of four
   effects: charge work, wait on an event, signal an event, spawn a task.
   An execution engine is an effect handler:

   - the discrete-event simulation engine ([Des_engine]) interprets
     [Work] as virtual time on a simulated processor and [Wait]/[Signal]
     as scheduler transitions, producing deterministic timings;
   - the shared-memory engine ([Domain_engine]) runs the same tasks on
     real domains, interpreting [Wait]/[Signal] with mutexes and parked
     continuations;
   - outside any engine ("direct mode", used by the sequential compiler
     and by unit tests) [work] accumulates into a running total, [signal]
     marks the event, and [wait] insists the event has already occurred —
     the sequential compiler's processing order guarantees it has.

   Work charges are batched: [work] accumulates into a task-local counter
   and only performs the [Work] effect once [Costs.quantum] units have
   accumulated, so effect-handling overhead stays negligible while event
   timing keeps sub-millisecond virtual resolution.  The accumulator must
   be flushed before any scheduling operation, which [wait]/[signal]/
   [spawn] do internally; a finishing task hands its residue back through
   the [Finished] step. *)

type _ Effect.t +=
  | Work : int -> unit Effect.t
  | Wait : Event.t -> unit Effect.t
  | Signal : Event.t -> unit Effect.t
  | Spawn : Task.t -> unit Effect.t

exception Deadlock_in_direct_mode of string

type mode = Direct | Engine

(* Read concurrently by domain-engine workers, but only ever written
   while a single thread is active (engines set it before spawning
   workers and restore it after joining them). *)
let mode = ref Direct

(* Work-unit accumulator.  In [Engine] mode only one task executes
   between two effect performs (the DES is single-threaded, and the
   domain engine disables accounting — real time is real there), so a
   global accumulator is sound. *)
let acc = ref 0

(* When false, [work] is a no-op: set by the domain engine, whose tasks
   are measured in wall-clock time. *)
let accounting = ref true

(* Total units charged while in [Direct] mode: this is the sequential
   compiler's virtual execution time. *)
let direct_total = ref 0.0

let reset_direct_total () = direct_total := 0.0
let get_direct_total () = !direct_total

let in_engine () = !mode = Engine

let flush () =
  if !acc > 0 then begin
    let c = !acc in
    acc := 0;
    match !mode with
    | Engine -> Effect.perform (Work c)
    | Direct -> direct_total := !direct_total +. float_of_int c
  end

let work n =
  if !accounting then begin
    acc := !acc + n;
    if !acc >= Costs.quantum then flush ()
  end

let wait ev =
  if Event.occurred ev then ()
  else begin
    work Costs.wait_check_cost;
    flush ();
    match !mode with
    | Engine -> Effect.perform (Wait ev)
    | Direct ->
        raise
          (Deadlock_in_direct_mode
             (Format.asprintf "wait on unoccurred %a outside an engine" Event.pp ev))
  end

let signal ev =
  work Costs.signal_cost;
  flush ();
  match !mode with
  | Engine -> Effect.perform (Signal ev)
  | Direct -> Event.mark ev

let spawn task =
  work Costs.spawn_cost;
  flush ();
  match !mode with
  | Engine -> Effect.perform (Spawn task)
  | Direct -> failwith "Eff.spawn: cannot spawn a task outside an engine"

(* ------------------------------------------------------------------ *)
(* Stepping: engines drive task bodies through this interface.  Running
   a body yields a [step]; continuing the embedded resumption yields the
   next step.  Deep handlers mean the handler installed by [start] stays
   in force for the task's whole lifetime, even when the continuation is
   resumed later (or, for the domain engine, on a different domain). *)

type step =
  | Finished of int (* residual work units left in the accumulator *)
  | Failed of exn * Printexc.raw_backtrace
  | Worked of int * resumption
  | Blocked of Event.t * resumption
  | Signaled of Event.t * resumption
  | Spawned of Task.t * resumption

and resumption = (unit, step) Effect.Deep.continuation

let handler : (unit, step) Effect.Deep.handler =
  {
    retc =
      (fun () ->
        let c = !acc in
        acc := 0;
        Finished c);
    exnc =
      (fun e ->
        acc := 0;
        (* drop residue: the task is aborting anyway *)
        Failed (e, Printexc.get_raw_backtrace ()));
    effc =
      (fun (type a) (e : a Effect.t) ->
        match e with
        | Work n -> Some (fun (k : (a, step) Effect.Deep.continuation) -> Worked (n, k))
        | Wait ev -> Some (fun k -> Blocked (ev, k))
        | Signal ev -> Some (fun k -> Signaled (ev, k))
        | Spawn t -> Some (fun k -> Spawned (t, k))
        | _ -> None);
  }

let start (body : unit -> unit) : step = Effect.Deep.match_with body () handler
let resume (k : resumption) : step = Effect.Deep.continue k ()

(* Abort a suspended task by raising [e] at its suspension point: the
   body unwinds normally (Fun.protect cleanups run) and the deep
   handler's [exnc] converts the escape into a [Failed] step.  Used by
   the DES engine's fault injection to crash a task mid-flight. *)
let discontinue (k : resumption) (e : exn) : step = Effect.Deep.discontinue k e
