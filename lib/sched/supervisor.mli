(** The Supervisor — task queuing and selection (paper §2.3.2, §2.3.4).

    Ready tasks live in per-priority-class queues; within the two
    code-generation classes the largest task is selected first ("long
    procedures before short").  Tasks gated on an avoided event are
    parked until it occurs.  [prefer] moves a blocked task's resolver to
    the front of its class.

    Engine-neutral and externally synchronized: the DES calls it from one
    thread; the domain engine serializes access with a mutex. *)

type entry = Fresh of Task.t | Resumed of Task.t * Eff.resumption

val entry_task : entry -> Task.t

type t

(** [~fifo:true] is the scheduling ablation: one FIFO ready queue with
    no class priorities and no longest-first ordering (avoided-event
    gating still applies).  [~perturb] is schedule exploration: [pick]
    selects uniformly at random within the highest-priority non-empty
    class instead of FIFO/longest-first tie-breaking — every perturbed
    run is still a legal Supervisor schedule. *)
val create : ?fifo:bool -> ?perturb:Mcc_util.Prng.t -> unit -> t
val n_ready : t -> int
val n_gated : t -> int
val total_submitted : t -> int

(** Submit a fresh task; parks it if its gate has not occurred. *)
val submit : t -> Task.t -> unit

(** Re-queue a previously blocked task's continuation, ahead of fresh
    work of the same class. *)
val resume : t -> Task.t -> Eff.resumption -> unit

(** An event occurred: release the tasks gated on it. *)
val on_event : t -> Event.t -> unit

(** Move the pending task with this id to the front of its class: a
    blocked task is waiting for it. *)
val prefer : t -> int -> unit

(** Highest-priority ready entry (longest-first within the gen classes),
    or [None]. *)
val pick : t -> entry option

(** Still-parked gated tasks, for deadlock diagnostics:
    [(event id, task names)]. *)
val gated_events : t -> (int * string list) list
