(* The Supervisor — task queuing and selection (paper §2.3.2, §2.3.4).

   "We initiate one compiler process (Worker) for each real hardware
   processor.  These workers are managed by a supervisor which oversees
   the assignment of tasks to workers."

   The ready list is a priority queue over the task classes of
   [Task.cls_priority]; within the two code-generation classes the
   largest task is selected first ("Code is generated for long procedures
   before short ones to avoid a long sequential tail").  Tasks gated on
   an avoided event are parked until the event occurs.  When a running
   task blocks on a handled event, [prefer] moves the event's producer
   task (if still pending) to the front of its class so that "the task
   whose execution will lead toward the event occurring" runs next.

   The Supervisor is engine-neutral.  The DES engine calls it from a
   single thread; the domain engine serializes access with an external
   mutex. *)

open Mcc_util
module Metrics = Mcc_obs.Metrics

type entry = Fresh of Task.t | Resumed of Task.t * Eff.resumption

let entry_task = function Fresh t -> t | Resumed (t, _) -> t

type t = {
  classes : entry Deque.t array;
  gated : (int, Task.t list) Hashtbl.t; (* event id -> parked tasks *)
  mutable n_ready : int;
  mutable n_gated : int;
  mutable submitted : int;
  fifo : bool;
      (* ablation: ignore class priorities and size ordering, treating
         the ready list as one FIFO queue (gating still applies) *)
  perturb : Prng.t option;
      (* schedule exploration: when set, [pick] selects uniformly at
         random within the highest-priority non-empty class instead of
         using FIFO/longest-first tie-breaking.  Any entry of that class
         is a legal choice, so every perturbed run is a schedule the
         Supervisor could have produced; compiler output must not depend
         on which one (the analyzer asserts it doesn't). *)
}

let create ?(fifo = false) ?perturb () =
  let dummy = Fresh (Task.create ~cls:Task.Aux ~name:"dummy" (fun () -> ())) in
  {
    classes = Array.init Task.n_classes (fun _ -> Deque.create dummy);
    gated = Hashtbl.create 64;
    n_ready = 0;
    n_gated = 0;
    submitted = 0;
    fifo;
    perturb;
  }

let n_ready t = t.n_ready
let n_gated t = t.n_gated
let total_submitted t = t.submitted

let enqueue_ready t entry =
  let task = entry_task entry in
  let q =
    if t.fifo then t.classes.(0) else t.classes.(Task.cls_priority task.Task.cls)
  in
  (match entry with
  | Resumed _ ->
      (* a resumed task was already in flight: let it finish ahead of
         fresh work of the same class *)
      Deque.push_front q entry
  | Fresh _ -> Deque.push_back q entry);
  t.n_ready <- t.n_ready + 1

(* Submit a fresh task.  If it is gated on an unoccurred avoided event it
   is parked; otherwise it becomes ready. *)
let submit t task =
  t.submitted <- t.submitted + 1;
  if Metrics.enabled () then begin
    Metrics.incr ~labels:[ ("cls", Task.cls_name task.Task.cls) ] "mcc_sup_submit_total";
    Metrics.gauge_max "mcc_sup_ready_peak" (float_of_int (t.n_ready + 1))
  end;
  match task.Task.gate with
  | Some ev when not (Event.occurred ev) ->
      let parked = Option.value ~default:[] (Hashtbl.find_opt t.gated ev.Event.id) in
      Hashtbl.replace t.gated ev.Event.id (task :: parked);
      t.n_gated <- t.n_gated + 1
  | _ -> enqueue_ready t (Fresh task)

(* A previously blocked task becomes runnable again. *)
let resume t task k = enqueue_ready t (Resumed (task, k))

(* An event occurred: release tasks gated on it. *)
let on_event t (ev : Event.t) =
  match Hashtbl.find_opt t.gated ev.Event.id with
  | None -> ()
  | Some parked ->
      Hashtbl.remove t.gated ev.Event.id;
      t.n_gated <- t.n_gated - List.length parked;
      (* parked lists are built by consing; reverse to preserve
         submission order *)
      List.iter
        (fun (task : Task.t) ->
          if Evlog.enabled () then
            Evlog.emit (Evlog.Gate_release { ev = ev.Event.id; task = task.Task.id });
          enqueue_ready t (Fresh task))
        (List.rev parked)

(* Move the pending task [task_id] to the front of its class queue: a
   blocked task is waiting for it (paper §2.3.4). *)
let prefer t task_id =
  if task_id >= 0 then
    Array.iter
      (fun q ->
        match Deque.remove_first q (fun e -> (entry_task e).Task.id = task_id) with
        | Some e ->
            if Metrics.enabled () then Metrics.incr "mcc_sup_prefer_promote_total";
            Deque.push_front q e
        | None -> ())
      t.classes

(* Select the next entry to run: scan classes in priority order; within
   the code-generation classes take the entry with the largest size hint
   (longest procedure first). *)
let pick t =
  let rec scan i =
    if i >= Task.n_classes then None
    else begin
      let q = t.classes.(i) in
      if Deque.is_empty q then scan (i + 1)
      else begin
        let by_size =
          (not t.fifo)
          && (i = Task.cls_priority Task.LongGen || i = Task.cls_priority Task.ShortGen)
        in
        let entry =
          match t.perturb with
          | Some rng when Deque.length q > 1 ->
              let idx = Prng.int rng (Deque.length q) in
              let j = ref 0 in
              let chosen = ref None in
              Deque.iter
                (fun e ->
                  if !j = idx then chosen := Some e;
                  incr j)
                q;
              (match !chosen with
              | Some e ->
                  ignore (Deque.remove_first q (fun e' -> e' == e));
                  Some e
              | None -> Deque.pop_front q)
          | _ ->
          if by_size then begin
            let best = ref None in
            Deque.iter
              (fun e ->
                let sz = (entry_task e).Task.size_hint in
                match !best with
                | Some (bsz, _) when bsz >= sz -> ()
                | _ -> best := Some (sz, e))
              q;
            match !best with
            | Some (_, e) ->
                ignore (Deque.remove_first q (fun e' -> e' == e));
                Some e
            | None -> None
          end
          else Deque.pop_front q
        in
        match entry with
        | Some e ->
            t.n_ready <- t.n_ready - 1;
            Some e
        | None -> scan (i + 1)
      end
    end
  in
  scan 0

(* Names of events whose gated tasks are still parked — used in deadlock
   diagnostics. *)
let gated_events t =
  Hashtbl.fold (fun id tasks acc -> (id, List.map (fun (t : Task.t) -> t.name) tasks) :: acc) t.gated []
