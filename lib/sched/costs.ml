(* The virtual cost model for the simulated multiprocessor.

   Compiler code charges work units (via [Eff.work]) proportional to the
   real work it performs; the discrete-event engine turns units into
   virtual time.  One unit nominally corresponds to a handful of CVax
   instructions; [seconds_per_unit] calibrates virtual time so that the
   synthetic test suite's sequential compile times span the 2.3..108 s
   range of the paper's Table 1.

   The explicit overhead charges (task spawn, event operations, queue
   transfers) model the "extra processing that was introduced to achieve
   concurrency which is wasted on a single processor" — the paper measured
   this at 4.3% (§4.2).  They are charged only on concurrent paths (the
   sequential compiler performs none of these operations).

   [bus_beta] models Firefly memory-bus saturation (paper §4.1: "At high
   levels of concurrent activity, memory bus saturation effects ... degrade
   the performance of all processors").  Saturation is superlinear in the
   number of active processors: the instantaneous execution rate with [b]
   busy processors is 1/(1 + bus_beta*(b-1)^2), negligible at 2-3
   processors (the paper's Synth.mod speedup at 2 is 1.99, essentially
   perfect) and ~18%% at 8 (Synth.mod reaches 6.67 of 8). *)

(* --- lexical analysis --- *)
let lex_char = 1 (* per source character scanned *)
let lex_token = 1 (* per token constructed *)

(* --- token queues (concurrent paths only) ---
   enqueueing is pointer bumps; the costed operations are per-block:
   publishing a filled block (including its event) and a consumer
   fetching the next block *)
let tokq_block_publish = 6
let tokq_block_fetch = 4

(* --- splitter / importer --- *)
let split_token = 1 (* per token inspected by the splitter FSM *)
let import_token = 1 (* per token inspected by the importer scan *)

(* --- parsing and declaration analysis --- *)
let parse_token = 10 (* per token consumed by the parser *)
let decl_entry = 40 (* per symbol-table entry created *)
let copy_entry = 18 (* per entry copied parent->child (heading alternative 1) *)
let placeholder_create = 120
let symbol_event = 20
  (* optimistic handling: one DKY event per symbol table entry (paper
     Â§2.3.3) adds bookkeeping to every declaration *)
  (* optimistic handling: installing a per-symbol DKY event (paper
     Â§2.3.3: "the overhead of maintaining so many events outweighs the
     advantages of the technique") *)
let sweep_entry = 7
  (* optimistic handling: per entry traversed when a completed table is
     swept for unsignaled placeholder events *)
let expr_node = 16 (* per expression node semantically analyzed *)
let lookup_probe = 8 (* per scope probed during symbol lookup *)

(* --- statement analysis / code generation --- *)
let stmt_node = 22 (* per statement node analyzed *)
let emit_instr = 8 (* per VM instruction emitted *)

(* --- merge / link --- *)
let merge_unit = 30 (* per code unit concatenated by the merge task *)

(* --- interface artifact cache ---
   The content-addressed build cache replaces a definition-module stream
   (lex + parse + declaration analysis) with hash + fetch + install.
   These charges keep warm-cache DES timings honest: fingerprinting pays
   per block of source hashed, a store probe pays a fixed lookup, and
   installing a cached artifact pays per symbol re-entered plus per
   global frame restored.  All of it is far cheaper than recompiling an
   interface, which is the point — but it is not free. *)
let hash_block_bytes = 64 (* fingerprint hashing granularity *)
let hash_block = 4 (* per [hash_block_bytes] of source fingerprinted *)
let cache_probe = 30 (* one content-addressed store lookup *)
let cache_install_entry = 10 (* per symbol re-installed from an artifact *)
let cache_install_frame = 25 (* per global frame restored from an artifact *)

(* --- concurrency overheads --- *)
let spawn_cost = 60 (* creating a task and inserting it into the Supervisor *)
let signal_cost = 8 (* signaling an event *)
let wait_check_cost = 4 (* checking/queueing on an event *)
let dispatch_cost = 15.0 (* Supervisor assigning a task to a worker (time units) *)

(* --- fault recovery ---
   A task that crashes at a scheduling point before its body ran is
   redispatched after a virtual-time backoff, up to [retry_limit]
   attempts, then quarantined.  An injected stalled worker is delayed by
   [stall_penalty] per stall (also capped at [retry_limit] so a
   permanently stalling victim still terminates).  The stall watchdog
   runs off virtual time: when the agenda drains with tasks still parked
   on events that have already occurred (a dropped wake), it re-delivers
   the lost wake-ups [watchdog_interval] later. *)
let retry_backoff = 800 (* units before redispatching a crashed task *)
let retry_limit = 3
let stall_penalty = 5_000 (* units of injected stalled-worker latency *)
let watchdog_interval = 40_000.0 (* virtual time between watchdog sweeps *)

(* --- build farm (virtual seconds: the farm clock composes inner
   engine runs' end_seconds, like the compile server) ---
   Nodes heartbeat the coordinator every [farm_hb_seconds]; a node that
   misses [farm_miss_beats] beats is declared dead and its unfinished
   closures re-shard.  Remote-cache RPCs retry up to [rpc_retry_limit]
   times with capped exponential backoff; a gray-failed node serves
   [node_slow_factor] times slower. *)
let farm_hb_seconds = 0.05
let farm_miss_beats = 2
let rpc_retry_limit = 3
let rpc_backoff_seconds = 0.01 (* base; doubles per attempt *)
let rpc_backoff_cap_seconds = 0.08
let node_slow_factor = 6.0
let partition_seconds = 0.25 (* how long an injected partition lasts before healing *)

(* --- engine parameters --- *)
let quantum = 400 (* work units accumulated before yielding to the engine *)
let bus_beta = 0.0035
let seconds_per_unit = 4.0e-5

let to_seconds units = units *. seconds_per_unit
