(** The effect interface between compiler tasks and execution engines.

    Compiler code is direct-style OCaml that occasionally performs one of
    four effects — charge work, wait on an event, signal an event, spawn
    a task.  An execution engine is an effect handler: the DES interprets
    [Work] as virtual time on a simulated processor; the domain engine
    interprets [Wait]/[Signal] with parked continuations on real
    parallelism; outside any engine ("direct mode", the sequential
    compiler and unit tests) work accumulates into a running total and
    waits must already be satisfied.

    Work charges are batched to [Costs.quantum] so effect-handling
    overhead stays negligible while event timing keeps fine virtual
    resolution; every scheduling operation flushes the accumulator
    first. *)

type _ Effect.t +=
  | Work : int -> unit Effect.t
  | Wait : Event.t -> unit Effect.t
  | Signal : Event.t -> unit Effect.t
  | Spawn : Task.t -> unit Effect.t

(** Raised when [wait] is called on an unoccurred event outside any
    engine: the sequential compiler's processing order should make every
    wait a no-op, so this indicates a driver bug. *)
exception Deadlock_in_direct_mode of string

type mode = Direct | Engine

(** Current execution mode; set by engines around a run.  Exposed for
    engines and tests — compiler code never touches it. *)
val mode : mode ref

(** The work-unit accumulator (engine-internal). *)
val acc : int ref

(** When false, [work] is a no-op — set by the domain engine, whose tasks
    are measured in wall-clock time. *)
val accounting : bool ref

(** Reset/read the total charged in direct mode: the sequential
    compiler's virtual execution time. *)
val reset_direct_total : unit -> unit

val get_direct_total : unit -> float
val in_engine : unit -> bool

(** Charge [n] work units (batched). *)
val work : int -> unit

(** Flush the accumulator (performs [Work] under an engine). *)
val flush : unit -> unit

(** Wait for [ev]; immediate if it has occurred. *)
val wait : Event.t -> unit

(** Signal [ev], waking its waiters (under an engine). *)
val signal : Event.t -> unit

(** Submit a task to the running engine's Supervisor. *)
val spawn : Task.t -> unit

(** {1 Stepping — how engines drive task bodies} *)

(** One scheduler-visible step of a task.  [Finished] carries residual
    unflushed work units. *)
type step =
  | Finished of int
  | Failed of exn * Printexc.raw_backtrace
  | Worked of int * resumption
  | Blocked of Event.t * resumption
  | Signaled of Event.t * resumption
  | Spawned of Task.t * resumption

and resumption = (unit, step) Effect.Deep.continuation

(** Run a task body until its first step.  The installed deep handler
    stays in force for the task's whole lifetime, even when the
    continuation is resumed later or on a different domain. *)
val start : (unit -> unit) -> step

(** Resume a suspended task until its next step. *)
val resume : resumption -> step

(** Abort a suspended task by raising [e] at its suspension point; the
    body unwinds (cleanups run) and the handler yields [Failed].  Used
    by the DES engine's fault injection. *)
val discontinue : resumption -> exn -> step
