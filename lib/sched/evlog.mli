(** The structured concurrency event log — an alias of [Mcc_obs.Evlog].

    The implementation lives at the bottom of the dependency stack so
    the telemetry consumers ([Mcc_obs.Span], [Mcc_obs.Critpath]) can
    replay the same stream the scheduler and the symbol tables emit
    into without a dependency cycle.  The [struct include] form below
    re-exports every type {e equal} to the original's ([kind], [record]
    and friends are interchangeable with [Mcc_obs.Evlog]'s), keeping
    every emitter and analyzer source-compatible: [Mcc_sched.Evlog]
    {e is} [Mcc_obs.Evlog]. *)

include module type of struct
  include Mcc_obs.Evlog
end
