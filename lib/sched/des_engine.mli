(** The discrete-event simulated multiprocessor.

    Runs real compiler tasks on [procs] simulated processors, advancing a
    virtual clock from the work units the tasks charge — the stand-in
    for the paper's 8-CVax DEC Firefly.  Deterministic: ties break by
    insertion order, so the same inputs give bit-identical traces.

    Scheduling follows the Supervisors approach (paper §2.3.2): handled
    waits suspend the task and free the processor (preferring the
    event's producer next); barrier waits keep the processor bound;
    avoided events gate task start.  A work segment started with [b]
    busy processors is stretched by [1 + beta*(b-1)^2] (memory-bus
    saturation, §4.1). *)

type outcome =
  | Completed
  | Deadlocked of string list
      (** descriptions of tasks still parked when the agenda drained *)

type result = {
  end_time : float;  (** virtual work units *)
  end_seconds : float;  (** [end_time] scaled by {!Costs.seconds_per_unit} *)
  trace : Trace.t;
  outcome : outcome;
  tasks_run : int;
  failures : (string * exn) list;  (** tasks that raised, with their exception *)
  handled_blocks : int;
      (** suspensions on handled events of any kind; symbol-table DKY
          blockages specifically are counted by [Mcc_sem.Lookup_stats] *)
  injected : int;  (** faults fired by the armed {!Fault} plan during the run *)
  retries : int;  (** crashed-at-start tasks redispatched after backoff *)
  quarantined : string list;  (** tasks permanently failed by injection *)
  stalls : int;  (** injected stalled-worker delays *)
  watchdog_fires : int;  (** occurred events whose lost wakes were re-delivered *)
  recovered_wakes : int;  (** parked tasks the watchdog woke *)
}

(** [run ~beta ~procs tasks] simulates the initial task set (plus
    everything it spawns) to quiescence.  [beta] defaults to
    {!Costs.bus_beta}; [~fifo:true] disables the Supervisor's priority
    scheduling (ablation of paper §2.3.4).  [~perturb:seed] randomizes
    ready-queue tie-breaking with a {!Mcc_util.Prng} seeded from [seed]
    — every perturbed run is still a legal Supervisor schedule (used by
    the schedule explorer; see {!Supervisor.create}).

    When a {!Fault} plan is armed, dispatches consult it: a crash before
    a task's body ran retries after a virtual-time backoff (then
    quarantines); a crash at a resume point quarantines immediately
    (partial effects make re-runs unsafe); dropped wakes leave waiters
    parked for the virtual-time stall watchdog, which re-delivers the
    lost wake-ups at quiescence instead of reporting a deadlock. *)
val run : ?beta:float -> ?fifo:bool -> ?perturb:int -> procs:int -> Task.t list -> result
