(* The discrete-event simulated multiprocessor.

   This engine runs real compiler tasks (which do real compilation work
   on real source text) on [procs] simulated processors, advancing a
   virtual clock from the work units the tasks charge.  It substitutes
   for the paper's 8-CVax DEC Firefly: the *shape* of the computation —
   which tasks exist, what they wait on, how much work each does — comes
   from the actual compilation; only time is virtual.  Runs are exactly
   deterministic: the agenda breaks ties by insertion order and the free
   processor list is kept sorted.

   Scheduling follows the Supervisors approach (paper §2.3.2): tasks are
   queued in the Supervisor's class-priority structure; a processor that
   frees up takes the highest-priority ready task.  A task blocking on a
   handled event is suspended (its continuation parked on the event) and
   its processor is given other work, with preference given to the task
   that will signal the awaited event; barrier waits keep the processor
   bound, as in the paper's token streams.

   Memory-bus contention: a work segment started when [b] processors are
   busy is stretched by (1 + beta*(b-1)), modelling the Firefly's bus
   saturation (paper §4.1). *)

open Mcc_util
module Metrics = Mcc_obs.Metrics

type outcome = Completed | Deadlocked of string list

type result = {
  end_time : float; (* virtual work units *)
  end_seconds : float; (* end_time scaled by Costs.seconds_per_unit *)
  trace : Trace.t;
  outcome : outcome;
  tasks_run : int;
  failures : (string * exn) list; (* task name, exception *)
  handled_blocks : int;
      (* suspensions on handled events of any kind (token-queue waits,
         completion waits, ...); symbol-table DKY blockages specifically
         are counted by [Mcc_sem.Lookup_stats] *)
  injected : int; (* faults fired by the armed Fault plan during the run *)
  retries : int; (* crashed-at-start tasks redispatched after backoff *)
  quarantined : string list; (* tasks permanently failed by injection *)
  stalls : int; (* injected stalled-worker delays *)
  watchdog_fires : int; (* occurred events whose lost wakes were re-delivered *)
  recovered_wakes : int; (* parked tasks the watchdog woke *)
}

type item =
  | Start of int * Task.t
  | Continue of int * Task.t * Eff.resumption
  | Complete of int * Task.t

type state = {
  sup : Supervisor.t;
  agenda : item Heap.t;
  trace : Trace.t;
  waiting : (int, (Task.t * Eff.resumption) list) Hashtbl.t;
  barrier_waiting : (int, (int * float * Task.t * Eff.resumption) list) Hashtbl.t;
  events_seen : (int, Event.t) Hashtbl.t;
      (* every event that crossed a block or signal site, by id — lets
         the watchdog and the deadlock report ask whether an id has
         occurred and name it *)
  attempts : (int, int) Hashtbl.t; (* task id -> injected start-crash count *)
  stalled : (int, int) Hashtbl.t; (* task id -> injected stall count *)
  mutable free : int list; (* sorted ascending *)
  mutable barrier_count : int;
  mutable n_blocked : int;
  mutable n_finished : int;
  mutable failures : (string * exn) list;
  mutable handled_blocks : int;
  mutable retries : int;
  mutable quarantined : string list; (* reversed *)
  mutable stalls : int;
  mutable watchdog_fires : int;
  mutable recovered_wakes : int;
  procs : int;
  beta : float;
}

let dummy_item = Complete (0, Task.create ~cls:Task.Aux ~name:"dummy" (fun () -> ()))

let busy st = st.procs - List.length st.free - st.barrier_count

let scale st units =
  let b = max 1 (busy st) in
  let x = float_of_int (b - 1) in
  float_of_int units *. (1.0 +. (st.beta *. x *. x))

let take_free st =
  match st.free with
  | [] -> None
  | p :: rest ->
      st.free <- rest;
      Some p

let add_free st p = st.free <- List.sort compare (p :: st.free)

let schedule_entry st t p entry =
  let t' = t +. Costs.dispatch_cost in
  match entry with
  | Supervisor.Fresh task -> Heap.push st.agenda t' (Start (p, task))
  | Supervisor.Resumed (task, k) -> Heap.push st.agenda t' (Continue (p, task, k))

(* Give ready tasks to free processors at time [t]. *)
let rec try_assign st t =
  if st.free <> [] && Supervisor.n_ready st.sup > 0 then begin
    match take_free st with
    | None -> ()
    | Some p -> (
        match Supervisor.pick st.sup with
        | Some entry ->
            schedule_entry st t p entry;
            try_assign st t
        | None -> add_free st p)
  end

(* Processor [p] became free at [t]: give it work or park it. *)
let release_proc st t p =
  match Supervisor.pick st.sup with
  | Some entry -> schedule_entry st t p entry
  | None -> add_free st p

let do_signal st t (ev : Event.t) =
  if not (Event.occurred ev) then begin
    Event.mark ev;
    ev.Event.signal_time <- t;
    Hashtbl.replace st.events_seen ev.Event.id ev;
    if Evlog.enabled () then Evlog.emit (Evlog.Ev_signal { ev = ev.Event.id; name = ev.Event.name });
    if Metrics.enabled () then Metrics.incr "mcc_sched_signal_total";
    (* release tasks gated on this avoided event *)
    Supervisor.on_event st.sup ev;
    (* injected dropped wake: the signal lands (the event is marked, the
       gate opens) but the handled waiters' wake-ups are lost — they stay
       parked in [st.waiting] for the stall watchdog to find *)
    let dropped = Fault.armed () && Fault.drop_wake ~ev:ev.Event.name in
    if dropped && Evlog.enabled () then
      Evlog.emit (Evlog.Fault_inject { fault = "dropped-wake"; victim = ev.Event.name });
    (* wake handled waiters: their continuations go back to the ready
       structure, at the front of their class *)
    (match Hashtbl.find_opt st.waiting ev.Event.id with
    | None -> ()
    | Some waiters when not dropped ->
        Hashtbl.remove st.waiting ev.Event.id;
        List.iter
          (fun ((task : Task.t), k) ->
            st.n_blocked <- st.n_blocked - 1;
            if Evlog.enabled () then
              Evlog.emit (Evlog.Ev_wake { ev = ev.Event.id; task = task.Task.id });
            if Metrics.enabled () then Metrics.incr "mcc_sched_wake_total";
            Supervisor.resume st.sup task k)
          waiters
    | Some _ -> ());
    (* wake barrier waiters on their own (still bound) processors *)
    (match Hashtbl.find_opt st.barrier_waiting ev.Event.id with
    | None -> ()
    | Some waiters ->
        Hashtbl.remove st.barrier_waiting ev.Event.id;
        List.iter
          (fun (p, t_block, (task : Task.t), k) ->
            st.barrier_count <- st.barrier_count - 1;
            if Evlog.enabled () then
              Evlog.emit (Evlog.Ev_wake { ev = ev.Event.id; task = task.Task.id });
            Trace.add st.trace ~proc:p ~task_id:task.Task.id ~cls:task.Task.cls ~t0:t_block ~t1:t
              ~kind:Trace.Waitbar;
            Heap.push st.agenda t (Continue (p, task, k)))
          waiters);
    try_assign st t
  end

(* Drive one task on processor [p] starting from [step] at time [t],
   until it yields to the scheduler. *)
let rec handle_step st t p (task : Task.t) (step : Eff.step) =
  match step with
  | Eff.Worked (c, k) ->
      let dur = scale st c in
      if Metrics.enabled () then begin
        Metrics.observe ~labels:[ ("cls", Task.cls_name task.Task.cls) ] "mcc_task_run_units" dur;
        Metrics.gauge_max "mcc_sched_busy_procs_peak" (float_of_int (busy st))
      end;
      Trace.add st.trace ~proc:p ~task_id:task.Task.id ~cls:task.Task.cls ~t0:t ~t1:(t +. dur)
        ~kind:Trace.Run;
      Heap.push st.agenda (t +. dur) (Continue (p, task, k))
  | Eff.Finished residue ->
      if residue > 0 then begin
        let dur = scale st residue in
        if Metrics.enabled () then
          Metrics.observe ~labels:[ ("cls", Task.cls_name task.Task.cls) ] "mcc_task_run_units" dur;
        Trace.add st.trace ~proc:p ~task_id:task.Task.id ~cls:task.Task.cls ~t0:t ~t1:(t +. dur)
          ~kind:Trace.Run;
        Heap.push st.agenda (t +. dur) (Complete (p, task))
      end
      else finish_task st t p task
  | Eff.Failed (e, _bt) ->
      st.failures <- (task.Task.name, e) :: st.failures;
      finish_task st t p task
  | Eff.Blocked (ev, k) ->
      Hashtbl.replace st.events_seen ev.Event.id ev;
      if Event.occurred ev then handle_step st t p task (Eff.resume k)
      else if ev.Event.kind = Event.Barrier then begin
        if Evlog.enabled () then
          Evlog.emit
            (Evlog.Ev_block { ev = ev.Event.id; name = ev.Event.name; producer = ev.Event.producer });
        if Metrics.enabled () then
          Metrics.incr ~labels:[ ("kind", "barrier") ] "mcc_sched_block_total";
        task.Task.state <- Task.Blocked;
        st.barrier_count <- st.barrier_count + 1;
        let l = Option.value ~default:[] (Hashtbl.find_opt st.barrier_waiting ev.Event.id) in
        Hashtbl.replace st.barrier_waiting ev.Event.id ((p, t, task, k) :: l)
      end
      else begin
        if Evlog.enabled () then
          Evlog.emit
            (Evlog.Ev_block { ev = ev.Event.id; name = ev.Event.name; producer = ev.Event.producer });
        if Metrics.enabled () then
          Metrics.incr ~labels:[ ("kind", "handled") ] "mcc_sched_block_total";
        task.Task.state <- Task.Blocked;
        st.n_blocked <- st.n_blocked + 1;
        st.handled_blocks <- st.handled_blocks + 1;
        let l = Option.value ~default:[] (Hashtbl.find_opt st.waiting ev.Event.id) in
        Hashtbl.replace st.waiting ev.Event.id ((task, k) :: l);
        (* prefer the task that will signal this event (paper §2.3.4) *)
        Supervisor.prefer st.sup ev.Event.producer;
        release_proc st t p
      end
  | Eff.Signaled (ev, k) ->
      do_signal st t ev;
      handle_step st t p task (Eff.resume k)
  | Eff.Spawned (task', k) ->
      if Evlog.enabled () then
        Evlog.emit
          (Evlog.Task_spawn
             {
               task = task'.Task.id;
               name = task'.Task.name;
               cls = Task.cls_name task'.Task.cls;
               gate = (match task'.Task.gate with Some g -> g.Event.id | None -> -1);
             });
      Supervisor.submit st.sup task';
      try_assign st t;
      handle_step st t p task (Eff.resume k)

and finish_task st t p (task : Task.t) =
  if Evlog.enabled () then Evlog.emit (Evlog.Task_finish { task = task.Task.id });
  if Metrics.enabled () then
    Metrics.incr ~labels:[ ("cls", Task.cls_name task.Task.cls) ] "mcc_task_finish_total";
  task.Task.state <- Task.Done;
  st.n_finished <- st.n_finished + 1;
  release_proc st t p

(* Retries exhausted (or a resume-point crash, where partial effects
   make a re-run unsafe): permanently fail the task.  It still counts as
   finished so the engine's accounting stays uniform; the driver decides
   what the lost stream means for the program. *)
let quarantine st t p (task : Task.t) =
  if Evlog.enabled () then
    Evlog.emit (Evlog.Task_quarantine { task = task.Task.id; name = task.Task.name });
  if Metrics.enabled () then Metrics.incr "mcc_fault_quarantine_total";
  st.quarantined <- task.Task.name :: st.quarantined;
  st.failures <- (task.Task.name, Fault.Injected task.Task.name) :: st.failures;
  finish_task st t p task

(* Consult the armed fault plan at a Start dispatch.  Returns true when
   the fault consumed this dispatch (the caller skips running the body).
   A crash before the body ran is retryable: redispatch after a
   virtual-time backoff, up to [Costs.retry_limit] attempts, then
   quarantine.  A stall just delays the dispatch, capped at
   [Costs.retry_limit] stalls so a pinned victim still terminates. *)
let inject_at_start st t p (task : Task.t) =
  if not (Fault.armed ()) then false
  else begin
    let name = task.Task.name and cls = Task.cls_name task.Task.cls in
    let count tbl = Option.value ~default:0 (Hashtbl.find_opt tbl task.Task.id) in
    if Fault.crash ~name ~cls then begin
      if Evlog.enabled () then
        Evlog.emit (Evlog.Fault_inject { fault = "task-crash"; victim = name });
      let n = 1 + count st.attempts in
      Hashtbl.replace st.attempts task.Task.id n;
      if n <= Costs.retry_limit then begin
        st.retries <- st.retries + 1;
        if Evlog.enabled () then Evlog.emit (Evlog.Task_retry { task = task.Task.id; attempt = n });
        if Metrics.enabled () then Metrics.incr "mcc_fault_retry_total";
        Heap.push st.agenda (t +. float_of_int Costs.retry_backoff) (Start (p, task))
      end
      else quarantine st t p task;
      true
    end
    else if count st.stalled < Costs.retry_limit && Fault.stall ~name ~cls then begin
      if Evlog.enabled () then Evlog.emit (Evlog.Fault_inject { fault = "stall"; victim = name });
      Hashtbl.replace st.stalled task.Task.id (1 + count st.stalled);
      if Metrics.enabled () then Metrics.incr "mcc_fault_stall_total";
      st.stalls <- st.stalls + 1;
      Heap.push st.agenda (t +. float_of_int Costs.stall_penalty) (Start (p, task));
      true
    end
    else false
  end

(* Diagnose what everyone is stuck on when the agenda drains with parked
   tasks remaining: the blocked-task wait graph, with event names and
   expected producers where known. *)
let deadlock_report st =
  let ev_desc ev_id =
    match Hashtbl.find_opt st.events_seen ev_id with
    | Some ev ->
        let prod =
          if ev.Event.producer >= 0 then Printf.sprintf ", producer task#%d" ev.Event.producer
          else ""
        in
        if ev.Event.name <> "" then Printf.sprintf "event#%d (%s%s)" ev_id ev.Event.name prod
        else Printf.sprintf "event#%d" ev_id
    | None -> Printf.sprintf "event#%d" ev_id
  in
  let waits =
    Hashtbl.fold
      (fun ev_id waiters acc ->
        List.map
          (fun ((t : Task.t), _) -> Printf.sprintf "%s waits on %s" t.name (ev_desc ev_id))
          waiters
        @ acc)
      st.waiting []
  in
  let bars =
    Hashtbl.fold
      (fun ev_id waiters acc ->
        List.map
          (fun (_, _, (t : Task.t), _) ->
            Printf.sprintf "%s barrier-waits on %s" t.name (ev_desc ev_id))
          waiters
        @ acc)
      st.barrier_waiting []
  in
  let gates =
    List.concat_map
      (fun (ev_id, names) ->
        List.map (fun n -> Printf.sprintf "%s gated on %s" n (ev_desc ev_id)) names)
      (Supervisor.gated_events st.sup)
  in
  List.sort compare (waits @ bars @ gates)

(* The virtual-time stall watchdog.  Called when the agenda has drained
   with tasks still parked: any parked task whose event has in fact
   occurred lost its wake (an injected dropped wake, or any future bug
   of the same shape) — re-deliver it [Costs.watchdog_interval] later
   and let the run continue.  Returns true if anything was recovered. *)
let watchdog_sweep st t =
  if Evlog.enabled () then Evlog.set_time t;
  if Metrics.enabled () then Metrics.incr "mcc_watchdog_sweep_total";
  let stale tbl =
    Hashtbl.fold
      (fun ev_id waiters acc ->
        match Hashtbl.find_opt st.events_seen ev_id with
        | Some ev when Event.occurred ev -> (ev_id, waiters) :: acc
        | _ -> acc)
      tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let recovered = ref false in
  List.iter
    (fun (ev_id, waiters) ->
      Hashtbl.remove st.waiting ev_id;
      st.watchdog_fires <- st.watchdog_fires + 1;
      List.iter
        (fun ((task : Task.t), k) ->
          recovered := true;
          st.n_blocked <- st.n_blocked - 1;
          st.recovered_wakes <- st.recovered_wakes + 1;
          if Evlog.enabled () then begin
            Evlog.emit (Evlog.Watchdog_fire { ev = ev_id; task = task.Task.id });
            Evlog.emit (Evlog.Ev_wake { ev = ev_id; task = task.Task.id })
          end;
          Supervisor.resume st.sup task k)
        waiters)
    (stale st.waiting);
  List.iter
    (fun (ev_id, waiters) ->
      Hashtbl.remove st.barrier_waiting ev_id;
      st.watchdog_fires <- st.watchdog_fires + 1;
      List.iter
        (fun (p, t_block, (task : Task.t), k) ->
          recovered := true;
          st.barrier_count <- st.barrier_count - 1;
          st.recovered_wakes <- st.recovered_wakes + 1;
          if Evlog.enabled () then begin
            Evlog.emit (Evlog.Watchdog_fire { ev = ev_id; task = task.Task.id });
            Evlog.emit (Evlog.Ev_wake { ev = ev_id; task = task.Task.id })
          end;
          Trace.add st.trace ~proc:p ~task_id:task.Task.id ~cls:task.Task.cls ~t0:t_block ~t1:t
            ~kind:Trace.Waitbar;
          Heap.push st.agenda t (Continue (p, task, k)))
        waiters)
    (stale st.barrier_waiting);
  if !recovered then try_assign st t;
  !recovered

let run ?(beta = Costs.bus_beta) ?(fifo = false) ?perturb ~procs tasks =
  if procs < 1 then invalid_arg "Des_engine.run: need at least one processor";
  let st =
    {
      sup = Supervisor.create ~fifo ?perturb:(Option.map Prng.create perturb) ();
      agenda = Heap.create dummy_item;
      trace = Trace.create ();
      waiting = Hashtbl.create 64;
      barrier_waiting = Hashtbl.create 64;
      events_seen = Hashtbl.create 64;
      attempts = Hashtbl.create 8;
      stalled = Hashtbl.create 8;
      free = List.init procs Fun.id;
      barrier_count = 0;
      n_blocked = 0;
      n_finished = 0;
      failures = [];
      handled_blocks = 0;
      retries = 0;
      quarantined = [];
      stalls = 0;
      watchdog_fires = 0;
      recovered_wakes = 0;
      procs;
      beta;
    }
  in
  let fired0 = Fault.fired () in
  let saved_mode = !Eff.mode in
  Eff.mode := Eff.Engine;
  Eff.acc := 0;
  Fun.protect
    ~finally:(fun () -> Eff.mode := saved_mode)
    (fun () ->
      let logging = Evlog.enabled () in
      if logging then begin
        Evlog.set_time 0.0;
        List.iter
          (fun (task : Task.t) ->
            Evlog.emit
              (Evlog.Task_spawn
                 {
                   task = task.Task.id;
                   name = task.Task.name;
                   cls = Task.cls_name task.Task.cls;
                   gate = (match task.Task.gate with Some g -> g.Event.id | None -> -1);
                 }))
          tasks
      end;
      List.iter (Supervisor.submit st.sup) tasks;
      try_assign st 0.0;
      let last_t = ref 0.0 in
      let rec loop () =
        match Heap.pop st.agenda with
        | None -> ()
        | Some (t, item) ->
            last_t := t;
            if logging then Evlog.set_time t;
            if Metrics.enabled () then
              Metrics.incr
                ~labels:
                  [
                    ( "cls",
                      Task.cls_name
                        (match item with
                        | Start (_, task) | Continue (_, task, _) | Complete (_, task) ->
                            task.Task.cls) );
                  ]
                "mcc_sched_dispatch_total";
            (match item with
            | Start (p, task) ->
                if inject_at_start st t p task then ()
                else begin
                  if logging then begin
                    Evlog.set_task task.Task.id;
                    Evlog.emit (Evlog.Task_start { task = task.Task.id })
                  end;
                  task.Task.state <- Task.Running;
                  handle_step st t p task (Eff.start task.Task.body)
                end
            | Continue (p, task, k) ->
                if logging then Evlog.set_task task.Task.id;
                if
                  Fault.armed ()
                  && Fault.crash ~name:task.Task.name ~cls:(Task.cls_name task.Task.cls)
                then begin
                  (* crash at a resume point: the body already ran partway
                     (it may have published symbols), so a re-run is
                     unsafe — quarantine via an injected abort *)
                  if logging then
                    Evlog.emit
                      (Evlog.Fault_inject { fault = "task-crash"; victim = task.Task.name });
                  if logging then
                    Evlog.emit
                      (Evlog.Task_quarantine { task = task.Task.id; name = task.Task.name });
                  st.quarantined <- task.Task.name :: st.quarantined;
                  handle_step st t p task (Eff.discontinue k (Fault.Injected task.Task.name))
                end
                else handle_step st t p task (Eff.resume k)
            | Complete (p, task) ->
                if logging then Evlog.set_task task.Task.id;
                finish_task st t p task);
            loop ()
      in
      loop ();
      (* quiescence with tasks still parked: give the stall watchdog a
         chance to convert dropped wakes back into progress before
         declaring deadlock *)
      let rec drive () =
        let t = !last_t +. Costs.watchdog_interval in
        if watchdog_sweep st t then begin
          last_t := t;
          loop ();
          drive ()
        end
      in
      drive ();
      let stuck = deadlock_report st in
      let end_time = max !last_t (Trace.horizon st.trace) in
      {
        end_time;
        end_seconds = Costs.to_seconds end_time;
        trace = st.trace;
        outcome = (if stuck = [] then Completed else Deadlocked stuck);
        tasks_run = st.n_finished;
        failures = List.rev st.failures;
        handled_blocks = st.handled_blocks;
        injected = Fault.fired () - fired0;
        retries = st.retries;
        quarantined = List.rev st.quarantined;
        stalls = st.stalls;
        watchdog_fires = st.watchdog_fires;
        recovered_wakes = st.recovered_wakes;
      })
