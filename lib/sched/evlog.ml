(* The structured concurrency event log.

   The implementation lives in [Mcc_obs.Evlog], at the bottom of the
   dependency stack, so the telemetry consumers ([Mcc_obs.Span],
   [Mcc_obs.Critpath]) can replay the same stream the scheduler and the
   symbol tables emit into without a dependency cycle.  This alias keeps
   every existing emitter and analyzer source-compatible:
   [Mcc_sched.Evlog] *is* [Mcc_obs.Evlog]. *)

include Mcc_obs.Evlog
