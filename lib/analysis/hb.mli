(** The happens-before checker.

    Replays a structured concurrency event log ({!Mcc_sched.Evlog})
    captured from a DES run and verifies the ordering invariants of
    paper §2.3.3: observations follow publications, scopes never publish
    after completing (nor contradict an authoritative miss), DKY blocks
    pair with unblocks, engine blocks pair with post-signal wakes, gated
    tasks start after their gates, and the instantaneous wait-for graph
    stays acyclic (the deadlock detector).

    Recovery invariants (fault injection): every [Task_retry] pairs with
    a preceding un-consumed crash [Fault_inject] on the same task, and
    no symbol published by a quarantined task is observed unless its
    scope still completed.

    Pure: a function of the log only, so it can be exercised on
    hand-built logs in tests. *)

type violation =
  | Observe_before_publish of { scope : int; scope_name : string; sym : string; observe_seq : int }
  | Publish_after_complete of {
      scope : int;
      scope_name : string;
      sym : string;
      publish_seq : int;
      complete_seq : int;
    }
  | Miss_then_publish of {
      scope : int;
      scope_name : string;
      sym : string;
      miss_seq : int;
      publish_seq : int;
    }
  | Unmatched_dky_block of { task : int; scope_name : string; sym : string; ev : int; block_seq : int }
  | Unwoken_block of { task : int; ev : int; ev_name : string; block_seq : int }
  | Wake_before_signal of { task : int; ev : int; wake_seq : int }
  | Start_before_gate of { task : int; gate : int; start_seq : int }
  | Wait_cycle of { tasks : int list; seq : int }
  | Retry_without_fault of { task : int; attempt : int; retry_seq : int }
  | Quarantine_observed of {
      scope : int;
      scope_name : string;
      sym : string;
      task : int;
      observe_seq : int;
    }
  | Serve_without_fetch of { node : int; peer : int; iface : string; serve_seq : int }
      (** a farm node delivered an artifact nobody had requested on that link *)
  | Task_lost of { iface : string; node : int }
      (** a sharded closure (last placed on [node]) never completed —
          the no-task-lost-on-crash invariant *)
  | Task_done_twice of { iface : string; first : int; second : int }
      (** a closure completed on two nodes — stealing or re-sharding duplicated work *)

type report = {
  violations : violation list;  (** sorted by rendering; empty = clean *)
  n_records : int;
  n_publishes : int;
  n_observes : int;
  n_auth_misses : int;
  n_dky_blocks : int;
  n_dky_unblocks : int;
  n_signals : int;
  n_blocks : int;
  n_wakes : int;
  n_spawned : int;
  n_finished : int;
  n_injects : int;  (** [Fault_inject] records *)
  n_retries : int;  (** [Task_retry] records *)
  n_quarantines : int;  (** [Task_quarantine] records *)
  n_watchdog : int;  (** [Watchdog_fire] records *)
  n_fetches : int;  (** [Rpc_fetch] records *)
  n_serves : int;  (** [Rpc_serve] records *)
  n_hedges : int;  (** [Rpc_hedge] records *)
  n_node_deaths : int;  (** [Node_dead] records *)
  n_farm_tasks : int;  (** distinct sharded closures seen *)
  n_farm_done : int;  (** [Farm_task_done] records *)
  n_steals : int;  (** [Farm_steal] records *)
  n_reshards : int;  (** [Farm_reshard] records *)
}

val check : Mcc_sched.Evlog.record array -> report
val ok : report -> bool
val violation_to_string : violation -> string

(** One-line counters + violation count. *)
val summary : report -> string
