(** The schedule explorer.

    Re-runs one compilation under many legal Supervisor schedules
    (ready-queue tie-breaking perturbed by a seeded PRNG) across the DKY
    strategy x processor-count matrix, and asserts per run that the
    happens-before checker is clean and that the output (object-code
    disassembly + sorted diagnostics) is byte-identical to the cell's
    unperturbed baseline — the schedule-independence claim of the
    paper's DKY design, checked mechanically. *)

open Mcc_sem

type run = {
  perturb_seed : int option;  (** [None] = the canonical baseline schedule *)
  hb : Hb.report;
  equivalent : bool;  (** output matches the cell's baseline *)
  deadlocked : bool;
}

type cell = {
  strategy : Symtab.dky;
  procs : int;
  runs : run list;  (** baseline first, then the perturbed schedules *)
  cell_violations : int;
  cell_divergent : int;  (** perturbed runs whose output differed *)
}

type report = {
  cells : cell list;
  schedules_explored : int;  (** every run, baselines included *)
  total_violations : int;
  divergent_runs : int;
  all_equivalent : bool;
  violation_samples : string list;  (** up to 8 rendered violations *)
}

(** [explore store] compiles [store] [1 + schedules] times per
    (strategy, procs) cell: one canonical baseline plus [schedules]
    perturbed runs whose tie-break seeds derive from [seed].
    [~inject_early_publish:scope_name] arms a deterministic
    [early-complete] fault plan ({!Mcc_sched.Fault}) for every run, to
    demonstrate detection. *)
val explore :
  ?schedules:int ->
  ?seed:int ->
  ?strategies:Symtab.dky list ->
  ?procs_list:int list ->
  ?inject_early_publish:string ->
  Mcc_core.Source_store.t ->
  report

(** No violations and no divergent output. *)
val clean : report -> bool

(** The matrix, one row per (strategy, procs) cell, plus totals and
    violation samples. *)
val render : report -> string
