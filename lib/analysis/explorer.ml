(* The schedule explorer.

   The DES engine is deterministic, so one compile exercises exactly one
   interleaving.  The explorer widens the net: it re-runs the same
   compilation many times with the Supervisor's ready-queue tie-breaking
   perturbed by a seeded PRNG (every perturbed run is still a legal
   Supervisor schedule — see Supervisor.create), across the DKY strategy
   x processor-count matrix, and asserts two things per run:

   - the happens-before checker finds no violations in the captured
     event log (Hb.check);
   - the compiler's *output* — object code disassembly and sorted
     diagnostics — is byte-identical to the cell's unperturbed baseline.

   Together these are the reproduction of the paper's implicit claim
   that DKY synchronization makes the concurrent compiler's result
   schedule-independent.

   [~inject_early_publish:scope] arms a deterministic early-complete
   fault plan (Mcc_sched.Fault) for every run, to prove the checker
   actually catches a seeded early-publish bug. *)

open Mcc_util
open Mcc_sched
open Mcc_sem
open Mcc_core

type run = {
  perturb_seed : int option; (* None = the canonical baseline schedule *)
  hb : Hb.report;
  equivalent : bool; (* output matches the cell's baseline *)
  deadlocked : bool;
}

type cell = {
  strategy : Symtab.dky;
  procs : int;
  runs : run list; (* baseline first, then the perturbed schedules *)
  cell_violations : int;
  cell_divergent : int; (* perturbed runs whose output differed *)
}

type report = {
  cells : cell list;
  schedules_explored : int; (* every run, baselines included *)
  total_violations : int;
  divergent_runs : int;
  all_equivalent : bool;
  violation_samples : string list; (* up to [sample_cap] rendered violations *)
}

let sample_cap = 8

(* A fresh plan per run: the occurrence counter must rewind so every
   schedule sees the same early completion at its first matching entry. *)
let with_injection scope_name f =
  match scope_name with
  | None -> f ()
  | Some s ->
      let spec =
        { Fault.kind = Fault.Early_complete; target = Some s; at = Some 1; rate = None; permanent = false }
      in
      Fault.with_plan (Fault.plan [ spec ]) f

(* What "same output" means: the canonical disassembly (sorted unit keys
   and frames, so it is insertion-order independent) plus the sorted
   diagnostics. *)
let fingerprint (r : Driver.result) =
  (Mcc_codegen.Cunit.disassemble r.Driver.program, List.map Mcc_m2.Diag.to_string r.Driver.diags)

let run_one ~config ~inject store =
  with_injection inject (fun () -> Driver.compile ~config ~capture:true store)

let explore ?(schedules = 8) ?(seed = 1) ?(strategies = Symtab.all_concurrent)
    ?(procs_list = [ 1; 2; 4; 8 ]) ?inject_early_publish (store : Mcc_core.Source_store.t) : report
    =
  if schedules < 0 then invalid_arg "Explorer.explore: negative schedule count";
  let master = Prng.create seed in
  let samples = ref [] and n_samples = ref 0 in
  let take_samples (hb : Hb.report) =
    List.iter
      (fun v ->
        if !n_samples < sample_cap then begin
          samples := Hb.violation_to_string v :: !samples;
          incr n_samples
        end)
      hb.Hb.violations
  in
  let cells =
    List.concat_map
      (fun strategy ->
        List.map
          (fun procs ->
            let config =
              { Driver.default_config with Driver.strategy; procs; perturb = None }
            in
            let base = run_one ~config ~inject:inject_early_publish store in
            let base_fp = fingerprint base in
            let mk_run seed_opt (r : Driver.result) =
              let hb = Hb.check r.Driver.log in
              take_samples hb;
              {
                perturb_seed = seed_opt;
                hb;
                equivalent = fingerprint r = base_fp;
                deadlocked =
                  (match r.Driver.sim.Mcc_sched.Des_engine.outcome with
                  | Mcc_sched.Des_engine.Deadlocked _ -> true
                  | Mcc_sched.Des_engine.Completed -> false);
              }
            in
            let baseline = mk_run None base in
            let perturbed =
              List.init schedules (fun _ ->
                  let s = Prng.int master 0x3FFFFFFF in
                  let config = { config with Driver.perturb = Some s } in
                  mk_run (Some s) (run_one ~config ~inject:inject_early_publish store))
            in
            let runs = baseline :: perturbed in
            {
              strategy;
              procs;
              runs;
              cell_violations =
                List.fold_left (fun acc r -> acc + List.length r.hb.Hb.violations) 0 runs;
              cell_divergent =
                List.length (List.filter (fun r -> not r.equivalent) perturbed);
            })
          procs_list)
      strategies
  in
  let total_violations = List.fold_left (fun acc c -> acc + c.cell_violations) 0 cells in
  let divergent_runs = List.fold_left (fun acc c -> acc + c.cell_divergent) 0 cells in
  {
    cells;
    schedules_explored = List.fold_left (fun acc c -> acc + List.length c.runs) 0 cells;
    total_violations;
    divergent_runs;
    all_equivalent = divergent_runs = 0;
    violation_samples = List.rev !samples;
  }

let clean r = r.total_violations = 0 && r.all_equivalent

(* The matrix, one row per (strategy, procs) cell. *)
let render (r : report) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-12s %5s %9s %10s %9s %8s\n" "strategy" "procs" "schedules" "violations"
       "divergent" "deadlock");
  List.iter
    (fun c ->
      let deadlocks = List.length (List.filter (fun x -> x.deadlocked) c.runs) in
      Buffer.add_string buf
        (Printf.sprintf "%-12s %5d %9d %10d %9d %8d\n" (Symtab.dky_name c.strategy) c.procs
           (List.length c.runs) c.cell_violations c.cell_divergent deadlocks))
    r.cells;
  Buffer.add_string buf
    (Printf.sprintf "total: %d runs, %d violations, %d divergent — %s\n" r.schedules_explored
       r.total_violations r.divergent_runs
       (if clean r then "CLEAN" else "VIOLATIONS DETECTED"));
  List.iter (fun s -> Buffer.add_string buf ("  " ^ s ^ "\n")) r.violation_samples;
  Buffer.contents buf
