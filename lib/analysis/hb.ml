(* The happens-before checker.

   Replays a structured concurrency event log (Mcc_sched.Evlog) captured
   from a DES run and verifies the ordering invariants the paper's
   correctness argument rests on (§2.3.3).  The DES engine is single-
   threaded, so the log's sequence numbers are the true execution order;
   "A happens before B" is simply "A's record precedes B's".  The checks:

   - every observation of a symbol is preceded by its publication
     (a lookup can never see a symbol its declaring task has not yet
     entered);
   - no scope publishes after completing, and no authoritative miss (a
     miss in a *complete* table) is later contradicted by a publication
     to the same scope — the early-publish family of bugs;
   - every DKY block record is matched by a later unblock by the same
     task (no lookup left hanging);
   - every engine-level block is matched by a wake, wakes only follow
     their event's signal, and a gated task never starts before its gate
     is signaled;
   - the instantaneous wait-for graph (blocked task -> expected producer)
     is acyclic at every step — the deadlock detector.

   Recovery invariants (fault injection, ISSUE 3): every retry record is
   paired with a preceding un-consumed crash injection on the same task
   (the engine never redispatches a task that did not crash), and no
   symbol published by a quarantined task is ever observed unless its
   scope still completed (a quarantined stream's partial publishes must
   stay unobservable).  Watchdog re-deliveries emit an ordinary Ev_wake
   after the Watchdog_fire marker, so a recovered dropped wake leaves the
   block/wake pairing clean.

   The checker is a pure function of the log: it never touches the
   compiler, so it can also be exercised on hand-built logs in tests. *)

open Mcc_sched

type violation =
  | Observe_before_publish of { scope : int; scope_name : string; sym : string; observe_seq : int }
  | Publish_after_complete of {
      scope : int;
      scope_name : string;
      sym : string;
      publish_seq : int;
      complete_seq : int;
    }
  | Miss_then_publish of {
      scope : int;
      scope_name : string;
      sym : string;
      miss_seq : int;
      publish_seq : int;
    }
  | Unmatched_dky_block of { task : int; scope_name : string; sym : string; ev : int; block_seq : int }
  | Unwoken_block of { task : int; ev : int; ev_name : string; block_seq : int }
  | Wake_before_signal of { task : int; ev : int; wake_seq : int }
  | Start_before_gate of { task : int; gate : int; start_seq : int }
  | Wait_cycle of { tasks : int list; seq : int }
  | Retry_without_fault of { task : int; attempt : int; retry_seq : int }
  | Quarantine_observed of {
      scope : int;
      scope_name : string;
      sym : string;
      task : int;
      observe_seq : int;
    }
  | Serve_without_fetch of { node : int; peer : int; iface : string; serve_seq : int }
  | Task_lost of { iface : string; node : int }
  | Task_done_twice of { iface : string; first : int; second : int }

type report = {
  violations : violation list;
  n_records : int;
  n_publishes : int;
  n_observes : int;
  n_auth_misses : int;
  n_dky_blocks : int;
  n_dky_unblocks : int;
  n_signals : int;
  n_blocks : int;
  n_wakes : int;
  n_spawned : int;
  n_finished : int;
  n_injects : int;
  n_retries : int;
  n_quarantines : int;
  n_watchdog : int;
  n_fetches : int;
  n_serves : int;
  n_hedges : int;
  n_node_deaths : int;
  n_farm_tasks : int;
  n_farm_done : int;
  n_steals : int;
  n_reshards : int;
}

let violation_to_string = function
  | Observe_before_publish { scope_name; sym; observe_seq; _ } ->
      Printf.sprintf "observe-before-publish: %s seen in %s at #%d with no prior publish" sym
        scope_name observe_seq
  | Publish_after_complete { scope_name; sym; publish_seq; complete_seq; _ } ->
      Printf.sprintf "publish-after-complete: %s published to %s at #%d, scope completed at #%d"
        sym scope_name publish_seq complete_seq
  | Miss_then_publish { scope_name; sym; miss_seq; publish_seq; _ } ->
      Printf.sprintf
        "miss-then-publish: authoritative miss of %s in %s at #%d contradicted by publish at #%d"
        sym scope_name miss_seq publish_seq
  | Unmatched_dky_block { task; scope_name; sym; ev; block_seq } ->
      Printf.sprintf "unmatched DKY block: task#%d blocked on %s in %s (event#%d) at #%d, never unblocked"
        task sym scope_name ev block_seq
  | Unwoken_block { task; ev; ev_name; block_seq } ->
      Printf.sprintf "unwoken block: task#%d blocked on event#%d %s at #%d, never woken" task ev
        ev_name block_seq
  | Wake_before_signal { task; ev; wake_seq } ->
      Printf.sprintf "wake-before-signal: task#%d woken from event#%d at #%d before any signal" task
        ev wake_seq
  | Start_before_gate { task; gate; start_seq } ->
      Printf.sprintf "start-before-gate: gated task#%d started at #%d before event#%d was signaled"
        task start_seq gate
  | Wait_cycle { tasks; seq } ->
      Printf.sprintf "wait cycle at #%d: %s" seq
        (String.concat " -> " (List.map (Printf.sprintf "task#%d") tasks))
  | Retry_without_fault { task; attempt; retry_seq } ->
      Printf.sprintf "retry-without-fault: task#%d retried (attempt %d) at #%d with no prior crash injection"
        task attempt retry_seq
  | Quarantine_observed { scope_name; sym; task; observe_seq; _ } ->
      Printf.sprintf
        "quarantine-observed: %s in %s observed at #%d but its publisher task#%d was quarantined \
         and the scope never completed"
        sym scope_name observe_seq task
  | Serve_without_fetch { node; peer; iface; serve_seq } ->
      Printf.sprintf
        "serve-without-fetch: node#%d served %s to node#%d at #%d with no outstanding fetch" node
        iface peer serve_seq
  | Task_lost { iface; node } ->
      Printf.sprintf "task-lost-on-crash: closure %s (last on node#%d) never completed" iface node
  | Task_done_twice { iface; first; second } ->
      Printf.sprintf "task-done-twice: closure %s completed at #%d and again at #%d" iface first
        second

let check (log : Evlog.record array) : report =
  let violations = ref [] in
  let flag v = violations := v :: !violations in
  (* first publication / completion / authoritative miss, by key *)
  let published : (int * string, int) Hashtbl.t = Hashtbl.create 256 in
  let completed : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let misses : (int * string, int) Hashtbl.t = Hashtbl.create 64 in
  (* outstanding DKY waits: (task, ev) -> stack of (seq, scope_name, sym) *)
  let dky_pending : (int * int, (int * string * string) list) Hashtbl.t = Hashtbl.create 64 in
  (* outstanding engine blocks: task -> (ev, ev_name, seq) *)
  let blocked : (int, int * string * int) Hashtbl.t = Hashtbl.create 64 in
  (* instantaneous wait-for edges: blocked task -> expected producer *)
  let waits : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let signals : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let gates : (int, int) Hashtbl.t = Hashtbl.create 64 in
  (* recovery-invariant state *)
  let task_names : (int, string) Hashtbl.t = Hashtbl.create 64 in
  (* un-consumed crash injections, by victim name; each is consumed by
     the retry or quarantine the engine pairs with it *)
  let crash_pending : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let quarantined : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  (* first publisher task per (scope, sym); first observation seq *)
  let publishers : (int * string, int * string) Hashtbl.t = Hashtbl.create 256 in
  let observed : (int * string, int) Hashtbl.t = Hashtbl.create 256 in
  let n_publishes = ref 0
  and n_observes = ref 0
  and n_auth_misses = ref 0
  and n_dky_blocks = ref 0
  and n_dky_unblocks = ref 0
  and n_signals = ref 0
  and n_blocks = ref 0
  and n_wakes = ref 0
  and n_spawned = ref 0
  and n_finished = ref 0
  and n_injects = ref 0
  and n_retries = ref 0
  and n_quarantines = ref 0
  and n_watchdog = ref 0
  and n_fetches = ref 0
  and n_serves = ref 0
  and n_hedges = ref 0
  and n_node_deaths = ref 0
  and n_farm_done = ref 0
  and n_steals = ref 0
  and n_reshards = ref 0 in
  (* farm state: outstanding fetch requests (requester, server, iface) ->
     count; closure -> owning node; closure -> first-done seq *)
  let fetch_pending : (int * int * string, int) Hashtbl.t = Hashtbl.create 64 in
  let closure_owner : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let closure_done : (string, int) Hashtbl.t = Hashtbl.create 64 in
  (* walk the wait-for graph from [start]'s producer; a path back to
     [start] is a deadlock-shaped cycle *)
  let detect_cycle start seq =
    let rec follow path p steps =
      if steps > Hashtbl.length waits + 1 then ()
      else if p = start then flag (Wait_cycle { tasks = List.rev (start :: path); seq })
      else
        match Hashtbl.find_opt waits p with
        | Some next -> follow (p :: path) next (steps + 1)
        | None -> ()
    in
    match Hashtbl.find_opt waits start with
    | Some producer -> follow [ start ] producer 0
    | None -> ()
  in
  Array.iter
    (fun (r : Evlog.record) ->
      match r.Evlog.kind with
      | Evlog.Task_spawn { task; name; gate; _ } ->
          incr n_spawned;
          Hashtbl.replace task_names task name;
          if gate >= 0 then Hashtbl.replace gates task gate
      | Evlog.Task_start { task } -> (
          match Hashtbl.find_opt gates task with
          | Some gate when not (Hashtbl.mem signals gate) ->
              flag (Start_before_gate { task; gate; start_seq = r.Evlog.seq })
          | _ -> ())
      | Evlog.Task_finish _ -> incr n_finished
      | Evlog.Ev_signal { ev; _ } ->
          incr n_signals;
          if not (Hashtbl.mem signals ev) then Hashtbl.replace signals ev r.Evlog.seq
      | Evlog.Ev_block { ev; name; producer } ->
          incr n_blocks;
          Hashtbl.replace blocked r.Evlog.task (ev, name, r.Evlog.seq);
          if producer >= 0 && producer <> r.Evlog.task then begin
            Hashtbl.replace waits r.Evlog.task producer;
            detect_cycle r.Evlog.task r.Evlog.seq
          end
      | Evlog.Ev_wake { ev; task } ->
          incr n_wakes;
          if not (Hashtbl.mem signals ev) then
            flag (Wake_before_signal { task; ev; wake_seq = r.Evlog.seq });
          Hashtbl.remove blocked task;
          Hashtbl.remove waits task
      | Evlog.Gate_release _ -> ()
      | Evlog.Scope_intern _ -> ()
      | Evlog.Publish { scope; scope_name; sym } ->
          incr n_publishes;
          let key = (scope, sym) in
          if not (Hashtbl.mem published key) then Hashtbl.replace published key r.Evlog.seq;
          if not (Hashtbl.mem publishers key) then
            Hashtbl.replace publishers key (r.Evlog.task, scope_name);
          (match Hashtbl.find_opt completed scope with
          | Some complete_seq ->
              flag
                (Publish_after_complete
                   { scope; scope_name; sym; publish_seq = r.Evlog.seq; complete_seq })
          | None -> ());
          (match Hashtbl.find_opt misses key with
          | Some miss_seq ->
              flag (Miss_then_publish { scope; scope_name; sym; miss_seq; publish_seq = r.Evlog.seq })
          | None -> ())
      | Evlog.Complete { scope; _ } ->
          if not (Hashtbl.mem completed scope) then Hashtbl.replace completed scope r.Evlog.seq
      | Evlog.Observe { scope; scope_name; sym; _ } ->
          incr n_observes;
          if not (Hashtbl.mem published (scope, sym)) then
            flag (Observe_before_publish { scope; scope_name; sym; observe_seq = r.Evlog.seq });
          if not (Hashtbl.mem observed (scope, sym)) then
            Hashtbl.replace observed (scope, sym) r.Evlog.seq
      | Evlog.Auth_miss { scope; sym; _ } ->
          incr n_auth_misses;
          let key = (scope, sym) in
          if not (Hashtbl.mem misses key) then Hashtbl.replace misses key r.Evlog.seq
      | Evlog.Dky_block { scope_name; sym; ev; _ } ->
          incr n_dky_blocks;
          let key = (r.Evlog.task, ev) in
          let stack = Option.value ~default:[] (Hashtbl.find_opt dky_pending key) in
          Hashtbl.replace dky_pending key ((r.Evlog.seq, scope_name, sym) :: stack)
      | Evlog.Dky_unblock { scope_name; sym; ev; _ } -> (
          incr n_dky_unblocks;
          let key = (r.Evlog.task, ev) in
          match Hashtbl.find_opt dky_pending key with
          | Some (_ :: rest) ->
              if rest = [] then Hashtbl.remove dky_pending key
              else Hashtbl.replace dky_pending key rest
          | Some [] | None ->
              (* an unblock with no outstanding block is itself unpaired *)
              flag
                (Unmatched_dky_block
                   { task = r.Evlog.task; scope_name; sym; ev; block_seq = r.Evlog.seq }))
      | Evlog.Fault_inject { fault; victim } ->
          incr n_injects;
          if fault = "task-crash" then
            Hashtbl.replace crash_pending victim
              (1 + Option.value ~default:0 (Hashtbl.find_opt crash_pending victim))
      | Evlog.Task_retry { task; attempt } -> (
          incr n_retries;
          let name = Option.value ~default:"" (Hashtbl.find_opt task_names task) in
          match Hashtbl.find_opt crash_pending name with
          | Some n when n > 0 -> Hashtbl.replace crash_pending name (n - 1)
          | _ -> flag (Retry_without_fault { task; attempt; retry_seq = r.Evlog.seq }))
      | Evlog.Task_quarantine { task; name } ->
          incr n_quarantines;
          Hashtbl.replace quarantined task ();
          (* the quarantine consumes the crash injection that exhausted
             the retries (or the resume-point crash) *)
          (match Hashtbl.find_opt crash_pending name with
          | Some n when n > 0 -> Hashtbl.replace crash_pending name (n - 1)
          | _ -> ())
      | Evlog.Watchdog_fire _ -> incr n_watchdog
      (* compile-server job lifecycle: no intra-compile ordering to
         check — the server suspends emission around engine runs *)
      | Evlog.Job_enqueue _ | Evlog.Job_admit _ | Evlog.Job_shed _ | Evlog.Job_batch _
      | Evlog.Job_done _ -> ()
      (* farm lifecycle: every serve must consume an outstanding fetch
         on the same (requester, server, interface) link, and every
         closure ever placed on a node must complete exactly once *)
      | Evlog.Rpc_fetch { node; peer; iface; _ } ->
          incr n_fetches;
          let key = (node, peer, iface) in
          Hashtbl.replace fetch_pending key
            (1 + Option.value ~default:0 (Hashtbl.find_opt fetch_pending key))
      | Evlog.Rpc_serve { node; peer; iface } -> (
          incr n_serves;
          let key = (peer, node, iface) in
          match Hashtbl.find_opt fetch_pending key with
          | Some n when n > 0 -> Hashtbl.replace fetch_pending key (n - 1)
          | _ -> flag (Serve_without_fetch { node; peer; iface; serve_seq = r.Evlog.seq }))
      | Evlog.Rpc_hedge { node; replica; iface } ->
          (* the hedged request is itself a fetch to the replica *)
          incr n_hedges;
          let key = (node, replica, iface) in
          Hashtbl.replace fetch_pending key
            (1 + Option.value ~default:0 (Hashtbl.find_opt fetch_pending key))
      | Evlog.Node_dead { node } ->
          incr n_node_deaths;
          ignore node
      | Evlog.Farm_assign { node; iface } -> Hashtbl.replace closure_owner iface node
      | Evlog.Farm_reshard { node; iface } ->
          incr n_reshards;
          Hashtbl.replace closure_owner iface node
      | Evlog.Farm_steal { node; iface; _ } ->
          incr n_steals;
          Hashtbl.replace closure_owner iface node
      | Evlog.Farm_task_done { iface; _ } -> (
          incr n_farm_done;
          match Hashtbl.find_opt closure_done iface with
          | Some first -> flag (Task_done_twice { iface; first; second = r.Evlog.seq })
          | None -> Hashtbl.replace closure_done iface r.Evlog.seq)
      | Evlog.Node_start _ | Evlog.Node_detect _ | Evlog.Heartbeat _ | Evlog.Rpc_timeout _
      | Evlog.Farm_replicate _ | Evlog.Net_partition _ | Evlog.Net_heal
      (* trace spans annotate the same lifecycle this checker derives
         its orderings from; they carry no extra happens-before edges *)
      | Evlog.Span_start _ | Evlog.Span_end _ -> ())
    log;
  (* no-task-lost-on-crash: every closure ever assigned (initially, by
     steal or by re-shard) completed *)
  Hashtbl.iter
    (fun iface node ->
      if not (Hashtbl.mem closure_done iface) then flag (Task_lost { iface; node }))
    closure_owner;
  (* a quarantined stream's partial publishes must never have been
     observed — unless the scope completed anyway (its data is whole) *)
  Hashtbl.iter
    (fun ((scope, sym) as key) (task, scope_name) ->
      if Hashtbl.mem quarantined task && not (Hashtbl.mem completed scope) then
        match Hashtbl.find_opt observed key with
        | Some observe_seq -> flag (Quarantine_observed { scope; scope_name; sym; task; observe_seq })
        | None -> ())
    publishers;
  Hashtbl.iter
    (fun (task, ev) stack ->
      List.iter
        (fun (block_seq, scope_name, sym) ->
          flag (Unmatched_dky_block { task; scope_name; sym; ev; block_seq }))
        stack)
    dky_pending;
  Hashtbl.iter
    (fun task (ev, ev_name, block_seq) -> flag (Unwoken_block { task; ev; ev_name; block_seq }))
    blocked;
  {
    violations =
      List.sort
        (fun a b -> compare (violation_to_string a) (violation_to_string b))
        !violations;
    n_records = Array.length log;
    n_publishes = !n_publishes;
    n_observes = !n_observes;
    n_auth_misses = !n_auth_misses;
    n_dky_blocks = !n_dky_blocks;
    n_dky_unblocks = !n_dky_unblocks;
    n_signals = !n_signals;
    n_blocks = !n_blocks;
    n_wakes = !n_wakes;
    n_spawned = !n_spawned;
    n_finished = !n_finished;
    n_injects = !n_injects;
    n_retries = !n_retries;
    n_quarantines = !n_quarantines;
    n_watchdog = !n_watchdog;
    n_fetches = !n_fetches;
    n_serves = !n_serves;
    n_hedges = !n_hedges;
    n_node_deaths = !n_node_deaths;
    n_farm_tasks = Hashtbl.length closure_owner;
    n_farm_done = !n_farm_done;
    n_steals = !n_steals;
    n_reshards = !n_reshards;
  }

let ok r = r.violations = []

let summary r =
  let faults =
    if r.n_injects = 0 && r.n_retries = 0 && r.n_quarantines = 0 && r.n_watchdog = 0 then ""
    else
      Printf.sprintf ", %d inject/%d retry/%d quarantine/%d watchdog" r.n_injects r.n_retries
        r.n_quarantines r.n_watchdog
  in
  let faults =
    if r.n_farm_tasks = 0 && r.n_fetches = 0 then faults
    else
      faults
      ^ Printf.sprintf ", farm %d closure/%d done, %d fetch/%d serve/%d hedge, %d steal/%d \
                        reshard/%d dead"
          r.n_farm_tasks r.n_farm_done r.n_fetches r.n_serves r.n_hedges r.n_steals r.n_reshards
          r.n_node_deaths
  in
  Printf.sprintf
    "%d records: %d publish, %d observe, %d auth-miss, %d DKY block/%d unblock, %d signal, %d \
     block/%d wake, %d spawn/%d finish%s — %d violation%s"
    r.n_records r.n_publishes r.n_observes r.n_auth_misses r.n_dky_blocks r.n_dky_unblocks
    r.n_signals r.n_blocks r.n_wakes r.n_spawned r.n_finished faults
    (List.length r.violations)
    (if List.length r.violations = 1 then "" else "s")
