(** Chrome trace_event export of a DES execution trace.

    One ["X"] (complete) duration event per trace segment — the
    simulated processor is the thread id — plus thread_name metadata.
    Load in chrome://tracing or ui.perfetto.dev for the WatchTool-style
    activity view (paper Figures 4 and 7).  Timestamps are microseconds
    of simulated time. *)

(** [export ~names ~log trace] renders the JSON document.  [names] maps
    task ids to display names (e.g.
    [Mcc_core.Driver.result.task_index]); unmapped ids render as
    ["task#N"].  When [log] is a captured event log, its fault-recovery
    records (injections, retries, quarantines, watchdog rescues) are
    added as global instant events. *)
val export :
  ?names:(int * string) list -> ?log:Mcc_sched.Evlog.record array -> Mcc_sched.Trace.t -> string
