(** Chrome trace_event export of a DES execution trace.

    One ["X"] (complete) duration event per trace segment — the
    simulated processor is the thread id — plus thread_name metadata.
    Load in chrome://tracing or ui.perfetto.dev for the WatchTool-style
    activity view (paper Figures 4 and 7).  Timestamps are microseconds
    of simulated time. *)

(** [export ~names ~log trace] renders the JSON document.  [names] maps
    task ids to display names (e.g.
    [Mcc_core.Driver.result.task_index]); unmapped ids render as
    ["task#N"].  When [log] is a captured event log, its fault-recovery
    records (injections, retries, quarantines, watchdog rescues) are
    added as global instant events. *)
val export :
  ?names:(int * string) list -> ?log:Mcc_sched.Evlog.record array -> Mcc_sched.Trace.t -> string

(** [export_spans ~sec_per_unit forest] renders an assembled
    distributed-trace forest ([Mcc_obs.Dtrace.assemble]) as correctly
    nested Chrome trace events.  Each root span is a thread lane on
    pid 0 with its subtree as nested ["X"] events; every inner engine
    (a [Driver.compile] captured under a traced serve/farm run —
    invisible to {!export}, which sees one engine's clock) becomes its
    own process, one thread row per inner task, rebased onto the outer
    virtual-time axis; overlapping rpc legs export as async ["b"]/["e"]
    pairs so they cannot corrupt same-lane nesting. *)
val export_spans : sec_per_unit:float -> Mcc_obs.Dtrace.t -> string
