(* Chrome trace_event export.

   Renders a DES execution trace as the Chrome tracing / Perfetto JSON
   format ("trace event format", JSON-array flavor): one "X" (complete)
   duration event per trace segment, with the simulated processor as the
   thread id, plus thread_name metadata rows.  Load the output in
   chrome://tracing or ui.perfetto.dev for the WatchTool-style activity
   view of paper Figures 4 and 7.

   Timestamps are microseconds of *simulated* time (virtual work units
   scaled by Costs.seconds_per_unit). *)

open Mcc_sched

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let micros units = Costs.to_seconds units *. 1e6

let export ?(names : (int * string) list = []) ?(log : Evlog.record array = [||]) (trace : Trace.t)
    : string =
  let name_tbl = Hashtbl.create 64 in
  List.iter (fun (id, n) -> Hashtbl.replace name_tbl id n) names;
  let task_name id =
    match Hashtbl.find_opt name_tbl id with Some n -> n | None -> Printf.sprintf "task#%d" id
  in
  let segs = Trace.segments trace in
  let procs = List.fold_left (fun acc (s : Trace.seg) -> max acc (s.Trace.proc + 1)) 0 segs in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit line =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf line
  in
  for p = 0 to procs - 1 do
    emit
      (Printf.sprintf
         "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"proc \
          %d\"}}"
         p p)
  done;
  List.iter
    (fun (s : Trace.seg) ->
      let kind = match s.Trace.kind with Trace.Run -> "run" | Trace.Waitbar -> "waitbar" in
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d,\"args\":{\"task\":%d,\"kind\":\"%s\"}}"
           (escape (task_name s.Trace.task_id))
           (escape (Task.cls_name s.Trace.cls))
           (micros s.Trace.t0)
           (micros (s.Trace.t1 -. s.Trace.t0))
           s.Trace.proc s.Trace.task_id kind))
    segs;
  (* fault-recovery records from the captured event log become global
     instant ("i") events, so injections, retries and watchdog rescues
     are visible against the activity lanes *)
  Array.iter
    (fun (r : Evlog.record) ->
      let instant name detail =
        emit
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"g\",\"ts\":%.3f,\"pid\":0,\"args\":{\"detail\":\"%s\"}}"
             (escape name) (micros r.Evlog.time) (escape detail))
      in
      match r.Evlog.kind with
      | Evlog.Fault_inject { fault; victim } -> instant ("inject:" ^ fault) victim
      | Evlog.Task_retry { task; attempt } ->
          instant "retry" (Printf.sprintf "%s (attempt %d)" (task_name task) attempt)
      | Evlog.Task_quarantine { name; _ } -> instant "quarantine" name
      | Evlog.Watchdog_fire { task; _ } -> instant "watchdog" (task_name task)
      | _ -> ())
    log;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf
