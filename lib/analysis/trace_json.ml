(* Chrome trace_event export.

   Renders a DES execution trace as the Chrome tracing / Perfetto JSON
   format ("trace event format", JSON-array flavor): one "X" (complete)
   duration event per trace segment, with the simulated processor as the
   thread id, plus thread_name metadata rows.  Load the output in
   chrome://tracing or ui.perfetto.dev for the WatchTool-style activity
   view of paper Figures 4 and 7.

   Timestamps are microseconds of *simulated* time (virtual work units
   scaled by Costs.seconds_per_unit). *)

open Mcc_sched

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let micros units = Costs.to_seconds units *. 1e6

let export ?(names : (int * string) list = []) ?(log : Evlog.record array = [||]) (trace : Trace.t)
    : string =
  let name_tbl = Hashtbl.create 64 in
  List.iter (fun (id, n) -> Hashtbl.replace name_tbl id n) names;
  let task_name id =
    match Hashtbl.find_opt name_tbl id with Some n -> n | None -> Printf.sprintf "task#%d" id
  in
  let segs = Trace.segments trace in
  let procs = List.fold_left (fun acc (s : Trace.seg) -> max acc (s.Trace.proc + 1)) 0 segs in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit line =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf line
  in
  for p = 0 to procs - 1 do
    emit
      (Printf.sprintf
         "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"proc \
          %d\"}}"
         p p)
  done;
  List.iter
    (fun (s : Trace.seg) ->
      let kind = match s.Trace.kind with Trace.Run -> "run" | Trace.Waitbar -> "waitbar" in
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d,\"args\":{\"task\":%d,\"kind\":\"%s\"}}"
           (escape (task_name s.Trace.task_id))
           (escape (Task.cls_name s.Trace.cls))
           (micros s.Trace.t0)
           (micros (s.Trace.t1 -. s.Trace.t0))
           s.Trace.proc s.Trace.task_id kind))
    segs;
  (* fault-recovery records from the captured event log become global
     instant ("i") events, so injections, retries and watchdog rescues
     are visible against the activity lanes *)
  Array.iter
    (fun (r : Evlog.record) ->
      let instant name detail =
        emit
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"g\",\"ts\":%.3f,\"pid\":0,\"args\":{\"detail\":\"%s\"}}"
             (escape name) (micros r.Evlog.time) (escape detail))
      in
      match r.Evlog.kind with
      | Evlog.Fault_inject { fault; victim } -> instant ("inject:" ^ fault) victim
      | Evlog.Task_retry { task; attempt } ->
          instant "retry" (Printf.sprintf "%s (attempt %d)" (task_name task) attempt)
      | Evlog.Task_quarantine { name; _ } -> instant "quarantine" name
      | Evlog.Watchdog_fire { task; _ } -> instant "watchdog" (task_name task)
      | _ -> ())
    log;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

(* Nested export of an assembled distributed-trace forest.

   The old single-engine [export] cannot see engines run under
   [Evlog.suspend] at all, and flattening several captured engines into
   one lane would interleave their restarted clocks.  This export works
   from the [Dtrace] forest instead, where [Dtrace.assemble] has already
   rebased every inner engine onto the outer virtual-time axis:

   - each root span (a served job, the farm run) is a thread lane on
     pid 0, its tile/annotation subtree as nested "X" events — Chrome
     nests same-lane X events by interval containment, which the
     forest's containment invariant guarantees;
   - rpc attempt/hedge legs deliberately overlap, which would corrupt
     same-lane nesting, so they export as async "b"/"e" pairs;
   - each inner engine (a captured [Driver.compile]) becomes its own
     process (pid = owning span id) with one thread row per inner task,
     so suspended-engine work that used to vanish now nests, correctly
     rebased, under the span that paid for it. *)
let export_spans ~sec_per_unit (t : Mcc_obs.Dtrace.t) : string =
  let module D = Mcc_obs.Dtrace in
  let micros u = u *. sec_per_unit *. 1e6 in
  let by_id = Hashtbl.create 64 in
  List.iter (fun (s : D.span) -> Hashtbl.replace by_id s.D.d_span s) t.D.spans;
  let rec root_of (s : D.span) =
    if s.D.d_parent < 0 then s.D.d_span
    else
      match Hashtbl.find_opt by_id s.D.d_parent with
      | Some p -> root_of p
      | None -> s.D.d_span
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit line =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf line
  in
  List.iter
    (fun (r : D.span) ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"%s \
            [%s]\"}}"
           r.D.d_span (escape r.D.d_name) (escape r.D.d_trace)))
    (D.roots t);
  (* parents before children at equal start times, so same-lane X
     events nest instead of fighting for the slot *)
  let ordered =
    List.sort
      (fun (a : D.span) b ->
        compare (a.D.d_t0, -.a.D.d_t1, a.D.d_span) (b.D.d_t0, -.b.D.d_t1, b.D.d_span))
      t.D.spans
  in
  (* inner engines: one process per owning span, one thread per task *)
  let inner_tid = Hashtbl.create 64 in
  let inner_count = Hashtbl.create 16 in
  List.iter
    (fun (s : D.span) ->
      if s.D.d_kind = "inner-task" then begin
        let k = Option.value ~default:0 (Hashtbl.find_opt inner_count s.D.d_parent) in
        if k = 0 then
          emit
            (Printf.sprintf
               "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"inner \
                engine of span #%d%s\"}}"
               s.D.d_parent s.D.d_parent
               (match Hashtbl.find_opt by_id s.D.d_parent with
               | Some p -> escape (" · " ^ p.D.d_name)
               | None -> ""));
        Hashtbl.replace inner_count s.D.d_parent (k + 1);
        Hashtbl.replace inner_tid s.D.d_span k;
        emit
          (Printf.sprintf
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
             s.D.d_parent k (escape s.D.d_name))
      end)
    ordered;
  List.iter
    (fun (s : D.span) ->
      let args =
        Printf.sprintf
          "{\"span\":%d,\"kind\":\"%s\",\"status\":\"%s\",\"node\":%d,\"trace\":\"%s\"}"
          s.D.d_span (escape s.D.d_kind) (escape s.D.d_status) s.D.d_node (escape s.D.d_trace)
      in
      match s.D.d_kind with
      | "rpc" ->
          emit
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"rpc\",\"ph\":\"b\",\"id\":%d,\"ts\":%.3f,\"pid\":0,\"tid\":%d,\"args\":%s}"
               (escape s.D.d_name) s.D.d_span (micros s.D.d_t0) (root_of s) args);
          emit
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"rpc\",\"ph\":\"e\",\"id\":%d,\"ts\":%.3f,\"pid\":0,\"tid\":%d}"
               (escape s.D.d_name) s.D.d_span (micros s.D.d_t1) (root_of s))
      | "inner-task" ->
          emit
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"inner\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":%s}"
               (escape s.D.d_name) (micros s.D.d_t0)
               (micros (s.D.d_t1 -. s.D.d_t0))
               s.D.d_parent
               (Option.value ~default:0 (Hashtbl.find_opt inner_tid s.D.d_span))
               args)
      | _ ->
          emit
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d,\"args\":%s}"
               (escape s.D.d_name) (escape s.D.d_kind) (micros s.D.d_t0)
               (micros (s.D.d_t1 -. s.D.d_t0))
               (root_of s) args))
    ordered;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf
