(* One simulated build-farm node: its own warm interface cache, its own
   processor budget, and the liveness/progress bookkeeping the
   coordinator reads.  The compile work itself runs through the inner
   DES ([Driver.compile] under [Evlog.suspend]); the node record just
   anchors the per-node state between agenda events. *)

type t = {
  id : int;
  cache : Mcc_core.Build_cache.t;
  mutable alive : bool;
  mutable slow : bool; (* gray failure: serves and compiles slowly *)
  mutable busy_until : float; (* virtual seconds; <= now means idle *)
  mutable gen : int; (* bumped on crash: stale Done events are ignored *)
  mutable last_beat : float; (* last heartbeat the coordinator saw *)
  mutable tasks_run : int;
  mutable tasks_stolen : int; (* tasks this node stole from peers *)
  mutable busy_seconds : float;
  mutable fetches : int;
  mutable serves : int;
}

let create id =
  {
    id;
    cache = Mcc_core.Build_cache.create ();
    alive = true;
    slow = false;
    busy_until = 0.0;
    gen = 0;
    last_beat = 0.0;
    tasks_run = 0;
    tasks_stolen = 0;
    busy_seconds = 0.0;
    fetches = 0;
    serves = 0;
  }

let name t = Printf.sprintf "node%d" t.id

let crash t =
  t.alive <- false;
  t.gen <- t.gen + 1
