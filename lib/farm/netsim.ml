(* The seeded network-cost model connecting farm nodes.

   Deterministic from (seed, draw order): every transfer pays one-way
   latency with a small seeded jitter plus payload bytes over the link
   bandwidth, and every message is lost with the configured probability
   (on top of any armed [Fault.msg_drop] plan, which is consulted by the
   protocol layer, not here).  The DES processes events in one global
   time order, so the draw order — and with it every latency and loss
   decision — is a pure function of the farm seed. *)

open Mcc_util

type params = {
  latency : float; (* one-way propagation, virtual seconds *)
  bandwidth : float; (* payload bytes per virtual second *)
  loss : float; (* per-message loss probability, 0..1 *)
}

let zero = { latency = 0.0; bandwidth = infinity; loss = 0.0 }
let lan = { latency = 200e-6; bandwidth = 100e6; loss = 0.001 }
let wan = { latency = 20e-3; bandwidth = 10e6; loss = 0.01 }

let params_to_string p =
  if p = zero then "zero"
  else if p = lan then "lan"
  else if p = wan then "wan"
  else Printf.sprintf "%.0f:%.1f:%.2f" (p.latency *. 1e6) (p.bandwidth /. 1e6) (p.loss *. 100.0)

(* "zero" | "lan" | "wan" | "LAT_US:BW_MBPS:LOSS_PCT" *)
let params_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "zero" -> Ok zero
  | "lan" -> Ok lan
  | "wan" -> Ok wan
  | custom -> (
      match String.split_on_char ':' custom with
      | [ lat; bw; loss ] -> (
          match (float_of_string_opt lat, float_of_string_opt bw, float_of_string_opt loss) with
          | Some lat, Some bw, Some loss
            when lat >= 0.0 && bw > 0.0 && loss >= 0.0 && loss <= 100.0 ->
              Ok { latency = lat *. 1e-6; bandwidth = bw *. 1e6; loss = loss /. 100.0 }
          | _ ->
              Error
                (Printf.sprintf
                   "bad --net %S: want zero, lan, wan or LAT_US:BW_MBPS:LOSS_PCT (loss 0-100)" s))
      | _ ->
          Error
            (Printf.sprintf "bad --net %S: want zero, lan, wan or LAT_US:BW_MBPS:LOSS_PCT" s))

type t = { params : params; rng : Prng.t }

let create ?(seed = 0) params = { params; rng = Prng.create (0x6e657473 lxor seed) }
let params t = t.params

let transfer p ~bytes =
  if p.bandwidth = infinity then 0.0 else float_of_int bytes /. p.bandwidth

(* One-way delivery time for [bytes], with up to 25% seeded jitter on
   the propagation component. *)
let delay t ~bytes =
  let jitter = if t.params.latency = 0.0 then 0.0 else Prng.float t.rng 0.25 in
  (t.params.latency *. (1.0 +. jitter)) +. transfer t.params ~bytes

(* Request/response round trip: the request is small, the reply carries
   the artifact. *)
let rtt t ~bytes = delay t ~bytes:64 +. delay t ~bytes

let lost t = t.params.loss > 0.0 && Prng.chance t.rng t.params.loss

(* Per-request timeout: generous against jitter, tight enough that a
   dropped message retries promptly even on a WAN. *)
let timeout p ~bytes =
  Float.max 2e-3 ((4.0 *. p.latency) +. (2.0 *. transfer p ~bytes))

(* Hedge trigger: a bit past the jitter-free round trip — a healthy
   primary answers first, a late one races its replica. *)
let hedge_delay p ~bytes = Float.max 1e-3 ((3.0 *. p.latency) +. (1.5 *. transfer p ~bytes))
