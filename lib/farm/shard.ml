(* Sharding definition-module closures across farm nodes, and the
   exactly-once bookkeeping the coordinator runs the farm with.

   Placement is either content-hashed (stable across runs and node
   counts modulo N: a module name always lands on the same node for a
   given N) or size-balanced (longest-processing-time greedy over
   source bytes, so one giant interface does not serialize a node
   behind it).

   The tracker owns the only mutable task state: a closure is Pending
   (queued on exactly one node), Running (claimed by exactly one node)
   or Done.  [next] is the single claim point — it atomically moves
   Pending to Running, whether the claimant owns the queue or steals
   from a peer — and [complete] only accepts the claim holder, so a
   stale completion from a crashed node can never finish a task twice.
   [reshard] re-queues a dead node's Pending and Running closures on
   the survivors.  These are the invariants test_farm.ml's qcheck
   property drives with random claim/complete/crash interleavings. *)

type policy = Hash | Size

let policy_to_string = function Hash -> "hash" | Size -> "size"

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "hash" -> Some Hash
  | "size" -> Some Size
  | _ -> None

(* FNV-1a over the module name: stable across processes (unlike
   [Hashtbl.hash], which may change between compiler versions — the
   same-seed determinism gate compares runs byte for byte). *)
let stable_hash name =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3fffffff) name;
  !h

(* [(iface, bytes)] -> [(iface, node)], input order preserved. *)
let assign policy ~nodes ifaces =
  match policy with
  | Hash -> List.map (fun (name, _) -> (name, stable_hash name mod nodes)) ifaces
  | Size ->
      let load = Array.make nodes 0 in
      let lightest () =
        let best = ref 0 in
        for n = 1 to nodes - 1 do
          if load.(n) < load.(!best) then best := n
        done;
        !best
      in
      (* biggest first onto the lightest node; then restore input order *)
      List.stable_sort (fun (_, a) (_, b) -> compare b a) ifaces
      |> List.map (fun (name, bytes) ->
             let n = lightest () in
             load.(n) <- load.(n) + bytes;
             (name, n))
      |> fun placed -> List.map (fun (name, _) -> (name, List.assoc name placed)) ifaces

(* ------------------------------------------------------------------ *)
(* The exactly-once tracker *)

type state = Pending | Running of int | Done of int

type tracker = {
  nodes : int;
  topo : string array; (* closures, dependency order *)
  index : (string, int) Hashtbl.t;
  deps : int list array; (* direct imports, as topo indices *)
  state : state array;
  queues : int list ref array; (* per node: pending topo indices, ascending *)
}

let create ~nodes ~assignment ~topo ~deps =
  let topo = Array.of_list topo in
  let index = Hashtbl.create (Array.length topo) in
  Array.iteri (fun i name -> Hashtbl.replace index name i) topo;
  let dep_idx =
    Array.map
      (fun name -> List.filter_map (fun d -> Hashtbl.find_opt index d) (deps name))
      topo
  in
  let queues = Array.init nodes (fun _ -> ref []) in
  List.iter
    (fun (name, node) ->
      match Hashtbl.find_opt index name with
      | Some i -> queues.(node) := i :: !(queues.(node))
      | None -> invalid_arg ("Shard.create: assigned unknown closure " ^ name))
    assignment;
  Array.iter (fun q -> q := List.sort compare !q) queues;
  { nodes; topo; index; deps = dep_idx; state = Array.make (Array.length topo) Pending; queues }

let n_tasks t = Array.length t.topo
let name_of t i = t.topo.(i)

let state_of t iface =
  match Hashtbl.find_opt t.index iface with None -> None | Some i -> Some (t.state.(i))

let ready t i = List.for_all (fun d -> match t.state.(d) with Done _ -> true | _ -> false) t.deps.(i)

let pending_count t node = List.length !(t.queues.(node))

let all_done t =
  Array.for_all (fun s -> match s with Done _ -> true | _ -> false) t.state

let remaining t =
  let n = ref 0 in
  Array.iter (fun s -> match s with Done _ -> () | _ -> incr n) t.state;
  !n

(* Claim the next runnable closure for [node]: its own queue front-most
   ready task first; with [steal], the back-most ready task of the
   fullest stealable peer.  The claim itself is the Pending -> Running
   transition. *)
let next t ~node ~steal ~may_steal_from =
  let claim i =
    assert (t.state.(i) = Pending);
    t.state.(i) <- Running node
  in
  let take_ready q ~from_back =
    let candidates = List.filter (fun i -> ready t i) !q in
    match (candidates, from_back) with
    | [], _ -> None
    | c, false -> Some (List.hd c)
    | c, true -> Some (List.nth c (List.length c - 1))
  in
  let own = t.queues.(node) in
  match take_ready own ~from_back:false with
  | Some i ->
      own := List.filter (fun j -> j <> i) !own;
      claim i;
      Some (`Own (t.topo.(i)))
  | None when steal ->
      let victim = ref (-1) in
      for v = 0 to t.nodes - 1 do
        if
          v <> node
          && may_steal_from v
          && pending_count t v > 0
          && (!victim < 0 || pending_count t v > pending_count t !victim)
        then victim := v
      done;
      if !victim < 0 then None
      else
        let q = t.queues.(!victim) in
        (match take_ready q ~from_back:true with
        | None -> None
        | Some i ->
            q := List.filter (fun j -> j <> i) !q;
            claim i;
            Some (`Stolen (t.topo.(i), !victim)))
  | None -> None

(* Only the claim holder completes; a stale completion (the claim moved
   on after a crash re-shard) is refused. *)
let complete t ~node iface =
  match Hashtbl.find_opt t.index iface with
  | None -> false
  | Some i -> (
      match t.state.(i) with
      | Running n when n = node ->
          t.state.(i) <- Done node;
          true
      | _ -> false)

let doer t iface =
  match Hashtbl.find_opt t.index iface with
  | None -> None
  | Some i -> ( match t.state.(i) with Done n -> Some n | _ -> None)

(* A node died: revert its Running claims, collect them with its queued
   Pending closures, and re-queue everything round-robin on the
   survivors.  Returns the moves (closure, new node), topo order. *)
let reshard t ~dead ~survivors =
  if survivors = [] then invalid_arg "Shard.reshard: no survivors";
  let orphans = ref !(t.queues.(dead)) in
  t.queues.(dead) := [];
  Array.iteri (fun i s -> if s = Running dead then orphans := i :: !orphans) t.state;
  let orphans = List.sort compare !orphans in
  let k = ref 0 in
  List.map
    (fun i ->
      let node = List.nth survivors (!k mod List.length survivors) in
      incr k;
      t.state.(i) <- Pending;
      t.queues.(node) := List.sort compare (i :: !(t.queues.(node)));
      (t.topo.(i), node))
    orphans
