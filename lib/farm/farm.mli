(** The sharded build farm: N simulated compile nodes over the DES, a
    content-addressed remote artifact protocol, and a coordinator that
    survives node loss.

    Composition: the farm's event loop runs in virtual seconds; each
    node compiles one sharded interface closure at a time by running
    the real concurrent compiler (at the per-node processor count)
    under [Evlog.suspend], the inner simulated duration becoming the
    farm-level service time.  Interface artifacts ship between node
    caches over {!Remote.fetch} (digest-verified by content
    addressing, timeout + capped backoff retry, hedged to a replica).
    Heartbeats in virtual time detect dead nodes; their unfinished
    closures re-shard onto survivors; a fetch that fails every path
    recompiles locally; total node loss degrades to one sequential
    compile.  Every path lands on the same artifacts, and {!verify} is
    the oracle gate that proves it. *)

open Mcc_core

type config = {
  compile : Driver.config;
      (** per-node compile config — [procs] is processors {e per node};
          [faults] must be empty (arm farm faults below) *)
  nodes : int;
  net : Netsim.params;
  shard : Shard.policy;
  steal : bool;  (** idle nodes steal runnable closures from peers *)
  faults : Mcc_sched.Fault.spec list;
      (** farm fault plan ([node-crash], [node-slow], [msg-drop],
          [partition] — inner compile kinds also work and are absorbed
          by the driver's own recovery) *)
  fault_seed : int;
  seed : int;  (** network jitter/loss stream *)
}

(** 3 nodes, LAN, hash sharding, stealing on, no faults. *)
val default_config : config

type node_stats = {
  ns_id : int;
  ns_alive : bool;  (** still alive at the end of the run *)
  ns_slow : bool;  (** gray-failed *)
  ns_tasks : int;  (** closures completed *)
  ns_stolen : int;  (** ...of which stolen from peers *)
  ns_busy_seconds : float;
  ns_fetches : int;  (** remote fetches this node issued *)
  ns_serves : int;  (** fetches this node answered *)
}

type report = {
  f_nodes : int;
  f_procs : int;
  f_net : string;
  f_shard : string;
  f_tasks : int;  (** sharded interface closures *)
  f_makespan : float;  (** virtual seconds to the final linked program *)
  f_fetches : int;  (** remote fetch operations dispatched *)
  f_serves : int;  (** fetches answered (primary or replica) *)
  f_local_fallbacks : int;
      (** fetches that exhausted retries + hedge and recompiled locally *)
  f_rpc_retries : int;
  f_rpc_drops : int;  (** attempts lost to drops or timeouts *)
  f_hedges : int;
  f_hedge_wins : int;  (** hedged fetches the replica answered first *)
  f_steals : int;
  f_reshards : int;  (** closures moved off dead nodes *)
  f_crashes : int;
  f_detects : int;  (** dead nodes the heartbeat monitor declared *)
  f_slow_nodes : int;
  f_partitions : int;
  f_replicas : int;  (** artifacts pushed to a replica *)
  f_seq_fallback : bool;  (** total node loss: sequential recompile *)
  f_ok : bool;
  f_obs : Mcc_check.Observation.t;  (** of the final program *)
  f_node_stats : node_stats list;
  f_events : Mcc_obs.Evlog.record array;  (** empty unless [capture] *)
  f_subs : Mcc_obs.Dtrace.sub list;
      (** nested compile captures, one per task/assembly compute span;
          empty unless [trace] *)
  f_trace : string;  (** the run's trace id ([""] unless [trace]) *)
}

(** Run the farm to completion.  Deterministic: a function of (config,
    store) only.  [capture] records the farm-level event log (node,
    RPC and task lifecycle; inner compiles are suspended) for
    {!Mcc_analysis.Hb}.  [trace] (implies [capture]) additionally
    brackets the run with distributed-trace spans — one root "farm"
    span, per-closure "task" spans tiled by "fetch" + "compute"
    children (rpc attempt/hedge legs as annotations), and a final
    "assembly" span — captures each inner engine run into [f_subs]
    (gray-node captures carry the slowdown as [sub_scale]), and closes
    crash-interrupted task spans as ["crashed"]; feed [f_events] and
    [f_subs] to [Mcc_obs.Dtrace.assemble].  Virtual times and results
    are identical with tracing on or off. *)
val run : ?capture:bool -> ?trace:bool -> config -> Source_store.t -> report

(** Gate: the farm's final program must be observationally identical to
    a one-shot sequential compile, whatever faults the run absorbed. *)
val verify : Source_store.t -> report -> (unit, string) result
