(* The fault-tolerant remote-artifact fetch planner.

   Content addressing makes the data plane trivial to verify — the
   requester already knows the fingerprint it wants, so any response
   either digest-matches or is discarded — which leaves the hard part:
   when to give up on a silent peer.  [fetch] plans one interface fetch
   as pure arithmetic over the seeded network model: per-attempt
   timeouts, capped exponential backoff across [Costs.rpc_retry_limit]
   attempts, and a hedged duplicate to the replica once the primary has
   been quiet past the hedge delay.  An injected [Fault.msg_drop] on the
   requester->server link loses an attempt exactly like seeded network
   loss does.

   The planner does not touch the agenda; it returns the elapsed time
   to artifact-in-hand (or to final failure) plus the Evlog events of
   the exchange as offsets from dispatch, which the farm DES schedules
   as future notes.  That keeps it a pure function of (net seed, fault
   plan, arguments) — unit-testable, and byte-deterministic. *)

open Mcc_sched

type outcome = {
  ok : bool;
  elapsed : float; (* dispatch -> artifact in hand, virtual seconds *)
  served_by : int option;
  attempts : int;
  retries : int;
  drops : int;
  hedged : bool;
  hedge_won : bool;
  events : (float * Evlog.kind) list; (* offsets from dispatch, ascending *)
}

let link ~from ~to_ iface = Printf.sprintf "node%d->node%d:%s" from to_ iface

(* One request/response exchange with [server], dispatched at [at]:
   [Some t] = artifact in hand at [t], [None] = the attempt died (lost,
   unreachable, or the server sat on it past the timeout). *)
let attempt_once net ~requester ~server ~server_extra ~reachable ~iface ~bytes ~at =
  let params = Netsim.params net in
  let deadline = at +. Netsim.timeout params ~bytes in
  (* consult the fault plan first, then seeded loss, so the injected
     drop schedule is independent of the network's loss rate *)
  let dropped = Fault.msg_drop ~link:(link ~from:requester ~to_:server iface) || Netsim.lost net in
  if (not (reachable server)) || dropped then None
  else
    let done_at = at +. Netsim.rtt net ~bytes +. server_extra in
    if done_at > deadline then None else Some done_at

let fetch ~net ~requester ~primary ?replica ?(primary_extra = 0.0) ?(replica_extra = 0.0)
    ~reachable ~iface ~bytes () =
  let params = Netsim.params net in
  let events = ref [] in
  let note at kind = events := (at, kind) :: !events in
  let drops = ref 0 in
  (* Retry loop against the primary. *)
  let rec attempt n at =
    note at (Evlog.Rpc_fetch { node = requester; peer = primary; iface; attempt = n });
    match
      attempt_once net ~requester ~server:primary ~server_extra:primary_extra ~reachable ~iface
        ~bytes ~at
    with
    | Some done_at -> (n, Some done_at)
    | None ->
        incr drops;
        let failed_at = at +. Netsim.timeout params ~bytes in
        note failed_at (Evlog.Rpc_timeout { node = requester; peer = primary; iface; attempt = n });
        if n >= Costs.rpc_retry_limit then (n, None)
        else
          let backoff =
            Float.min
              (Costs.rpc_backoff_seconds *. Float.pow 2.0 (float_of_int (n - 1)))
              Costs.rpc_backoff_cap_seconds
          in
          attempt (n + 1) (failed_at +. backoff)
  in
  let attempts, primary_done = attempt 1 0.0 in
  (* Hedge: if the primary has not answered by the hedge delay and a
     replica is up, race a duplicate request against it. *)
  let hedge_at = Netsim.hedge_delay params ~bytes in
  let primary_quiet = match primary_done with None -> true | Some t -> t > hedge_at in
  let hedge =
    match replica with
    | Some r when primary_quiet && reachable r ->
        note hedge_at (Evlog.Rpc_hedge { node = requester; replica = r; iface });
        let result =
          attempt_once net ~requester ~server:r ~server_extra:replica_extra ~reachable ~iface
            ~bytes ~at:hedge_at
        in
        if result = None then incr drops;
        Some (r, result)
    | _ -> None
  in
  let winner =
    match (primary_done, hedge) with
    | Some p, Some (r, Some h) -> if h < p then Some (r, h) else Some (primary, p)
    | Some p, _ -> Some (primary, p)
    | None, Some (r, Some h) -> Some (r, h)
    | None, _ -> None
  in
  let hedged = hedge <> None in
  match winner with
  | Some (server, done_at) ->
      note done_at (Evlog.Rpc_serve { node = server; peer = requester; iface });
      {
        ok = true;
        elapsed = done_at;
        served_by = Some server;
        attempts;
        retries = attempts - 1;
        drops = !drops;
        hedged;
        hedge_won = (hedged && server <> primary);
        events = List.sort compare (List.rev !events);
      }
  | None ->
      let last_failed =
        List.fold_left (fun acc (t, _) -> Float.max acc t) 0.0 !events
      in
      {
        ok = false;
        elapsed = last_failed;
        served_by = None;
        attempts;
        retries = attempts - 1;
        drops = !drops;
        hedged;
        hedge_won = false;
        events = List.sort compare (List.rev !events);
      }
