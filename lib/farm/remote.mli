(** The fault-tolerant remote-artifact fetch planner.

    Plans one content-addressed interface fetch as pure arithmetic over
    the seeded network model: per-attempt timeouts, capped exponential
    backoff up to [Costs.rpc_retry_limit] attempts, plus a hedged
    duplicate request to the replica once the primary has been quiet
    past the hedge delay.  Injected [Fault.msg_drop] faults on the
    requester->server link lose attempts exactly like seeded loss.

    Pure: no agenda access, no emission.  The returned event offsets
    (from dispatch) are scheduled by the farm DES as future notes. *)

type outcome = {
  ok : bool;  (** artifact in hand (from primary or replica) *)
  elapsed : float;  (** dispatch -> in hand, or -> final failure *)
  served_by : int option;
  attempts : int;  (** requests sent to the primary *)
  retries : int;  (** [attempts - 1] *)
  drops : int;  (** attempts lost to drops/timeouts (either server) *)
  hedged : bool;  (** a duplicate request raced the replica *)
  hedge_won : bool;  (** ...and the replica answered first *)
  events : (float * Mcc_sched.Evlog.kind) list;
      (** RPC lifecycle events, offsets from dispatch, ascending *)
}

(** [link ~from ~to_ iface] is the fault-plan target name for a message
    on that directed edge: ["node<from>->node<to_>:<iface>"]. *)
val link : from:int -> to_:int -> string -> string

(** [fetch ~net ~requester ~primary ?replica ?primary_extra
    ?replica_extra ~reachable ~iface ~bytes ()] — [primary_extra] is
    server-side delay (a gray-failed node answers slowly enough to trip
    timeouts and the hedge), [reachable] folds in liveness and any
    active partition. *)
val fetch :
  net:Netsim.t ->
  requester:int ->
  primary:int ->
  ?replica:int ->
  ?primary_extra:float ->
  ?replica_extra:float ->
  reachable:(int -> bool) ->
  iface:string ->
  bytes:int ->
  unit ->
  outcome
