(** The seeded network-cost model connecting farm nodes.

    Deterministic from (seed, draw order): transfers pay one-way latency
    with seeded jitter plus payload bytes over the link bandwidth;
    messages are lost with the configured probability.  The farm's DES
    consumes draws in one global event order, so every latency and loss
    decision is a pure function of the farm seed. *)

type params = {
  latency : float;  (** one-way propagation, virtual seconds *)
  bandwidth : float;  (** payload bytes per virtual second *)
  loss : float;  (** per-message loss probability, 0..1 *)
}

val zero : params
(** Co-located: no latency, infinite bandwidth, no loss. *)

val lan : params
(** 200 µs, 100 MB/s, 0.1% loss. *)

val wan : params
(** 20 ms, 10 MB/s, 1% loss. *)

val params_to_string : params -> string

(** ["zero" | "lan" | "wan" | "LAT_US:BW_MBPS:LOSS_PCT"]. *)
val params_of_string : string -> (params, string) result

type t

val create : ?seed:int -> params -> t
val params : t -> params

(** One-way delivery time for a payload of [bytes] (seeded jitter). *)
val delay : t -> bytes:int -> float

(** Request/response round trip; the reply carries the artifact. *)
val rtt : t -> bytes:int -> float

(** Draw one loss decision. *)
val lost : t -> bool

(** Per-request timeout before the requester retries. *)
val timeout : params -> bytes:int -> float

(** How long the requester waits on the primary before hedging to the
    replica. *)
val hedge_delay : params -> bytes:int -> float
