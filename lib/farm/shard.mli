(** Sharding definition-module closures across farm nodes, plus the
    exactly-once task tracker the coordinator drives the farm with.

    The tracker is the single claim point for work: a closure moves
    Pending -> Running only through {!next} (whether claimed from the
    node's own queue or stolen from a peer), Running -> Done only
    through {!complete} by the claim holder, and a dead node's
    unfinished closures back to Pending only through {!reshard}.  Done
    never reverts, so a task can neither be lost nor finished twice —
    the invariants test_farm.ml's qcheck property exercises. *)

type policy =
  | Hash  (** stable content hash of the module name, mod node count *)
  | Size  (** size-balanced: LPT greedy over definition source bytes *)

val policy_to_string : policy -> string
val policy_of_string : string -> policy option

(** Stable FNV-1a hash of a module name (not [Hashtbl.hash], which may
    vary across compiler versions and would break byte-identical
    same-seed runs). *)
val stable_hash : string -> int

(** Place [(iface, source_bytes)] pairs onto [nodes] nodes; returns
    [(iface, node)] in input order. *)
val assign : policy -> nodes:int -> (string * int) list -> (string * int) list

type state = Pending | Running of int | Done of int

type tracker

(** [create ~nodes ~assignment ~topo ~deps]: [topo] lists every sharded
    closure in dependency order, [deps name] its direct definition
    imports (non-sharded names are ignored), [assignment] the initial
    placement from {!assign}. *)
val create :
  nodes:int ->
  assignment:(string * int) list ->
  topo:string list ->
  deps:(string -> string list) ->
  tracker

val n_tasks : tracker -> int
val name_of : tracker -> int -> string
val state_of : tracker -> string -> state option

(** All direct imports Done? *)
val ready : tracker -> int -> bool

val pending_count : tracker -> int -> int
val all_done : tracker -> bool

(** Closures not yet Done. *)
val remaining : tracker -> int

(** Claim the next runnable closure for [node]: the front-most ready
    task of its own queue, or — with [steal] — the back-most ready task
    of the fullest peer for which [may_steal_from] holds.  The claim is
    the atomic Pending -> Running transition. *)
val next :
  tracker ->
  node:int ->
  steal:bool ->
  may_steal_from:(int -> bool) ->
  [ `Own of string | `Stolen of string * int ] option

(** Running -> Done, accepted only from the claim holder.  Returns
    [false] for stale completions (the claim was re-sharded away). *)
val complete : tracker -> node:int -> string -> bool

(** Which node completed [iface], if any. *)
val doer : tracker -> string -> int option

(** Re-queue a dead node's Pending and Running closures round-robin on
    [survivors]; returns the moves [(iface, new_node)]. *)
val reshard : tracker -> dead:int -> survivors:int list -> (string * int) list
