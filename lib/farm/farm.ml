(* The sharded build farm: an outer discrete-event simulation of N
   compile nodes over the single-machine DES.

   Same composition trick as the compile server: the farm's event loop
   runs in virtual seconds, and every piece of real compilation is an
   inner [Driver.compile] under [Evlog.suspend] whose simulated
   [end_seconds] becomes the farm-level service time.  A node builds one
   sharded interface closure at a time, with its per-node processors
   live *inside* that task — so 2 nodes x 4 procs and 1 node x 8 procs
   spend the same processor-seconds, and the difference the benchmark
   measures is pure distribution overhead: artifact shipping, stealing,
   and failure recovery.

   The coordinator's agenda interleaves five event kinds — node-idle
   dispatch, task completion, heartbeats, death detection, partition
   heal — plus scheduled emission notes for RPC lifecycle events whose
   virtual times are computed (by [Remote.fetch]) before the events are
   reached.  All emission happens at agenda-pop time, which is what
   keeps the captured Evlog time-monotone across interleaved nodes.

   Failure model.  Nodes crash at heartbeats ([Fault.node_crash]); the
   coordinator declares a node dead after [Costs.farm_miss_beats]
   missed beats and re-shards its unfinished closures onto survivors.
   A crash bumps the node's generation, so an in-flight completion
   from a previous life is ignored.  Gray failure ([Fault.node_slow])
   multiplies a node's compile times and makes its artifact serving
   slow enough to trip RPC timeouts — the hedge path's reason to
   exist.  A partition splits even from odd nodes for
   [Costs.partition_seconds] on the artifact data plane only;
   heartbeats model the coordinator's control network and keep
   flowing, a deliberate no-split-brain simplification documented in
   DESIGN.md.  Nothing that digest-verifies is ever invalidated: the
   remote protocol is content-addressed, and any fetch that fails all
   retries and the hedge simply falls back to compiling the interface
   locally — so every recovery path converges to the same artifacts,
   and the sequential oracle ([verify]) is the gate that proves it.
   When every node dies, the farm degrades to a one-shot sequential
   compile of the whole program. *)

open Mcc_core
module Evlog = Mcc_obs.Evlog
module Trace_ctx = Mcc_obs.Trace_ctx
module Dtrace = Mcc_obs.Dtrace
module Fault = Mcc_sched.Fault
module Costs = Mcc_sched.Costs
module Des_engine = Mcc_sched.Des_engine
module Observation = Mcc_check.Observation
module Heap = Mcc_util.Heap

type config = {
  compile : Driver.config; (* per-node compile config; procs = procs per node *)
  nodes : int;
  net : Netsim.params;
  shard : Shard.policy;
  steal : bool;
  faults : Fault.spec list;
  fault_seed : int;
  seed : int; (* network jitter/loss stream *)
}

let default_config =
  {
    compile = Driver.default_config;
    nodes = 3;
    net = Netsim.lan;
    shard = Shard.Hash;
    steal = true;
    faults = [];
    fault_seed = 0;
    seed = 0;
  }

type node_stats = {
  ns_id : int;
  ns_alive : bool;
  ns_slow : bool;
  ns_tasks : int;
  ns_stolen : int;
  ns_busy_seconds : float;
  ns_fetches : int;
  ns_serves : int;
}

type report = {
  f_nodes : int;
  f_procs : int;
  f_net : string;
  f_shard : string;
  f_tasks : int; (* sharded interface closures *)
  f_makespan : float; (* virtual seconds to the final linked program *)
  f_fetches : int; (* remote fetch operations dispatched *)
  f_serves : int; (* fetches answered (by primary or replica) *)
  f_local_fallbacks : int; (* fetches that failed out and recompiled locally *)
  f_rpc_retries : int;
  f_rpc_drops : int;
  f_hedges : int;
  f_hedge_wins : int;
  f_steals : int;
  f_reshards : int;
  f_crashes : int;
  f_detects : int;
  f_slow_nodes : int;
  f_partitions : int;
  f_replicas : int;
  f_seq_fallback : bool;
  f_ok : bool;
  f_obs : Observation.t;
  f_node_stats : node_stats list;
  f_events : Evlog.record array;
  f_subs : Dtrace.sub list; (* nested compile captures; empty unless [trace] *)
  f_trace : string; (* the run's trace id ("" unless [trace]) *)
}

(* agenda events; [Note] is an Evlog emission whose virtual time was
   computed ahead of reaching it; [Gnote] is the same but guarded by a
   node generation — a span event scheduled for work a crash abandons
   must not fire *)
type ev =
  | Free of int
  | Task_done of { node : int; gen : int; iface : string; service : float }
  | Beat of int
  | Detect of int
  | Heal
  | Note of Evlog.kind
  | Gnote of { node : int; gen : int; kind : Evlog.kind }

(* A single-import probe program: compiling it on a node's cache
   compiles [iface]'s interface closure into that cache (cache hits for
   everything already fetched), without touching the real main module. *)
let probe_store store iface =
  let rec fresh n =
    let name = if n = 0 then "MccShard" else Printf.sprintf "MccShard%d" n in
    if Source_store.has_def store name || Source_store.main_name store = name then fresh (n + 1)
    else name
  in
  let main_name = fresh 0 in
  let defs =
    List.map
      (fun d -> (d, Option.get (Source_store.def_src store d)))
      (Source_store.def_names store)
  in
  Source_store.make ~main_name
    ~main_src:
      (Printf.sprintf "IMPLEMENTATION MODULE %s;\nIMPORT %s;\nBEGIN\nEND %s.\n" main_name iface
         main_name)
    ~defs ()

(* The main module's interface closure in dependency order; cycles
   (mutually-recursive definition modules) are broken at the back edge,
   so a cycle member waits only for members earlier in this order and
   compiles the rest cold within its own probe. *)
let closure_topo cache store =
  let order = ref [] in
  let mark = Hashtbl.create 16 in
  let rec visit name =
    if Source_store.has_def store name && not (Hashtbl.mem mark name) then begin
      Hashtbl.replace mark name ();
      List.iter visit (Build_cache.imports_of cache (Option.get (Source_store.def_src store name)));
      order := name :: !order
    end
  in
  List.iter visit (Build_cache.imports_of cache (Source_store.main_src store));
  List.rev !order

let run ?(capture = false) ?(trace = false) cfg store =
  if cfg.compile.Driver.faults <> [] then
    invalid_arg "Farm.run: put the fault plan in the farm config, not the compile config";
  if cfg.nodes < 1 then invalid_arg "Farm.run: need at least one node";
  let capture = capture || trace in
  let trace_id =
    if trace then
      Trace_ctx.trace_id ~domain:"farm" ~seed:cfg.seed ~key:(Source_store.main_name store)
    else ""
  in
  if trace then Trace_ctx.reset ();
  let root_span = if trace then Trace_ctx.fresh () else -1 in
  let subs = ref [] (* reversed Dtrace.sub list *) in
  let open_task : (int, int) Hashtbl.t = Hashtbl.create 8 (* node -> open task span *) in
  let net = Netsim.create ~seed:cfg.seed cfg.net in
  let nodes = Array.init cfg.nodes Node.create in
  let scratch = Build_cache.create () in
  let topo = closure_topo scratch store in
  let rank = Hashtbl.create 16 in
  List.iteri (fun i name -> Hashtbl.replace rank name i) topo;
  (* forward deps only: back edges of import cycles are cut here *)
  let direct name =
    match Source_store.def_src store name with
    | None -> []
    | Some src ->
        List.filter
          (fun d ->
            match (Hashtbl.find_opt rank d, Hashtbl.find_opt rank name) with
            | Some rd, Some rn -> rd < rn
            | _ -> false)
          (Build_cache.imports_of scratch src)
  in
  (* transitive deps per closure, topo-sorted *)
  let trans = Hashtbl.create 16 in
  List.iter
    (fun name ->
      let set = Hashtbl.create 8 in
      List.iter
        (fun d ->
          Hashtbl.replace set d ();
          List.iter (fun dd -> Hashtbl.replace set dd ()) (Hashtbl.find trans d))
        (direct name);
      let lst =
        Hashtbl.fold (fun k () acc -> k :: acc) set []
        |> List.sort (fun a b -> compare (Hashtbl.find rank a) (Hashtbl.find rank b))
      in
      Hashtbl.replace trans name lst)
    topo;
  let sizes =
    List.map
      (fun d -> (d, String.length (Option.value ~default:"" (Source_store.def_src store d))))
      topo
  in
  let assignment = Shard.assign cfg.shard ~nodes:cfg.nodes sizes in
  let tracker = Shard.create ~nodes:cfg.nodes ~assignment ~topo ~deps:direct in
  (* counters *)
  let fetches = ref 0 and serves = ref 0 and local_fallbacks = ref 0 in
  let rpc_retries = ref 0 and rpc_drops = ref 0 in
  let hedges = ref 0 and hedge_wins = ref 0 in
  let steals = ref 0 and reshards = ref 0 in
  let crashes = ref 0 and detects = ref 0 in
  let partitions = ref 0 and replicas = ref 0 in
  let replica_of = Hashtbl.create 16 in
  let partition_until = ref neg_infinity in
  let partition_active t = t < !partition_until in
  let agenda = Heap.create (Free 0) in
  let now = ref 0.0 in
  let emit_at seconds kind =
    if Evlog.enabled () then begin
      Evlog.set_task (-1);
      Evlog.set_time (seconds /. Costs.seconds_per_unit);
      Evlog.emit kind
    end
  in
  let finished () = Shard.all_done tracker in
  let alive_ids () =
    Array.to_list nodes
    |> List.filter_map (fun (n : Node.t) -> if n.Node.alive then Some n.Node.id else None)
  in
  (* Data-plane reachability from [from] at time [t]: alive, and on the
     same side of any active partition.  The control plane (heartbeats,
     steal decisions, re-sharding) is coordinator-mediated and ignores
     partitions — a no-split-brain simplification. *)
  let reachable ~at ~from v =
    nodes.(v).Node.alive && ((not (partition_active at)) || v mod 2 = from mod 2)
  in
  let compile_config = cfg.compile in
  (* Fetch every interface in [needs] (topo order) missing from [n]'s
     cache; [note] schedules/emits lifecycle events at absolute times.
     With [spans = Some (parent, snote)], each dep gets a "fetch" span
     under [parent] (plus "rpc" annotation legs reconstructed from the
     [Remote] outcome); per-dep spans are back to back, so they tile
     [at, at + elapsed] exactly.  Returns elapsed virtual seconds. *)
  let fetch_deps (n : Node.t) ~at ~note ?spans needs =
    List.fold_left
      (fun elapsed iface ->
        let t0 = at +. elapsed in
        (* open a fetch span now, close it once the outcome is known;
           legs are emitted between the two *)
        let fetch_ctx =
          match spans with
          | None -> None
          | Some (parent, snote) ->
              let fsp = Trace_ctx.fresh () in
              snote t0
                (Evlog.Span_start
                   {
                     span = fsp;
                     parent;
                     trace = trace_id;
                     name = "fetch:" ^ iface;
                     kind = "fetch";
                     node = n.Node.id;
                   });
              Some (fsp, snote)
        in
        let fetch_span t1 status =
          match fetch_ctx with
          | Some (fsp, snote) -> snote t1 (Evlog.Span_end { span = fsp; status })
          | None -> ()
        in
        (* rpc attempt/hedge legs under [fsp], from the outcome's event
           offsets: an attempt leg closes at its timeout, the winner at
           serve time ("ok"), a raced loser "late", a hedge that never
           answered closes at the fetch's end ("timeout") *)
        let rpc_legs fsp snote ~base (outcome : Remote.outcome) =
          let open_legs : (int, int) Hashtbl.t = Hashtbl.create 4 in
          (* key: attempt number, 0 = hedge *)
          let close key at status =
            match Hashtbl.find_opt open_legs key with
            | Some sp ->
                Hashtbl.remove open_legs key;
                snote at (Evlog.Span_end { span = sp; status })
            | None -> ()
          in
          let open_leg key at name =
            let sp = Trace_ctx.fresh () in
            Hashtbl.replace open_legs key sp;
            snote at
              (Evlog.Span_start
                 { span = sp; parent = fsp; trace = trace_id; name; kind = "rpc"; node = n.Node.id })
          in
          List.iter
            (fun (dt, kind) ->
              let at = base +. dt in
              match kind with
              | Evlog.Rpc_fetch { peer; attempt; _ } ->
                  open_leg attempt at (Printf.sprintf "rpc#%d->node%d" attempt peer)
              | Evlog.Rpc_timeout { attempt; _ } -> close attempt at "timeout"
              | Evlog.Rpc_hedge { replica; _ } ->
                  open_leg 0 at (Printf.sprintf "hedge->node%d" replica)
              | Evlog.Rpc_serve _ ->
                  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) open_legs [] in
                  List.iter
                    (fun k ->
                      let won_by_hedge = outcome.Remote.hedge_won in
                      let status =
                        if (k = 0) = won_by_hedge then "ok" else "late"
                      in
                      close k at status)
                    (List.sort compare keys)
              | _ -> ())
            outcome.Remote.events;
          let keys = Hashtbl.fold (fun k _ acc -> k :: acc) open_legs [] in
          List.iter (fun k -> close k (base +. outcome.Remote.elapsed) "timeout") (List.sort compare keys)
        in
        let fpmemo = Hashtbl.create 8 in
        let fp, units = Build_cache.interface_fp n.Node.cache ~memo:fpmemo ~store iface in
        let overhead = Costs.to_seconds (float_of_int (units + Costs.cache_probe)) in
        match Build_cache.find_interface n.Node.cache ~fp with
        | Some _ ->
            (* already local (built, fetched, or healed) *)
            fetch_span (t0 +. overhead) "hit";
            elapsed +. overhead
        | None -> (
            let fallback () =
              (* nobody can serve it: the probe compile builds it cold *)
              incr local_fallbacks;
              fetch_span (t0 +. overhead) "miss";
              elapsed +. overhead
            in
            match Shard.doer tracker iface with
            | None -> fallback ()
            | Some server_id when server_id = n.Node.id -> fallback ()
            | Some server_id -> (
                let server = nodes.(server_id) in
                match Build_cache.latest_artifact server.Node.cache iface with
                | None -> fallback ()
                | Some art ->
                    let bytes = String.length (Marshal.to_string art []) in
                    let replica =
                      match Hashtbl.find_opt replica_of iface with
                      | Some r
                        when r <> server_id && r <> n.Node.id
                             && reachable ~at:t0 ~from:n.Node.id r ->
                          Some r
                      | _ -> None
                    in
                    let primary_extra =
                      (* a gray-failed server answers too late: every
                         request to it times out *)
                      if server.Node.slow then
                        Costs.node_slow_factor *. Netsim.timeout cfg.net ~bytes
                      else 0.0
                    in
                    let outcome =
                      Remote.fetch ~net ~requester:n.Node.id ~primary:server_id ?replica
                        ~primary_extra
                        ~reachable:(reachable ~at:t0 ~from:n.Node.id)
                        ~iface ~bytes ()
                    in
                    incr fetches;
                    n.Node.fetches <- n.Node.fetches + 1;
                    rpc_retries := !rpc_retries + outcome.Remote.retries;
                    rpc_drops := !rpc_drops + outcome.Remote.drops;
                    if outcome.Remote.hedged then incr hedges;
                    if outcome.Remote.hedge_won then incr hedge_wins;
                    List.iter (fun (dt, kind) -> note (t0 +. overhead +. dt) kind)
                      outcome.Remote.events;
                    (match fetch_ctx with
                    | Some (fsp, snote) ->
                        rpc_legs fsp snote ~base:(t0 +. overhead) outcome
                    | None -> ());
                    fetch_span
                      (t0 +. overhead +. outcome.Remote.elapsed)
                      (if outcome.Remote.ok then "served" else "fallback");
                    if outcome.Remote.ok then begin
                      incr serves;
                      (match outcome.Remote.served_by with
                      | Some s -> nodes.(s).Node.serves <- nodes.(s).Node.serves + 1
                      | None -> ());
                      (* content-addressed: the replica's copy is the
                         same bytes, so install the artifact in hand *)
                      Build_cache.store_interface n.Node.cache art
                    end
                    else incr local_fallbacks;
                    elapsed +. overhead +. outcome.Remote.elapsed)))
      0.0 needs
  in
  let note_later at kind = Heap.push agenda at (Note kind) in
  (* close node [i]'s open task span (crash path: the scheduled child
     ends are generation-guarded, so they die with the node and the
     children close as "lost" at assembly time) *)
  let close_task i status =
    match Hashtbl.find_opt open_task i with
    | Some tsp ->
        Hashtbl.remove open_task i;
        emit_at !now (Evlog.Span_end { span = tsp; status })
    | None -> ()
  in
  let handle = function
    | Note kind -> emit_at !now kind
    | Gnote { node; gen; kind } ->
        if nodes.(node).Node.alive && gen = nodes.(node).Node.gen then emit_at !now kind
    | Heal -> emit_at !now Evlog.Net_heal
    | Beat i ->
        let n = nodes.(i) in
        if n.Node.alive && not (finished ()) then
          if Fault.node_crash ~name:(Node.name n) then begin
            Node.crash n;
            incr crashes;
            emit_at !now (Evlog.Node_dead { node = i });
            close_task i "crashed";
            Heap.push agenda
              (!now +. (float_of_int Costs.farm_miss_beats *. Costs.farm_hb_seconds))
              (Detect i)
          end
          else begin
            n.Node.last_beat <- !now;
            emit_at !now (Evlog.Heartbeat { node = i });
            if (not (partition_active !now)) && Fault.partition ~name:"net" then begin
              partition_until := !now +. Costs.partition_seconds;
              incr partitions;
              emit_at !now (Evlog.Net_partition { spec = "even|odd" });
              Heap.push agenda !partition_until Heal
            end;
            Heap.push agenda (!now +. Costs.farm_hb_seconds) (Beat i)
          end
    | Detect i ->
        let n = nodes.(i) in
        if not n.Node.alive then begin
          emit_at !now (Evlog.Node_detect { node = i });
          incr detects;
          match alive_ids () with
          | [] -> () (* total loss: the drain ends and we fall back sequentially *)
          | survivors ->
              let moves = Shard.reshard tracker ~dead:i ~survivors in
              List.iter
                (fun (iface, nd) ->
                  incr reshards;
                  emit_at !now (Evlog.Farm_reshard { node = nd; iface }))
                moves;
              if moves <> [] then
                List.iter
                  (fun id ->
                    if nodes.(id).Node.busy_until <= !now then Heap.push agenda !now (Free id))
                  survivors
        end
    | Task_done { node = i; gen; iface; service } ->
        let n = nodes.(i) in
        if n.Node.alive && gen = n.Node.gen then close_task i "ok";
        if n.Node.alive && gen = n.Node.gen && Shard.complete tracker ~node:i iface then begin
          n.Node.tasks_run <- n.Node.tasks_run + 1;
          n.Node.busy_seconds <- n.Node.busy_seconds +. service;
          n.Node.busy_until <- !now;
          emit_at !now (Evlog.Farm_task_done { node = i; iface });
          (* push the fresh artifact to the next alive node so a fetch
             can hedge there if this node later dies or grays out *)
          let rec pick k =
            if k >= cfg.nodes then None
            else
              let r = nodes.((i + k) mod cfg.nodes) in
              if r.Node.id <> i && r.Node.alive then Some r else pick (k + 1)
          in
          (match pick 1 with
          | Some r when reachable ~at:!now ~from:i r.Node.id -> (
              match Build_cache.latest_artifact n.Node.cache iface with
              | Some art ->
                  Build_cache.store_interface r.Node.cache art;
                  Hashtbl.replace replica_of iface r.Node.id;
                  incr replicas;
                  emit_at !now (Evlog.Farm_replicate { node = i; replica = r.Node.id; iface })
              | None -> ())
          | _ -> ());
          Array.iter
            (fun (m : Node.t) ->
              if m.Node.alive && m.Node.busy_until <= !now then
                Heap.push agenda !now (Free m.Node.id))
            nodes
        end
    | Free i -> (
        let n = nodes.(i) in
        if n.Node.alive && n.Node.busy_until <= !now && not (finished ()) then
          match
            Shard.next tracker ~node:i ~steal:cfg.steal
              ~may_steal_from:(fun v -> nodes.(v).Node.alive)
          with
          | None -> ()
          | Some claim ->
              let iface =
                match claim with
                | `Own f -> f
                | `Stolen (f, victim) ->
                    n.Node.tasks_stolen <- n.Node.tasks_stolen + 1;
                    incr steals;
                    emit_at !now (Evlog.Farm_steal { node = i; victim; iface = f });
                    f
              in
              let gnote at kind =
                Heap.push agenda at (Gnote { node = i; gen = n.Node.gen; kind })
              in
              let tsp =
                if trace then begin
                  let sp = Trace_ctx.fresh () in
                  emit_at !now
                    (Evlog.Span_start
                       {
                         span = sp;
                         parent = root_span;
                         trace = trace_id;
                         name = "task:" ^ iface;
                         kind = "task";
                         node = i;
                       });
                  Hashtbl.replace open_task i sp;
                  Some (sp, gnote)
                end
                else None
              in
              let fetch_elapsed =
                fetch_deps n ~at:!now ~note:note_later ?spans:tsp (Hashtbl.find trans iface)
              in
              let probe =
                if trace then
                  Driver.compile ~config:compile_config ~capture:true ~cache:n.Node.cache
                    (probe_store store iface)
                else
                  Evlog.suspend (fun () ->
                      Driver.compile ~config:compile_config ~cache:n.Node.cache
                        (probe_store store iface))
              in
              let slowf = if n.Node.slow then Costs.node_slow_factor else 1.0 in
              let service =
                fetch_elapsed +. (probe.Driver.sim.Des_engine.end_seconds *. slowf)
              in
              (match tsp with
              | Some (sp, gnote) ->
                  let csp = Trace_ctx.fresh () in
                  gnote (!now +. fetch_elapsed)
                    (Evlog.Span_start
                       {
                         span = csp;
                         parent = sp;
                         trace = trace_id;
                         name = "compile:" ^ iface;
                         kind = "compute";
                         node = i;
                       });
                  gnote (!now +. service) (Evlog.Span_end { span = csp; status = "ok" });
                  if Array.length probe.Driver.log > 0 then
                    subs :=
                      {
                        Dtrace.sub_owner = csp;
                        sub_t0 = (!now +. fetch_elapsed) /. Costs.seconds_per_unit;
                        sub_scale = slowf;
                        sub_log = probe.Driver.log;
                        sub_names = probe.Driver.task_index;
                      }
                      :: !subs
              | None -> ());
              n.Node.busy_until <- !now +. service;
              Heap.push agenda (!now +. service)
                (Task_done { node = i; gen = n.Node.gen; iface; service }))
  in
  let run_farm () =
    (* gray failures are decided at boot: a slow node is slow for life *)
    Array.iter
      (fun (n : Node.t) -> if Fault.node_slow ~name:(Node.name n) then n.Node.slow <- true)
      nodes;
    if trace then
      emit_at 0.0
        (Evlog.Span_start
           { span = root_span; parent = -1; trace = trace_id; name = "farm"; kind = "farm"; node = -1 });
    Array.iter
      (fun (n : Node.t) ->
        emit_at 0.0 (Evlog.Node_start { node = n.Node.id; procs = cfg.compile.Driver.procs }))
      nodes;
    List.iter
      (fun (iface, node) -> emit_at 0.0 (Evlog.Farm_assign { node; iface }))
      assignment;
    Array.iter
      (fun (n : Node.t) ->
        Heap.push agenda 0.0 (Free n.Node.id);
        Heap.push agenda Costs.farm_hb_seconds (Beat n.Node.id))
      nodes;
    let continue_ = ref true in
    while !continue_ do
      match Heap.pop agenda with
      | None -> continue_ := false
      | Some (t, e) ->
          now := t;
          handle e
    done;
    (* assembly: one surviving node fetches whatever of the closure it
       lacks and compiles the real main module against its warm cache;
       with no survivors (or nothing converged), compile sequentially *)
    let seq_fallback = not (Shard.all_done tracker) in
    let home =
      let candidates = List.filter (fun id -> not nodes.(id).Node.slow) (alive_ids ()) in
      match (candidates, alive_ids ()) with
      | id :: _, _ -> Some nodes.(id)
      | [], id :: _ -> Some nodes.(id)
      | [], [] -> None
    in
    let result =
      match (seq_fallback, home) with
      | true, _ | _, None ->
          let seq = Seq_driver.compile store in
          let makespan = !now +. Costs.to_seconds seq.Seq_driver.cost_units in
          if trace then begin
            (* one assembly span tiled by a single compute: the whole
               program recompiled sequentially, off-farm *)
            let asp = Trace_ctx.fresh () in
            emit_at !now
              (Evlog.Span_start
                 {
                   span = asp;
                   parent = root_span;
                   trace = trace_id;
                   name = "assembly";
                   kind = "assembly";
                   node = -1;
                 });
            let csp = Trace_ctx.fresh () in
            emit_at !now
              (Evlog.Span_start
                 {
                   span = csp;
                   parent = asp;
                   trace = trace_id;
                   name = "compile:" ^ Source_store.main_name store;
                   kind = "compute";
                   node = -1;
                 });
            emit_at makespan (Evlog.Span_end { span = csp; status = "ok" });
            emit_at makespan (Evlog.Span_end { span = asp; status = "fallback" })
          end;
          (true, seq.Seq_driver.ok, Observation.of_seq ~run:false seq, makespan)
      | false, Some home ->
          (* there is no agenda left to order scheduled emissions, so
             buffer everything the assembly phase wants to emit and
             flush it time-sorted (stable: planning order breaks ties) *)
          let pending = ref [] in
          let buffer at kind = pending := (at, kind) :: !pending in
          let flush () =
            List.iter
              (fun (at, kind) -> emit_at at kind)
              (List.stable_sort (fun (a, _) (b, _) -> compare a b) (List.rev !pending));
            pending := []
          in
          let asp =
            if trace then begin
              let sp = Trace_ctx.fresh () in
              emit_at !now
                (Evlog.Span_start
                   {
                     span = sp;
                     parent = root_span;
                     trace = trace_id;
                     name = "assembly";
                     kind = "assembly";
                     node = home.Node.id;
                   });
              Some (sp, buffer)
            end
            else None
          in
          let fetch_elapsed = fetch_deps home ~at:!now ~note:buffer ?spans:asp topo in
          let final =
            if trace then
              Driver.compile ~config:compile_config ~capture:true ~cache:home.Node.cache store
            else
              Evlog.suspend (fun () ->
                  Driver.compile ~config:compile_config ~cache:home.Node.cache store)
          in
          let slowf = if home.Node.slow then Costs.node_slow_factor else 1.0 in
          let makespan =
            !now +. fetch_elapsed +. (final.Driver.sim.Des_engine.end_seconds *. slowf)
          in
          (match asp with
          | Some (sp, _) ->
              let csp = Trace_ctx.fresh () in
              buffer (!now +. fetch_elapsed)
                (Evlog.Span_start
                   {
                     span = csp;
                     parent = sp;
                     trace = trace_id;
                     name = "compile:" ^ Source_store.main_name store;
                     kind = "compute";
                     node = home.Node.id;
                   });
              if Array.length final.Driver.log > 0 then
                subs :=
                  {
                    Dtrace.sub_owner = csp;
                    sub_t0 = (!now +. fetch_elapsed) /. Costs.seconds_per_unit;
                    sub_scale = slowf;
                    sub_log = final.Driver.log;
                    sub_names = final.Driver.task_index;
                  }
                  :: !subs;
              buffer makespan (Evlog.Span_end { span = csp; status = "ok" });
              buffer makespan (Evlog.Span_end { span = sp; status = "ok" })
          | None -> ());
          flush ();
          home.Node.busy_seconds <-
            home.Node.busy_seconds +. fetch_elapsed
            +. (final.Driver.sim.Des_engine.end_seconds *. slowf);
          (false, final.Driver.ok, Observation.of_driver ~run:false final, makespan)
    in
    (if trace then
       let sf, _, _, makespan = result in
       emit_at makespan
         (Evlog.Span_end { span = root_span; status = (if sf then "fallback" else "ok") }));
    result
  in
  let with_faults f =
    if cfg.faults = [] then f ()
    else
      (* ship the schedule to the simulated cluster the way a real
         coordinator would: what gets armed is what a node deserializes,
         so the wire round trip is on the hot path *)
      let plan = Fault.plan ~seed:cfg.fault_seed cfg.faults in
      Fault.with_plan (Fault.of_bytes (Fault.to_bytes plan)) f
  in
  let events = ref [||] in
  let seq_fallback, ok, obs, makespan =
    if capture then begin
      let r, log = Evlog.capture (fun () -> with_faults run_farm) in
      events := log;
      r
    end
    else with_faults run_farm
  in
  {
    f_nodes = cfg.nodes;
    f_procs = cfg.compile.Driver.procs;
    f_net = Netsim.params_to_string cfg.net;
    f_shard = Shard.policy_to_string cfg.shard;
    f_tasks = Shard.n_tasks tracker;
    f_makespan = makespan;
    f_fetches = !fetches;
    f_serves = !serves;
    f_local_fallbacks = !local_fallbacks;
    f_rpc_retries = !rpc_retries;
    f_rpc_drops = !rpc_drops;
    f_hedges = !hedges;
    f_hedge_wins = !hedge_wins;
    f_steals = !steals;
    f_reshards = !reshards;
    f_crashes = !crashes;
    f_detects = !detects;
    f_slow_nodes =
      Array.fold_left (fun acc (n : Node.t) -> if n.Node.slow then acc + 1 else acc) 0 nodes;
    f_partitions = !partitions;
    f_replicas = !replicas;
    f_seq_fallback = seq_fallback;
    f_ok = ok;
    f_obs = obs;
    f_node_stats =
      Array.to_list nodes
      |> List.map (fun (n : Node.t) ->
             {
               ns_id = n.Node.id;
               ns_alive = n.Node.alive;
               ns_slow = n.Node.slow;
               ns_tasks = n.Node.tasks_run;
               ns_stolen = n.Node.tasks_stolen;
               ns_busy_seconds = n.Node.busy_seconds;
               ns_fetches = n.Node.fetches;
               ns_serves = n.Node.serves;
             });
    f_events = !events;
    f_subs = List.rev !subs;
    f_trace = trace_id;
  }

(* ------------------------------------------------------------------ *)
(* The farm-vs-sequential conformance oracle *)

(* Whatever the farm went through — crashes, re-shards, partitions,
   hedges, total loss — its final program must be observationally
   identical to a one-shot sequential compile of the same source. *)
let verify store report =
  let seq = Seq_driver.compile store in
  let reference = Observation.of_seq ~run:false seq in
  match Observation.first_diff ~reference report.f_obs with
  | None -> Ok ()
  | Some (field, expected, actual) ->
      Error
        (Printf.sprintf "farm output diverged from the sequential oracle: %s: oracle %s, farm %s"
           field expected actual)
