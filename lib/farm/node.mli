(** One simulated build-farm node: its own warm interface cache, its
    own processor budget, and the liveness/progress bookkeeping the
    coordinator reads between agenda events.  The compile work itself
    runs through the inner DES ([Driver.compile]); this record only
    anchors per-node state. *)

type t = {
  id : int;
  cache : Mcc_core.Build_cache.t;
  mutable alive : bool;
  mutable slow : bool;  (** gray failure: serves and compiles slowly *)
  mutable busy_until : float;  (** virtual seconds; [<= now] means idle *)
  mutable gen : int;  (** bumped on crash: stale events are ignored *)
  mutable last_beat : float;  (** last heartbeat the coordinator saw *)
  mutable tasks_run : int;
  mutable tasks_stolen : int;  (** tasks this node stole from peers *)
  mutable busy_seconds : float;
  mutable fetches : int;  (** remote fetches this node issued *)
  mutable serves : int;  (** fetches this node answered *)
}

(** A fresh, alive, idle node with an empty cache. *)
val create : int -> t

(** ["node<id>"] — the name fault specs target. *)
val name : t -> string

(** Mark dead and bump the generation, so in-flight completions from
    this life are discarded. *)
val crash : t -> unit
