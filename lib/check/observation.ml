(* Canonical observations and their field-by-field comparison. *)

open Mcc_codegen

type vm_obs = { v_status : string; v_output : string; v_steps : int; v_store : string }

type t = {
  ok : bool;
  diags : string list;
  unit_keys : string list;
  unit_digests : (string * string) list;
  unit_sizes : int list;
  program_digest : string;
  vm : vm_obs option;
}

let vm_fuel = 2_000_000

let make ?(input = []) ~run ~ok ~diags program =
  let keys = Cunit.unit_keys program in
  let digests =
    List.map
      (fun key ->
        match Cunit.find_unit program key with
        | None -> (key, "missing")
        | Some u -> (key, Digest.to_hex (Digest.string (Cunit.disassemble_unit u))))
      keys
  in
  let sizes =
    List.sort compare
      (List.filter_map
         (fun key ->
           Option.map (fun u -> Array.length u.Cunit.u_code) (Cunit.find_unit program key))
         keys)
  in
  let vm =
    if run && ok then begin
      let r = Mcc_vm.Vm.run ~fuel:vm_fuel ~input program in
      Some
        {
          v_status = Mcc_vm.Vm.status_to_string r.Mcc_vm.Vm.status;
          v_output = r.Mcc_vm.Vm.output;
          v_steps = r.Mcc_vm.Vm.steps;
          v_store = r.Mcc_vm.Vm.store_digest;
        }
    end
    else None
  in
  {
    ok;
    diags = List.map Mcc_m2.Diag.to_string diags;
    unit_keys = keys;
    unit_digests = digests;
    unit_sizes = sizes;
    program_digest = Digest.to_hex (Digest.string (Cunit.disassemble program));
    vm;
  }

let of_seq ?input ~run (r : Mcc_core.Seq_driver.result) =
  make ?input ~run ~ok:r.Mcc_core.Seq_driver.ok ~diags:r.Mcc_core.Seq_driver.diags
    r.Mcc_core.Seq_driver.program

let of_driver ?input ~run (r : Mcc_core.Driver.result) =
  make ?input ~run ~ok:r.Mcc_core.Driver.ok ~diags:r.Mcc_core.Driver.diags
    r.Mcc_core.Driver.program

(* ------------------------------------------------------------------ *)
(* Comparison *)

let truncate s = if String.length s <= 160 then s else String.sub s 0 157 ^ "..."

let render_list l =
  truncate (match l with [] -> "(none)" | l -> String.concat " | " l)

(* The first differing field wins: coarse fields (success, diagnostics)
   are checked before fine ones so a divergence is reported at the most
   meaningful level. *)
let first_diff ~reference actual =
  let r = reference and a = actual in
  if r.ok <> a.ok then Some ("ok", string_of_bool r.ok, string_of_bool a.ok)
  else if r.diags <> a.diags then Some ("diags", render_list r.diags, render_list a.diags)
  else if r.unit_keys <> a.unit_keys then
    Some ("units", render_list r.unit_keys, render_list a.unit_keys)
  else
    match
      List.find_opt
        (fun ((key, d), (key', d')) -> key <> key' || d <> d')
        (List.combine r.unit_digests a.unit_digests)
    with
    | Some ((key, d), (_, d')) -> Some ("unit:" ^ key, d, d')
    | None ->
        if r.program_digest <> a.program_digest then
          Some ("program", r.program_digest, a.program_digest)
        else begin
          match (r.vm, a.vm) with
          | None, None -> None
          | Some _, None -> Some ("vm_presence", "executed", "not executed")
          | None, Some _ -> Some ("vm_presence", "not executed", "executed")
          | Some v, Some v' ->
              if v.v_status <> v'.v_status then Some ("vm_status", v.v_status, v'.v_status)
              else if v.v_output <> v'.v_output then
                Some ("vm_output", truncate v.v_output, truncate v'.v_output)
              else if v.v_steps <> v'.v_steps then
                Some ("vm_steps", string_of_int v.v_steps, string_of_int v'.v_steps)
              else if v.v_store <> v'.v_store then Some ("vm_store", v.v_store, v'.v_store)
              else None
        end

let first_diff_modulo_names ~reference actual =
  let r = reference and a = actual in
  if r.ok <> a.ok then Some ("ok", string_of_bool r.ok, string_of_bool a.ok)
  else if List.length r.diags <> List.length a.diags then
    Some
      ( "diag_count",
        string_of_int (List.length r.diags),
        string_of_int (List.length a.diags) )
  else if List.length r.unit_keys <> List.length a.unit_keys then
    Some
      ( "unit_count",
        string_of_int (List.length r.unit_keys),
        string_of_int (List.length a.unit_keys) )
  else if r.unit_sizes <> a.unit_sizes then
    Some
      ( "unit_sizes",
        render_list (List.map string_of_int r.unit_sizes),
        render_list (List.map string_of_int a.unit_sizes) )
  else
    match (r.vm, a.vm) with
    | None, None -> None
    | Some _, None -> Some ("vm_presence", "executed", "not executed")
    | None, Some _ -> Some ("vm_presence", "not executed", "executed")
    | Some v, Some v' ->
        if v.v_status <> v'.v_status then Some ("vm_status", v.v_status, v'.v_status)
        else if v.v_output <> v'.v_output then
          Some ("vm_output", truncate v.v_output, truncate v'.v_output)
        else if v.v_steps <> v'.v_steps then
          Some ("vm_steps", string_of_int v.v_steps, string_of_int v'.v_steps)
          (* no v_store: proc/exc values render keys, which embed names *)
        else None
