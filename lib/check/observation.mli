(** The canonical observation record: everything about a compilation the
    paper claims is schedule-, strategy- and processor-independent
    (§2.2–2.3), in a form two runs can be compared field by field.

    An observation deliberately excludes virtual timings, stream/task
    counts and robustness counters — those legitimately vary across the
    matrix; what must not vary is captured here: success, the sorted
    diagnostics, the object code (per-procedure digests so a divergence
    names the first differing unit), and — when the program is runnable
    — its VM behaviour including a digest of the final store. *)

type vm_obs = {
  v_status : string;
  v_output : string;
  v_steps : int;
  v_store : string;  (** {!Mcc_vm.Vm.result.store_digest} *)
}

type t = {
  ok : bool;
  diags : string list;  (** sorted diagnostic renderings *)
  unit_keys : string list;  (** code-unit keys, sorted *)
  unit_digests : (string * string) list;
      (** unit key -> MD5 of its canonical disassembly, key-sorted *)
  unit_sizes : int list;
      (** per-unit instruction counts, sorted — the name-independent
          object-code skeleton the alpha-rename relation compares *)
  program_digest : string;  (** MD5 of the whole linked disassembly *)
  vm : vm_obs option;  (** [None] unless runnable and [ok] *)
}

(** Observe a compiled program.  [run] executes it in the VM (with
    [input] and bounded fuel) when [ok]. *)
val make :
  ?input:int list ->
  run:bool ->
  ok:bool ->
  diags:Mcc_m2.Diag.d list ->
  Mcc_codegen.Cunit.program ->
  t

val of_seq : ?input:int list -> run:bool -> Mcc_core.Seq_driver.result -> t
val of_driver : ?input:int list -> run:bool -> Mcc_core.Driver.result -> t

(** First differing field between a reference observation and another:
    [(field, reference_value, actual_value)], values rendered and
    truncated for reporting.  [None] when equal.  Field names: [ok],
    [diags], [units], [unit:KEY], [program], [vm_status], [vm_output],
    [vm_steps], [vm_store], [vm_presence]. *)
val first_diff : reference:t -> t -> (string * string * string) option

(** Weakened comparison for name-changing morphs (alpha-rename):
    everything modulo names — success, diagnostic {e count}, unit
    count, the sorted multiset of per-unit instruction counts, and the
    VM status/output/steps (renaming cannot change behaviour; the store
    digest is excluded because procedure and exception values render
    their keys, which embed names). *)
val first_diff_modulo_names : reference:t -> t -> (string * string * string) option
