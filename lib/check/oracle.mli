(** The differential oracle: the sequential baseline compiler
    ({!Mcc_core.Seq_driver}) is ground truth; the concurrent compiler is
    run across a cell matrix (strategy x processors x perturbation seed
    x cache warm/cold x fault plan), and every cell's canonical
    {!Observation.t} must equal the reference's.  Any mismatch is a
    structured {!divergence} naming the cell and the first differing
    field — the seed corpus the paper's "identical output under every
    schedule" claim (§2.2) is checked against. *)

open Mcc_sem

type cache_mode =
  | No_cache  (** straight compile *)
  | Warm  (** prime a fresh cache with one compile, then compile again warm *)

type cell = {
  strategy : Symtab.dky;
  procs : int;
  perturb : int option;  (** schedule-exploration seed for tie-breaking *)
  cache : cache_mode;
  faults : string;  (** fault-plan spec string ({!Mcc_sched.Fault.parse_list}); [""] = none *)
  fault_seed : int;
}

(** A canary defect planted before the measured compile, to prove the
    oracle reports real corruption.  [Tamper_cache name] corrupts the
    warm cache's artifact for interface [name] with verification
    disabled ({!Mcc_core.Build_cache.tamper}) — only meaningful for
    [Warm] cells; a [No_cache] cell ignores it. *)
type plant = Tamper_cache of string

(** The canary target for a program: its first interface, if any. *)
val plant_for : Mcc_core.Source_store.t -> plant option

type divergence = {
  d_cell : cell;
  d_field : string;  (** first differing observation field (see {!Observation.first_diff}) *)
  d_expected : string;  (** reference (sequential) value, truncated *)
  d_actual : string;  (** concurrent value, truncated *)
}

(** Compact cell rendering, e.g. ["skeptical/p8/perturb=3/warm/faults=task-crash@2#7"]. *)
val cell_to_string : cell -> string

val divergence_to_string : divergence -> string

(** A cell with no perturbation, no cache and no faults. *)
val cell : Symtab.dky -> int -> cell

(** The strategy x procs cross product of plain cells, in deterministic
    order. *)
val matrix : strategies:Symtab.dky list -> procs:int list -> cell list

(** All concurrent strategies x {1, 2, 8} processors. *)
val default_matrix : cell list

(** Observe the sequential reference compilation.  [run] executes
    runnable programs in the VM. *)
val reference : ?input:int list -> run:bool -> Mcc_core.Source_store.t -> Observation.t

(** Compile one cell and compare against [reference].  [Warm] cells
    prime a fresh fault-free cache first; [plant] then corrupts it
    before the measured compile.  Verification state is always restored. *)
val run_cell :
  ?input:int list ->
  ?plant:plant ->
  run:bool ->
  reference:Observation.t ->
  Mcc_core.Source_store.t ->
  cell ->
  divergence option

(** Run every cell against the shared sequential reference; returns all
    divergences in cell order (empty = conformant). *)
val check :
  ?input:int list ->
  ?plant:plant ->
  run:bool ->
  Mcc_core.Source_store.t ->
  cell list ->
  divergence list
