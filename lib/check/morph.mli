(** Metamorphic source transforms: semantics-preserving rewrites of a
    whole program, each paired with the equivalence relation its output
    must satisfy against the original's observation.  A transform that
    compiles differently than its relation allows is a compiler bug the
    plain differential oracle cannot see (both drivers would agree on
    the wrong answer). *)

type transform =
  | Rename  (** alpha-rename every non-keyword, non-builtin, non-module identifier *)
  | Permute_decls
      (** seeded shuffle of runs of independent single-line [CONST] declarations *)
  | Reflow
      (** token-preserving line reflow: join body lines / split after
          top-level [;] — the split/merge-at-statement-boundary morph *)
  | Pad  (** insert whole comment lines between top-level blocks *)

(** What the transformed program's observation must match on:
    [Exact] compares with {!Observation.first_diff} (identical
    diagnostics, object code and VM behaviour); [Modulo_names] with
    {!Observation.first_diff_modulo_names}. *)
type relation = Exact | Modulo_names

val all : transform list
val name : transform -> string
val relation_of : transform -> relation

(** Apply the transform to every source file of the store.  [Rename]
    and [Pad] ignore the seed; [Permute_decls] and [Reflow] derive
    their choices from it deterministically. *)
val apply : seed:int -> transform -> Mcc_core.Source_store.t -> Mcc_core.Source_store.t

(** Compare under the transform's relation:
    [None] when equivalent, else the first differing field. *)
val compare_obs :
  transform ->
  reference:Observation.t ->
  Observation.t ->
  (string * string * string) option
