(** The conformance harness driver: a seeded, deterministic work queue
    of differential checks.

    Each budget item checks one (program, cell) pair: programs are
    small synthetic shapes generated from the run seed (a fresh program
    every few items), cells cycle through the configured strategy x
    processor matrix with perturbation seeds, warm/cold caches and
    fault plans drawn from the same seeded stream.  Roughly every
    fourth item is a metamorphic check ({!Morph}): the transformed
    program must match the original under the transform's relation
    {e and} pass one oracle cell itself.

    Everything derives from [seed]: two runs with the same config
    produce byte-identical {!report_to_json} output (no wall times in
    the report). *)

open Mcc_sem

type config = {
  budget : int;  (** checks to run *)
  seed : int;
  strategies : Symtab.dky list;
  procs : int list;
  run_vm : bool;  (** execute runnable programs in the VM *)
  shrink : bool;  (** delta-debug each divergent program *)
  plant : bool;
      (** plant the cache-tamper canary ({!Oracle.plant}) in every
          warm-cache cell — divergences are then expected *)
  max_shrink_steps : int;
}

(** budget 50, seed 0, all concurrent strategies x {1, 2, 8} procs,
    VM on, shrink on, no plant. *)
val default_config : config

type divergence_report = {
  item : int;  (** 0-based queue index (replay: [--budget item+1]) *)
  ordinal : int;
      (** 0-based position in the report's divergence list — one queue
          item can record more than one divergence (the morph branch
          checks both the relation and an oracle cell), so [item] alone
          does not name a divergence uniquely *)
  program : string;  (** program label, e.g. ["gen:3#17"] or ["morph:rename(gen:3#17)"] *)
  cell : string;  (** {!Oracle.cell_to_string}, or ["morph-relation"] *)
  field : string;
  expected : string;
  actual : string;
  replay : string;  (** an [m2c check] command line reproducing this item *)
  shrunk : (int * int * int) option;  (** (orig_bytes, min_bytes, steps) when shrunk *)
  reproducer : (string * string) list;
      (** minimized sources, (filename, text), empty unless shrunk *)
}

type report = {
  r_config : config;
  checks_run : int;
  oracle_checks : int;
  morph_checks : int;
  programs : int;  (** distinct programs generated *)
  divergences : divergence_report list;
  planted_detected : bool;  (** with [plant]: did any divergence surface? *)
}

(** [ok] = conformant: no divergences without a plant; with a plant,
    the canary was detected. *)
val ok : report -> bool

val run : ?progress:(string -> unit) -> config -> report

(** Deterministic JSON rendering (schema [mcc-check-report-v1]). *)
val report_to_json : report -> string

(** Write [report.json] plus every divergence's minimized reproducer
    sources into [dir] (created if missing).  Reproducers are named
    [repro<item>x<ordinal>-<file>] so two divergences recorded by the
    same queue item never overwrite each other.  Returns the report
    path. *)
val save : dir:string -> report -> (string, string) result
