open Mcc_core
module Prng = Mcc_util.Prng

type transform = Rename | Permute_decls | Reflow | Pad
type relation = Exact | Modulo_names

let all = [ Rename; Permute_decls; Reflow; Pad ]

let name = function
  | Rename -> "rename"
  | Permute_decls -> "permute-decls"
  | Reflow -> "reflow"
  | Pad -> "pad"

let relation_of = function Rename -> Modulo_names | Permute_decls | Reflow | Pad -> Exact

(* ------------------------------------------------------------------ *)
(* Shared scanning machinery.

   All transforms must respect the same lexical islands: nested (* *)
   comments, <* *> pragmas, and single-line string literals.  [scan]
   walks the source calling [island] on each verbatim island span and
   [code] on each code character, in order. *)

let is_id_start c = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || c = '_'
let is_id c = is_id_start c || (c >= '0' && c <= '9')

let scan src ~island ~code =
  let n = String.length src in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let s = !i in
      let depth = ref 0 in
      let stop = ref false in
      while (not !stop) && !i < n do
        if !i + 1 < n && src.[!i] = '(' && src.[!i + 1] = '*' then begin
          incr depth;
          i := !i + 2
        end
        else if !i + 1 < n && src.[!i] = '*' && src.[!i + 1] = ')' then begin
          decr depth;
          i := !i + 2;
          if !depth = 0 then stop := true
        end
        else incr i
      done;
      island (String.sub src s (!i - s))
    end
    else if c = '<' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let s = !i in
      i := !i + 2;
      let stop = ref false in
      while (not !stop) && !i < n do
        if !i + 1 < n && src.[!i] = '*' && src.[!i + 1] = '>' then begin
          i := !i + 2;
          stop := true
        end
        else incr i
      done;
      island (String.sub src s (!i - s))
    end
    else if c = '"' || c = '\'' then begin
      let s = !i in
      incr i;
      while !i < n && src.[!i] <> c && src.[!i] <> '\n' do
        incr i
      done;
      if !i < n then incr i;
      island (String.sub src s (!i - s))
    end
    else begin
      code c;
      incr i
    end
  done

(* ------------------------------------------------------------------ *)
(* Alpha-rename: every identifier that is not a keyword, a builtin or a
   module name gets an "_r" suffix — an injective rename applied
   uniformly across every file of the program, so imports, qualified
   names and record fields stay consistent.  Digit-led tokens (0FFH)
   are consumed whole so their letter tail is never mistaken for an
   identifier. *)

let rename_src ~protected src =
  let n = String.length src in
  let buf = Buffer.create (n + (n / 4)) in
  let pending = Buffer.create 16 in
  let flush_word () =
    if Buffer.length pending > 0 then begin
      let word = Buffer.contents pending in
      Buffer.clear pending;
      Buffer.add_string buf word;
      if
        is_id_start word.[0]
        && Mcc_m2.Token.lookup_keyword word = None
        && (not (Mcc_sem.Builtins.is_builtin word))
        && not (Hashtbl.mem protected word)
      then Buffer.add_string buf "_r"
    end
  in
  scan src
    ~island:(fun s ->
      flush_word ();
      Buffer.add_string buf s)
    ~code:(fun c ->
      if is_id c then Buffer.add_char pending c
      else begin
        flush_word ();
        Buffer.add_char buf c
      end);
  flush_word ();
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reflow: token-preserving line surgery.  Joining two lines with a
   space can never change the token stream (strings and pragmas are
   single-line; a space inside a comment is inert), and splitting after
   a code-level "; " only replaces one inter-token separator with
   another. *)

let split_semis src =
  let buf = Buffer.create (String.length src) in
  let last_code_semi = ref false in
  scan src
    ~island:(fun s ->
      last_code_semi := false;
      Buffer.add_string buf s)
    ~code:(fun c ->
      if !last_code_semi && c = ' ' then Buffer.add_char buf '\n'
      else Buffer.add_char buf c;
      last_code_semi := c = ';');
  Buffer.contents buf

let merge_lines prng src =
  let lines = String.split_on_char '\n' src in
  let buf = Buffer.create (String.length src) in
  let col = ref 0 in
  List.iteri
    (fun k line ->
      if k > 0 then
        if !col > 0 && !col < 400 && String.length line > 0 && Prng.bool prng then begin
          Buffer.add_char buf ' ';
          incr col
        end
        else begin
          Buffer.add_char buf '\n';
          col := 0
        end;
      Buffer.add_string buf line;
      col := !col + String.length line)
    lines;
  Buffer.contents buf

let reflow prng src = if Prng.bool prng then merge_lines prng src else split_semis src

(* ------------------------------------------------------------------ *)
(* Permute independent CONST declarations: maximal runs of consecutive
   single-line "name = ...;" entries inside a CONST section are
   shuffled, but only when no entry's right-hand side references a name
   declared in the same run (declare-before-use stays intact; entries
   outside the run keep their line numbers). *)

let words_of s =
  let out = ref [] in
  let cur = Buffer.create 8 in
  String.iter
    (fun c ->
      if is_id c then Buffer.add_char cur c
      else if Buffer.length cur > 0 then begin
        out := Buffer.contents cur :: !out;
        Buffer.clear cur
      end)
    s;
  if Buffer.length cur > 0 then out := Buffer.contents cur :: !out;
  List.rev !out

(* "name = rhs;" with no comment, string or pragma on the line
   -> (name, rhs words) *)
let parse_decl t =
  match String.index_opt t '=' with
  | Some eq
    when (not (String.exists (fun c -> c = '(' || c = '"' || c = '\'' || c = '<') t))
         && String.length t > 0
         && t.[String.length t - 1] = ';' -> (
      let lhs = String.trim (String.sub t 0 eq) in
      let rhs = String.sub t (eq + 1) (String.length t - eq - 1) in
      match words_of lhs with
      | [ name ] when is_id_start name.[0] -> Some (name, words_of rhs)
      | _ -> None)
  | _ -> None

(* A permutable constant declaration line: "name = rhs;" inside a CONST
   section, or the self-headed "CONST name = rhs;" form. *)
let eligible_decl ~in_const line =
  let t = String.trim line in
  if String.length t > 6 && String.sub t 0 6 = "CONST " then
    parse_decl (String.trim (String.sub t 6 (String.length t - 6)))
  else if in_const then parse_decl t
  else None

let permute_decls prng src =
  let lines = Array.of_list (String.split_on_char '\n' src) in
  let n = Array.length lines in
  let in_const = ref false in
  let shuffle_run lo hi =
    (* [lo, hi): eligible decl lines.  Independent iff no RHS mentions a
       name declared in the run. *)
    if hi - lo >= 2 then begin
      let decls =
        Array.init (hi - lo) (fun j -> Option.get (eligible_decl ~in_const:true lines.(lo + j)))
      in
      let names = Array.to_list (Array.map fst decls) in
      let independent =
        Array.for_all (fun (_, rhs) -> not (List.exists (fun w -> List.mem w names) rhs)) decls
      in
      if independent then begin
        let run = Array.sub lines lo (hi - lo) in
        Prng.shuffle prng run;
        Array.blit run 0 lines lo (hi - lo)
      end
    end
  in
  let run_start = ref (-1) in
  let close k =
    if !run_start >= 0 then shuffle_run !run_start k;
    run_start := -1
  in
  for k = 0 to n - 1 do
    match eligible_decl ~in_const:!in_const lines.(k) with
    | Some _ ->
        if !run_start < 0 then run_start := k;
        (* eligible implies in a CONST section (self-headed or inherited) *)
        in_const := true
    | None ->
        close k;
        in_const := String.trim lines.(k) = "CONST"
  done;
  close n;
  String.concat "\n" (Array.to_list lines)

(* ------------------------------------------------------------------ *)
(* Pad: whole comment lines are lexically inert anywhere (even inside a
   nested comment, where the balanced pair only bumps the depth). *)

let pad_src src =
  let lines = String.split_on_char '\n' src in
  let buf = Buffer.create (String.length src + 256) in
  Buffer.add_string buf "(* conformance padding: this comment line is semantically inert *)\n";
  List.iteri
    (fun k line ->
      if k > 0 then Buffer.add_char buf '\n';
      let t = String.trim line in
      if String.length t >= 10 && String.sub t 0 9 = "PROCEDURE" && not (is_id t.[9]) then
        Buffer.add_string buf "(* conformance padding *)\n";
      Buffer.add_string buf line)
    lines;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

let map_store f store =
  let main_name = Source_store.main_name store in
  let defs =
    List.map
      (fun name -> (name, f name (Option.get (Source_store.def_src store name))))
      (Source_store.def_names store)
  in
  let impls =
    List.filter_map
      (fun name ->
        if name = main_name then None
        else Option.map (fun s -> (name, f name s)) (Source_store.impl_src store name))
      (Source_store.impl_names store)
  in
  Source_store.make ~impls ~main_name
    ~main_src:(f main_name (Source_store.main_src store))
    ~defs ()

let apply ~seed t store =
  match t with
  | Rename ->
      let protected = Hashtbl.create 64 in
      List.iter (fun n -> Hashtbl.replace protected n ()) (Source_store.def_names store);
      List.iter (fun n -> Hashtbl.replace protected n ()) (Source_store.impl_names store);
      Hashtbl.replace protected (Source_store.main_name store) ();
      map_store (fun _ src -> rename_src ~protected src) store
  | Permute_decls ->
      map_store (fun name src -> permute_decls (Prng.create (seed lxor Hashtbl.hash name)) src) store
  | Reflow ->
      map_store (fun name src -> reflow (Prng.create (seed lxor Hashtbl.hash name)) src) store
  | Pad -> map_store (fun _ src -> pad_src src) store

let compare_obs t ~reference obs =
  match relation_of t with
  | Exact -> Observation.first_diff ~reference obs
  | Modulo_names -> Observation.first_diff_modulo_names ~reference obs
