open Mcc_sem
open Mcc_core
module Prng = Mcc_util.Prng
module Gen = Mcc_synth.Gen
module Json = Mcc_obs.Json

type config = {
  budget : int;
  seed : int;
  strategies : Symtab.dky list;
  procs : int list;
  run_vm : bool;
  shrink : bool;
  plant : bool;
  max_shrink_steps : int;
}

let default_config =
  {
    budget = 50;
    seed = 0;
    strategies = Symtab.all_concurrent;
    procs = [ 1; 2; 8 ];
    run_vm = true;
    shrink = true;
    plant = false;
    max_shrink_steps = 600;
  }

type divergence_report = {
  item : int;
  ordinal : int;
  program : string;
  cell : string;
  field : string;
  expected : string;
  actual : string;
  replay : string;
  shrunk : (int * int * int) option;
  reproducer : (string * string) list;
}

type report = {
  r_config : config;
  checks_run : int;
  oracle_checks : int;
  morph_checks : int;
  programs : int;
  divergences : divergence_report list;
  planted_detected : bool;
}

let ok r =
  if r.r_config.plant then r.planted_detected else r.divergences = []

(* ------------------------------------------------------------------ *)
(* The seeded work queue *)

(* Small program shapes: the harness favours breadth (many programs and
   cells) over program size.  With a plant, every program needs at
   least one interface to tamper with. *)
let gen_shape prng ~plant idx =
  let n_defs = if plant then 1 + Prng.int prng 2 else Prng.int prng 3 in
  {
    Gen.seed = Prng.int prng 1_000_000;
    name = Printf.sprintf "C%02d" (idx mod 100);
    n_defs;
    depth = (if n_defs = 0 then 1 else 1 + Prng.int prng 2);
    n_procs = 1 + Prng.int prng 3;
    nested_per_proc = Prng.int prng 2;
    stmts_lo = 1;
    stmts_hi = 2 + Prng.int prng 6;
    module_vars = 1 + Prng.int prng 3;
    def_size = 1 + Prng.int prng 2;
    pad = Prng.int prng 40;
    runnable = Prng.chance prng 0.7;
  }

(* Transient fault plans only: these self-heal to byte-identical output,
   which is exactly what the oracle must confirm. *)
let fault_menu = [| "task-crash@2"; "dropped-wake%25"; "stall@3"; "corrupt-artifact@1" |]

let draw_cell prng cfg k =
  let base_cells = Oracle.matrix ~strategies:cfg.strategies ~procs:cfg.procs in
  let base = List.nth base_cells (k mod List.length base_cells) in
  let perturb = if Prng.chance prng 0.4 then Some (Prng.int prng 1_000) else None in
  let cache =
    if cfg.plant then Oracle.Warm
    else if Prng.chance prng 0.34 then Oracle.Warm
    else Oracle.No_cache
  in
  let faults =
    if cfg.plant then ""
    else if Prng.chance prng 0.25 then Prng.choose_arr prng fault_menu
    else ""
  in
  { base with Oracle.perturb; cache; faults; fault_seed = Prng.int prng 1_000 }

let matrix_arg cfg =
  Printf.sprintf "%s:%s"
    (String.concat "," (List.map Symtab.dky_name cfg.strategies))
    (String.concat "," (List.map string_of_int cfg.procs))

let replay_of cfg item =
  Printf.sprintf "m2c check --seed %d --budget %d --matrix %s%s%s" cfg.seed (item + 1)
    (matrix_arg cfg)
    (if cfg.plant then " --plant" else "")
    (if cfg.shrink then "" else " --no-shrink")

let sources_of store =
  (Source_store.main_file store, Source_store.main_src store)
  :: List.map
       (fun n -> (Source_store.def_file n, Option.get (Source_store.def_src store n)))
       (Source_store.def_names store)

let run ?(progress = fun _ -> ()) cfg =
  if cfg.budget < 1 then invalid_arg "Check.run: budget must be positive";
  if cfg.strategies = [] || cfg.procs = [] then invalid_arg "Check.run: empty matrix";
  let prng = Prng.create cfg.seed in
  let divergences = ref [] in
  let oracle_checks = ref 0 in
  let morph_checks = ref 0 in
  let programs = ref 0 in
  (* Per-program state, refreshed every 4 items. *)
  let shape = ref (gen_shape prng ~plant:cfg.plant 0) in
  let store = ref (Gen.generate !shape) in
  let label = ref "" in
  let reference = ref None in
  let refresh idx =
    incr programs;
    shape := gen_shape prng ~plant:cfg.plant idx;
    store := Gen.generate !shape;
    label := Printf.sprintf "gen:%d#%d" idx !shape.Gen.seed;
    reference := None
  in
  refresh 0;
  let run_flag () = cfg.run_vm && !shape.Gen.runnable in
  let get_reference () =
    match !reference with
    | Some obs -> obs
    | None ->
        let obs = Oracle.reference ~run:(run_flag ()) !store in
        reference := Some obs;
        obs
  in
  let shrink_divergence item cell =
    if not cfg.shrink then (None, [])
    else begin
      let run = run_flag () in
      let predicate s =
        let plant = if cfg.plant then Oracle.plant_for s else None in
        if cfg.plant && plant = None then false
        else Oracle.check ?plant ~run s [ cell ] <> []
      in
      progress (Printf.sprintf "shrinking item %d" item);
      let r = Shrink.run ~max_steps:cfg.max_shrink_steps ~shape:!shape ~predicate !store in
      (Some (r.Shrink.orig_bytes, r.Shrink.min_bytes, r.Shrink.steps), sources_of r.Shrink.store)
    end
  in
  let next_ordinal = ref 0 in
  let record item ~program ~cell_str ~cell_opt (field, expected, actual) =
    let shrunk, reproducer =
      match cell_opt with None -> (None, []) | Some cell -> shrink_divergence item cell
    in
    let ordinal = !next_ordinal in
    incr next_ordinal;
    divergences :=
      {
        item;
        ordinal;
        program;
        cell = cell_str;
        field;
        expected;
        actual;
        replay = replay_of cfg item;
        shrunk;
        reproducer;
      }
      :: !divergences
  in
  for item = 0 to cfg.budget - 1 do
    if item > 0 && item mod 4 = 0 then refresh item;
    let morph_item = (not cfg.plant) && item mod 4 = 3 in
    if morph_item then begin
      incr morph_checks;
      let t = Prng.choose prng Morph.all in
      let morph_seed = Prng.int prng 10_000 in
      let cell = draw_cell prng cfg item in
      progress (Printf.sprintf "item %d: morph %s on %s" item (Morph.name t) !label);
      let transformed = Morph.apply ~seed:morph_seed t !store in
      let program = Printf.sprintf "morph:%s(%s)" (Morph.name t) !label in
      let t_ref = Oracle.reference ~run:(run_flag ()) transformed in
      (match Morph.compare_obs t ~reference:(get_reference ()) t_ref with
      | Some diff -> record item ~program ~cell_str:"morph-relation" ~cell_opt:None diff
      | None -> ());
      (* The transformed program must also pass the plain oracle. *)
      match Oracle.run_cell ~run:(run_flag ()) ~reference:t_ref transformed cell with
      | Some d ->
          record item ~program
            ~cell_str:(Oracle.cell_to_string d.Oracle.d_cell)
            ~cell_opt:None
            (d.Oracle.d_field, d.Oracle.d_expected, d.Oracle.d_actual)
      | None -> ()
    end
    else begin
      incr oracle_checks;
      let cell = draw_cell prng cfg item in
      let plant = if cfg.plant then Oracle.plant_for !store else None in
      progress
        (Printf.sprintf "item %d: oracle %s on %s" item (Oracle.cell_to_string cell) !label);
      match
        Oracle.run_cell ?plant ~run:(run_flag ()) ~reference:(get_reference ()) !store cell
      with
      | Some d ->
          record item ~program:!label
            ~cell_str:(Oracle.cell_to_string d.Oracle.d_cell)
            ~cell_opt:(Some cell)
            (d.Oracle.d_field, d.Oracle.d_expected, d.Oracle.d_actual)
      | None -> ()
    end
  done;
  {
    r_config = cfg;
    checks_run = cfg.budget;
    oracle_checks = !oracle_checks;
    morph_checks = !morph_checks;
    programs = !programs;
    divergences = List.rev !divergences;
    planted_detected = !divergences <> [];
  }

(* ------------------------------------------------------------------ *)
(* Reporting — no wall times: same seed and config must serialize
   byte-identically (the CI determinism check [cmp]s two runs). *)

let report_to_json r =
  let cfg = r.r_config in
  let divergence d =
    Json.Obj
      ([
         ("item", Json.Int d.item);
         ("ordinal", Json.Int d.ordinal);
         ("program", Json.Str d.program);
         ("cell", Json.Str d.cell);
         ("field", Json.Str d.field);
         ("expected", Json.Str d.expected);
         ("actual", Json.Str d.actual);
         ("replay", Json.Str d.replay);
       ]
      @ (match d.shrunk with
        | None -> []
        | Some (orig, mini, steps) ->
            [
              ( "shrunk",
                Json.Obj
                  [
                    ("orig_bytes", Json.Int orig);
                    ("min_bytes", Json.Int mini);
                    ("steps", Json.Int steps);
                  ] );
            ])
      @
      match d.reproducer with
      | [] -> []
      | files ->
          [
            ( "reproducer",
              Json.Obj (List.map (fun (name, text) -> (name, Json.Str text)) files) );
          ])
  in
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.Str "mcc-check-report-v1");
         ("seed", Json.Int cfg.seed);
         ("budget", Json.Int cfg.budget);
         ( "strategies",
           Json.Arr (List.map (fun s -> Json.Str (Symtab.dky_name s)) cfg.strategies) );
         ("procs", Json.Arr (List.map (fun p -> Json.Int p) cfg.procs));
         ("run_vm", Json.Bool cfg.run_vm);
         ("shrink", Json.Bool cfg.shrink);
         ("plant", Json.Bool cfg.plant);
         ("checks_run", Json.Int r.checks_run);
         ("oracle_checks", Json.Int r.oracle_checks);
         ("morph_checks", Json.Int r.morph_checks);
         ("programs", Json.Int r.programs);
         ("divergences", Json.Arr (List.map divergence r.divergences));
         ("planted_detected", Json.Bool r.planted_detected);
         ("ok", Json.Bool (ok r));
       ])

let save ~dir r =
  let json = report_to_json r in
  match Json.validate json with
  | Error e -> Error (Printf.sprintf "internal error: report invalid: %s" e)
  | Ok () -> (
      try
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let report_path = Filename.concat dir "report.json" in
        Out_channel.with_open_text report_path (fun oc -> output_string oc json);
        List.iter
          (fun d ->
            List.iter
              (fun (name, text) ->
                (* item alone is ambiguous: a morph item can record two
                   divergences, and both would shrink to the same module
                   names — the ordinal keeps the filenames distinct *)
                let path =
                  Filename.concat dir (Printf.sprintf "repro%dx%d-%s" d.item d.ordinal name)
                in
                Out_channel.with_open_text path (fun oc -> output_string oc text))
              d.reproducer)
          r.divergences;
        Ok report_path
      with Sys_error e -> Error e)
