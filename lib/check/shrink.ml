open Mcc_core
module Gen = Mcc_synth.Gen

type result = {
  store : Source_store.t;
  shape : Gen.shape option;
  steps : int;
  orig_bytes : int;
  min_bytes : int;
}

(* ------------------------------------------------------------------ *)
(* Store surgery helpers *)

let is_id c =
  (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_'

(* Remove imports of [name]: drop "FROM name IMPORT ..." lines and
   delete [name] from single-line "IMPORT a, b, c;" lists. *)
let strip_import name src =
  let keep =
    List.filter_map
      (fun line ->
        let t = String.trim line in
        let toks = List.filter (fun s -> s <> "") (String.split_on_char ' ' t) in
        match toks with
        | "FROM" :: m :: "IMPORT" :: _ when m = name -> None
        | "IMPORT" :: _
          when String.length t > 7 && t.[String.length t - 1] = ';' ->
            let body = String.sub t 6 (String.length t - 7) in
            let items = List.map String.trim (String.split_on_char ',' body) in
            if List.mem name items then
              match List.filter (fun it -> it <> name) items with
              | [] -> None
              | items -> Some ("IMPORT " ^ String.concat ", " items ^ ";")
            else Some line
        | _ -> Some line)
      (String.split_on_char '\n' src)
  in
  String.concat "\n" keep

let rebuild store ~defs ~main_src =
  let main_name = Source_store.main_name store in
  let impls =
    List.filter_map
      (fun n ->
        if n = main_name then None
        else Option.map (fun s -> (n, s)) (Source_store.impl_src store n))
      (Source_store.impl_names store)
  in
  Source_store.make ~impls ~main_name ~main_src ~defs ()

let defs_of store =
  List.map
    (fun n -> (n, Option.get (Source_store.def_src store n)))
    (Source_store.def_names store)

let drop_def store name =
  let defs =
    List.filter_map
      (fun (n, src) -> if n = name then None else Some (n, strip_import name src))
      (defs_of store)
  in
  rebuild store ~defs ~main_src:(strip_import name (Source_store.main_src store))

(* Column-0 "PROCEDURE <id> ..." ... "END <id>;" blocks of a source. *)
let proc_blocks lines =
  let n = Array.length lines in
  let blocks = ref [] in
  for i = 0 to n - 1 do
    let l = lines.(i) in
    if
      String.length l > 10
      && String.sub l 0 10 = "PROCEDURE "
      && is_id l.[10]
    then begin
      let j = ref 10 in
      while !j < String.length l && is_id l.[!j] do
        incr j
      done;
      let id = String.sub l 10 (!j - 10) in
      let ender = "END " ^ id ^ ";" in
      match
        Array.find_index
          (fun k -> k > i && String.trim lines.(k) = ender)
          (Array.init n Fun.id)
      with
      | Some stop -> blocks := (i, stop) :: !blocks
      | None -> ()
    end
  done;
  List.rev !blocks

let drop_lines lines lo hi =
  Array.append (Array.sub lines 0 lo) (Array.sub lines (hi + 1) (Array.length lines - hi - 1))

(* ------------------------------------------------------------------ *)
(* Phases *)

let shrink_shape ~predicate shape =
  let steps = ref 0 in
  let test s =
    incr steps;
    predicate (Gen.generate s)
  in
  let cur = ref shape in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun m ->
        let s' = Gen.mutate !cur m in
        if s' <> !cur && test s' then begin
          cur := s';
          progress := true
        end)
      Gen.mutations
  done;
  (!cur, !steps)

let ddmin ~test lines =
  let rec go lines n =
    let len = Array.length lines in
    if len <= 1 then lines
    else begin
      let chunk = (len + n - 1) / n in
      let rec try_k k =
        if k >= n then None
        else begin
          let lo = k * chunk and hi = min len ((k + 1) * chunk) in
          if lo >= len || hi - lo >= len then try_k (k + 1)
          else begin
            let cand = Array.append (Array.sub lines 0 lo) (Array.sub lines hi (len - hi)) in
            if test cand then Some cand else try_k (k + 1)
          end
        end
      in
      match try_k 0 with
      | Some cand -> go cand (max 2 (n - 1))
      | None -> if n >= len then lines else go lines (min len (2 * n))
    end
  in
  go lines 2

let shrink_store ?(max_steps = 600) ~predicate store =
  let steps = ref 0 in
  let test s =
    if !steps >= max_steps then false
    else begin
      incr steps;
      predicate s
    end
  in
  let cur = ref store in
  (* 1. Drop whole interfaces, to fixpoint. *)
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun name ->
        let cand = drop_def !cur name in
        if test cand then begin
          cur := cand;
          progress := true
        end)
      (Source_store.def_names !cur)
  done;
  (* 2. Drop whole top-level procedure blocks of the main module. *)
  let main_lines () = Array.of_list (String.split_on_char '\n' (Source_store.main_src !cur)) in
  let with_main lines =
    rebuild !cur ~defs:(defs_of !cur) ~main_src:(String.concat "\n" (Array.to_list lines))
  in
  progress := true;
  while !progress do
    progress := false;
    let lines = main_lines () in
    (match
       List.find_opt (fun (lo, hi) -> test (with_main (drop_lines lines lo hi))) (proc_blocks lines)
     with
    | Some (lo, hi) ->
        cur := with_main (drop_lines lines lo hi);
        progress := true
    | None -> ())
  done;
  (* 3. Line-level ddmin on the main module. *)
  let minimized = ddmin ~test:(fun lines -> test (with_main lines)) (main_lines ()) in
  cur := with_main minimized;
  (!cur, !steps)

let run ?(max_steps = 600) ?shape ~predicate store =
  if not (predicate store) then
    invalid_arg "Shrink.run: predicate does not hold on the input";
  let steps = ref 1 in
  let orig_bytes = Source_store.total_bytes store in
  let shape', store' =
    match shape with
    | None -> (None, store)
    | Some sh ->
        let sh', n = shrink_shape ~predicate sh in
        steps := !steps + n;
        (Some sh', if sh' = sh then store else Gen.generate sh')
  in
  let store'', n = shrink_store ~max_steps:(max 0 (max_steps - !steps)) ~predicate store' in
  steps := !steps + n;
  {
    store = store'';
    shape = shape';
    steps = !steps;
    orig_bytes;
    min_bytes = Source_store.total_bytes store'';
  }
