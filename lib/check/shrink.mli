(** Deterministic delta-debugging shrinker.

    Given a failing program (one whose [predicate] — "the divergence
    still reproduces" — holds), produce a smaller program for which it
    still holds.  Reduction runs in phases, cheapest first:

    + {b shape phase} (when the program came from a synth {!Mcc_synth.Gen.shape}):
      greedy fixpoint over {!Mcc_synth.Gen.mutations}, regenerating from
      the reduced shape;
    + {b structural phase}: drop whole interfaces (with textual removal
      of their imports) and whole procedure blocks;
    + {b line phase}: classic ddmin (Zeller) over the main module's
      lines, removing complements with doubling granularity.

    Every candidate is accepted only if [predicate] still holds, so a
    candidate that breaks compilation is harmlessly rejected (both
    compilers fail identically — no divergence).  Everything is
    deterministic: same input, same predicate, same minimized output. *)

open Mcc_core

type result = {
  store : Source_store.t;  (** the minimized reproducer *)
  shape : Mcc_synth.Gen.shape option;
      (** the shape-phase result, when the input had a shape (the final
          [store] may be smaller still, from the source phases) *)
  steps : int;  (** predicate evaluations performed *)
  orig_bytes : int;
  min_bytes : int;  (** {!Source_store.total_bytes} before/after *)
}

(** Shape-phase only: greedy fixpoint over {!Mcc_synth.Gen.mutations};
    returns the reduced shape and the predicate evaluations spent. *)
val shrink_shape :
  predicate:(Source_store.t -> bool) ->
  Mcc_synth.Gen.shape ->
  Mcc_synth.Gen.shape * int

(** Source-phase only (structural + ddmin). *)
val shrink_store :
  ?max_steps:int ->
  predicate:(Source_store.t -> bool) ->
  Source_store.t ->
  Source_store.t * int

(** The full pipeline.  [shape] enables the shape phase; [max_steps]
    bounds total predicate evaluations (default 600).
    @raise Invalid_argument when [predicate] does not hold on the input
    (nothing to shrink). *)
val run :
  ?max_steps:int ->
  ?shape:Mcc_synth.Gen.shape ->
  predicate:(Source_store.t -> bool) ->
  Source_store.t ->
  result
