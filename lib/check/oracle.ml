open Mcc_sem
open Mcc_core

type cache_mode = No_cache | Warm

type cell = {
  strategy : Symtab.dky;
  procs : int;
  perturb : int option;
  cache : cache_mode;
  faults : string;
  fault_seed : int;
}

type plant = Tamper_cache of string

let plant_for store =
  match Source_store.def_names store with
  | [] -> None
  | name :: _ -> Some (Tamper_cache name)

type divergence = {
  d_cell : cell;
  d_field : string;
  d_expected : string;
  d_actual : string;
}

let cell_to_string c =
  let buf = Buffer.create 48 in
  Buffer.add_string buf (Symtab.dky_name c.strategy);
  Buffer.add_string buf (Printf.sprintf "/p%d" c.procs);
  (match c.perturb with
  | None -> ()
  | Some s -> Buffer.add_string buf (Printf.sprintf "/perturb=%d" s));
  (match c.cache with
  | No_cache -> ()
  | Warm -> Buffer.add_string buf "/warm");
  if c.faults <> "" then
    Buffer.add_string buf (Printf.sprintf "/faults=%s#%d" c.faults c.fault_seed);
  Buffer.contents buf

let divergence_to_string d =
  Printf.sprintf "[%s] %s: expected %s, got %s" (cell_to_string d.d_cell) d.d_field
    d.d_expected d.d_actual

let cell strategy procs =
  { strategy; procs; perturb = None; cache = No_cache; faults = ""; fault_seed = 0 }

let matrix ~strategies ~procs =
  List.concat_map (fun s -> List.map (fun p -> cell s p) procs) strategies

let default_matrix = matrix ~strategies:Symtab.all_concurrent ~procs:[ 1; 2; 8 ]

let reference ?input ~run store = Observation.of_seq ?input ~run (Seq_driver.compile store)

let config_of c =
  {
    Driver.default_config with
    Driver.strategy = c.strategy;
    procs = c.procs;
    perturb = c.perturb;
    faults = (if c.faults = "" then [] else Mcc_sched.Fault.parse_list c.faults);
    fault_seed = c.fault_seed;
  }

let run_cell ?input ?plant ~run ~reference store c =
  let config = config_of c in
  let obs =
    match c.cache with
    | No_cache -> Observation.of_driver ?input ~run (Driver.compile ~config store)
    | Warm ->
        let cache = Build_cache.create () in
        (* Prime fault-free so the cache holds pristine artifacts; the
           measured warm compile below carries the cell's fault plan. *)
        ignore
          (Driver.compile
             ~config:{ config with Driver.faults = []; perturb = None }
             ~cache store);
        (match plant with
        | Some (Tamper_cache name) ->
            Build_cache.tamper cache ~name;
            Build_cache.set_verification false
        | None -> ());
        Fun.protect
          ~finally:(fun () -> Build_cache.set_verification true)
          (fun () -> Observation.of_driver ?input ~run (Driver.compile ~config ~cache store))
  in
  match Observation.first_diff ~reference obs with
  | None -> None
  | Some (d_field, d_expected, d_actual) ->
      Some { d_cell = c; d_field; d_expected; d_actual }

let check ?input ?plant ~run store cells =
  let reference = reference ?input ~run store in
  List.filter_map (fun c -> run_cell ?input ?plant ~run ~reference store c) cells
