open Mcc_core
module Obs = Mcc_check.Observation
module J = Mcc_obs.Json

type point = {
  p_n : int;
  p_seq_units : float;
  p_build_units : float;
  p_per_module : float;
  p_efficiency : float;
  p_cold_units : float;
  p_warm_units : float;
  p_warm_hits : int;
  p_evictions : int;
  p_warm_cold_ok : bool;
  p_serve_mean : float;
  p_serve_throughput : float;
  p_farm_makespan : float;
  p_farm_ok : bool;
}

type report = {
  s_seed : int;
  s_procs : int;
  s_counts : int list;
  s_farm_cap : int;
  s_cap_modules : int;
  s_cap_bytes : int;
  s_points : point list;
  s_scheduler_knee : int option;
  s_cache_knee : int option;
  s_serve_verified : int;
  s_farm_verified : bool;
  s_sample : bool;
}

let default_counts = [ 100; 300; 1000; 3000; 10000 ]
let sample_counts = [ 50; 100; 200 ]

(* --- the flat interface family ------------------------------------- *)

let def_name k = Printf.sprintf "Sc%05d" k

let def_src ~seed k =
  let m = def_name k in
  Printf.sprintf "DEFINITION MODULE %s;\nCONST c%05d = %d;\nEND %s.\n" m k
    (((k + seed) mod 9) + 1)
    m

let flat_store ?(seed = 0) n =
  let defs = List.init n (fun k -> (def_name k, def_src ~seed k)) in
  let b = Buffer.create 4096 in
  Buffer.add_string b "IMPLEMENTATION MODULE ZScale;\n";
  List.iter (fun (m, _) -> Buffer.add_string b (Printf.sprintf "IMPORT %s;\n" m)) defs;
  Buffer.add_string b "VAR total: INTEGER;\nBEGIN\n  total := 0;\n";
  List.iteri
    (fun i (m, _) ->
      if i < 16 then
        Buffer.add_string b (Printf.sprintf "  total := total + %s.c%05d;\n" m i))
    defs;
  Buffer.add_string b "  WriteInt(total)\nEND ZScale.\n";
  Source_store.make ~main_name:"ZScale" ~main_src:(Buffer.contents b) ~defs ()

(* A serve job's program: one main importing a distinct slice of the
   interface family, so [jobs] jobs at count [n] together pull [n]
   distinct interfaces into the shared warm store. *)
let job_store ~seed ~n ~jobs j =
  let lo = j * n / jobs and hi = ((j + 1) * n / jobs) - 1 in
  let defs = List.init (hi - lo + 1) (fun i -> (def_name (lo + i), def_src ~seed (lo + i))) in
  let name = Printf.sprintf "ZJob%02d" j in
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "IMPLEMENTATION MODULE %s;\n" name);
  List.iter (fun (m, _) -> Buffer.add_string b (Printf.sprintf "IMPORT %s;\n" m)) defs;
  Buffer.add_string b "VAR total: INTEGER;\nBEGIN\n  total := 0;\n";
  (match defs with
  | (m, _) :: _ -> Buffer.add_string b (Printf.sprintf "  total := total + %s.c%05d;\n" m lo)
  | [] -> ());
  Buffer.add_string b (Printf.sprintf "  WriteInt(total)\nEND %s.\n" name);
  Source_store.make ~main_name:name ~main_src:(Buffer.contents b) ~defs ()

let store_bytes store =
  let len name src = String.length (Option.value ~default:"" src) + String.length name in
  List.fold_left (fun acc d -> acc + len d (Source_store.def_src store d)) 0 (Source_store.def_names store)
  + String.length (Source_store.main_src store)

(* --- the sweep ----------------------------------------------------- *)

let nolog (_ : string) = ()

let run ?(seed = 0) ?counts ?(procs = 8) ?(farm_cap = 1000) ?(sample = false)
    ?(log = nolog) () =
  let counts =
    match counts with Some cs -> cs | None -> if sample then sample_counts else default_counts
  in
  let counts = List.sort_uniq compare counts in
  (match counts with [] -> invalid_arg "Scale.run: empty count list" | _ -> ());
  let max_n = List.fold_left max 0 counts in
  let min_n = List.hd counts in
  let config = { Driver.default_config with Driver.procs } in
  (* Calibrate the per-interface artifact size at the smallest count,
     then derive the bounded store's capacity so the working set
     outgrows it inside the sweep: cap_modules = 2/5 of the largest
     swept count. *)
  let cap_modules = max 1 (2 * max_n / 5) in
  let per_iface =
    let bc = Build_cache.create () in
    ignore (Driver.compile ~config ~cache:bc (flat_store ~seed min_n));
    max 1 (Build_cache.total_bytes bc / min_n)
  in
  let cap_bytes = per_iface * cap_modules in
  log
    (Printf.sprintf
       "scale: counts %s, procs %d, cache cap %d modules (%d bytes), farm cap %d"
       (String.concat "," (List.map string_of_int counts))
       procs cap_modules cap_bytes farm_cap);
  let serve_verified = ref 0 in
  let farm_verified = ref false in
  let largest_farm =
    List.fold_left (fun acc c -> if c <= farm_cap then max acc c else acc) 0 counts
  in
  let points =
    List.map
      (fun n ->
        let store = flat_store ~seed n in
        (* scheduler: one concurrent build over n def streams *)
        let seq = Seq_driver.compile store in
        let conc = Driver.compile ~config store in
        let build_units = conc.Driver.sim.Mcc_sched.Des_engine.end_time in
        (* cache: cold then warm against the size-bounded store *)
        let bc = Build_cache.create ~cap_bytes () in
        let cold = Driver.compile ~config ~cache:bc store in
        let warm = Driver.compile ~config ~cache:bc store in
        let warm_cold_ok =
          Obs.first_diff
            ~reference:(Obs.of_driver ~run:false cold)
            (Obs.of_driver ~run:false warm)
          = None
        in
        (* serve: 8 clients, each compiling a distinct interface slice *)
        let jobs_n = 8 in
        let jobs =
          List.init jobs_n (fun j ->
              let jstore = job_store ~seed ~n ~jobs:jobs_n j in
              {
                Mcc_serve.Request.j_id = j;
                j_session = Printf.sprintf "client%d" (j mod 4);
                j_priority = 1;
                j_arrival = 0.1 *. float_of_int j;
                j_rank = j;
                j_store = jstore;
                j_bytes = store_bytes jstore;
                j_closure = Mcc_serve.Request.closure_digest jstore;
              })
        in
        let scfg = { Mcc_serve.Server.default_config with Mcc_serve.Server.compile = config } in
        let sreport = Mcc_serve.Server.serve ~cache:(Mcc_serve.Server.cache ()) scfg jobs in
        if n = min_n then (
          match Mcc_serve.Server.verify scfg sreport with
          | Ok served -> serve_verified := served
          | Error msg -> failwith (Printf.sprintf "scale: serve oracle at n=%d: %s" n msg));
        (* farm: one sharded closure per interface — an inner engine
           spin-up each, so counts above the cap skip the stage *)
        let farm_makespan, farm_ok =
          if n > farm_cap then (-1.0, true)
          else begin
            let fcfg = { Mcc_farm.Farm.default_config with Mcc_farm.Farm.compile = config } in
            let freport = Mcc_farm.Farm.run fcfg store in
            if n = largest_farm then (
              match Mcc_farm.Farm.verify store freport with
              | Ok () -> farm_verified := true
              | Error msg -> failwith (Printf.sprintf "scale: farm oracle at n=%d: %s" n msg));
            (freport.Mcc_farm.Farm.f_makespan, freport.Mcc_farm.Farm.f_ok)
          end
        in
        let point =
          {
            p_n = n;
            p_seq_units = seq.Seq_driver.cost_units;
            p_build_units = build_units;
            p_per_module = build_units /. float_of_int n;
            p_efficiency = seq.Seq_driver.cost_units /. (float_of_int procs *. build_units);
            p_cold_units = cold.Driver.sim.Mcc_sched.Des_engine.end_time;
            p_warm_units = warm.Driver.sim.Mcc_sched.Des_engine.end_time;
            p_warm_hits = List.length warm.Driver.cache_hits;
            p_evictions = Build_cache.eviction_count bc;
            p_warm_cold_ok = warm_cold_ok;
            p_serve_mean = sreport.Mcc_serve.Server.r_mean;
            p_serve_throughput = sreport.Mcc_serve.Server.r_throughput;
            p_farm_makespan = farm_makespan;
            p_farm_ok = farm_ok;
          }
        in
        log
          (Printf.sprintf
             "  n=%5d build=%.0fu eff=%.3f warm=%.0fu hits=%d evict=%d serve=%.2fs farm=%s" n
             point.p_build_units point.p_efficiency point.p_warm_units point.p_warm_hits
             point.p_evictions point.p_serve_mean
             (if farm_makespan < 0.0 then "skipped" else Printf.sprintf "%.2fs" farm_makespan));
        point)
      counts
  in
  (* knees, per the .mli's definitions *)
  let last = List.nth points (List.length points - 1) in
  let scheduler_knee =
    List.find_opt (fun p -> p.p_per_module <= 1.05 *. last.p_per_module) points
    |> Option.map (fun p -> p.p_n)
  in
  let cache_knee =
    List.find_opt (fun p -> p.p_evictions > 0) points |> Option.map (fun p -> p.p_n)
  in
  {
    s_seed = seed;
    s_procs = procs;
    s_counts = counts;
    s_farm_cap = farm_cap;
    s_cap_modules = cap_modules;
    s_cap_bytes = cap_bytes;
    s_points = points;
    s_scheduler_knee = scheduler_knee;
    s_cache_knee = cache_knee;
    s_serve_verified = !serve_verified;
    s_farm_verified = !farm_verified;
    s_sample = sample;
  }

(* --- rendering ----------------------------------------------------- *)

let to_json r =
  let opt_int = function Some n -> J.Int n | None -> J.Null in
  J.Obj
    [
      ("seed", J.Int r.s_seed);
      ("procs", J.Int r.s_procs);
      ("counts", J.Arr (List.map (fun n -> J.Int n) r.s_counts));
      ("farm_cap", J.Int r.s_farm_cap);
      ("cap_modules", J.Int r.s_cap_modules);
      ("cap_bytes", J.Int r.s_cap_bytes);
      ("sample", J.Bool r.s_sample);
      ( "points",
        J.Arr
          (List.map
             (fun p ->
               J.Obj
                 [
                   ("n", J.Int p.p_n);
                   ("seq_units", J.Float p.p_seq_units);
                   ("build_units", J.Float p.p_build_units);
                   ("per_module", J.Float p.p_per_module);
                   ("efficiency", J.Float p.p_efficiency);
                   ("cold_units", J.Float p.p_cold_units);
                   ("warm_units", J.Float p.p_warm_units);
                   ("warm_hits", J.Int p.p_warm_hits);
                   ("evictions", J.Int p.p_evictions);
                   ("warm_cold_ok", J.Bool p.p_warm_cold_ok);
                   ("serve_mean", J.Float p.p_serve_mean);
                   ("serve_throughput", J.Float p.p_serve_throughput);
                   ("farm_makespan", J.Float p.p_farm_makespan);
                   ("farm_ok", J.Bool p.p_farm_ok);
                 ])
             r.s_points) );
      ("scheduler_knee", opt_int r.s_scheduler_knee);
      ("cache_knee", opt_int r.s_cache_knee);
      ("serve_verified", J.Int r.s_serve_verified);
      ("farm_verified", J.Bool r.s_farm_verified);
    ]

let render r =
  let lines = ref [] in
  let say fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  say "scale sweep: procs=%d, cache cap=%d modules, farm cap=%d%s" r.s_procs r.s_cap_modules
    r.s_farm_cap
    (if r.s_sample then " (sample)" else "");
  say "  %6s %12s %10s %6s %12s %6s %7s %10s %10s" "n" "build(u)" "per-mod" "eff" "warm(u)"
    "hits" "evict" "serve(s)" "farm(s)";
  List.iter
    (fun p ->
      say "  %6d %12.1f %10.2f %6.3f %12.1f %6d %7d %10.3f %10s" p.p_n p.p_build_units
        p.p_per_module p.p_efficiency p.p_warm_units p.p_warm_hits p.p_evictions p.p_serve_mean
        (if p.p_farm_makespan < 0.0 then "-" else Printf.sprintf "%.3f" p.p_farm_makespan))
    r.s_points;
  (match r.s_scheduler_knee with
  | Some n ->
      say "  scheduler knee: n=%d (per-module cost within 5%% of the n=%d asymptote)" n
        (List.fold_left max 0 r.s_counts)
  | None -> say "  scheduler knee: not reached in this sweep");
  (match r.s_cache_knee with
  | Some n -> say "  cache knee: n=%d (working set outgrows the %d-module store)" n r.s_cap_modules
  | None -> say "  cache knee: not reached in this sweep");
  List.rev !lines
