(** A corpus scenario's manifest: which oracles the zoo runner must
    apply to the directory, ghdl-testsuite style (one dir per issue, one
    oracle declaration per dir).  A scenario directory without a
    manifest is a hard error — CI guards on it — so a new reproducer
    can never be dropped into [corpus/] without declaring how it is
    checked. *)

type oracle =
  | Conformance  (** sequential vs. concurrent observation equality *)
  | Warm_cold  (** warm [Project] rebuild ≡ cold, no-op recompiles nothing *)
  | Incremental  (** prepared [.def.<variant>] overlays rebuild correctly *)
  | Farm  (** {!Mcc_farm.Farm.verify} on a default 3-node farm run *)
  | Golden  (** program record matches [expect/] (stdout, diags, rebuild sets) *)

val oracle_to_string : oracle -> string
val oracle_of_string : string -> (oracle, string) result

type t = {
  main : string option;  (** main module; [None] = auto-detect (the un-imported .mod) *)
  oracles : oracle list;  (** in declaration order, deduplicated *)
  input : int list;  (** VM stdin for golden execution *)
}

(** Parse manifest text.  [what] names the source in errors (a path). *)
val parse : what:string -> string -> (t, string) result

(** Load [dir/manifest].  A missing file is an [Error] naming the
    directory and the guard's remedy. *)
val load : dir:string -> (t, string) result

(** Render a manifest back to its file format. *)
val render : t -> string
