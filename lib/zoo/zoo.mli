(** The workload-zoo runner: one engine that replays corpus scenario
    directories through their manifest-declared oracles, replays loose
    shrunk reproducers dropped by [m2c check --save], and pushes
    generated adversarial shapes ({!Shapes}) through the full
    differential matrix.  Every divergence is a structured {!failure}
    with the oracle, the field and both sides — never a bare boolean —
    so a regression names itself. *)

type failure = {
  f_scenario : string;
  f_oracle : string;  (** which oracle (and cell) flagged it *)
  f_field : string;  (** first differing field / golden line *)
  f_expected : string;
  f_actual : string;
}

(** ["scenario: oracle: field: expected ... got ..."], truncated sides. *)
val failure_to_string : failure -> string

type outcome = {
  o_scenario : string;
  o_kind : string;  (** [corpus], [shape] or [repro] *)
  o_oracles : string list;  (** oracles applied, in order *)
  o_failures : failure list;  (** empty = clean *)
  o_updated : string list;  (** golden files (re)written by [update_golden] *)
}

(** Run one corpus scenario directory through its manifest's oracles.
    [update_golden] rewrites the [expect/] records from the observed
    behaviour instead of diffing against them (conformance and
    incremental equivalences are still checked — goldens pin behaviour,
    they never excuse a divergence). *)
val run_dir : ?update_golden:bool -> string -> outcome

(** Replay the loose [repro*] reproducer groups at the corpus root
    (files dropped by [m2c check --save] and ingested wholesale): each
    group is rebuilt into a store and pushed through the conformance
    oracle.  One outcome per group. *)
val run_repros : dir:string -> outcome list

(** Generate a shape and push it through the differential oracle matrix
    (strategies x processors, plus a warm-cache cell), the project-level
    warm≡cold check, and — when runnable — VM execution. *)
val run_spec : ?seed:int -> Shapes.spec -> outcome

(** Scenario subdirectories of a corpus root, sorted. *)
val scenario_dirs : dir:string -> string list
