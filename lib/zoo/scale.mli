(** The 10k-module mega-suite: sweep module count through the build,
    bounded-cache, serve and farm layers in virtual time and locate the
    scheduler's and cache's scaling knees.

    The workload is the flat interface family: one main module
    importing [n] tiny single-constant interfaces — [n] def streams for
    the scheduler, [n] cache artifacts of identical size, [n]-way
    sharding for the farm.  All timings are virtual (DES units), so the
    sweep is deterministic and two same-seed runs render byte-identical
    reports.

    Knee definitions (deterministic functions of the swept points):
    - {e scheduler knee}: the first swept count whose per-module
      concurrent compile cost is within 5% of the largest count's —
      the saturation point past which extra modules no longer improve
      parallel utilization (the serial main-module stream dominates).
    - {e cache knee}: the first swept count with a nonzero eviction
      count under the derived capacity bound — the point where the
      interface working set outgrows the store and warm rebuilds start
      to thrash.  The bound is [per-interface bytes x cap_modules] with
      [cap_modules = (2 x max count) / 5], so the knee always lands
      strictly inside the sweep, in full and in [BENCH_SAMPLE] mode. *)

type point = {
  p_n : int;  (** module count *)
  p_seq_units : float;  (** sequential compile, virtual units *)
  p_build_units : float;  (** concurrent end-to-end, virtual units *)
  p_per_module : float;  (** [p_build_units / p_n] *)
  p_efficiency : float;  (** [p_seq_units / (procs x p_build_units)] *)
  p_cold_units : float;  (** cold compile into the bounded cache *)
  p_warm_units : float;  (** recompile against the warm bounded cache *)
  p_warm_hits : int;  (** interfaces served from the cache when warm *)
  p_evictions : int;  (** capacity evictions across cold+warm *)
  p_warm_cold_ok : bool;  (** warm observation ≡ cold observation *)
  p_serve_mean : float;  (** mean served-job sojourn, virtual seconds *)
  p_serve_throughput : float;  (** served jobs per virtual second *)
  p_farm_makespan : float;  (** virtual seconds; [-1] when over the farm cap *)
  p_farm_ok : bool;  (** farm run ok ([true] when skipped) *)
}

type report = {
  s_seed : int;
  s_procs : int;
  s_counts : int list;
  s_farm_cap : int;  (** counts above this skip the farm stage *)
  s_cap_modules : int;
  s_cap_bytes : int;  (** derived interface-store bound *)
  s_points : point list;
  s_scheduler_knee : int option;
  s_cache_knee : int option;
  s_serve_verified : int;  (** jobs passing {!Mcc_serve.Server.verify} at the smallest count *)
  s_farm_verified : bool;  (** {!Mcc_farm.Farm.verify} at the largest farm count *)
  s_sample : bool;
}

(** The full sweep (used by [m2c zoo --scale] and [bench zoo]). *)
val default_counts : int list

(** The [BENCH_SAMPLE] sweep. *)
val sample_counts : int list

(** The flat interface family at [n] modules (exposed for tests). *)
val flat_store : ?seed:int -> int -> Mcc_core.Source_store.t

(** Run the sweep.  Farm runs spin up one inner engine per interface
    closure, so counts above [farm_cap] (default 1000) skip the farm
    stage — recorded in the report, never silent.  [log] receives
    progress lines. *)
val run :
  ?seed:int ->
  ?counts:int list ->
  ?procs:int ->
  ?farm_cap:int ->
  ?sample:bool ->
  ?log:(string -> unit) ->
  unit ->
  report

(** Deterministic JSON rendering (schema [mcc-bench-zoo-v1]'s [scale]
    object). *)
val to_json : report -> Mcc_obs.Json.t

(** Human-readable table + knee summary, one line per element. *)
val render : report -> string list
