(* The manifest-driven zoo runner.  Ported from the ad-hoc walk that
   used to live in test/test_corpus.ml, with three changes: which
   oracles run is declared per scenario (Manifest), expected behaviour
   is pinned in durable golden records (Golden) instead of only
   relational properties, and every divergence is a structured failure
   carrying the oracle, field and both sides. *)

open Mcc_core
module Obs = Mcc_check.Observation
module Oracle = Mcc_check.Oracle

type failure = {
  f_scenario : string;
  f_oracle : string;
  f_field : string;
  f_expected : string;
  f_actual : string;
}

let truncate s =
  let s = String.map (function '\n' -> ' ' | c -> c) s in
  if String.length s > 160 then String.sub s 0 157 ^ "..." else s

let failure_to_string f =
  Printf.sprintf "%s: %s: %s: expected %s, got %s" f.f_scenario f.f_oracle f.f_field
    (truncate f.f_expected) (truncate f.f_actual)

type outcome = {
  o_scenario : string;
  o_kind : string;
  o_oracles : string list;
  o_failures : failure list;
  o_updated : string list;
}

let vm_fuel = 2_000_000

(* --- directory plumbing ------------------------------------------- *)

let read_file path = Option.get (Golden.read_file path)

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let imports_of src =
  let strip tok = String.trim (String.concat "" (String.split_on_char ';' tok)) in
  List.concat_map
    (fun line ->
      let line = String.trim line in
      if starts_with ~prefix:"FROM " line then
        match String.split_on_char ' ' line with _ :: m :: _ -> [ strip m ] | _ -> []
      else if starts_with ~prefix:"IMPORT " line then
        String.sub line 7 (String.length line - 7)
        |> String.split_on_char ','
        |> List.map strip
        |> List.filter (fun s -> s <> "")
      else [])
    (String.split_on_char '\n' src)

let source_files dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.filter (fun f -> not (Sys.is_directory (Filename.concat dir f)))

(* The main module of a scenario: the one .mod no other file imports. *)
let main_of_dir dir =
  let files = source_files dir in
  let mods =
    List.filter_map
      (fun f -> if Filename.check_suffix f ".mod" then Some (Filename.chop_suffix f ".mod") else None)
      files
  in
  let imported =
    List.concat_map
      (fun f ->
        if Filename.check_suffix f ".mod" || Filename.check_suffix f ".def" then
          imports_of (read_file (Filename.concat dir f))
        else [])
      files
  in
  match List.filter (fun m -> not (List.mem m imported)) mods with
  | [ m ] -> Ok m
  | [] -> Error "no un-imported .mod — cannot auto-detect a main module"
  | ms -> Error (Printf.sprintf "ambiguous main module (%s) — set main: in the manifest" (String.concat ", " ms))

(* Overlay one interface's source in memory. *)
let with_def store name src =
  let defs =
    List.map
      (fun d -> (d, if d = name then src else Option.get (Source_store.def_src store d)))
      (Source_store.def_names store)
  in
  let impls =
    List.map (fun i -> (i, Option.get (Source_store.impl_src store i))) (Source_store.impl_names store)
  in
  Source_store.make ~impls
    ~main_name:(Source_store.main_name store)
    ~main_src:(Source_store.main_src store)
    ~defs ()

(* Prepared interface-edit variant files: <Def>.def.<variant>. *)
let variants_of dir =
  List.filter_map
    (fun f ->
      if Filename.check_suffix f ".def" then None
      else
        let marker = ".def." in
        let rec find i =
          if i + String.length marker > String.length f then None
          else if String.sub f i (String.length marker) = marker then Some i
          else find (i + 1)
        in
        Option.map
          (fun i ->
            ( f,
              String.sub f 0 i,
              String.sub f (i + String.length marker) (String.length f - i - String.length marker) ))
          (find 0))
    (source_files dir)

let scenario_dirs ~dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.filter (fun f -> Sys.is_directory (Filename.concat dir f))

(* --- the oracles --------------------------------------------------- *)

let conformance ~scenario ~oracle store =
  let run = Source_store.impl_names store = [] in
  let reference = Obs.of_seq ~run (Seq_driver.compile store) in
  List.concat_map
    (fun procs ->
      let config = { Driver.default_config with Driver.procs = procs } in
      let obs = Obs.of_driver ~run (Driver.compile ~config store) in
      match Obs.first_diff ~reference obs with
      | None -> []
      | Some (field, want, got) ->
          [
            {
              f_scenario = scenario;
              f_oracle = Printf.sprintf "%s/p%d" oracle procs;
              f_field = field;
              f_expected = want;
              f_actual = got;
            };
          ])
    [ 1; 8 ]

let project_diff a b =
  let sig_of (p : Project.result) =
    Printf.sprintf "%s\n%s"
      (String.concat "\n" (List.map Mcc_m2.Diag.to_string p.Project.diags))
      (Mcc_codegen.Cunit.disassemble p.Project.program)
  in
  Golden.first_line_diff ~expected:(sig_of a) ~actual:(sig_of b)

let fail ~scenario ~oracle ~field ~expected ~actual =
  { f_scenario = scenario; f_oracle = oracle; f_field = field; f_expected = expected; f_actual = actual }

(* Warm project rebuild ≡ cold, and a no-op rebuild recompiles nothing.
   Returns the warmed cache for the incremental oracle to reuse. *)
let warm_cold ~scenario store =
  let cache = Project.cache () in
  let cold = Project.compile ~cache store in
  let warm = Project.compile ~cache store in
  let fs =
    match project_diff cold warm with
    | Some (n, want, got) ->
        [
          fail ~scenario ~oracle:"warm-cold" ~field:(Printf.sprintf "line %d" n) ~expected:want
            ~actual:got;
        ]
    | None -> []
  in
  let fs =
    if warm.Project.recompiled <> [] then
      fail ~scenario ~oracle:"warm-cold" ~field:"no-op rebuild recompiles" ~expected:"(nothing)"
        ~actual:(String.concat " " warm.Project.recompiled)
      :: fs
    else fs
  in
  (cache, cold, fs)

let rebuild_record (p : Project.result) =
  {
    Golden.g_recompiled = p.Project.recompiled;
    g_reused = p.Project.reused;
    g_cutoffs = p.Project.cutoffs;
  }

(* One prepared interface edit: overlay in memory, rebuild against the
   warm cache, and require (a) the incremental result equals a cold
   build of the edited program, (b) the edited program still conforms,
   (c) a comment-only edit recompiles nothing, and (d) when the golden
   oracle is on, the rebuild set matches its expect/ record. *)
let incremental ~scenario ~dir ~cache ~golden ~update store =
  let updated = ref [] in
  let fs =
    List.concat_map
      (fun (vfile, target, variant) ->
        let oracle = Printf.sprintf "incremental(%s.%s)" target variant in
        if not (Source_store.has_def store target) then
          [
            fail ~scenario ~oracle ~field:"variant target" ~expected:"a known interface"
              ~actual:target;
          ]
        else
          let edited = with_def store target (read_file (Filename.concat dir vfile)) in
          let rebuilt = Project.compile ~cache edited in
          let fresh = Project.compile edited in
          let fs =
            match project_diff fresh rebuilt with
            | Some (n, want, got) ->
                [
                  fail ~scenario ~oracle ~field:(Printf.sprintf "rebuild vs cold, line %d" n)
                    ~expected:want ~actual:got;
                ]
            | None -> []
          in
          let fs = fs @ conformance ~scenario ~oracle edited in
          let fs =
            if
              (let lv = String.lowercase_ascii variant in
               let rec has i =
                 i + 7 <= String.length lv && (String.sub lv i 7 = "comment" || has (i + 1))
               in
               has 0)
              && rebuilt.Project.recompiled <> []
            then
              fs
              @ [
                  fail ~scenario ~oracle ~field:"text-only edit recompiles" ~expected:"(nothing)"
                    ~actual:(String.concat " " rebuilt.Project.recompiled);
                ]
            else fs
          in
          if not golden then fs
          else
            let path = Golden.rebuild_path dir ~variant_file:vfile in
            let rendered = Golden.render_rebuild (rebuild_record rebuilt) in
            if update then (
              Golden.write_file path rendered;
              updated := path :: !updated;
              fs)
            else
              match Golden.read_file path with
              | None ->
                  fs
                  @ [
                      fail ~scenario ~oracle ~field:(Filename.basename path)
                        ~expected:"a golden rebuild record (run m2c zoo --update-golden)"
                        ~actual:"<missing>";
                    ]
              | Some expected -> (
                  match Golden.first_line_diff ~expected ~actual:rendered with
                  | None -> fs
                  | Some (n, want, got) ->
                      fs
                      @ [
                          fail ~scenario
                            ~oracle:(oracle ^ "/golden")
                            ~field:(Printf.sprintf "%s line %d" (Filename.basename path) n)
                            ~expected:want ~actual:got;
                        ]))
      (variants_of dir)
  in
  (fs, List.rev !updated)

let program_record ~input (p : Project.result) =
  let vm_status, vm_out =
    if p.Project.ok then
      let r = Mcc_vm.Vm.run ~fuel:vm_fuel ~input p.Project.program in
      (Mcc_vm.Vm.status_to_string r.Mcc_vm.Vm.status, r.Mcc_vm.Vm.output)
    else ("-", "")
  in
  {
    Golden.g_ok = p.Project.ok;
    g_modules = List.map fst p.Project.modules;
    g_diags = List.sort compare (List.map Mcc_m2.Diag.to_string p.Project.diags);
    g_vm_status = vm_status;
    g_stdout = vm_out;
  }

let golden_program ~scenario ~dir ~input ~update (cold : Project.result) =
  let path = Golden.program_path dir in
  let rendered = Golden.render_program (program_record ~input cold) in
  if update then (
    Golden.write_file path rendered;
    ([], [ path ]))
  else
    match Golden.read_file path with
    | None ->
        ( [
            fail ~scenario ~oracle:"golden" ~field:"expect/program.txt"
              ~expected:"a golden program record (run m2c zoo --update-golden)" ~actual:"<missing>";
          ],
          [] )
    | Some expected -> (
        match Golden.first_line_diff ~expected ~actual:rendered with
        | None -> ([], [])
        | Some (n, want, got) ->
            ( [
                fail ~scenario ~oracle:"golden" ~field:(Printf.sprintf "program.txt line %d" n)
                  ~expected:want ~actual:got;
              ],
              [] ))

let farm_oracle ~scenario store =
  let report = Mcc_farm.Farm.run Mcc_farm.Farm.default_config store in
  match Mcc_farm.Farm.verify store report with
  | Ok () -> []
  | Error msg ->
      [ fail ~scenario ~oracle:"farm" ~field:"verify" ~expected:"oracle-identical program" ~actual:msg ]

(* --- corpus scenarios ---------------------------------------------- *)

let run_dir ?(update_golden = false) dir =
  let scenario = Filename.basename dir in
  let finish ?(oracles = []) ?(updated = []) failures =
    { o_scenario = scenario; o_kind = "corpus"; o_oracles = oracles; o_failures = failures; o_updated = updated }
  in
  match Manifest.load ~dir with
  | Error msg ->
      finish [ fail ~scenario ~oracle:"manifest" ~field:"load" ~expected:"a valid manifest" ~actual:msg ]
  | Ok m -> (
      let main =
        match m.Manifest.main with Some main -> Ok main | None -> main_of_dir dir
      in
      match main with
      | Error msg ->
          finish
            [ fail ~scenario ~oracle:"manifest" ~field:"main module" ~expected:"detectable" ~actual:msg ]
      | Ok main_name ->
          let store = M2lib.augment (Source_store.of_directory ~dir ~main_name) in
          let oracles = List.map Manifest.oracle_to_string m.Manifest.oracles in
          let has o = List.mem o m.Manifest.oracles in
          let failures = ref [] and updated = ref [] in
          let add fs = failures := !failures @ fs in
          if has Manifest.Conformance then add (conformance ~scenario ~oracle:"conformance" store);
          (* warm-cold also primes the cache the incremental oracle
             rebuilds against; run it whenever either needs it *)
          let cache, cold =
            if has Manifest.Warm_cold || has Manifest.Incremental || has Manifest.Golden then (
              let cache, cold, fs = warm_cold ~scenario store in
              if has Manifest.Warm_cold then add fs;
              (Some cache, Some cold))
            else (None, None)
          in
          if has Manifest.Incremental then (
            let fs, up =
              incremental ~scenario ~dir ~cache:(Option.get cache) ~golden:(has Manifest.Golden)
                ~update:update_golden store
            in
            add fs;
            updated := !updated @ up);
          if has Manifest.Golden then (
            let fs, up =
              golden_program ~scenario ~dir ~input:m.Manifest.input ~update:update_golden
                (Option.get cold)
            in
            add fs;
            updated := !updated @ up);
          if has Manifest.Farm then add (farm_oracle ~scenario store);
          finish ~oracles ~updated:!updated !failures)

(* --- loose shrunk reproducers -------------------------------------- *)

(* repro<item>[x<ordinal>]-<Module>.{def,mod} at the corpus root,
   grouped by the prefix before the first '-'; each group replays as
   one store through the conformance oracle. *)
let run_repros ~dir =
  let files = source_files dir in
  let repros = List.filter (fun f -> starts_with ~prefix:"repro" f) files in
  let groups = Hashtbl.create 4 in
  List.iter
    (fun f ->
      match String.index_opt f '-' with
      | None -> ()
      | Some i ->
          let item = String.sub f 0 i in
          Hashtbl.replace groups item (f :: Option.value ~default:[] (Hashtbl.find_opt groups item)))
    repros;
  Hashtbl.fold (fun item fs acc -> (item, List.sort compare fs) :: acc) groups []
  |> List.sort compare
  |> List.filter_map (fun (item, fs) ->
         let module_of f ext =
           let base = Filename.chop_suffix f ext in
           String.sub base (String.length item + 1) (String.length base - String.length item - 1)
         in
         let mods = List.filter (fun f -> Filename.check_suffix f ".mod") fs in
         let defs =
           List.filter_map
             (fun f ->
               if Filename.check_suffix f ".def" then
                 Some (module_of f ".def", read_file (Filename.concat dir f))
               else None)
             fs
         in
         match mods with
         | [] -> None (* a stray .def with no driver program; nothing to replay *)
         | main :: rest ->
             let impls =
               List.map (fun f -> (module_of f ".mod", read_file (Filename.concat dir f))) rest
             in
             let store =
               M2lib.augment
                 (Source_store.make ~impls ~main_name:(module_of main ".mod")
                    ~main_src:(read_file (Filename.concat dir main))
                    ~defs ())
             in
             Some
               {
                 o_scenario = item;
                 o_kind = "repro";
                 o_oracles = [ "conformance" ];
                 o_failures = conformance ~scenario:item ~oracle:"conformance" store;
                 o_updated = [];
               })

(* --- generated adversarial shapes ---------------------------------- *)

(* Cyclic interface imports (mutually-recursive definition modules)
   deadlock under the Avoidance strategy by construction: Avoidance
   gates every importer on whole-interface completion before any
   reference, and a cycle can never complete first.  The driver detects
   and reports the deadlock — graceful, but not seq-conformant — so the
   zoo matrix drops Avoidance cells for cyclic stores, exactly as the
   paper's §2.2 assumes an acyclic import DAG for that strategy. *)
let has_def_cycle store =
  let defs = Source_store.def_names store in
  let edges d =
    match Source_store.def_src store d with
    | Some src -> List.filter (fun i -> List.mem i defs) (imports_of src)
    | None -> []
  in
  let state = Hashtbl.create 16 in
  let rec visit d =
    match Hashtbl.find_opt state d with
    | Some `Done -> false
    | Some `Active -> true
    | None ->
        Hashtbl.replace state d `Active;
        let cyclic = List.exists visit (edges d) in
        Hashtbl.replace state d `Done;
        cyclic
  in
  List.exists visit defs

let run_spec ?(seed = 0) spec =
  let scenario = Shapes.name spec in
  let store = Shapes.generate ~seed spec in
  let run = Source_store.impl_names store = [] in
  let cyclic = has_def_cycle store in
  let matrix =
    if cyclic then
      List.filter
        (fun (c : Oracle.cell) -> c.Oracle.strategy <> Mcc_sem.Symtab.Avoidance)
        Oracle.default_matrix
    else Oracle.default_matrix
  in
  let warm_cell =
    let c = List.hd matrix in
    { c with Oracle.procs = 8; cache = Oracle.Warm }
  in
  let divs = Oracle.check ~run store (matrix @ [ warm_cell ]) in
  let failures =
    List.map
      (fun (d : Oracle.divergence) ->
        {
          f_scenario = scenario;
          f_oracle = "conformance/" ^ Oracle.cell_to_string d.Oracle.d_cell;
          f_field = d.Oracle.d_field;
          f_expected = d.Oracle.d_expected;
          f_actual = d.Oracle.d_actual;
        })
      divs
  in
  let _, cold, wc_failures = warm_cold ~scenario store in
  let vm_failures =
    if not cold.Project.ok then
      [
        fail ~scenario ~oracle:"vm" ~field:"project ok" ~expected:"true"
          ~actual:
            (String.concat "; " (List.map Mcc_m2.Diag.to_string cold.Project.diags));
      ]
    else
      let r = Mcc_vm.Vm.run ~fuel:vm_fuel cold.Project.program in
      match r.Mcc_vm.Vm.status with
      | Mcc_vm.Vm.Finished -> []
      | st ->
          [
            fail ~scenario ~oracle:"vm" ~field:"status" ~expected:"finished"
              ~actual:(Mcc_vm.Vm.status_to_string st);
          ]
  in
  {
    o_scenario = scenario;
    o_kind = "shape";
    o_oracles =
      [ (if cyclic then "conformance(-avoidance: cyclic imports)" else "conformance"); "warm-cold"; "vm" ];
    o_failures = failures @ wc_failures @ vm_failures;
    o_updated = [];
  }
