(* Seeded adversarial shape generator.  Structure (module names, import
   edges, procedure counts) depends only on the spec; the seed perturbs
   embedded constants so two seeds give structurally identical but
   value-distinct programs.  Everything is emitted line by line into a
   buffer, corpus style — no AST round trip, so the sources double as
   readable reproducers when a shape fails an oracle. *)

open Mcc_core
module Prng = Mcc_util.Prng

type spec =
  | Diamond of { depth : int; width : int }
  | Mutual of { pairs : int }
  | Long_proc of { lines : int }
  | Many_procs of { procs : int }
  | Hot_decl of { defs : int }
  | Exc_lock of { procs : int; depth : int }

let to_string = function
  | Diamond { depth; width } -> Printf.sprintf "diamond:depth=%d,width=%d" depth width
  | Mutual { pairs } -> Printf.sprintf "mutual:pairs=%d" pairs
  | Long_proc { lines } -> Printf.sprintf "long-proc:lines=%d" lines
  | Many_procs { procs } -> Printf.sprintf "many-procs:procs=%d" procs
  | Hot_decl { defs } -> Printf.sprintf "hot-decl:defs=%d" defs
  | Exc_lock { procs; depth } -> Printf.sprintf "exc-lock:procs=%d,depth=%d" procs depth

let name = function
  | Diamond { depth; width } -> Printf.sprintf "diamond-d%dw%d" depth width
  | Mutual { pairs } -> Printf.sprintf "mutual-p%d" pairs
  | Long_proc { lines } -> Printf.sprintf "long-proc-%d" lines
  | Many_procs { procs } -> Printf.sprintf "many-procs-%d" procs
  | Hot_decl { defs } -> Printf.sprintf "hot-decl-%d" defs
  | Exc_lock { procs; depth } -> Printf.sprintf "exc-lock-p%dd%d" procs depth

let default_zoo =
  [
    Diamond { depth = 5; width = 3 };
    Mutual { pairs = 3 };
    Long_proc { lines = 2000 };
    Many_procs { procs = 2000 };
    Hot_decl { defs = 48 };
    Exc_lock { procs = 6; depth = 4 };
  ]

(* --- spec parsing -------------------------------------------------- *)

let kinds =
  [ "diamond"; "mutual"; "long-proc"; "many-procs"; "hot-decl"; "exc-lock" ]

let of_string s =
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let kind, params =
    match String.index_opt s ':' with
    | None -> (s, "")
    | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  let* pairs =
    if params = "" then Ok []
    else
      String.split_on_char ',' params
      |> List.fold_left
           (fun acc kv ->
             let* acc = acc in
             match String.index_opt kv '=' with
             | None -> fail "shape parameter %S is not of the form key=value" kv
             | Some i ->
                 let k = String.sub kv 0 i in
                 let v = String.sub kv (i + 1) (String.length kv - i - 1) in
                 let* n =
                   match int_of_string_opt v with
                   | Some n when n >= 1 -> Ok n
                   | _ -> fail "shape parameter %s=%S: expected a strictly positive integer" k v
                 in
                 Ok ((k, n) :: acc))
           (Ok [])
  in
  let get key default =
    match List.assoc_opt key pairs with Some n -> n | None -> default
  in
  let check_keys allowed =
    match List.find_opt (fun (k, _) -> not (List.mem k allowed)) pairs with
    | Some (k, _) ->
        fail "unknown parameter %S for shape %s (allowed: %s)" k kind
          (String.concat ", " allowed)
    | None -> Ok ()
  in
  match kind with
  | "diamond" ->
      let* () = check_keys [ "depth"; "width" ] in
      Ok (Diamond { depth = get "depth" 5; width = get "width" 3 })
  | "mutual" ->
      let* () = check_keys [ "pairs" ] in
      Ok (Mutual { pairs = get "pairs" 3 })
  | "long-proc" ->
      let* () = check_keys [ "lines" ] in
      Ok (Long_proc { lines = get "lines" 2000 })
  | "many-procs" ->
      let* () = check_keys [ "procs" ] in
      Ok (Many_procs { procs = get "procs" 2000 })
  | "hot-decl" ->
      let* () = check_keys [ "defs" ] in
      Ok (Hot_decl { defs = get "defs" 48 })
  | "exc-lock" ->
      let* () = check_keys [ "procs"; "depth" ] in
      Ok (Exc_lock { procs = get "procs" 6; depth = get "depth" 4 })
  | k -> fail "unknown shape kind %S (expected one of %s)" k (String.concat ", " kinds)

(* --- module naming ------------------------------------------------- *)

let diamond_def level k = Printf.sprintf "DiaL%dN%d" level k

let modules = function
  | Diamond { depth; width } ->
      let defs =
        diamond_def 0 0
        :: List.concat
             (List.init (depth - 1) (fun l ->
                  List.init width (fun k -> diamond_def (l + 1) k)))
      in
      List.sort compare ("ZDiamond" :: defs)
  | Mutual { pairs } ->
      List.sort compare
        ("ZMutual"
        :: List.concat
             (List.init pairs (fun i ->
                  [ Printf.sprintf "MutA%d" i; Printf.sprintf "MutB%d" i ])))
  | Long_proc _ -> [ "ZLong" ]
  | Many_procs _ -> [ "ZMany" ]
  | Hot_decl { defs } ->
      List.sort compare
        ("ZHot" :: "Hot" :: List.init defs (Printf.sprintf "HotU%03d"))
  | Exc_lock _ -> [ "ZExc" ]

(* --- emission ------------------------------------------------------ *)

type st = { b : Buffer.t }

let line st fmt =
  Printf.ksprintf (fun s -> Buffer.add_string st.b s; Buffer.add_char st.b '\n') fmt

let buf_module f =
  let st = { b = Buffer.create 1024 } in
  f st;
  Buffer.contents st.b

(* Wide import diamond: level 0 is the single apex interface; every
   interface above imports *all* of the level below, so interface frames
   for the apex arrive along width^depth distinct paths and must dedup. *)
let gen_diamond rng ~depth ~width =
  let const level k = Printf.sprintf "c%d_%d" level k in
  let def level k below =
    buf_module (fun st ->
        line st "DEFINITION MODULE %s;" (diamond_def level k);
        List.iter (fun j -> line st "IMPORT %s;" (diamond_def (level - 1) j)) below;
        (match below with
        | [] -> line st "CONST %s = %d;" (const level k) (Prng.range rng 1 99)
        | _ ->
            let sum =
              String.concat " + "
                (List.map (fun j -> Printf.sprintf "%s.%s" (diamond_def (level - 1) j) (const (level - 1) j)) below)
            in
            line st "CONST %s = %s + %d;" (const level k) sum (Prng.range rng 1 99));
        line st "END %s." (diamond_def level k))
  in
  let defs =
    (diamond_def 0 0, def 0 0 [])
    :: List.concat
         (List.init (depth - 1) (fun l ->
              let level = l + 1 in
              let below = if level = 1 then [ 0 ] else List.init width Fun.id in
              List.init width (fun k -> (diamond_def level k, def level k below))))
  in
  let top = depth - 1 in
  let top_ks = if top = 0 then [ 0 ] else List.init width Fun.id in
  let main =
    buf_module (fun st ->
        line st "IMPLEMENTATION MODULE ZDiamond;";
        List.iter (fun k -> line st "IMPORT %s;" (diamond_def top k)) top_ks;
        line st "";
        line st "VAR total: INTEGER;";
        line st "";
        line st "BEGIN";
        line st "  total := 0;";
        List.iter
          (fun k -> line st "  total := total + %s.%s;" (diamond_def top k) (const top k))
          top_ks;
        line st "  WriteInt(total)";
        line st "END ZDiamond.")
  in
  Source_store.make ~main_name:"ZDiamond" ~main_src:main ~defs ()

(* Mutually-recursive definition modules, corpus mutual-def style: each
   pair's interfaces import each other; the implementations read the
   partner's constant through the cycle. *)
let gen_mutual rng ~pairs =
  let defs = ref [] and impls = ref [] in
  for i = pairs - 1 downto 0 do
    let a = Printf.sprintf "MutA%d" i and b = Printf.sprintf "MutB%d" i in
    let va = Prng.range rng 1 99 and vb = Prng.range rng 1 99 in
    let def this other base v =
      buf_module (fun st ->
          line st "DEFINITION MODULE %s;" this;
          line st "IMPORT %s;" other;
          line st "CONST %s = %d;" base v;
          line st "PROCEDURE Use%s(): INTEGER;" this;
          line st "END %s." this)
    in
    let impl this other base obase =
      buf_module (fun st ->
          line st "IMPLEMENTATION MODULE %s;" this;
          line st "IMPORT %s;" other;
          line st "";
          line st "PROCEDURE Use%s(): INTEGER;" this;
          line st "BEGIN";
          line st "  RETURN %s + %s.%s" base other obase;
          line st "END Use%s;" this;
          line st "";
          line st "END %s." this)
    in
    let ba = Printf.sprintf "baseA%d" i and bb = Printf.sprintf "baseB%d" i in
    defs := (a, def a b ba va) :: (b, def b a bb vb) :: !defs;
    impls := (a, impl a b ba bb) :: (b, impl b a bb ba) :: !impls
  done;
  let main =
    buf_module (fun st ->
        line st "IMPLEMENTATION MODULE ZMutual;";
        for i = 0 to pairs - 1 do
          line st "IMPORT MutA%d;" i;
          line st "IMPORT MutB%d;" i
        done;
        line st "";
        line st "VAR total: INTEGER;";
        line st "";
        line st "BEGIN";
        line st "  total := 0;";
        for i = 0 to pairs - 1 do
          line st "  total := total + MutA%d.UseMutA%d() + MutB%d.UseMutB%d();" i i i i
        done;
        line st "  WriteInt(total)";
        line st "END ZMutual.")
  in
  Source_store.make ~impls:!impls ~main_name:"ZMutual" ~main_src:main ~defs:!defs ()

(* One enormous procedure: the splitter sees a single unsplittable unit
   [lines] statements long. *)
let gen_long_proc rng ~lines =
  let main =
    buf_module (fun st ->
        line st "IMPLEMENTATION MODULE ZLong;";
        line st "";
        line st "VAR total: INTEGER;";
        line st "";
        line st "PROCEDURE Big(): INTEGER;";
        line st "VAR x: INTEGER;";
        line st "BEGIN";
        line st "  x := 0;";
        for _ = 1 to lines do
          line st "  x := x + %d;" (Prng.range rng 1 9)
        done;
        line st "  RETURN x";
        line st "END Big;";
        line st "";
        line st "BEGIN";
        line st "  total := Big();";
        line st "  WriteInt(total)";
        line st "END ZLong.")
  in
  Source_store.make ~main_name:"ZLong" ~main_src:main ~defs:[] ()

(* The dual: [procs] one-line procedures, one code unit each. *)
let gen_many_procs rng ~procs =
  let main =
    buf_module (fun st ->
        line st "IMPLEMENTATION MODULE ZMany;";
        line st "";
        line st "VAR total: INTEGER;";
        line st "";
        for k = 0 to procs - 1 do
          line st "PROCEDURE P%d(): INTEGER; BEGIN RETURN %d END P%d;" k
            (Prng.range rng 1 9) k
        done;
        line st "";
        line st "BEGIN";
        line st "  total := 0;";
        for k = 0 to min procs 16 - 1 do
          line st "  total := total + P%d();" k
        done;
        line st "  WriteInt(total)";
        line st "END ZMany.")
  in
  Source_store.make ~main_name:"ZMany" ~main_src:main ~defs:[] ()

(* Pathological DKY contention: one hot interface; every other interface
   and the main module block on its single declaration. *)
let gen_hot_decl rng ~defs =
  let hot_v = Prng.range rng 1 99 in
  let hot =
    buf_module (fun st ->
        line st "DEFINITION MODULE Hot;";
        line st "CONST hot = %d;" hot_v;
        line st "END Hot.")
  in
  let user k =
    let m = Printf.sprintf "HotU%03d" k in
    ( m,
      buf_module (fun st ->
          line st "DEFINITION MODULE %s;" m;
          line st "IMPORT Hot;";
          line st "CONST c%03d = Hot.hot + %d;" k (Prng.range rng 1 99);
          line st "END %s." m) )
  in
  let all = ("Hot", hot) :: List.init defs user in
  let main =
    buf_module (fun st ->
        line st "IMPLEMENTATION MODULE ZHot;";
        line st "IMPORT Hot;";
        for k = 0 to defs - 1 do
          line st "IMPORT HotU%03d;" k
        done;
        line st "";
        line st "VAR total: INTEGER;";
        line st "";
        line st "BEGIN";
        line st "  total := Hot.hot;";
        for k = 0 to defs - 1 do
          line st "  total := total + HotU%03d.c%03d;" k k
        done;
        line st "  WriteInt(total)";
        line st "END ZHot.")
  in
  Source_store.make ~main_name:"ZHot" ~main_src:main ~defs:all ()

(* Exception/LOCK-heavy bodies: TRY nests [depth] deep with a RAISE at
   the bottom, every handler level adding its mark, and the survivor
   value folded in under a LOCK. *)
let gen_exc_lock rng ~procs ~depth =
  let main =
    buf_module (fun st ->
        line st "IMPLEMENTATION MODULE ZExc;";
        line st "";
        line st "VAR gExc: EXCEPTION;";
        line st "VAR gMu: MUTEX;";
        line st "VAR total: INTEGER;";
        line st "";
        for k = 0 to procs - 1 do
          line st "PROCEDURE E%d(x: INTEGER): INTEGER;" k;
          line st "VAR t: INTEGER;";
          line st "BEGIN";
          line st "  t := x;";
          let rec nest level indent =
            let pad = String.make indent ' ' in
            if level > depth then (
              line st "%st := t + %d;" pad (Prng.range rng 1 9);
              line st "%sRAISE gExc;" pad)
            else (
              line st "%sTRY" pad;
              nest (level + 1) (indent + 2);
              line st "%sEXCEPT gExc:" pad;
              line st "%s  t := t + %d;" pad (10 * level);
              (* inner handlers may re-raise; the outermost always
                 swallows, so every E%d returns normally *)
              if level > 1 && Prng.bool rng then line st "%s  RAISE gExc;" pad;
              line st "%sEND;" pad)
          in
          nest 1 2;
          line st "  LOCK gMu DO t := t * 2 END;";
          line st "  RETURN t";
          line st "END E%d;" k;
          line st ""
        done;
        line st "BEGIN";
        line st "  total := 0;";
        for k = 0 to procs - 1 do
          line st "  total := total + E%d(%d);" k (k + 1)
        done;
        line st "  WriteInt(total)";
        line st "END ZExc.")
  in
  Source_store.make ~main_name:"ZExc" ~main_src:main ~defs:[] ()

let generate ?(seed = 0) spec =
  let rng = Prng.create (seed lxor (Hashtbl.hash (to_string spec) land 0xFFFF)) in
  match spec with
  | Diamond { depth; width } -> gen_diamond rng ~depth ~width
  | Mutual { pairs } -> gen_mutual rng ~pairs
  | Long_proc { lines } -> gen_long_proc rng ~lines
  | Many_procs { procs } -> gen_many_procs rng ~procs
  | Hot_decl { defs } -> gen_hot_decl rng ~defs
  | Exc_lock { procs; depth } -> gen_exc_lock rng ~procs ~depth
