(** Seeded adversarial program shapes the synthetic generator
    ({!Mcc_synth.Gen}) was never designed to reach.  Each shape targets
    one layer of the concurrent compiler with a worst case the paper's
    authors would recognize from real Modula-2+ workloads: wide import
    diamonds stress interface-frame dedup and the scheduler's ready
    queue; mutually-recursive definition modules stress DKY cycle
    handling; one enormous procedure vs. thousands of tiny ones stress
    the splitter and per-unit codegen; a single hot declaration every
    module imports recreates pathological DKY contention; and deeply
    nested TRY/RAISE under LOCK stresses the exception and mutex
    machinery end to end.

    Generation is deterministic: the same [spec] and [seed] always
    produce byte-identical sources.  Every generated program is
    runnable — it ends in [WriteInt] so the zoo can pin its VM output —
    and elaborates without diagnostics (pinned by qcheck properties in
    the test suite). *)

type spec =
  | Diamond of { depth : int; width : int }
      (** [depth] levels; levels below the apex hold [width] interfaces,
          each importing {e every} interface one level down. *)
  | Mutual of { pairs : int }
      (** [pairs] pairs of definition modules importing each other. *)
  | Long_proc of { lines : int }
      (** one procedure whose body is [lines] statements long. *)
  | Many_procs of { procs : int }  (** [procs] one-line procedures. *)
  | Hot_decl of { defs : int }
      (** [defs] interfaces all reading one hot declaration. *)
  | Exc_lock of { procs : int; depth : int }
      (** [procs] procedures of TRY/RAISE nests [depth] deep, each
          finishing under a LOCK. *)

(** Canonical spec syntax, e.g. ["diamond:depth=5,width=3"] — the
    round-trip partner of {!of_string}. *)
val to_string : spec -> string

(** Short filesystem/report label, e.g. ["diamond-d5w3"]. *)
val name : spec -> string

(** Parse a [--shape] spec: [kind] or [kind:k=v,k=v] with kinds
    [diamond] (depth, width), [mutual] (pairs), [long-proc] (lines),
    [many-procs] (procs), [hot-decl] (defs), [exc-lock] (procs, depth).
    Omitted parameters take the defaults of {!default_zoo}'s entry for
    that kind.  Errors name the offending kind, parameter or value. *)
val of_string : string -> (spec, string) result

(** The module names [generate] will emit (interfaces then main),
    sorted — so tests can check depth/width are honored exactly. *)
val modules : spec -> string list

(** The zoo run by a bare [m2c zoo]: one moderate instance of every
    kind. *)
val default_zoo : spec list

(** Deterministically emit the shape's program.  [seed] (default [0])
    only perturbs embedded constants, never the module structure. *)
val generate : ?seed:int -> spec -> Mcc_core.Source_store.t
