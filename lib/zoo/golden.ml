(* Renderings are line-oriented ("field: value") so a golden mismatch
   reports as a per-field first-divergent-line diff, and multi-valued
   fields (diagnostics) get one line each.  Stdout is String.escaped to
   keep the record one-line-per-field even when programs print
   newlines. *)

type program_record = {
  g_ok : bool;
  g_modules : string list;
  g_diags : string list;
  g_vm_status : string;
  g_stdout : string;
}

type rebuild_record = {
  g_recompiled : string list;
  g_reused : string list;
  g_cutoffs : string list;
}

let render_program g =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "ok: %b\n" g.g_ok);
  Buffer.add_string b (Printf.sprintf "modules: %s\n" (String.concat " " g.g_modules));
  List.iter (fun d -> Buffer.add_string b (Printf.sprintf "diag: %s\n" d)) g.g_diags;
  Buffer.add_string b (Printf.sprintf "vm-status: %s\n" g.g_vm_status);
  Buffer.add_string b (Printf.sprintf "stdout: %s\n" (String.escaped g.g_stdout));
  Buffer.contents b

let render_rebuild g =
  Printf.sprintf "recompiled: %s\nreused: %s\ncutoffs: %s\n"
    (String.concat " " g.g_recompiled)
    (String.concat " " g.g_reused)
    (String.concat " " g.g_cutoffs)

let first_line_diff ~expected ~actual =
  if String.equal expected actual then None
  else
    let el = String.split_on_char '\n' expected
    and al = String.split_on_char '\n' actual in
    let rec go n = function
      | [], [] -> None
      | e :: es, a :: al -> if String.equal e a then go (n + 1) (es, al) else Some (n, e, a)
      | e :: _, [] -> Some (n, e, "<missing>")
      | [], a :: _ -> Some (n, "<missing>", a)
    in
    go 1 (el, al)

let expect_dir dir = Filename.concat dir "expect"
let program_path dir = Filename.concat (expect_dir dir) "program.txt"

let rebuild_path dir ~variant_file =
  Filename.concat (expect_dir dir) (Printf.sprintf "rebuild.%s.txt" variant_file)

let read_file path =
  if not (Sys.file_exists path) then None
  else
    let ic = open_in_bin path in
    Some
      (Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () -> really_input_string ic (in_channel_length ic)))

let write_file path content =
  let dir = Filename.dirname path in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)
