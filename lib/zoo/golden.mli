(** Golden records: the durable, diffable text form of what a corpus
    scenario is expected to do.  [expect/program.txt] pins the
    whole-program build and VM execution (success, module init order,
    diagnostics, VM status and stdout); one
    [expect/rebuild.<Def>.def.<variant>.txt] per prepared interface
    edit pins the incremental rebuild set (recompiled / reused /
    cutoffs).  Records are rendered deterministically, so
    [--update-golden] followed by a clean run is a byte-level fixpoint
    — the property the round-trip test pins. *)

type program_record = {
  g_ok : bool;
  g_modules : string list;  (** init order, implementations only *)
  g_diags : string list;  (** sorted diagnostic renderings *)
  g_vm_status : string;  (** [-] when the program was not executed *)
  g_stdout : string;  (** VM output, [String.escaped] *)
}

type rebuild_record = {
  g_recompiled : string list;  (** init order *)
  g_reused : string list;  (** init order *)
  g_cutoffs : string list;  (** sorted *)
}

val render_program : program_record -> string
val render_rebuild : rebuild_record -> string

(** First divergent line between an expected rendering and an actual
    one: [(line_number, expected_line, actual_line)] with ["<missing>"]
    standing in for the shorter side; [None] when byte-equal. *)
val first_line_diff : expected:string -> actual:string -> (int * string * string) option

(** The golden directory of a scenario ([dir/expect]). *)
val expect_dir : string -> string

(** The golden file pinning the program record. *)
val program_path : string -> string

(** The golden file pinning the rebuild set of one variant file (e.g.
    [rebuild.Lib.def.sig-edit.txt] for variant file [Lib.def.sig-edit]). *)
val rebuild_path : string -> variant_file:string -> string

val read_file : string -> string option

(** Write [content] to [path], creating [expect/] as needed. *)
val write_file : string -> string -> unit
