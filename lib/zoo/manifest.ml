(* Line-oriented manifest format:

     # comment
     main: Diamond
     oracles: conformance warm-cold incremental golden
     input: 3 5

   Unknown keys, unknown oracle names and malformed input are errors
   naming the file and line — a manifest typo must fail the run, not
   silently skip an oracle. *)

type oracle = Conformance | Warm_cold | Incremental | Farm | Golden

let oracle_to_string = function
  | Conformance -> "conformance"
  | Warm_cold -> "warm-cold"
  | Incremental -> "incremental"
  | Farm -> "farm"
  | Golden -> "golden"

let all_oracles = [ Conformance; Warm_cold; Incremental; Farm; Golden ]

let oracle_of_string s =
  match List.find_opt (fun o -> oracle_to_string o = s) all_oracles with
  | Some o -> Ok o
  | None ->
      Error
        (Printf.sprintf "unknown oracle %S (expected one of %s)" s
           (String.concat ", " (List.map oracle_to_string all_oracles)))

type t = { main : string option; oracles : oracle list; input : int list }

let parse ~what text =
  let err lineno fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "%s:%d: %s" what lineno m)) fmt
  in
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok acc
    | raw :: rest -> (
        let line = String.trim raw in
        if line = "" || line.[0] = '#' then go (lineno + 1) acc rest
        else
          match String.index_opt line ':' with
          | None -> err lineno "expected \"key: value\", got %S" line
          | Some i -> (
              let key = String.trim (String.sub line 0 i) in
              let value =
                String.trim (String.sub line (i + 1) (String.length line - i - 1))
              in
              let words =
                String.split_on_char ' ' value |> List.filter (fun w -> w <> "")
              in
              match key with
              | "main" -> (
                  match words with
                  | [ m ] -> go (lineno + 1) { acc with main = Some m } rest
                  | _ -> err lineno "main: expects exactly one module name, got %S" value)
              | "oracles" -> (
                  if words = [] then err lineno "oracles: declares no oracle"
                  else
                    match
                      List.fold_left
                        (fun acc w ->
                          Result.bind acc (fun os ->
                              Result.map (fun o -> o :: os) (oracle_of_string w)))
                        (Ok []) words
                    with
                    | Error m -> err lineno "%s" m
                    | Ok os ->
                        let oracles =
                          List.fold_left
                            (fun seen o -> if List.mem o seen then seen else seen @ [ o ])
                            [] (List.rev os)
                        in
                        go (lineno + 1) { acc with oracles } rest)
              | "input" -> (
                  match
                    List.fold_left
                      (fun acc w ->
                        Result.bind acc (fun ns ->
                            match int_of_string_opt w with
                            | Some n -> Ok (n :: ns)
                            | None -> Error w))
                      (Ok []) words
                  with
                  | Ok ns -> go (lineno + 1) { acc with input = List.rev ns } rest
                  | Error w -> err lineno "input: %S is not an integer" w)
              | k -> err lineno "unknown manifest key %S (expected main, oracles or input)" k))
  in
  Result.bind (go 1 { main = None; oracles = []; input = [] } lines) (fun m ->
      if m.oracles = [] then
        Error (Printf.sprintf "%s: manifest declares no oracles" what)
      else Ok m)

let load ~dir =
  let path = Filename.concat dir "manifest" in
  if not (Sys.file_exists path) then
    Error
      (Printf.sprintf
         "%s: corpus scenario has no manifest — add %s declaring its oracles (see corpus/README.md)"
         dir path)
  else
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    parse ~what:path text

let render m =
  let b = Buffer.create 128 in
  (match m.main with
  | Some main -> Buffer.add_string b (Printf.sprintf "main: %s\n" main)
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf "oracles: %s\n" (String.concat " " (List.map oracle_to_string m.oracles)));
  (match m.input with
  | [] -> ()
  | ns ->
      Buffer.add_string b
        (Printf.sprintf "input: %s\n" (String.concat " " (List.map string_of_int ns))));
  Buffer.contents b
