(* The execution engine for compiled programs.

   An interpreter for the stack machine of [Mcc_codegen.Instr], standing
   in for the paper's CVax hardware so that compiled Modula-2+ programs
   can actually run (examples, differential tests).  The machine model:

   - every assignable slot lives in some [v array]: a procedure frame, a
     module global frame, an array/record body, or a heap cell from NEW;
   - a location value [VLoc (a, i)] designates one such slot — this is
     what designator code computes and VAR parameters pass;
   - arrays and records are both [VArr]; pointers are [VCell] (a
     one-slot heap cell); Modula-2+ EXCEPTION values carry the stable
     identity of their declaring slot.

   Calls are OCaml recursion, so Modula-2+ exception propagation maps
   onto an OCaml exception unwinding interpreter frames; TRY pushes a
   handler (pc, stack depth) that the per-frame dispatch loop consults.

   Execution is metered by [fuel] so runaway programs fail cleanly in
   tests. *)

open Mcc_codegen
module V = Mcc_sem.Value

type v =
  | VInt of int
  | VReal of float
  | VBool of bool
  | VChar of char
  | VStr of string
  | VSet of int
  | VNil
  | VUninit
  | VArr of v array
  | VCell of v array (* heap cell from NEW: one slot *)
  | VLoc of v array * int
  | VProc of string
  | VExc of string
  | VMutex

exception Runtime_error of string
exception M2_exception of string
exception Halted

let error fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let rec default_of (d : Tydesc.t) : v =
  match d with
  | Tydesc.DScalar -> VUninit
  | Tydesc.DPtr -> VNil
  | Tydesc.DProc -> VNil
  | Tydesc.DExc key -> VExc key
  | Tydesc.DMutex -> VMutex
  | Tydesc.DArr (n, e) -> VArr (Array.init n (fun _ -> default_of e))
  | Tydesc.DRec fs -> VArr (Array.map default_of fs)

let rec copy_value = function
  | VArr a -> VArr (Array.map copy_value a)
  | VStr s -> VArr (Array.init (String.length s) (fun i -> VChar s.[i]))
  | x -> x

let to_int = function
  | VInt n -> n
  | VChar c -> Char.code c
  | VBool b -> if b then 1 else 0
  | VStr s when String.length s = 1 -> Char.code s.[0] (* 'x' character literal *)
  | VUninit -> error "use of an uninitialized value"
  | v -> error "integer value expected, found %s" (match v with VReal _ -> "REAL" | _ -> "non-ordinal")

let to_real = function
  | VReal f -> f
  | VUninit -> error "use of an uninitialized value"
  | _ -> error "REAL value expected"

let to_bool = function
  | VBool b -> b
  | VUninit -> error "use of an uninitialized value"
  | _ -> error "BOOLEAN value expected"

let to_set = function
  | VSet m -> m
  | VUninit -> error "use of an uninitialized set"
  | _ -> error "set value expected"

let cmp_values a b =
  match (a, b) with
  | VReal x, VReal y -> compare x y
  | VStr x, VStr y -> compare x y
  | VChar x, VStr y when String.length y = 1 -> compare x y.[0]
  | VStr x, VChar y when String.length x = 1 -> compare x.[0] y
  | VSet x, VSet y -> compare x y
  | VExc x, VExc y -> compare x y
  | VBool x, VBool y -> compare x y
  | _ -> compare (to_int a) (to_int b)

let phys_eq a b =
  match (a, b) with
  | VCell x, VCell y -> x == y
  | VNil, VNil -> true
  | VNil, _ | _, VNil -> false
  | VProc x, VProc y -> x = y
  | _ -> error "pointer comparison on non-pointer values"

let relop_holds (r : Instr.relop) c =
  match r with
  | Instr.REq -> c = 0
  | Instr.RNe -> c <> 0
  | Instr.RLt -> c < 0
  | Instr.RLe -> c <= 0
  | Instr.RGt -> c > 0
  | Instr.RGe -> c >= 0

type status = Finished | Halt_called | Trap of string | Uncaught_exception of string

type result = { output : string; status : status; steps : int; store_digest : string }

type state = {
  prog : Cunit.program;
  frames : (string, v array) Hashtbl.t;
  out : Buffer.t;
  mutable input : int list;
  mutable fuel : int;
  mutable steps : int;
}

let burn st =
  st.steps <- st.steps + 1;
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then error "execution fuel exhausted (possible infinite loop)"

let global_frame st key =
  match Hashtbl.find_opt st.frames key with
  | Some f -> f
  | None -> error "reference to unknown module frame %s" key

(* Execute one code unit with the given argument values.  [chain] is the
   static chain: the frames of the lexically enclosing procedures,
   innermost first (empty for module-level procedures and the module
   body). *)
let rec exec st (u : Cunit.t) (args : v list) ~(chain : v array list) : v option =
  let frame = Array.make (max 1 u.Cunit.u_nslots) VUninit in
  List.iteri (fun i a -> if i < Array.length frame then frame.(i) <- a) args;
  List.iter (fun (slot, d) -> if slot < Array.length frame then frame.(slot) <- default_of d) u.Cunit.u_locals;
  let stack = ref [] in
  let handlers = ref [] in
  let push v = stack := v :: !stack in
  let pop () =
    match !stack with
    | v :: rest ->
        stack := rest;
        v
    | [] -> error "evaluation stack underflow in %s" u.Cunit.u_key
  in
  let pop_loc () =
    match pop () with
    | VLoc (a, i) -> (a, i)
    | _ -> error "location expected on the stack in %s" u.Cunit.u_key
  in
  let popn n =
    let rec go n acc = if n = 0 then acc else go (n - 1) (pop () :: acc) in
    go n []
  in
  let truncate_stack depth =
    let rec go l = if List.length l > depth then go (List.tl l) else l in
    stack := go !stack
  in
  let code = u.Cunit.u_code in
  let len = Array.length code in
  let pc = ref 0 in
  let result = ref None in
  let running = ref true in
  while !running do
    if !pc < 0 || !pc >= len then error "pc out of range in %s" u.Cunit.u_key;
    burn st;
    let i = code.(!pc) in
    incr pc;
    try
      match i with
      | Instr.Const c ->
          push
            (match c with
            | V.VInt n -> VInt n
            | V.VReal f -> VReal f
            | V.VBool b -> VBool b
            | V.VChar c -> VChar c
            | V.VStr s -> VStr s
            | V.VSet m -> VSet m
            | V.VNil -> VNil)
      | Instr.Dup -> (
          match !stack with
          | v :: _ -> push v
          | [] -> error "dup on empty stack")
      | Instr.Pop -> ignore (pop ())
      | Instr.CopyVal -> push (copy_value (pop ()))
      | Instr.StrToArr n -> (
          match pop () with
          | VStr s ->
              push (VArr (Array.init n (fun i -> VChar (if i < String.length s then s.[i] else '\000'))))
          | VArr a ->
              (* assigning a char array to a char array of the same shape *)
              push (copy_value (VArr a))
          | _ -> error "string expected")
      | Instr.LoadLocal n -> push frame.(n)
      | Instr.StoreLocal n -> frame.(n) <- pop ()
      | Instr.LocalAddr n -> push (VLoc (frame, n))
      | Instr.UplevelAddr (hops, slot) -> (
          match List.nth_opt chain (hops - 1) with
          | Some f -> push (VLoc (f, slot))
          | None -> error "static chain underflow in %s" u.Cunit.u_key)
      | Instr.LoadGlobal (f, n) -> push (global_frame st f).(n)
      | Instr.StoreGlobal (f, n) -> (global_frame st f).(n) <- pop ()
      | Instr.GlobalAddr (f, n) -> push (VLoc (global_frame st f, n))
      | Instr.FieldAddr n -> (
          let a, i = pop_loc () in
          match a.(i) with
          | VArr fields -> push (VLoc (fields, n))
          | VUninit -> error "field access on an uninitialized record"
          | _ -> error "record expected for field access")
      | Instr.LoadField n -> (
          match pop () with
          | VArr fields -> push fields.(n)
          | _ -> error "record expected for field load")
      | Instr.IndexAddr (lo, hi) -> (
          let idx = to_int (pop ()) in
          let a, i = pop_loc () in
          if idx < lo || idx > hi then error "array index %d out of range [%d..%d]" idx lo hi;
          match a.(i) with
          | VArr elems -> push (VLoc (elems, idx - lo))
          | VUninit -> error "indexing an uninitialized array"
          | _ -> error "array expected for indexing")
      | Instr.IndexOpenAddr -> (
          let idx = to_int (pop ()) in
          let a, i = pop_loc () in
          match a.(i) with
          | VArr elems ->
              if idx < 0 || idx >= Array.length elems then
                error "open array index %d out of range [0..%d]" idx (Array.length elems - 1);
              push (VLoc (elems, idx))
          | VStr s ->
              if idx < 0 || idx >= String.length s then
                error "string index %d out of range" idx;
              (* strings are immutable: materialize a cell for reading *)
              push (VLoc ([| VChar s.[idx] |], 0))
          | _ -> error "array expected for open indexing")
      | Instr.LoadElem (lo, hi) -> (
          let idx = to_int (pop ()) in
          match pop () with
          | VArr elems ->
              if idx < lo || idx > hi then error "array index %d out of range [%d..%d]" idx lo hi;
              push elems.(idx - lo)
          | _ -> error "array expected")
      | Instr.LoadElemOpen -> (
          let idx = to_int (pop ()) in
          match pop () with
          | VArr elems ->
              if idx < 0 || idx >= Array.length elems then error "open array index out of range";
              push elems.(idx)
          | VStr s ->
              if idx < 0 || idx >= String.length s then error "string index out of range";
              push (VChar s.[idx])
          | _ -> error "array expected")
      | Instr.DerefAddr -> (
          match pop () with
          | VCell a -> push (VLoc (a, 0))
          | VNil -> error "NIL dereference"
          | VUninit -> error "dereference of an uninitialized pointer"
          | _ -> error "pointer expected for dereference")
      | Instr.LoadInd ->
          let a, i = pop_loc () in
          push a.(i)
      | Instr.StoreInd ->
          let value = pop () in
          let a, i = pop_loc () in
          a.(i) <- value
      | Instr.IncInd | Instr.DecInd -> (
          let delta = to_int (pop ()) in
          let delta = if i = Instr.DecInd then -delta else delta in
          let a, idx = pop_loc () in
          match a.(idx) with
          | VInt n -> a.(idx) <- VInt (n + delta)
          | VChar c ->
              let n = Char.code c + delta in
              if n < 0 || n > 255 then error "CHAR increment out of range";
              a.(idx) <- VChar (Char.chr n)
          | VStr s when String.length s = 1 ->
              (* a character literal was stored here *)
              let n = Char.code s.[0] + delta in
              if n < 0 || n > 255 then error "CHAR increment out of range";
              a.(idx) <- VChar (Char.chr n)
          | VUninit -> error "INC/DEC of an uninitialized variable"
          | _ -> error "INC/DEC requires an ordinal variable")
      | Instr.InclInd lo | Instr.ExclInd lo -> (
          let e = to_int (pop ()) - lo in
          let a, idx = pop_loc () in
          if e < 0 || e >= 62 then error "set element out of range";
          match a.(idx) with
          | VSet m ->
              a.(idx) <- VSet (match i with Instr.InclInd _ -> m lor (1 lsl e) | _ -> m land lnot (1 lsl e))
          | VUninit ->
              (match i with
              | Instr.InclInd _ -> a.(idx) <- VSet (1 lsl e)
              | _ -> error "EXCL on an uninitialized set")
          | _ -> error "INCL/EXCL requires a set variable")
      | Instr.NewInd d ->
          let a, idx = pop_loc () in
          a.(idx) <- VCell [| default_of d |]
      | Instr.DisposeInd ->
          let a, idx = pop_loc () in
          a.(idx) <- VNil
      | Instr.AddI ->
          let b = to_int (pop ()) and a = to_int (pop ()) in
          push (VInt (a + b))
      | Instr.SubI ->
          let b = to_int (pop ()) and a = to_int (pop ()) in
          push (VInt (a - b))
      | Instr.MulI ->
          let b = to_int (pop ()) and a = to_int (pop ()) in
          push (VInt (a * b))
      | Instr.DivI ->
          let b = to_int (pop ()) and a = to_int (pop ()) in
          if b = 0 then error "integer division by zero";
          push (VInt (a / b))
      | Instr.ModI ->
          let b = to_int (pop ()) and a = to_int (pop ()) in
          if b = 0 then error "MOD by zero";
          push (VInt (((a mod b) + abs b) mod abs b))
      | Instr.NegI -> push (VInt (-to_int (pop ())))
      | Instr.AddR ->
          let b = to_real (pop ()) and a = to_real (pop ()) in
          push (VReal (a +. b))
      | Instr.SubR ->
          let b = to_real (pop ()) and a = to_real (pop ()) in
          push (VReal (a -. b))
      | Instr.MulR ->
          let b = to_real (pop ()) and a = to_real (pop ()) in
          push (VReal (a *. b))
      | Instr.DivR ->
          let b = to_real (pop ()) and a = to_real (pop ()) in
          if b = 0.0 then error "real division by zero";
          push (VReal (a /. b))
      | Instr.NegR -> push (VReal (-.to_real (pop ())))
      | Instr.NotB -> push (VBool (not (to_bool (pop ()))))
      | Instr.Cmp r ->
          let b = pop () and a = pop () in
          push (VBool (relop_holds r (cmp_values a b)))
      | Instr.CmpPtr r ->
          let b = pop () and a = pop () in
          let eq = phys_eq a b in
          push (VBool (match r with Instr.REq -> eq | Instr.RNe -> not eq | _ -> error "bad pointer relop"))
      | Instr.SetUnion ->
          let b = to_set (pop ()) and a = to_set (pop ()) in
          push (VSet (a lor b))
      | Instr.SetDiff ->
          let b = to_set (pop ()) and a = to_set (pop ()) in
          push (VSet (a land lnot b))
      | Instr.SetInter ->
          let b = to_set (pop ()) and a = to_set (pop ()) in
          push (VSet (a land b))
      | Instr.SetSymDiff ->
          let b = to_set (pop ()) and a = to_set (pop ()) in
          push (VSet (a lxor b))
      | Instr.SetLe ->
          let b = to_set (pop ()) and a = to_set (pop ()) in
          push (VBool (a land b = a))
      | Instr.SetGe ->
          let b = to_set (pop ()) and a = to_set (pop ()) in
          push (VBool (a lor b = a))
      | Instr.SetIn lo ->
          let m = to_set (pop ()) in
          let e = to_int (pop ()) - lo in
          push (VBool (e >= 0 && e < 62 && m land (1 lsl e) <> 0))
      | Instr.SetAdd1 lo ->
          let e = to_int (pop ()) - lo in
          let m = to_set (pop ()) in
          if e < 0 || e >= 62 then error "set element out of range";
          push (VSet (m lor (1 lsl e)))
      | Instr.SetAddRange lo ->
          let hi' = to_int (pop ()) - lo in
          let lo' = to_int (pop ()) - lo in
          let m = ref (to_set (pop ())) in
          if lo' < 0 || hi' >= 62 then error "set range out of bounds";
          for e = lo' to hi' do
            m := !m lor (1 lsl e)
          done;
          push (VSet !m)
      | Instr.RangeCheck (lo, hi) -> (
          match !stack with
          | top :: _ ->
              let n = to_int top in
              if n < lo || n > hi then error "value %d out of range [%d..%d]" n lo hi
          | [] -> error "range check on empty stack")
      | Instr.CaseError -> error "no CASE label matched the selector"
      | Instr.NoReturn -> error "function %s did not execute RETURN" u.Cunit.u_key
      | Instr.Jump t -> pc := t
      | Instr.JumpIf t -> if to_bool (pop ()) then pc := t
      | Instr.JumpIfNot t -> if not (to_bool (pop ())) then pc := t
      | Instr.Call (key, n, link) -> (
          let args = popn n in
          let callee_chain =
            match link with
            | Instr.LinkNone -> []
            | Instr.LinkSelf -> frame :: chain
            | Instr.LinkUp k ->
                let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl in
                drop (k - 1) chain
          in
          match Cunit.find_unit st.prog key with
          | Some callee -> (
              match exec st callee args ~chain:callee_chain with
              | Some r -> push r
              | None -> ())
          | None -> error "call to external procedure %s (not compiled in this unit)" key)
      | Instr.CallPtr n -> (
          (* the callee value is computed before the arguments *)
          let args = popn n in
          match pop () with
          | VProc key -> (
              (* procedure values are module-level by construction *)
              match Cunit.find_unit st.prog key with
              | Some callee -> (
                  match exec st callee args ~chain:[] with Some r -> push r | None -> ())
              | None -> error "call through procedure value to external %s" key)
          | VNil -> error "call through NIL procedure value"
          | _ -> error "procedure value expected")
      | Instr.ProcConst key -> push (VProc key)
      | Instr.Ret ->
          result := None;
          running := false
      | Instr.RetVal ->
          result := Some (pop ());
          running := false
      | Instr.Builtin (op, n) -> exec_builtin st op n ~pop ~push
      | Instr.Try hpc -> handlers := (hpc, List.length !stack) :: !handlers
      | Instr.EndTry -> (
          match !handlers with
          | _ :: rest -> handlers := rest
          | [] -> error "EndTry without Try")
      | Instr.RaiseI | Instr.ReRaise -> (
          match pop () with
          | VExc key -> raise (M2_exception key)
          | VUninit -> error "RAISE of an uninitialized exception"
          | _ -> error "EXCEPTION value expected for RAISE")
    with M2_exception key -> (
      match !handlers with
      | (hpc, depth) :: rest ->
          handlers := rest;
          truncate_stack depth;
          push (VExc key);
          pc := hpc
      | [] -> raise (M2_exception key))
  done;
  !result

and exec_builtin st op n ~pop ~push =
  ignore n;
  match op with
  | Instr.OWriteInt -> Buffer.add_string st.out (string_of_int (to_int (pop ())))
  | Instr.OWriteLn -> Buffer.add_char st.out '\n'
  | Instr.OWriteString -> (
      match pop () with
      | VStr s -> Buffer.add_string st.out s
      | VArr a ->
          Array.iter
            (function
              | VChar '\000' -> ()
              | VChar c -> Buffer.add_char st.out c
              | _ -> error "character array expected for WriteString")
            a
      | _ -> error "string expected for WriteString")
  | Instr.OWriteChar -> (
      match pop () with
      | VChar c -> Buffer.add_char st.out c
      | VStr s when String.length s = 1 -> Buffer.add_char st.out s.[0]
      | v -> Buffer.add_char st.out (Char.chr (to_int v land 255)))
  | Instr.OWriteReal -> Buffer.add_string st.out (Printf.sprintf "%.6g" (to_real (pop ())))
  | Instr.OReadInt -> (
      match pop () with
      | VLoc (a, i) -> (
          match st.input with
          | x :: rest ->
              st.input <- rest;
              a.(i) <- VInt x
          | [] -> error "ReadInt: input exhausted")
      | _ -> error "ReadInt requires a variable")
  | Instr.OHalt -> raise Halted
  | Instr.OSqrt -> push (VReal (sqrt (to_real (pop ()))))
  | Instr.OSin -> push (VReal (sin (to_real (pop ()))))
  | Instr.OCos -> push (VReal (cos (to_real (pop ()))))
  | Instr.OLn -> push (VReal (log (to_real (pop ()))))
  | Instr.OExp -> push (VReal (exp (to_real (pop ()))))
  | Instr.OCap -> (
      match pop () with
      | VChar c -> push (VChar (Char.uppercase_ascii c))
      | VStr s when String.length s = 1 -> push (VChar (Char.uppercase_ascii s.[0]))
      | _ -> error "CAP requires a CHAR")
  | Instr.OOddI -> push (VBool (to_int (pop ()) land 1 = 1))
  | Instr.OAbsI -> push (VInt (abs (to_int (pop ()))))
  | Instr.OAbsR -> push (VReal (abs_float (to_real (pop ()))))
  | Instr.OIntToReal -> push (VReal (float_of_int (to_int (pop ()))))
  | Instr.ORealToInt -> push (VInt (int_of_float (to_real (pop ()))))
  | Instr.OIntToChar -> push (VChar (Char.chr (to_int (pop ()) land 255)))
  | Instr.OOrdOf -> push (VInt (to_int (pop ())))
  | Instr.OHighOf -> (
      match pop () with
      | VArr a -> push (VInt (Array.length a - 1))
      | VStr s -> push (VInt (String.length s - 1))
      | _ -> error "HIGH requires an array")

(* ------------------------------------------------------------------ *)

(* Canonical rendering of a value for the final-store digest.  Depth is
   capped so pointer structures built by NEW (which can in principle be
   cyclic) always terminate; two stores digest equally iff they render
   equally down to the cap. *)
let rec render_v buf depth v =
  if depth <= 0 then Buffer.add_char buf '#'
  else
    match v with
    | VInt i -> Buffer.add_string buf (string_of_int i)
    | VReal r -> Buffer.add_string buf (Printf.sprintf "%h" r)
    | VBool b -> Buffer.add_string buf (if b then "T" else "F")
    | VChar c -> Buffer.add_string buf (Printf.sprintf "'%d'" (Char.code c))
    | VStr s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf s;
        Buffer.add_char buf '"'
    | VSet s -> Buffer.add_string buf (Printf.sprintf "{%d}" s)
    | VNil -> Buffer.add_string buf "nil"
    | VUninit -> Buffer.add_char buf '?'
    | VArr a | VCell a ->
        Buffer.add_char buf '[';
        Array.iter
          (fun x ->
            render_v buf (depth - 1) x;
            Buffer.add_char buf ' ')
          a;
        Buffer.add_char buf ']'
    | VLoc (a, i) ->
        Buffer.add_string buf "loc:";
        Buffer.add_string buf (string_of_int i);
        Buffer.add_char buf '@';
        Buffer.add_string buf (string_of_int (Array.length a))
    | VProc p ->
        Buffer.add_string buf "proc:";
        Buffer.add_string buf p
    | VExc e ->
        Buffer.add_string buf "exc:";
        Buffer.add_string buf e
    | VMutex -> Buffer.add_string buf "mutex"

(* MD5 over the canonical rendering of every module global frame, sorted
   by frame key — the "final store" the conformance oracle compares
   across compilers (procedure frames are gone by termination). *)
let store_digest_of frames =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) frames [] in
  let buf = Buffer.create 512 in
  List.iter
    (fun key ->
      Buffer.add_string buf key;
      Buffer.add_char buf '=';
      render_v buf 8 (VArr (Hashtbl.find frames key));
      Buffer.add_char buf '\n')
    (List.sort compare keys);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let run ?(fuel = 50_000_000) ?(input = []) (prog : Cunit.program) : result =
  let st =
    {
      prog;
      frames = Hashtbl.create 16;
      out = Buffer.create 256;
      input;
      fuel;
      steps = 0;
    }
  in
  List.iter
    (fun (key, slots, size) ->
      let frame = Array.make (max 1 size) VUninit in
      List.iter (fun (slot, d) -> if slot < size then frame.(slot) <- default_of d) slots;
      Hashtbl.replace st.frames key frame)
    prog.Cunit.p_frames;
  let status =
    try
      (* module bodies run in initialization order: imported modules
         before their importers, the main module last *)
      List.iter
        (fun key ->
          match Cunit.find_unit prog key with
          | None -> error "init unit %s missing" key
          | Some u -> ignore (exec st u [] ~chain:[]))
        prog.Cunit.p_init;
      Finished
    with
    | Halted -> Halt_called
    | Runtime_error msg -> Trap msg
    | M2_exception key -> Uncaught_exception key
  in
  {
    output = Buffer.contents st.out;
    status;
    steps = st.steps;
    store_digest = store_digest_of st.frames;
  }

let status_to_string = function
  | Finished -> "finished"
  | Halt_called -> "halted"
  | Trap m -> "trap: " ^ m
  | Uncaught_exception k -> "uncaught exception " ^ k
