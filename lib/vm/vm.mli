(** The execution engine for compiled programs: an interpreter for the
    stack machine of [Mcc_codegen.Instr], standing in for the paper's
    CVax hardware so compiled Modula-2+ programs actually run.

    Every assignable slot lives in some value array (a procedure frame,
    a module global frame, an array/record body, or a heap cell);
    locations designate one such slot.  Calls are OCaml recursion, so
    Modula-2+ exception propagation unwinds interpreter frames; the
    static chain implements uplevel addressing.  Execution is metered by
    [fuel] so runaway programs fail cleanly. *)

type v =
  | VInt of int
  | VReal of float
  | VBool of bool
  | VChar of char
  | VStr of string
  | VSet of int
  | VNil
  | VUninit
  | VArr of v array  (** arrays and records *)
  | VCell of v array  (** heap cell from NEW: one slot *)
  | VLoc of v array * int  (** a location: slot [i] of an array *)
  | VProc of string
  | VExc of string  (** EXCEPTION value: stable declaration identity *)
  | VMutex

exception Runtime_error of string
exception M2_exception of string
exception Halted

type status =
  | Finished
  | Halt_called
  | Trap of string  (** runtime error: bounds, NIL, DIV 0, uninitialized, ... *)
  | Uncaught_exception of string

type result = {
  output : string;
  status : status;
  steps : int;
  store_digest : string;
      (** MD5 over a canonical rendering of every module global frame at
          termination — the "final store" differential-conformance
          observation ({!Mcc_check}); identical programs and inputs
          always produce identical digests *)
}

(** [run ?fuel ?input program] executes the entry (module body) unit.
    [input] feeds [ReadInt]; [output] collects the Write* builtins. *)
val run : ?fuel:int -> ?input:int list -> Mcc_codegen.Cunit.program -> result

val status_to_string : status -> string
