(* Diagnostics collection.

   Tasks from many streams report errors concurrently; the collector is
   mutex-protected and the final report is sorted by (file, offset, text)
   so that sequential and concurrent compilations of the same erroneous
   program produce byte-identical diagnostics regardless of schedule —
   a property the test suite checks. *)

type severity = Error | Warning

type d = { file : string; loc : Loc.t; msg : string; sev : severity }

type t = { mu : Mutex.t; mutable items : d list; mutable n_errors : int }

let create () = { mu = Mutex.create (); items = []; n_errors = 0 }

let add t ~file ~loc ~sev msg =
  Mutex.lock t.mu;
  t.items <- { file; loc; msg; sev } :: t.items;
  if sev = Error then t.n_errors <- t.n_errors + 1;
  Mutex.unlock t.mu

let add_d t d =
  Mutex.lock t.mu;
  t.items <- d :: t.items;
  if d.sev = Error then t.n_errors <- t.n_errors + 1;
  Mutex.unlock t.mu

let error t ~file ~loc msg = add t ~file ~loc ~sev:Error msg
let warning t ~file ~loc msg = add t ~file ~loc ~sev:Warning msg

let has_errors t = t.n_errors > 0
let error_count t = t.n_errors

let compare_d a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.loc.Loc.off b.loc.Loc.off with
      | 0 -> String.compare a.msg b.msg
      | c -> c)
  | c -> c

let sorted t =
  Mutex.lock t.mu;
  let items = t.items in
  Mutex.unlock t.mu;
  List.sort compare_d items

let to_string d =
  Printf.sprintf "%s:%s: %s: %s" d.file (Loc.to_string d.loc)
    (match d.sev with Error -> "error" | Warning -> "warning")
    d.msg

let report t = String.concat "\n" (List.map to_string (sorted t))
