(** Diagnostics collection.

    Tasks from many streams report errors concurrently; the collector is
    mutex-protected and the final report sorts by (file, offset, text),
    so sequential and concurrent compilations of the same erroneous
    program produce identical diagnostics regardless of schedule — a
    property the test suite checks. *)

type severity = Error | Warning

type d = { file : string; loc : Loc.t; msg : string; sev : severity }

type t

val create : unit -> t
val add : t -> file:string -> loc:Loc.t -> sev:severity -> string -> unit

(** Add an already-built diagnostic (e.g. one replayed from a cached
    interface artifact). *)
val add_d : t -> d -> unit
val error : t -> file:string -> loc:Loc.t -> string -> unit
val warning : t -> file:string -> loc:Loc.t -> string -> unit
val has_errors : t -> bool
val error_count : t -> int

(** The (file, offset, message) ordering used by {!sorted}. *)
val compare_d : d -> d -> int

(** All diagnostics, sorted by (file, offset, message). *)
val sorted : t -> d list

val to_string : d -> string

(** The sorted report, one diagnostic per line. *)
val report : t -> string
