IMPLEMENTATION MODULE Edit;
IMPORT Lib;
IMPORT Aux;

VAR a: INTEGER;

BEGIN
  a := Lib.base + Aux.step + Aux.Walk();
  WriteInt(a)
END Edit.
