IMPLEMENTATION MODULE Left;
IMPORT Base;

PROCEDURE FromLeft(): INTEGER;
BEGIN
  RETURN Base.leftSeed + Base.shared
END FromLeft;

END Left.
