IMPLEMENTATION MODULE Right;
IMPORT Base;

PROCEDURE FromRight(): INTEGER;
BEGIN
  RETURN Base.rightSeed + Base.shared
END FromRight;

END Right.
