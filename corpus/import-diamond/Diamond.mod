IMPLEMENTATION MODULE Diamond;
IMPORT Left;
IMPORT Right;

VAR total: INTEGER;

BEGIN
  total := Left.FromLeft() + Right.FromRight();
  WriteInt(total)
END Diamond.
