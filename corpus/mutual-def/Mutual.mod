IMPLEMENTATION MODULE Mutual;
IMPORT CycA;
IMPORT CycB;

VAR total: INTEGER;

BEGIN
  total := CycA.UseA() + CycB.UseB();
  WriteInt(total)
END Mutual.
