IMPLEMENTATION MODULE DeepChain;
IMPORT D33;

VAR total: INTEGER;

BEGIN
  total := D33.v33;
  WriteInt(total)
END DeepChain.
