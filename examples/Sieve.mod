IMPLEMENTATION MODULE Sieve;
IMPORT MathBits;
FROM MathBits IMPORT Limit;

VAR flags: ARRAY [0..63] OF INTEGER;
VAR count: INTEGER;

PROCEDURE Mark(step: INTEGER);
VAR i: INTEGER;
BEGIN
  i := step + step;
  WHILE i < Limit DO
    flags[i] := 1;
    i := i + step
  END
END Mark;

PROCEDURE Count(): INTEGER;
VAR i, n: INTEGER;
BEGIN
  n := 0;
  i := 2;
  WHILE i < Limit DO
    IF flags[i] = 0 THEN n := n + 1 END;
    i := i + 1
  END;
  RETURN n
END Count;

PROCEDURE Report(n: INTEGER);
BEGIN
  WriteString("primes below "); WriteInt(Limit);
  WriteString(": "); WriteInt(n); WriteLn;
  IF MathBits.IsOdd(n) THEN WriteString("odd count") ELSE WriteString("even count") END;
  WriteLn;
  WriteString("square of count: "); WriteInt(MathBits.Square(n)); WriteLn
END Report;

VAR p: INTEGER;

BEGIN
  p := 0;
  WHILE p < Limit DO
    flags[p] := 0;
    p := p + 1
  END;
  p := 2;
  WHILE p * p < Limit DO
    IF flags[p] = 0 THEN Mark(p) END;
    p := p + 1
  END;
  count := Count();
  Report(count)
END Sieve.
