examples/dky_strategies.ml: Driver List Mcc_codegen Mcc_core Mcc_sched Mcc_sem Mcc_stats Mcc_synth Option Printf Source_store String Suite
