examples/quickstart.mli:
