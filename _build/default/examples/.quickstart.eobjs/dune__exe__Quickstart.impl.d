examples/quickstart.ml: Driver List Mcc_codegen Mcc_core Mcc_m2 Mcc_sched Mcc_vm Printf Source_store String
