examples/dky_strategies.mli:
