examples/parallel_domains.ml: Driver List Mcc_codegen Mcc_core Mcc_synth Printf Seq_driver Source_store String Suite
