examples/multi_module.mli:
