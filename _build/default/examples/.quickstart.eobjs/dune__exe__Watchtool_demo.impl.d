examples/watchtool_demo.ml: Driver List Mcc_core Mcc_sched Mcc_stats Mcc_synth Printf Source_store Speedup String Suite Watchtool
