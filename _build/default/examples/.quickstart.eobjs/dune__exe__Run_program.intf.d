examples/run_program.mli:
