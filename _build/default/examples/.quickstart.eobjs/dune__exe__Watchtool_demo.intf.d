examples/watchtool_demo.mli:
