(* Whole-program compilation: several modules, each compiled by the
   concurrent compiler, linked into one executable with Modula-2
   initialization order — cross-module calls run for real.

     dune exec examples/multi_module.exe *)

open Mcc_core

let stack_def =
  {|DEFINITION MODULE Stack;
CONST Capacity = 16;
PROCEDURE Push(v: INTEGER);
PROCEDURE Pop(): INTEGER;
PROCEDURE Depth(): INTEGER;
END Stack.
|}

let stack_mod =
  {|IMPLEMENTATION MODULE Stack;

VAR items: ARRAY [0..15] OF INTEGER;
VAR top: INTEGER;

PROCEDURE Push(v: INTEGER);
BEGIN
  items[top] := v; INC(top)
END Push;

PROCEDURE Pop(): INTEGER;
BEGIN
  DEC(top); RETURN items[top]
END Pop;

PROCEDURE Depth(): INTEGER;
BEGIN
  RETURN top
END Depth;

BEGIN
  top := 0
END Stack.
|}

let calc_def =
  {|DEFINITION MODULE Calc;
PROCEDURE Eval(a, b: INTEGER; op: CHAR): INTEGER;
END Calc.
|}

let calc_mod =
  {|IMPLEMENTATION MODULE Calc;
IMPORT Stack;

PROCEDURE Eval(a, b: INTEGER; op: CHAR): INTEGER;
BEGIN
  Stack.Push(a); Stack.Push(b);
  IF op = '+' THEN RETURN Stack.Pop() + Stack.Pop()
  ELSIF op = '*' THEN RETURN Stack.Pop() * Stack.Pop()
  ELSE RETURN 0 END
END Eval;

END Calc.
|}

let main_mod =
  {|IMPLEMENTATION MODULE Main;
IMPORT Calc, Stack;
FROM Stack IMPORT Capacity;

VAR r: INTEGER;

BEGIN
  r := Calc.Eval(6, 7, '*');
  WriteString("6*7 = "); WriteInt(r); WriteLn;
  r := Calc.Eval(30, 12, '+');
  WriteString("30+12 = "); WriteInt(r); WriteLn;
  WriteString("stack depth now "); WriteInt(Stack.Depth());
  WriteString(" of "); WriteInt(Capacity); WriteLn
END Main.
|}

let () =
  let store =
    Source_store.make ~main_name:"Main" ~main_src:main_mod
      ~defs:[ ("Stack", stack_def); ("Calc", calc_def) ]
      ~impls:[ ("Stack", stack_mod); ("Calc", calc_mod) ]
      ()
  in
  Printf.printf "initialization order: %s\n" (String.concat " -> " (Project.init_order store));
  let r = Project.compile store in
  List.iter (fun d -> print_endline (Mcc_m2.Diag.to_string d)) r.Project.diags;
  List.iter
    (fun (name, (m : Driver.result)) ->
      Printf.printf "  %-6s %2d streams, %3d tasks, %.3f virtual s\n" name m.Driver.n_streams
        m.Driver.n_tasks m.Driver.sim.Mcc_sched.Des_engine.end_seconds)
    r.Project.modules;
  Printf.printf "linked %d code units\n\n"
    (List.length (Mcc_codegen.Cunit.unit_keys r.Project.program));
  let run = Mcc_vm.Vm.run r.Project.program in
  print_string run.Mcc_vm.Vm.output;
  Printf.printf "(%s)\n" (Mcc_vm.Vm.status_to_string run.Mcc_vm.Vm.status)
