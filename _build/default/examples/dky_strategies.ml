(* The Doesn't-Know-Yet strategies side by side (paper §2.2).

     dune exec examples/dky_strategies.exe

   Compiles one synthetic module under all four DKY strategies at several
   simulated processor counts, printing compile times, DKY blockage
   counts and the identifier-lookup statistics for the recommended
   skeptical strategy.  Every configuration produces byte-identical
   object code — only timing differs. *)

open Mcc_core
open Mcc_synth
module Ls = Mcc_sem.Lookup_stats

let () =
  let store = Suite.program 20 in
  Printf.printf "module %s: %d bytes, %s interfaces\n\n"
    (Source_store.main_name store)
    (String.length (Source_store.main_src store))
    (string_of_int (List.length (Source_store.def_names store)));
  Printf.printf "%-12s" "strategy";
  List.iter (fun n -> Printf.printf "  N=%d      " n) [ 1; 2; 4; 8 ];
  Printf.printf "  DKY@8  dup-searches@8\n";
  let reference = ref "" in
  List.iter
    (fun strategy ->
      Printf.printf "%-12s" (Mcc_sem.Symtab.dky_name strategy);
      let last = ref None in
      List.iter
        (fun procs ->
          let c = Driver.compile ~config:{ Driver.default_config with Driver.strategy; procs } store in
          Printf.printf "  %7.2fs" c.Driver.sim.Mcc_sched.Des_engine.end_seconds;
          last := Some c)
        [ 1; 2; 4; 8 ];
      let c = Option.get !last in
      Printf.printf "  %5d  %5d\n" (Ls.dky_blocks c.Driver.stats) (Ls.duplicate_searches c.Driver.stats);
      let d = Mcc_codegen.Cunit.disassemble c.Driver.program in
      if !reference = "" then reference := d
      else assert (String.equal !reference d))
    Mcc_sem.Symtab.all_concurrent;
  print_endline "\n(all four strategies produced byte-identical object code)\n";
  print_endline "--- identifier lookup statistics, skeptical handling at 8 processors ---";
  let c = Driver.compile ~config:Driver.default_config store in
  print_endline (Mcc_stats.Tables.table2 c.Driver.stats)
