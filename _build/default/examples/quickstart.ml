(* Quickstart: compile a Modula-2+ module with the concurrent compiler
   and execute the result.

     dune exec examples/quickstart.exe

   The compilation runs on the deterministic simulated multiprocessor (8
   processors by default): the source splits into streams — the main
   module, one per procedure, one per imported interface — which compile
   concurrently and merge into a linked program for the bundled VM. *)

open Mcc_core

let mathlib_def =
  {|DEFINITION MODULE MathLib;
CONST Iterations = 10;
PROCEDURE Square(x: INTEGER): INTEGER;
END MathLib.
|}

(* The interface's implementation would normally live in MathLib.mod; for
   a runnable single-module example we only use its constant. *)

let main_mod =
  {|IMPLEMENTATION MODULE Quickstart;
FROM MathLib IMPORT Iterations;

VAR total: INTEGER;

PROCEDURE Square(x: INTEGER): INTEGER;
BEGIN
  RETURN x * x
END Square;

PROCEDURE SumOfSquares(n: INTEGER): INTEGER;
VAR i, s: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO n DO s := s + Square(i) END;
  RETURN s
END SumOfSquares;

BEGIN
  total := SumOfSquares(Iterations);
  WriteString("sum of squares 1..");
  WriteInt(Iterations);
  WriteString(" = ");
  WriteInt(total);
  WriteLn
END Quickstart.
|}

let () =
  let store =
    Source_store.make ~main_name:"Quickstart" ~main_src:main_mod
      ~defs:[ ("MathLib", mathlib_def) ] ()
  in
  print_endline "--- concurrent compilation (8 simulated processors, skeptical handling) ---";
  let r = Driver.compile ~config:Driver.default_config store in
  List.iter (fun d -> print_endline (Mcc_m2.Diag.to_string d)) r.Driver.diags;
  Printf.printf "ok: %b | streams: %d (main + %d procedures + %d interfaces) | tasks: %d\n"
    r.Driver.ok r.Driver.n_streams r.Driver.n_proc_streams r.Driver.n_def_streams r.Driver.n_tasks;
  Printf.printf "virtual compile time: %.3f s | code units: %s\n"
    r.Driver.sim.Mcc_sched.Des_engine.end_seconds
    (String.concat ", " (Mcc_codegen.Cunit.unit_keys r.Driver.program));
  print_endline "--- executing the compiled program ---";
  let run = Mcc_vm.Vm.run r.Driver.program in
  print_string run.Mcc_vm.Vm.output;
  Printf.printf "(%s after %d VM steps)\n" (Mcc_vm.Vm.status_to_string run.Mcc_vm.Vm.status)
    run.Mcc_vm.Vm.steps
