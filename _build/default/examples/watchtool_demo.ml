(* WatchTool: watch the concurrent compiler at work (paper Figs. 4/7).

     dune exec examples/watchtool_demo.exe

   Compiles a mid-size synthetic module on 8 simulated processors and
   renders the processor-activity view: lexing at the left, interface and
   declaration analysis in the middle, statement analysis/code generation
   dominating the right — with the mid-compilation lull the paper
   describes in §4.4.  Also prints the speedup curve for the module. *)

open Mcc_core
open Mcc_synth
open Mcc_stats

let () =
  let store = Suite.program 24 in
  Printf.printf "module %s (%d bytes)\n\n" (Source_store.main_name store)
    (String.length (Source_store.main_src store));
  let c = Driver.compile ~config:Driver.default_config store in
  Printf.printf "%d streams, %d tasks, %.2f virtual seconds on 8 processors\n\n"
    c.Driver.n_streams c.Driver.n_tasks c.Driver.sim.Mcc_sched.Des_engine.end_seconds;
  print_endline Watchtool.legend;
  print_endline (Watchtool.render c.Driver.sim.Mcc_sched.Des_engine.trace ~procs:8);
  print_endline (Watchtool.summary c.Driver.sim.Mcc_sched.Des_engine.trace ~procs:8);
  print_endline "\n--- self-relative speedup ---";
  let sweep = Speedup.sweep store in
  List.iter
    (fun n ->
      let sp = Speedup.speedup sweep n in
      Printf.printf "  %d procs |%-60s| %.2f\n" n (String.make (int_of_float (sp *. 8.0)) '#') sp)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]
