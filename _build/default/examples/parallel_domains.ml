(* Real shared-memory parallelism: the same compiler task graph on OCaml
   domains (the analogue of the paper's Topaz threads on the Firefly).

     dune exec examples/parallel_domains.exe

   The simulated engine reproduces the paper's *measurements*; this
   engine demonstrates that the task/event machinery is genuinely
   thread-safe: lexing, splitting, importing, parsing and code generation
   race on real domains and still produce a program byte-identical to the
   sequential compiler's.  (Wall-clock speedup depends on the host's core
   count.) *)

open Mcc_core
open Mcc_synth

let () =
  let store = Suite.program 15 in
  Printf.printf "module %s (%d bytes, %d interfaces)\n\n" (Source_store.main_name store)
    (String.length (Source_store.main_src store))
    (List.length (Source_store.def_names store));
  let seq = Seq_driver.compile store in
  Printf.printf "sequential compiler: ok=%b, %d code units\n" seq.Seq_driver.ok
    (List.length (Mcc_codegen.Cunit.unit_keys seq.Seq_driver.program));
  let reference = Mcc_codegen.Cunit.disassemble seq.Seq_driver.program in
  List.iter
    (fun domains ->
      let d = Driver.compile_domains ~domains store in
      let same = String.equal reference (Mcc_codegen.Cunit.disassemble d.Driver.d_program) in
      Printf.printf
        "domains=%d: ok=%b, %d tasks executed in %.4f s wall, output identical to sequential: %b\n"
        domains d.Driver.d_ok d.Driver.d_tasks_run d.Driver.d_wall_seconds same;
      assert same)
    [ 1; 2; 4; 8 ];
  print_endline "\nevery run produced byte-identical object code: the merge-by-key design makes";
  print_endline "compiler output independent of scheduling (paper section 2.1)."
