(* A complete Modula-2+ program through the whole pipeline: concurrent
   compilation, linking, and execution — exercising records, pointers,
   sets, open arrays, WITH, CASE and the Modula-2+ TRY/RAISE extension.

     dune exec examples/run_program.exe *)

open Mcc_core

let src =
  {|IMPLEMENTATION MODULE Demo;

CONST Size = 10;

TYPE List = POINTER TO Node;
TYPE Node = RECORD value: INTEGER; next: List END;
TYPE Stats = RECORD count, sum, max: INTEGER END;

VAR primesMask: BITSET;
VAR numbers: ARRAY [0..9] OF INTEGER;
VAR overflow: EXCEPTION;

PROCEDURE Sieve(limit: INTEGER): BITSET;
VAR s: BITSET; i, j: INTEGER;
BEGIN
  s := {};
  FOR i := 2 TO limit DO INCL(s, i) END;
  FOR i := 2 TO limit DO
    IF i IN s THEN
      j := i + i;
      WHILE j <= limit DO EXCL(s, j); j := j + i END
    END
  END;
  RETURN s
END Sieve;

PROCEDURE Push(VAR head: List; v: INTEGER);
VAR n: List;
BEGIN
  NEW(n); n^.value := v; n^.next := head; head := n
END Push;

PROCEDURE Summarize(a: ARRAY OF INTEGER): Stats;
VAR st: Stats; i: INTEGER;
BEGIN
  WITH st DO
    count := HIGH(a) + 1; sum := 0; max := a[0];
    FOR i := 0 TO HIGH(a) DO
      sum := sum + a[i];
      IF a[i] > max THEN max := a[i] END
    END
  END;
  IF st.sum > 1000 THEN RAISE overflow END;
  RETURN st
END Summarize;

PROCEDURE Classify(n: INTEGER): CHAR;
BEGIN
  CASE n MOD 4 OF
    0: RETURN 'z'
  | 1, 3: RETURN 'o'
  ELSE RETURN 'e'
  END
END Classify;

VAR head: List; i: INTEGER; st: Stats;

BEGIN
  (* primes below 32 via a sieve on a set *)
  primesMask := Sieve(31);
  WriteString("primes: ");
  FOR i := 2 TO 31 DO
    IF i IN primesMask THEN WriteInt(i); WriteChar(' ') END
  END;
  WriteLn;

  (* a linked list built with NEW *)
  head := NIL;
  FOR i := 1 TO 5 DO Push(head, i * i) END;
  WriteString("list: ");
  WHILE head # NIL DO WriteInt(head^.value); WriteChar(' '); head := head^.next END;
  WriteLn;

  (* statistics over an open-array argument, with exception handling *)
  FOR i := 0 TO Size - 1 DO numbers[i] := (i + 1) * 7 END;
  TRY
    st := Summarize(numbers);
    WriteString("count="); WriteInt(st.count);
    WriteString(" sum="); WriteInt(st.sum);
    WriteString(" max="); WriteInt(st.max); WriteLn
  EXCEPT overflow:
    WriteString("overflow!"); WriteLn
  END;

  WriteString("classes: ");
  FOR i := 1 TO 8 DO WriteChar(Classify(i)) END;
  WriteLn
END Demo.
|}

let () =
  let store = Source_store.make ~main_name:"Demo" ~main_src:src ~defs:[] () in
  let r = Driver.compile ~config:Driver.default_config store in
  List.iter (fun d -> print_endline (Mcc_m2.Diag.to_string d)) r.Driver.diags;
  if not r.Driver.ok then exit 1;
  Printf.printf "compiled %d streams into %d code units in %.3f virtual s\n\n" r.Driver.n_streams
    (List.length (Mcc_codegen.Cunit.unit_keys r.Driver.program))
    r.Driver.sim.Mcc_sched.Des_engine.end_seconds;
  let run = Mcc_vm.Vm.run r.Driver.program in
  print_string run.Mcc_vm.Vm.output;
  Printf.printf "(%s)\n" (Mcc_vm.Vm.status_to_string run.Mcc_vm.Vm.status)
