(* Suite calibration: per-program Table-1 attributes and quartile check. *)
open Mcc_core
open Mcc_synth

let () =
  let times = ref [] in
  List.iteri
    (fun rank store ->
      let seq = Seq_driver.compile store in
      let conc = Driver.compile ~config:{ Driver.default_config with procs = 8 } store in
      let t1 =
        (Driver.compile ~config:{ Driver.default_config with procs = 1 } store).Driver.sim
          .Mcc_sched.Des_engine.end_time
      in
      let secs = Mcc_sched.Costs.to_seconds t1 in
      times := secs :: !times;
      Printf.printf
        "%2d %-5s mod=%7dB seq=%7.2fs c1=%7.2fs sp8=%5.2f defs=%3d procs=%3d streams=%3d ok=%b dky=%d\n%!"
        rank (Source_store.main_name store)
        (String.length (Source_store.main_src store))
        (Mcc_sched.Costs.to_seconds seq.Seq_driver.cost_units)
        secs
        (t1 /. conc.Driver.sim.Mcc_sched.Des_engine.end_time)
        conc.Driver.n_def_streams conc.Driver.n_proc_streams conc.Driver.n_streams
        (seq.Seq_driver.ok && conc.Driver.ok)
        (Mcc_sem.Lookup_stats.dky_blocks conc.Driver.stats);
      if not conc.Driver.ok then
        List.iteri (fun i d -> if i < 5 then print_endline (Mcc_m2.Diag.to_string d)) conc.Driver.diags)
    (Suite.all ());
  let ts = List.sort compare !times in
  let q lo hi = List.length (List.filter (fun t -> t >= lo && t < hi) ts) in
  Printf.printf "quartile bands: <5s:%d 5-10:%d 10-30:%d 30+:%d\n" (q 0.0 5.0) (q 5.0 10.0) (q 10.0 30.0) (q 30.0 1000.0);
  (* Synth best case *)
  let store = Suite.synth_best () in
  let t1 = (Driver.compile ~config:{ Driver.default_config with procs = 1 } store).Driver.sim.Mcc_sched.Des_engine.end_time in
  let c8 = Driver.compile ~config:{ Driver.default_config with procs = 8 } store in
  Printf.printf "Synth: ok=%b sp8=%.2f dky=%d t1=%.1fs\n" c8.Driver.ok
    (t1 /. c8.Driver.sim.Mcc_sched.Des_engine.end_time) (Mcc_sem.Lookup_stats.dky_blocks c8.Driver.stats)
    (Mcc_sched.Costs.to_seconds t1)
