bin/m2c.ml: Arg Array Cmd Cmdliner Driver Filename Format List M2lib Mcc_codegen Mcc_core Mcc_m2 Mcc_sched Mcc_sem Mcc_stats Mcc_vm Printf Project Source_store Term
