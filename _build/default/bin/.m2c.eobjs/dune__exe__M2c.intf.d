bin/m2c.mli:
