bin/suite_cal.mli:
