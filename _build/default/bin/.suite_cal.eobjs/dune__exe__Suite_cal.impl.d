bin/suite_cal.ml: Driver List Mcc_core Mcc_m2 Mcc_sched Mcc_sem Mcc_synth Printf Seq_driver Source_store String Suite
