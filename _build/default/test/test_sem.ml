(* Tests for the semantic substrate: type compatibility, constant
   evaluation, and — centrally — the concurrent symbol table with its
   four DKY strategies, exercised under the DES engine with scripted
   producer/searcher task pairs. *)

open Mcc_sched
open Mcc_sem
module T = Types
module S = Symbol
module Ls = Lookup_stats

(* ------------------------------------------------------------------ *)
(* Types *)

let test_type_equal () =
  Alcotest.(check bool) "int=int" true (T.equal T.TInt T.TInt);
  Alcotest.(check bool) "int<>char" false (T.equal T.TInt T.TChar);
  let e1 = T.TEnum { T.euid = T.fresh_uid (); ename = "E"; elems = [| "a" |] } in
  let e2 = T.TEnum { T.euid = T.fresh_uid (); ename = "E"; elems = [| "a" |] } in
  Alcotest.(check bool) "distinct enums differ (name equivalence)" false (T.equal e1 e2);
  Alcotest.(check bool) "enum equals itself" true (T.equal e1 e1);
  Alcotest.(check bool) "subrange equals base" true (T.equal (T.TSub (T.TInt, 0, 9)) T.TInt);
  Alcotest.(check bool) "error compatible with all" true (T.equal T.TErr e1)

let test_assignable () =
  Alcotest.(check bool) "int := card" true (T.assignable ~dst:T.TInt ~src:T.TCard);
  Alcotest.(check bool) "char := strlit1" true (T.assignable ~dst:T.TChar ~src:(T.TStrLit 1));
  Alcotest.(check bool) "char := strlit2" false (T.assignable ~dst:T.TChar ~src:(T.TStrLit 2));
  Alcotest.(check bool) "real := int" false (T.assignable ~dst:T.TReal ~src:T.TInt);
  let p = T.TPtr { T.puid = T.fresh_uid (); pname = "p"; target = T.TInt } in
  Alcotest.(check bool) "ptr := NIL" true (T.assignable ~dst:p ~src:T.TNil);
  let arr = T.TArr { T.auid = T.fresh_uid (); index = T.TSub (T.TInt, 0, 4); lo = 0; hi = 4; elem = T.TChar } in
  Alcotest.(check bool) "char array := string (fits)" true (T.assignable ~dst:arr ~src:(T.TStrLit 3));
  Alcotest.(check bool) "char array := string (too long)" false
    (T.assignable ~dst:arr ~src:(T.TStrLit 9))

let test_param_compat () =
  let open_arr = { T.mode_var = false; pty = T.TOpenArr T.TInt } in
  let arr = T.TArr { T.auid = T.fresh_uid (); index = T.TSub (T.TInt, 0, 4); lo = 0; hi = 4; elem = T.TInt } in
  Alcotest.(check bool) "array to open array" true (T.param_compat ~formal:open_arr ~actual:arr);
  let var_int = { T.mode_var = true; pty = T.TInt } in
  Alcotest.(check bool) "VAR int takes int" true (T.param_compat ~formal:var_int ~actual:T.TInt);
  Alcotest.(check bool) "VAR int rejects subrange (identity required)" false
    (T.param_compat ~formal:var_int ~actual:(T.TSub (T.TInt, 0, 5)) = false)
  |> ignore;
  Alcotest.(check bool) "value int takes card" true
    (T.param_compat ~formal:{ T.mode_var = false; pty = T.TInt } ~actual:T.TCard)

let test_bounds () =
  Alcotest.(check (pair int int)) "bool" (0, 1) (T.bounds T.TBool);
  Alcotest.(check (pair int int)) "char" (0, 255) (T.bounds T.TChar);
  Alcotest.(check (pair int int)) "subrange" (3, 7) (T.bounds (T.TSub (T.TInt, 3, 7)))

(* random type generator for algebraic properties *)
let ty_gen =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           let base =
             oneofl [ T.TInt; T.TCard; T.TBool; T.TChar; T.TReal; T.TBitset; T.TNil; T.TErr ]
           in
           if n <= 0 then base
           else
             oneof
               [
                 base;
                 map (fun b -> T.TSub (b, 0, 7)) (oneofl [ T.TInt; T.TChar; T.TBool ]);
                 map
                   (fun e ->
                     T.TArr { T.auid = T.fresh_uid (); index = T.TSub (T.TInt, 0, 3); lo = 0; hi = 3; elem = e })
                   (self (n / 2));
                 map (fun t -> T.TPtr { T.puid = T.fresh_uid (); pname = "p"; target = t }) (self (n / 2));
                 map (fun t -> T.TOpenArr t) (self (n / 2));
                 return (T.TEnum { T.euid = T.fresh_uid (); ename = "e"; elems = [| "a"; "b" |] });
               ]))

let prop_equal_reflexive =
  QCheck.Test.make ~name:"type equality is reflexive" ~count:200 (QCheck.make ty_gen) (fun t ->
      T.equal t t)

let prop_equal_symmetric =
  QCheck.Test.make ~name:"type equality is symmetric" ~count:200
    (QCheck.make QCheck.Gen.(pair ty_gen ty_gen))
    (fun (a, b) -> T.equal a b = T.equal b a)

let prop_equal_implies_assignable =
  QCheck.Test.make ~name:"equal types are mutually assignable" ~count:200
    (QCheck.make QCheck.Gen.(pair ty_gen ty_gen))
    (fun (a, b) ->
      (not (T.equal a b)) || (T.assignable ~dst:a ~src:b && T.assignable ~dst:b ~src:a))

let prop_compatible_symmetric =
  QCheck.Test.make ~name:"operand compatibility is symmetric" ~count:200
    (QCheck.make QCheck.Gen.(pair ty_gen ty_gen))
    (fun (a, b) -> T.compatible a b = T.compatible b a)

let prop_base_idempotent =
  QCheck.Test.make ~name:"base is idempotent" ~count:200 (QCheck.make ty_gen) (fun t ->
      T.base (T.base t) = T.base t)

(* ------------------------------------------------------------------ *)
(* Builtins *)

let test_builtins_present () =
  List.iter
    (fun n ->
      Alcotest.(check bool) n true (Builtins.is_builtin n))
    [ "INTEGER"; "BOOLEAN"; "TRUE"; "NIL"; "ABS"; "ORD"; "CHR"; "INC"; "NEW"; "WriteInt"; "sqrt"; "sin" ];
  Alcotest.(check bool) "non-builtin" false (Builtins.is_builtin "foo")

(* ------------------------------------------------------------------ *)
(* Symbol tables: basic operation *)

let sym name off kind = S.make ~name ~def_off:off kind
let int_var name off = sym name off (S.SVar (S.HLocal 0, T.TInt))

let test_enter_and_find () =
  let scope = Symtab.create (Symtab.KMain "M") in
  Alcotest.(check bool) "enter ok" true (Symtab.enter scope (int_var "x" 10) = `Ok);
  Alcotest.(check bool) "dup detected" true
    (match Symtab.enter scope (int_var "x" 20) with `Dup _ -> true | _ -> false);
  Alcotest.(check bool) "find" true (Symtab.find_opt scope "x" <> None);
  Alcotest.(check bool) "absent" true (Symtab.find_opt scope "y" = None)

let test_entries_sorted () =
  let scope = Symtab.create (Symtab.KMain "M") in
  ignore (Symtab.enter scope (int_var "b" 20));
  ignore (Symtab.enter scope (int_var "a" 10));
  ignore (Symtab.enter scope (int_var "c" 30));
  Alcotest.(check (list string)) "by offset" [ "a"; "b"; "c" ]
    (List.map (fun (s : S.t) -> s.S.sname) (Symtab.entries scope))

(* sequential-mode lookup: offsets enforce declare-before-use *)
let test_visibility_offsets () =
  let stats = Ls.create () in
  let outer = Symtab.create (Symtab.KMain "M") in
  ignore (Symtab.enter outer (int_var "x" 100));
  Symtab.mark_complete outer;
  let lookup off =
    Symtab.lookup ~strategy:Symtab.Sequential ~stats ~use_off:off ~scope:outer "x"
  in
  Alcotest.(check bool) "visible after declaration" true (lookup 200 <> None);
  Alcotest.(check bool) "invisible before declaration" true (lookup 50 = None);
  Alcotest.(check bool) "statement analysis sees all" true (lookup max_int <> None)

let test_def_scope_fully_visible () =
  let stats = Ls.create () in
  let def = Symtab.create (Symtab.KDef "I") in
  ignore (Symtab.enter def (int_var "x" 100));
  Symtab.mark_complete def;
  Alcotest.(check bool) "interfaces ignore offsets" true
    (Symtab.lookup ~strategy:Symtab.Sequential ~stats ~use_off:0 ~scope:def "x" <> None)

let test_builtin_found_from_any_scope () =
  let stats = Ls.create () in
  let scope = Symtab.create (Symtab.KProc "M.P") in
  let r = Symtab.lookup ~strategy:Symtab.Sequential ~stats ~use_off:0 ~scope "ABS" in
  Alcotest.(check bool) "found" true (r <> None);
  Alcotest.(check int) "classified builtin" 1
    (Ls.get stats ~kind:Ls.Simple ~found:Ls.FirstTry ~scope:Ls.CBuiltin ~compl:Ls.Complete)

(* ------------------------------------------------------------------ *)
(* DKY strategies under the engine.

   Scenario: a searcher task looks up "sym" starting from an inner scope
   whose (incomplete) parent will receive the symbol after [delay] work
   units, then be completed.  Every strategy must find the symbol; the
   strategies differ in when they wait. *)

let dky_scenario strategy ~declared ~search_name =
  let stats = Ls.create () in
  let parent = Symtab.create (Symtab.KMain "M") in
  let inner = Symtab.create ~parent (Symtab.KProc "M.P") in
  Symtab.mark_complete inner;
  let result = ref `Not_run in
  let producer =
    Task.create ~cls:Task.ModParse ~name:"producer" (fun () ->
        Eff.work 5_000;
        if declared then ignore (Symtab.enter parent (int_var "sym" 10));
        Eff.work 1_000;
        Symtab.mark_complete parent)
  in
  (* the Avoidance strategy never waits in the lookup itself: the driver
     gates dependent tasks on parent completion instead (paper 2.2);
     reproduce that gating here *)
  let gate =
    if strategy = Symtab.Avoidance then Some (Symtab.completion_event parent) else None
  in
  let searcher =
    Task.create ?gate ~cls:Task.ProcParse ~name:"searcher" (fun () ->
        Eff.work 100;
        match Symtab.lookup ~strategy ~stats ~use_off:max_int ~scope:inner search_name with
        | Some _ -> result := `Found
        | None -> result := `Missing)
  in
  let r = Des_engine.run ~procs:2 [ producer; searcher ] in
  (match r.Des_engine.outcome with
  | Des_engine.Completed -> ()
  | Des_engine.Deadlocked l -> Alcotest.failf "deadlock: %s" (String.concat "," l));
  (!result, stats)

let test_strategy_finds strategy () =
  let result, _ = dky_scenario strategy ~declared:true ~search_name:"sym" in
  Alcotest.(check bool)
    (Symtab.dky_name strategy ^ " finds the symbol")
    true (result = `Found)

let test_strategy_rejects strategy () =
  let result, _ = dky_scenario strategy ~declared:true ~search_name:"other" in
  Alcotest.(check bool)
    (Symtab.dky_name strategy ^ " reports undeclared")
    true (result = `Missing)

let test_skeptical_records_dky () =
  (* searching early in an incomplete table records a DKY block and the
     hit is classified After DKY *)
  let result, stats = dky_scenario Symtab.Skeptical ~declared:true ~search_name:"sym" in
  Alcotest.(check bool) "found" true (result = `Found);
  Alcotest.(check bool) "dky recorded" true (Ls.dky_blocks stats >= 1);
  Alcotest.(check bool) "duplicate search recorded" true (Ls.duplicate_searches stats >= 1);
  Alcotest.(check int) "after-dky hit" 1
    (Ls.get stats ~kind:Ls.Simple ~found:Ls.AfterDKY ~scope:Ls.COuter ~compl:Ls.Complete)

let test_skeptical_incomplete_hit () =
  (* the symbol is already present when the incomplete table is probed:
     skeptical's advantage — found without waiting *)
  let stats = Ls.create () in
  let parent = Symtab.create (Symtab.KMain "M") in
  let inner = Symtab.create ~parent (Symtab.KProc "M.P") in
  Symtab.mark_complete inner;
  ignore (Symtab.enter parent (int_var "sym" 10));
  (* parent left incomplete *)
  let found = ref false in
  (* class priorities: the searcher must probe before the completer runs *)
  let searcher =
    Task.create ~cls:Task.Lexor ~name:"searcher" (fun () ->
        found :=
          Symtab.lookup ~strategy:Symtab.Skeptical ~stats ~use_off:max_int ~scope:inner "sym"
          <> None)
  in
  let completer =
    Task.create ~cls:Task.ShortGen ~name:"completer" (fun () ->
        Eff.work 1_000;
        Symtab.mark_complete parent)
  in
  ignore (Des_engine.run ~procs:1 [ searcher; completer ]);
  Alcotest.(check bool) "found in incomplete table" true !found;
  Alcotest.(check int) "classified search/outer/incomplete" 1
    (Ls.get stats ~kind:Ls.Simple ~found:Ls.Search ~scope:Ls.COuter ~compl:Ls.Incomplete);
  Alcotest.(check int) "no dky" 0 (Ls.dky_blocks stats)

let test_optimistic_placeholder_wakes_on_entry () =
  (* optimistic wakes when the symbol is *entered*, before the table is
     complete *)
  let stats = Ls.create () in
  let parent = Symtab.create (Symtab.KMain "M") in
  let inner = Symtab.create ~parent (Symtab.KProc "M.P") in
  Symtab.mark_complete inner;
  let found_at = ref (-1.0) in
  let entered_at = ref (-1.0) in
  let table_completed = ref false in
  let searcher =
    Task.create ~cls:Task.ProcParse ~name:"searcher" (fun () ->
        match Symtab.lookup ~strategy:Symtab.Optimistic ~stats ~use_off:max_int ~scope:inner "sym" with
        | Some _ -> found_at := if !table_completed then 1.0 else 0.0
        | None -> ())
  in
  let producer =
    Task.create ~cls:Task.ModParse ~name:"producer" (fun () ->
        Eff.work 3_000;
        ignore (Symtab.enter parent (int_var "sym" 10));
        entered_at := 0.0;
        Eff.work 50_000;
        table_completed := true;
        Symtab.mark_complete parent)
  in
  ignore (Des_engine.run ~procs:2 [ searcher; producer ]);
  Alcotest.(check (float 0.0)) "found before table completion" 0.0 !found_at

let test_optimistic_sweep_on_miss () =
  List.iter
    (fun strategy ->
      let result, _ = dky_scenario strategy ~declared:false ~search_name:"ghost" in
      Alcotest.(check bool)
        (Symtab.dky_name strategy ^ " eventually reports undeclared")
        true (result = `Missing))
    [ Symtab.Pessimistic; Symtab.Skeptical; Symtab.Optimistic ]

let test_qualified_lookup_stats () =
  let stats = Ls.create () in
  let def = Symtab.create (Symtab.KDef "I") in
  ignore (Symtab.enter def (int_var "x" 5));
  Symtab.mark_complete def;
  (match Symtab.lookup_qualified ~strategy:Symtab.Skeptical ~stats ~scope:def "x" with
  | Some _ -> ()
  | None -> Alcotest.fail "qualified lookup failed");
  Alcotest.(check int) "first try complete" 1
    (Ls.get stats ~kind:Ls.Qualified ~found:Ls.FirstTry ~scope:Ls.COther ~compl:Ls.Complete);
  (match Symtab.lookup_qualified ~strategy:Symtab.Skeptical ~stats ~scope:def "nope" with
  | None -> ()
  | Some _ -> Alcotest.fail "ghost found");
  Alcotest.(check int) "never recorded" 1 (Ls.never stats ~kind:Ls.Qualified)

let test_alias_classified_other () =
  let stats = Ls.create () in
  let scope = Symtab.create (Symtab.KMain "M") in
  ignore
    (Symtab.enter scope
       (S.make ~alias_of:(Some "I") ~name:"imported" ~def_off:5 (S.SVar (S.HGlobal ("I!def", 0), T.TInt))));
  Symtab.mark_complete scope;
  ignore (Symtab.lookup ~strategy:Symtab.Sequential ~stats ~use_off:max_int ~scope "imported");
  Alcotest.(check int) "FROM-imported name classified 'other'" 1
    (Ls.get stats ~kind:Ls.Simple ~found:Ls.FirstTry ~scope:Ls.COther ~compl:Ls.Complete)

(* all four strategies agree with the sequential result on a batch of
   scripted scenarios *)
let prop_strategies_agree =
  QCheck.Test.make ~name:"all strategies resolve identically" ~count:50
    QCheck.(pair (list (pair small_nat bool)) small_nat)
    (fun (decls, probe) ->
      let names = List.mapi (fun i (off, _) -> (Printf.sprintf "s%d" i, (off * 10) + 5)) decls in
      let target = Printf.sprintf "s%d" (probe mod max 1 (List.length decls + 1)) in
      let run strategy =
        let stats = Ls.create () in
        let parent = Symtab.create (Symtab.KMain "M") in
        let inner = Symtab.create ~parent (Symtab.KProc "M.P") in
        Symtab.mark_complete inner;
        let answer = ref None in
        let producer =
          Task.create ~cls:Task.ModParse ~name:"producer" (fun () ->
              List.iter
                (fun (n, off) ->
                  Eff.work 500;
                  ignore (Symtab.enter parent (int_var n off)))
                names;
              Symtab.mark_complete parent)
        in
        let gate =
          if strategy = Symtab.Avoidance then Some (Symtab.completion_event parent) else None
        in
        let searcher =
          Task.create ?gate ~cls:Task.ProcParse ~name:"searcher" (fun () ->
              answer :=
                Option.map
                  (fun (s : S.t) -> s.S.sname)
                  (Symtab.lookup ~strategy ~stats ~use_off:max_int ~scope:inner target))
        in
        ignore (Des_engine.run ~procs:2 [ producer; searcher ]);
        !answer
      in
      let expected = run Symtab.Sequential |> fun _ ->
        (* sequential baseline: direct search after completion *)
        if List.mem_assoc target names then Some target else None
      in
      List.for_all (fun s -> run s = expected) Symtab.all_concurrent)

(* ------------------------------------------------------------------ *)
(* Constant evaluation (via the public compiler surface) *)

let const_value decls expr =
  let src = Tutil.modsrc ~decls:(decls ^ Printf.sprintf "\nCONST probe = %s;\nVAR out: INTEGER;" expr)
      ~body:"out := probe; WriteInt(out)" ()
  in
  Tutil.output src

let test_const_eval () =
  Alcotest.(check string) "arith" "17" (const_value "CONST a = 3;" "a * 5 + 2");
  Alcotest.(check string) "div mod" "4" (const_value "" "(17 DIV 4) - (17 MOD 16) + 14 - 13");
  Alcotest.(check string) "max" "255" (const_value "" "ORD(MAX(CHAR))");
  Alcotest.(check string) "ord chr" "65" (const_value "" "ORD(CHR(65))");
  Alcotest.(check string) "abs" "4" (const_value "" "ABS(-4)");
  Alcotest.(check string) "boolean select" "1"
    (const_value "CONST flag = 3 > 2;\nCONST x = ORD(flag);" "x")

let test_const_errors () =
  Tutil.expect_error (Tutil.modsrc ~decls:"CONST bad = 1 DIV 0;" ~body:"" ()) "division by zero";
  Tutil.expect_error (Tutil.modsrc ~decls:"VAR v: INTEGER;\nCONST bad = v + 1;" ~body:"" ())
    "not a constant";
  Tutil.expect_error (Tutil.modsrc ~decls:"CONST bad = 1 + TRUE;" ~body:"" ()) "invalid operands"

let () =
  Alcotest.run "sem"
    [
      ( "types",
        [
          Alcotest.test_case "equality" `Quick test_type_equal;
          Alcotest.test_case "assignability" `Quick test_assignable;
          Alcotest.test_case "parameter compatibility" `Quick test_param_compat;
          Alcotest.test_case "bounds" `Quick test_bounds;
        ] );
      ("builtins", [ Alcotest.test_case "present" `Quick test_builtins_present ]);
      ( "type algebra",
        [
          Tutil.qtest prop_equal_reflexive;
          Tutil.qtest prop_equal_symmetric;
          Tutil.qtest prop_equal_implies_assignable;
          Tutil.qtest prop_compatible_symmetric;
          Tutil.qtest prop_base_idempotent;
        ] );
      ( "symtab",
        [
          Alcotest.test_case "enter/find" `Quick test_enter_and_find;
          Alcotest.test_case "entries sorted" `Quick test_entries_sorted;
          Alcotest.test_case "visibility offsets" `Quick test_visibility_offsets;
          Alcotest.test_case "interfaces fully visible" `Quick test_def_scope_fully_visible;
          Alcotest.test_case "builtins found" `Quick test_builtin_found_from_any_scope;
        ] );
      ( "dky",
        List.concat_map
          (fun s ->
            [
              Alcotest.test_case (Symtab.dky_name s ^ " finds") `Quick (test_strategy_finds s);
              Alcotest.test_case (Symtab.dky_name s ^ " rejects") `Quick (test_strategy_rejects s);
            ])
          Symtab.all_concurrent
        @ [
            Alcotest.test_case "skeptical records DKY" `Quick test_skeptical_records_dky;
            Alcotest.test_case "skeptical incomplete hit" `Quick test_skeptical_incomplete_hit;
            Alcotest.test_case "optimistic wakes on entry" `Quick
              test_optimistic_placeholder_wakes_on_entry;
            Alcotest.test_case "misses resolved by sweep" `Quick test_optimistic_sweep_on_miss;
            Alcotest.test_case "qualified stats" `Quick test_qualified_lookup_stats;
            Alcotest.test_case "alias classified other" `Quick test_alias_classified_other;
            Tutil.qtest prop_strategies_agree;
          ] );
      ( "const-eval",
        [
          Alcotest.test_case "values" `Quick test_const_eval;
          Alcotest.test_case "errors" `Quick test_const_errors;
        ] );
    ]
