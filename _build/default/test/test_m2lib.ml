(* Tests for the bundled Modula-2+ standard library: each module is
   compiled by the whole-program driver and exercised in the VM,
   including edge cases. *)

open Tutil
open Mcc_core

let run_with_lib ~imports ~decls ~body_src expected =
  let main = modsrc ~name:"T" ~imports ~decls ~body:body_src () in
  let store = M2lib.augment (store ~name:"T" main) in
  let r = Project.compile store in
  if not r.Project.ok then
    Alcotest.failf "library program failed:\n%s"
      (String.concat "\n" (List.map Mcc_m2.Diag.to_string r.Project.diags));
  let res = Mcc_vm.Vm.run r.Project.program in
  (match res.Mcc_vm.Vm.status with
  | Mcc_vm.Vm.Finished -> ()
  | s -> Alcotest.failf "did not finish: %s" (Mcc_vm.Vm.status_to_string s));
  Alcotest.(check string) "output" expected res.Mcc_vm.Vm.output

let test_strings () =
  run_with_lib ~imports:"IMPORT Strings;" ~decls:"VAR buf: ARRAY [0..9] OF CHAR;"
    ~body_src:
      {|buf := "hi";
WriteInt(Strings.Length(buf)); WriteChar(' ');
WriteInt(Strings.Length("hello world")); WriteChar(' ');
IF Strings.Equal("same", "same") THEN WriteString("eq ") END;
IF NOT Strings.Equal("a", "ab") THEN WriteString("ne ") END;
IF Strings.IsDigit('7') AND NOT Strings.IsDigit('x') THEN WriteString("dig ") END;
IF Strings.IsLetter('q') AND NOT Strings.IsLetter('!') THEN WriteString("let ") END;
WriteChar(Strings.ToUpper('m'))|}
    "2 11 eq ne dig let M"

let test_mathlib () =
  run_with_lib ~imports:"FROM MathLib IMPORT Power, Gcd, Min2, Max2, SqrtI;" ~decls:""
    ~body_src:
      {|WriteInt(Power(2, 0)); WriteChar(' ');
WriteInt(Power(5, 3)); WriteChar(' ');
WriteInt(Gcd(0, 9)); WriteChar(' ');
WriteInt(Gcd(-12, 18)); WriteChar(' ');
WriteInt(Min2(3, -4)); WriteChar(' ');
WriteInt(Max2(3, -4)); WriteChar(' ');
WriteInt(SqrtI(0)); WriteChar(' ');
WriteInt(SqrtI(24)); WriteChar(' ');
WriteInt(SqrtI(25))|}
    "1 125 9 6 -4 3 0 4 5"

let test_bits () =
  run_with_lib ~imports:"IMPORT Bits;" ~decls:"VAR s: BITSET;"
    ~body_src:
      {|s := {};
WriteInt(Bits.Count(s)); WriteChar(' ');
WriteInt(Bits.Lowest(s)); WriteChar(' ');
s := {4, 7, 40};
WriteInt(Bits.Count(s)); WriteChar(' ');
WriteInt(Bits.Lowest(s))|}
    "0 -1 3 4"

let test_inout () =
  run_with_lib ~imports:"IMPORT InOut;" ~decls:""
    ~body_src:
      {|InOut.WriteBool(TRUE); InOut.WriteSpaces(2); InOut.WriteBool(FALSE);
InOut.WriteSpaces(1); InOut.WritePair(-1, 2)|}
    "TRUE  FALSE (-1, 2)"

let test_user_shadows_library () =
  (* a program-provided module of the same name wins over the bundle *)
  let main =
    modsrc ~name:"T" ~imports:"IMPORT MathLib;" ~decls:""
      ~body:"WriteInt(MathLib.Power(10, 10))" ()
  in
  let store =
    store ~name:"T"
      ~defs:[ ("MathLib", "DEFINITION MODULE MathLib;\nPROCEDURE Power(a, b: INTEGER): INTEGER;\nEND MathLib.\n") ]
      ~impls:
        [
          ( "MathLib",
            "IMPLEMENTATION MODULE MathLib;\nPROCEDURE Power(a, b: INTEGER): INTEGER;\nBEGIN RETURN 42 END Power;\nEND MathLib.\n"
          );
        ]
      main
  in
  let r = Project.compile (M2lib.augment store) in
  Alcotest.(check bool) "ok" true r.Project.ok;
  let res = Mcc_vm.Vm.run r.Project.program in
  Alcotest.(check string) "user implementation wins" "42" res.Mcc_vm.Vm.output

let test_library_compiles_under_all_strategies () =
  let main = modsrc ~name:"T" ~imports:"IMPORT Strings, MathLib, InOut, Bits;" ~decls:"" ~body:"" () in
  let store = M2lib.augment (store ~name:"T" main) in
  let reference = Mcc_codegen.Cunit.disassemble (Project.compile store).Project.program in
  List.iter
    (fun strategy ->
      let r = Project.compile ~config:{ Driver.default_config with Driver.strategy } store in
      Alcotest.(check bool) (Mcc_sem.Symtab.dky_name strategy) true
        (r.Project.ok && String.equal reference (Mcc_codegen.Cunit.disassemble r.Project.program)))
    Mcc_sem.Symtab.all_concurrent

let () =
  Alcotest.run "m2lib"
    [
      ( "modules",
        [
          Alcotest.test_case "Strings" `Quick test_strings;
          Alcotest.test_case "MathLib" `Quick test_mathlib;
          Alcotest.test_case "Bits" `Quick test_bits;
          Alcotest.test_case "InOut" `Quick test_inout;
        ] );
      ( "composition",
        [
          Alcotest.test_case "user shadows library" `Quick test_user_shadows_library;
          Alcotest.test_case "deterministic across strategies" `Quick
            test_library_compiles_under_all_strategies;
        ] );
    ]
