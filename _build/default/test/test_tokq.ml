(* Tests for token queues: producer/consumer blocks, events, multiple
   readers, behaviour under the DES engine. *)

open Mcc_m2
open Mcc_sched

let tok n = Token.make (Token.IntLit n) Loc.none

let ints_of rd =
  List.filter_map (fun t -> match t.Token.kind with Token.IntLit n -> Some n | _ -> None)
    (Reader.drain rd)

(* Outside an engine, puts before reads work as long as blocks are
   published before the reader catches up. *)
let test_direct_sequential_use () =
  let q = Tokq.create ~name:"q" () in
  for i = 1 to 200 do
    Tokq.put q (tok i)
  done;
  Tokq.close q;
  Alcotest.(check (list int)) "all tokens in order" (List.init 200 (fun i -> i + 1))
    (ints_of (Tokq.reader q));
  Alcotest.(check int) "total" 200 (Tokq.total_tokens q)

let test_two_readers_independent () =
  let q = Tokq.create ~name:"q" () in
  for i = 1 to 100 do
    Tokq.put q (tok i)
  done;
  Tokq.close q;
  let r1 = Tokq.reader q and r2 = Tokq.reader q in
  let a = ints_of r1 and b = ints_of r2 in
  Alcotest.(check (list int)) "reader 1" (List.init 100 (fun i -> i + 1)) a;
  Alcotest.(check (list int)) "reader 2" a b

let test_eof_after_close () =
  let q = Tokq.create ~name:"q" () in
  Tokq.put q (tok 1);
  Tokq.close q;
  let rd = Tokq.reader q in
  ignore (Reader.next rd);
  Alcotest.(check bool) "eof" true (Token.is_eof (Reader.next rd));
  Alcotest.(check bool) "eof persists" true (Token.is_eof (Reader.next rd))

let test_put_after_close_rejected () =
  let q = Tokq.create ~name:"q" () in
  Tokq.close q;
  match Tokq.put q (tok 1) with
  | () -> Alcotest.fail "expected invalid_arg"
  | exception Invalid_argument _ -> ()

(* Under the DES: a consumer racing a producer sees every token exactly
   once, with waits handled by the engine. *)
let test_concurrent_producer_consumer () =
  let q = Tokq.create ~name:"q" () in
  let got = ref [] in
  let producer =
    Task.create ~cls:Task.Lexor ~name:"producer" (fun () ->
        for i = 1 to 500 do
          Eff.work 10;
          Tokq.put q (tok i)
        done;
        Tokq.close q)
  in
  let consumer =
    Task.create ~cls:Task.Splitter ~name:"consumer" (fun () ->
        let rd = Tokq.reader q in
        let rec go () =
          let t = Reader.next rd in
          if not (Token.is_eof t) then begin
            (match t.Token.kind with Token.IntLit n -> got := n :: !got | _ -> ());
            go ()
          end
        in
        go ())
  in
  let r = Des_engine.run ~procs:2 [ producer; consumer ] in
  Alcotest.(check bool) "completed" true
    (match r.Des_engine.outcome with Des_engine.Completed -> true | _ -> false);
  Alcotest.(check (list int)) "all tokens once, in order" (List.init 500 (fun i -> i + 1))
    (List.rev !got)

let test_barrier_queue_under_des () =
  Tokq.set_default_barrier true;
  Fun.protect
    ~finally:(fun () -> Tokq.set_default_barrier false)
    (fun () ->
      let q = Tokq.create ~name:"q" () in
      let n_read = ref 0 in
      let producer =
        Task.create ~cls:Task.Lexor ~name:"producer" (fun () ->
            for i = 1 to 300 do
              Eff.work 5;
              Tokq.put q (tok i)
            done;
            Tokq.close q)
      in
      let consumer =
        Task.create ~cls:Task.Splitter ~name:"consumer" (fun () ->
            let rd = Tokq.reader q in
            while not (Token.is_eof (Reader.next rd)) do
              incr n_read
            done)
      in
      let r = Des_engine.run ~procs:2 [ producer; consumer ] in
      Alcotest.(check bool) "completed" true
        (match r.Des_engine.outcome with Des_engine.Completed -> true | _ -> false);
      Alcotest.(check int) "tokens read" 300 !n_read)

(* Property: any split of puts into chunks, closed at the end, delivers
   exactly the input sequence. *)
let prop_conservation =
  QCheck.Test.make ~name:"queue conserves the token sequence" ~count:100
    QCheck.(list small_nat)
    (fun xs ->
      let q = Tokq.create ~name:"q" () in
      List.iter (fun n -> Tokq.put q (tok n)) xs;
      Tokq.close q;
      ints_of (Tokq.reader q) = xs)

let () =
  Alcotest.run "tokq"
    [
      ( "basic",
        [
          Alcotest.test_case "sequential use" `Quick test_direct_sequential_use;
          Alcotest.test_case "two readers" `Quick test_two_readers_independent;
          Alcotest.test_case "eof after close" `Quick test_eof_after_close;
          Alcotest.test_case "put after close" `Quick test_put_after_close_rejected;
        ] );
      ( "engine",
        [
          Alcotest.test_case "producer/consumer race" `Quick test_concurrent_producer_consumer;
          Alcotest.test_case "barrier mode" `Quick test_barrier_queue_under_des;
        ] );
      ("properties", [ Tutil.qtest prop_conservation ]);
    ]
