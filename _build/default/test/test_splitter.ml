(* Tests for the Splitter and Importer finite-state recognizers. *)

open Mcc_m2
open Mcc_sched
module Symtab = Mcc_sem.Symtab
module Stream = Mcc_core.Stream

(* Run the splitter over [src] under the DES; returns the stripped token
   kinds and the created streams with their token kinds. *)
let split src =
  let root_scope = Symtab.create (Symtab.KMain "T") in
  let out = Tokq.create ~name:"out" () in
  let streams = ref [] in
  let stripped = ref [] in
  let stream_toks = Hashtbl.create 8 in
  let lexor =
    Task.create ~cls:Task.Lexor ~name:"lexor" (fun () ->
        let q = Tokq.create ~name:"raw" () in
        let lx = Lexer.create ~file:"t" src in
        let rec go () =
          let tok = Lexer.next lx in
          Tokq.put q tok;
          if not (Token.is_eof tok) then go ()
        in
        go ();
        Tokq.close q;
        Eff.spawn
          (Task.create ~cls:Task.Splitter ~name:"splitter" (fun () ->
               Stream.run_splitter ~rd:(Tokq.reader q) ~out ~root_scope ~root_path:"T"
                 ~next_id:
                   (let n = ref 0 in
                    fun () ->
                      incr n;
                      !n)
                 ~on_stream:(fun ps ->
                     streams := ps :: !streams;
                     Eff.spawn
                       (Task.create ~cls:Task.ProcParse ~name:("drain:" ^ ps.Stream.ps_path)
                          (fun () ->
                            let rd = Tokq.reader ps.Stream.ps_q in
                            let rec go acc =
                              let t = Reader.next rd in
                              if Token.is_eof t then List.rev acc else go (t.Token.kind :: acc)
                            in
                            Hashtbl.replace stream_toks ps.Stream.ps_path (go []))))));
        Eff.spawn
          (Task.create ~cls:Task.ModParse ~name:"drain-out" (fun () ->
               let rd = Tokq.reader out in
               let rec go acc =
                 let t = Reader.next rd in
                 if Token.is_eof t then List.rev acc else go (t.Token.kind :: acc)
               in
               stripped := go [])))
  in
  let r = Des_engine.run ~procs:2 [ lexor ] in
  (match r.Des_engine.outcome with
  | Des_engine.Completed -> ()
  | Des_engine.Deadlocked l -> Alcotest.failf "splitter deadlock: %s" (String.concat ";" l));
  (!stripped, List.rev !streams, stream_toks)

let count_marks kinds =
  List.length (List.filter (function Token.SplitMark _ -> true | _ -> false) kinds)

let test_no_procedures_passthrough () =
  let src = "IMPLEMENTATION MODULE T;\nVAR x: INTEGER;\nBEGIN x := 1\nEND T.\n" in
  let stripped, streams, _ = split src in
  Alcotest.(check int) "no streams" 0 (List.length streams);
  Alcotest.(check int) "token count preserved"
    (List.length (Lexer.all ~file:"t" src) - 1)
    (List.length stripped)

let test_simple_procedure_extracted () =
  let src =
    "IMPLEMENTATION MODULE T;\nPROCEDURE P(x: INTEGER): INTEGER;\nBEGIN RETURN x END P;\nBEGIN\nEND T.\n"
  in
  let stripped, streams, toks = split src in
  Alcotest.(check int) "one stream" 1 (List.length streams);
  let ps = List.hd streams in
  Alcotest.(check string) "path" "T.P" ps.Stream.ps_path;
  Alcotest.(check int) "one split mark in parent" 1 (count_marks stripped);
  (* heading appears in BOTH parent and child streams *)
  let heading = [ Token.Kw Token.PROCEDURE; Token.Ident "P"; Token.Sym Token.Lparen ] in
  let starts_with l prefix =
    List.length l >= List.length prefix && List.for_all2 ( = ) (List.filteri (fun i _ -> i < 3) l) prefix
  in
  let child = Hashtbl.find toks "T.P" in
  Alcotest.(check bool) "child has heading" true (starts_with child heading);
  let after_mark = ref false and parent_heading = ref [] in
  List.iter
    (fun k ->
      match k with
      | Token.Kw Token.PROCEDURE -> parent_heading := [ k ]
      | Token.SplitMark _ -> after_mark := true
      | k when not !after_mark && !parent_heading <> [] -> parent_heading := k :: !parent_heading
      | _ -> ())
    stripped;
  Alcotest.(check bool) "parent kept heading too" true
    (List.exists (fun k -> k = Token.Ident "P") !parent_heading);
  (* the body went only to the child *)
  Alcotest.(check bool) "RETURN not in parent" false
    (List.mem (Token.Kw Token.RETURN) stripped);
  Alcotest.(check bool) "RETURN in child" true (List.mem (Token.Kw Token.RETURN) child)

let test_nested_procedures_recursive () =
  let src =
    {|IMPLEMENTATION MODULE T;
PROCEDURE Outer;
  PROCEDURE Inner(q: INTEGER);
  BEGIN q := q + 1 END Inner;
BEGIN Inner(1) END Outer;
BEGIN
END T.
|}
  in
  let _, streams, toks = split src in
  Alcotest.(check (list string)) "two streams, nested path" [ "T.Outer"; "T.Outer.Inner" ]
    (List.sort compare (List.map (fun ps -> ps.Stream.ps_path) streams));
  let outer = Hashtbl.find toks "T.Outer" in
  Alcotest.(check int) "outer holds the nested split mark" 1 (count_marks outer);
  let depths = List.map (fun ps -> (ps.Stream.ps_path, ps.Stream.ps_depth)) streams in
  Alcotest.(check (list (pair string int))) "depths" [ ("T.Outer", 1); ("T.Outer.Inner", 2) ]
    (List.sort compare depths)

let test_procedure_type_not_split () =
  let src =
    {|IMPLEMENTATION MODULE T;
TYPE F = PROCEDURE (INTEGER): INTEGER;
VAR f: PROCEDURE;
BEGIN
END T.
|}
  in
  let _, streams, _ = split src in
  Alcotest.(check int) "no streams for procedure types" 0 (List.length streams)

let test_end_matching_constructs () =
  (* every END-closed construct inside a body must not terminate the
     stream early *)
  let src =
    {|IMPLEMENTATION MODULE T;
PROCEDURE P;
VAR r: RECORD f: INTEGER END; x: INTEGER; e: EXCEPTION; mu: MUTEX;
BEGIN
  IF TRUE THEN x := 1 END;
  CASE x OF 0: x := 1 ELSE x := 2 END;
  WHILE FALSE DO x := 1 END;
  FOR x := 0 TO 3 DO x := x END;
  WITH r DO f := 1 END;
  LOOP EXIT END;
  TRY x := 1 EXCEPT e: x := 2 END;
  LOCK mu DO x := 3 END
END P;
BEGIN
END T.
|}
  in
  let stripped, streams, toks = split src in
  Alcotest.(check int) "one stream" 1 (List.length streams);
  let child = Hashtbl.find toks "T.P" in
  (* the child ends with END P ; *)
  let rec last3 = function
    | [ a; b; c ] -> (a, b, c)
    | _ :: tl -> last3 tl
    | [] -> Alcotest.fail "child too short"
  in
  let a, b, c = last3 child in
  Alcotest.(check bool) "ends with END P ;" true
    (a = Token.Kw Token.END && b = Token.Ident "P" && c = Token.Sym Token.Semi);
  Alcotest.(check int) "one mark" 1 (count_marks stripped)

(* conservation: tokens in = stripped tokens (minus marks) + stream tokens *)
let test_token_conservation () =
  let src =
    {|IMPLEMENTATION MODULE T;
VAR g: INTEGER;
PROCEDURE A(x: INTEGER): INTEGER;
BEGIN RETURN x * 2 END A;
PROCEDURE B;
  PROCEDURE C; BEGIN END C;
BEGIN C END B;
BEGIN g := A(21)
END T.
|}
  in
  let stripped, streams, toks = split src in
  let total_in = List.length (Lexer.all ~file:"t" src) - 1 (* minus eof *) in
  (* split marks are synthetic: they appear in the stripped stream and in
     any stream that contains a nested procedure *)
  let marks =
    count_marks stripped
    + Hashtbl.fold (fun _ l acc -> acc + count_marks l) toks 0
  in
  let heading_tokens =
    (* heading tokens are duplicated into parent and child: count them
       once per stream to correct the balance *)
    List.fold_left
      (fun acc ps ->
        let child = Hashtbl.find toks ps.Stream.ps_path in
        let rec heading_len n = function
          | Token.Sym Token.Semi :: _ -> n + 1
          | k :: tl -> if k = Token.Sym Token.Lparen then heading_len (n + 1) tl else heading_len (n + 1) tl
          | [] -> n
        in
        acc + heading_len 0 child)
      0 streams
  in
  ignore heading_tokens;
  let stream_total =
    Hashtbl.fold (fun _ l acc -> acc + List.length l) toks 0
  in
  (* in = (stripped - marks - duplicated headings) + streams *)
  let dup =
    List.fold_left
      (fun acc ps ->
        let child = Hashtbl.find toks ps.Stream.ps_path in
        let rec upto_semi n paren = function
          | [] -> n
          | Token.Sym Token.Lparen :: tl -> upto_semi (n + 1) (paren + 1) tl
          | Token.Sym Token.Rparen :: tl -> upto_semi (n + 1) (paren - 1) tl
          | Token.Sym Token.Semi :: _ when paren = 0 -> n + 1
          | _ :: tl -> upto_semi (n + 1) paren tl
        in
        acc + upto_semi 0 0 child)
      0 streams
  in
  Alcotest.(check int) "token conservation" total_in
    (List.length stripped - marks - dup + stream_total)

(* --- importer --- *)

let imports_of src =
  let acc = ref [] in
  Stream.run_importer
    ~rd:(Reader.of_lexer (Lexer.create ~file:"t" src))
    ~on_import:(fun m -> acc := m :: !acc);
  List.rev !acc

let test_importer_forms () =
  Alcotest.(check (list string)) "plain imports" [ "A"; "B"; "C" ]
    (imports_of "IMPLEMENTATION MODULE T;\nIMPORT A, B;\nIMPORT C;\nEND T.");
  Alcotest.(check (list string)) "from import names only the module" [ "A" ]
    (imports_of "IMPLEMENTATION MODULE T;\nFROM A IMPORT x, y, z;\nEND T.");
  Alcotest.(check (list string)) "mixed" [ "A"; "B" ]
    (imports_of "IMPLEMENTATION MODULE T;\nFROM A IMPORT x;\nIMPORT B;\nEND T.")

let test_importer_stops_at_decls () =
  (* IMPORT-lookalike identifiers after the declaration section never
     reach the importer: it stops at the first declaration keyword *)
  Alcotest.(check (list string)) "stops" [ "A" ]
    (imports_of "IMPLEMENTATION MODULE T;\nIMPORT A;\nVAR x: INTEGER;\nIMPORT Ghost;\nEND T.")

let () =
  Alcotest.run "splitter"
    [
      ( "splitter",
        [
          Alcotest.test_case "passthrough" `Quick test_no_procedures_passthrough;
          Alcotest.test_case "simple extraction" `Quick test_simple_procedure_extracted;
          Alcotest.test_case "nested recursion" `Quick test_nested_procedures_recursive;
          Alcotest.test_case "procedure types kept" `Quick test_procedure_type_not_split;
          Alcotest.test_case "END matching" `Quick test_end_matching_constructs;
          Alcotest.test_case "token conservation" `Quick test_token_conservation;
        ] );
      ( "importer",
        [
          Alcotest.test_case "forms" `Quick test_importer_forms;
          Alcotest.test_case "stops at declarations" `Quick test_importer_stops_at_decls;
        ] );
    ]
