(* Tests for the streaming lexer. *)

open Mcc_m2

let lex src = List.map (fun t -> t.Token.kind) (Lexer.all ~file:"t" src)

let lex_no_eof src =
  List.filter (fun k -> k <> Token.Eof) (lex src)

let kinds = Alcotest.testable (fun ppf k -> Format.pp_print_string ppf (Token.kind_to_string k)) ( = )

let test_idents_keywords () =
  Alcotest.(check (list kinds)) "mix"
    [ Token.Kw Token.MODULE; Token.Ident "Foo"; Token.Sym Token.Semi ]
    (lex_no_eof "MODULE Foo;");
  (* keywords are case sensitive: lowercase is an identifier *)
  Alcotest.(check (list kinds)) "case sensitivity" [ Token.Ident "module" ] (lex_no_eof "module");
  Alcotest.(check (list kinds)) "underscores" [ Token.Ident "a_b1" ] (lex_no_eof "a_b1")

let test_every_keyword () =
  List.iter
    (fun (s, k) ->
      Alcotest.(check (list kinds)) s [ Token.Kw k ] (lex_no_eof s))
    Token.keywords

let test_numbers () =
  Alcotest.(check (list kinds)) "decimal" [ Token.IntLit 123 ] (lex_no_eof "123");
  Alcotest.(check (list kinds)) "hex" [ Token.IntLit 255 ] (lex_no_eof "0FFH");
  Alcotest.(check (list kinds)) "octal" [ Token.IntLit 8 ] (lex_no_eof "10B");
  Alcotest.(check (list kinds)) "char code" [ Token.CharLit 'A' ] (lex_no_eof "101C");
  Alcotest.(check (list kinds)) "real" [ Token.RealLit 3.5 ] (lex_no_eof "3.5");
  Alcotest.(check (list kinds)) "real with exponent" [ Token.RealLit 1200.0 ] (lex_no_eof "1.2E3");
  Alcotest.(check (list kinds)) "range is not a real"
    [ Token.IntLit 1; Token.Sym Token.DotDot; Token.IntLit 10 ]
    (lex_no_eof "1..10")

let test_strings () =
  Alcotest.(check (list kinds)) "double quoted" [ Token.StrLit "hi" ] (lex_no_eof "\"hi\"");
  Alcotest.(check (list kinds)) "single quoted" [ Token.StrLit "x" ] (lex_no_eof "'x'");
  Alcotest.(check (list kinds)) "empty" [ Token.StrLit "" ] (lex_no_eof "\"\"");
  match lex_no_eof "\"unterminated" with
  | [ Token.Error _ ] -> ()
  | l -> Alcotest.failf "expected a lexical error, got %d tokens" (List.length l)

let test_comments () =
  Alcotest.(check (list kinds)) "simple" [ Token.IntLit 1; Token.IntLit 2 ]
    (lex_no_eof "1 (* comment *) 2");
  Alcotest.(check (list kinds)) "nested" [ Token.IntLit 1; Token.IntLit 2 ]
    (lex_no_eof "1 (* a (* nested (* deep *) *) b *) 2");
  Alcotest.(check (list kinds)) "pragma skipped" [ Token.IntLit 7 ] (lex_no_eof "<* pragma *> 7");
  (* an unterminated comment just ends the stream *)
  Alcotest.(check (list kinds)) "unterminated comment" [ Token.IntLit 5 ] (lex_no_eof "5 (* oops")

let test_symbols () =
  let all = ":= <= >= <> .. + - * / = # < > ( ) [ ] { } , ; : . ^ | & ~" in
  let expected =
    Token.
      [
        Sym Assign; Sym Le; Sym Ge; Sym Neq; Sym DotDot; Sym Plus; Sym Minus; Sym Star;
        Sym Slash; Sym Eq; Sym Neq; Sym Lt; Sym Gt; Sym Lparen; Sym Rparen; Sym Lbracket;
        Sym Rbracket; Sym Lbrace; Sym Rbrace; Sym Comma; Sym Semi; Sym Colon; Sym Dot;
        Sym Caret; Sym Bar; Sym Amp; Sym Tilde;
      ]
  in
  Alcotest.(check (list kinds)) "symbols" expected (lex_no_eof all)

let test_positions () =
  let toks = Lexer.all ~file:"t" "a\n  bb\n" in
  match toks with
  | [ a; b; _eof ] ->
      Alcotest.(check int) "a line" 1 a.Token.loc.Loc.line;
      Alcotest.(check int) "a col" 1 a.Token.loc.Loc.col;
      Alcotest.(check int) "b line" 2 b.Token.loc.Loc.line;
      Alcotest.(check int) "b col" 3 b.Token.loc.Loc.col;
      Alcotest.(check int) "b offset" 4 b.Token.loc.Loc.off
  | _ -> Alcotest.fail "expected two tokens"

let test_eof_stable () =
  let lx = Lexer.create ~file:"t" "x" in
  ignore (Lexer.next lx);
  Alcotest.(check bool) "eof" true (Token.is_eof (Lexer.next lx));
  Alcotest.(check bool) "eof again" true (Token.is_eof (Lexer.next lx))

(* Property: pretty-printing a random token sequence and re-lexing it
   yields the same sequence (tokens that survive printing). *)
let token_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Token.IntLit (abs n)) small_int;
        map (fun s -> Token.Ident ("id" ^ string_of_int (abs s))) small_int;
        return (Token.Kw Token.BEGIN);
        return (Token.Kw Token.END);
        return (Token.Sym Token.Semi);
        return (Token.Sym Token.Assign);
        return (Token.Sym Token.Plus);
        map (fun c -> Token.StrLit (String.make 1 (Char.chr (97 + (abs c mod 26))))) small_int;
      ])

let prop_roundtrip =
  QCheck.Test.make ~name:"print-then-lex roundtrip" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_bound 50) token_gen))
    (fun toks ->
      let text =
        String.concat " "
          (List.map
             (fun k ->
               match k with
               | Token.StrLit s -> Printf.sprintf "%S" s
               | k -> Token.kind_to_string k)
             toks)
      in
      lex_no_eof text = toks)

let () =
  Alcotest.run "lexer"
    [
      ( "tokens",
        [
          Alcotest.test_case "identifiers and keywords" `Quick test_idents_keywords;
          Alcotest.test_case "every keyword" `Quick test_every_keyword;
          Alcotest.test_case "numbers" `Quick test_numbers;
          Alcotest.test_case "strings" `Quick test_strings;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "symbols" `Quick test_symbols;
          Alcotest.test_case "positions" `Quick test_positions;
          Alcotest.test_case "eof stable" `Quick test_eof_stable;
        ] );
      ("properties", [ Tutil.qtest prop_roundtrip ]);
    ]
