(* Tests for the statistics/reporting layer: speedups, quartiles, import
   analysis, lookup-statistics tables, WatchTool rendering. *)

open Mcc_core
open Mcc_stats
module Ls = Mcc_sem.Lookup_stats

let small_store () = Mcc_synth.Suite.program 2

let test_sweep_monotone_speedup () =
  let s = Speedup.sweep ~max_procs:4 (small_store ()) in
  Alcotest.(check (float 1e-9)) "speedup at 1 is 1" 1.0 (Speedup.speedup s 1);
  Alcotest.(check bool) "more processors never slower (this workload)" true
    (Speedup.speedup s 4 >= Speedup.speedup s 2 && Speedup.speedup s 2 > 1.0)

let test_aggregate () =
  let s1 = Speedup.sweep ~max_procs:2 (Mcc_synth.Suite.program 0) in
  let s2 = Speedup.sweep ~max_procs:2 (Mcc_synth.Suite.program 5) in
  let mn, mean, mx = Speedup.aggregate [ s1; s2 ] ~n:2 in
  Alcotest.(check bool) "min <= mean <= max" true (mn <= mean && mean <= mx)

let test_quartiles () =
  let fake t = { Speedup.store = small_store (); times = [| t /. Mcc_sched.Costs.seconds_per_unit |] } in
  Alcotest.(check bool) "q1" true (Speedup.quartile_of (fake 3.0) = Speedup.Q1);
  Alcotest.(check bool) "q2" true (Speedup.quartile_of (fake 7.0) = Speedup.Q2);
  Alcotest.(check bool) "q3" true (Speedup.quartile_of (fake 15.0) = Speedup.Q3);
  Alcotest.(check bool) "q4" true (Speedup.quartile_of (fake 50.0) = Speedup.Q4)

let test_best () =
  let sweeps = List.map (Speedup.sweep ~max_procs:2) [ Mcc_synth.Suite.program 0; Mcc_synth.Suite.program 8 ] in
  match Speedup.best sweeps ~n:2 with
  | Some b ->
      List.iter
        (fun s -> Alcotest.(check bool) "best is maximal" true (Speedup.speedup b 2 >= Speedup.speedup s 2))
        sweeps
  | None -> Alcotest.fail "no best"

let test_imports_analyze () =
  let defs =
    [
      ("A", "DEFINITION MODULE A;\nIMPORT B;\nEND A.\n");
      ("B", "DEFINITION MODULE B;\nIMPORT C;\nEND B.\n");
      ("C", "DEFINITION MODULE C;\nEND C.\n");
      ("Unrelated", "DEFINITION MODULE Unrelated;\nEND Unrelated.\n");
    ]
  in
  let store =
    Source_store.make ~main_name:"T"
      ~main_src:"IMPLEMENTATION MODULE T;\nIMPORT A;\nEND T.\n" ~defs ()
  in
  let interfaces, depth = Imports.analyze store in
  Alcotest.(check int) "reachable interfaces" 3 interfaces;
  Alcotest.(check int) "chain depth" 3 depth

let test_table1_renders () =
  let attrs = List.map Tables.measure_attrs [ Mcc_synth.Suite.program 0; Mcc_synth.Suite.program 3 ] in
  let s = Tables.table1 attrs in
  Alcotest.(check bool) "mentions attributes" true (Tutil.contains ~sub:"Module size" s);
  Alcotest.(check bool) "has streams row" true (Tutil.contains ~sub:"Number of Streams" s)

let test_table2_renders () =
  let c = Driver.compile ~config:Driver.default_config (small_store ()) in
  let s = Tables.table2 c.Driver.stats in
  Alcotest.(check bool) "simple section" true (Tutil.contains ~sub:"Simple Identifier" s);
  Alcotest.(check bool) "qualified section" true (Tutil.contains ~sub:"Qualified Identifier" s);
  Alcotest.(check bool) "self rows" true (Tutil.contains ~sub:"self" s)

let test_lookup_stats_percentages () =
  let c = Driver.compile ~config:Driver.default_config (small_store ()) in
  let st = c.Driver.stats in
  (* rows + never account for every simple lookup *)
  let rows_total =
    List.fold_left (fun acc (_, _, _, n) -> acc + n) 0 (Ls.rows st ~kind:Ls.Simple)
  in
  Alcotest.(check int) "rows sum to total" (Ls.total st ~kind:Ls.Simple)
    (rows_total + Ls.never st ~kind:Ls.Simple)

let test_lookup_stats_merge () =
  let a = Ls.create () and b = Ls.create () in
  Ls.record a ~kind:Ls.Simple ~found:Ls.FirstTry ~scope:Ls.CSelf ~compl:Ls.Complete;
  Ls.record b ~kind:Ls.Simple ~found:Ls.FirstTry ~scope:Ls.CSelf ~compl:Ls.Complete;
  Ls.record_never b ~kind:Ls.Simple;
  Ls.merge ~into:a b;
  Alcotest.(check int) "merged count" 2
    (Ls.get a ~kind:Ls.Simple ~found:Ls.FirstTry ~scope:Ls.CSelf ~compl:Ls.Complete);
  Alcotest.(check int) "merged never" 1 (Ls.never a ~kind:Ls.Simple)

let test_watchtool_renders () =
  let c = Driver.compile ~config:Driver.default_config (small_store ()) in
  let s = Watchtool.render c.Driver.sim.Mcc_sched.Des_engine.trace ~procs:8 in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "eight processor rows" true
    (List.length (List.filter (fun l -> String.length l > 2 && l.[0] = 'P') lines) = 8);
  Alcotest.(check bool) "activity shown" true
    (List.exists (fun l -> Tutil.contains ~sub:"L" l || Tutil.contains ~sub:"g" l) lines);
  let summary = Watchtool.summary c.Driver.sim.Mcc_sched.Des_engine.trace ~procs:8 in
  Alcotest.(check bool) "summary has utilization" true (Tutil.contains ~sub:"utilization" summary)

let test_trace_utilization_bounds () =
  let c = Driver.compile ~config:Driver.default_config (small_store ()) in
  let u = Mcc_sched.Trace.utilization c.Driver.sim.Mcc_sched.Des_engine.trace ~procs:8 in
  Alcotest.(check bool) "0 < u <= 1" true (u > 0.0 && u <= 1.0)

(* The paper's headline qualitative claims, asserted as regression
   guards over the full suite sweep (a few seconds of wall clock). *)
let test_paper_shape_invariants () =
  let suite = List.map Speedup.sweep (Mcc_synth.Suite.all ()) in
  let synth = Speedup.sweep (Mcc_synth.Suite.synth_best ()) in
  (* mean speedup grows with processor count *)
  let means = List.map (fun n -> Speedup.mean_speedup suite ~n) [ 2; 3; 4; 5; 6; 7; 8 ] in
  let rec monotone = function a :: (b :: _ as tl) -> a <= b +. 1e-9 && monotone tl | _ -> true in
  Alcotest.(check bool) "mean speedup nondecreasing in N" true (monotone means);
  (* speedup grows with program size: quartile means ordered at 8 procs *)
  let q n q_ = Speedup.mean_speedup (List.assoc q_ (Speedup.by_quartile suite)) ~n in
  Alcotest.(check bool) "Q1 <= Q2 <= Q3 <= Q4 at 8 processors" true
    (q 8 Speedup.Q1 <= q 8 Speedup.Q2
    && q 8 Speedup.Q2 <= q 8 Speedup.Q3
    && q 8 Speedup.Q3 <= q 8 Speedup.Q4);
  (* small programs saturate: Q1 gains little beyond 4 processors *)
  Alcotest.(check bool) "Q1 saturates after 4 processors" true (q 8 Speedup.Q1 -. q 4 Speedup.Q1 < 1.0);
  (* Synth.mod is the best case: above every suite member at 8 procs *)
  List.iter
    (fun s ->
      if Speedup.speedup s 8 > Speedup.speedup synth 8 then
        Alcotest.failf "%s beats Synth.mod at 8 processors"
          (Source_store.main_name s.Speedup.store))
    suite;
  (* Synth near-linear low and sublinear high, in the paper's bands *)
  Alcotest.(check bool) "Synth@2 close to 2" true (Speedup.speedup synth 2 > 1.9);
  Alcotest.(check bool) "Synth@8 in band" true
    (Speedup.speedup synth 8 > 5.5 && Speedup.speedup synth 8 < 8.0);
  (* mean speedup at 8 lands in the paper's neighbourhood *)
  let mean8 = Speedup.mean_speedup suite ~n:8 in
  Alcotest.(check bool) "suite mean@8 within [3.5, 5.0]" true (mean8 > 3.5 && mean8 < 5.0)

let test_overhead_band () =
  (* 1-processor concurrency overhead stays "a few percent" *)
  let seq, c1 =
    List.fold_left
      (fun (s, c) store ->
        let sq = Seq_driver.compile store in
        let c1 =
          Driver.compile ~config:{ Driver.default_config with Driver.procs = 1 } store
        in
        (s +. sq.Seq_driver.cost_units, c +. c1.Driver.sim.Mcc_sched.Des_engine.end_time))
      (0.0, 0.0)
      (Mcc_synth.Suite.all ())
  in
  let overhead = 100.0 *. (c1 -. seq) /. seq in
  Alcotest.(check bool) "overhead in [0%, 12%]" true (overhead > 0.0 && overhead < 12.0)

let () =
  Alcotest.run "stats"
    [
      ( "speedup",
        [
          Alcotest.test_case "sweep" `Quick test_sweep_monotone_speedup;
          Alcotest.test_case "aggregate" `Quick test_aggregate;
          Alcotest.test_case "quartiles" `Quick test_quartiles;
          Alcotest.test_case "best" `Quick test_best;
        ] );
      ("imports", [ Alcotest.test_case "analyze" `Quick test_imports_analyze ]);
      ( "tables",
        [
          Alcotest.test_case "table1" `Quick test_table1_renders;
          Alcotest.test_case "table2" `Quick test_table2_renders;
          Alcotest.test_case "percentages" `Quick test_lookup_stats_percentages;
          Alcotest.test_case "merge" `Quick test_lookup_stats_merge;
        ] );
      ( "paper shape",
        [
          Alcotest.test_case "speedup invariants" `Slow test_paper_shape_invariants;
          Alcotest.test_case "overhead band" `Slow test_overhead_band;
        ] );
      ( "watchtool",
        [
          Alcotest.test_case "render" `Quick test_watchtool_renders;
          Alcotest.test_case "utilization" `Quick test_trace_utilization_bounds;
        ] );
    ]
