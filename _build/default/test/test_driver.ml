(* Integration tests for the concurrent compilation driver: equivalence
   with the sequential compiler across strategies, processor counts,
   heading alternatives and engines; determinism; failure injection. *)

open Tutil
open Mcc_core
module Des = Mcc_sched.Des_engine
module Symtab = Mcc_sem.Symtab

let sample_src =
  modsrc
    ~imports:"IMPORT Lib;\nFROM Lib IMPORT base;"
    ~decls:
      {|CONST scaled = base * 2;
TYPE Rec = RECORD a, b: INTEGER END;
VAR g: INTEGER; r: Rec;
PROCEDURE Add(x, y: INTEGER): INTEGER;
BEGIN RETURN x + y END Add;
PROCEDURE Work(n: INTEGER): INTEGER;
VAR i, s: INTEGER;
  PROCEDURE Halve(v: INTEGER): INTEGER;
  BEGIN RETURN v DIV 2 END Halve;
BEGIN
  s := 0;
  FOR i := 0 TO n DO s := Add(s, Halve(i * 4)) END;
  RETURN s
END Work;|}
    ~body:"g := Work(Lib.limit) + scaled; r.a := g; WriteInt(r.a)" ()

let sample_defs =
  [
    ( "Lib",
      "DEFINITION MODULE Lib;\nCONST base = 10;\nCONST limit = 5;\nVAR counter: INTEGER;\nEND Lib.\n"
    );
  ]

let sample_store () = store ~defs:sample_defs ~name:"T" sample_src

let check_equal_programs name p1 p2 = Alcotest.(check bool) name true (String.equal (dis p1) (dis p2))

let test_conc_matches_seq_all_configs () =
  let seq = Seq_driver.compile (sample_store ()) in
  Alcotest.(check bool) "seq ok" true seq.Seq_driver.ok;
  List.iter
    (fun strategy ->
      List.iter
        (fun procs ->
          List.iter
            (fun heading ->
              let config = { Driver.default_config with Driver.strategy; procs; heading } in
              let c = Driver.compile ~config (sample_store ()) in
              Alcotest.(check bool) "conc ok" true c.Driver.ok;
              check_equal_programs
                (Printf.sprintf "%s/%d/%s" (Symtab.dky_name strategy) procs
                   (match heading with Driver.Alt1 -> "alt1" | Driver.Alt3 -> "alt3"))
                seq.Seq_driver.program c.Driver.program)
            [ Driver.Alt1; Driver.Alt3 ])
        [ 1; 3; 8 ])
    Symtab.all_concurrent

let test_compiled_program_runs () =
  let c = Driver.compile ~config:Driver.default_config (sample_store ()) in
  let r = Mcc_vm.Vm.run c.Driver.program in
  Alcotest.(check string) "output" "50" r.Mcc_vm.Vm.output

let test_deterministic_simulation () =
  let r1 = Driver.compile ~config:Driver.default_config (sample_store ()) in
  let r2 = Driver.compile ~config:Driver.default_config (sample_store ()) in
  Alcotest.(check (float 0.0)) "same virtual end time" r1.Driver.sim.Des.end_time
    r2.Driver.sim.Des.end_time;
  Alcotest.(check int) "same task count" r1.Driver.n_tasks r2.Driver.n_tasks

let test_stream_accounting () =
  let c = Driver.compile ~config:Driver.default_config (sample_store ()) in
  Alcotest.(check int) "proc streams (incl. nested)" 3 c.Driver.n_proc_streams;
  Alcotest.(check int) "def streams (Lib + own interface absent)" 1 c.Driver.n_def_streams;
  Alcotest.(check int) "streams = main + procs + defs" 5 c.Driver.n_streams

let test_speedup_on_more_processors () =
  let t n =
    (Driver.compile ~config:{ Driver.default_config with Driver.procs = n } (sample_store ()))
      .Driver.sim.Des.end_time
  in
  let t1 = t 1 and t4 = t 4 in
  Alcotest.(check bool) "t4 < t1" true (t4 < t1)

(* --- diagnostics equality on erroneous programs --- *)

let erroneous =
  modsrc
    ~decls:
      {|VAR x: INTEGER;
PROCEDURE Bad(a: INTEGER): INTEGER;
VAR y: NoSuchType;
BEGIN RETURN a + undeclared_one END Bad;|}
    ~body:"x := TRUE; undeclared_two := 1" ()

let test_diags_equal_seq_conc () =
  let seq = compile_seq erroneous in
  Alcotest.(check bool) "seq rejects" false seq.Seq_driver.ok;
  let seq_msgs = diag_strings seq.Seq_driver.diags in
  List.iter
    (fun strategy ->
      let c =
        Driver.compile ~config:{ Driver.default_config with Driver.strategy } (store ~name:"T" erroneous)
      in
      Alcotest.(check (list string))
        ("diags equal under " ^ Symtab.dky_name strategy)
        seq_msgs (diag_strings c.Driver.diags))
    Symtab.all_concurrent

let test_import_cycle_detected () =
  let defs =
    [
      ("A", "DEFINITION MODULE A;\nFROM B IMPORT kb;\nCONST ka = kb + 1;\nEND A.\n");
      ("B", "DEFINITION MODULE B;\nFROM A IMPORT ka;\nCONST kb = ka + 1;\nEND B.\n");
    ]
  in
  let src = modsrc ~imports:"IMPORT A;" ~decls:"" ~body:"" () in
  let c = Driver.compile ~config:Driver.default_config (store ~defs ~name:"T" src) in
  Alcotest.(check bool) "rejected" false c.Driver.ok;
  Alcotest.(check bool) "deadlock reported" true
    (List.exists (fun d -> Tutil.contains ~sub:"deadlock" (Mcc_m2.Diag.to_string d)) c.Driver.diags)

let test_missing_interface_concurrent () =
  let src = modsrc ~imports:"IMPORT Nope;" ~decls:"" ~body:"" () in
  let c = Driver.compile ~config:Driver.default_config (store ~name:"T" src) in
  Alcotest.(check bool) "rejected" false c.Driver.ok;
  Alcotest.(check bool) "clean completion (no deadlock)" true
    (match c.Driver.sim.Des.outcome with Des.Completed -> true | _ -> false)

(* --- domain engine (real parallelism) --- *)

let test_domains_match_seq () =
  let seq = Seq_driver.compile (sample_store ()) in
  let d = Driver.compile_domains ~domains:4 (sample_store ()) in
  Alcotest.(check bool) "ok" true d.Driver.d_ok;
  Alcotest.(check bool) "no deadlock" false d.Driver.d_deadlocked;
  check_equal_programs "domain-compiled program identical" seq.Seq_driver.program d.Driver.d_program

let test_domains_erroneous_match () =
  let seq = compile_seq erroneous in
  let d = Driver.compile_domains ~domains:3 (store ~name:"T" erroneous) in
  Alcotest.(check (list string)) "diagnostics equal" (diag_strings seq.Seq_driver.diags)
    (diag_strings d.Driver.d_diags)

(* --- whole-program compilation (Project) --- *)

let project_store () =
  store ~name:"Main"
    ~defs:
      [
        ("Lib", "DEFINITION MODULE Lib;\nVAR hits: INTEGER;\nPROCEDURE Bump(): INTEGER;\nEND Lib.\n");
      ]
    ~impls:
      [
        ( "Lib",
          "IMPLEMENTATION MODULE Lib;\nPROCEDURE Bump(): INTEGER;\nBEGIN INC(hits); RETURN hits END Bump;\nBEGIN hits := 0\nEND Lib.\n"
        );
      ]
    "IMPLEMENTATION MODULE Main;\nIMPORT Lib;\nVAR a, b: INTEGER;\nBEGIN\n  a := Lib.Bump(); b := Lib.Bump();\n  WriteInt(a); WriteChar(' '); WriteInt(b); WriteChar(' '); WriteInt(Lib.hits)\nEND Main.\n"

let test_project_compiles_and_runs () =
  let r = Project.compile (project_store ()) in
  Alcotest.(check bool) "ok" true r.Project.ok;
  Alcotest.(check (list string)) "init order: imports before main" [ "Lib"; "Main" ]
    (Project.init_order (project_store ()));
  let run = Mcc_vm.Vm.run r.Project.program in
  Alcotest.(check string) "cross-module calls and state" "1 2 2" run.Mcc_vm.Vm.output;
  Alcotest.(check bool) "finished" true (run.Mcc_vm.Vm.status = Mcc_vm.Vm.Finished)

let test_project_deterministic_output () =
  let d1 = Mcc_codegen.Cunit.disassemble (Project.compile (project_store ())).Project.program in
  List.iter
    (fun strategy ->
      let r =
        Project.compile ~config:{ Driver.default_config with Driver.strategy; procs = 3 }
          (project_store ())
      in
      Alcotest.(check bool)
        ("identical program under " ^ Symtab.dky_name strategy)
        true
        (String.equal d1 (Mcc_codegen.Cunit.disassemble r.Project.program)))
    Symtab.all_concurrent

let test_project_module_error_propagates () =
  let bad =
    store ~name:"Main"
      ~defs:[ ("Lib", "DEFINITION MODULE Lib;\nPROCEDURE F(): INTEGER;\nEND Lib.\n") ]
      ~impls:
        [ ("Lib", "IMPLEMENTATION MODULE Lib;\nPROCEDURE F(): INTEGER;\nBEGIN RETURN nope END F;\nEND Lib.\n") ]
      "IMPLEMENTATION MODULE Main;\nIMPORT Lib;\nBEGIN\nEND Main.\n"
  in
  let r = Project.compile bad in
  Alcotest.(check bool) "error detected in imported module" false r.Project.ok;
  Alcotest.(check bool) "diag mentions the bad name" true
    (List.exists (fun d -> Tutil.contains ~sub:"nope" (Mcc_m2.Diag.to_string d)) r.Project.diags)

let test_stdlib_links_and_runs () =
  let main =
    modsrc ~name:"UseLib"
      ~imports:"IMPORT Strings, MathLib, InOut, Bits;
FROM MathLib IMPORT Gcd;"
      ~decls:"VAR s: BITSET;"
      ~body:
        {|InOut.WritePair(MathLib.Power(2, 10), Gcd(48, 36));
InOut.WriteSpaces(1);
InOut.WriteBool(Strings.Equal("abc", "abc"));
InOut.WriteSpaces(1);
WriteInt(Strings.Length("hello"));
InOut.WriteSpaces(1);
s := {3, 5, 9}; WriteInt(Bits.Count(s)); WriteChar('/'); WriteInt(Bits.Lowest(s));
InOut.WriteSpaces(1);
WriteInt(MathLib.SqrtI(90))|}
      ()
  in
  let store = M2lib.augment (store ~name:"UseLib" main) in
  let r = Project.compile store in
  if not r.Project.ok then
    Alcotest.failf "stdlib program failed:
%s"
      (String.concat "
" (List.map Mcc_m2.Diag.to_string r.Project.diags));
  let run = Mcc_vm.Vm.run r.Project.program in
  Alcotest.(check string) "output" "(1024, 12) TRUE 5 3/3 9" run.Mcc_vm.Vm.output

(* --- property: random generated programs compile identically --- *)

let prop_generated_equivalence =
  QCheck.Test.make ~name:"generated programs: conc == seq (all strategies)" ~count:8
    QCheck.(int_bound 10_000)
    (fun seed ->
      let shape =
        {
          Mcc_synth.Gen.seed;
          name = "Q";
          n_defs = 3;
          depth = 2;
          n_procs = 5;
          nested_per_proc = 1;
          stmts_lo = 4;
          stmts_hi = 10;
          module_vars = 3;
          def_size = 1;
          pad = 0;
          runnable = false;
        }
      in
      let st = Mcc_synth.Gen.generate shape in
      let seq = Seq_driver.compile st in
      seq.Seq_driver.ok
      && List.for_all
           (fun strategy ->
             let c =
               Driver.compile ~config:{ Driver.default_config with Driver.strategy; procs = 5 } st
             in
             c.Driver.ok && String.equal (dis seq.Seq_driver.program) (dis c.Driver.program))
           Symtab.all_concurrent)

let prop_runnable_same_output =
  QCheck.Test.make ~name:"runnable programs: identical VM output via both compilers" ~count:6
    QCheck.(int_bound 10_000)
    (fun seed ->
      let shape =
        {
          Mcc_synth.Gen.seed;
          name = "R";
          n_defs = 0;
          depth = 1;
          n_procs = 4;
          nested_per_proc = 1;
          stmts_lo = 4;
          stmts_hi = 10;
          module_vars = 3;
          def_size = 1;
          pad = 0;
          runnable = true;
        }
      in
      let st = Mcc_synth.Gen.generate shape in
      let seq = Seq_driver.compile st in
      let conc = Driver.compile ~config:Driver.default_config st in
      let r1 = Mcc_vm.Vm.run seq.Seq_driver.program in
      let r2 = Mcc_vm.Vm.run conc.Driver.program in
      seq.Seq_driver.ok && conc.Driver.ok
      && r1.Mcc_vm.Vm.output = r2.Mcc_vm.Vm.output
      && r1.Mcc_vm.Vm.status = Mcc_vm.Vm.Finished)

(* stress: repeated domain-parallel compilations of suite programs must
   stay deterministic in output and never deadlock *)
let test_domain_stress () =
  let stores = [ Mcc_synth.Suite.program 1; Mcc_synth.Suite.program 7 ] in
  List.iter
    (fun st ->
      let reference = dis (Seq_driver.compile st).Seq_driver.program in
      List.iter
        (fun domains ->
          for _ = 1 to 3 do
            let d = Driver.compile_domains ~domains st in
            Alcotest.(check bool) "ok" true d.Driver.d_ok;
            Alcotest.(check bool) "identical output" true
              (String.equal reference (dis d.Driver.d_program))
          done)
        [ 2; 4 ])
    stores

let () =
  Alcotest.run "driver"
    [
      ( "equivalence",
        [
          Alcotest.test_case "all configurations match sequential" `Quick
            test_conc_matches_seq_all_configs;
          Alcotest.test_case "compiled program runs" `Quick test_compiled_program_runs;
          Alcotest.test_case "domain engine matches" `Quick test_domains_match_seq;
          Alcotest.test_case "domain engine stress" `Slow test_domain_stress;
          Tutil.qtest prop_generated_equivalence;
          Tutil.qtest prop_runnable_same_output;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic_simulation;
          Alcotest.test_case "stream accounting" `Quick test_stream_accounting;
          Alcotest.test_case "more processors help" `Quick test_speedup_on_more_processors;
        ] );
      ( "project",
        [
          Alcotest.test_case "compiles and runs" `Quick test_project_compiles_and_runs;
          Alcotest.test_case "deterministic output" `Quick test_project_deterministic_output;
          Alcotest.test_case "module error propagates" `Quick test_project_module_error_propagates;
          Alcotest.test_case "standard library" `Quick test_stdlib_links_and_runs;
        ] );
      ( "failure injection",
        [
          Alcotest.test_case "diagnostics equal" `Quick test_diags_equal_seq_conc;
          Alcotest.test_case "domain diagnostics equal" `Quick test_domains_erroneous_match;
          Alcotest.test_case "import cycle deadlock" `Quick test_import_cycle_detected;
          Alcotest.test_case "missing interface" `Quick test_missing_interface_concurrent;
        ] );
    ]
