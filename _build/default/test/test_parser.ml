(* Tests for syntax analysis and inline declaration analysis, driven
   through the sequential compiler (which exercises the same parser code
   the concurrent streams run). *)

open Tutil
open Mcc_core

let ok_src ?defs src =
  let r = compile_seq ?defs src in
  if not r.Seq_driver.ok then
    Alcotest.failf "expected clean parse, got:\n%s"
      (String.concat "\n" (diag_strings r.Seq_driver.diags))

let test_empty_module () = ok_src "IMPLEMENTATION MODULE T;\nEND T.\n"

let test_program_module_keyword () =
  (* plain MODULE (program module) is accepted *)
  ok_src "MODULE T;\nBEGIN\nEND T.\n"

let test_all_decl_forms () =
  ok_src
    (modsrc
       ~decls:
         {|CONST a = 1; b = a + 2; ch = "x"; r = 1.5; s = {1,2};
TYPE Color = (red, green, blue);
TYPE Small = [0..9];
TYPE Arr = ARRAY [0..3], [0..2] OF INTEGER;
TYPE Rec = RECORD x, y: INTEGER; c: Color END;
TYPE P = POINTER TO Rec;
TYPE S = SET OF Small;
TYPE F = PROCEDURE (INTEGER, VAR CHAR): BOOLEAN;
VAR v1, v2: INTEGER; v3: Rec; v4: P;
PROCEDURE Id(x: INTEGER): INTEGER;
BEGIN RETURN x END Id;|}
       ~body:"v1 := Id(3)" ())

let test_all_stmt_forms () =
  ok_src
    (modsrc
       ~decls:
         {|VAR i, j: INTEGER; b: BOOLEAN; s: BITSET; e: EXCEPTION; mu: MUTEX;
VAR r: RECORD f: INTEGER END;
PROCEDURE P; BEGIN END P;|}
       ~body:
         {|i := 1;
P;
P();
IF i > 0 THEN j := 1 ELSIF i < 0 THEN j := 2 ELSE j := 3 END;
CASE i OF 0: j := 0 | 1, 2: j := 1 | 3..5: j := 2 ELSE j := 9 END;
WHILE i < 10 DO INC(i) END;
REPEAT DEC(i) UNTIL i = 0;
LOOP EXIT END;
FOR i := 0 TO 10 BY 2 DO j := j + i END;
WITH r DO f := 1 END;
s := {1, 3..5};
TRY
  RAISE e;
EXCEPT e:
  j := 1;
FINALLY
  j := 2;
END;
LOCK mu DO j := 3 END;
RETURN|}
       ())

let test_nested_procedures () =
  ok_src
    (modsrc
       ~decls:
         {|PROCEDURE Outer(x: INTEGER): INTEGER;
  PROCEDURE Inner(y: INTEGER): INTEGER;
  BEGIN RETURN y * 2 END Inner;
BEGIN RETURN Inner(x) + 1 END Outer;|}
       ~body:"" ())

let test_forward_pointer () =
  ok_src
    (modsrc
       ~decls:
         {|TYPE List = POINTER TO Node;
TYPE Node = RECORD value: INTEGER; next: List END;
VAR head: List;|}
       ~body:"NEW(head); head^.value := 1; head^.next := NIL" ())

(* --- syntax errors: reported, recovered, deterministic --- *)

let test_missing_semi () =
  expect_error (modsrc ~decls:"VAR x: INTEGER;" ~body:"x := 1 x := 2" ()) "expected ';'"

let test_wrong_end_name () =
  expect_error "IMPLEMENTATION MODULE T;\nEND Wrong.\n" "ends with name"

let test_unclosed_if () =
  expect_error (modsrc ~decls:"VAR x: INTEGER;" ~body:"IF TRUE THEN x := 1" ()) "expected"

let test_error_recovery_continues () =
  (* both errors are reported despite the first one *)
  let r = compile_seq (modsrc ~decls:"VAR x: INTEGER;" ~body:"x := ; x := yy" ()) in
  Alcotest.(check bool) "has errors" false r.Seq_driver.ok;
  Alcotest.(check bool) "multiple diagnostics" true (List.length r.Seq_driver.diags >= 2)

let test_duplicate_declaration () =
  expect_error (modsrc ~decls:"VAR x: INTEGER; x: CHAR;" ~body:"" ()) "already declared"

let test_builtin_redeclaration () =
  expect_error (modsrc ~decls:"VAR INTEGER: CHAR;" ~body:"" ()) "builtin"

let test_opaque_only_in_def () =
  expect_error (modsrc ~decls:"TYPE Hidden;" ~body:"" ()) "definition module"

let test_imports () =
  let defs =
    [
      ( "Lib",
        "DEFINITION MODULE Lib;\nCONST k = 7;\nTYPE T = RECORD a: INTEGER END;\nVAR v: INTEGER;\nPROCEDURE f(x: INTEGER): INTEGER;\nEND Lib.\n"
      );
    ]
  in
  ok_src ~defs
    (modsrc ~imports:"IMPORT Lib;\nFROM Lib IMPORT k;"
       ~decls:"CONST m = k + Lib.k;\nVAR r: Lib.T;"
       ~body:"Lib.v := m; r.a := Lib.v" ())

let test_missing_import () =
  expect_error (modsrc ~imports:"IMPORT NoSuch;" ~decls:"" ~body:"" ()) "cannot find interface"

let test_not_exported () =
  let defs = [ ("Lib", "DEFINITION MODULE Lib;\nCONST k = 1;\nEND Lib.\n") ] in
  let r = compile_seq ~defs (modsrc ~imports:"FROM Lib IMPORT nope;" ~decls:"" ~body:"" ()) in
  Alcotest.(check bool) "error" false r.Seq_driver.ok

let test_def_impl_signature_mismatch () =
  let defs = [ ("T", "DEFINITION MODULE T;\nPROCEDURE f(x: INTEGER): INTEGER;\nEND T.\n") ] in
  expect_error ~defs
    "IMPLEMENTATION MODULE T;\nPROCEDURE f(x: CHAR): INTEGER;\nBEGIN RETURN 1 END f;\nEND T.\n"
    "does not match"

let test_def_impl_signature_match () =
  let defs = [ ("T", "DEFINITION MODULE T;\nPROCEDURE f(x: INTEGER): INTEGER;\nEND T.\n") ] in
  ok_src ~defs
    "IMPLEMENTATION MODULE T;\nPROCEDURE f(x: INTEGER): INTEGER;\nBEGIN RETURN x END f;\nEND T.\n"

(* statement-tree size metric drives long/short classification *)
let test_stmt_size () =
  let open Mcc_ast.Ast in
  let loc = Mcc_m2.Loc.none in
  let assign = { s = SAssign ({ e = EInt 1; eloc = loc }, { e = EInt 2; eloc = loc }); sloc = loc } in
  Alcotest.(check int) "single" 1 (stmt_size assign);
  let loop = { s = SLoop [ assign; assign ]; sloc = loc } in
  Alcotest.(check int) "nested" 3 (stmt_size loop)

(* Robustness: the parser must terminate without raising on arbitrary
   token soup (panic-mode recovery always makes progress). *)
let garbage_token_gen =
  QCheck.Gen.(
    let tok =
      oneof
        [
          map (fun n -> Printf.sprintf "%d" (abs n)) small_int;
          map (fun n -> Printf.sprintf "id%d" (abs n mod 5)) small_int;
          oneofl
            [ "BEGIN"; "END"; "IF"; "THEN"; "ELSE"; "PROCEDURE"; "VAR"; "CONST"; "TYPE";
              "RECORD"; "ARRAY"; "OF"; "WHILE"; "DO"; "CASE"; "LOOP"; "RETURN"; "IMPORT";
              "FROM"; "TRY"; "EXCEPT"; ":="; ";"; ":"; ","; "("; ")"; "["; "]"; "^"; "|";
              ".."; "."; "+"; "*"; "#"; "{"; "}"; "\"str\""; "'c'"; "3.14"; "0FFH" ]
        ]
    in
    map (String.concat " ") (list_size (int_bound 120) tok))

let prop_parser_never_raises =
  QCheck.Test.make ~name:"parser survives arbitrary token soup" ~count:300 ~max_gen:3000
    (QCheck.make garbage_token_gen)
    (fun soup ->
      let src = "IMPLEMENTATION MODULE T;\n" ^ soup ^ "\nEND T.\n" in
      match compile_seq src with
      | (_ : Mcc_core.Seq_driver.result) -> true
      | exception e -> QCheck.Test.fail_reportf "parser raised %s on:\n%s" (Printexc.to_string e) src)

let () =
  Alcotest.run "parser"
    [
      ( "accepts",
        [
          Alcotest.test_case "empty module" `Quick test_empty_module;
          Alcotest.test_case "program module" `Quick test_program_module_keyword;
          Alcotest.test_case "all declaration forms" `Quick test_all_decl_forms;
          Alcotest.test_case "all statement forms" `Quick test_all_stmt_forms;
          Alcotest.test_case "nested procedures" `Quick test_nested_procedures;
          Alcotest.test_case "forward pointer" `Quick test_forward_pointer;
          Alcotest.test_case "imports" `Quick test_imports;
          Alcotest.test_case "def/impl match" `Quick test_def_impl_signature_match;
        ] );
      ( "rejects",
        [
          Alcotest.test_case "missing semicolon" `Quick test_missing_semi;
          Alcotest.test_case "wrong end name" `Quick test_wrong_end_name;
          Alcotest.test_case "unclosed if" `Quick test_unclosed_if;
          Alcotest.test_case "recovery continues" `Quick test_error_recovery_continues;
          Alcotest.test_case "duplicate declaration" `Quick test_duplicate_declaration;
          Alcotest.test_case "builtin redeclaration" `Quick test_builtin_redeclaration;
          Alcotest.test_case "opaque outside def" `Quick test_opaque_only_in_def;
          Alcotest.test_case "missing import" `Quick test_missing_import;
          Alcotest.test_case "not exported" `Quick test_not_exported;
          Alcotest.test_case "def/impl mismatch" `Quick test_def_impl_signature_mismatch;
        ] );
      ("ast", [ Alcotest.test_case "stmt size" `Quick test_stmt_size ]);
      ("robustness", [ Tutil.qtest prop_parser_never_raises ]);
    ]
