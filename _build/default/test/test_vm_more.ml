(* Deeper language-semantics coverage: the long tail of Modula-2+
   behaviours, each compiled and executed. *)

open Tutil

let check_out name expected ?defs ?input src =
  Alcotest.(check string) name expected (output ?defs ?input src)

let body ?(decls = "") b = modsrc ~decls ~body:b ()

let test_builtin_functions_runtime () =
  check_out "VAL with range check" "2"
    (body ~decls:"TYPE Small = [0..5];\nVAR s: Small;" "s := VAL(Small, 1 + 1); WriteInt(s)");
  check_out "MIN MAX of subrange" "3 9"
    (body ~decls:"TYPE R = [3..9];"
       "WriteInt(MIN(R)); WriteChar(' '); WriteInt(MAX(R))");
  check_out "MAX of CHAR ordinal" "255" (body "WriteInt(ORD(MAX(CHAR)))");
  check_out "SIZE is 1 slot" "1" (body "WriteInt(SIZE(INTEGER))");
  check_out "CAP chain" "A" (body "WriteChar(CAP(CHR(ORD('a'))))");
  check_out "math builtins" "2 1"
    (body
       "WriteInt(TRUNC(sqrt(4.0))); WriteChar(' '); WriteInt(TRUNC(exp(0.0)))")

let test_val_out_of_range_traps () =
  let _, status = run_seq (body ~decls:"TYPE Small = [0..5];\nVAR s: Small; x: INTEGER;" "x := 9; s := VAL(Small, x)") in
  match status with
  | Mcc_vm.Vm.Trap m -> Alcotest.(check bool) "range" true (contains ~sub:"range" m)
  | s -> Alcotest.failf "expected trap, got %s" (Mcc_vm.Vm.status_to_string s)

let test_nested_with_shadowing () =
  check_out "inner WITH shadows outer" "5 7"
    (body
       ~decls:
         {|TYPE R = RECORD v: INTEGER END;
VAR a, b: R;|}
       {|a.v := 0; b.v := 0;
WITH a DO
  v := 5;
  WITH b DO v := 7 END
END;
WriteInt(a.v); WriteChar(' '); WriteInt(b.v)|})

let test_with_over_pointer () =
  check_out "WITH p^" "21"
    (body
       ~decls:"TYPE R = RECORD v: INTEGER END;\nTYPE P = POINTER TO R;\nVAR p: P;"
       "NEW(p); WITH p^ DO v := 21 END; WriteInt(p^.v)")

let test_exit_innermost_loop () =
  check_out "EXIT leaves only the innermost LOOP" "3 3"
    (body ~decls:"VAR n, inner: INTEGER;"
       {|n := 0; inner := 0;
LOOP
  INC(n);
  LOOP INC(inner); EXIT END;
  IF n >= 3 THEN EXIT END
END;
WriteInt(n); WriteChar(' '); WriteInt(inner)|})

let test_nested_try_rethrow () =
  check_out "inner handler misses, outer catches" "outer done"
    (body ~decls:"VAR e1, e2: EXCEPTION;"
       {|TRY
  TRY
    RAISE e1
  EXCEPT e2:
    WriteString("wrong")
  END
EXCEPT e1:
  WriteString("outer")
END;
WriteString(" done")|});
  check_out "finally runs while propagating" "F caught"
    (body ~decls:"VAR e: EXCEPTION;"
       {|TRY
  TRY RAISE e FINALLY WriteString("F ") END
EXCEPT e:
  WriteString("caught")
END|})

let test_char_for_loop () =
  check_out "FOR over CHAR" "abcde"
    (body ~decls:"VAR c: CHAR;" "FOR c := 'a' TO 'e' DO WriteChar(c) END")

let test_char_case_labels () =
  check_out "CASE on CHAR" "vowel"
    (body ~decls:"VAR c: CHAR;"
       {|c := 'e';
CASE c OF 'a', 'e', 'i', 'o', 'u': WriteString("vowel") ELSE WriteString("other") END|})

let test_enum_case_labels () =
  check_out "CASE on enumeration" "go"
    (body
       ~decls:"TYPE Light = (red, yellow, green);\nVAR l: Light;"
       {|l := green;
CASE l OF red: WriteString("stop") | yellow: WriteString("wait") | green: WriteString("go") END|})

let test_var_open_array_mutation () =
  check_out "VAR open array writes through" "10 20 30"
    (modsrc
       ~decls:
         {|VAR d: ARRAY [0..2] OF INTEGER;
VAR i: INTEGER;
PROCEDURE Scale(VAR a: ARRAY OF INTEGER; k: INTEGER);
VAR i: INTEGER;
BEGIN
  FOR i := 0 TO HIGH(a) DO a[i] := a[i] * k END
END Scale;|}
       ~body:
         {|FOR i := 0 TO 2 DO d[i] := i + 1 END;
Scale(d, 10);
FOR i := 0 TO 2 DO WriteInt(d[i]); IF i < 2 THEN WriteChar(' ') END END|}
       ())

let test_proc_type_params () =
  check_out "procedure passed as parameter" "16"
    (modsrc
       ~decls:
         {|TYPE F = PROCEDURE (INTEGER): INTEGER;
PROCEDURE Twice(f: F; x: INTEGER): INTEGER;
BEGIN RETURN f(f(x)) END Twice;
PROCEDURE Double(x: INTEGER): INTEGER;
BEGIN RETURN x * 2 END Double;|}
       ~body:"WriteInt(Twice(Double, 4))" ())

let test_deep_structures () =
  check_out "array of records, deep copy" "1 99"
    (body
       ~decls:
         {|TYPE R = RECORD v: INTEGER END;
TYPE T = ARRAY [0..1] OF R;
VAR a, b: T;|}
       {|a[0].v := 1; a[1].v := 2;
b := a;
a[0].v := 99;
WriteInt(b[0].v); WriteChar(' '); WriteInt(a[0].v)|});
  check_out "record containing array" "6"
    (body
       ~decls:
         {|TYPE R = RECORD sum: INTEGER; data: ARRAY [0..2] OF INTEGER END;
VAR r: R; i: INTEGER;|}
       {|FOR i := 0 TO 2 DO r.data[i] := i + 1 END;
r.sum := 0;
FOR i := 0 TO 2 DO r.sum := r.sum + r.data[i] END;
WriteInt(r.sum)|})

let test_dispose () =
  let _, status =
    run_seq
      (body ~decls:"TYPE P = POINTER TO INTEGER;\nVAR p: P;"
         "NEW(p); p^ := 1; DISPOSE(p); p^ := 2")
  in
  match status with
  | Mcc_vm.Vm.Trap m -> Alcotest.(check bool) "dangling becomes NIL" true (contains ~sub:"NIL" m)
  | s -> Alcotest.failf "expected NIL trap, got %s" (Mcc_vm.Vm.status_to_string s)

let test_string_padding () =
  check_out "short string into char array, 0C padded" "ab"
    (body
       ~decls:"VAR s: ARRAY [0..4] OF CHAR;"
       {|s := "ab"; WriteString(s)|})

let test_subrange_for () =
  check_out "FOR over a subrange variable" "3 4 5"
    (body ~decls:"VAR i: [3..5];"
       "FOR i := 3 TO 5 DO WriteInt(i); IF i < 5 THEN WriteChar(' ') END END")

let test_pointer_identity () =
  check_out "pointer equality is identity" "same diff nil"
    (body
       ~decls:"TYPE P = POINTER TO INTEGER;\nVAR p, q: P;"
       {|NEW(p); q := p;
IF p = q THEN WriteString("same") END; WriteChar(' ');
NEW(q);
IF p # q THEN WriteString("diff") END; WriteChar(' ');
p := NIL;
IF p = NIL THEN WriteString("nil") END|})

let test_from_import_alias_runtime () =
  let defs =
    [ ("K", "DEFINITION MODULE K;\nCONST magic = 99;\nVAR slot: INTEGER;\nEND K.\n") ]
  in
  check_out "FROM-imported const and var" "99 100" ~defs
    (modsrc ~imports:"FROM K IMPORT magic, slot;" ~decls:""
       ~body:"slot := magic + 1; WriteInt(magic); WriteChar(' '); WriteInt(slot)" ())

let test_qualified_proc_var () =
  (* a procedure variable declared in an interface, assigned and called
     through the importing module *)
  let defs =
    [
      ( "H",
        "DEFINITION MODULE H;\nTYPE F = PROCEDURE (INTEGER): INTEGER;\nVAR hook: F;\nEND H.\n" );
    ]
  in
  check_out "hook through interface storage" "8" ~defs
    (modsrc ~imports:"IMPORT H;"
       ~decls:{|PROCEDURE Inc3(x: INTEGER): INTEGER;
BEGIN RETURN x + 3 END Inc3;|}
       ~body:"H.hook := Inc3; WriteInt(H.hook(5))" ())

let test_real_semantics () =
  check_out "real compare and negation" "lt 2.25"
    (body ~decls:"VAR a, b: REAL;"
       {|a := 1.5; b := -1.5;
IF b < a THEN WriteString("lt ") END;
WriteReal(a * a)|});
  check_out "float/trunc interplay" "7"
    (body ~decls:"VAR r: REAL; n: INTEGER;" "n := 3; r := FLOAT(n) * 2.5; WriteInt(TRUNC(r))")

let test_string_relations () =
  check_out "string ordering" "lt eq"
    (body
       {|IF "abc" < "abd" THEN WriteString("lt ") END;
IF "x" = "x" THEN WriteString("eq") END|})

let test_write_formats () =
  check_out "negative ints and reals" "-42 -0.5"
    (body ~decls:"VAR r: REAL;" {|WriteInt(-42); WriteChar(' '); r := -0.5; WriteReal(r)|})

let test_abs_on_subrange () =
  check_out "ABS preserves subrange values" "3"
    (body ~decls:"VAR s: [0..9];" "s := 3; WriteInt(ABS(s))")

let test_deep_call_chain () =
  (* recursion depth: interpreter frames are OCaml stack frames *)
  check_out "depth 2000 recursion" "2001000"
    (modsrc
       ~decls:
         {|PROCEDURE Sum(n: INTEGER): INTEGER;
BEGIN IF n = 0 THEN RETURN 0 ELSE RETURN n + Sum(n - 1) END END Sum;|}
       ~body:"WriteInt(Sum(2000))" ())

let test_module_body_statements_order () =
  (* the module body runs exactly once, top to bottom *)
  check_out "sequencing" "abc"
    (body "WriteChar('a'); WriteChar('b'); WriteChar('c')")

let () =
  Alcotest.run "vm_more"
    [
      ( "builtins",
        [
          Alcotest.test_case "runtime functions" `Quick test_builtin_functions_runtime;
          Alcotest.test_case "VAL range trap" `Quick test_val_out_of_range_traps;
        ] );
      ( "scoping",
        [
          Alcotest.test_case "nested WITH" `Quick test_nested_with_shadowing;
          Alcotest.test_case "WITH over pointer" `Quick test_with_over_pointer;
          Alcotest.test_case "FROM-import at runtime" `Quick test_from_import_alias_runtime;
          Alcotest.test_case "interface procedure variables" `Quick test_qualified_proc_var;
        ] );
      ( "control",
        [
          Alcotest.test_case "EXIT innermost" `Quick test_exit_innermost_loop;
          Alcotest.test_case "nested TRY" `Quick test_nested_try_rethrow;
          Alcotest.test_case "FOR over CHAR" `Quick test_char_for_loop;
          Alcotest.test_case "CASE on CHAR" `Quick test_char_case_labels;
          Alcotest.test_case "CASE on enumeration" `Quick test_enum_case_labels;
          Alcotest.test_case "FOR over subrange" `Quick test_subrange_for;
        ] );
      ( "data",
        [
          Alcotest.test_case "VAR open arrays" `Quick test_var_open_array_mutation;
          Alcotest.test_case "procedure parameters" `Quick test_proc_type_params;
          Alcotest.test_case "deep structures" `Quick test_deep_structures;
          Alcotest.test_case "dispose" `Quick test_dispose;
          Alcotest.test_case "string padding" `Quick test_string_padding;
          Alcotest.test_case "pointer identity" `Quick test_pointer_identity;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "reals" `Quick test_real_semantics;
          Alcotest.test_case "string relations" `Quick test_string_relations;
          Alcotest.test_case "write formats" `Quick test_write_formats;
          Alcotest.test_case "ABS on subrange" `Quick test_abs_on_subrange;
          Alcotest.test_case "deep recursion" `Quick test_deep_call_chain;
          Alcotest.test_case "body sequencing" `Quick test_module_body_statements_order;
        ] );
    ]
