test/test_synth.ml: Alcotest Driver Gen List Mcc_core Mcc_m2 Mcc_sem Mcc_stats Mcc_synth Mcc_vm Seq_driver Source_store String Suite
