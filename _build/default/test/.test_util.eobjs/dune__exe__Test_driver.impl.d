test/test_driver.ml: Alcotest Driver List M2lib Mcc_codegen Mcc_core Mcc_m2 Mcc_sched Mcc_sem Mcc_synth Mcc_vm Printf Project QCheck Seq_driver String Tutil
