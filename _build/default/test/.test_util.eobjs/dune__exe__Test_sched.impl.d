test/test_sched.ml: Alcotest Atomic Des_engine Domain_engine Eff Event List Mcc_sched Printf Task Trace Tutil
