test/test_parser.ml: Alcotest List Mcc_ast Mcc_core Mcc_m2 Printexc Printf QCheck Seq_driver String Tutil
