test/tutil.ml: Alcotest Driver List Mcc_codegen Mcc_core Mcc_m2 Mcc_vm Printf QCheck_alcotest Seq_driver Source_store String
