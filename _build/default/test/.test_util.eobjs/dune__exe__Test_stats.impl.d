test/test_stats.ml: Alcotest Driver Imports List Mcc_core Mcc_sched Mcc_sem Mcc_stats Mcc_synth Seq_driver Source_store Speedup String Tables Tutil Watchtool
