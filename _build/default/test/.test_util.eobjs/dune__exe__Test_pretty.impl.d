test/test_pretty.ml: Alcotest Diag Lexer List Mcc_ast Mcc_core Mcc_m2 Mcc_parse Mcc_sem Mcc_synth QCheck Reader Seq_driver Source_store String Tutil
