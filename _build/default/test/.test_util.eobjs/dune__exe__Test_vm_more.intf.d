test/test_vm_more.mli:
