test/test_splitter.mli:
