test/test_m2lib.mli:
