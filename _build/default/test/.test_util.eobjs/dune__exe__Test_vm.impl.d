test/test_vm.ml: Alcotest Array Mcc_vm Printf QCheck Tutil
