test/test_errors.ml: Alcotest List Mcc_core Mcc_m2 Mcc_sched Mcc_sem Printf String Tutil
