test/test_util.ml: Alcotest Deque Heap List Mcc_util Prng QCheck Tablefmt Tutil Vec
