test/test_splitter.ml: Alcotest Des_engine Eff Hashtbl Lexer List Mcc_core Mcc_m2 Mcc_sched Mcc_sem Reader String Task Token Tokq
