test/test_tokq.mli:
