test/test_sem.ml: Alcotest Builtins Des_engine Eff List Lookup_stats Mcc_sched Mcc_sem Option Printf QCheck String Symbol Symtab Task Tutil Types
