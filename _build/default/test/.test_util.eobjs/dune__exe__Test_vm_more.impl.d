test/test_vm_more.ml: Alcotest Mcc_vm Tutil
