test/test_lexer.ml: Alcotest Char Format Lexer List Loc Mcc_m2 Printf QCheck String Token Tutil
