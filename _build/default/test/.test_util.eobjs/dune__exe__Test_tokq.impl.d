test/test_tokq.ml: Alcotest Des_engine Eff Fun List Loc Mcc_m2 Mcc_sched QCheck Reader Task Token Tokq Tutil
