test/test_m2lib.ml: Alcotest Driver List M2lib Mcc_codegen Mcc_core Mcc_m2 Mcc_sem Mcc_vm Project String Tutil
