(* Tests for the synthetic program generator and the evaluation suite. *)

open Mcc_core
open Mcc_synth

let test_generation_deterministic () =
  let shape = List.nth Suite.shapes 4 in
  let a = Gen.generate shape and b = Gen.generate shape in
  Alcotest.(check string) "same main source" (Source_store.main_src a) (Source_store.main_src b);
  Alcotest.(check (list string)) "same interfaces" (Source_store.def_names a)
    (Source_store.def_names b)

let test_different_seeds_differ () =
  let shape = List.nth Suite.shapes 4 in
  let a = Gen.generate shape in
  let b = Gen.generate { shape with Gen.seed = shape.Gen.seed + 1 } in
  Alcotest.(check bool) "sources differ" false
    (String.equal (Source_store.main_src a) (Source_store.main_src b))

let test_whole_suite_compiles () =
  List.iteri
    (fun i store ->
      let seq = Seq_driver.compile store in
      if not seq.Seq_driver.ok then
        Alcotest.failf "suite program %d has errors:\n%s" i
          (String.concat "\n"
             (List.map Mcc_m2.Diag.to_string seq.Seq_driver.diags)))
    (Suite.all ())

let test_suite_size () = Alcotest.(check int) "37 programs" 37 Suite.n_programs

let test_suite_attribute_ranges () =
  (* the suite must stay within the paper's Table 1 envelope (loosely) *)
  List.iter
    (fun store ->
      let c = Driver.compile ~config:{ Driver.default_config with Driver.procs = 1 } store in
      Alcotest.(check bool) "compiles" true c.Driver.ok;
      let interfaces, depth = Mcc_stats.Imports.analyze store in
      if interfaces < 1 || interfaces > 140 then Alcotest.failf "interfaces out of range: %d" interfaces;
      if depth < 1 || depth > 12 then Alcotest.failf "depth out of range: %d" depth;
      if c.Driver.n_proc_streams < 2 || c.Driver.n_proc_streams > 300 then
        Alcotest.failf "procedures out of range: %d" c.Driver.n_proc_streams)
    [ Suite.program 0; Suite.program 18; Suite.program 36 ]

let test_synth_best_properties () =
  let store = Suite.synth_best () in
  let c = Driver.compile ~config:Driver.default_config store in
  Alcotest.(check bool) "compiles" true c.Driver.ok;
  Alcotest.(check int) "no imports" 0 c.Driver.n_def_streams;
  Alcotest.(check int) "never incurs a DKY blockage" 0
    (Mcc_sem.Lookup_stats.dky_blocks c.Driver.stats)

let test_runnable_terminates () =
  let shape =
    {
      Gen.seed = 99;
      name = "RT";
      n_defs = 0;
      depth = 1;
      n_procs = 6;
      nested_per_proc = 1;
      stmts_lo = 8;
      stmts_hi = 20;
      module_vars = 4;
      def_size = 1;
      pad = 0;
      runnable = true;
    }
  in
  let store = Gen.generate shape in
  let seq = Seq_driver.compile store in
  Alcotest.(check bool) "compiles" true seq.Seq_driver.ok;
  let r = Mcc_vm.Vm.run seq.Seq_driver.program in
  Alcotest.(check bool) "finishes" true (r.Mcc_vm.Vm.status = Mcc_vm.Vm.Finished);
  Alcotest.(check bool) "produced output" true (String.length r.Mcc_vm.Vm.output > 0)

let test_pad_grows_size_not_work () =
  let base = { (List.nth Suite.shapes 2) with Gen.pad = 0; name = "PA" } in
  let padded = { base with Gen.pad = 3000; name = "PA" } in
  let a = Gen.generate base and b = Gen.generate padded in
  let wa = (Seq_driver.compile a).Seq_driver.cost_units in
  let wb = (Seq_driver.compile b).Seq_driver.cost_units in
  let sa = String.length (Source_store.main_src a) in
  let sb = String.length (Source_store.main_src b) in
  Alcotest.(check bool) "padding grows bytes" true (sb > sa + 1000);
  Alcotest.(check bool) "padding grows work sublinearly" true
    (wb /. wa < float_of_int sb /. float_of_int sa)

let () =
  Alcotest.run "synth"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generation_deterministic;
          Alcotest.test_case "seed-sensitive" `Quick test_different_seeds_differ;
          Alcotest.test_case "runnable terminates" `Quick test_runnable_terminates;
          Alcotest.test_case "comment padding" `Quick test_pad_grows_size_not_work;
        ] );
      ( "suite",
        [
          Alcotest.test_case "size" `Quick test_suite_size;
          Alcotest.test_case "whole suite compiles" `Slow test_whole_suite_compiles;
          Alcotest.test_case "attribute ranges" `Quick test_suite_attribute_ranges;
          Alcotest.test_case "Synth.mod best case" `Quick test_synth_best_properties;
        ] );
    ]
