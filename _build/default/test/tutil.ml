(* Shared helpers for the test suite. *)

open Mcc_core

let store ?(defs = []) ?(impls = []) ~name src =
  Source_store.make ~impls ~main_name:name ~main_src:src ~defs ()

(* A minimal module wrapping [decls] and [body] statements. *)
let modsrc ?(name = "T") ?(imports = "") ~decls ~body () =
  Printf.sprintf "IMPLEMENTATION MODULE %s;\n%s\n%s\nBEGIN\n%s\nEND %s.\n" name imports decls body
    name

let compile_seq ?defs ?name:(n = "T") src = Seq_driver.compile (store ?defs ~name:n src)

let compile_conc ?(config = Driver.default_config) ?defs ?name:(n = "T") src =
  Driver.compile ~config (store ?defs ~name:n src)

let dis p = Mcc_codegen.Cunit.disassemble p

(* Compile sequentially and run in the VM; returns (output, status). *)
let run_seq ?defs ?name ?input src =
  let r = compile_seq ?defs ?name src in
  if not r.Seq_driver.ok then
    Alcotest.failf "compile errors:\n%s"
      (String.concat "\n" (List.map Mcc_m2.Diag.to_string r.Seq_driver.diags));
  let res = Mcc_vm.Vm.run ?input r.Seq_driver.program in
  (res.Mcc_vm.Vm.output, res.Mcc_vm.Vm.status)

(* Expect a clean run and return the output. *)
let output ?defs ?name ?input src =
  let out, status = run_seq ?defs ?name ?input src in
  (match status with
  | Mcc_vm.Vm.Finished | Mcc_vm.Vm.Halt_called -> ()
  | s -> Alcotest.failf "program did not finish: %s (output %S)" (Mcc_vm.Vm.status_to_string s) out);
  out

let diag_strings diags = List.map Mcc_m2.Diag.to_string diags

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* Assert that compilation fails and some diagnostic contains [substr]. *)
let expect_error ?defs ?name src substr =
  let r = compile_seq ?defs ?name src in
  if r.Seq_driver.ok then Alcotest.failf "expected a compile error mentioning %S" substr;
  let msgs = diag_strings r.Seq_driver.diags in
  if not (List.exists (contains ~sub:substr) msgs) then
    Alcotest.failf "no diagnostic mentions %S; got:\n%s" substr (String.concat "\n" msgs)

let qtest = QCheck_alcotest.to_alcotest
