(* End-to-end language-semantics tests: compile with the sequential
   compiler and execute in the VM, checking program output.  (The driver
   tests separately prove that the concurrent compiler produces
   byte-identical programs, so these tests cover both.) *)

open Tutil

let check_out name expected ?defs ?input src =
  Alcotest.(check string) name expected (output ?defs ?input src)

let body ?(decls = "") b = modsrc ~decls ~body:b ()

(* --- arithmetic and expressions --- *)

let test_arith () =
  check_out "arith" "42"
    (body ~decls:"VAR x: INTEGER;" "x := (5 + 2) * 6; WriteInt(x)");
  check_out "div mod" "5 2"
    (body ~decls:"VAR x: INTEGER;"
       "x := 17 DIV 3; WriteInt(x); WriteChar(' '); WriteInt(17 MOD 3)");
  check_out "negative mod is non-negative" "1"
    (body ~decls:"VAR x: INTEGER;" "x := (-5) MOD 3; WriteInt(x)");
  check_out "unary" "-7" (body ~decls:"VAR x: INTEGER;" "x := -7; WriteInt(x)");
  check_out "precedence" "14" (body "WriteInt(2 + 3 * 4)")

let test_reals () =
  check_out "real arith" "3.5" (body ~decls:"VAR r: REAL;" "r := 7.0 / 2.0; WriteReal(r)");
  check_out "float trunc" "3" (body "WriteInt(TRUNC(FLOAT(3) + 0.25))");
  check_out "sqrt" "4" (body "WriteInt(TRUNC(sqrt(16.0)))")

let test_booleans () =
  check_out "and or not" "TRUE"
    (body ~decls:"VAR b: BOOLEAN;"
       {|b := (1 < 2) AND NOT (3 = 4) OR FALSE;
IF b THEN WriteString("TRUE") ELSE WriteString("FALSE") END|});
  (* short circuit: the second operand must not trap *)
  check_out "short circuit and" "ok"
    (body ~decls:"VAR x: INTEGER;"
       {|x := 0;
IF (x # 0) AND (10 DIV x > 1) THEN WriteString("bad") ELSE WriteString("ok") END|});
  check_out "short circuit or" "ok"
    (body ~decls:"VAR x: INTEGER;"
       {|x := 0;
IF (x = 0) OR (10 DIV x > 1) THEN WriteString("ok") ELSE WriteString("bad") END|})

let test_chars_strings () =
  check_out "char ops" "B" (body "WriteChar(CHR(ORD('A') + 1))");
  check_out "cap" "X" (body "WriteChar(CAP('x'))");
  check_out "string out" "hello world" (body {|WriteString("hello world")|});
  check_out "char compare" "yes"
    (body {|IF 'a' < 'b' THEN WriteString("yes") END|})

(* --- control flow --- *)

let test_if_elsif () =
  check_out "chain" "mid"
    (body ~decls:"VAR x: INTEGER;"
       {|x := 5;
IF x < 3 THEN WriteString("low")
ELSIF x < 8 THEN WriteString("mid")
ELSE WriteString("high") END|})

let test_while_repeat_loop () =
  check_out "while" "10"
    (body ~decls:"VAR i, s: INTEGER;" "i := 0; s := 0; WHILE i < 4 DO s := s + i; INC(i) END; WriteInt(s-(-4))");
  check_out "repeat" "3"
    (body ~decls:"VAR i: INTEGER;" "i := 0; REPEAT INC(i) UNTIL i >= 3; WriteInt(i)");
  check_out "loop exit" "5"
    (body ~decls:"VAR i: INTEGER;" "i := 0; LOOP INC(i); IF i = 5 THEN EXIT END END; WriteInt(i)")

let test_for () =
  check_out "sum" "55"
    (body ~decls:"VAR i, s: INTEGER;" "s := 0; FOR i := 1 TO 10 DO s := s + i END; WriteInt(s)");
  check_out "by step" "20"
    (body ~decls:"VAR i, s: INTEGER;" "s := 0; FOR i := 0 TO 8 BY 2 DO s := s + i END; WriteInt(s)");
  check_out "downward" "6"
    (body ~decls:"VAR i, s: INTEGER;" "s := 0; FOR i := 3 TO 1 BY -1 DO s := s + i END; WriteInt(s)");
  check_out "empty range body skipped" "0"
    (body ~decls:"VAR i, s: INTEGER;" "s := 0; FOR i := 5 TO 1 DO s := 9 END; WriteInt(s)")

let test_case () =
  let prog sel =
    body ~decls:"VAR x, r: INTEGER;"
      (Printf.sprintf
         "x := %d; CASE x OF 0: r := 100 | 1, 3: r := 200 | 5..7: r := 300 ELSE r := 400 END; WriteInt(r)"
         sel)
  in
  check_out "label" "100" (prog 0);
  check_out "list" "200" (prog 3);
  check_out "range" "300" (prog 6);
  check_out "else" "400" (prog 9)

let test_case_no_match_traps () =
  let _, status =
    run_seq
      (body ~decls:"VAR x: INTEGER;" "x := 9; CASE x OF 0: x := 1 END")
  in
  match status with
  | Mcc_vm.Vm.Trap m ->
      Alcotest.(check bool) "case trap" true (Tutil.contains ~sub:"CASE" m)
  | s -> Alcotest.failf "expected a trap, got %s" (Mcc_vm.Vm.status_to_string s)

(* --- procedures --- *)

let test_procedures () =
  check_out "recursion" "120"
    (modsrc
       ~decls:
         {|PROCEDURE Fact(n: INTEGER): INTEGER;
BEGIN IF n <= 1 THEN RETURN 1 ELSE RETURN n * Fact(n - 1) END END Fact;|}
       ~body:"WriteInt(Fact(5))" ());
  check_out "mutual recursion" "TRUE"
    (modsrc
       ~decls:
         {|PROCEDURE IsEven(n: INTEGER): BOOLEAN;
BEGIN IF n = 0 THEN RETURN TRUE ELSE RETURN IsOdd(n - 1) END END IsEven;
PROCEDURE IsOdd(n: INTEGER): BOOLEAN;
BEGIN IF n = 0 THEN RETURN FALSE ELSE RETURN IsEven(n - 1) END END IsOdd;|}
       ~body:{|IF IsEven(10) THEN WriteString("TRUE") END|} ());
  check_out "var params" "7"
    (modsrc
       ~decls:
         {|VAR g: INTEGER;
PROCEDURE SetTo(VAR dst: INTEGER; v: INTEGER);
BEGIN dst := v END SetTo;|}
       ~body:"SetTo(g, 7); WriteInt(g)" ());
  check_out "value params copied" "1"
    (modsrc
       ~decls:
         {|VAR g: INTEGER;
PROCEDURE Clobber(x: INTEGER);
BEGIN x := 999 END Clobber;|}
       ~body:"g := 1; Clobber(g); WriteInt(g)" ());
  check_out "nested procedure" "9"
    (modsrc
       ~decls:
         {|PROCEDURE Outer(x: INTEGER): INTEGER;
  PROCEDURE Triple(y: INTEGER): INTEGER;
  BEGIN RETURN y * 3 END Triple;
BEGIN RETURN Triple(x) END Outer;|}
       ~body:"WriteInt(Outer(3))" ())

let test_proc_values () =
  check_out "procedure variables" "25"
    (modsrc
       ~decls:
         {|TYPE F = PROCEDURE (INTEGER): INTEGER;
VAR f: F;
PROCEDURE Sq(x: INTEGER): INTEGER; BEGIN RETURN x * x END Sq;|}
       ~body:"f := Sq; WriteInt(f(5))" ())

let test_function_must_return () =
  let _, status =
    run_seq
      (modsrc
         ~decls:{|PROCEDURE Bad(x: INTEGER): INTEGER;
BEGIN IF x > 0 THEN RETURN 1 END END Bad;|}
         ~body:"WriteInt(Bad(-1))" ())
  in
  match status with
  | Mcc_vm.Vm.Trap m -> Alcotest.(check bool) "noreturn" true (Tutil.contains ~sub:"RETURN" m)
  | s -> Alcotest.failf "expected trap, got %s" (Mcc_vm.Vm.status_to_string s)

(* --- data structures --- *)

let test_arrays () =
  check_out "fill and sum" "30"
    (body ~decls:"VAR a: ARRAY [0..4] OF INTEGER; i, s: INTEGER;"
       "FOR i := 0 TO 4 DO a[i] := i * 3 END; s := 0; FOR i := 0 TO 4 DO s := s + a[i] END; WriteInt(s)");
  check_out "non-zero base" "5"
    (body ~decls:"VAR a: ARRAY [3..7] OF INTEGER;" "a[3] := 2; a[7] := 3; WriteInt(a[3] + a[7])");
  check_out "multi-dimensional" "6"
    (body ~decls:"VAR m: ARRAY [0..1], [0..2] OF INTEGER;"
       "m[0, 1] := 2; m[1, 2] := 4; WriteInt(m[0][1] + m[1, 2])");
  check_out "array assignment copies" "1"
    (body ~decls:"VAR a, b: ARRAY [0..2] OF INTEGER;"
       "a[0] := 1; b := a; a[0] := 99; WriteInt(b[0])")

let test_array_bounds_trap () =
  let _, status =
    run_seq
      (body ~decls:"VAR a: ARRAY [0..4] OF INTEGER; i: INTEGER;" "i := 7; a[i] := 1")
  in
  match status with
  | Mcc_vm.Vm.Trap m -> Alcotest.(check bool) "bounds" true (Tutil.contains ~sub:"range" m)
  | s -> Alcotest.failf "expected trap, got %s" (Mcc_vm.Vm.status_to_string s)

let test_open_arrays () =
  check_out "high and elements" "3 60"
    (modsrc
       ~decls:
         {|VAR data: ARRAY [0..3] OF INTEGER; i: INTEGER;
PROCEDURE Sum(a: ARRAY OF INTEGER): INTEGER;
VAR i, s: INTEGER;
BEGIN
  WriteInt(HIGH(a)); WriteChar(' ');
  s := 0;
  FOR i := 0 TO HIGH(a) DO s := s + a[i] END;
  RETURN s
END Sum;|}
       ~body:"FOR i := 0 TO 3 DO data[i] := (i+1) * 6 END; WriteInt(Sum(data))" ());
  check_out "string to open char array" "5"
    (modsrc
       ~decls:
         {|PROCEDURE Len(s: ARRAY OF CHAR): INTEGER;
BEGIN RETURN HIGH(s) + 1 END Len;|}
       ~body:{|WriteInt(Len("abcde"))|} ())

let test_records_with () =
  check_out "fields" "30"
    (body
       ~decls:"TYPE R = RECORD x, y: INTEGER END;\nVAR r: R;"
       "r.x := 10; r.y := 20; WriteInt(r.x + r.y)");
  check_out "with scope" "12"
    (body
       ~decls:"TYPE R = RECORD a, b: INTEGER END;\nVAR r: R;"
       "WITH r DO a := 4; b := a * 2 END; WriteInt(r.a + r.b)");
  check_out "record assignment copies" "1"
    (body
       ~decls:"TYPE R = RECORD v: INTEGER END;\nVAR r1, r2: R;"
       "r1.v := 1; r2 := r1; r1.v := 99; WriteInt(r2.v)");
  check_out "nested records" "7"
    (body
       ~decls:"TYPE Inner = RECORD v: INTEGER END;\nTYPE Outer = RECORD i: Inner END;\nVAR o: Outer;"
       "o.i.v := 7; WriteInt(o.i.v)")

let test_variant_records () =
  check_out "variant fields and tag" "10 3.5"
    (body
       ~decls:
         {|TYPE Kind = (ints, reals);
TYPE Num = RECORD
  CASE kind: Kind OF
    ints: i: INTEGER
  | reals: r: REAL
  END
END;
VAR a, b: Num;|}
       {|a.kind := ints; a.i := 10;
b.kind := reals; b.r := 3.5;
IF a.kind = ints THEN WriteInt(a.i) END;
WriteChar(' ');
IF b.kind = reals THEN WriteReal(b.r) END|});
  check_out "tagless variant with else part" "7 ok"
    (body
       ~decls:
         {|TYPE U = RECORD
  common: INTEGER;
  CASE : BOOLEAN OF
    TRUE: x: INTEGER
  | FALSE: y: CHAR
  ELSE z: BOOLEAN
  END
END;
VAR u: U;|}
       {|u.common := 7; u.x := 1; u.y := 'a'; u.z := TRUE;
WriteInt(u.common); WriteChar(' ');
IF u.z THEN WriteString("ok") END|})

let test_variant_duplicate_field_rejected () =
  expect_error
    (body
       ~decls:
         {|TYPE Bad = RECORD
  CASE t: BOOLEAN OF
    TRUE: same: INTEGER
  | FALSE: same: CHAR
  END
END;|}
       "")
    "duplicate record field"

let test_sets () =
  check_out "membership" "yes no"
    (body ~decls:"VAR s: BITSET;"
       {|s := {1, 3..5};
IF 4 IN s THEN WriteString("yes") END; WriteChar(' ');
IF 2 IN s THEN WriteString("x") ELSE WriteString("no") END|});
  check_out "union diff" "yes"
    (body ~decls:"VAR a, b: BITSET;"
       {|a := {1, 2}; b := {2, 3};
IF (1 IN a + b) AND (3 IN a + b) AND NOT (2 IN a - b) THEN WriteString("yes") END|});
  check_out "incl excl" "1"
    (body ~decls:"TYPE S = SET OF [0..15];\nVAR s: S;"
       "s := S{}; INCL(s, 7); EXCL(s, 7); INCL(s, 3); IF 3 IN s THEN WriteInt(1) END");
  check_out "set inclusion" "sub nosup"
    (body ~decls:"VAR a, b: BITSET;"
       {|a := {1, 2}; b := {1, 2, 3};
IF a <= b THEN WriteString("sub") END; WriteChar(' ');
IF a >= b THEN WriteString("sup") ELSE WriteString("nosup") END|});
  check_out "set equality" "eq"
    (body ~decls:"VAR a, b: BITSET;" {|a := {1,2}; b := {2,1}; IF a = b THEN WriteString("eq") END|})

let test_enums_subranges () =
  check_out "enum ordinals" "1"
    (body ~decls:"TYPE Color = (red, green, blue);\nVAR c: Color;" "c := green; WriteInt(ORD(c))");
  check_out "enum compare" "lt"
    (body ~decls:"TYPE Color = (red, green, blue);"
       {|IF red < blue THEN WriteString("lt") END|});
  check_out "subrange ok" "5"
    (body ~decls:"VAR d: [0..9];" "d := 5; WriteInt(d)");
  let _, status = run_seq (body ~decls:"VAR d: [0..9];\nVAR x: INTEGER;" "x := 12; d := x") in
  (match status with
  | Mcc_vm.Vm.Trap m -> Alcotest.(check bool) "range trap" true (Tutil.contains ~sub:"range" m)
  | s -> Alcotest.failf "expected range trap, got %s" (Mcc_vm.Vm.status_to_string s))

let test_pointers () =
  check_out "new and deref" "11"
    (body
       ~decls:"TYPE P = POINTER TO RECORD v: INTEGER END;\nVAR p: P;"
       "NEW(p); p^.v := 11; WriteInt(p^.v)");
  check_out "linked list" "6"
    (body
       ~decls:
         {|TYPE List = POINTER TO Node;
TYPE Node = RECORD value: INTEGER; next: List END;
VAR head, n: List; s: INTEGER; i: INTEGER;|}
       {|head := NIL;
FOR i := 1 TO 3 DO
  NEW(n); n^.value := i; n^.next := head; head := n
END;
s := 0;
WHILE head # NIL DO s := s + head^.value; head := head^.next END;
WriteInt(s)|});
  let _, status =
    run_seq (body ~decls:"TYPE P = POINTER TO INTEGER;\nVAR p: P;" "p := NIL; p^ := 1")
  in
  match status with
  | Mcc_vm.Vm.Trap m -> Alcotest.(check bool) "nil deref" true (Tutil.contains ~sub:"NIL" m)
  | s -> Alcotest.failf "expected NIL trap, got %s" (Mcc_vm.Vm.status_to_string s)

(* --- Modula-2+ extensions --- *)

let test_exceptions () =
  check_out "raise and catch" "caught after"
    (body ~decls:"VAR e: EXCEPTION;"
       {|TRY RAISE e; WriteString("skipped") EXCEPT e: WriteString("caught") END;
WriteString(" after")|});
  check_out "propagates through calls" "deep"
    (modsrc
       ~decls:
         {|VAR e: EXCEPTION;
PROCEDURE Thrower; BEGIN RAISE e END Thrower;
PROCEDURE Middle; BEGIN Thrower END Middle;|}
       ~body:{|TRY Middle EXCEPT e: WriteString("deep") END|} ());
  check_out "finally on both paths" "F1 caught F2 "
    (body ~decls:"VAR e: EXCEPTION;"
       {|TRY WriteString("F1 ") FINALLY END;
TRY RAISE e EXCEPT e: WriteString("caught ") FINALLY WriteString("F2 ") END|});
  check_out "distinct exceptions" "other"
    (body ~decls:"VAR e1, e2: EXCEPTION;"
       {|TRY
  TRY RAISE e2 EXCEPT e1: WriteString("wrong") END
EXCEPT e2: WriteString("other") END|});
  let _, status = run_seq (body ~decls:"VAR e: EXCEPTION;" "RAISE e") in
  match status with
  | Mcc_vm.Vm.Uncaught_exception _ -> ()
  | s -> Alcotest.failf "expected uncaught exception, got %s" (Mcc_vm.Vm.status_to_string s)

let test_lock () =
  check_out "lock body executes" "in"
    (body ~decls:"VAR mu: MUTEX;" {|LOCK mu DO WriteString("in") END|})

let test_halt () =
  let out, status = run_seq (body {|WriteString("before"); HALT; WriteString("after")|}) in
  Alcotest.(check string) "output stops" "before" out;
  Alcotest.(check bool) "halted" true (status = Mcc_vm.Vm.Halt_called)

let test_read_int () =
  check_out "input" "30" ~input:[ 10; 20 ]
    (body ~decls:"VAR a, b: INTEGER;" "ReadInt(a); ReadInt(b); WriteInt(a + b)")

let test_div_by_zero () =
  let _, status = run_seq (body ~decls:"VAR x, z: INTEGER;" "z := 0; x := 5 DIV z; WriteInt(x)") in
  match status with
  | Mcc_vm.Vm.Trap m -> Alcotest.(check bool) "div trap" true (Tutil.contains ~sub:"zero" m)
  | s -> Alcotest.failf "expected trap, got %s" (Mcc_vm.Vm.status_to_string s)

let test_uninitialized_trap () =
  let _, status = run_seq (body ~decls:"VAR x, y: INTEGER;" "y := x + 1") in
  match status with
  | Mcc_vm.Vm.Trap m ->
      Alcotest.(check bool) "uninit" true (Tutil.contains ~sub:"uninitialized" m)
  | s -> Alcotest.failf "expected trap, got %s" (Mcc_vm.Vm.status_to_string s)

(* --- differential oracle: random expressions vs an OCaml reference --- *)

(* A tiny expression language over INTEGER with Modula-2 semantics,
   evaluated both by this reference evaluator and by compiling the
   printed expression and running it in the VM.  Divisors are non-zero
   literals by construction, so evaluation is total; both sides use
   native 63-bit ints, so overflow wraps identically. *)
type oexpr =
  | OLit of int
  | OVar of int (* v0 / v1 / v2 *)
  | OAdd of oexpr * oexpr
  | OSub of oexpr * oexpr
  | OMul of oexpr * oexpr
  | ODiv of oexpr * int (* non-zero literal divisor *)
  | OMod of oexpr * int (* >= 2 literal *)
  | OAbs of oexpr
  | ONeg of oexpr

let var_values = [| 7; -3; 11 |]

let rec oeval = function
  | OLit n -> n
  | OVar i -> var_values.(i)
  | OAdd (a, b) -> oeval a + oeval b
  | OSub (a, b) -> oeval a - oeval b
  | OMul (a, b) -> oeval a * oeval b
  | ODiv (a, d) -> oeval a / d
  | OMod (a, d) ->
      let x = oeval a in
      ((x mod d) + abs d) mod abs d
  | OAbs a -> abs (oeval a)
  | ONeg a -> -oeval a

let rec oprint = function
  | OLit n -> if n < 0 then Printf.sprintf "(%d)" n else string_of_int n
  | OVar i -> Printf.sprintf "v%d" i
  | OAdd (a, b) -> Printf.sprintf "(%s + %s)" (oprint a) (oprint b)
  | OSub (a, b) -> Printf.sprintf "(%s - %s)" (oprint a) (oprint b)
  | OMul (a, b) -> Printf.sprintf "(%s * %s)" (oprint a) (oprint b)
  | ODiv (a, d) -> Printf.sprintf "(%s DIV %d)" (oprint a) d
  | OMod (a, d) -> Printf.sprintf "(%s MOD %d)" (oprint a) d
  | OAbs a -> Printf.sprintf "ABS(%s)" (oprint a)
  | ONeg a -> Printf.sprintf "(-%s)" (oprint a)

let oexpr_gen =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 0 then
             oneof [ map (fun k -> OLit (k - 50)) (int_bound 100); map (fun i -> OVar i) (int_bound 2) ]
           else
             let sub = self (n / 2) in
             oneof
               [
                 map2 (fun a b -> OAdd (a, b)) sub sub;
                 map2 (fun a b -> OSub (a, b)) sub sub;
                 map2 (fun a b -> OMul (a, b)) sub sub;
                 map2 (fun a d -> ODiv (a, d + 1)) sub (int_bound 9);
                 map2 (fun a d -> OMod (a, d + 2)) sub (int_bound 9);
                 map (fun a -> OAbs a) sub;
                 map (fun a -> ONeg a) sub;
               ]))

let prop_expression_oracle =
  QCheck.Test.make ~name:"compiled expressions match the reference evaluator" ~count:120
    (QCheck.make ~print:oprint oexpr_gen)
    (fun e ->
      let src =
        modsrc
          ~decls:"VAR v0, v1, v2, out: INTEGER;"
          ~body:(Printf.sprintf "v0 := 7; v1 := -3; v2 := 11; out := %s; WriteInt(out)" (oprint e))
          ()
      in
      let out, status = run_seq src in
      status = Mcc_vm.Vm.Finished && out = string_of_int (oeval e))

(* --- qualified access across modules --- *)

let test_cross_module_globals () =
  let defs =
    [
      ("Counter", "DEFINITION MODULE Counter;\nVAR count: INTEGER;\nCONST start = 40;\nEND Counter.\n");
    ]
  in
  check_out "imported storage" "42" ~defs
    (modsrc ~imports:"IMPORT Counter;\nFROM Counter IMPORT start;" ~decls:""
       ~body:"Counter.count := start; Counter.count := Counter.count + 2; WriteInt(Counter.count)"
       ())

(* --- type errors (statement analysis) --- *)

let test_type_errors () =
  expect_error (body ~decls:"VAR x: INTEGER;" "x := TRUE") "cannot assign";
  expect_error (body ~decls:"VAR x: INTEGER;" {|IF x THEN x := 1 END|}) "BOOLEAN";
  expect_error (body ~decls:"VAR c: CHAR;" "c := c + 'a'") "do not support";
  expect_error
    (modsrc ~decls:"PROCEDURE P; BEGIN END P;" ~body:"WriteInt(P())" ())
    "no result";
  expect_error
    (modsrc ~decls:"PROCEDURE F(): INTEGER; BEGIN RETURN 1 END F;" ~body:"F()" ())
    "must be used";
  expect_error (body ~decls:"VAR x: INTEGER;" "x := 1; x(4)") "not callable";
  expect_error (body "undeclared := 1") "undeclared identifier";
  expect_error (body ~decls:"VAR r: REAL;" "r := 1") "cannot assign";
  expect_error
    (modsrc ~decls:"PROCEDURE P(x: INTEGER); BEGIN END P;" ~body:"P(TRUE)" ())
    "does not match";
  expect_error
    (modsrc ~decls:"PROCEDURE P(VAR x: INTEGER); BEGIN END P;" ~body:"P(1 + 2)" ())
    "designator"

let test_uplevel_access () =
  (* static links: nested procedures read and write enclosing locals *)
  check_out "uplevel read/write" "15 16"
    (modsrc
       ~decls:
         {|PROCEDURE Outer(base: INTEGER): INTEGER;
VAR acc: INTEGER;
  PROCEDURE Bump(d: INTEGER);
  BEGIN acc := acc + base + d END Bump;
BEGIN
  acc := 0; Bump(2); Bump(3); RETURN acc
END Outer;|}
       ~body:"WriteInt(Outer(5)); WriteChar(' '); WriteInt(Outer(5) + 1)" ());
  check_out "two levels up" "42"
    (modsrc
       ~decls:
         {|PROCEDURE L1(): INTEGER;
VAR x: INTEGER;
  PROCEDURE L2(): INTEGER;
    PROCEDURE L3(): INTEGER;
    BEGIN RETURN x + 2 END L3;
  BEGIN RETURN L3() END L2;
BEGIN x := 40; RETURN L2() END L1;|}
       ~body:"WriteInt(L1())" ());
  check_out "recursion sees its own frame" "6"
    (modsrc
       ~decls:
         {|PROCEDURE Sum(n: INTEGER): INTEGER;
VAR here: INTEGER;
  PROCEDURE Grab(): INTEGER;
  BEGIN RETURN here END Grab;
BEGIN
  here := n;
  IF n = 0 THEN RETURN 0 ELSE RETURN Grab() + Sum(n - 1) END
END Sum;|}
       ~body:"WriteInt(Sum(3))" ())

let test_nested_proc_value_rejected () =
  (* PIM: procedures used as values must not be local to other
     procedures (they would need a closure over the static chain) *)
  expect_error
    (modsrc
       ~decls:
         {|TYPE F = PROCEDURE (): INTEGER;
VAR f: F;
PROCEDURE Outer;
  PROCEDURE Inner(): INTEGER; BEGIN RETURN 1 END Inner;
BEGIN f := Inner END Outer;|}
       ~body:"" ())
    "procedure value"

let () =
  Alcotest.run "vm"
    [
      ( "expressions",
        [
          Alcotest.test_case "integer arithmetic" `Quick test_arith;
          Alcotest.test_case "reals" `Quick test_reals;
          Alcotest.test_case "booleans" `Quick test_booleans;
          Alcotest.test_case "chars and strings" `Quick test_chars_strings;
        ] );
      ( "control flow",
        [
          Alcotest.test_case "if/elsif" `Quick test_if_elsif;
          Alcotest.test_case "while/repeat/loop" `Quick test_while_repeat_loop;
          Alcotest.test_case "for" `Quick test_for;
          Alcotest.test_case "case" `Quick test_case;
          Alcotest.test_case "case trap" `Quick test_case_no_match_traps;
        ] );
      ( "procedures",
        [
          Alcotest.test_case "calls and recursion" `Quick test_procedures;
          Alcotest.test_case "uplevel addressing" `Quick test_uplevel_access;
          Alcotest.test_case "procedure values" `Quick test_proc_values;
          Alcotest.test_case "function must return" `Quick test_function_must_return;
        ] );
      ( "data",
        [
          Alcotest.test_case "arrays" `Quick test_arrays;
          Alcotest.test_case "array bounds" `Quick test_array_bounds_trap;
          Alcotest.test_case "open arrays" `Quick test_open_arrays;
          Alcotest.test_case "records and WITH" `Quick test_records_with;
          Alcotest.test_case "variant records" `Quick test_variant_records;
          Alcotest.test_case "variant duplicate field" `Quick test_variant_duplicate_field_rejected;
          Alcotest.test_case "sets" `Quick test_sets;
          Alcotest.test_case "enums and subranges" `Quick test_enums_subranges;
          Alcotest.test_case "pointers" `Quick test_pointers;
        ] );
      ( "modula-2+",
        [
          Alcotest.test_case "exceptions" `Quick test_exceptions;
          Alcotest.test_case "lock" `Quick test_lock;
          Alcotest.test_case "halt" `Quick test_halt;
        ] );
      ( "runtime",
        [
          Tutil.qtest prop_expression_oracle;
          Alcotest.test_case "read int" `Quick test_read_int;
          Alcotest.test_case "division by zero" `Quick test_div_by_zero;
          Alcotest.test_case "uninitialized" `Quick test_uninitialized_trap;
          Alcotest.test_case "cross-module globals" `Quick test_cross_module_globals;
        ] );
      ( "static errors",
        [
          Alcotest.test_case "type errors" `Quick test_type_errors;
          Alcotest.test_case "nested proc values rejected" `Quick test_nested_proc_value_rejected;
        ] );
    ]
