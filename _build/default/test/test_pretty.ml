(* The parse-print-reparse round-trip: pretty-printing any statement
   tree and reparsing it yields a structurally identical tree.  Inputs
   are the statement bodies of generated programs (captured from the
   parser via callbacks) plus a handwritten body covering every
   statement form. *)

open Mcc_core
open Mcc_m2
module A = Mcc_ast.Ast
module P = Mcc_parse.Parser

let dummy_ctx () =
  Mcc_sem.Ctx.make
    ~scope:(Mcc_sem.Symtab.create (Mcc_sem.Symtab.KMain "RT"))
    ~file:"rt" ~diags:(Diag.create ()) ~strategy:Mcc_sem.Symtab.Sequential
    ~stats:(Mcc_sem.Lookup_stats.create ()) ~registry:(Mcc_sem.Modreg.create ()) ~frame_key:"RT"
    ~path:"RT" ~is_module_level:true ~is_def:false

let parse_stmts text =
  let ctx = dummy_ctx () in
  let cb =
    {
      P.cb_import = (fun _ _ -> None);
      cb_heading = (fun _ _ ~stream -> ignore stream);
      cb_body = (fun _ -> ());
    }
  in
  let p = P.create ~cb (Reader.of_lexer (Lexer.create ~file:"rt" text)) in
  let stmts = P.parse_statement_sequence ctx p in
  (stmts, Diag.sorted ctx.Mcc_sem.Ctx.diags)

(* Capture every statement body the parser produces for a store. *)
let bodies_of store =
  let captured = ref [] in
  let seq = Seq_driver.compile store in
  ignore seq;
  (* re-parse through the public parser to capture bodies *)
  let ctx = dummy_ctx () in
  let cb =
    {
      P.cb_import =
        (fun c (mid : A.ident) ->
          (* intern interfaces so imports resolve; contents irrelevant *)
          let scope, created = Mcc_sem.Modreg.intern c.Mcc_sem.Ctx.registry mid.A.name in
          if created then begin
            (match Source_store.def_src store mid.A.name with
            | Some src ->
                let dctx =
                  { ctx with Mcc_sem.Ctx.scope; path = mid.A.name; is_def = true }
                in
                let p2 =
                  P.create
                    ~cb:
                      {
                        P.cb_import = (fun _ _ -> None);
                        cb_heading = (fun _ _ ~stream -> ignore stream);
                        cb_body = (fun _ -> ());
                      }
                    (Reader.of_lexer (Lexer.create ~file:"d" src))
                in
                P.parse_def_module dctx p2 ~expected_name:mid.A.name
            | None -> Mcc_sem.Symtab.mark_complete scope);
            ()
          end;
          Some scope);
      cb_heading = (fun _ _ ~stream -> ignore stream);
      cb_body = (fun gj -> captured := gj.P.gj_body :: !captured);
    }
  in
  let mctx = dummy_ctx () in
  let p =
    P.create ~cb (Reader.of_lexer (Lexer.create ~file:"m" (Source_store.main_src store)))
  in
  P.parse_impl_module mctx p ~expected_name:(Source_store.main_name store);
  !captured

let roundtrip body =
  let text = Mcc_ast.Pretty.print_body body in
  let reparsed, diags = parse_stmts text in
  if diags <> [] then
    Alcotest.failf "reparse produced diagnostics:\n%s\nfor:\n%s"
      (String.concat "\n" (List.map Diag.to_string diags))
      text;
  if not (A.equal_body body reparsed) then
    Alcotest.failf "round-trip mismatch for:\n%s" text

let test_handwritten () =
  let src =
    {|x := (1 + 2) * v[i, j]^.f;
P(a, b(c), "str", 'q', {1, 3..5}, S{0});
IF a < b THEN x := 1 ELSIF NOT done THEN x := 2 ELSE x := 3 END;
CASE k OF 0: y := 0 | 1, 2: y := 1 | 5..7: EXIT ELSE RETURN z END;
WHILE i # 0 DO DEC(i) END;
REPEAT INC(i) UNTIL i >= 10;
LOOP IF done THEN EXIT END END;
FOR i := 0 TO 10 BY 2 DO s := s + i END;
WITH r^.inner DO f := g END;
TRY RAISE e1 EXCEPT e1: x := 1 | M.e2: x := 2 FINALLY done := TRUE END;
LOCK mu DO x := 0 END;
RETURN (a IN bits) OR (s <= t)|}
  in
  let body, diags = parse_stmts src in
  Alcotest.(check (list string)) "parses cleanly" [] (List.map Diag.to_string diags);
  roundtrip body

let prop_generated =
  QCheck.Test.make ~name:"generated bodies round-trip" ~count:12
    QCheck.(int_bound 100_000)
    (fun seed ->
      let shape =
        {
          Mcc_synth.Gen.seed;
          name = "RT";
          n_defs = 2;
          depth = 1;
          n_procs = 4;
          nested_per_proc = 1;
          stmts_lo = 5;
          stmts_hi = 14;
          module_vars = 3;
          def_size = 1;
          pad = 0;
          runnable = false;
        }
      in
      let bodies = bodies_of (Mcc_synth.Gen.generate shape) in
      List.iter roundtrip bodies;
      bodies <> [])

let () =
  Alcotest.run "pretty"
    [
      ( "roundtrip",
        [ Alcotest.test_case "handwritten body" `Quick test_handwritten; Tutil.qtest prop_generated ]
      );
    ]
