(* Unit and property tests for the utility substrate. *)

open Mcc_util

let test_vec_basic () =
  let v = Vec.create 0 in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Vec.set v 42 (-1);
  Alcotest.(check int) "set" (-1) (Vec.get v 42);
  Alcotest.(check int) "last" 99 (Vec.last v);
  Alcotest.(check int) "pop" 99 (Vec.pop v);
  Alcotest.(check int) "length after pop" 99 (Vec.length v);
  Alcotest.(check int) "fold" (List.fold_left ( + ) 0 (Vec.to_list v)) (Vec.fold ( + ) 0 v)

let test_vec_bounds () =
  let v = Vec.create 0 in
  Vec.push v 1;
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index out of bounds") (fun () ->
      ignore (Vec.get v 1));
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      ignore (Vec.pop v);
      ignore (Vec.pop v))

let test_vec_sort () =
  let v = Vec.of_list 0 [ 5; 1; 4; 2; 3 ] in
  Vec.sort compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (Vec.to_list v)

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_split_independent () =
  let a = Prng.create 7 in
  let child = Prng.split a in
  let again = Prng.create 7 in
  let _child2 = Prng.split again in
  (* drawing from the child must not perturb determinism of the parent *)
  for _ = 1 to 10 do
    ignore (Prng.int child 100)
  done;
  Alcotest.(check int) "parent stream unaffected by child draws" (Prng.int a 1_000_000)
    (Prng.int again 1_000_000)

let test_prng_range () =
  let rng = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.range rng 5 9 in
    if v < 5 || v > 9 then Alcotest.failf "range out of bounds: %d" v
  done

let test_prng_weighted () =
  let rng = Prng.create 11 in
  for _ = 1 to 200 do
    let v = Prng.weighted rng [ (1, `A); (0, `B) ] in
    Alcotest.(check bool) "zero weight never drawn" true (v = `A)
  done

let test_heap_order () =
  let h = Heap.create (-1) in
  List.iter (fun (k, v) -> Heap.push h k v) [ (3.0, 3); (1.0, 1); (2.0, 2); (1.0, 10) ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, v) ->
        order := v :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  (* ties pop in insertion order: 1 before 10 *)
  Alcotest.(check (list int)) "min-heap order with stable ties" [ 1; 10; 2; 3 ] (List.rev !order)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops keys in nondecreasing order" ~count:200
    QCheck.(list (float_bound_inclusive 1000.0))
    (fun keys ->
      let h = Heap.create 0 in
      List.iteri (fun i k -> Heap.push h k i) keys;
      let rec drain acc =
        match Heap.pop h with Some (k, _) -> drain (k :: acc) | None -> List.rev acc
      in
      let popped = drain [] in
      List.sort compare keys = popped)

let test_deque () =
  let d = Deque.create 0 in
  Deque.push_back d 1;
  Deque.push_back d 2;
  Deque.push_front d 0;
  Alcotest.(check (list int)) "order" [ 0; 1; 2 ] (Deque.to_list d);
  Alcotest.(check (option int)) "pop" (Some 0) (Deque.pop_front d);
  Alcotest.(check int) "length" 2 (Deque.length d);
  Alcotest.(check (option int)) "remove_first" (Some 2) (Deque.remove_first d (fun x -> x = 2));
  Alcotest.(check (list int)) "after remove" [ 1 ] (Deque.to_list d)

let prop_deque_fifo =
  QCheck.Test.make ~name:"deque push_back/pop_front is FIFO" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let d = Deque.create 0 in
      List.iter (Deque.push_back d) xs;
      let rec drain acc =
        match Deque.pop_front d with Some x -> drain (x :: acc) | None -> List.rev acc
      in
      drain [] = xs)

let test_tablefmt () =
  let s = Tablefmt.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  Alcotest.(check bool) "contains separator" true (Tutil.contains ~sub:"|-" s);
  Alcotest.(check string) "grouped" "1,234,567" (Tablefmt.grouped 1234567);
  Alcotest.(check string) "grouped small" "999" (Tablefmt.grouped 999);
  Alcotest.(check string) "percent" "50.00" (Tablefmt.percent 1 2);
  Alcotest.(check string) "fixed" "3.14" (Tablefmt.fixed 3.14159)

let () =
  Alcotest.run "util"
    [
      ( "vec",
        [
          Alcotest.test_case "basic" `Quick test_vec_basic;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "sort" `Quick test_vec_sort;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "range bounds" `Quick test_prng_range;
          Alcotest.test_case "weighted" `Quick test_prng_weighted;
        ] );
      ( "heap",
        [ Alcotest.test_case "order" `Quick test_heap_order; Tutil.qtest prop_heap_sorts ] );
      ("deque", [ Alcotest.test_case "basic" `Quick test_deque; Tutil.qtest prop_deque_fifo ]);
      ("tablefmt", [ Alcotest.test_case "render" `Quick test_tablefmt ]);
    ]
