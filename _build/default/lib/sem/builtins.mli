(** The builtin ("standard identifier") environment: types, TRUE/FALSE/
    NIL, standard functions and procedures, builtin I/O, and the
    mathematical routines the paper names (§2.2).

    Treated as if declared local to every scope: {!Symtab.lookup}
    consults this table right after the starting scope, before chaining
    outward, so a builtin reference never incurs a DKY wait — safe
    because builtin names cannot be redeclared (declaration analysis
    enforces it).  The table is immutable and always complete. *)

val all : (string * Symbol.t) list
val table : (string, Symbol.t) Hashtbl.t
val find : string -> Symbol.t option
val is_builtin : string -> bool
val count : int
