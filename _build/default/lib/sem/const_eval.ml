(* Compile-time constant expression evaluation.

   Used by declaration analysis for CONST declarations, subrange bounds,
   array dimensions and case labels.  The evaluator mirrors the dynamic
   semantics of the expression language on the [Value.t] domain and
   reports (rather than raises) all errors, yielding [None] so callers
   can continue with [TErr].  Name lookups flow through the normal
   symbol-table machinery, so constant expressions participate fully in
   the DKY protocol — a CONST referencing an imported constant can block
   skeptically like any other lookup. *)

open Mcc_m2
open Mcc_ast
module A = Ast
module V = Value
module T = Types

type result = (V.t * T.ty) option

let num_bin ctx loc op (a : V.t) (b : V.t) : result =
  let err () =
    Ctx.error ctx loc "invalid operands for constant operator";
    None
  in
  match (a, b) with
  | V.VInt x, V.VInt y -> (
      match op with
      | A.Add -> Some (V.VInt (x + y), T.TInt)
      | A.Sub -> Some (V.VInt (x - y), T.TInt)
      | A.Mul -> Some (V.VInt (x * y), T.TInt)
      | A.Div ->
          if y = 0 then begin
            Ctx.error ctx loc "constant division by zero";
            None
          end
          else Some (V.VInt (x / y), T.TInt)
      | A.Mod ->
          if y = 0 then begin
            Ctx.error ctx loc "constant MOD by zero";
            None
          end
          else Some (V.VInt (((x mod y) + abs y) mod abs y), T.TInt)
      | A.Divide ->
          Ctx.error ctx loc "real division on INTEGER constants; use DIV";
          None
      | _ -> err ())
  | V.VReal x, V.VReal y -> (
      match op with
      | A.Add -> Some (V.VReal (x +. y), T.TReal)
      | A.Sub -> Some (V.VReal (x -. y), T.TReal)
      | A.Mul -> Some (V.VReal (x *. y), T.TReal)
      | A.Divide -> Some (V.VReal (x /. y), T.TReal)
      | _ -> err ())
  | V.VSet x, V.VSet y -> (
      match op with
      | A.Add -> Some (V.VSet (x lor y), T.TBitset)
      | A.Sub -> Some (V.VSet (x land lnot y), T.TBitset)
      | A.Mul -> Some (V.VSet (x land y), T.TBitset)
      | A.Divide -> Some (V.VSet (x lxor y), T.TBitset)
      | _ -> err ())
  | _ -> err ()

let cmp_bin ctx loc op (a : V.t) (b : V.t) : result =
  let ord v = V.ordinal v in
  let out b = Some (V.VBool b, T.TBool) in
  let with_cmp (c : int) =
    match op with
    | A.Eq -> out (c = 0)
    | A.Neq -> out (c <> 0)
    | A.Lt -> out (c < 0)
    | A.Le -> out (c <= 0)
    | A.Gt -> out (c > 0)
    | A.Ge -> out (c >= 0)
    | _ -> None
  in
  match (a, b) with
  | V.VReal x, V.VReal y -> with_cmp (compare x y)
  | V.VStr x, V.VStr y -> with_cmp (String.compare x y)
  | V.VBool x, V.VBool y -> with_cmp (compare x y)
  | _ -> (
      match (ord a, ord b) with
      | Some x, Some y -> with_cmp (compare x y)
      | _ ->
          Ctx.error ctx loc "constants cannot be compared";
          None)

let rec eval ctx (e : A.expr) : result =
  let use_off = e.eloc.Loc.off in
  match e.e with
  | A.EInt n -> Some (V.VInt n, T.TInt)
  | A.EReal f -> Some (V.VReal f, T.TReal)
  | A.EChar c -> Some (V.VChar c, T.TChar)
  | A.EStr s ->
      if String.length s = 1 then Some (V.VStr s, T.TStrLit 1)
      else Some (V.VStr s, T.TStrLit (String.length s))
  | A.EName q -> (
      match Ctx.lookup_qualident ctx q ~use_off with
      | None -> None
      | Some { skind = Symbol.SConst (v, ty); _ } -> Some (v, ty)
      | Some { skind = Symbol.SEnumLit (ty, ord); _ } -> Some (V.VInt ord, ty)
      | Some sym ->
          Ctx.error ctx e.eloc "%s is a %s, not a constant" (A.qual_to_string q)
            (Symbol.kind_name sym);
          None)
  | A.EField ({ e = A.EName { prefix = None; id = m }; _ }, f) ->
      (* the parser builds M.c as a field selection; in constant context
         it can only be a qualified reference *)
      eval ctx { e with e = A.EName { prefix = Some m; id = f } }
  | A.EUn (op, a) -> (
      match eval ctx a with
      | None -> None
      | Some (v, ty) -> (
          match (op, v) with
          | A.Neg, V.VInt n -> Some (V.VInt (-n), T.TInt)
          | A.Neg, V.VReal f -> Some (V.VReal (-.f), T.TReal)
          | A.Pos, (V.VInt _ | V.VReal _) -> Some (v, ty)
          | A.Not, V.VBool b -> Some (V.VBool (not b), T.TBool)
          | _ ->
              Ctx.error ctx e.eloc "invalid operand for constant unary operator";
              None))
  | A.EBin (op, a, b) -> (
      match op with
      | A.And -> (
          match (eval ctx a, eval ctx b) with
          | Some (V.VBool x, _), Some (V.VBool y, _) -> Some (V.VBool (x && y), T.TBool)
          | Some _, Some _ ->
              Ctx.error ctx e.eloc "AND requires BOOLEAN constants";
              None
          | _ -> None)
      | A.Or -> (
          match (eval ctx a, eval ctx b) with
          | Some (V.VBool x, _), Some (V.VBool y, _) -> Some (V.VBool (x || y), T.TBool)
          | Some _, Some _ ->
              Ctx.error ctx e.eloc "OR requires BOOLEAN constants";
              None
          | _ -> None)
      | A.In -> (
          match (eval ctx a, eval ctx b) with
          | Some (va, _), Some (V.VSet m, _) -> (
              match V.ordinal va with
              | Some i when i >= 0 && i < T.max_set_bits -> Some (V.VBool (m land (1 lsl i) <> 0), T.TBool)
              | _ ->
                  Ctx.error ctx e.eloc "invalid IN operands in constant";
                  None)
          | Some _, Some _ ->
              Ctx.error ctx e.eloc "IN requires a set constant";
              None
          | _ -> None)
      | A.Eq | A.Neq | A.Lt | A.Le | A.Gt | A.Ge -> (
          match (eval ctx a, eval ctx b) with
          | Some (va, _), Some (vb, _) -> cmp_bin ctx e.eloc op va vb
          | _ -> None)
      | _ -> (
          match (eval ctx a, eval ctx b) with
          | Some (va, _), Some (vb, _) -> num_bin ctx e.eloc op va vb
          | _ -> None))
  | A.ECall ({ e = A.EName q; _ }, args) -> eval_builtin_call ctx e.eloc q args
  | A.ESet (tyq, elems) -> eval_set ctx e.eloc tyq elems
  | _ ->
      Ctx.error ctx e.eloc "expression is not constant";
      None

(* The standard functions that Modula-2 permits in constant expressions. *)
and eval_builtin_call ctx loc (q : A.qualident) args : result =
  let use_off = loc.Loc.off in
  match Ctx.lookup_qualident ctx q ~use_off with
  | None -> None
  | Some { skind = Symbol.SBuiltin b; _ } -> (
      let arg1 () =
        match args with
        | [ a ] -> eval ctx a
        | _ ->
            Ctx.error ctx loc "wrong number of arguments in constant expression";
            None
      in
      match b with
      | Symbol.BAbs -> (
          match arg1 () with
          | Some (V.VInt n, t) -> Some (V.VInt (abs n), t)
          | Some (V.VReal f, t) -> Some (V.VReal (abs_float f), t)
          | _ -> None)
      | Symbol.BChr -> (
          match arg1 () with
          | Some (V.VInt n, _) when n >= 0 && n < 256 -> Some (V.VChar (Char.chr n), T.TChar)
          | Some _ ->
              Ctx.error ctx loc "CHR argument out of range";
              None
          | None -> None)
      | Symbol.BOrd -> (
          match arg1 () with
          | Some (v, _) -> (
              match V.ordinal v with
              | Some n -> Some (V.VInt n, T.TCard)
              | None ->
                  Ctx.error ctx loc "ORD requires an ordinal constant";
                  None)
          | None -> None)
      | Symbol.BOdd -> (
          match arg1 () with
          | Some (V.VInt n, _) -> Some (V.VBool (n land 1 = 1), T.TBool)
          | Some _ ->
              Ctx.error ctx loc "ODD requires an integer constant";
              None
          | None -> None)
      | Symbol.BCap -> (
          match arg1 () with
          | Some (V.VChar c, _) -> Some (V.VChar (Char.uppercase_ascii c), T.TChar)
          | Some (V.VStr s, _) when String.length s = 1 ->
              Some (V.VChar (Char.uppercase_ascii s.[0]), T.TChar)
          | Some _ ->
              Ctx.error ctx loc "CAP requires a CHAR constant";
              None
          | None -> None)
      | Symbol.BTrunc -> (
          match arg1 () with
          | Some (V.VReal f, _) -> Some (V.VInt (int_of_float f), T.TInt)
          | Some _ ->
              Ctx.error ctx loc "TRUNC requires a REAL constant";
              None
          | None -> None)
      | Symbol.BFloat -> (
          match arg1 () with
          | Some (V.VInt n, _) -> Some (V.VReal (float_of_int n), T.TReal)
          | Some _ ->
              Ctx.error ctx loc "FLOAT requires an integer constant";
              None
          | None -> None)
      | Symbol.BMax | Symbol.BMin -> (
          match args with
          | [ { e = A.EName tq; _ } ] -> (
              let ty = Ctx.lookup_type ctx tq ~use_off in
              match ty with
              | T.TErr -> None
              | t when T.is_ordinal t ->
                  let lo, hi = T.bounds t in
                  let n = if b = Symbol.BMax then hi else lo in
                  let v =
                    match T.base t with T.TChar -> V.VChar (Char.chr (n land 255)) | _ -> V.VInt n
                  in
                  Some (v, t)
              | T.TReal ->
                  Some
                    ( V.VReal (if b = Symbol.BMax then max_float else -.max_float),
                      T.TReal )
              | _ ->
                  Ctx.error ctx loc "MAX/MIN requires an ordinal or REAL type";
                  None)
          | _ ->
              Ctx.error ctx loc "MAX/MIN requires a type name";
              None)
      | Symbol.BVal -> (
          match args with
          | [ { e = A.EName tq; _ }; a ] -> (
              let ty = Ctx.lookup_type ctx tq ~use_off in
              match (ty, eval ctx a) with
              | T.TErr, _ | _, None -> None
              | t, Some (v, _) -> (
                  match V.ordinal v with
                  | Some n when T.is_ordinal t ->
                      let lo, hi = T.bounds t in
                      if n < lo || n > hi then begin
                        Ctx.error ctx loc "VAL argument out of range";
                        None
                      end
                      else
                        let v' =
                          match T.base t with T.TChar -> V.VChar (Char.chr (n land 255)) | _ -> V.VInt n
                        in
                        Some (v', t)
                  | _ ->
                      Ctx.error ctx loc "VAL requires an ordinal type and constant";
                      None))
          | _ ->
              Ctx.error ctx loc "VAL requires a type name and a constant";
              None)
      | Symbol.BSize -> (
          match args with
          | [ { e = A.EName tq; _ } ] ->
              let ty = Ctx.lookup_type ctx tq ~use_off in
              if T.is_error ty then None else Some (V.VInt (T.size_slots ty), T.TCard)
          | _ ->
              Ctx.error ctx loc "SIZE requires a type name";
              None)
      | _ ->
          Ctx.error ctx loc "%s cannot appear in a constant expression" (A.qual_to_string q);
          None)
  | Some _ ->
      Ctx.error ctx loc "expression is not constant";
      None

and eval_set ctx loc (tyq : A.qualident option) elems : result =
  let set_ty =
    match tyq with
    | None -> Some T.TBitset
    | Some q -> (
        match Ctx.lookup_type ctx q ~use_off:loc.Loc.off with
        | T.TErr -> None
        | T.TSet _ as t -> Some t
        | T.TBitset -> Some T.TBitset
        | t ->
            Ctx.error ctx loc "%s is not a set type" (T.name t);
            None)
  in
  match set_ty with
  | None -> None
  | Some sty ->
      let lo, hi =
        match sty with
        | T.TSet s -> (s.T.slo, s.T.shi)
        | _ -> (0, T.max_set_bits - 1)
      in
      let mask = ref 0 in
      let ok = ref true in
      let add_elem v =
        match V.ordinal v with
        | Some i when i >= lo && i <= hi -> mask := !mask lor (1 lsl (i - lo))
        | _ ->
            Ctx.error ctx loc "set element out of range";
            ok := false
      in
      List.iter
        (fun elem ->
          match elem with
          | A.SetOne e -> (
              match eval ctx e with Some (v, _) -> add_elem v | None -> ok := false)
          | A.SetRange (a, b) -> (
              match (eval ctx a, eval ctx b) with
              | Some (va, _), Some (vb, _) -> (
                  match (V.ordinal va, V.ordinal vb) with
                  | Some x, Some y when x >= lo && y <= hi && x <= y ->
                      for i = x to y do
                        mask := !mask lor (1 lsl (i - lo))
                      done
                  | _ ->
                      Ctx.error ctx loc "set range out of bounds";
                      ok := false)
              | _ -> ok := false))
        elems;
      if !ok then Some (V.VSet !mask, sty) else None

(* Evaluate an expression that must be an ordinal constant (subrange
   bounds, array dimensions, case labels); reports and returns None on
   anything else. *)
let ordinal_const ctx (e : A.expr) : (int * T.ty) option =
  match eval ctx e with
  | None -> None
  | Some (v, ty) -> (
      match V.ordinal v with
      | Some n -> Some (n, ty)
      | None ->
          Ctx.error ctx e.A.eloc "ordinal constant required";
          None)
