(* Declaration analysis: turning declaration syntax into symbol-table
   entries.

   This runs inside the parser/declaration-analyzer task of each stream,
   entering symbols into the stream's scope as declarations are parsed
   ("One compiler task performs syntax analysis on the entire stream and
   semantic analysis on declarations", paper §3).  Fast completion of
   declaration parts is what resolves other streams' DKY blockages, so
   everything here is single-pass; the only deferred work is pointer
   forward references, fixed up at scope completion.

   Procedure headings get special treatment (paper §2.4): the parent
   scope processes the heading and produces a [heading_info] — the
   symbol-table entries to be *copied* into the child scope (alternative
   1).  Under alternative 3 the child scope re-derives the same entries
   from the heading tokens; PIM's restriction of formal types to
   (open-array) qualified identifiers guarantees the two derivations
   produce identical entries. *)

open Mcc_m2
open Mcc_ast
open Mcc_sched
module A = Ast
module T = Types
module S = Symbol

(* Enter [sym] in the context's scope with redeclaration checks. *)
let enter_sym ctx loc (sym : S.t) =
  Eff.work Costs.decl_entry;
  (* "there is one DKY event per symbol" under optimistic handling: every
     entry carries an event, and "the overhead of maintaining so many
     events outweighs the advantages of the technique" (paper 2.3.3) *)
  if ctx.Ctx.strategy = Symtab.Optimistic then Eff.work Costs.symbol_event;
  if Builtins.is_builtin sym.S.sname then
    Ctx.error ctx loc "%s is a builtin name and cannot be redeclared" sym.S.sname
  else
    match Symtab.enter ctx.Ctx.scope sym with
    | `Ok -> ()
    | `Dup _ -> Ctx.error ctx loc "%s is already declared in this scope" sym.S.sname

(* ------------------------------------------------------------------ *)
(* Type resolution *)

let rec resolve_type ctx ?(name = "") (te : A.type_expr) ~use_off : T.ty =
  match te with
  | A.TName q -> Ctx.lookup_type ctx q ~use_off
  | A.TEnum ids ->
      let info =
        { T.euid = T.fresh_uid (); ename = name; elems = Array.of_list (List.map (fun (i : A.ident) -> i.name) ids) }
      in
      let ty = T.TEnum info in
      List.iteri
        (fun ord (id : A.ident) ->
          enter_sym ctx id.iloc (S.make ~name:id.name ~def_off:id.iloc.Loc.off (S.SEnumLit (ty, ord))))
        ids;
      ty
  | A.TSubrange (a, b) -> (
      match (Const_eval.ordinal_const ctx a, Const_eval.ordinal_const ctx b) with
      | Some (lo, ta), Some (hi, tb) ->
          if not (T.compatible ta tb) then begin
            Ctx.error ctx a.A.eloc "subrange bounds have incompatible types";
            T.TErr
          end
          else if lo > hi then begin
            Ctx.error ctx a.A.eloc "empty subrange [%d..%d]" lo hi;
            T.TErr
          end
          else T.TSub (T.base ta, lo, hi)
      | _ -> T.TErr)
  | A.TArray (indexes, elem) ->
      let elem_ty = resolve_type ctx elem ~use_off in
      List.fold_right
        (fun ix acc ->
          let ix_ty = resolve_type ctx ix ~use_off in
          match ix_ty with
          | T.TErr -> T.TErr
          | t when T.is_ordinal t && T.base t <> T.TInt && T.base t <> T.TCard ->
              let lo, hi = T.bounds t in
              T.TArr { T.auid = T.fresh_uid (); index = t; lo; hi; elem = acc }
          | T.TSub _ as t ->
              let lo, hi = T.bounds t in
              T.TArr { T.auid = T.fresh_uid (); index = t; lo; hi; elem = acc }
          | t ->
              Ctx.error ctx use_loc_dummy "array index type %s must be a bounded ordinal" (T.name t);
              T.TErr)
        indexes elem_ty
  | A.TRecord sections ->
      (* variant parts are flattened: every field of every arm gets its
         own slot (the VM does not overlay storage), the tag field is an
         ordinary field, and field names must be unique across the whole
         record as in Modula-2 *)
      let fields = ref [] in
      let slot = ref 0 in
      let add (id : A.ident) fty =
        if List.mem_assoc id.A.name !fields then
          Ctx.error ctx id.A.iloc "duplicate record field %s" id.A.name
        else begin
          fields := (id.A.name, { T.fty; fslot = !slot }) :: !fields;
          incr slot
        end
      in
      let rec section (sec : A.field_section) =
        match sec with
        | A.FFields { f_names; f_type } ->
            let fty = resolve_type ctx f_type ~use_off in
            List.iter (fun id -> add id fty) f_names
        | A.FVariant { v_tag; v_tag_type; v_arms; v_else } ->
            let tag_ty = Ctx.lookup_type ctx v_tag_type ~use_off in
            if not (T.is_ordinal tag_ty) then
              Ctx.error ctx v_tag_type.A.id.A.iloc "variant tag type must be ordinal";
            (match v_tag with Some id -> add id tag_ty | None -> ());
            List.iter
              (fun (labels, arm_fields) ->
                List.iter
                  (fun label ->
                    let check e =
                      match Const_eval.ordinal_const ctx e with
                      | Some (_, lt) ->
                          if not (T.compatible lt tag_ty) then
                            Ctx.error ctx e.A.eloc "variant label type does not match the tag"
                      | None -> ()
                    in
                    match label with
                    | A.SetOne e -> check e
                    | A.SetRange (a, b) ->
                        check a;
                        check b)
                  labels;
                List.iter section arm_fields)
              v_arms;
            List.iter section v_else
      in
      List.iter section sections;
      T.TRec { T.ruid = T.fresh_uid (); rname = name; fields = List.rev !fields }
  | A.TPointer (target, _loc) -> (
      let info = { T.puid = T.fresh_uid (); pname = name; target = T.TErr } in
      match target with
      | A.TName q ->
          (* possibly a forward reference: defer to scope completion *)
          ctx.Ctx.fixups <- (info, q) :: ctx.Ctx.fixups;
          T.TPtr info
      | _ ->
          info.T.target <- resolve_type ctx target ~use_off;
          T.TPtr info)
  | A.TSet base -> (
      let bty = resolve_type ctx base ~use_off in
      match bty with
      | T.TErr -> T.TErr
      | t when T.is_ordinal t -> (
          let lo, hi = T.bounds t in
          if lo < 0 || hi - lo >= T.max_set_bits then begin
            Ctx.error ctx use_loc_dummy "set base type range [%d..%d] too large (max %d elements)" lo
              hi T.max_set_bits;
            T.TErr
          end
          else T.TSet { T.suid = T.fresh_uid (); sbase = t; slo = lo; shi = hi })
      | t ->
          Ctx.error ctx use_loc_dummy "set base type %s must be ordinal" (T.name t);
          T.TErr)
  | A.TProcType (formals, result) ->
      let params =
        List.map
          (fun (ft : A.formal_type) ->
            let t = Ctx.lookup_type ctx ft.ft_name ~use_off in
            { T.mode_var = ft.ft_var; pty = (if ft.ft_open then T.TOpenArr t else t) })
          formals
      in
      let result = Option.map (fun q -> Ctx.lookup_type ctx q ~use_off) result in
      T.TProc { T.params; result }

and use_loc_dummy = Loc.none

(* ------------------------------------------------------------------ *)
(* Declarations *)

let const_decl ctx (id : A.ident) (e : A.expr) =
  match Const_eval.eval ctx e with
  | Some (v, ty) -> enter_sym ctx id.iloc (S.make ~name:id.name ~def_off:id.iloc.Loc.off (S.SConst (v, ty)))
  | None -> enter_sym ctx id.iloc (S.make ~name:id.name ~def_off:id.iloc.Loc.off (S.SConst (Value.VInt 0, T.TErr)))

let type_decl ctx (id : A.ident) (te : A.type_expr) =
  let ty = resolve_type ctx ~name:id.name te ~use_off:id.iloc.Loc.off in
  enter_sym ctx id.iloc (S.make ~name:id.name ~def_off:id.iloc.Loc.off (S.SType ty))

let var_decl ctx (ids : A.ident list) (te : A.type_expr) =
  let ty =
    match ids with
    | [] -> T.TErr
    | id :: _ -> resolve_type ctx te ~use_off:id.A.iloc.Loc.off
  in
  List.iter
    (fun (id : A.ident) ->
      let slot = Ctx.alloc_slot ctx in
      let home =
        if ctx.Ctx.is_module_level then S.HGlobal (ctx.Ctx.frame_key, slot) else S.HLocal slot
      in
      enter_sym ctx id.iloc (S.make ~name:id.name ~def_off:id.iloc.Loc.off (S.SVar (home, ty))))
    ids

(* ------------------------------------------------------------------ *)
(* Procedure headings *)

type param_entry = {
  pe_name : string;
  pe_var : bool;
  pe_ty : T.ty;
  pe_off : int; (* declaration offset of the formal's name *)
  pe_slot : int;
}

type heading_info = {
  hi_name : string;
  hi_key : string; (* code-unit key, e.g. "M.P" *)
  hi_sig : T.signature;
  hi_params : param_entry list;
}

let resolve_params ctx (sections : A.param_section list) ~use_off =
  let entries = ref [] in
  let slot = ref 0 in
  List.iter
    (fun (sec : A.param_section) ->
      let base_ty = Ctx.lookup_type ctx sec.p_type.A.ft_name ~use_off in
      let pty = if sec.p_type.A.ft_open then T.TOpenArr base_ty else base_ty in
      List.iter
        (fun (id : A.ident) ->
          entries :=
            { pe_name = id.name; pe_var = sec.p_var; pe_ty = pty; pe_off = id.iloc.Loc.off; pe_slot = !slot }
            :: !entries;
          incr slot)
        sec.p_names)
    sections;
  List.rev !entries

(* Process a procedure heading in the scope of [ctx] (the parent), enter
   the SProc symbol, and return the entries to copy into the child scope
   (heading alternative 1).  [stream] is the child stream compiling the
   body, when the Splitter diverted one. *)
let proc_heading ctx (h : A.proc_heading) ~stream : heading_info =
  let use_off = h.h_name.A.iloc.Loc.off in
  let params = resolve_params ctx h.h_params ~use_off in
  let result = Option.map (fun q -> Ctx.lookup_type ctx q ~use_off) h.h_result in
  let sig_ = { T.params = List.map (fun p -> { T.mode_var = p.pe_var; pty = p.pe_ty }) params; result } in
  let key = ctx.Ctx.path ^ "." ^ h.h_name.A.name in
  (* An implementation-module procedure that is declared in the module's
     own interface implements that interface entry: check conformity. *)
  (if ctx.Ctx.is_module_level && not ctx.Ctx.is_def then
     match ctx.Ctx.scope.Symtab.parent with
     | Some ({ Symtab.kind = Symtab.KDef _; _ } as def_scope) -> (
         match
           Symtab.lookup_qualified ~strategy:ctx.Ctx.strategy ~stats:ctx.Ctx.stats ~scope:def_scope
             h.h_name.A.name
         with
         | Some { S.skind = S.SProc info; _ } ->
             if not (T.signature_equal info.S.sig_ sig_) then
               Ctx.error ctx h.h_name.A.iloc
                 "signature of %s does not match its declaration in the definition module"
                 h.h_name.A.name
         | _ -> ())
     | _ -> ());
  let info = { S.sig_; key; external_ = ctx.Ctx.is_def; stream } in
  enter_sym ctx h.h_name.A.iloc
    (S.make ~name:h.h_name.A.name ~def_off:use_off (S.SProc info));
  { hi_name = h.h_name.A.name; hi_key = key; hi_sig = sig_; hi_params = params }

(* Copy the heading's parameter entries into the child scope (alternative
   1: "process the procedure heading in the parent scope and copy the
   symbol table entries generated by this processing into the symbol
   table for the child scope"). *)
let enter_params child_ctx (hi : heading_info) =
  List.iter
    (fun pe ->
      Eff.work Costs.copy_entry;
      ignore
        (Symtab.enter child_ctx.Ctx.scope
           (S.make ~name:pe.pe_name ~def_off:pe.pe_off
              (S.SVar (S.HParam (pe.pe_slot, pe.pe_var), pe.pe_ty)))))
    (hi.hi_params);
  child_ctx.Ctx.next_slot <- List.length hi.hi_params

(* ------------------------------------------------------------------ *)
(* Scope completion *)

(* Resolve pointer forward references.  Runs in the scope's own task
   after all declarations have been entered, before the table is marked
   complete; targets may live in outer scopes, where the normal DKY
   machinery applies. *)
let finish_scope ctx =
  List.iter
    (fun ((info : T.ptr_info), q) ->
      let ty = Ctx.lookup_type ctx q ~use_off:max_int in
      info.T.target <- ty)
    (List.rev ctx.Ctx.fixups);
  ctx.Ctx.fixups <- []
