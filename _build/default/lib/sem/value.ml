(* Compile-time constant values: results of constant-expression
   evaluation during declaration analysis (CONST declarations, subrange
   bounds, array dimensions, case labels). *)

type t =
  | VInt of int (* also CARDINAL, CHAR codes via VChar, enum ordinals *)
  | VReal of float
  | VBool of bool
  | VChar of char
  | VStr of string
  | VSet of int (* bitmask over the set's element range, offset by slo *)
  | VNil

let to_string = function
  | VInt n -> string_of_int n
  | VReal f -> Printf.sprintf "%g" f
  | VBool b -> if b then "TRUE" else "FALSE"
  | VChar c -> Printf.sprintf "%C" c
  | VStr s -> Printf.sprintf "%S" s
  | VSet m -> Printf.sprintf "{%x}" m
  | VNil -> "NIL"

let equal a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VReal x, VReal y -> x = y
  | VBool x, VBool y -> x = y
  | VChar x, VChar y -> x = y
  | VStr x, VStr y -> x = y
  | VSet x, VSet y -> x = y
  | VNil, VNil -> true
  | _ -> false

(* Ordinal view of a value: CHAR and BOOLEAN constants participate in
   subranges and case labels through their ordinal. *)
let ordinal = function
  | VInt n -> Some n
  | VChar c -> Some (Char.code c)
  | VBool b -> Some (if b then 1 else 0)
  | VStr s when String.length s = 1 -> Some (Char.code s.[0])
  | _ -> None
