(** Per-stream semantic-analysis context: one per scope being analyzed,
    bundling the scope, the shared diagnostics collector, the DKY
    strategy and statistics, the module registry for qualified names,
    and the variable-slot allocator for the scope's storage. *)

open Mcc_m2
open Mcc_ast

type t = {
  scope : Symtab.t;
  file : string;
  diags : Diag.t;
  strategy : Symtab.dky;
  stats : Lookup_stats.t;
  registry : Modreg.t;
  frame_key : string;  (** global frame for module-level variables *)
  path : string;  (** dotted scope path: code-unit keys *)
  mutable next_slot : int;
  is_module_level : bool;
  is_def : bool;
  mutable fixups : (Types.ptr_info * Ast.qualident) list;
      (** pointer forward references, resolved at scope completion *)
  mutable full_visibility : bool;
      (** set for statement analysis: references see whole completed
          scopes instead of the declare-before-use prefix *)
}

val make :
  scope:Symtab.t ->
  file:string ->
  diags:Diag.t ->
  strategy:Symtab.dky ->
  stats:Lookup_stats.t ->
  registry:Modreg.t ->
  frame_key:string ->
  path:string ->
  is_module_level:bool ->
  is_def:bool ->
  t

(** Context for a procedure scope nested in [parent]: fresh slots and
    fixups, extended path. *)
val for_proc : t -> scope:Symtab.t -> name:string -> t

val error : t -> Loc.t -> ('a, Format.formatter, unit, unit) format4 -> 'a
val warning : t -> Loc.t -> ('a, Format.formatter, unit, unit) format4 -> 'a

(** Allocate the next variable slot in this scope's frame. *)
val alloc_slot : t -> int

(** Resolve a possibly-qualified identifier to a symbol, reporting
    undeclared-identifier errors; the prefix must be an imported module
    binding. *)
val lookup_qualident : t -> Ast.qualident -> use_off:int -> Symbol.t option

(** Resolve a qualident that must denote a type ([TErr] on failure,
    after reporting). *)
val lookup_type : t -> Ast.qualident -> use_off:int -> Types.ty
