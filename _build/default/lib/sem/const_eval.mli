(** Compile-time constant expression evaluation, for CONST declarations,
    subrange bounds, array dimensions and case labels.

    Mirrors the dynamic semantics of the expression language on
    {!Value.t}; reports (rather than raises) all errors, yielding [None]
    so callers continue with [TErr].  Name lookups flow through the
    normal symbol-table machinery, so constant expressions participate
    fully in the DKY protocol. *)

open Mcc_ast

type result = (Value.t * Types.ty) option

(** Evaluate a constant expression (including the standard functions
    Modula-2 allows in constants: ABS, CHR, ORD, ODD, CAP, TRUNC, FLOAT,
    MAX, MIN, VAL, SIZE). *)
val eval : Ctx.t -> Ast.expr -> result

(** Evaluate an expression that must be an ordinal constant. *)
val ordinal_const : Ctx.t -> Ast.expr -> (int * Types.ty) option
