(* The builtin ("standard identifier") environment.

   The paper's treatment (§2.2): a conventional global builtin scope at
   the root of the scope chain would make the first reference to a
   builtin name incur DKY waits on every incomplete scope out to the
   root, so builtins "were treated as if they were declared local to
   each scope ... done by a simple modification of the symbol table
   search mechanism".  [Symtab.lookup] consults this table immediately
   after missing in the starting scope, before chaining outward — safe
   because builtin names cannot be redeclared in Modula-2+, which
   declaration analysis enforces.

   The table is immutable after module initialization and therefore
   always complete; its hits appear in the Table 2 statistics as
   "First try / Builtin / complete". *)

open Symbol

let entry name skind = (name, Symbol.make ~name ~def_off:(-1) skind)

let all : (string * Symbol.t) list =
  [
    (* types *)
    entry "INTEGER" (SType Types.TInt);
    entry "CARDINAL" (SType Types.TCard);
    entry "BOOLEAN" (SType Types.TBool);
    entry "CHAR" (SType Types.TChar);
    entry "REAL" (SType Types.TReal);
    entry "BITSET" (SType Types.TBitset);
    entry "EXCEPTION" (SType Types.TExc);
    entry "MUTEX" (SType Types.TMutex);
    (* constants *)
    entry "TRUE" (SConst (Value.VBool true, Types.TBool));
    entry "FALSE" (SConst (Value.VBool false, Types.TBool));
    entry "NIL" (SConst (Value.VNil, Types.TNil));
    (* standard functions *)
    entry "ABS" (SBuiltin BAbs);
    entry "CAP" (SBuiltin BCap);
    entry "CHR" (SBuiltin BChr);
    entry "FLOAT" (SBuiltin BFloat);
    entry "HIGH" (SBuiltin BHigh);
    entry "MAX" (SBuiltin BMax);
    entry "MIN" (SBuiltin BMin);
    entry "ODD" (SBuiltin BOdd);
    entry "ORD" (SBuiltin BOrd);
    entry "TRUNC" (SBuiltin BTrunc);
    entry "VAL" (SBuiltin BVal);
    entry "SIZE" (SBuiltin BSize);
    (* mathematical routines (paper §2.2: "builtin ... like sin and sqrt") *)
    entry "sqrt" (SBuiltin BSqrt);
    entry "sin" (SBuiltin BSin);
    entry "cos" (SBuiltin BCos);
    entry "ln" (SBuiltin BLn);
    entry "exp" (SBuiltin BExp);
    (* standard procedures *)
    entry "INC" (SBuiltin BInc);
    entry "DEC" (SBuiltin BDec);
    entry "INCL" (SBuiltin BIncl);
    entry "EXCL" (SBuiltin BExcl);
    entry "HALT" (SBuiltin BHalt);
    entry "NEW" (SBuiltin BNew);
    entry "DISPOSE" (SBuiltin BDispose);
    (* builtin input/output routines (paper §2.2) *)
    entry "WriteInt" (SBuiltin BWriteInt);
    entry "WriteLn" (SBuiltin BWriteLn);
    entry "WriteString" (SBuiltin BWriteString);
    entry "WriteChar" (SBuiltin BWriteChar);
    entry "WriteReal" (SBuiltin BWriteReal);
    entry "ReadInt" (SBuiltin BReadInt);
  ]

let table : (string, Symbol.t) Hashtbl.t =
  let h = Hashtbl.create 64 in
  List.iter (fun (n, s) -> Hashtbl.add h n s) all;
  h

let find name = Hashtbl.find_opt table name
let is_builtin name = Hashtbl.mem table name
let count = List.length all
