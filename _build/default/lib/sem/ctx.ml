(* Per-stream semantic-analysis context.

   One [Ctx.t] exists per scope being analyzed (definition module, main
   module, procedure).  It bundles the scope, the shared diagnostics
   collector, the DKY strategy and statistics, the module registry for
   qualified names, and the variable-slot allocator for the scope's
   storage (a module global frame or a procedure local frame). *)

open Mcc_m2
open Mcc_ast

type t = {
  scope : Symtab.t;
  file : string;
  diags : Diag.t;
  strategy : Symtab.dky;
  stats : Lookup_stats.t;
  registry : Modreg.t;
  frame_key : string; (* global frame name for module-level variables *)
  path : string; (* dotted scope path, used for code-unit keys *)
  mutable next_slot : int;
  is_module_level : bool;
  is_def : bool;
  mutable fixups : (Types.ptr_info * Ast.qualident) list;
      (* pointer forward references, resolved at scope completion *)
  mutable full_visibility : bool;
      (* set for statement analysis: references see whole completed
         scopes instead of the declare-before-use prefix *)
}

let make ~scope ~file ~diags ~strategy ~stats ~registry ~frame_key ~path ~is_module_level ~is_def =
  {
    scope;
    file;
    diags;
    strategy;
    stats;
    registry;
    frame_key;
    path;
    next_slot = 0;
    is_module_level;
    is_def;
    fixups = [];
    full_visibility = false;
  }

(* Context for a procedure scope nested in [parent]. *)
let for_proc parent ~scope ~name =
  {
    parent with
    scope;
    path = parent.path ^ "." ^ name;
    next_slot = 0;
    is_module_level = false;
    is_def = false;
    fixups = [];
    full_visibility = false;
  }

let error t loc fmt = Format.kasprintf (fun msg -> Diag.error t.diags ~file:t.file ~loc msg) fmt
let warning t loc fmt = Format.kasprintf (fun msg -> Diag.warning t.diags ~file:t.file ~loc msg) fmt

let alloc_slot t =
  let s = t.next_slot in
  t.next_slot <- s + 1;
  s

(* ------------------------------------------------------------------ *)
(* Name resolution helpers shared by declaration analysis, constant
   evaluation and code generation. *)

(* Resolve a possibly-qualified identifier to a symbol, reporting
   undeclared-identifier errors.  [use_off] enforces declare-before-use
   for declaration-time references; pass [max_int] from statement
   analysis. *)
let lookup_qualident t (q : Ast.qualident) ~use_off : Symbol.t option =
  let use_off = if t.full_visibility then max_int else use_off in
  match q.prefix with
  | None -> (
      match Symtab.lookup ~strategy:t.strategy ~stats:t.stats ~use_off ~scope:t.scope q.id.name with
      | Some sym -> Some sym
      | None ->
          error t q.id.iloc "undeclared identifier %s" q.id.name;
          None)
  | Some p -> (
      (* the prefix must resolve to an imported module binding *)
      match Symtab.lookup ~strategy:t.strategy ~stats:t.stats ~use_off ~scope:t.scope p.name with
      | None ->
          error t p.iloc "undeclared identifier %s" p.name;
          None
      | Some { skind = Symbol.SModule mname; _ } -> (
          match Modreg.find t.registry mname with
          | None ->
              error t p.iloc "module %s has no interface" mname;
              None
          | Some mscope -> (
              match
                Symtab.lookup_qualified ~strategy:t.strategy ~stats:t.stats ~scope:mscope q.id.name
              with
              | Some sym -> Some sym
              | None ->
                  error t q.id.iloc "%s is not exported by module %s" q.id.name mname;
                  None))
      | Some other ->
          error t p.iloc "%s is a %s, not a module" p.name (Symbol.kind_name other);
          None)

(* Resolve a qualident that must denote a type. *)
let lookup_type t (q : Ast.qualident) ~use_off : Types.ty =
  match lookup_qualident t q ~use_off with
  | None -> Types.TErr
  | Some { skind = Symbol.SType ty; _ } -> ty
  | Some sym ->
      error t q.id.iloc "%s is a %s, not a type" (Ast.qual_to_string q) (Symbol.kind_name sym);
      Types.TErr
