(* Symbol-table entries.

   [def_off] is the symbol's textual declaration offset, used for the
   declare-before-use visibility rule (declaration-time references only
   see symbols declared at smaller offsets; statement analysis sees the
   whole completed scope).  [alias_of] marks symbols injected by
   FROM-imports: a use that resolves to one is classified under the
   paper's "other" scope column in the Table 2 lookup statistics.

   Creation of an entry is atomic with respect to search (paper §2.2
   footnote): entries are fully built before [Symtab.enter] publishes
   them under the scope's mutex. *)

open Mcc_sched

type var_home =
  | HGlobal of string * int (* frame key, slot *)
  | HLocal of int (* frame slot in the current procedure *)
  | HParam of int * bool (* parameter slot, by-reference (VAR) *)

type builtin_kind =
  (* functions *)
  | BAbs | BCap | BChr | BFloat | BHigh | BMax | BMin | BOdd | BOrd | BTrunc | BVal | BSize
  | BSqrt | BSin | BCos | BLn | BExp (* "mathematical routines like sin and sqrt" (§2.2) *)
  (* proper procedures *)
  | BInc | BDec | BIncl | BExcl | BHalt | BNew | BDispose
  | BWriteInt | BWriteLn | BWriteString | BWriteChar | BWriteReal | BReadInt

type kind =
  | SConst of Value.t * Types.ty
  | SType of Types.ty
  | SVar of var_home * Types.ty
  | SProc of proc_info
  | SEnumLit of Types.ty * int
  | SModule of string (* import binding: qualified access to a module scope *)
  | SBuiltin of builtin_kind
  | SPlaceholder of Event.t (* optimistic-handling DKY placeholder *)

and proc_info = {
  sig_ : Types.signature;
  key : string; (* code-unit key, e.g. "M.P.Q"; stable across schedules *)
  external_ : bool; (* declared in an imported interface: no body here *)
  mutable stream : int option; (* child stream compiling the body, if split *)
}

type t = {
  sname : string;
  def_off : int;
  alias_of : string option; (* source module, for FROM-imported names *)
  mutable skind : kind;
}

let make ?(alias_of = None) ~name ~def_off skind = { sname = name; def_off; alias_of; skind }

let is_placeholder s = match s.skind with SPlaceholder _ -> true | _ -> false

let kind_name s =
  match s.skind with
  | SConst _ -> "constant"
  | SType _ -> "type"
  | SVar _ -> "variable"
  | SProc _ -> "procedure"
  | SEnumLit _ -> "enumeration constant"
  | SModule _ -> "module"
  | SBuiltin _ -> "builtin"
  | SPlaceholder _ -> "<placeholder>"
