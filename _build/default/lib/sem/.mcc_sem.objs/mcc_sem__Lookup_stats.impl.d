lib/sem/lookup_stats.ml: Hashtbl List Mutex Option
