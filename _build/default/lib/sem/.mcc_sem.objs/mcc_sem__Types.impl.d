lib/sem/types.ml: Array Atomic List Printf
