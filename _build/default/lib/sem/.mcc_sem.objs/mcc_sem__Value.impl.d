lib/sem/value.ml: Char Printf String
