lib/sem/symtab.mli: Hashtbl Lookup_stats Mcc_sched Mutex Symbol
