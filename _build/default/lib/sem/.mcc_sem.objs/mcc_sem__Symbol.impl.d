lib/sem/symbol.ml: Event Mcc_sched Types Value
