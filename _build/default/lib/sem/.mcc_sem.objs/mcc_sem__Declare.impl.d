lib/sem/declare.ml: Array Ast Builtins Const_eval Costs Ctx Eff List Loc Mcc_ast Mcc_m2 Mcc_sched Option Symbol Symtab Types Value
