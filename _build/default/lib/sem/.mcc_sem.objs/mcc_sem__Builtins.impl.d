lib/sem/builtins.ml: Hashtbl List Symbol Types Value
