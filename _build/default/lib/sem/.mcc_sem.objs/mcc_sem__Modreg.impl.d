lib/sem/modreg.ml: Hashtbl List Mutex Symtab
