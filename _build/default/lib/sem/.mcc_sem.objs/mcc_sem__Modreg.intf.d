lib/sem/modreg.mli: Symtab
