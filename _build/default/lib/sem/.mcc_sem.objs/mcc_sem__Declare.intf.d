lib/sem/declare.mli: Ast Ctx Mcc_ast Mcc_m2 Symbol Types
