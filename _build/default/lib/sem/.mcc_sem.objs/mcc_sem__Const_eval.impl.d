lib/sem/const_eval.ml: Ast Char Ctx List Loc Mcc_ast Mcc_m2 String Symbol Types Value
