lib/sem/ctx.mli: Ast Diag Format Loc Lookup_stats Mcc_ast Mcc_m2 Modreg Symbol Symtab Types
