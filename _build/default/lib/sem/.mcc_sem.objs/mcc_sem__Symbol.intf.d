lib/sem/symbol.mli: Mcc_sched Types Value
