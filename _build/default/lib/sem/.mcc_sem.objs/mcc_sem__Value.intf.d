lib/sem/value.mli:
