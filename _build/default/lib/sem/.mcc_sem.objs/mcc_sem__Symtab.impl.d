lib/sem/symtab.ml: Atomic Builtins Costs Eff Event Hashtbl List Lookup_stats Mcc_sched Mutex Symbol
