lib/sem/types.mli:
