lib/sem/const_eval.mli: Ast Ctx Mcc_ast Types Value
