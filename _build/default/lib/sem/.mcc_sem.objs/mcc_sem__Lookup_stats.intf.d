lib/sem/lookup_stats.mli:
