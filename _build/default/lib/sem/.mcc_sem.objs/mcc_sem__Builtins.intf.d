lib/sem/builtins.mli: Hashtbl Symbol
