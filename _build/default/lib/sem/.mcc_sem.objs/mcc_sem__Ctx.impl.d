lib/sem/ctx.ml: Ast Diag Format Lookup_stats Mcc_ast Mcc_m2 Modreg Symbol Symtab Types
