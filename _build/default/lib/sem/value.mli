(** Compile-time constant values: results of constant-expression
    evaluation during declaration analysis (CONST declarations, subrange
    bounds, array dimensions, case labels). *)

type t =
  | VInt of int  (** also CARDINAL and enumeration ordinals *)
  | VReal of float
  | VBool of bool
  | VChar of char
  | VStr of string
  | VSet of int  (** bitmask over the set's element range, offset by its low bound *)
  | VNil

val to_string : t -> string
val equal : t -> t -> bool

(** Ordinal view: CHAR, BOOLEAN and length-1 string constants
    participate in subranges and case labels through their ordinal. *)
val ordinal : t -> int option
