(** Declaration analysis: turning declaration syntax into symbol-table
    entries, inline as the parser runs (paper §3) — fast completion of
    declaration parts is what resolves other streams' DKY blockages.

    Procedure headings follow paper §2.4: the parent scope processes the
    heading into a {!heading_info} whose parameter entries are copied
    into the child scope (alternative 1); under alternative 3 the child
    re-derives identical entries itself. *)

open Mcc_ast

(** Enter a symbol in the context's scope, rejecting builtin
    redeclaration and duplicates.  Charges per-entry work (plus
    per-symbol event overhead under optimistic handling). *)
val enter_sym : Ctx.t -> Mcc_m2.Loc.t -> Symbol.t -> unit

(** Resolve a type expression: names via lookup, enumerations (entering
    their literals), subranges, (multi-dimensional) arrays, records
    including variant parts (flattened; tag and arm fields all get
    slots), pointers (named targets deferred to {!finish_scope} as
    forward references), sets, procedure types. *)
val resolve_type : Ctx.t -> ?name:string -> Ast.type_expr -> use_off:int -> Types.ty

val const_decl : Ctx.t -> Ast.ident -> Ast.expr -> unit
val type_decl : Ctx.t -> Ast.ident -> Ast.type_expr -> unit
val var_decl : Ctx.t -> Ast.ident list -> Ast.type_expr -> unit

(** One formal parameter as the parent derived it. *)
type param_entry = {
  pe_name : string;
  pe_var : bool;
  pe_ty : Types.ty;
  pe_off : int;  (** declaration offset of the formal's name *)
  pe_slot : int;
}

(** What the parent publishes to the child stream. *)
type heading_info = {
  hi_name : string;
  hi_key : string;  (** code-unit key, e.g. "M.P" *)
  hi_sig : Types.signature;
  hi_params : param_entry list;
}

val resolve_params : Ctx.t -> Ast.param_section list -> use_off:int -> param_entry list

(** Process a heading in the parent scope: resolve parameters and result,
    check conformity against the module's own interface when applicable,
    enter the SProc symbol, and return the entries for the child.
    [stream] is the child stream compiling the body, when split. *)
val proc_heading : Ctx.t -> Ast.proc_heading -> stream:int option -> heading_info

(** Alternative 1's copy: enter the heading's parameter entries into the
    child scope. *)
val enter_params : Ctx.t -> heading_info -> unit

(** Resolve pointer forward references; runs in the scope's own task
    after all declarations, before the table is marked complete. *)
val finish_scope : Ctx.t -> unit
