(** Symbol-table entries.

    [def_off] is the declaration's textual offset, driving the
    declare-before-use visibility rule; [alias_of] marks FROM-imported
    names, which Table 2 classifies under the "other" scope column.
    Entries are built completely before {!Symtab.enter} publishes them,
    so entry creation is atomic with respect to search (paper §2.2). *)

(** Where a variable's storage lives. *)
type var_home =
  | HGlobal of string * int  (** module frame key, slot *)
  | HLocal of int  (** slot in the owning procedure's frame *)
  | HParam of int * bool  (** parameter slot, by-reference (VAR)? *)

type builtin_kind =
  | BAbs | BCap | BChr | BFloat | BHigh | BMax | BMin | BOdd | BOrd | BTrunc | BVal | BSize
  | BSqrt | BSin | BCos | BLn | BExp  (** "mathematical routines like sin and sqrt" (§2.2) *)
  | BInc | BDec | BIncl | BExcl | BHalt | BNew | BDispose
  | BWriteInt | BWriteLn | BWriteString | BWriteChar | BWriteReal | BReadInt

type kind =
  | SConst of Value.t * Types.ty
  | SType of Types.ty
  | SVar of var_home * Types.ty
  | SProc of proc_info
  | SEnumLit of Types.ty * int
  | SModule of string  (** import binding: qualified access to a module scope *)
  | SBuiltin of builtin_kind
  | SPlaceholder of Mcc_sched.Event.t  (** optimistic-handling DKY placeholder *)

and proc_info = {
  sig_ : Types.signature;
  key : string;  (** code-unit key, e.g. "M.P.Q"; stable across schedules *)
  external_ : bool;  (** declared in an imported interface: no body here *)
  mutable stream : int option;  (** child stream compiling the body, if split *)
}

type t = {
  sname : string;
  def_off : int;
  alias_of : string option;  (** exporting module, for FROM-imported names *)
  mutable skind : kind;
}

val make : ?alias_of:string option -> name:string -> def_off:int -> kind -> t
val is_placeholder : t -> bool

(** "constant", "type", "variable", ... for diagnostics. *)
val kind_name : t -> string
