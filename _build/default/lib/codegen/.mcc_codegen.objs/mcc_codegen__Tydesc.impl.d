lib/codegen/tydesc.ml: Array List Mcc_sem Printf String
