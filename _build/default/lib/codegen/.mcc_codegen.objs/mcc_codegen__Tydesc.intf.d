lib/codegen/tydesc.mli: Mcc_sem
