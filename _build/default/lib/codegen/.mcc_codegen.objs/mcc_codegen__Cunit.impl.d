lib/codegen/cunit.ml: Array Buffer Hashtbl Instr List Mcc_sched Mcc_util Mutex Option Printf String Tydesc Vec
