lib/codegen/cunit.mli: Hashtbl Instr Tydesc
