lib/codegen/instr.mli: Mcc_sem Tydesc
