lib/codegen/instr.ml: Mcc_sem Printf Tydesc
