lib/codegen/emit.mli: Cunit Mcc_parse Mcc_sem Tydesc
