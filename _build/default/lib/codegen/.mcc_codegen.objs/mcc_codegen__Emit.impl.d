lib/codegen/emit.ml: Ast Costs Cunit Eff Hashtbl Instr List Mcc_ast Mcc_parse Mcc_sched Mcc_sem Mcc_util String Tydesc Vec
