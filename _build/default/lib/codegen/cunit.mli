(** Code units and linked programs.

    A unit is the code for one procedure (or the module body, the entry
    unit); the merge task accumulates units as streams finish and
    [finish] links.  Unit keys come from scope paths ("M", "M.P",
    "M.P.Q"), so program assembly — and hence compiler output — is
    independent of the order streams completed (paper §2.1: merging is
    concatenation, in any order). *)

type t = {
  u_key : string;
  u_nparams : int;
  u_nslots : int;  (** params + locals + compiler temporaries *)
  u_locals : (int * Tydesc.t) list;  (** slot -> default-shape descriptor *)
  u_code : Instr.t array;
}

type program = {
  p_entry : string;  (** the main module's body unit *)
  p_init : string list;
      (** module body units in initialization order (imported modules
          before their importers; [p_entry] last) *)
  p_units : (string, t) Hashtbl.t;
  p_frames : (string * (int * Tydesc.t) list * int) list;
      (** global frames: key, slot descriptors, size — sorted by key *)
}

(** Unit keys, sorted. *)
val unit_keys : program -> string list

val find_unit : program -> string -> t option

(** Link units into a program.  [init] defaults to [[entry]].
    @raise Invalid_argument on duplicate unit keys. *)
val link :
  ?init:string list ->
  entry:string ->
  frames:(string * (int * Tydesc.t) list * int) list ->
  t list ->
  program

(** Canonical disassembly — used to compare compiler outputs across
    schedules, strategies and engines. *)
val disassemble_unit : t -> string

val disassemble : program -> string
val total_instrs : program -> int

(** {1 The merge accumulator driven by the Merge task} *)

type merger

val merger : unit -> merger

(** Concatenate one finished unit (charges merge work). *)
val add_unit : merger -> t -> unit

(** Register a module global frame's layout. *)
val add_frame : merger -> string -> (int * Tydesc.t) list -> int -> unit

val unit_count : merger -> int

(** Link everything accumulated. *)
val finish : merger -> entry:string -> program
