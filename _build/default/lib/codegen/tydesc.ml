(* Runtime type descriptors.

   The VM is untyped; descriptors tell it how to build default values —
   the shape of structured variables (arrays, records) must exist before
   the first element assignment, heap allocation (NEW) must know what to
   allocate, and EXCEPTION variables need their stable declaration
   identity.  Descriptors are derived from compiler types at code
   generation time and embedded in code units and global frame layouts.

   Pointer targets are *not* descended: pointers default to NIL and get
   their shape from NEW, which carries the target's own descriptor.  This
   also makes derivation total on recursive types. *)

type t =
  | DScalar (* INTEGER/CARDINAL/BOOLEAN/CHAR/REAL/subranges/enums/sets: default uninitialized *)
  | DPtr (* pointers and opaque types: default NIL *)
  | DProc (* procedure values: default NIL *)
  | DExc of string (* EXCEPTION: identity key, unique per declaration *)
  | DMutex
  | DArr of int * t (* element count, element descriptor *)
  | DRec of t array (* one descriptor per field slot *)

let rec of_ty ~exc_key (ty : Mcc_sem.Types.ty) : t =
  let module T = Mcc_sem.Types in
  match T.base ty with
  | T.TInt | T.TCard | T.TBool | T.TChar | T.TReal | T.TBitset | T.TEnum _ | T.TSet _
  | T.TStrLit _ | T.TErr | T.TNil ->
      DScalar
  | T.TPtr _ -> DPtr
  | T.TProc _ -> DProc
  | T.TExc -> DExc exc_key
  | T.TMutex -> DMutex
  | T.TArr a -> DArr (a.T.hi - a.T.lo + 1, of_ty ~exc_key (a.T.elem))
  | T.TOpenArr _ -> DScalar (* formals are overwritten by the actual *)
  | T.TRec r ->
      let n = List.length r.T.fields in
      let fields = Array.make n DScalar in
      List.iteri
        (fun i (fname, (f : T.field)) ->
          fields.(f.T.fslot) <- of_ty ~exc_key:(exc_key ^ "." ^ fname) f.T.fty;
          ignore i)
        r.T.fields;
      DRec fields
  | T.TSub _ -> DScalar

let rec to_string = function
  | DScalar -> "scalar"
  | DPtr -> "ptr"
  | DProc -> "proc"
  | DExc k -> Printf.sprintf "exc(%s)" k
  | DMutex -> "mutex"
  | DArr (n, e) -> Printf.sprintf "arr(%d,%s)" n (to_string e)
  | DRec fs -> Printf.sprintf "rec(%s)" (String.concat "," (Array.to_list (Array.map to_string fs)))
