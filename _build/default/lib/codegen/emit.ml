(* The statement analyzer / code generator.

   One such task runs per scope that has a statement part (every
   procedure stream, plus the module body).  It walks the statement parse
   tree built by the parser, performs the deferred semantic analysis of
   statements — full type checking of expressions, designators, calls and
   control flow — and emits stack-machine code, in a single pass (paper
   §3: "we incur no loss in processing efficiency by combining statement
   semantic analysis with code generation in a single task").

   By the time this task runs, its own scope is complete (the parser
   marked it before building the statement tree); lookups that chain into
   other streams' scopes may still block under the DKY protocol.  All
   name references here use full-scope visibility (statements follow the
   declarations textually in Modula-2 blocks, and Modula-2+ relaxes
   declare-before-use across nested scopes for statement contexts).

   WITH statements push record scopes onto a task-local stack searched
   before the symbol table; hits are recorded under Table 2's "WITH"
   scope class. *)

open Mcc_ast
open Mcc_sched
module A = Ast
module T = Mcc_sem.Types
module S = Mcc_sem.Symbol
module V = Mcc_sem.Value
module Ctx = Mcc_sem.Ctx
module Symtab = Mcc_sem.Symtab
module Ls = Mcc_sem.Lookup_stats
module Const_eval = Mcc_sem.Const_eval
module P = Mcc_parse.Parser
open Mcc_util

type env = {
  ctx : Ctx.t;
  code : Instr.t Vec.t;
  key : string;
  result : T.ty option;
  nparams : int;
  mutable next_temp : int;
  mutable max_slot : int; (* high-water mark over locals + temps *)
  mutable withs : (T.rec_info * int) list; (* innermost WITH first: record info, temp holding loc *)
  mutable loops : int list ref list; (* EXIT jump sites per enclosing LOOP *)
}

let emit env i =
  Eff.work Costs.emit_instr;
  Vec.push env.code i

let here env = Vec.length env.code
let patch env pc i = Vec.set env.code pc i

let alloc_temp env =
  let t = env.next_temp in
  env.next_temp <- t + 1;
  if env.next_temp > env.max_slot then env.max_slot <- env.next_temp;
  t

let free_temp env = env.next_temp <- env.next_temp - 1

let err env loc fmt = Ctx.error env.ctx loc fmt

(* ------------------------------------------------------------------ *)
(* Name resolution *)

type resolved =
  | RWith of int * T.field (* temp slot holding the record loc, field *)
  | RSym of S.t
  | RNone

let resolve_name env (id : A.ident) : resolved =
  (* WITH scopes are searched before the symbol table chain *)
  let rec in_withs = function
    | [] -> None
    | (rinfo, temp) :: rest -> (
        match List.assoc_opt id.A.name rinfo.T.fields with
        | Some f -> Some (temp, f)
        | None -> in_withs rest)
  in
  match in_withs env.withs with
  | Some (temp, f) ->
      Ls.record env.ctx.Ctx.stats ~kind:Ls.Simple ~found:Ls.FirstTry ~scope:Ls.CWith
        ~compl:Ls.Complete;
      RWith (temp, f)
  | None -> (
      match
        Symtab.lookup ~strategy:env.ctx.Ctx.strategy ~stats:env.ctx.Ctx.stats ~use_off:max_int
          ~scope:env.ctx.Ctx.scope id.A.name
      with
      | Some sym -> RSym sym
      | None ->
          err env id.A.iloc "undeclared identifier %s" id.A.name;
          RNone)

(* [M.x] where M is an imported module binding. *)
let resolve_qualified env (m : A.ident) (f : A.ident) mname : S.t option =
  ignore m;
  match Mcc_sem.Modreg.find env.ctx.Ctx.registry mname with
  | None ->
      err env f.A.iloc "module %s has no interface" mname;
      None
  | Some mscope -> (
      match
        Symtab.lookup_qualified ~strategy:env.ctx.Ctx.strategy ~stats:env.ctx.Ctx.stats
          ~scope:mscope f.A.name
      with
      | Some sym -> Some sym
      | None ->
          err env f.A.iloc "%s is not exported by module %s" f.A.name mname;
          None)

(* If [e] is [EName m] or [EField ...] whose head resolves to a module
   binding, return the qualified symbol for [e.f]. *)
let qualified_field env (base : A.expr) (f : A.ident) : S.t option option =
  match base.A.e with
  | A.EName { A.prefix = None; id = m } -> (
      (* peek: is m a module binding?  WITH fields shadow modules. *)
      let rec in_withs = function
        | [] -> false
        | (rinfo, _) :: rest -> List.mem_assoc m.A.name rinfo.T.fields || in_withs rest
      in
      if in_withs env.withs then None
      else
        match
          Symtab.lookup ~strategy:env.ctx.Ctx.strategy ~stats:env.ctx.Ctx.stats ~use_off:max_int
            ~scope:env.ctx.Ctx.scope m.A.name
        with
        | Some { S.skind = S.SModule mname; _ } -> Some (resolve_qualified env m f mname)
        | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Designators: emit code computing a location; return its type. *)

let dummy_addr env =
  (* keep the stack shape sane on error paths *)
  emit env (Instr.Const V.VNil);
  T.TErr

(* Uplevel addressing: frame-relative storage found in an *enclosing
   procedure's* scope is reached through the static chain.  [frame_hops]
   locates the procedure frame a symbol physically lives in, counting
   procedure-scope boundaries crossed on the way up (0 = the current
   frame).  The walk depends only on scope structure, so sequential and
   concurrent compilations agree. *)
let frame_hops env (sym : S.t) : int option =
  let rec go (sc : Symtab.t) hops =
    match Symtab.find_opt sc sym.S.sname with
    | Some s when s == sym -> Some hops
    | _ -> (
        match sc.Symtab.parent with
        | Some p ->
            let hops' = match p.Symtab.kind with Symtab.KProc _ -> hops + 1 | _ -> hops in
            go p hops'
        | None -> None)
  in
  go env.ctx.Ctx.scope 0

(* Where a called procedure's static chain comes from (see
   [Instr.linkspec]): declared in the current scope -> the caller's frame
   heads the chain; k procedure scopes up -> a suffix of the caller's
   chain; module level or imported -> no chain. *)
let call_link env (sym : S.t) : Instr.linkspec =
  let rec go (sc : Symtab.t) hops =
    match Symtab.find_opt sc sym.S.sname with
    | Some s when s == sym -> (
        match sc.Symtab.kind with
        | Symtab.KProc _ -> if hops = 0 then Instr.LinkSelf else Instr.LinkUp hops
        | _ -> Instr.LinkNone)
    | _ -> (
        match sc.Symtab.parent with
        | Some p ->
            let hops' = match p.Symtab.kind with Symtab.KProc _ -> hops + 1 | _ -> hops in
            go p hops'
        | None -> Instr.LinkNone)
  in
  go env.ctx.Ctx.scope 0

let frame_addr env loc (sym : S.t) slot =
  match frame_hops env sym with
  | Some 0 -> emit env (Instr.LocalAddr slot)
  | Some hops -> emit env (Instr.UplevelAddr (hops, slot))
  | None ->
      err env loc "%s is not reachable from this scope" sym.S.sname;
      emit env (Instr.Const V.VNil)

let sym_addr env loc (sym : S.t) : T.ty =
  match sym.S.skind with
  | S.SVar (home, ty) ->
      (match home with
      | S.HGlobal (fk, slot) -> emit env (Instr.GlobalAddr (fk, slot))
      | S.HLocal slot | S.HParam (slot, false) -> frame_addr env loc sym slot
      | S.HParam (slot, true) ->
          (* the slot holds a location *)
          frame_addr env loc sym slot;
          emit env Instr.LoadInd);
      ty
  | _ ->
      err env loc "%s is a %s and cannot be assigned or passed by reference" sym.S.sname
        (S.kind_name sym);
      dummy_addr env

let rec gen_addr env (e : A.expr) : T.ty =
  Eff.work Costs.expr_node;
  match e.A.e with
  | A.EName { A.prefix = None; id } -> (
      match resolve_name env id with
      | RWith (temp, f) ->
          emit env (Instr.LoadLocal temp);
          emit env (Instr.FieldAddr f.T.fslot);
          f.T.fty
      | RSym sym -> sym_addr env id.A.iloc sym
      | RNone -> dummy_addr env)
  | A.EField (base, f) -> (
      match qualified_field env base f with
      | Some (Some sym) -> sym_addr env f.A.iloc sym
      | Some None -> dummy_addr env
      | None -> (
          let bty = gen_addr env base in
          match T.base bty with
          | T.TRec r -> (
              match List.assoc_opt f.A.name r.T.fields with
              | Some fld ->
                  emit env (Instr.FieldAddr fld.T.fslot);
                  fld.T.fty
              | None ->
                  err env f.A.iloc "record %s has no field %s" (T.name bty) f.A.name;
                  emit env Instr.Pop;
                  dummy_addr env)
          | T.TErr -> bty
          | t ->
              err env f.A.iloc "%s is not a record type" (T.name t);
              emit env Instr.Pop;
              dummy_addr env))
  | A.EIndex (base, idxs) ->
      let bty = gen_addr env base in
      List.fold_left
        (fun acc idx ->
          match T.base acc with
          | T.TArr a ->
              let ity = gen_value env idx in
              if not (T.compatible ity a.T.index) then
                err env idx.A.eloc "index type %s is incompatible with %s" (T.name ity)
                  (T.name a.T.index);
              emit env (Instr.IndexAddr (a.T.lo, a.T.hi));
              a.T.elem
          | T.TOpenArr elem ->
              let ity = gen_value env idx in
              if not (T.is_numeric ity) then
                err env idx.A.eloc "open array index must be numeric, not %s" (T.name ity);
              emit env Instr.IndexOpenAddr;
              elem
          | T.TErr ->
              ignore (gen_value env idx);
              emit env Instr.Pop;
              T.TErr
          | t ->
              err env idx.A.eloc "%s is not an array type" (T.name t);
              ignore (gen_value env idx);
              emit env Instr.Pop;
              T.TErr)
        bty idxs
  | A.EDeref base -> (
      let bty = gen_value env base in
      match T.base bty with
      | T.TPtr p ->
          emit env Instr.DerefAddr;
          p.T.target
      | T.TErr -> bty
      | t ->
          err env e.A.eloc "%s is not a pointer type and cannot be dereferenced" (T.name t);
          emit env Instr.Pop;
          dummy_addr env)
  | _ ->
      err env e.A.eloc "a designator (assignable variable) is required here";
      dummy_addr env

(* ------------------------------------------------------------------ *)
(* Expressions: emit code computing a value; return its type. *)

and gen_value env (e : A.expr) : T.ty =
  Eff.work Costs.expr_node;
  match e.A.e with
  | A.EInt n -> emit env (Instr.Const (V.VInt n)); T.TInt
  | A.EReal f -> emit env (Instr.Const (V.VReal f)); T.TReal
  | A.EChar c -> emit env (Instr.Const (V.VChar c)); T.TChar
  | A.EStr s when String.length s = 1 ->
      emit env (Instr.Const (V.VStr s));
      T.TStrLit 1
  | A.EStr s ->
      emit env (Instr.Const (V.VStr s));
      T.TStrLit (String.length s)
  | A.EName { A.prefix = None; id } -> (
      match resolve_name env id with
      | RWith (temp, f) ->
          emit env (Instr.LoadLocal temp);
          emit env (Instr.FieldAddr f.T.fslot);
          emit env Instr.LoadInd;
          f.T.fty
      | RSym sym -> sym_value env id.A.iloc sym
      | RNone ->
          emit env (Instr.Const V.VNil);
          T.TErr)
  | A.EName _ -> assert false (* the parser builds field chains, not prefixes *)
  | A.EField (base, f) -> (
      match qualified_field env base f with
      | Some (Some sym) -> sym_value env f.A.iloc sym
      | Some None ->
          emit env (Instr.Const V.VNil);
          T.TErr
      | None ->
          let ty = gen_addr env e in
          emit env Instr.LoadInd;
          ty)
  | A.EIndex _ | A.EDeref _ ->
      let ty = gen_addr env e in
      emit env Instr.LoadInd;
      ty
  | A.ECall (f, args) -> gen_call env e.A.eloc f args ~statement:false
  | A.EBin (op, a, b) -> gen_binop env e.A.eloc op a b
  | A.EUn (op, a) -> gen_unop env e.A.eloc op a
  | A.ESet (tyq, elems) -> gen_set env e.A.eloc tyq elems

and sym_value env loc (sym : S.t) : T.ty =
  match sym.S.skind with
  | S.SConst (v, ty) ->
      emit env (Instr.Const v);
      ty
  | S.SEnumLit (ty, ord) ->
      emit env (Instr.Const (V.VInt ord));
      ty
  | S.SVar (home, ty) ->
      (match home with
      | S.HGlobal (fk, slot) -> emit env (Instr.LoadGlobal (fk, slot))
      | S.HLocal slot | S.HParam (slot, false) -> (
          match frame_hops env sym with
          | Some 0 -> emit env (Instr.LoadLocal slot)
          | _ ->
              frame_addr env loc sym slot;
              emit env Instr.LoadInd)
      | S.HParam (slot, true) ->
          frame_addr env loc sym slot;
          emit env Instr.LoadInd;
          emit env Instr.LoadInd);
      ty
  | S.SProc info ->
      (match call_link env sym with
      | Instr.LinkNone ->
          emit env (Instr.ProcConst info.S.key);
          T.TProc info.S.sig_
      | _ ->
          (* PIM: procedures assigned to variables or passed as values
             must not be local to other procedures (they would need a
             closure over the static chain) *)
          err env loc "%s is local to a procedure and cannot be used as a procedure value"
            sym.S.sname;
          emit env (Instr.Const V.VNil);
          T.TProc info.S.sig_)
  | S.SBuiltin _ ->
      err env loc "builtin %s cannot be used as a value" sym.S.sname;
      emit env (Instr.Const V.VNil);
      T.TErr
  | S.SModule _ ->
      err env loc "module %s cannot be used as a value" sym.S.sname;
      emit env (Instr.Const V.VNil);
      T.TErr
  | S.SType _ ->
      err env loc "type %s cannot be used as a value" sym.S.sname;
      emit env (Instr.Const V.VNil);
      T.TErr
  | S.SPlaceholder _ -> assert false

and gen_binop env loc op a b : T.ty =
  match op with
  | A.And ->
      (* short circuit: a AND b *)
      let ta = gen_value env a in
      if not (T.equal ta T.TBool) then err env a.A.eloc "AND requires BOOLEAN operands";
      emit env Instr.Dup;
      let j = here env in
      emit env (Instr.JumpIfNot 0);
      emit env Instr.Pop;
      let tb = gen_value env b in
      if not (T.equal tb T.TBool) then err env b.A.eloc "AND requires BOOLEAN operands";
      patch env j (Instr.JumpIfNot (here env));
      T.TBool
  | A.Or ->
      let ta = gen_value env a in
      if not (T.equal ta T.TBool) then err env a.A.eloc "OR requires BOOLEAN operands";
      emit env Instr.Dup;
      let j = here env in
      emit env (Instr.JumpIf 0);
      emit env Instr.Pop;
      let tb = gen_value env b in
      if not (T.equal tb T.TBool) then err env b.A.eloc "OR requires BOOLEAN operands";
      patch env j (Instr.JumpIf (here env));
      T.TBool
  | A.In -> (
      let ta = gen_value env a in
      let tb = gen_value env b in
      match T.base tb with
      | T.TSet s ->
          if not (T.compatible ta s.T.sbase) then
            err env loc "element type %s does not match set base %s" (T.name ta) (T.name s.T.sbase);
          emit env (Instr.SetIn s.T.slo);
          T.TBool
      | T.TBitset ->
          if not (T.is_numeric ta) then err env loc "BITSET elements are CARDINAL";
          emit env (Instr.SetIn 0);
          T.TBool
      | T.TErr -> T.TErr
      | t ->
          err env loc "IN requires a set, not %s" (T.name t);
          emit env Instr.Pop;
          T.TBool)
  | A.Eq | A.Neq | A.Lt | A.Le | A.Gt | A.Ge -> (
      let ta = gen_value env a in
      let tb = gen_value env b in
      if not (T.compatible ta tb) then
        err env loc "cannot compare %s with %s" (T.name ta) (T.name tb);
      let rel =
        match op with
        | A.Eq -> Instr.REq
        | A.Neq -> Instr.RNe
        | A.Lt -> Instr.RLt
        | A.Le -> Instr.RLe
        | A.Gt -> Instr.RGt
        | _ -> Instr.RGe
      in
      (match (T.base ta, T.base tb) with
      | (T.TPtr _ | T.TNil | T.TProc _), _ | _, (T.TPtr _ | T.TNil | T.TProc _) ->
          if rel <> Instr.REq && rel <> Instr.RNe then
            err env loc "pointers and procedure values only compare with = and #";
          emit env (Instr.CmpPtr rel)
      | (T.TSet _ | T.TBitset), _ -> (
          (* set relations: = # for equality, <= >= for inclusion *)
          match rel with
          | Instr.REq | Instr.RNe -> emit env (Instr.Cmp rel)
          | Instr.RLe -> emit env Instr.SetLe
          | Instr.RGe -> emit env Instr.SetGe
          | _ -> err env loc "sets compare with =, #, <= and >= only")
      | _ -> emit env (Instr.Cmp rel));
      T.TBool)
  | A.Add | A.Sub | A.Mul | A.Divide | A.Div | A.Mod -> (
      let ta = gen_value env a in
      let tb = gen_value env b in
      let both p = p ta && p tb in
      let is_real t = T.base t = T.TReal in
      let is_set t = match T.base t with T.TSet _ | T.TBitset -> true | _ -> false in
      if T.is_error ta || T.is_error tb then T.TErr
      else if both T.is_numeric then begin
        (match op with
        | A.Add -> emit env Instr.AddI
        | A.Sub -> emit env Instr.SubI
        | A.Mul -> emit env Instr.MulI
        | A.Div -> emit env Instr.DivI
        | A.Mod -> emit env Instr.ModI
        | A.Divide ->
            err env loc "/ is not defined on INTEGER; use DIV"
        | _ -> assert false);
        T.TInt
      end
      else if both is_real then begin
        (match op with
        | A.Add -> emit env Instr.AddR
        | A.Sub -> emit env Instr.SubR
        | A.Mul -> emit env Instr.MulR
        | A.Divide -> emit env Instr.DivR
        | _ -> err env loc "DIV and MOD are not defined on REAL");
        T.TReal
      end
      else if both is_set then begin
        if not (T.compatible ta tb) then err env loc "set operands have different types";
        (match op with
        | A.Add -> emit env Instr.SetUnion
        | A.Sub -> emit env Instr.SetDiff
        | A.Mul -> emit env Instr.SetInter
        | A.Divide -> emit env Instr.SetSymDiff
        | _ -> err env loc "DIV and MOD are not defined on sets");
        ta
      end
      else begin
        err env loc "operands %s and %s do not support this operator" (T.name ta) (T.name tb);
        emit env Instr.Pop;
        T.TErr
      end)

and gen_unop env loc op a : T.ty =
  let ta = gen_value env a in
  match op with
  | A.Neg ->
      if T.base ta = T.TReal then emit env Instr.NegR
      else if T.is_numeric ta then emit env Instr.NegI
      else err env loc "unary minus requires a numeric operand, not %s" (T.name ta);
      ta
  | A.Pos ->
      if not (T.is_numeric ta || T.base ta = T.TReal) then
        err env loc "unary plus requires a numeric operand, not %s" (T.name ta);
      ta
  | A.Not ->
      if not (T.equal ta T.TBool) then err env loc "NOT requires a BOOLEAN operand";
      emit env Instr.NotB;
      T.TBool

and gen_set env loc tyq elems : T.ty =
  let sty =
    match tyq with
    | None -> T.TBitset
    | Some q -> (
        match Ctx.lookup_type env.ctx q ~use_off:max_int with
        | T.TSet _ as t -> t
        | T.TBitset -> T.TBitset
        | T.TErr -> T.TErr
        | t ->
            err env loc "%s is not a set type" (T.name t);
            T.TErr)
  in
  let lo, base_ty =
    match sty with
    | T.TSet s -> (s.T.slo, s.T.sbase)
    | _ -> (0, T.TCard)
  in
  emit env (Instr.Const (V.VSet 0));
  List.iter
    (fun elem ->
      match elem with
      | A.SetOne e ->
          let t = gen_value env e in
          if not (T.compatible t base_ty) then
            err env e.A.eloc "set element type %s does not match base %s" (T.name t)
              (T.name base_ty);
          emit env (Instr.SetAdd1 lo)
      | A.SetRange (a, b) ->
          let t1 = gen_value env a in
          let t2 = gen_value env b in
          if not (T.compatible t1 base_ty && T.compatible t2 base_ty) then
            err env a.A.eloc "set range type does not match base %s" (T.name base_ty);
          emit env (Instr.SetAddRange lo))
    elems;
  sty

(* ------------------------------------------------------------------ *)
(* Calls *)

and gen_args env loc (sig_ : T.signature) (args : A.expr list) =
  let formals = sig_.T.params in
  if List.length formals <> List.length args then
    err env loc "wrong number of arguments: expected %d, found %d" (List.length formals)
      (List.length args)
  else
    List.iter2
      (fun (formal : T.param) actual ->
        if formal.T.mode_var then begin
          let aty = gen_addr env actual in
          if not (T.param_compat ~formal ~actual:aty) then
            err env actual.A.eloc "VAR argument of type %s does not match formal of type %s"
              (T.name aty) (T.name formal.T.pty)
        end
        else begin
          let aty = gen_value env actual in
          if not (T.param_compat ~formal ~actual:aty) then
            err env actual.A.eloc "argument of type %s does not match formal of type %s"
              (T.name aty) (T.name formal.T.pty);
          (* value semantics: structured actuals are copied *)
          (match T.base aty with
          | T.TArr _ | T.TRec _ -> emit env Instr.CopyVal
          | T.TStrLit n -> (
              match T.base formal.T.pty with
              | T.TArr a -> emit env (Instr.StrToArr (a.T.hi - a.T.lo + 1))
              | _ -> ignore n)
          | _ -> ())
        end)
      formals args

and gen_call env loc (f : A.expr) (args : A.expr list) ~statement : T.ty =
  let finish_proc ?(link = Instr.LinkNone) (info : S.proc_info) =
    gen_args env loc info.S.sig_ args;
    emit env (Instr.Call (info.S.key, List.length info.S.sig_.T.params, link));
    match info.S.sig_.T.result with
    | Some rty ->
        if statement then begin
          err env loc "a function result must be used";
          emit env Instr.Pop;
          None |> ignore
        end;
        rty
    | None ->
        if not statement then begin
          err env loc "procedure call has no result and cannot appear in an expression";
          emit env (Instr.Const V.VNil)
        end;
        T.TErr
  in
  let call_value fty =
    match T.base fty with
    | T.TProc sig_ -> (
        (* the callee value is already on the stack, beneath the args *)
        gen_args env loc sig_ args;
        emit env (Instr.CallPtr (List.length sig_.T.params));
        match sig_.T.result with
        | Some rty ->
            if statement then begin
              err env loc "a function result must be used";
              emit env Instr.Pop
            end;
            rty
        | None ->
            if not statement then begin
              err env loc "procedure call has no result and cannot appear in an expression";
              emit env (Instr.Const V.VNil)
            end;
            T.TErr)
    | T.TErr -> T.TErr
    | t ->
        err env loc "%s is not callable" (T.name t);
        emit env Instr.Pop;
        if not statement then emit env (Instr.Const V.VNil);
        T.TErr
  in
  match f.A.e with
  | A.EName { A.prefix = None; id } -> (
      match resolve_name env id with
      | RSym { S.skind = S.SBuiltin b; _ } -> gen_builtin env loc b args ~statement
      | RSym ({ S.skind = S.SProc info; _ } as sym) -> finish_proc ~link:(call_link env sym) info
      | RSym sym ->
          (* a variable of procedure type *)
          let fty = sym_value env id.A.iloc sym in
          call_value fty
      | RWith (temp, fld) ->
          emit env (Instr.LoadLocal temp);
          emit env (Instr.FieldAddr fld.T.fslot);
          emit env Instr.LoadInd;
          call_value fld.T.fty
      | RNone ->
          if not statement then emit env (Instr.Const V.VNil);
          T.TErr)
  | A.EField (base, fld) -> (
      match qualified_field env base fld with
      | Some (Some { S.skind = S.SProc info; _ }) -> finish_proc info
      | Some (Some sym) ->
          let fty = sym_value env fld.A.iloc sym in
          call_value fty
      | Some None ->
          if not statement then emit env (Instr.Const V.VNil);
          T.TErr
      | None ->
          let fty = gen_value env f in
          call_value fty)
  | _ ->
      let fty = gen_value env f in
      call_value fty

(* ------------------------------------------------------------------ *)
(* Builtins *)

and expect_args env loc n args =
  if List.length args <> n then begin
    err env loc "builtin expects %d argument%s, found %d" n (if n = 1 then "" else "s")
      (List.length args);
    false
  end
  else true

and gen_builtin env loc b (args : A.expr list) ~statement : T.ty =
  let module B = S in
  let no_result name =
    if not statement then begin
      err env loc "%s does not return a value" name;
      emit env (Instr.Const V.VNil)
    end;
    T.TErr
  in
  let one_value () =
    match args with
    | [ a ] -> Some (gen_value env a)
    | _ ->
        ignore (expect_args env loc 1 args);
        None
  in
  match b with
  | B.BAbs -> (
      match one_value () with
      | Some t when T.base t = T.TReal ->
          emit env (Instr.Builtin (Instr.OAbsR, 1));
          t
      | Some t when T.is_numeric t ->
          emit env (Instr.Builtin (Instr.OAbsI, 1));
          t
      | Some t ->
          err env loc "ABS requires a numeric argument, not %s" (T.name t);
          T.TErr
      | None -> T.TErr)
  | B.BCap -> (
      match one_value () with
      | Some t ->
          if not (T.compatible t T.TChar) then err env loc "CAP requires a CHAR argument";
          emit env (Instr.Builtin (Instr.OCap, 1));
          T.TChar
      | None -> T.TErr)
  | B.BChr -> (
      match one_value () with
      | Some t ->
          if not (T.is_numeric t) then err env loc "CHR requires a CARDINAL argument";
          emit env (Instr.RangeCheck (0, 255));
          emit env (Instr.Builtin (Instr.OIntToChar, 1));
          T.TChar
      | None -> T.TErr)
  | B.BOrd -> (
      match one_value () with
      | Some t ->
          if not (T.is_ordinal t) then err env loc "ORD requires an ordinal argument";
          emit env (Instr.Builtin (Instr.OOrdOf, 1));
          T.TCard
      | None -> T.TErr)
  | B.BFloat -> (
      match one_value () with
      | Some t ->
          if not (T.is_numeric t) then err env loc "FLOAT requires an integer argument";
          emit env (Instr.Builtin (Instr.OIntToReal, 1));
          T.TReal
      | None -> T.TErr)
  | B.BTrunc -> (
      match one_value () with
      | Some t ->
          if T.base t <> T.TReal then err env loc "TRUNC requires a REAL argument";
          emit env (Instr.Builtin (Instr.ORealToInt, 1));
          T.TInt
      | None -> T.TErr)
  | B.BOdd -> (
      match one_value () with
      | Some t ->
          if not (T.is_numeric t) then err env loc "ODD requires an integer argument";
          emit env (Instr.Builtin (Instr.OOddI, 1));
          T.TBool
      | None -> T.TErr)
  | B.BSqrt | B.BSin | B.BCos | B.BLn | B.BExp -> (
      let op =
        match b with
        | B.BSqrt -> Instr.OSqrt
        | B.BSin -> Instr.OSin
        | B.BCos -> Instr.OCos
        | B.BLn -> Instr.OLn
        | _ -> Instr.OExp
      in
      match one_value () with
      | Some t ->
          if T.base t <> T.TReal then err env loc "this function requires a REAL argument";
          emit env (Instr.Builtin (op, 1));
          T.TReal
      | None -> T.TErr)
  | B.BHigh -> (
      match args with
      | [ a ] -> (
          let t = gen_value env a in
          match T.base t with
          | T.TOpenArr _ | T.TStrLit _ ->
              emit env (Instr.Builtin (Instr.OHighOf, 1));
              T.TCard
          | T.TArr ai ->
              (* static bound *)
              emit env Instr.Pop;
              emit env (Instr.Const (V.VInt (ai.T.hi - ai.T.lo)));
              T.TCard
          | _ ->
              err env loc "HIGH requires an array argument";
              T.TErr)
      | _ ->
          ignore (expect_args env loc 1 args);
          T.TErr)
  | B.BVal -> (
      (* VAL(T, e): runtime ordinal conversion with a range check *)
      match args with
      | [ { A.e = A.EName tq; _ }; a ] -> (
          let ty = Ctx.lookup_type env.ctx tq ~use_off:max_int in
          let at = gen_value env a in
          if not (T.is_ordinal at) then err env loc "VAL requires an ordinal value";
          match ty with
          | T.TErr -> T.TErr
          | t when T.is_ordinal t ->
              let lo, hi = T.bounds t in
              emit env (Instr.Builtin (Instr.OOrdOf, 1));
              emit env (Instr.RangeCheck (lo, hi));
              if T.base t = T.TChar then emit env (Instr.Builtin (Instr.OIntToChar, 1));
              t
          | t ->
              err env loc "VAL requires an ordinal type, not %s" (T.name t);
              T.TErr)
      | _ ->
          err env loc "VAL requires a type name and a value";
          emit env (Instr.Const V.VNil);
          T.TErr)
  | B.BMax | B.BMin | B.BSize -> (
      (* type-name arguments: evaluated at compile time *)
      env.ctx.Ctx.full_visibility <- true;
      let r = Const_eval.eval env.ctx { A.e = A.ECall ({ A.e = A.EName { A.prefix = None; id = { A.name = builtin_const_name b; iloc = loc } }; eloc = loc }, args); eloc = loc } in
      env.ctx.Ctx.full_visibility <- true;
      match r with
      | Some (v, t) ->
          emit env (Instr.Const v);
          t
      | None ->
          emit env (Instr.Const V.VNil);
          T.TErr)
  | B.BInc | B.BDec -> (
      match args with
      | [ v ] | [ v; _ ] ->
          let vt = gen_addr env v in
          if not (T.is_ordinal vt) then err env loc "INC/DEC requires an ordinal variable";
          (match args with
          | [ _; delta ] ->
              let dt = gen_value env delta in
              if not (T.is_numeric dt) then err env loc "INC/DEC amount must be an integer"
          | _ -> emit env (Instr.Const (V.VInt 1)));
          emit env (if b = B.BInc then Instr.IncInd else Instr.DecInd);
          no_result "INC/DEC"
      | _ ->
          ignore (expect_args env loc 1 args);
          no_result "INC/DEC")
  | B.BIncl | B.BExcl -> (
      match args with
      | [ s; e ] -> (
          let st = gen_addr env s in
          match T.base st with
          | T.TSet si ->
              let et = gen_value env e in
              if not (T.compatible et si.T.sbase) then
                err env loc "set element type does not match set base";
              emit env (if b = B.BIncl then Instr.InclInd si.T.slo else Instr.ExclInd si.T.slo);
              no_result "INCL/EXCL"
          | T.TBitset ->
              let et = gen_value env e in
              if not (T.is_numeric et) then err env loc "BITSET elements are CARDINAL";
              emit env (if b = B.BIncl then Instr.InclInd 0 else Instr.ExclInd 0);
              no_result "INCL/EXCL"
          | t ->
              err env loc "INCL/EXCL requires a set variable, not %s" (T.name t);
              ignore (gen_value env e);
              emit env Instr.Pop;
              emit env Instr.Pop;
              no_result "INCL/EXCL")
      | _ ->
          ignore (expect_args env loc 2 args);
          no_result "INCL/EXCL")
  | B.BHalt ->
      if expect_args env loc 0 args then emit env (Instr.Builtin (Instr.OHalt, 0));
      no_result "HALT"
  | B.BNew -> (
      match args with
      | [ p ] -> (
          let pt = gen_addr env p in
          match T.base pt with
          | T.TPtr pi ->
              let desc = Tydesc.of_ty ~exc_key:(env.key ^ "!heap") pi.T.target in
              emit env (Instr.NewInd desc);
              no_result "NEW"
          | t ->
              err env loc "NEW requires a pointer variable, not %s" (T.name t);
              emit env Instr.Pop;
              no_result "NEW")
      | _ ->
          ignore (expect_args env loc 1 args);
          no_result "NEW")
  | B.BDispose -> (
      match args with
      | [ p ] ->
          let pt = gen_addr env p in
          (match T.base pt with
          | T.TPtr _ -> ()
          | t -> err env loc "DISPOSE requires a pointer variable, not %s" (T.name t));
          emit env Instr.DisposeInd;
          no_result "DISPOSE"
      | _ ->
          ignore (expect_args env loc 1 args);
          no_result "DISPOSE")
  | B.BWriteInt -> (
      match one_value () with
      | Some t ->
          if not (T.is_numeric t) then err env loc "WriteInt requires an integer argument";
          emit env (Instr.Builtin (Instr.OWriteInt, 1));
          no_result "WriteInt"
      | None -> no_result "WriteInt")
  | B.BWriteLn ->
      if expect_args env loc 0 args then emit env (Instr.Builtin (Instr.OWriteLn, 0));
      no_result "WriteLn"
  | B.BWriteString -> (
      match one_value () with
      | Some t ->
          (match T.base t with
          | T.TStrLit _ -> ()
          | T.TArr a when T.equal a.T.elem T.TChar -> ()
          | T.TOpenArr e when T.equal e T.TChar -> ()
          | t -> err env loc "WriteString requires a string argument, not %s" (T.name t));
          emit env (Instr.Builtin (Instr.OWriteString, 1));
          no_result "WriteString"
      | None -> no_result "WriteString")
  | B.BWriteChar -> (
      match one_value () with
      | Some t ->
          if not (T.compatible t T.TChar) then err env loc "WriteChar requires a CHAR argument";
          emit env (Instr.Builtin (Instr.OWriteChar, 1));
          no_result "WriteChar"
      | None -> no_result "WriteChar")
  | B.BWriteReal -> (
      match one_value () with
      | Some t ->
          if T.base t <> T.TReal then err env loc "WriteReal requires a REAL argument";
          emit env (Instr.Builtin (Instr.OWriteReal, 1));
          no_result "WriteReal"
      | None -> no_result "WriteReal")
  | B.BReadInt -> (
      match args with
      | [ v ] ->
          let vt = gen_addr env v in
          if not (T.is_numeric vt) then err env loc "ReadInt requires an integer variable";
          emit env (Instr.Builtin (Instr.OReadInt, 1));
          no_result "ReadInt"
      | _ ->
          ignore (expect_args env loc 1 args);
          no_result "ReadInt")

and builtin_const_name = function
  | S.BMax -> "MAX"
  | S.BMin -> "MIN"
  | S.BVal -> "VAL"
  | S.BSize -> "SIZE"
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Statements *)

let gen_bool env e =
  let t = gen_value env e in
  if not (T.equal t T.TBool) then err env e.A.eloc "a BOOLEAN condition is required, not %s" (T.name t)

let rec gen_stmt env (st : A.stmt) =
  Eff.work Costs.stmt_node;
  match st.A.s with
  | A.SEmpty -> ()
  | A.SAssign (dst, rhs) ->
      let dt = gen_addr env dst in
      let rt = gen_value env rhs in
      if not (T.assignable ~dst:dt ~src:rt) then
        err env st.A.sloc "cannot assign %s to %s" (T.name rt) (T.name dt);
      (match (T.base dt, T.base rt) with
      | T.TArr a, T.TStrLit _ when T.equal a.T.elem T.TChar ->
          emit env (Instr.StrToArr (a.T.hi - a.T.lo + 1))
      | (T.TArr _ | T.TRec _), _ -> emit env Instr.CopyVal
      | _ -> ());
      (match dt with
      | T.TSub (_, lo, hi) -> emit env (Instr.RangeCheck (lo, hi))
      | _ -> ());
      emit env Instr.StoreInd
  | A.SCall e -> (
      match e.A.e with
      | A.ECall (f, args) -> ignore (gen_call env st.A.sloc f args ~statement:true)
      | _ -> ignore (gen_call env st.A.sloc e [] ~statement:true))
  | A.SIf (branches, els) ->
      let end_jumps = ref [] in
      List.iter
        (fun (cond, body) ->
          gen_bool env cond;
          let jf = here env in
          emit env (Instr.JumpIfNot 0);
          List.iter (gen_stmt env) body;
          let je = here env in
          emit env (Instr.Jump 0);
          end_jumps := je :: !end_jumps;
          patch env jf (Instr.JumpIfNot (here env)))
        branches;
      List.iter (gen_stmt env) els;
      let e = here env in
      List.iter (fun pc -> patch env pc (Instr.Jump e)) !end_jumps
  | A.SCase (sel, arms, els) -> gen_case env sel arms els
  | A.SWhile (cond, body) ->
      let start = here env in
      gen_bool env cond;
      let jf = here env in
      emit env (Instr.JumpIfNot 0);
      List.iter (gen_stmt env) body;
      emit env (Instr.Jump start);
      patch env jf (Instr.JumpIfNot (here env))
  | A.SRepeat (body, cond) ->
      let start = here env in
      List.iter (gen_stmt env) body;
      gen_bool env cond;
      emit env (Instr.JumpIfNot start)
  | A.SLoop body ->
      let exits = ref [] in
      env.loops <- exits :: env.loops;
      let start = here env in
      List.iter (gen_stmt env) body;
      emit env (Instr.Jump start);
      env.loops <- List.tl env.loops;
      let e = here env in
      List.iter (fun pc -> patch env pc (Instr.Jump e)) !exits
  | A.SExit -> (
      match env.loops with
      | exits :: _ ->
          exits := here env :: !exits;
          emit env (Instr.Jump 0)
      | [] -> err env st.A.sloc "EXIT is only legal inside LOOP")
  | A.SFor (v, lo, hi, by, body) -> gen_for env st.A.sloc v lo hi by body
  | A.SWith (d, body) -> (
      let dt = gen_addr env d in
      match T.base dt with
      | T.TRec rinfo ->
          let temp = alloc_temp env in
          emit env (Instr.StoreLocal temp);
          env.withs <- (rinfo, temp) :: env.withs;
          List.iter (gen_stmt env) body;
          env.withs <- List.tl env.withs;
          free_temp env
      | T.TErr ->
          emit env Instr.Pop;
          List.iter (gen_stmt env) body
      | t ->
          err env d.A.eloc "WITH requires a record designator, not %s" (T.name t);
          emit env Instr.Pop;
          List.iter (gen_stmt env) body)
  | A.SReturn None ->
      if env.result <> None then err env st.A.sloc "this function must RETURN a value";
      emit env Instr.Ret
  | A.SReturn (Some e) -> (
      let t = gen_value env e in
      match env.result with
      | None ->
          err env st.A.sloc "RETURN with a value is only legal in a function procedure";
          emit env Instr.Pop;
          emit env Instr.Ret
      | Some rt ->
          if not (T.assignable ~dst:rt ~src:t) then
            err env st.A.sloc "RETURN value of type %s does not match result type %s" (T.name t)
              (T.name rt);
          emit env Instr.RetVal)
  | A.SRaise e ->
      let t = gen_value env e in
      if T.base t <> T.TExc && not (T.is_error t) then
        err env st.A.sloc "RAISE requires an EXCEPTION value, not %s" (T.name t);
      emit env Instr.RaiseI
  | A.STry (body, handlers, fin) -> gen_try env body handlers fin
  | A.SLock (mu, body) ->
      let t = gen_value env mu in
      if T.base t <> T.TMutex && not (T.is_error t) then
        err env mu.A.eloc "LOCK requires a MUTEX, not %s" (T.name t);
      emit env Instr.Pop;
      List.iter (gen_stmt env) body

and gen_case env sel arms els =
  let selt = gen_value env sel in
  if not (T.is_ordinal selt) then err env sel.A.eloc "CASE selector must be ordinal";
  let temp = alloc_temp env in
  emit env (Instr.StoreLocal temp);
  env.ctx.Ctx.full_visibility <- true;
  let seen = Hashtbl.create 16 in
  let check_label n loc =
    if Hashtbl.mem seen n then err env loc "duplicate case label %d" n else Hashtbl.add seen n ()
  in
  let arm_tests =
    List.map
      (fun (arm : A.case_arm) ->
        let tests =
          List.filter_map
            (fun label ->
              match label with
              | A.SetOne e -> (
                  match Const_eval.ordinal_const env.ctx e with
                  | Some (n, t) ->
                      if not (T.compatible t selt) then
                        err env e.A.eloc "case label type %s does not match selector %s" (T.name t)
                          (T.name selt);
                      check_label n e.A.eloc;
                      Some (`One n)
                  | None -> None)
              | A.SetRange (a, b) -> (
                  match (Const_eval.ordinal_const env.ctx a, Const_eval.ordinal_const env.ctx b) with
                  | Some (x, _), Some (y, _) ->
                      if x > y then err env a.A.eloc "empty case label range";
                      for i = x to y do
                        check_label i a.A.eloc
                      done;
                      Some (`Range (x, y))
                  | _ -> None))
            arm.A.labels
        in
        (tests, arm.A.arm_body))
      arms
  in
  (* first the dispatch tests, then the bodies *)
  let body_jumps =
    List.map
      (fun (tests, body) ->
        let sites =
          List.map
            (fun test ->
              match test with
              | `One n ->
                  emit env (Instr.LoadLocal temp);
                  emit env (Instr.Const (V.VInt n));
                  emit env (Instr.Cmp Instr.REq);
                  let j = here env in
                  emit env (Instr.JumpIf 0);
                  j
              | `Range (x, y) ->
                  emit env (Instr.LoadLocal temp);
                  emit env (Instr.Const (V.VInt x));
                  emit env (Instr.Cmp Instr.RGe);
                  let jskip = here env in
                  emit env (Instr.JumpIfNot 0);
                  emit env (Instr.LoadLocal temp);
                  emit env (Instr.Const (V.VInt y));
                  emit env (Instr.Cmp Instr.RLe);
                  let j = here env in
                  emit env (Instr.JumpIf 0);
                  patch env jskip (Instr.JumpIfNot (here env));
                  j)
            tests
        in
        (sites, body))
      arm_tests
  in
  (* no label matched *)
  let end_jumps = ref [] in
  (match els with
  | Some body ->
      List.iter (gen_stmt env) body;
      let j = here env in
      emit env (Instr.Jump 0);
      end_jumps := j :: !end_jumps
  | None -> emit env Instr.CaseError);
  List.iter
    (fun (sites, body) ->
      let pc = here env in
      List.iter (fun site -> patch env site (Instr.JumpIf pc)) sites;
      List.iter (gen_stmt env) body;
      let j = here env in
      emit env (Instr.Jump 0);
      end_jumps := j :: !end_jumps)
    body_jumps;
  let e = here env in
  List.iter (fun pc -> patch env pc (Instr.Jump e)) !end_jumps;
  free_temp env

and gen_for env loc (v : A.ident) lo hi by body =
  let vexpr = { A.e = A.EName { A.prefix = None; id = v }; eloc = v.A.iloc } in
  let step =
    match by with
    | None -> 1
    | Some e -> (
        env.ctx.Ctx.full_visibility <- true;
        match Const_eval.ordinal_const env.ctx e with
        | Some (n, _) ->
            if n = 0 then err env e.A.eloc "FOR step cannot be zero";
            n
        | None -> 1)
  in
  (* v := lo *)
  let vt = gen_addr env vexpr in
  if not (T.is_ordinal vt) then err env loc "FOR control variable must be ordinal";
  let lot = gen_value env lo in
  if not (T.compatible vt lot) then err env lo.A.eloc "FOR start value has the wrong type";
  emit env Instr.StoreInd;
  (* limit -> temp *)
  let limit = alloc_temp env in
  let hit = gen_value env hi in
  if not (T.compatible vt hit) then err env hi.A.eloc "FOR limit has the wrong type";
  emit env (Instr.StoreLocal limit);
  let start = here env in
  ignore (gen_value env vexpr);
  emit env (Instr.LoadLocal limit);
  emit env (Instr.Cmp (if step > 0 then Instr.RLe else Instr.RGe));
  let jf = here env in
  emit env (Instr.JumpIfNot 0);
  List.iter (gen_stmt env) body;
  ignore (gen_addr env vexpr);
  emit env (Instr.Const (V.VInt (abs step)));
  emit env (if step > 0 then Instr.IncInd else Instr.DecInd);
  emit env (Instr.Jump start);
  patch env jf (Instr.JumpIfNot (here env));
  free_temp env

and gen_try env body handlers fin =
  (* TRY body EXCEPT e1: h1 | ... FINALLY f END
     compiles to:
       try H; body; endtry; f; jmp done
       H: (exc on stack)
          dup; <e1>; cmp eq; jt B1; ...; f'; reraise
       B1: pop; h1; f''; jmp done
     The FINALLY code is duplicated on each path (classic inline
     expansion). *)
  let handler_site = here env in
  emit env (Instr.Try 0);
  List.iter (gen_stmt env) body;
  emit env Instr.EndTry;
  List.iter (gen_stmt env) fin;
  let jdone0 = here env in
  emit env (Instr.Jump 0);
  patch env handler_site (Instr.Try (here env));
  let end_jumps = ref [ jdone0 ] in
  (* exception value is on the stack at handler entry *)
  let match_sites =
    List.map
      (fun ((q : A.qualident), hbody) ->
        emit env Instr.Dup;
        (match Ctx.lookup_qualident env.ctx q ~use_off:max_int with
        | Some ({ S.skind = S.SVar (_, ty); _ } as sym) ->
            if T.base ty <> T.TExc then
              err env q.A.id.A.iloc "%s is not an EXCEPTION" (A.qual_to_string q)
            else ignore (sym_value env q.A.id.A.iloc sym)
        | Some _ | None ->
            err env q.A.id.A.iloc "EXCEPT requires an EXCEPTION name";
            emit env (Instr.Const V.VNil));
        emit env (Instr.Cmp Instr.REq);
        let j = here env in
        emit env (Instr.JumpIf 0);
        (j, hbody))
      handlers
  in
  (* nothing matched: run FINALLY and re-raise *)
  List.iter (gen_stmt env) fin;
  emit env Instr.ReRaise;
  List.iter
    (fun (site, hbody) ->
      let pc = here env in
      patch env site (Instr.JumpIf pc);
      emit env Instr.Pop (* the exception value *);
      List.iter (gen_stmt env) hbody;
      List.iter (gen_stmt env) fin;
      let j = here env in
      emit env (Instr.Jump 0);
      end_jumps := j :: !end_jumps)
    match_sites;
  let e = here env in
  List.iter (fun pc -> patch env pc (Instr.Jump e)) !end_jumps

(* ------------------------------------------------------------------ *)
(* Entry point: generate the code unit for one statement part. *)

let local_descriptors (scope : Symtab.t) ~key =
  List.filter_map
    (fun (sym : S.t) ->
      match sym.S.skind with
      | S.SVar (S.HLocal slot, ty) ->
          Some (slot, Tydesc.of_ty ~exc_key:(key ^ "#" ^ sym.S.sname) ty)
      | _ -> None)
    (Symtab.entries scope)

(* Global frame layout for a module-level scope. *)
let frame_layout (scope : Symtab.t) ~frame_key ~size =
  let slots =
    List.filter_map
      (fun (sym : S.t) ->
        match sym.S.skind with
        | S.SVar (S.HGlobal (fk, slot), ty) when fk = frame_key ->
            Some (slot, Tydesc.of_ty ~exc_key:(frame_key ^ "#" ^ sym.S.sname) ty)
        | _ -> None)
      (Symtab.entries scope)
  in
  (frame_key, slots, size)

let emit_job (gj : P.gen_job) : Cunit.t =
  let nparams = match gj.P.gj_sig with None -> 0 | Some s -> List.length s.T.params in
  let env =
    {
      ctx = gj.P.gj_ctx;
      code = Vec.create Instr.Ret;
      key = gj.P.gj_key;
      result = (match gj.P.gj_sig with None -> None | Some s -> s.T.result);
      nparams;
      next_temp = gj.P.gj_nslots;
      max_slot = gj.P.gj_nslots;
      withs = [];
      loops = [];
    }
  in
  env.ctx.Ctx.full_visibility <- true;
  List.iter (gen_stmt env) gj.P.gj_body;
  (match env.result with None -> emit env Instr.Ret | Some _ -> emit env Instr.NoReturn);
  {
    Cunit.u_key = gj.P.gj_key;
    u_nparams = nparams;
    u_nslots = env.max_slot;
    u_locals = local_descriptors gj.P.gj_ctx.Ctx.scope ~key:gj.P.gj_key;
    u_code = Vec.to_array env.code;
  }
