(* Code units and linked programs.

   "It is a straightforward exercise to generate code for each procedure
   separately and to merge this code using simple concatenation ...
   Because the unit of merging is the code for an entire procedure, this
   concatenation can be done in any order and concurrently with other
   compiler activity." (paper §2.1, §3)

   A [t] is the code for one procedure (or for a module body, the
   program's entry unit).  The merge task accumulates units as streams
   finish; [link] builds the final program.  Unit keys are derived from
   scope paths ("M", "M.P", "M.P.Q"), which makes program assembly — and
   hence compiler output — independent of the order in which streams
   completed, a property the test suite verifies. *)

open Mcc_util

type t = {
  u_key : string;
  u_nparams : int;
  u_nslots : int; (* params + locals + compiler temporaries *)
  u_locals : (int * Tydesc.t) list; (* slot -> default-shape descriptor *)
  u_code : Instr.t array;
}

type program = {
  p_entry : string; (* the main module's body unit *)
  p_init : string list;
      (* module body units in initialization order (imported modules
         before their importers; [p_entry] last) *)
  p_units : (string, t) Hashtbl.t;
  p_frames : (string * (int * Tydesc.t) list * int) list;
      (* global frames: key, slot descriptors, size — sorted by key *)
}

let unit_keys p =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) p.p_units [])

let find_unit p key = Hashtbl.find_opt p.p_units key

(* Link a collection of units into a program.  Arrival order is
   irrelevant; duplicate keys indicate a compiler bug and are rejected. *)
let link ?init ~entry ~frames units =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun u ->
      if Hashtbl.mem tbl u.u_key then invalid_arg ("Cunit.link: duplicate unit " ^ u.u_key);
      Hashtbl.replace tbl u.u_key u)
    units;
  {
    p_entry = entry;
    p_init = Option.value init ~default:[ entry ];
    p_units = tbl;
    p_frames = List.sort (fun (a, _, _) (b, _, _) -> compare a b) frames;
  }

(* Canonical disassembly: used to compare compiler outputs across
   schedules, strategies and engines. *)
let disassemble_unit u =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "unit %s params=%d slots=%d\n" u.u_key u.u_nparams u.u_nslots);
  List.iter
    (fun (slot, d) -> Buffer.add_string buf (Printf.sprintf "  .local %d %s\n" slot (Tydesc.to_string d)))
    u.u_locals;
  Array.iteri
    (fun i ins -> Buffer.add_string buf (Printf.sprintf "  %4d: %s\n" i (Instr.to_string ins)))
    u.u_code;
  Buffer.contents buf

let disassemble p =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "entry %s\n" p.p_entry);
  if p.p_init <> [ p.p_entry ] then
    Buffer.add_string buf (Printf.sprintf "init %s\n" (String.concat " " p.p_init));
  List.iter
    (fun (key, slots, size) ->
      Buffer.add_string buf (Printf.sprintf "frame %s size=%d\n" key size);
      List.iter
        (fun (slot, d) ->
          Buffer.add_string buf (Printf.sprintf "  .global %d %s\n" slot (Tydesc.to_string d)))
        slots)
    p.p_frames;
  List.iter
    (fun key ->
      match find_unit p key with
      | Some u -> Buffer.add_string buf (disassemble_unit u)
      | None -> ())
    (unit_keys p);
  Buffer.contents buf

let total_instrs p = Hashtbl.fold (fun _ u acc -> acc + Array.length u.u_code) p.p_units 0

(* ------------------------------------------------------------------ *)
(* The merge accumulator used by the Merge task: units arrive from
   code-generation tasks in schedule order; [finish] links. *)

type merger = {
  mu : Mutex.t;
  units : t Vec.t;
  mutable frames : (string * (int * Tydesc.t) list * int) list;
}

let dummy_unit = { u_key = ""; u_nparams = 0; u_nslots = 0; u_locals = []; u_code = [||] }

let merger () = { mu = Mutex.create (); units = Vec.create dummy_unit; frames = [] }

let add_unit m u =
  Mcc_sched.Eff.work Mcc_sched.Costs.merge_unit;
  Mutex.lock m.mu;
  Vec.push m.units u;
  Mutex.unlock m.mu

let add_frame m key slots size =
  Mutex.lock m.mu;
  m.frames <- (key, slots, size) :: m.frames;
  Mutex.unlock m.mu

let unit_count m =
  Mutex.lock m.mu;
  let n = Vec.length m.units in
  Mutex.unlock m.mu;
  n

let finish m ~entry =
  Mutex.lock m.mu;
  let units = Vec.to_list m.units in
  let frames = m.frames in
  Mutex.unlock m.mu;
  link ~entry ~frames units
