(** The statement analyzer / code generator — one task per scope with a
    statement part (paper §3: statement semantic analysis and code
    generation combined in a single task).

    Walks the parser's statement tree, performs the deferred semantic
    analysis (full type checking of expressions, designators, calls,
    control flow), and emits stack-machine code in one pass.  Runs with
    full-scope visibility; lookups chaining into other streams' scopes
    follow the DKY protocol.  WITH statements push record scopes onto a
    task-local stack searched before the symbol table (Table 2's "WITH"
    class).  Uplevel references go through the static chain; procedure
    values must be module-level (PIM's restriction). *)

(** Generate the code unit for one statement part. *)
val emit_job : Mcc_parse.Parser.gen_job -> Cunit.t

(** Local-slot default-shape descriptors for a scope (structured
    variables need their shape before first element assignment). *)
val local_descriptors : Mcc_sem.Symtab.t -> key:string -> (int * Tydesc.t) list

(** Global frame layout of a module-level scope:
    [(frame key, slot descriptors, size)]. *)
val frame_layout :
  Mcc_sem.Symtab.t -> frame_key:string -> size:int -> string * (int * Tydesc.t) list * int
