(** The instruction set of the target stack machine — the stand-in for
    the paper's CVax object code.  What matters structurally is
    preserved: code is generated one procedure at a time into
    self-contained units addressed by stable string keys, so the merge
    task can concatenate units in any order (paper §2.1).

    Address values ("locations") unify all assignable storage: a
    location designates one slot of some value array (a procedure
    frame, a module global frame, an array/record body, or a heap
    cell).  Designator code computes locations; [LoadInd]/[StoreInd]
    read and write through them; VAR parameters pass them; the static
    chain reaches enclosing procedures' frames. *)

type relop = REq | RNe | RLt | RLe | RGt | RGe

val relop_name : relop -> string

(** How a call establishes the callee's static chain. *)
type linkspec =
  | LinkNone  (** module-level procedure: no enclosing frame *)
  | LinkSelf  (** declared in the calling procedure: chain = my frame :: my chain *)
  | LinkUp of int  (** declared k >= 1 procedure scopes up: chain = drop (k-1) my chain *)

val linkspec_name : linkspec -> string

type builtin_op =
  | OWriteInt | OWriteLn | OWriteString | OWriteChar | OWriteReal | OReadInt
  | OHalt
  | OSqrt | OSin | OCos | OLn | OExp
  | OCap | OOddI | OAbsI | OAbsR
  | OIntToReal | ORealToInt  (** FLOAT / TRUNC *)
  | OIntToChar | OOrdOf  (** CHR / ORD *)
  | OHighOf  (** HIGH: open array or string *)

val builtin_name : builtin_op -> string

type t =
  (* constants and moves *)
  | Const of Mcc_sem.Value.t
  | Dup
  | Pop
  | CopyVal  (** deep copy: structured assignment has value semantics *)
  | StrToArr of int  (** string to CHAR array of n elements, 0C padded *)
  (* frame and global access *)
  | LoadLocal of int
  | StoreLocal of int
  | LocalAddr of int
  | UplevelAddr of int * int  (** hops (>=1) up the static chain, slot *)
  | LoadGlobal of string * int
  | StoreGlobal of string * int
  | GlobalAddr of string * int
  (* structured access *)
  | FieldAddr of int  (** loc -> loc of field slot *)
  | LoadField of int
  | IndexAddr of int * int  (** lo, hi: [loc; index] -> element loc, bounds-checked *)
  | IndexOpenAddr
  | LoadElem of int * int
  | LoadElemOpen
  | DerefAddr  (** pointer value -> loc of its target *)
  | LoadInd
  | StoreInd
  | IncInd  (** [loc; delta] -> ordinal increment through loc *)
  | DecInd
  | InclInd of int  (** set base lo: [loc; elem] -> include element *)
  | ExclInd of int
  | NewInd of Tydesc.t  (** loc of a pointer variable -> allocate target *)
  | DisposeInd
  (* arithmetic and logic *)
  | AddI | SubI | MulI | DivI | ModI | NegI
  | AddR | SubR | MulR | DivR | NegR
  | NotB
  | Cmp of relop  (** ordinals, reals, strings, sets(eq), exceptions(eq) *)
  | CmpPtr of relop  (** physical equality on pointers: REq/RNe only *)
  | SetUnion | SetDiff | SetInter | SetSymDiff
  | SetLe  (** subset *)
  | SetGe  (** superset *)
  | SetIn of int
  | SetAdd1 of int
  | SetAddRange of int
  (* checks *)
  | RangeCheck of int * int
  | CaseError
  | NoReturn  (** a function body fell off its end without RETURN *)
  (* control flow: absolute pc within the unit *)
  | Jump of int
  | JumpIf of int
  | JumpIfNot of int
  (* calls *)
  | Call of string * int * linkspec  (** unit key, arg count, static chain *)
  | CallPtr of int  (** [proc value; args...]: callee computed before arguments *)
  | ProcConst of string
  | Ret
  | RetVal
  | Builtin of builtin_op * int
  (* exceptions (Modula-2+) *)
  | Try of int  (** push handler at pc *)
  | EndTry
  | RaiseI
  | ReRaise

(** Canonical textual form (the disassembly the equality tests compare). *)
val to_string : t -> string
