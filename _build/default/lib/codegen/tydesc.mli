(** Runtime type descriptors: how the untyped VM builds default values —
    the shape of structured variables, NEW's allocation, and the stable
    identity of EXCEPTION declarations.  Pointer targets are not
    descended (pointers default to NIL; NEW carries the target's own
    descriptor), which also makes derivation total on recursive types. *)

type t =
  | DScalar  (** numbers, chars, booleans, enums, sets: default uninitialized *)
  | DPtr  (** pointers and opaque types: default NIL *)
  | DProc  (** procedure values: default NIL *)
  | DExc of string  (** EXCEPTION: identity key, unique per declaration *)
  | DMutex
  | DArr of int * t  (** element count, element descriptor *)
  | DRec of t array  (** one descriptor per field slot *)

(** Derive a descriptor; [exc_key] seeds per-declaration EXCEPTION
    identities (extended per record field). *)
val of_ty : exc_key:string -> Mcc_sem.Types.ty -> t

val to_string : t -> string
