(* The instruction set of the target stack machine.

   A compact evaluation-stack machine standing in for the paper's CVax
   object code.  What matters structurally is preserved: code is
   generated one procedure at a time into self-contained units addressed
   by stable string keys, so the merge task can concatenate units in any
   order (paper §2.1) and linking resolves calls by key.

   Address values ("locations") unify all assignable storage: a location
   designates one slot of some value array (a procedure frame, a module
   global frame, an array/record body, or a heap cell).  Designator code
   computes locations; [LoadInd]/[StoreInd] read and write through them;
   VAR parameters pass them. *)

type relop = REq | RNe | RLt | RLe | RGt | RGe

(* How a call establishes the callee's static chain (uplevel access to
   enclosing procedures' frames).  Procedures at module level need no
   chain; a procedure declared in the caller's own scope gets the
   caller's frame pushed onto the caller's chain; a procedure declared k
   scopes up reuses a suffix of the caller's chain. *)
type linkspec =
  | LinkNone (* module-level procedure: no enclosing frame *)
  | LinkSelf (* declared in the calling procedure: chain = my frame :: my chain *)
  | LinkUp of int (* declared k >= 1 procedure scopes up: chain = drop (k-1) my chain *)

let linkspec_name = function
  | LinkNone -> "-"
  | LinkSelf -> "self"
  | LinkUp k -> Printf.sprintf "up%d" k

let relop_name = function
  | REq -> "eq" | RNe -> "ne" | RLt -> "lt" | RLe -> "le" | RGt -> "gt" | RGe -> "ge"

type builtin_op =
  | OWriteInt | OWriteLn | OWriteString | OWriteChar | OWriteReal | OReadInt
  | OHalt
  | OSqrt | OSin | OCos | OLn | OExp
  | OCap | OOddI | OAbsI | OAbsR
  | OIntToReal | ORealToInt (* FLOAT / TRUNC *)
  | OIntToChar | OOrdOf (* CHR / ORD *)
  | OHighOf (* HIGH: open array or string *)

let builtin_name = function
  | OWriteInt -> "WriteInt" | OWriteLn -> "WriteLn" | OWriteString -> "WriteString"
  | OWriteChar -> "WriteChar" | OWriteReal -> "WriteReal" | OReadInt -> "ReadInt"
  | OHalt -> "Halt" | OSqrt -> "sqrt" | OSin -> "sin" | OCos -> "cos" | OLn -> "ln"
  | OExp -> "exp" | OCap -> "cap" | OOddI -> "odd" | OAbsI -> "absi" | OAbsR -> "absr"
  | OIntToReal -> "i2r" | ORealToInt -> "r2i" | OIntToChar -> "i2c" | OOrdOf -> "ord"
  | OHighOf -> "high"

type t =
  (* constants and moves *)
  | Const of Mcc_sem.Value.t
  | Dup
  | Pop
  | CopyVal (* deep copy: structured assignment has value semantics *)
  | StrToArr of int (* convert a string to a CHAR array of n elements, 0C padded *)
  (* frame and global access *)
  | LoadLocal of int
  | StoreLocal of int
  | LocalAddr of int
  | UplevelAddr of int * int (* hops (>=1) up the static chain, slot *)
  | LoadGlobal of string * int
  | StoreGlobal of string * int
  | GlobalAddr of string * int
  (* structured access: locations *)
  | FieldAddr of int (* loc -> loc of field slot *)
  | LoadField of int (* record value -> field value *)
  | IndexAddr of int * int (* lo, hi: [loc; index] -> element loc, bounds-checked *)
  | IndexOpenAddr (* [loc; index] -> element loc of an open array, bounds-checked *)
  | LoadElem of int * int (* [array value; index] -> element value *)
  | LoadElemOpen
  | DerefAddr (* pointer value -> loc of its target *)
  | LoadInd (* loc -> value *)
  | StoreInd (* [loc; value] -> ;  writes value *)
  | IncInd (* [loc; delta] -> ;  ordinal increment through loc *)
  | DecInd
  | InclInd of int (* set base lo: [loc; elem] -> ; include element *)
  | ExclInd of int
  | NewInd of Tydesc.t (* loc of a pointer variable -> allocate target *)
  | DisposeInd
  (* arithmetic and logic *)
  | AddI | SubI | MulI | DivI | ModI | NegI
  | AddR | SubR | MulR | DivR | NegR
  | NotB
  | Cmp of relop (* ordinals, reals, strings, sets(eq), exceptions(eq) *)
  | CmpPtr of relop (* physical equality on pointers: REq/RNe only *)
  | SetUnion | SetDiff | SetInter | SetSymDiff
  | SetLe (* [a; b] -> a subset of b *)
  | SetGe (* [a; b] -> a superset of b *)
  | SetIn of int (* set base lo: [elem; set] -> BOOLEAN *)
  | SetAdd1 of int (* [set; elem] -> set with elem *)
  | SetAddRange of int (* [set; lo'; hi'] -> set with range *)
  (* checks *)
  | RangeCheck of int * int (* trap unless lo <= top-of-stack <= hi *)
  | CaseError (* no case label matched *)
  | NoReturn (* a function body fell off its end without RETURN *)
  (* control flow: absolute pc within the unit *)
  | Jump of int
  | JumpIf of int
  | JumpIfNot of int
  (* calls *)
  | Call of string * int * linkspec (* unit key, arg count, static chain *)
  | CallPtr of int (* [proc value; args...]: callee computed before arguments *)
  | ProcConst of string
  | Ret
  | RetVal
  | Builtin of builtin_op * int (* operation, arg count *)
  (* exceptions (Modula-2+) *)
  | Try of int (* push handler at pc *)
  | EndTry
  | RaiseI (* [exception value] -> raise *)
  | ReRaise (* re-raise the exception being handled *)

let to_string = function
  | Const v -> Printf.sprintf "const %s" (Mcc_sem.Value.to_string v)
  | Dup -> "dup"
  | Pop -> "pop"
  | CopyVal -> "copy"
  | StrToArr n -> Printf.sprintf "str2arr %d" n
  | LoadLocal n -> Printf.sprintf "lload %d" n
  | StoreLocal n -> Printf.sprintf "lstore %d" n
  | LocalAddr n -> Printf.sprintf "laddr %d" n
  | UplevelAddr (h, n) -> Printf.sprintf "uaddr %d:%d" h n
  | LoadGlobal (f, n) -> Printf.sprintf "gload %s:%d" f n
  | StoreGlobal (f, n) -> Printf.sprintf "gstore %s:%d" f n
  | GlobalAddr (f, n) -> Printf.sprintf "gaddr %s:%d" f n
  | FieldAddr n -> Printf.sprintf "faddr %d" n
  | LoadField n -> Printf.sprintf "fload %d" n
  | IndexAddr (lo, hi) -> Printf.sprintf "ixaddr [%d..%d]" lo hi
  | IndexOpenAddr -> "ixaddr open"
  | LoadElem (lo, hi) -> Printf.sprintf "ixload [%d..%d]" lo hi
  | LoadElemOpen -> "ixload open"
  | DerefAddr -> "deref"
  | LoadInd -> "iload"
  | StoreInd -> "istore"
  | IncInd -> "inc"
  | DecInd -> "dec"
  | InclInd lo -> Printf.sprintf "incl %d" lo
  | ExclInd lo -> Printf.sprintf "excl %d" lo
  | NewInd d -> Printf.sprintf "new %s" (Tydesc.to_string d)
  | DisposeInd -> "dispose"
  | AddI -> "addi" | SubI -> "subi" | MulI -> "muli" | DivI -> "divi" | ModI -> "modi"
  | NegI -> "negi" | AddR -> "addr" | SubR -> "subr" | MulR -> "mulr" | DivR -> "divr"
  | NegR -> "negr" | NotB -> "not"
  | Cmp r -> "cmp " ^ relop_name r
  | CmpPtr r -> "cmpp " ^ relop_name r
  | SetUnion -> "s.or" | SetDiff -> "s.diff" | SetInter -> "s.and" | SetSymDiff -> "s.xor"
  | SetLe -> "s.le" | SetGe -> "s.ge"
  | SetIn lo -> Printf.sprintf "s.in %d" lo
  | SetAdd1 lo -> Printf.sprintf "s.add %d" lo
  | SetAddRange lo -> Printf.sprintf "s.addrange %d" lo
  | RangeCheck (lo, hi) -> Printf.sprintf "rangechk [%d..%d]" lo hi
  | CaseError -> "caseerr"
  | NoReturn -> "noreturn"
  | Jump n -> Printf.sprintf "jmp %d" n
  | JumpIf n -> Printf.sprintf "jt %d" n
  | JumpIfNot n -> Printf.sprintf "jf %d" n
  | Call (k, n, l) -> Printf.sprintf "call %s/%d[%s]" k n (linkspec_name l)
  | CallPtr n -> Printf.sprintf "calli/%d" n
  | ProcConst k -> Printf.sprintf "procconst %s" k
  | Ret -> "ret"
  | RetVal -> "retval"
  | Builtin (op, n) -> Printf.sprintf "builtin %s/%d" (builtin_name op) n
  | Try n -> Printf.sprintf "try %d" n
  | EndTry -> "endtry"
  | RaiseI -> "raise"
  | ReRaise -> "reraise"
