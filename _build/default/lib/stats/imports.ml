(* Static import-graph analysis of a source store.

   Provides the "Imported Interfaces" and "Import Nesting Depth"
   attributes of Table 1: interfaces reachable from the main module, and
   the longest import chain.  The scan reuses the Importer's lexical
   recognition over each file directly (no engine involved). *)

open Mcc_m2
open Mcc_core

let direct_imports ~file src =
  let acc = ref [] in
  let rd = Reader.of_lexer (Lexer.create ~file src) in
  Stream.run_importer ~rd ~on_import:(fun m -> if not (List.mem m !acc) then acc := m :: !acc);
  List.rev !acc

(* All interfaces reachable from the main module (directly or
   indirectly), and the maximum import nesting depth: the length of the
   longest chain main -> I1 -> ... -> Ik counted in interfaces. *)
let analyze (store : Source_store.t) =
  let memo_depth = Hashtbl.create 32 in
  let visited = Hashtbl.create 32 in
  let rec depth_of name =
    match Hashtbl.find_opt memo_depth name with
    | Some d -> d
    | None ->
        Hashtbl.replace memo_depth name 0 (* cycle guard *);
        let d =
          match Source_store.def_src store name with
          | None -> 0
          | Some src ->
              Hashtbl.replace visited name ();
              let imps = direct_imports ~file:(Source_store.def_file name) src in
              1 + List.fold_left (fun acc m -> max acc (depth_of m)) 0 imps
        in
        Hashtbl.replace memo_depth name d;
        d
  in
  let main_imports =
    direct_imports ~file:(Source_store.main_file store) (Source_store.main_src store)
  in
  let depth = List.fold_left (fun acc m -> max acc (depth_of m)) 0 main_imports in
  (* depth_of visited everything reachable *)
  let interfaces = Hashtbl.length visited in
  (interfaces, depth)
