(** Speedup measurement: the machinery behind Table 3 and Figures 1-3.

    Self-relative speedup is T(1 processor)/T(N), the concurrent
    compiler against itself (paper §4.2), on the deterministic simulated
    multiprocessor — sweeps reproduce exactly. *)

open Mcc_core

type sweep = {
  store : Source_store.t;
  times : float array;  (** [times.(n-1)] = virtual end time on n processors *)
}

val max_procs : int

(** Compile on 1..[max_procs] simulated processors. *)
val sweep : ?config:Driver.config -> ?max_procs:int -> Source_store.t -> sweep

val t1 : sweep -> float
val speedup : sweep -> int -> float

(** 1-processor time in calibrated seconds (the quartile classifier). *)
val seconds_1p : sweep -> float

(** Per processor count: (min, mean, max) speedup over the sweeps. *)
val aggregate : sweep list -> n:int -> float * float * float

(** The paper's quartile split (§4.2): by 1-processor time with fixed
    thresholds at 5, 10 and 30 seconds. *)
type quartile = Q1 | Q2 | Q3 | Q4

val quartile_of : sweep -> quartile
val quartile_name : quartile -> string
val by_quartile : sweep list -> (quartile * sweep list) list

(** Mean speedup at [n] ([nan] on an empty list). *)
val mean_speedup : sweep list -> n:int -> float

(** The member with the best speedup at [n] (the paper's best
    human-authored module). *)
val best : sweep list -> n:int -> sweep option
