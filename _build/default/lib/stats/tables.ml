(* Rendering of the paper's tables from measured data. *)

open Mcc_util
open Mcc_core
module Ls = Mcc_sem.Lookup_stats

(* ------------------------------------------------------------------ *)
(* Table 1: description of the test suite *)

type program_attrs = {
  pa_name : string;
  pa_bytes : int; (* size of the .mod file *)
  pa_seq_seconds : float;
  pa_c1_seconds : float; (* concurrent compiler on 1 processor: the quartile classifier *)
  pa_interfaces : int;
  pa_depth : int;
  pa_procedures : int;
  pa_streams : int;
}

let measure_attrs (store : Source_store.t) : program_attrs =
  let seq = Seq_driver.compile store in
  let conc = Driver.compile ~config:{ Driver.default_config with Driver.procs = 1 } store in
  let interfaces, depth = Imports.analyze store in
  {
    pa_name = Source_store.main_name store;
    pa_bytes = String.length (Source_store.main_src store);
    pa_seq_seconds = Mcc_sched.Costs.to_seconds seq.Seq_driver.cost_units;
    pa_c1_seconds = conc.Driver.sim.Mcc_sched.Des_engine.end_seconds;
    pa_interfaces = interfaces;
    pa_depth = depth;
    pa_procedures = conc.Driver.n_proc_streams;
    pa_streams = conc.Driver.n_streams;
  }

let median_of cmp xs =
  let a = Array.of_list xs in
  Array.sort cmp a;
  a.(Array.length a / 2)

let table1 (attrs : program_attrs list) =
  let stat f fmt =
    let xs = List.map f attrs in
    let mn = List.fold_left min (List.hd xs) xs in
    let mx = List.fold_left max (List.hd xs) xs in
    let med = median_of compare xs in
    [ fmt mn; fmt med; fmt mx ]
  in
  let rows =
    [
      "Module size (bytes)" :: stat (fun a -> float_of_int a.pa_bytes) (fun v -> Tablefmt.grouped (int_of_float v));
      "Seq. Compile Time (sec)" :: stat (fun a -> a.pa_seq_seconds) (Tablefmt.fixed ~decimals:2);
      "Imported Interfaces" :: stat (fun a -> float_of_int a.pa_interfaces) (fun v -> string_of_int (int_of_float v));
      "Import Nesting Depth" :: stat (fun a -> float_of_int a.pa_depth) (fun v -> string_of_int (int_of_float v));
      "Number of Procedures" :: stat (fun a -> float_of_int a.pa_procedures) (fun v -> string_of_int (int_of_float v));
      "Number of Streams" :: stat (fun a -> float_of_int a.pa_streams) (fun v -> string_of_int (int_of_float v));
    ]
  in
  Tablefmt.render ~aligns:[ Tablefmt.Left ] ~header:[ "Attribute"; "Minimum"; "Median"; "Maximum" ]
    rows

(* ------------------------------------------------------------------ *)
(* Table 2: identifier lookup statistics *)

let table2 (stats : Ls.t) =
  let simple_total = Ls.total stats ~kind:Ls.Simple in
  let qual_total = Ls.total stats ~kind:Ls.Qualified in
  let simple_rows =
    List.map
      (fun (found, scope, compl, n) ->
        [
          Ls.found_name found; Ls.scope_name scope; Ls.compl_name compl; Tablefmt.grouped n;
          Tablefmt.percent n simple_total;
        ])
      (Ls.rows stats ~kind:Ls.Simple)
    @
    let never = Ls.never stats ~kind:Ls.Simple in
    [ [ "Never"; "-"; "-"; Tablefmt.grouped never; Tablefmt.percent never simple_total ] ]
  in
  let qual_rows =
    List.map
      (fun (found, _scope, compl, n) ->
        [
          Ls.found_name found; Ls.compl_name compl; Tablefmt.grouped n;
          Tablefmt.percent n qual_total;
        ])
      (Ls.rows stats ~kind:Ls.Qualified)
    @
    let never = Ls.never stats ~kind:Ls.Qualified in
    if never > 0 then [ [ "Never"; "-"; Tablefmt.grouped never; Tablefmt.percent never qual_total ] ]
    else []
  in
  let simple =
    Tablefmt.render
      ~aligns:[ Tablefmt.Left; Tablefmt.Left; Tablefmt.Left ]
      ~header:[ "Found when"; "scope"; "completeness"; "number"; "%" ]
      simple_rows
  in
  let qual =
    Tablefmt.render
      ~aligns:[ Tablefmt.Left; Tablefmt.Left ]
      ~header:[ "Found when"; "completeness"; "number"; "%" ]
      qual_rows
  in
  Printf.sprintf "Simple Identifier (%s lookups)\n%s\n\nQualified Identifier (%s lookups)\n%s"
    (Tablefmt.grouped simple_total) simple (Tablefmt.grouped qual_total) qual

(* ------------------------------------------------------------------ *)
(* Table 3: summary of speedup data *)

let table3 ~(suite : Speedup.sweep list) ~(synth : Speedup.sweep) =
  let best1 = Speedup.best suite ~n:8 in
  let quartiles = Speedup.by_quartile suite in
  let rows =
    List.map
      (fun n ->
        let mn, mean, mx = Speedup.aggregate suite ~n in
        let qcols =
          List.map
            (fun (_, sweeps) ->
              if sweeps = [] then "-" else Tablefmt.fixed (Speedup.mean_speedup sweeps ~n))
            quartiles
        in
        [
          string_of_int n; Tablefmt.fixed mn; Tablefmt.fixed mean; Tablefmt.fixed mx;
          Tablefmt.fixed (Speedup.speedup synth n);
          (match best1 with Some b -> Tablefmt.fixed (Speedup.speedup b n) | None -> "-");
        ]
        @ qcols)
      [ 2; 3; 4; 5; 6; 7; 8 ]
  in
  Tablefmt.render
    ~header:[ "N"; "Min"; "Mean"; "Max"; "Synth"; "Best"; "Q1"; "Q2"; "Q3"; "Q4" ]
    rows
