(* Speedup measurement: the machinery behind Figures 1-3 and Table 3.

   Self-relative speedup of a compilation is T(1 processor)/T(N): the
   concurrent compiler compared against itself, as in the paper's §4.2.
   All runs are on the deterministic simulated multiprocessor, so a sweep
   is exactly reproducible. *)

open Mcc_core

type sweep = {
  store : Source_store.t;
  times : float array; (* times.(n-1) = virtual end time on n processors *)
}

let max_procs = 8

(* Compile [store] on 1..max_procs simulated processors. *)
let sweep ?(config = Driver.default_config) ?(max_procs = max_procs) store =
  let times =
    Array.init max_procs (fun i ->
        let c = Driver.compile ~config:{ config with Driver.procs = i + 1 } store in
        c.Driver.sim.Mcc_sched.Des_engine.end_time)
  in
  { store; times }

let t1 s = s.times.(0)
let speedup s n = s.times.(0) /. s.times.(n - 1)
let seconds_1p s = Mcc_sched.Costs.to_seconds s.times.(0)

(* Aggregate a list of sweeps: per processor count, the min / mean / max
   self-relative speedup (Table 3's "Test Suite" columns). *)
let aggregate sweeps ~n =
  let sps = List.map (fun s -> speedup s n) sweeps in
  let mn = List.fold_left min infinity sps in
  let mx = List.fold_left max neg_infinity sps in
  let mean = List.fold_left ( +. ) 0.0 sps /. float_of_int (List.length sps) in
  (mn, mean, mx)

(* The paper's quartile split (§4.2): by 1-processor compilation time,
   with fixed thresholds at 5, 10 and 30 seconds. *)
type quartile = Q1 | Q2 | Q3 | Q4

let quartile_of s =
  let t = seconds_1p s in
  if t < 5.0 then Q1 else if t < 10.0 then Q2 else if t < 30.0 then Q3 else Q4

let quartile_name = function Q1 -> "Q1" | Q2 -> "Q2" | Q3 -> "Q3" | Q4 -> "Q4"

let by_quartile sweeps =
  List.map
    (fun q -> (q, List.filter (fun s -> quartile_of s = q) sweeps))
    [ Q1; Q2; Q3; Q4 ]

let mean_speedup sweeps ~n =
  match sweeps with
  | [] -> nan
  | _ ->
      let _, mean, _ = aggregate sweeps ~n in
      mean

(* The suite member with the best speedup at [n] (the paper's "VM"
   column — the human-authored module with the best overall speedup). *)
let best sweeps ~n =
  List.fold_left
    (fun acc s -> match acc with Some b when speedup b n >= speedup s n -> acc | _ -> Some s)
    None sweeps
