lib/stats/speedup.mli: Driver Mcc_core Source_store
