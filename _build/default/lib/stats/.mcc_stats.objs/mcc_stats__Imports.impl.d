lib/stats/imports.ml: Hashtbl Lexer List Mcc_core Mcc_m2 Reader Source_store Stream
