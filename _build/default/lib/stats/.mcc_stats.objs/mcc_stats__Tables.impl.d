lib/stats/tables.ml: Array Driver Imports List Mcc_core Mcc_sched Mcc_sem Mcc_util Printf Seq_driver Source_store Speedup String Tablefmt
