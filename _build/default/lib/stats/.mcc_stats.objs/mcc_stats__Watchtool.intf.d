lib/stats/watchtool.mli: Mcc_sched
