lib/stats/tables.mli: Mcc_core Mcc_sem Source_store Speedup
