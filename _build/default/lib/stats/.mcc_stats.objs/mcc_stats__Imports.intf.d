lib/stats/imports.mli: Mcc_core Source_store
