lib/stats/watchtool.ml: Array Buffer Costs List Mcc_sched Printf String Task Trace
