lib/stats/speedup.ml: Array Driver List Mcc_core Mcc_sched Source_store
