(** WatchTool: ASCII rendering of processor activity over time,
    reproducing the paper's Figures 4 and 7 from a DES trace — one row
    per processor, one column per time bucket, painted with the
    character of the busiest task class in the bucket. *)

(** Display character per task class. *)
val class_char : Mcc_sched.Task.cls -> char

(** One-line key for the characters used. *)
val legend : string

(** Render the trace ([width] buckets, default 100). *)
val render : ?width:int -> Mcc_sched.Trace.t -> procs:int -> string

(** One-line utilization summary with a per-phase busy-share breakdown. *)
val summary : Mcc_sched.Trace.t -> procs:int -> string
