(* WatchTool: ASCII rendering of processor activity over time.

   Reproduces the paper's Figures 4 and 7 — "processor activity (vertical
   axis) as a function of time (horizontal axis)" with bars for the
   different kinds of compiler activity — from the DES trace.  Each
   processor is one row; each column is a time bucket painted with the
   character of the task class that was busiest in that bucket:

     L lexical analysis        S splitter        I importer
     d definition-module parse/declaration analysis
     M module parse/declaration analysis
     p procedure parse/declaration analysis
     G long-procedure statement analysis / code generation
     g short-procedure statement analysis / code generation
     m merge      . auxiliary      ~ barrier wait      (space) idle *)

open Mcc_sched

let class_char = function
  | Task.Lexor -> 'L'
  | Task.Splitter -> 'S'
  | Task.Importer -> 'I'
  | Task.DefParse -> 'd'
  | Task.ModParse -> 'M'
  | Task.ProcParse -> 'p'
  | Task.LongGen -> 'G'
  | Task.ShortGen -> 'g'
  | Task.Merge -> 'm'
  | Task.Aux -> '.'

let legend =
  "L=lexor S=splitter I=importer d=defparse M=modparse p=procparse G=long-gen g=short-gen \
   m=merge ~=barrier-wait"

(* Render the trace as one row per processor and [width] time buckets. *)
let render ?(width = 100) (trace : Trace.t) ~procs =
  let horizon = Trace.horizon trace in
  if horizon <= 0.0 then "(empty trace)"
  else begin
    (* per processor, per bucket: busy time per class (+1 row for waits) *)
    let buckets = Array.init procs (fun _ -> Array.make_matrix width (Task.n_classes + 1) 0.0) in
    let bucket_w = horizon /. float_of_int width in
    List.iter
      (fun (s : Trace.seg) ->
        if s.Trace.proc < procs then begin
          let cls_idx =
            match s.Trace.kind with
            | Trace.Run -> Task.cls_priority s.Trace.cls
            | Trace.Waitbar -> Task.n_classes
          in
          let b0 = int_of_float (s.Trace.t0 /. bucket_w) in
          let b1 = min (width - 1) (int_of_float (s.Trace.t1 /. bucket_w)) in
          for b = max 0 b0 to b1 do
            let lo = float_of_int b *. bucket_w and hi = float_of_int (b + 1) *. bucket_w in
            let overlap = min hi s.Trace.t1 -. max lo s.Trace.t0 in
            if overlap > 0.0 then
              buckets.(s.Trace.proc).(b).(cls_idx) <- buckets.(s.Trace.proc).(b).(cls_idx) +. overlap
          done
        end)
      (Trace.segments trace);
    let buf = Buffer.create (procs * (width + 16)) in
    for p = 0 to procs - 1 do
      Buffer.add_string buf (Printf.sprintf "P%d |" p);
      for b = 0 to width - 1 do
        let cell = buckets.(p).(b) in
        let best = ref (-1) and best_t = ref 0.0 in
        Array.iteri
          (fun i t ->
            if t > !best_t then begin
              best := i;
              best_t := t
            end)
          cell;
        let ch =
          if !best < 0 || !best_t < bucket_w *. 0.05 then ' '
          else if !best = Task.n_classes then '~'
          else
            let cls =
              List.find
                (fun c -> Task.cls_priority c = !best)
                [ Task.Lexor; Task.Splitter; Task.Importer; Task.DefParse; Task.ModParse;
                  Task.ProcParse; Task.LongGen; Task.ShortGen; Task.Merge; Task.Aux ]
            in
            class_char cls
        in
        Buffer.add_char buf ch
      done;
      Buffer.add_string buf "|\n"
    done;
    Buffer.add_string buf
      (Printf.sprintf "    0%s%.2fs (virtual)\n"
         (String.make (max 1 (width - 14)) '-')
         (Costs.to_seconds horizon));
    Buffer.contents buf
  end

(* Utilization summary line for a trace. *)
let summary (trace : Trace.t) ~procs =
  let util = Trace.utilization trace ~procs in
  let per_class = Trace.busy_per_class trace in
  let total = Array.fold_left ( +. ) 0.0 per_class in
  let share cls =
    if total <= 0.0 then 0.0 else 100.0 *. per_class.(Task.cls_priority cls) /. total
  in
  Printf.sprintf
    "utilization %.1f%%  (lex %.1f%%, split %.1f%%, import %.1f%%, parse/decl %.1f%%, stmt/gen %.1f%%, merge %.1f%%)"
    (100.0 *. util) (share Task.Lexor) (share Task.Splitter) (share Task.Importer)
    (share Task.DefParse +. share Task.ModParse +. share Task.ProcParse)
    (share Task.LongGen +. share Task.ShortGen)
    (share Task.Merge)
