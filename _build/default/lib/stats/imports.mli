(** Static import-graph analysis of a source store: the "Imported
    Interfaces" and "Import Nesting Depth" attributes of Table 1. *)

open Mcc_core

(** Direct imports of one source, in first-occurrence order. *)
val direct_imports : file:string -> string -> string list

(** [(reachable interfaces, longest import chain)] from the main
    module; cycle-safe. *)
val analyze : Source_store.t -> int * int
