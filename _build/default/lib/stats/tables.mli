(** Rendering of the paper's tables from measured data. *)

open Mcc_core
module Ls = Mcc_sem.Lookup_stats

(** Table 1 attributes of one program. *)
type program_attrs = {
  pa_name : string;
  pa_bytes : int;  (** size of the .mod file *)
  pa_seq_seconds : float;
  pa_c1_seconds : float;  (** concurrent compiler on 1 processor: the quartile classifier *)
  pa_interfaces : int;
  pa_depth : int;
  pa_procedures : int;
  pa_streams : int;
}

(** Measure a program: sequential compile (for time), a 1-processor
    concurrent compile (for stream counts), import analysis. *)
val measure_attrs : Source_store.t -> program_attrs

(** Table 1: min/median/max of every attribute. *)
val table1 : program_attrs list -> string

(** Table 2: the simple- and qualified-identifier lookup statistics. *)
val table2 : Ls.t -> string

(** Table 3: per processor count, suite min/mean/max, Synth, the best
    suite member, and the four quartile means. *)
val table3 : suite:Speedup.sweep list -> synth:Speedup.sweep -> string
