(** The parser / declarations analyzer — one task per stream (paper §3).

    Performs syntax analysis on the whole stream, semantic analysis of
    declarations inline (entering symbols into the stream's scope as
    they parse), marks the scope's table complete, and builds a parse
    tree for the statement part whose semantic analysis is deferred to
    the statement-analyzer/code-generator task.

    The same grammar serves the concurrent module parser (which resolves
    [SplitMark] tokens left by the Splitter), the concurrent
    procedure-stream parser, the definition-module parser and the
    sequential compiler (procedure bodies inline), differing only in the
    {!callbacks}.  Panic-mode error recovery depends only on the token
    stream, so sequential and concurrent compilations diagnose erroneous
    programs identically. *)

open Mcc_m2
open Mcc_ast
module Ctx = Mcc_sem.Ctx
module Symtab = Mcc_sem.Symtab
module D = Mcc_sem.Declare

(** A completed statement part, ready for code generation. *)
type gen_job = {
  gj_ctx : Ctx.t;  (** the (completed) scope the statements execute in *)
  gj_key : string;  (** code-unit key *)
  gj_sig : Mcc_sem.Types.signature option;  (** [None] for a module body *)
  gj_body : Ast.stmt list;
  gj_nslots : int;  (** local frame size: params + locals *)
  gj_size : int;  (** statement-tree size (long/short task ordering) *)
}

(** How the surrounding driver wires streams together. *)
type callbacks = {
  cb_import : Ctx.t -> Ast.ident -> Symtab.t option;
      (** resolve an imported module to its interface scope, starting its
          stream on first reference (the once-only table); [None] if the
          interface does not exist *)
  cb_heading : Ctx.t -> D.heading_info -> stream:int -> unit;
      (** a split-away procedure's heading has been processed in the
          parent scope: publish it to the child stream *)
  cb_body : gen_job -> unit;
      (** a statement part is ready: spawn or queue its code generation *)
}

type t

val create : cb:callbacks -> Reader.t -> t

(** Parse DEFINITION MODULE [expected_name]: imports, exports (ignored),
    declarations (procedures heading-only; opaque types allowed), then
    mark the scope complete. *)
val parse_def_module : Ctx.t -> t -> expected_name:string -> unit

(** Parse [IMPLEMENTATION] MODULE [expected_name]: imports, declarations
    (procedure bodies split or inline), mark complete, statement part to
    [cb_body]. *)
val parse_impl_module : Ctx.t -> t -> expected_name:string -> unit

(** Parse a bare statement sequence (no semantic analysis): the
    parse-print-reparse round-trip property uses this. *)
val parse_statement_sequence : Ctx.t -> t -> Ast.stmt list

(** Parse a procedure stream: heading tokens then the block.  With
    [heading = Some hi] (alternative 1) the parent's entries are copied
    in; with [None] (alternative 3) the parameter heading is re-derived
    here, producing identical entries. *)
val parse_proc_stream : Ctx.t -> t -> heading:D.heading_info option -> key:string -> unit
