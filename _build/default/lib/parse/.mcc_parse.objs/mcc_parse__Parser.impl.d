lib/parse/parser.ml: Ast Costs Eff List Loc Mcc_ast Mcc_m2 Mcc_sched Mcc_sem Option Reader Token
