lib/parse/parser.mli: Ast Mcc_ast Mcc_m2 Mcc_sem Reader
